// bench_io — trace serialization throughput: CSV vs kooza.trace/1 binary
// columnar, at three trace sizes up to >1M records. Prints a table and
// writes BENCH_io.json (MB/s and records/s per format and size) so the
// acceptance bar — binary >= 5x CSV end-to-end read records/s on a
// >= 1M-record capture — is machine-checkable.
#include <chrono>
#include <filesystem>
#include <fstream>

#include "bench_util.hpp"
#include "sim/rng.hpp"
#include "trace/binary.hpp"
#include "trace/csv.hpp"
#include "trace/io.hpp"

namespace {

namespace fs = std::filesystem;
using namespace kooza;
using trace::TraceSet;

/// Synthetic capture shaped like a real one: per request, one record in
/// every subsystem stream plus a span; occasional failure events.
TraceSet synthetic_traces(std::size_t requests, std::uint64_t seed) {
    sim::Rng rng(seed);
    TraceSet ts;
    static const char* kPhases[] = {"request", "net.rx", "cpu.verify",
                                    "disk.io", "repl.forward", "net.tx"};
    for (std::size_t i = 0; i < requests; ++i) {
        const double t = double(i) * 1e-3 + rng.uniform(0.0, 1e-3);
        const auto id = std::uint64_t(i + 1);
        const auto bytes = std::uint64_t(rng.uniform_int(512, 4 << 20));
        const auto type =
            rng.bernoulli(0.7) ? trace::IoType::kRead : trace::IoType::kWrite;
        ts.requests.push_back({id, type, t, t + rng.uniform(1e-3, 5e-2), bytes});
        ts.storage.push_back({t, id, std::uint64_t(rng.uniform_int(0, 1 << 20)),
                              bytes, type, rng.uniform(1e-4, 1e-2)});
        ts.cpu.push_back({t, id, rng.uniform(1e-5, 1e-3), rng.uniform(0.0, 1.0)});
        ts.memory.push_back({t, id, std::uint32_t(rng.uniform_int(0, 15)),
                             bytes / 4, type});
        ts.network.push_back({t, id, bytes,
                              rng.bernoulli(0.5)
                                  ? trace::NetworkRecord::Direction::kRx
                                  : trace::NetworkRecord::Direction::kTx,
                              rng.uniform(1e-5, 1e-3)});
        if (i % 100 == 0)
            ts.failures.push_back({t, id, std::uint32_t(rng.uniform_int(0, 7)),
                                   trace::FailureRecord::Kind::kFailover,
                                   rng.uniform(0.0, 0.5)});
        trace::Span sp;
        sp.trace_id = id;
        sp.span_id = id;
        sp.parent_id = 0;
        sp.name = kPhases[i % 6];
        sp.start = t;
        sp.end = t + 1e-3;
        ts.spans.push_back(sp);
    }
    return ts;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

std::uint64_t dir_bytes(const fs::path& dir) {
    std::uint64_t total = 0;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file()) total += e.file_size();
    return total;
}

struct FormatResult {
    double write_s = 0.0;
    double read_s = 0.0;
    std::uint64_t bytes = 0;
};

struct SizeResult {
    std::size_t records = 0;
    FormatResult csv, bin;
};

FormatResult run_format(const TraceSet& ts, const fs::path& dir,
                        trace::Format fmt) {
    FormatResult r;
    fs::remove_all(dir);
    auto t0 = std::chrono::steady_clock::now();
    trace::write_traces(ts, dir, fmt);
    r.write_s = seconds_since(t0);
    r.bytes = dir_bytes(dir);
    // Read twice, keep the faster pass (first one warms the page cache).
    for (int pass = 0; pass < 2; ++pass) {
        t0 = std::chrono::steady_clock::now();
        const auto back = trace::read_traces(dir, fmt);
        const auto s = seconds_since(t0);
        if (back.total_records() != ts.total_records())
            throw std::runtime_error("bench_io: read-back record count mismatch");
        r.read_s = pass == 0 ? s : std::min(r.read_s, s);
    }
    return r;
}

void write_json(const std::vector<SizeResult>& results, const fs::path& path) {
    std::ofstream f(path);
    f.precision(6);
    f << std::fixed;
    auto fmt_obj = [&](const char* name, std::size_t records,
                       const FormatResult& r, bool last) {
        const double mb = double(r.bytes) / (1024.0 * 1024.0);
        f << "    \"" << name << "\": {\"bytes\": " << r.bytes
          << ", \"write_s\": " << r.write_s << ", \"read_s\": " << r.read_s
          << ", \"write_mb_s\": " << mb / r.write_s
          << ", \"read_mb_s\": " << mb / r.read_s
          << ", \"write_records_s\": " << double(records) / r.write_s
          << ", \"read_records_s\": " << double(records) / r.read_s << "}"
          << (last ? "\n" : ",\n");
    };
    f << "{\n  \"schema\": \"kooza.bench_io/1\",\n  \"sizes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& s = results[i];
        f << "  {\n    \"records\": " << s.records << ",\n";
        fmt_obj("csv", s.records, s.csv, false);
        fmt_obj("bin", s.records, s.bin, false);
        f << "    \"read_speedup_records_s\": "
          << (double(s.records) / s.bin.read_s) /
                 (double(s.records) / s.csv.read_s)
          << "\n  }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

// google-benchmark registrations over the smallest size, so `--benchmark_*`
// flags work here like in every other bench.
const TraceSet& small_traces() {
    static const TraceSet ts = synthetic_traces(2000, 17);
    return ts;
}

void BM_ReadCsv(benchmark::State& state) {
    const auto dir = fs::temp_directory_path() / "kooza_bench_io_bm_csv";
    trace::write_csv(small_traces(), dir);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace::read_csv(dir));
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(small_traces().total_records()));
    fs::remove_all(dir);
}
BENCHMARK(BM_ReadCsv)->Unit(benchmark::kMillisecond);

void BM_ReadBinary(benchmark::State& state) {
    const auto dir = fs::temp_directory_path() / "kooza_bench_io_bm_bin";
    trace::write_binary(small_traces(), dir);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace::read_binary(dir));
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(small_traces().total_records()));
    fs::remove_all(dir);
}
BENCHMARK(BM_ReadBinary)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    using kooza::bench::Table;
    using kooza::bench::fmt;
    kooza::bench::print_run_header(17);
    std::cout << "\nTrace I/O: CSV vs kooza.trace/1 binary columnar\n\n";

    // ~6.01 records per request (see synthetic_traces): the largest size
    // clears the 1M-record acceptance bar.
    const std::size_t kRequests[] = {2'000, 30'000, 170'000};
    std::vector<SizeResult> results;
    Table table({12, 10, 14, 14, 14, 14, 12});
    table.row("records", "format", "size", "write MB/s", "read MB/s",
              "read Mrec/s", "read x");
    table.rule();
    for (const auto n : kRequests) {
        const auto ts = synthetic_traces(n, 17);
        SizeResult sr;
        sr.records = ts.total_records();
        const auto base = fs::temp_directory_path();
        sr.csv = run_format(ts, base / "kooza_bench_io_csv", trace::Format::kCsv);
        sr.bin = run_format(ts, base / "kooza_bench_io_bin", trace::Format::kBinary);
        const double speedup = sr.csv.read_s / sr.bin.read_s;
        auto row = [&](const char* name, const FormatResult& r,
                       const std::string& x) {
            table.row(sr.records, name, kooza::bench::fmt_bytes(double(r.bytes)),
                      fmt(double(r.bytes) / (1024.0 * 1024.0) / r.write_s, 1),
                      fmt(double(r.bytes) / (1024.0 * 1024.0) / r.read_s, 1),
                      fmt(double(sr.records) / r.read_s / 1e6, 2), x);
        };
        row("csv", sr.csv, "1.00");
        row("bin", sr.bin, fmt(speedup, 2));
        results.push_back(sr);
        fs::remove_all(base / "kooza_bench_io_csv");
        fs::remove_all(base / "kooza_bench_io_bin");
    }
    table.rule();

    const auto& big = results.back();
    const double big_speedup = big.csv.read_s / big.bin.read_s;
    std::cout << "\nlargest capture: " << big.records
              << " records, binary read speedup " << fmt(big_speedup, 2)
              << "x (target >= 5x)\n";

    write_json(results, "BENCH_io.json");
    std::cout << "wrote BENCH_io.json\n\n";

    return kooza::bench::run_benchmarks(argc, argv);
}
