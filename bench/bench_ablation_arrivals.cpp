// Ablation A4: arrival-process fidelity — Poisson vs MMPP vs trace-driven.
//
// Sengupta '03 (in the paper's survey): DC traffic "most of the time
// diverges from the commonly-used Poisson distribution", and modeling it
// wrong skews performance predictions. This bench drives the system with
// a bursty OLTP (MMPP) request stream, then rebuilds the arrival process
// three ways and compares burstiness (index of dispersion) and the
// latency predicted by replaying the same requests under each arrival
// model.

#include <iostream>

#include "bench_util.hpp"
#include "core/generator.hpp"
#include "queueing/arrival.hpp"
#include "stats/descriptive.hpp"
#include "stats/fitting.hpp"
#include "stats/timeseries.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 34;

std::vector<double> arrival_times_from(const std::vector<double>& gaps) {
    std::vector<double> out;
    double t = 0.0;
    for (double g : gaps) out.push_back(t += g);
    return out;
}

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A4 - arrival-process fidelity (Poisson vs MMPP vs\n"
              << " trace-driven) on a bursty OLTP stream (seed=" << kSeed << ")\n"
              << "==================================================================\n\n";

    // Original system run under a bursty stream.
    gfs::GfsConfig cfg;
    sim::Rng rng(kSeed);
    // Stable-but-bursty regime: quiet phase well under disk capacity,
    // bursts transiently above it, so the arrival model decides how much
    // queueing builds up (overload would saturate every candidate alike).
    workloads::OltpProfile profile({.count = 3000, .base_rate = 30.0});
    const auto w = profile.generate(rng);
    const auto ts = bench::simulate(w, cfg);
    const auto orig = trace::extract_features(ts);
    const auto orig_arrivals = trace::column_arrival(orig);
    const double orig_idc = stats::index_of_dispersion(orig_arrivals, 0.5);
    const double orig_lat = stats::mean(trace::column_latency(orig));
    const double orig_p99 = stats::quantile(trace::column_latency(orig), 0.99);

    std::cout << "original: IDC(0.5s)=" << bench::fmt(orig_idc, 2)
              << "  mean latency=" << bench::fmt_ms(orig_lat)
              << "  p99=" << bench::fmt_ms(orig_p99) << "\n\n";

    // Interarrival gaps of the original stream.
    std::vector<double> gaps;
    for (std::size_t i = 1; i < orig_arrivals.size(); ++i)
        gaps.push_back(std::max(orig_arrivals[i] - orig_arrivals[i - 1], 1e-9));
    const double rate = double(gaps.size()) / (orig_arrivals.back() - orig_arrivals.front());

    // Three arrival models over the same per-request features: train the
    // KOOZA model once, then swap the arrival process.
    const auto model = core::Trainer().train(ts);
    sim::Rng gen_rng(kSeed + 1);
    auto base = core::Generator(model).generate(3000, gen_rng);

    struct Candidate {
        std::string name;
        std::unique_ptr<queueing::ArrivalProcess> proc;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"poisson", std::make_unique<queueing::PoissonArrivals>(rate)});
    // Crude 2-phase MMPP moment match: quiet = median gap rate, burst = 5x.
    candidates.push_back(
        {"mmpp2", std::make_unique<queueing::MmppArrivals>(rate * 0.6, rate * 3.0,
                                                           0.5, 2.0)});
    candidates.push_back({"trace", std::make_unique<queueing::TraceArrivals>(gaps)});

    bench::Table t({12, 14, 16, 16, 16});
    t.row("Arrivals", "IDC(0.5s)", "MeanLatErr%", "P99LatErr%", "GapCV");
    t.rule();
    for (auto& c : candidates) {
        // Re-time the same synthetic requests with this arrival process.
        auto relabeled = base;
        sim::Rng arr_rng(kSeed + 2);
        double tcur = 0.0;
        std::vector<double> new_gaps;
        for (auto& r : relabeled.requests) {
            const double g = c.proc->next_interarrival(arr_rng);
            new_gaps.push_back(g);
            r.time = (tcur += g);
        }
        const auto times = arrival_times_from(new_gaps);
        core::Replayer rep(bench::replay_config(cfg, model.cpu_verify_fraction()));
        const auto res = rep.replay(relabeled);
        const double lat = stats::mean(res.latencies);
        const double p99 = stats::quantile(res.latencies, 0.99);
        const auto gap_summary = stats::summarize(new_gaps);
        t.row(c.name, bench::fmt(stats::index_of_dispersion(times, 0.5), 2),
              bench::fmt(stats::variation_pct(lat, orig_lat), 1),
              bench::fmt(stats::variation_pct(p99, orig_p99), 1),
              bench::fmt(gap_summary.cv(), 2));
    }
    std::cout << "\nExpected shape: the Poisson fit flattens the bursts (IDC ~ 1),\n"
              << "underestimating tail latency; MMPP and the trace-driven process\n"
              << "preserve burstiness and the p99 — Sengupta's point.\n\n";
}

void BM_FitArrivalProcess(benchmark::State& state) {
    sim::Rng rng(kSeed);
    workloads::OltpProfile profile({.count = 2000});
    const auto ts = kooza::bench::simulate(profile.generate(rng));
    const auto orig = trace::extract_features(ts);
    auto arrivals = trace::column_arrival(orig);
    std::vector<double> gaps;
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        gaps.push_back(std::max(arrivals[i] - arrivals[i - 1], 1e-9));
    for (auto _ : state) {
        auto fit = stats::fit_best(gaps);
        benchmark::DoNotOptimize(fit.ks);
    }
}
BENCHMARK(BM_FitArrivalProcess);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_ablation();
    return kooza::bench::run_benchmarks(argc, argv);
}
