// HMM storage-baseline regression line.
//
// End-to-end check of the Harrison-style HMM baseline (baselines::HmmModel)
// against its two contracts:
//
//   1. chunked-training byte identity — training through
//      trace::ChunkedReader (tiny chunks) must produce a model
//      byte-identical to training on the materialized TraceSet;
//   2. accuracy-vs-cost — the fitted model's synthetic storage-size
//      marginal stays close to the training trace (KS bar) and the
//      arrival rate is reproduced, at a parameter budget and fit wall
//      time reported as the headline row.
//
// Written to BENCH_hmm.json. Run with --smoke for the fast regression
// check; the CMake target `bench_hmm_smoke` wires that into the default
// ctest tier (label: hmm). Exits nonzero when a bar is missed.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "baselines/hmm.hpp"
#include "bench_util.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "trace/features.hpp"
#include "trace/io.hpp"
#include "workloads/profiles.hpp"

namespace {

namespace fs = std::filesystem;
using namespace kooza;

constexpr std::uint64_t kSeed = 29;
constexpr double kSizeKsBar = 0.15;
constexpr double kRateErrBarPct = 50.0;

struct Result {
    bool byte_identical = false;
    double size_ks = 1.0;
    double rate_err_pct = 100.0;
    std::size_t params = 0;
    std::size_t states = 0;
    double fit_ms = 0.0;
    std::size_t requests = 0;
    bool pass() const {
        return byte_identical && size_ks < kSizeKsBar &&
               rate_err_pct < kRateErrBarPct;
    }
};

/// Every fitted parameter, compared exactly (the same contract
/// test_baselines_hmm enforces, here as a release-build regression line).
bool models_identical(const baselines::HmmModel& a, const baselines::HmmModel& b) {
    const std::pair<const markov::Echmm*, const markov::Echmm*> pairs[] = {
        {&a.interarrival_hmm(), &b.interarrival_hmm()},
        {&a.size_hmm(), &b.size_hmm()}};
    for (const auto& [x, y] : pairs) {
        if (x->n_states() != y->n_states()) return false;
        if (x->training_log_likelihood() != y->training_log_likelihood())
            return false;
        for (std::size_t i = 0; i < x->n_states(); ++i) {
            if (x->emission_mean(i) != y->emission_mean(i)) return false;
            if (x->emission_stddev(i) != y->emission_stddev(i)) return false;
            if (x->initial()[i] != y->initial()[i]) return false;
            for (std::size_t j = 0; j < x->n_states(); ++j)
                if (x->transition(i, j) != y->transition(i, j)) return false;
        }
    }
    if (a.read_fraction() != b.read_fraction()) return false;
    for (std::size_t s = 0; s < a.state_read_prob().size(); ++s)
        if (a.state_read_prob()[s] != b.state_read_prob()[s]) return false;
    return a.parameter_count() == b.parameter_count();
}

Result run(bool smoke) {
    Result r;
    sim::Rng rng(kSeed);
    workloads::WebSearchProfile profile(
        {.count = smoke ? 350u : 1500u, .arrival_rate = 30.0});
    gfs::GfsConfig cfg;
    const auto ts = bench::simulate(profile.generate(rng), cfg);
    const auto orig = trace::extract_features(ts);
    r.requests = orig.size();

    const fs::path dir =
        fs::temp_directory_path() /
        ("kooza_bench_hmm_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    trace::write_traces(ts, dir, trace::Format::kBinary);
    const auto ts_back = trace::read_traces(dir);

    const auto materialized = baselines::HmmModel::train(ts_back);
    // 64-row chunks force many ChunkedReader batches per stream.
    const auto chunked = baselines::HmmModel::train_streaming(dir, {}, 64);
    fs::remove_all(dir);
    r.byte_identical = models_identical(materialized, chunked);

    r.params = materialized.parameter_count();
    r.states = materialized.config().n_states;
    r.fit_ms = materialized.fit_wall_seconds() * 1e3;

    sim::Rng gen_rng(kSeed + 1);
    const auto w = materialized.generate(smoke ? 1000 : 4000, gen_rng);
    const auto orig_sizes = trace::column_storage_bytes(orig);
    std::vector<double> synth_sizes;
    for (const auto& q : w.requests) synth_sizes.push_back(double(q.storage_bytes));
    r.size_ks = stats::ks_statistic_two_sample(orig_sizes, synth_sizes);

    const double orig_rate =
        double(orig.size() - 1) / (orig.back().arrival - orig.front().arrival);
    const double synth_rate = double(w.requests.size() - 1) /
                              (w.requests.back().time - w.requests.front().time);
    r.rate_err_pct = stats::variation_pct(synth_rate, orig_rate);
    return r;
}

void write_json(const Result& r, bool smoke) {
    std::ofstream f("BENCH_hmm.json");
    f.precision(4);
    f << std::fixed;
    f << "{\n  \"schema\": \"kooza.bench_hmm/1\",\n  \"smoke\": "
      << (smoke ? "true" : "false")
      << ",\n  \"chunked_byte_identical\": " << (r.byte_identical ? "true" : "false")
      << ",\n  \"size_ks\": " << r.size_ks
      << ",\n  \"size_ks_bar\": " << kSizeKsBar
      << ",\n  \"rate_err_pct\": " << r.rate_err_pct
      << ",\n  \"rate_err_bar_pct\": " << kRateErrBarPct
      << ",\n  \"params\": " << r.params << ",\n  \"states\": " << r.states
      << ",\n  \"fit_ms\": " << r.fit_ms
      << ",\n  \"training_requests\": " << r.requests
      << ",\n  \"pass\": " << (r.pass() ? "true" : "false") << "\n}\n";
}

void BM_TrainHmmBaseline(benchmark::State& state) {
    sim::Rng rng(kSeed);
    workloads::WebSearchProfile profile({.count = 350, .arrival_rate = 30.0});
    const auto ts = bench::simulate(profile.generate(rng), gfs::GfsConfig{});
    baselines::HmmConfig cfg{.n_states = std::size_t(state.range(0))};
    for (auto _ : state) {
        auto m = baselines::HmmModel::train(ts, cfg);
        benchmark::DoNotOptimize(m.parameter_count());
    }
}
BENCHMARK(BM_TrainHmmBaseline)->Arg(2)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_GenerateHmmBaseline(benchmark::State& state) {
    sim::Rng rng(kSeed);
    workloads::WebSearchProfile profile({.count = 350, .arrival_rate = 30.0});
    const auto ts = bench::simulate(profile.generate(rng), gfs::GfsConfig{});
    const auto m = baselines::HmmModel::train(ts);
    sim::Rng gen_rng(kSeed + 1);
    for (auto _ : state) {
        auto w = m.generate(1000, gen_rng);
        benchmark::DoNotOptimize(w.requests.size());
    }
}
BENCHMARK(BM_GenerateHmmBaseline);

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            args.push_back(argv[i]);
    }
    argc = int(args.size());

    kooza::bench::print_run_header(kSeed);
    std::cout << "\nHMM storage-baseline regression line"
              << (smoke ? " (--smoke sizes)" : "") << "\n\n";
    const auto r = run(smoke);

    bench::Table t({22, 12, 10, 12, 12, 10, 12});
    t.row("Check", "ByteIdent", "SizeKS", "RateErr%", "Params", "FitMs", "Requests");
    t.rule();
    t.row("hmm/" + std::to_string(r.states) + "-state",
          r.byte_identical ? "yes" : "NO", bench::fmt(r.size_ks, 3),
          bench::fmt(r.rate_err_pct, 1), r.params, bench::fmt(r.fit_ms, 2),
          r.requests);
    std::cout << "\nbars: chunked==materialized, SizeKS < " << kSizeKsBar
              << ", RateErr < " << kRateErrBarPct << "%\n";

    write_json(r, smoke);
    std::cout << "wrote BENCH_hmm.json -> " << (r.pass() ? "PASS" : "FAIL")
              << "\n\n";
    if (!r.pass()) return 1;

    return kooza::bench::run_benchmarks(argc, args.data());
}
