// Ablation A7: SQS statistical sampling — datacenter-scale evaluation
// cost vs fleet size.
//
// Meisner '10 (paper Section 2.2): SQS "scales well to thousands of
// machines" because it simulates sampled queueing models from empirical
// workload distributions instead of every server. This bench characterizes
// a workload from GFS request records, then asks for fleets of growing
// size and reports how many servers the sampler actually had to simulate
// to hit a 5% confidence target — and that the answer agrees with the
// M/M/1 oracle where one applies.

#include <iostream>

#include "bench_util.hpp"
#include "queueing/analytic.hpp"
#include "queueing/sqs.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 37;

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A7 - SQS sampling: fleet size vs simulation cost\n"
              << " (5% relative CI target; seed=" << kSeed << ")\n"
              << "==================================================================\n\n";

    // Characterize from the GFS system's request records (micro profile).
    sim::Rng rng(kSeed);
    workloads::MicroProfile profile({.count = 1000, .arrival_rate = 12.0});
    const auto ts = bench::simulate(profile.generate(rng));
    const auto model = queueing::SqsWorkloadModel::characterize(ts.requests);
    std::cout << "characterized: " << model.describe() << "\n\n";

    bench::Table t({12, 16, 18, 16, 14});
    t.row("Fleet", "Simulated", "MeanResponse", "CI(95%)", "Savings");
    t.rule();
    const std::vector<std::size_t> fleets{10, 100, 1000, 10000, 100000};
    const auto rows = bench::sweep(fleets.size(), [&](std::size_t i) {
        queueing::SqsSimulator sim(
            {.tasks_per_server = 2000, .target_rel_ci = 0.05, .seed = kSeed});
        return sim.run(model, fleets[i]);
    });
    for (std::size_t i = 0; i < fleets.size(); ++i) {
        const auto& res = rows[i];
        t.row(fleets[i], res.servers_simulated, bench::fmt_ms(res.mean_response),
              "±" + bench::fmt_ms(res.ci_halfwidth),
              bench::fmt_pct(res.sampling_savings() * 100.0, 1));
    }

    // Sanity: with synthetic exponential inputs the sampler reproduces the
    // M/M/1 oracle.
    // Characterization sampling error is amplified by queueing near
    // saturation (a 1% rate misfit moves the M/M/1 response ~5% at
    // rho=0.8), so give the sanity check a generous sample.
    sim::Rng check_rng(kSeed + 1);
    std::vector<double> gaps(60000), svcs(60000);
    for (auto& g : gaps) g = check_rng.exponential(8.0);
    for (auto& s : svcs) s = check_rng.exponential(10.0);
    const auto mm1_model = queueing::SqsWorkloadModel::characterize(gaps, svcs);
    queueing::SqsSimulator sim(
        {.tasks_per_server = 5000, .target_rel_ci = 0.02, .seed = kSeed});
    const auto res = sim.run(mm1_model, 5000);
    const auto oracle = queueing::mm1(8.0, 10.0);
    std::cout << "\nM/M/1 sanity: sampled " << bench::fmt_ms(res.mean_response)
              << " vs analytic " << bench::fmt_ms(oracle.mean_response) << " ("
              << bench::fmt_pct(
                     stats::variation_pct(res.mean_response, oracle.mean_response), 1)
              << " off)\n\n"
              << "Expected shape: simulated-server count saturates at a few dozen\n"
              << "regardless of fleet size, so savings approach 100% at DC scale.\n\n";
}

void BM_SqsFleet(benchmark::State& state) {
    sim::Rng rng(kSeed);
    std::vector<double> gaps(2000), svcs(2000);
    for (auto& g : gaps) g = rng.exponential(8.0);
    for (auto& s : svcs) s = rng.exponential(10.0);
    const auto model = queueing::SqsWorkloadModel::characterize(gaps, svcs);
    queueing::SqsSimulator sim(
        {.tasks_per_server = 1000, .target_rel_ci = 0.05, .seed = kSeed});
    for (auto _ : state) {
        auto res = sim.run(model, std::size_t(state.range(0)));
        benchmark::DoNotOptimize(res.mean_response);
    }
}
BENCHMARK(BM_SqsFleet)->Arg(100)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_ablation();
    return kooza::bench::run_benchmarks(argc, argv);
}
