// Shared helpers for the experiment benches: each bench reproduces one
// table or figure of the paper (see DESIGN.md's experiment index), prints
// it to stdout, then runs google-benchmark timings for the pipeline
// stages it exercises.
#pragma once

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/replayer.hpp"
#include "core/trainer.hpp"
#include "gfs/cluster.hpp"
#include "par/pool.hpp"
#include "workloads/profiles.hpp"

namespace kooza::bench {

/// Reproducibility banner every bench prints before its tables: the run
/// seed plus the pool size (sweep points run across the pool, so both are
/// needed to reproduce and to interpret wall-clock numbers).
inline void print_run_header(std::uint64_t seed) {
    std::cout << "run: seed=" << seed << " threads=" << par::threads() << "\n";
}

/// Variant for fully deterministic benches that draw no random numbers.
inline void print_run_header() {
    std::cout << "run: seed=none threads=" << par::threads() << "\n";
}

/// Evaluate `n` independent sweep points across the thread pool; result i
/// is fn(i), merged by index so tables print in sweep order regardless of
/// thread count. Points must not share mutable state (give each its own
/// seeded Rng).
template <typename Fn>
auto sweep(std::size_t n, Fn&& fn) {
    return par::pool().parallel_map(n, std::forward<Fn>(fn));
}

/// Simulate a workload on a fresh cluster and return its traces.
inline trace::TraceSet simulate(const workloads::Workload& w,
                                const gfs::GfsConfig& cfg = gfs::GfsConfig{}) {
    gfs::Cluster cluster(cfg);
    w.install(cluster);
    cluster.run();
    return cluster.traces();
}

/// Replay device stack mirroring a cluster config.
inline core::ReplayConfig replay_config(const gfs::GfsConfig& cfg,
                                        double verify_fraction) {
    core::ReplayConfig r;
    r.disk = cfg.disk;
    r.cpu = cfg.cpu;
    r.memory = cfg.memory;
    r.net = cfg.net;
    r.control_bytes = cfg.control_bytes;
    r.cpu_verify_fraction = verify_fraction;
    return r;
}

/// Fixed-width table printer.
class Table {
public:
    explicit Table(std::vector<int> widths) : widths_(std::move(widths)) {}

    template <typename... Cells>
    void row(Cells&&... cells) {
        std::size_t i = 0;
        std::ostringstream os;
        ((os << std::left << std::setw(widths_[i++]) << cells), ...);
        std::cout << os.str() << "\n";
    }

    void rule() const {
        int total = 0;
        for (int w : widths_) total += w;
        std::cout << std::string(std::size_t(total), '-') << "\n";
    }

private:
    std::vector<int> widths_;
};

inline std::string fmt(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

inline std::string fmt_bytes(double v) {
    std::ostringstream os;
    os << std::fixed;
    if (v >= double(1ull << 20))
        os << std::setprecision(2) << v / double(1ull << 20) << " MB";
    else if (v >= 1024.0)
        os << std::setprecision(1) << v / 1024.0 << " KB";
    else
        os << std::setprecision(0) << v << " B";
    return os.str();
}

inline std::string fmt_pct(double v, int precision = 2) {
    return fmt(v, precision) + "%";
}

inline std::string fmt_ms(double seconds, int precision = 2) {
    return fmt(seconds * 1e3, precision) + " ms";
}

/// Standard bench entry: print the experiment, then run registered
/// google-benchmark timings.
inline int run_benchmarks(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace kooza::bench
