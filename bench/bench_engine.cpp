// bench_engine — the event-core regression line: events/s of sim::Engine
// (calendar queue + arena-allocated EventFn callbacks) against a faithful
// copy of the pre-rebuild engine (std::function callbacks dispatched
// through a std::push_heap binary heap with per-event atomic metric
// updates), on ring and hold-model workloads over uniform, skewed, and
// degenerate timestamp distributions.
//
// Written to BENCH_engine.json: both engines' events/s per workload, the
// speedup, and the acceptance verdict (>= 3x on the 1M-event uniform
// deep hold model, where the pending set is at datacenter scale and the
// committed engine's log-n pointer-chasing heap hurts most). Every
// workload also cross-checks dispatch order: both
// engines must produce the same dispatch-time hash, the same total order
// the determinism suite relies on.
//
// Run with --smoke for a quick (100k-event) regression check; the CMake
// target `bench_engine_smoke` wires that into the build tree. Benchmark
// numbers are only meaningful in optimized builds (Release /
// RelWithDebInfo).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace {

using namespace kooza;

// ---------------------------------------------------------------------------
// BaselineEngine: the committed engine before this rebuild, verbatim —
// std::function events (heap-allocating beyond the small-buffer
// optimization), a binary heap on (at, seq), and per-event atomic metric
// updates. Metrics go to bench.baseline.* so the copy does the same
// atomic work per event without polluting sim.engine.*.
// ---------------------------------------------------------------------------
class BaselineEngine {
public:
    using Time = sim::Time;

    [[nodiscard]] Time now() const noexcept { return now_; }

    void schedule_after(Time delay, std::function<void()> action) {
        push_event(now_ + delay, std::move(action));
    }

    std::uint64_t run() {
        std::uint64_t n = 0;
        while (live_ > 0 && step()) ++n;
        return n;
    }

private:
    struct Event {
        Time at = 0.0;
        std::uint64_t seq = 0;
        std::function<void()> action;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void push_event(Time at, std::function<void()> action) {
        heap_.push_back(Event{at, next_seq_++, std::move(action)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        ++live_;
        auto& m = metrics();
        m.scheduled.add();
        m.depth.set(double(heap_.size()));
    }

    bool step() {
        if (heap_.empty()) return false;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Event ev = std::move(heap_.back());
        heap_.pop_back();
        now_ = ev.at;
        --live_;
        metrics().dispatched.add();
        ev.action();
        return true;
    }

    struct Metrics {
        obs::Counter& scheduled =
            obs::counter("bench.baseline.events_scheduled_total");
        obs::Counter& dispatched =
            obs::counter("bench.baseline.events_dispatched_total");
        obs::Gauge& depth = obs::gauge("bench.baseline.heap_depth");
    };
    static Metrics& metrics() {
        static Metrics m;
        return m;
    }

    Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t live_ = 0;
    std::vector<Event> heap_;
};

// ---------------------------------------------------------------------------
// Workloads. Each initial event re-schedules itself with a fresh hold
// time until the dispatch budget is exhausted, so the queue sits at a
// constant depth — the classic hold model (and, at small depth, a token
// ring). The callback captures the 40-byte actor struct — the size of a
// typical simulator capture list (this + a few request fields) — which a
// 48-byte EventFn holds inline and std::function's 16-byte small-buffer
// optimization does not.
// ---------------------------------------------------------------------------

enum class Dist {
    kUniform,  ///< hold ~ U[0.5, 1.5) ms
    kSkewed,   ///< 90% U[0, 0.1) ms, 10% U[0, 100) ms
    kEqual,    ///< hold = 0: every event at one timestamp (degenerate)
};

// Hold draws come from an inline splitmix64 stream, not sim::Rng: both
// engines replay the identical sequence (the order cross-check depends on
// that), and the ~2 ns draw keeps the measured events/s about engine cost
// instead of mt19937 cost — the standard choice for hold-model scheduler
// benchmarks.
std::uint64_t next_u64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}
double next_unit(std::uint64_t& s) {  // [0, 1)
    return double(next_u64(s) >> 11) * 0x1.0p-53;
}

template <typename Eng>
struct HoldActor {
    Eng* eng = nullptr;
    std::uint64_t* rng = nullptr;
    std::uint64_t* remaining = nullptr;
    std::uint64_t* hash = nullptr;
    Dist dist = Dist::kUniform;

    double draw() const {
        switch (dist) {
            case Dist::kUniform: return 0.5e-3 + next_unit(*rng) * 1.0e-3;
            case Dist::kSkewed: {
                const double u = next_unit(*rng);
                return u < 0.9 ? next_unit(*rng) * 0.1e-3
                               : next_unit(*rng) * 100e-3;
            }
            case Dist::kEqual: return 0.0;
        }
        return 0.0;
    }

    void fire() const {
        // Fold the dispatch time into an FNV-1a stream: identical hashes
        // mean both engines dispatched in the identical total order.
        *hash = (*hash ^ std::bit_cast<std::uint64_t>(eng->now())) *
                0x100000001b3ull;
        if (*remaining == 0) return;
        --*remaining;
        HoldActor self = *this;
        eng->schedule_after(draw(), [self] { self.fire(); });
    }
};

struct WorkloadResult {
    double events_per_s = 0.0;
    std::uint64_t order_hash = 0;
    bool heap_fallback = false;
};

template <typename Eng>
WorkloadResult run_hold(std::size_t depth, std::uint64_t events, Dist dist,
                        std::uint64_t seed) {
    Eng eng;
    std::uint64_t rng = seed;
    std::uint64_t remaining = events;
    std::uint64_t hash = 0xcbf29ce484222325ull;
    HoldActor<Eng> actor{&eng, &rng, &remaining, &hash, dist};

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < depth; ++i)
        eng.schedule_after(actor.draw(), [actor] { actor.fire(); });
    const std::uint64_t ran = eng.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    WorkloadResult r;
    r.events_per_s = double(ran) / wall;
    r.order_hash = hash;
    if constexpr (std::is_same_v<Eng, sim::Engine>)
        r.heap_fallback = eng.scheduler_heap_fallback();
    return r;
}

constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

struct Workload {
    const char* name;
    std::size_t depth;
    Dist dist;
    bool acceptance;  ///< the >= 3x bar applies to this workload
};

constexpr Workload kWorkloads[] = {
    {"ring_depth64_uniform", 64, Dist::kUniform, false},
    {"hold_depth4096_uniform", 4096, Dist::kUniform, false},
    {"hold_depth16384_uniform", 16384, Dist::kUniform, false},
    {"hold_depth65536_uniform", 65536, Dist::kUniform, false},
    {"hold_depth262144_uniform", 262144, Dist::kUniform, true},
    {"hold_depth4096_skewed", 4096, Dist::kSkewed, false},
    {"hold_depth4096_equal_ts", 4096, Dist::kEqual, false},
};
constexpr double kRequiredSpeedup = 3.0;
// --smoke is a fast gross-regression tripwire, not the perf gate: 100k
// events cannot warm a depth-262144 queue (the fill would dominate the
// measurement), so deep workloads are skipped and the bar drops to a
// loose sanity threshold on the depth-4096 row. The >= 3x acceptance
// claim is only ever made by full runs.
constexpr double kRequiredSpeedupSmoke = 1.2;

const char* acceptance_workload(bool smoke) {
    if (smoke) return "hold_depth4096_uniform";
    for (const auto& w : kWorkloads)
        if (w.acceptance) return w.name;
    return "?";
}

struct Row {
    std::string name;
    std::uint64_t events = 0;
    double baseline_eps = 0.0;
    double engine_eps = 0.0;
    double speedup = 0.0;
    bool order_identical = false;
    bool heap_fallback = false;
};

void write_json(const std::vector<Row>& rows, double accepted_speedup,
                bool pass, bool smoke) {
    std::ofstream f("BENCH_engine.json");
    f.precision(0);
    f << std::fixed;
    f << "{\n  \"schema\": \"kooza.bench_engine/1\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        f << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
          << ", \"baseline_events_per_s\": " << r.baseline_eps
          << ", \"engine_events_per_s\": " << r.engine_eps;
        f.precision(3);
        f << ", \"speedup\": " << r.speedup;
        f.precision(0);
        f << ", \"order_identical\": " << (r.order_identical ? "true" : "false")
          << ", \"heap_fallback\": " << (r.heap_fallback ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f.precision(3);
    f << "  ],\n  \"acceptance\": {\"workload\": \""
      << acceptance_workload(smoke) << "\", \"required_speedup\": "
      << (smoke ? kRequiredSpeedupSmoke : kRequiredSpeedup)
      << ", \"speedup\": " << accepted_speedup
      << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
}

// google-benchmark registrations so --benchmark_* flags time the hold
// model here too (events per iteration kept small).
void BM_EngineHold(benchmark::State& state) {
    for (auto _ : state) {
        const auto r =
            run_hold<sim::Engine>(1024, 100'000, Dist::kUniform, kSeed);
        benchmark::DoNotOptimize(r.order_hash);
    }
}
BENCHMARK(BM_EngineHold)->Unit(benchmark::kMillisecond);

void BM_BaselineHold(benchmark::State& state) {
    for (auto _ : state) {
        const auto r =
            run_hold<BaselineEngine>(1024, 100'000, Dist::kUniform, kSeed);
        benchmark::DoNotOptimize(r.order_hash);
    }
}
BENCHMARK(BM_BaselineHold)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    using kooza::bench::Table;
    using kooza::bench::fmt;

    bool smoke = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            args.push_back(argv[i]);
    }
    argc = int(args.size());

    const std::uint64_t events = smoke ? 100'000 : 1'000'000;
    kooza::bench::print_run_header(kSeed);
    std::cout << "\nEvent core: calendar queue + EventFn arena vs "
                 "std::function binary heap ("
              << events << " events/workload" << (smoke ? ", --smoke" : "")
              << ")\n\n";

    std::vector<Row> rows;
    Table table({26, 10, 14, 14, 9, 7, 10});
    table.row("workload", "events", "baseline ev/s", "engine ev/s", "speedup",
              "order", "fallback");
    table.rule();
    double accepted_speedup = 0.0;
    // Best-of-N, interleaved: each rep is deterministic (same seed, same
    // event sequence), so the fastest rep is the cleanest estimate of the
    // engine's true cost — slower reps only add scheduler/cache
    // interference from outside the process. Interleaving the two engines
    // keeps slow system phases from biasing one side.
    const int reps = smoke ? 2 : 3;
    for (const auto& w : kWorkloads) {
        if (smoke && w.depth * 2 > events) {
            std::cout << "  (skipping " << w.name
                      << ": fill would dominate a smoke-sized run)\n";
            continue;
        }
        WorkloadResult base{}, eng{};
        for (int rep = 0; rep < reps; ++rep) {
            const auto b =
                run_hold<BaselineEngine>(w.depth, events, w.dist, kSeed);
            const auto e = run_hold<sim::Engine>(w.depth, events, w.dist, kSeed);
            if (rep == 0) {
                base = b;
                eng = e;
            } else {
                base.events_per_s = std::max(base.events_per_s, b.events_per_s);
                eng.events_per_s = std::max(eng.events_per_s, e.events_per_s);
            }
        }
        Row r;
        r.name = w.name;
        r.events = events;
        r.baseline_eps = base.events_per_s;
        r.engine_eps = eng.events_per_s;
        r.speedup = eng.events_per_s / base.events_per_s;
        r.order_identical = base.order_hash == eng.order_hash;
        r.heap_fallback = eng.heap_fallback;
        if (std::string_view(w.name) == acceptance_workload(smoke))
            accepted_speedup = r.speedup;
        rows.push_back(r);
        table.row(r.name, r.events, fmt(r.baseline_eps / 1e6, 2) + "M",
                  fmt(r.engine_eps / 1e6, 2) + "M", fmt(r.speedup, 2) + "x",
                  r.order_identical ? "same" : "DIFF",
                  r.heap_fallback ? "heap" : "cal");
    }
    table.rule();

    const bool order_ok = std::all_of(rows.begin(), rows.end(),
                                      [](const Row& r) { return r.order_identical; });
    const double required = smoke ? kRequiredSpeedupSmoke : kRequiredSpeedup;
    const bool pass = accepted_speedup >= required && order_ok;
    std::cout << "\nacceptance (" << acceptance_workload(smoke)
              << (smoke ? ", smoke tripwire" : "") << "): speedup "
              << fmt(accepted_speedup, 2) << "x, bar >= " << fmt(required, 1)
              << "x, dispatch order " << (order_ok ? "identical" : "DIVERGED")
              << " => " << (pass ? "PASS" : "FAIL") << "\n";

    write_json(rows, accepted_speedup, pass, smoke);
    std::cout << "wrote BENCH_engine.json\n\n";
    if (!pass) return 1;

    return kooza::bench::run_benchmarks(argc, args.data());
}
