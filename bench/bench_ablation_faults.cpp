// Ablation A8: chunkserver failure rate vs degraded-mode behavior and
// model validation error.
//
// The survey's models are trained on healthy traces; production clusters
// are not healthy. This bench sweeps the fault injector's failure rate
// (MTBF per server) over a micro workload on a replicated cluster and
// reports how the degraded capture looks (failovers, failed requests,
// re-replications) and how far an in-breadth KOOZA model trained on the
// degraded trace drifts from it when replayed on a healthy device stack —
// the validation-error inflation a practitioner should expect when the
// training window contained failures.

#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/multiserver.hpp"
#include "gfs/faults.hpp"
#include "stats/descriptive.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 47;

gfs::GfsConfig fault_config(double mtbf) {
    gfs::GfsConfig cfg;
    cfg.n_chunkservers = 4;
    cfg.replication = 2;
    cfg.seed = kSeed;
    if (mtbf > 0.0) {
        cfg.faults.enabled = true;
        cfg.faults.mtbf = mtbf;
        cfg.faults.mttr = 5.0;
        cfg.faults.horizon = 260.0;  // covers the ~250 s micro schedule
    }
    return cfg;
}

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A8 - failure rate (per-server MTBF) vs degraded-mode\n"
              << " capture and model validation error (seed=" << kSeed << ")\n"
              << "==================================================================\n\n";

    bench::Table t({10, 10, 10, 11, 11, 11, 14});
    t.row("MTBF(s)", "Crashes", "Repairs", "Failovers", "FailedReq", "Complete",
          "LatencyErr%");
    t.rule();

    struct Row {
        double mtbf = 0.0;
        std::uint64_t crashes = 0, repairs = 0, failovers = 0, failed = 0,
                      completed = 0;
        double lat_err = 0.0;
    };
    const std::vector<double> mtbfs{0.0, 120.0, 60.0, 30.0, 15.0};
    const auto rows = bench::sweep(mtbfs.size(), [&](std::size_t i) {
        const double mtbf = mtbfs[i];
        gfs::Cluster cluster(fault_config(mtbf));
        sim::Rng rng(kSeed);
        // Rate kept well below single-stack saturation so the replayed
        // model isn't queueing-dominated and the sweep isolates the
        // failure-rate effect.
        workloads::MicroProfile profile({.count = 1000, .arrival_rate = 4.0});
        profile.generate(rng).install(cluster);
        cluster.run();
        const auto ts = cluster.traces();
        const auto orig = trace::extract_features(ts);
        const double orig_lat = stats::mean(trace::column_latency(orig));

        // Multi-server composition: one model instance per monitored
        // server, replayed sharded — the same scale the capture ran at,
        // so the sweep isolates the failure-rate effect.
        std::vector<trace::TraceSet> per_server;
        for (std::size_t s = 0; s < cluster.n_servers(); ++s)
            per_server.push_back(cluster.traces_for_server(s));
        const auto model = core::ClusterModel::train(per_server);
        sim::Rng gen_rng(kSeed + i + 1);
        const auto w = model.generate(120.0, gen_rng);
        auto rc = bench::replay_config(cluster.config(),
                                       model.server(0).cpu_verify_fraction());
        rc.n_servers = cluster.n_servers();
        const core::Replayer rep(rc);
        const double lat = stats::mean(rep.replay_sharded(w).latencies);

        Row r;
        r.mtbf = mtbf;
        if (const auto* inj = cluster.fault_injector()) {
            r.crashes = inj->crashes();
            r.repairs = inj->repairs();
        }
        r.failovers = cluster.failovers();
        r.failed = cluster.failed_requests();
        r.completed = cluster.completed();
        r.lat_err = stats::variation_pct(lat, orig_lat);
        return r;
    });
    for (const auto& r : rows)
        t.row(r.mtbf > 0.0 ? bench::fmt(r.mtbf, 0) : std::string("inf"), r.crashes,
              r.repairs, r.failovers, r.failed, r.completed, bench::fmt(r.lat_err, 1));
    std::cout << "\nExpected shape: failovers, re-replications and failed requests\n"
              << "grow as MTBF shrinks, and the model's replay error inflates with\n"
              << "the failure rate — failover waits stretch the captured latencies\n"
              << "but the replayed device stack is healthy, so a model trained on\n"
              << "a degraded window overestimates healthy-cluster latency.\n\n";
}

void BM_FaultedCaptureRun(benchmark::State& state) {
    const double mtbf = double(state.range(0));
    for (auto _ : state) {
        gfs::Cluster cluster(fault_config(mtbf));
        sim::Rng rng(kSeed);
        workloads::MicroProfile profile({.count = 200, .arrival_rate = 12.0});
        profile.generate(rng).install(cluster);
        cluster.run();
        benchmark::DoNotOptimize(cluster.completed());
    }
}
BENCHMARK(BM_FaultedCaptureRun)->Arg(0)->Arg(15);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_ablation();
    return kooza::bench::run_benchmarks(argc, argv);
}
