// bench_closedloop — the closed-loop concurrency study the paper's
// cross-examination motivates: open-loop models replay a fixed arrival
// list, but real clients wait for completions, so tail latency and
// goodput react to the system under test. Three questions, one JSON:
//
//  1. Concurrency sweep: p50/p95/p99 latency and goodput as the closed
//     client population grows (window 1, so the interactive response-time
//     law R = N/X - Z applies exactly; the law column cross-checks the
//     simulator against textbook queueing).
//  2. Admission control: a static ticket sweep finds the offline-optimal
//     concurrency limit (smallest ticket count within 5% of peak
//     goodput), then the adaptive probe-and-adapt controller runs on the
//     same workload. Acceptance: the converged ticket count lands within
//     15% (or +-1 ticket) of the offline optimum.
//  3. Prediction error: a model trained on an OPEN-loop capture of the
//     same request mix replays against the CLOSED-loop observation — the
//     "Latency p99" row's variation is how badly an open-loop-trained
//     model mispredicts a closed-loop tail.
//
// Written to BENCH_closedloop.json. Run with --smoke for a fast
// regression check; the CMake target `bench_closedloop_smoke` wires that
// into the default ctest tier.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/capture.hpp"
#include "core/generator.hpp"
#include "core/validator.hpp"
#include "queueing/interactive.hpp"
#include "trace/features.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 42;
/// Converged tickets must land within this fraction of the offline
/// optimum (never tighter than +-1 ticket — the counts are integers).
constexpr double kConvergenceTolerance = 0.15;

/// The contended workload both admission legs share: 32 clients x 4
/// outstanding against one server saturates the device pipeline, so the
/// ticket count genuinely matters.
core::CaptureOptions saturated_options(std::size_t count) {
    core::CaptureOptions co;
    co.closed_loop = true;
    co.clients = 32;
    co.outstanding = 4;
    co.think_time = 0.001;
    co.count = count;
    co.seed = kSeed;
    co.read_fraction = 0.9;
    co.read_size = 64ull << 10;
    co.write_size = 256ull << 10;
    return co;
}

// ---------------------------------------------------------------------------
// Leg 1: concurrency sweep + interactive response-time law cross-check.
// ---------------------------------------------------------------------------

struct SweepRow {
    std::size_t clients = 0;
    double goodput = 0.0;
    double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
    double law = 0.0;      ///< R = N/X - Z predicted from measured goodput
    double law_err = 0.0;  ///< |law - mean| / mean, percent
};

std::vector<SweepRow> concurrency_sweep(bool smoke) {
    const auto populations = smoke ? std::vector<std::size_t>{1, 4, 16}
                                   : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64};
    const double think = 0.01;
    std::vector<SweepRow> rows;
    bench::Table table({9, 12, 11, 11, 11, 11, 11, 9});
    table.row("clients", "goodput/s", "mean", "p50", "p95", "p99", "law R",
              "law err");
    table.rule();
    for (const auto n : populations) {
        core::CaptureOptions co;
        co.closed_loop = true;
        co.clients = n;
        co.outstanding = 1;  // window 1: the law's N is exactly `clients`
        co.think_time = think;
        co.count = (smoke ? 100 : 300) * n;
        co.seed = kSeed;
        co.read_fraction = 0.9;
        co.read_size = 64ull << 10;
        co.write_size = 256ull << 10;
        const auto res = core::run_capture(co);
        SweepRow r;
        r.clients = n;
        r.goodput = res.goodput;
        r.mean = res.latency.mean;
        r.p50 = res.latency.median;
        r.p95 = res.latency.p95;
        r.p99 = res.latency.p99;
        r.law = queueing::interactive_response_time(n, think, res.goodput);
        r.law_err = r.mean > 0.0 ? std::abs(r.law - r.mean) / r.mean * 100.0 : 0.0;
        rows.push_back(r);
        table.row(n, bench::fmt(r.goodput, 1), bench::fmt_ms(r.mean),
                  bench::fmt_ms(r.p50), bench::fmt_ms(r.p95), bench::fmt_ms(r.p99),
                  bench::fmt_ms(r.law), bench::fmt_pct(r.law_err, 1));
    }
    table.rule();
    return rows;
}

// ---------------------------------------------------------------------------
// Leg 2: offline-optimal ticket sweep vs the adaptive controller.
// ---------------------------------------------------------------------------

struct TicketPoint {
    std::uint32_t tickets = 0;
    double goodput = 0.0;
};

struct AdmissionResult {
    std::vector<TicketPoint> sweep;
    std::uint32_t offline_optimal = 0;
    std::uint32_t converged = 0;
    std::uint32_t tolerance = 0;
    double adaptive_goodput = 0.0;
    bool pass = false;
};

AdmissionResult admission_study(bool smoke) {
    const auto ticket_counts = smoke
                                   ? std::vector<std::uint32_t>{1, 2, 4, 8, 16}
                                   : std::vector<std::uint32_t>{1, 2, 3, 4, 6, 8,
                                                                12, 16, 24, 32};
    const std::size_t count = smoke ? 1200 : 4000;
    AdmissionResult out;

    // The admission study measures goodput as a function of the
    // concurrency *limit*, so the offered load must fit the wait queue:
    // 32 clients x 2 outstanding = 64 concurrent requests against the
    // 64-deep queue means the queue policy (almost) never sheds, and
    // every pinned run measures the ticket count, not the reject rate.
    // (4 outstanding would bounce half the offered load instantly and
    // end the run before the controller's probe loop saw two windows.)
    auto study_options = [count] {
        auto co = saturated_options(count);
        co.outstanding = 2;
        return co;
    };

    bench::Table table({10, 14, 10});
    table.row("tickets", "goodput/s", "");
    table.rule();
    double best = 0.0;
    for (const auto t : ticket_counts) {
        auto co = study_options();
        co.admission = "queue";
        co.admission_tickets = t;  // pinned: probing off
        const auto res = core::run_capture(co);
        out.sweep.push_back({t, res.goodput});
        best = std::max(best, res.goodput);
    }
    // Offline optimum: the smallest pinned ticket count within 5% of peak
    // goodput — the same smallest-within-band criterion the controller's
    // hysteresis uses, so the two searches target the same answer.
    for (const auto& p : out.sweep) {
        if (p.goodput >= 0.95 * best) {
            out.offline_optimal = p.tickets;
            break;
        }
    }
    for (const auto& p : out.sweep)
        table.row(p.tickets, bench::fmt(p.goodput, 1),
                  p.tickets == out.offline_optimal ? "<= optimal" : "");
    table.rule();

    auto co = study_options();
    co.admission = "queue";  // adaptive: tickets probe from the default
    const auto adaptive = core::run_capture(co);
    out.converged = adaptive.converged_tickets;
    out.adaptive_goodput = adaptive.goodput;
    out.tolerance = std::max<std::uint32_t>(
        1, std::uint32_t(kConvergenceTolerance * double(out.offline_optimal)));
    const auto diff = out.converged > out.offline_optimal
                          ? out.converged - out.offline_optimal
                          : out.offline_optimal - out.converged;
    out.pass = diff <= out.tolerance;
    std::cout << "\nadaptive controller: converged tickets=" << out.converged
              << " goodput=" << bench::fmt(out.adaptive_goodput, 1)
              << "/s vs offline optimal=" << out.offline_optimal << " (+-"
              << out.tolerance << ") => " << (out.pass ? "PASS" : "FAIL") << "\n";
    return out;
}

// ---------------------------------------------------------------------------
// Leg 3: per-scenario tail report (the closed-loop scenario library).
// ---------------------------------------------------------------------------

struct ScenarioRow {
    std::string name;
    std::uint64_t completed = 0, rejected = 0;
    double goodput = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

std::vector<ScenarioRow> scenario_report(bool smoke) {
    std::vector<ScenarioRow> rows;
    bench::Table table({24, 11, 10, 12, 11, 11, 11});
    table.row("scenario", "completed", "rejected", "goodput/s", "p50", "p95",
              "p99");
    table.rule();
    for (const auto& name : workloads::closed_loop_scenario_names()) {
        core::CaptureOptions co;
        co.scenario = name;
        co.count = smoke ? 500 : 2000;
        co.seed = kSeed;
        co.admission = "queue";
        const auto res = core::run_capture(co);
        ScenarioRow r;
        r.name = name;
        r.completed = res.completed;
        r.rejected = res.rejected;
        r.goodput = res.goodput;
        r.p50 = res.latency.median;
        r.p95 = res.latency.p95;
        r.p99 = res.latency.p99;
        rows.push_back(r);
        table.row(r.name, r.completed, r.rejected, bench::fmt(r.goodput, 1),
                  bench::fmt_ms(r.p50), bench::fmt_ms(r.p95), bench::fmt_ms(r.p99));
    }
    table.rule();
    return rows;
}

// ---------------------------------------------------------------------------
// Leg 4: open-loop-trained model vs closed-loop observation.
// ---------------------------------------------------------------------------

double p99_prediction_error(bool smoke) {
    // Train on an open-loop capture of the same request mix the
    // closed-loop pool draws (sizes, read fraction) — the model never
    // sees closed-loop feedback.
    core::CaptureOptions open;
    open.profile = "micro";
    open.count = smoke ? 400 : 1500;
    open.rate = 50.0;
    open.seed = kSeed;
    open.read_fraction = 0.9;
    open.read_size = 64ull << 10;
    open.write_size = 256ull << 10;
    const auto train_cap = core::run_capture(open);

    core::Trainer trainer({.workload_name = "closedloop-openloop-model"});
    const auto model = trainer.train(train_cap.traces);

    const auto closed_cap = core::run_capture(saturated_options(smoke ? 800 : 3000));

    sim::Rng rng(kSeed);
    const auto synthetic =
        core::Generator(model).generate(closed_cap.traces.requests.size(), rng);
    core::Replayer replayer(
        bench::replay_config(gfs::GfsConfig{}, model.cpu_verify_fraction()));
    const auto replayed = replayer.replay(synthetic);
    auto report = core::compare_features(trace::extract_features(closed_cap.traces),
                                         trace::extract_features(replayed.traces),
                                         "open-loop model vs closed-loop run");
    report.unknown_phases = replayed.unknown_phases;
    std::cout << report.to_table();
    for (const auto& r : report.rows) {
        if (r.metric == "Latency p99" && !r.absolute) {
            std::cout << "  open-loop-trained p99 prediction error: "
                      << bench::fmt_pct(r.variation_pct) << "\n";
            return r.variation_pct;
        }
    }
    return 0.0;
}

// ---------------------------------------------------------------------------
// JSON + google-benchmark registrations.
// ---------------------------------------------------------------------------

void write_json(const std::vector<SweepRow>& sweep,
                const std::vector<ScenarioRow>& scenarios,
                const AdmissionResult& adm, double p99_err, bool smoke) {
    std::ofstream f("BENCH_closedloop.json");
    f.precision(3);
    f << std::fixed;
    f << "{\n  \"schema\": \"kooza.bench_closedloop/1\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"concurrency_sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto& r = sweep[i];
        f << "    {\"clients\": " << r.clients << ", \"goodput_rps\": " << r.goodput
          << ", \"latency_p50_ms\": " << r.p50 * 1e3
          << ", \"latency_p95_ms\": " << r.p95 * 1e3
          << ", \"latency_p99_ms\": " << r.p99 * 1e3
          << ", \"law_error_pct\": " << r.law_err << "}"
          << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto& r = scenarios[i];
        f << "    {\"name\": \"" << r.name << "\", \"completed\": " << r.completed
          << ", \"rejected\": " << r.rejected << ", \"goodput_rps\": " << r.goodput
          << ", \"latency_p50_ms\": " << r.p50 * 1e3
          << ", \"latency_p95_ms\": " << r.p95 * 1e3
          << ", \"latency_p99_ms\": " << r.p99 * 1e3 << "}"
          << (i + 1 < scenarios.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"ticket_sweep\": [\n";
    for (std::size_t i = 0; i < adm.sweep.size(); ++i) {
        const auto& p = adm.sweep[i];
        f << "    {\"tickets\": " << p.tickets << ", \"goodput_rps\": " << p.goodput
          << "}" << (i + 1 < adm.sweep.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"admission\": {\"offline_optimal_tickets\": "
      << adm.offline_optimal << ", \"converged_tickets\": " << adm.converged
      << ", \"adaptive_goodput_rps\": " << adm.adaptive_goodput
      << ", \"tolerance_tickets\": " << adm.tolerance
      << ", \"pass\": " << (adm.pass ? "true" : "false")
      << "},\n  \"p99_prediction\": {\"open_loop_trained_error_pct\": " << p99_err
      << "}\n}\n";
}

void BM_ClosedLoopCapture(benchmark::State& state) {
    for (auto _ : state) {
        auto co = saturated_options(400);
        const auto res = core::run_capture(co);
        benchmark::DoNotOptimize(res.completed);
    }
}
BENCHMARK(BM_ClosedLoopCapture)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            args.push_back(argv[i]);
    }
    argc = int(args.size());

    kooza::bench::print_run_header(kSeed);
    std::cout << "\nClosed-loop concurrency study"
              << (smoke ? " (--smoke sizes)" : "") << "\n\n"
              << "concurrency sweep (window 1, think 10 ms; law R = N/X - Z):\n";
    const auto sweep = concurrency_sweep(smoke);

    std::cout << "\nticket sweep (32 clients x 2 outstanding, pinned tickets):\n";
    const auto adm = admission_study(smoke);

    std::cout << "\nclosed-loop scenarios (adaptive admission, queue policy):\n";
    const auto scenarios = scenario_report(smoke);

    std::cout << "\nopen-loop-trained model replayed against the closed-loop "
                 "observation:\n";
    const double p99_err = p99_prediction_error(smoke);

    write_json(sweep, scenarios, adm, p99_err, smoke);
    std::cout << "\nwrote BENCH_closedloop.json\n\n";
    if (!adm.pass) return 1;

    return kooza::bench::run_benchmarks(argc, args.data());
}
