// Ablation A2: Dapper-style span sampling rate vs structure fidelity and
// tracing overhead.
//
// Dapper samples 1 of 1000 requests to keep overhead < 1.5% (paper,
// Section 2.2). This bench sweeps the head-sampling rate and reports how
// many structure variants the KOOZA trainer still recovers, the latency
// error of the resulting model, and the span operations actually recorded
// (the overhead proxy).

#include <iostream>

#include "bench_util.hpp"
#include "core/generator.hpp"
#include "stats/descriptive.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 32;

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A2 - span sampling rate (Dapper's 1-in-N) vs structure\n"
              << " fidelity and tracing overhead (seed=" << kSeed << ")\n"
              << "==================================================================\n\n";

    bench::Table t({12, 14, 14, 16, 16, 14});
    t.row("SampleEvery", "SpansKept", "OpsRecorded", "ReadVariants", "LatencyErr%",
          "Fallback");
    t.rule();

    struct Row {
        std::uint64_t every = 0, ops = 0;
        std::size_t spans = 0, variants = 0;
        double lat_err = 0.0;
        bool fellback = false;
    };
    const std::vector<std::uint64_t> everies{1, 10, 100, 1000};
    const auto rows = bench::sweep(everies.size(), [&](std::size_t i) {
        const std::uint64_t every = everies[i];
        gfs::GfsConfig cfg;
        cfg.span_sample_every = every;
        gfs::Cluster cluster(cfg);
        sim::Rng rng(kSeed);
        // Keep the server comfortably below saturation: near rho -> 1,
        // queueing amplifies any model error and would swamp the effect
        // of the sampling rate being studied here.
        workloads::MicroProfile profile({.count = 2000, .arrival_rate = 12.0});
        profile.generate(rng).install(cluster);
        cluster.run();
        const auto ts = cluster.traces();
        const auto orig = trace::extract_features(ts);
        const double orig_lat = stats::mean(trace::column_latency(orig));

        const auto model = core::Trainer().train(ts);
        sim::Rng gen_rng(kSeed + every);
        const auto w = core::Generator(model).generate(1000, gen_rng);
        core::Replayer rep(bench::replay_config(cfg, model.cpu_verify_fraction()));
        const double lat = stats::mean(rep.replay(w).latencies);

        return Row{every,
                   cluster.tracer().operations_recorded(),
                   ts.spans.size(),
                   model.reads().structure.variants().size(),
                   stats::variation_pct(lat, orig_lat),
                   model.reads().structure.training_traces() == 0};
    });
    for (const auto& r : rows)
        t.row(std::string("1/") + std::to_string(r.every), r.spans, r.ops, r.variants,
              bench::fmt(r.lat_err, 1), r.fellback ? "canonical" : "learned");
    std::cout << "\nExpected shape: recorded span operations drop ~linearly with the\n"
              << "sampling factor while the dominant structure (and hence latency\n"
              << "fidelity) survives aggressive sampling — Dapper's design point.\n\n";
}

void BM_TracedVsUntracedRun(benchmark::State& state) {
    const std::uint64_t every = std::uint64_t(state.range(0));
    for (auto _ : state) {
        gfs::GfsConfig cfg;
        cfg.span_sample_every = every;
        gfs::Cluster cluster(cfg);
        sim::Rng rng(kSeed);
        workloads::MicroProfile profile({.count = 200, .arrival_rate = 40.0});
        profile.generate(rng).install(cluster);
        cluster.run();
        benchmark::DoNotOptimize(cluster.completed());
    }
}
BENCHMARK(BM_TracedVsUntracedRun)->Arg(1)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_ablation();
    return kooza::bench::run_benchmarks(argc, argv);
}
