// Figure 1 reproduction: "GFS Structure Diagram for a User Request".
//
// The paper's Fig. 1 shows the subsystem path of one request through a
// GFS chunkserver: Network -> CPU (+Memory) -> Disk -> CPU -> Network,
// with writes additionally fanning out to replicas. Here one read and one
// (replicated) write are traced through the simulator and the recovered
// Dapper-style span trees are printed — the figure, as data.

#include <iostream>

#include "bench_util.hpp"
#include "trace/span.hpp"

namespace {

using namespace kooza;
using trace::IoType;

void print_fig1() {
    std::cout << "==================================================================\n"
              << " Figure 1 - GFS structure diagram for a user request\n"
              << " (recovered from Dapper-style span trees of the simulator)\n"
              << "==================================================================\n\n";

    gfs::GfsConfig cfg;
    cfg.n_chunkservers = 3;
    cfg.replication = 3;
    gfs::Cluster cluster(cfg);
    cluster.create_file("fig1.dat", 64ull << 20);
    const auto read_id = cluster.submit(
        {0.0, "fig1.dat", 0, 64ull << 10, IoType::kRead, 0});
    const auto write_id = cluster.submit(
        {1.0, "fig1.dat", 8ull << 20, 4ull << 20, IoType::kWrite, 0});
    cluster.run();
    const auto ts = cluster.traces();

    std::cout << "--- 64 KB read (one chunkserver) ---\n";
    std::cout << trace::SpanTree(ts.spans, read_id).render() << "\n";
    std::cout << "--- 4 MB write (3-way replication chain) ---\n";
    std::cout << trace::SpanTree(ts.spans, write_id).render() << "\n";

    std::cout << "Subsystem path (read):  NET -> CPU -> MEM -> DISK -> CPU -> NET\n"
              << "Subsystem path (write): NET -> CPU -> MEM -> DISK -> REPLICAS -> "
                 "CPU -> NET\n\n";
}

void BM_TraceOneRequest(benchmark::State& state) {
    for (auto _ : state) {
        gfs::GfsConfig cfg;
        gfs::Cluster cluster(cfg);
        cluster.create_file("f", 64ull << 20);
        cluster.submit({0.0, "f", 0, 64ull << 10, IoType::kRead, 0});
        cluster.run();
        benchmark::DoNotOptimize(cluster.traces().spans.size());
    }
}
BENCHMARK(BM_TraceOneRequest);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header();
    print_fig1();
    return kooza::bench::run_benchmarks(argc, argv);
}
