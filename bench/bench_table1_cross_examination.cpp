// Table 1 reproduction: "Qualitative Comparison between the previous
// In-breadth and In-depth Models and KOOZA" — backed by measurements.
//
// The paper's Table 1 scores the three approaches on: request features,
// time dependencies, configurability, fine granularity, scalability,
// ease-of-use and completeness. Here all three models are trained on the
// same GFS trace (a mixed web-search-like workload with within-type size
// variance) and each axis is scored with a measured proxy:
//
//   request features   KS distance of synthetic vs original storage-size
//                      distribution (lower = captured)
//   time dependencies  phase-order recovery + latency error under replay
//   configurability    parameter count at two state-space granularities
//   fine granularity   whether per-state feature distributions exist
//   scalability        model size growth when composing 16 servers
//   ease-of-use        total parameters to fit
//   completeness       which of the two error axes stay under 15%

#include <chrono>
#include <iostream>

#include "baselines/hmm.hpp"
#include "baselines/inbreadth.hpp"
#include "baselines/indepth.hpp"
#include "bench_util.hpp"
#include "core/capture.hpp"
#include "core/generator.hpp"
#include "core/validator.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "trace/features.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace kooza;
using trace::IoType;

constexpr std::uint64_t kSeed = 7;

struct Scores {
    std::string name;
    double feature_ks = 1.0;     // storage-size distribution distance
    double latency_err_pct = 0.0;
    bool phase_order = false;
    std::size_t params_coarse = 0;
    std::size_t params_fine = 0;
    std::size_t params = 0;
    double train_ms = 0.0;       // default-config fit wall time
};

/// Wall-clock the default-configuration training call — the cost half of
/// every accuracy-vs-training-cost row.
template <typename Fn>
auto timed_train(Fn&& fn, double& out_ms) {
    const auto t0 = std::chrono::steady_clock::now();
    auto model = fn();
    const auto t1 = std::chrono::steady_clock::now();
    out_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return model;
}

struct Context {
    gfs::GfsConfig cfg;
    trace::TraceSet ts;
    std::vector<trace::RequestFeatures> orig;
    std::vector<double> orig_sizes;
    double orig_latency = 0.0;
};

Context make_context() {
    Context c;
    sim::Rng rng(kSeed);
    workloads::WebSearchProfile profile({.count = 500, .arrival_rate = 30.0});
    c.ts = bench::simulate(profile.generate(rng), c.cfg);
    c.orig = trace::extract_features(c.ts);
    c.orig_sizes = trace::column_storage_bytes(c.orig);
    c.orig_latency = stats::mean(trace::column_latency(c.orig));
    return c;
}

std::vector<double> sizes_of(const core::SyntheticWorkload& w) {
    std::vector<double> out;
    for (const auto& r : w.requests) out.push_back(double(r.storage_bytes));
    return out;
}

const std::vector<std::string> kFig1Path{"net.rx",  "cpu.verify",    "mem.buffer",
                                         "disk.io", "cpu.aggregate", "net.tx"};

Scores score_kooza(const Context& c) {
    Scores s;
    s.name = "KOOZA";
    core::TrainerConfig coarse;
    coarse.lbn_ranges = 2;
    coarse.util_levels = 2;
    core::TrainerConfig fine;
    fine.lbn_ranges = 16;
    fine.util_levels = 8;
    s.params_coarse = core::Trainer(coarse).train(c.ts).parameter_count();
    s.params_fine = core::Trainer(fine).train(c.ts).parameter_count();

    const auto model =
        timed_train([&] { return core::Trainer().train(c.ts); }, s.train_ms);
    s.params = model.parameter_count();
    s.phase_order = model.reads().structure.dominant() == kFig1Path;
    sim::Rng rng(kSeed + 1);
    const auto w = core::Generator(model).generate(500, rng);
    s.feature_ks = stats::ks_statistic_two_sample(c.orig_sizes, sizes_of(w));
    core::Replayer rep(bench::replay_config(c.cfg, model.cpu_verify_fraction()));
    const auto lat = stats::mean(rep.replay(w, core::ReplayMode::kStructured).latencies);
    s.latency_err_pct = stats::variation_pct(lat, c.orig_latency);
    return s;
}

Scores score_inbreadth(const Context& c) {
    Scores s;
    s.name = "In-breadth";
    core::TrainerConfig coarse;
    coarse.lbn_ranges = 2;
    coarse.util_levels = 2;
    core::TrainerConfig fine;
    fine.lbn_ranges = 16;
    fine.util_levels = 8;
    s.params_coarse =
        baselines::InBreadthModel::train(c.ts, coarse).parameter_count();
    s.params_fine = baselines::InBreadthModel::train(c.ts, fine).parameter_count();

    const auto model = timed_train(
        [&] { return baselines::InBreadthModel::train(c.ts); }, s.train_ms);
    s.params = model.parameter_count();
    s.phase_order = false;  // no structure information at all
    sim::Rng rng(kSeed + 2);
    const auto w = model.generate(500, rng);
    s.feature_ks = stats::ks_statistic_two_sample(c.orig_sizes, sizes_of(w));
    core::Replayer rep(bench::replay_config(c.cfg, 0.4));
    const auto lat =
        stats::mean(rep.replay(w, core::ReplayMode::kIndependent).latencies);
    s.latency_err_pct = stats::variation_pct(lat, c.orig_latency);
    return s;
}

Scores score_indepth(const Context& c) {
    Scores s;
    s.name = "In-depth";
    const auto model = timed_train(
        [&] { return baselines::InDepthModel::train(c.ts); }, s.train_ms);
    s.params = model.parameter_count();
    s.params_coarse = s.params;  // no state-space knob to turn
    s.params_fine = s.params;
    s.phase_order = model.read_structure().dominant() == kFig1Path;
    sim::Rng rng(kSeed + 3);
    const auto w = model.generate(500, rng);
    s.feature_ks = stats::ks_statistic_two_sample(c.orig_sizes, sizes_of(w));
    const auto lats = model.predict_latencies(500, rng);
    s.latency_err_pct =
        stats::variation_pct(stats::mean(lats), c.orig_latency);
    return s;
}

/// Fourth contender: the Harrison-style HMM storage baseline. Hidden
/// regimes give it the in-breadth marginals *plus* temporal texture, but
/// like in-breadth it carries no phase structure, so it replays in
/// independent mode.
Scores score_hmm(const Context& c) {
    Scores s;
    s.name = "HMM";
    baselines::HmmConfig coarse{.n_states = 2};
    baselines::HmmConfig fine{.n_states = 16};
    s.params_coarse = baselines::HmmModel::train(c.ts, coarse).parameter_count();
    s.params_fine = baselines::HmmModel::train(c.ts, fine).parameter_count();

    const auto model =
        timed_train([&] { return baselines::HmmModel::train(c.ts); }, s.train_ms);
    s.params = model.parameter_count();
    s.phase_order = false;  // hidden regimes, but no request structure
    sim::Rng rng(kSeed + 4);
    const auto w = model.generate(500, rng);
    s.feature_ks = stats::ks_statistic_two_sample(c.orig_sizes, sizes_of(w));
    core::Replayer rep(bench::replay_config(c.cfg, 0.4));
    const auto lat =
        stats::mean(rep.replay(w, core::ReplayMode::kIndependent).latencies);
    s.latency_err_pct = stats::variation_pct(lat, c.orig_latency);
    return s;
}

const char* yes_no(bool b) { return b ? "yes" : "no"; }

void print_table1() {
    std::cout
        << "============================================================================\n"
        << " Table 1 - Cross-examination of In-breadth / In-depth / HMM / KOOZA\n"
        << " (trained on the same web-search-like GFS trace; seed=" << kSeed << ")\n"
        << "============================================================================\n\n";
    const auto c = make_context();
    // The four contenders train and validate independently from the same
    // (read-only) context — score them across the pool.
    const auto rows = bench::sweep(4, [&](std::size_t i) {
        switch (i) {
            case 0: return score_inbreadth(c);
            case 1: return score_indepth(c);
            case 2: return score_hmm(c);
            default: return score_kooza(c);
        }
    });

    // Accuracy vs training cost: the two error axes next to the fit wall
    // time and the parameter budget each model pays for them.
    bench::Table t({14, 16, 16, 18, 16, 12, 10});
    t.row("Model", "FeatureKS", "LatencyErr%", "PhaseOrder", "Params(2..16)",
          "Params", "FitMs");
    t.rule();
    for (const auto& s : rows)
        t.row(s.name, bench::fmt(s.feature_ks, 3), bench::fmt(s.latency_err_pct, 1),
              yes_no(s.phase_order),
              std::to_string(s.params_coarse) + ".." + std::to_string(s.params_fine),
              s.params, bench::fmt(s.train_ms, 2));

    std::cout << "\nPaper's qualitative axes, scored from the measurements above:\n\n";
    bench::Table q({20, 14, 14, 14, 14});
    q.row("Axis", "In-breadth", "In-depth", "HMM", "KOOZA");
    q.rule();
    auto feature_ok = [](const Scores& s) { return s.feature_ks < 0.1; };
    auto timing_ok = [](const Scores& s) {
        return s.phase_order && s.latency_err_pct < 15.0;
    };
    q.row("Request features", yes_no(feature_ok(rows[0])), yes_no(feature_ok(rows[1])),
          yes_no(feature_ok(rows[2])), yes_no(feature_ok(rows[3])));
    q.row("Time dependencies", yes_no(timing_ok(rows[0])), yes_no(timing_ok(rows[1])),
          yes_no(timing_ok(rows[2])), yes_no(timing_ok(rows[3])));
    q.row("Configurability", yes_no(rows[0].params_coarse != rows[0].params_fine),
          yes_no(rows[1].params_coarse != rows[1].params_fine),
          yes_no(rows[2].params_coarse != rows[2].params_fine),
          yes_no(rows[3].params_coarse != rows[3].params_fine));
    q.row("Fine granularity", "yes", "no", "per-regime", "yes");
    q.row("Scalability", "yes", "f(complexity)", "yes", "yes");
    q.row("Ease-of-use",
          rows[0].params < 5000 ? "yes" : "no",
          rows[1].params < 5000 ? "yes" : "no",
          rows[2].params < 5000 ? "yes" : "no",
          rows[3].params < 5000 ? "yes (4 models)" : "no");
    q.row("Completeness", yes_no(feature_ok(rows[0]) && timing_ok(rows[0])),
          yes_no(feature_ok(rows[1]) && timing_ok(rows[1])),
          yes_no(feature_ok(rows[2]) && timing_ok(rows[2])),
          yes_no(feature_ok(rows[3]) && timing_ok(rows[3])));
    std::cout << "\n";
}

/// Scenario axis: how well the KOOZA pipeline holds up when the training
/// trace comes from the scenario library (time-varying arrival rates,
/// tiered mixes, checkpoint bursts) rather than a stationary profile —
/// the cross-examination's "does the model survive nonstationarity" row.
void print_scenario_axis() {
    std::cout
        << "============================================================================\n"
        << " Scenario axis - KOOZA trained and validated per scenario-library workload\n"
        << "============================================================================\n\n";
    const auto& names = workloads::scenario_names();
    const auto rows = bench::sweep(names.size(), [&](std::size_t i) {
        core::CaptureOptions co;
        co.scenario = names[i];
        co.count = 300;
        co.rate = 40.0;
        co.period = 20.0;
        co.seed = kSeed;
        const auto cap = core::run_capture(co);
        Scores s;
        s.name = names[i];
        if (cap.traces.requests.empty()) return s;
        const auto orig = trace::extract_features(cap.traces);
        const auto orig_sizes = trace::column_storage_bytes(orig);
        const auto model =
            core::Trainer({.workload_name = "scenario-" + names[i]}).train(cap.traces);
        s.params = model.parameter_count();
        sim::Rng rng(kSeed + 1);
        const auto w =
            core::Generator(model).generate(cap.traces.requests.size(), rng);
        s.feature_ks = stats::ks_statistic_two_sample(orig_sizes, sizes_of(w));
        core::Replayer rep(
            bench::replay_config(gfs::GfsConfig{}, model.cpu_verify_fraction()));
        const auto lat =
            stats::mean(rep.replay(w, core::ReplayMode::kStructured).latencies);
        s.latency_err_pct =
            stats::variation_pct(lat, stats::mean(trace::column_latency(orig)));
        return s;
    });

    bench::Table t({14, 16, 16, 12});
    t.row("Scenario", "FeatureKS", "LatencyErr%", "Params");
    t.rule();
    for (const auto& s : rows)
        t.row(s.name, bench::fmt(s.feature_ks, 3), bench::fmt(s.latency_err_pct, 1),
              s.params);
    std::cout << "\n";
}

void BM_TrainAllThree(benchmark::State& state) {
    const auto c = make_context();
    for (auto _ : state) {
        auto a = core::Trainer().train(c.ts);
        auto b = baselines::InBreadthModel::train(c.ts);
        auto d = baselines::InDepthModel::train(c.ts);
        benchmark::DoNotOptimize(a.parameter_count() + b.parameter_count() +
                                 d.parameter_count());
    }
}
BENCHMARK(BM_TrainAllThree);

void BM_TrainHmm(benchmark::State& state) {
    const auto c = make_context();
    baselines::HmmConfig cfg{.n_states = std::size_t(state.range(0))};
    for (auto _ : state) {
        auto m = baselines::HmmModel::train(c.ts, cfg);
        benchmark::DoNotOptimize(m.parameter_count());
    }
    state.counters["params"] = double(
        baselines::HmmModel::train(c.ts, cfg).parameter_count());
}
BENCHMARK(BM_TrainHmm)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_table1();
    print_scenario_axis();
    return kooza::bench::run_benchmarks(argc, argv);
}
