// Table 2 reproduction: "Validation of Request Features and Latency
// Metrics using KOOZA".
//
// The paper issues two user requests against GFS — a 64 KB read and a
// 4 MB write — trains KOOZA, generates synthetic requests from the model,
// and compares per-subsystem features (network size, CPU utilization,
// memory size/type, storage size/type) and end-to-end latency. The paper
// reports <= 1% feature deviation and <= 6.6% latency deviation; the
// acceptance criterion here is the same shape: (near-)exact features,
// single-digit-percent latency.

#include <iostream>

#include "baselines/hmm.hpp"
#include "bench_util.hpp"
#include "core/capture.hpp"
#include "core/generator.hpp"
#include "core/validator.hpp"
#include "trace/features.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace kooza;
using trace::IoType;

constexpr std::uint64_t kSeed = 42;

/// Repeated unloaded instances of the paper's two requests (train set).
workloads::Workload training_workload(std::size_t repetitions) {
    workloads::Workload w;
    w.files.emplace_back("validate.dat", 64ull << 20);
    for (std::size_t i = 0; i < repetitions; ++i) {
        w.requests.push_back(
            {double(i), "validate.dat", 0, 64ull << 10, IoType::kRead, 0});
        w.requests.push_back(
            {double(i) + 0.5, "validate.dat", 8ull << 20, 4ull << 20, IoType::kWrite,
             0});
    }
    return w;
}

trace::RequestFeatures mean_features(const std::vector<trace::RequestFeatures>& fs,
                                     IoType t) {
    trace::RequestFeatures out;
    double n = 0, net = 0, cpu = 0, mem = 0, sto = 0, lat = 0, memw = 0, stow = 0;
    for (const auto& f : fs) {
        if (f.storage_type != t) continue;
        ++n;
        net += double(f.network_bytes);
        cpu += f.cpu_utilization;
        mem += double(f.memory_bytes);
        sto += double(f.storage_bytes);
        lat += f.latency;
        memw += f.memory_type == IoType::kWrite ? 1.0 : 0.0;
        stow += 1.0;
    }
    if (n == 0) return out;
    out.network_bytes = std::uint64_t(net / n);
    out.cpu_utilization = cpu / n;
    out.memory_bytes = std::uint64_t(mem / n);
    out.memory_type = memw * 2 > n ? IoType::kWrite : IoType::kRead;
    out.storage_bytes = std::uint64_t(sto / n);
    out.storage_type = t;
    out.latency = lat / n;
    return out;
}

struct Experiment {
    trace::TraceSet original;
    core::SyntheticWorkload synthetic;
    trace::TraceSet replayed;
    double verify_fraction = 0.4;
};

Experiment run_experiment() {
    const gfs::GfsConfig cfg;
    Experiment e;
    e.original = bench::simulate(training_workload(50), cfg);
    core::Trainer trainer({.workload_name = "table2-validation"});
    const auto model = trainer.train(e.original);
    e.verify_fraction = model.cpu_verify_fraction();
    sim::Rng rng(kSeed);
    e.synthetic = core::Generator(model).generate(200, rng);
    core::Replayer replayer(bench::replay_config(cfg, e.verify_fraction));
    e.replayed = replayer.replay(e.synthetic).traces;
    return e;
}

void print_table2() {
    std::cout << "=====================================================================\n"
              << " Table 2 - Validation of Request Features and Latency using KOOZA\n"
              << " (paper: <=1% feature deviation, <=6.6% latency deviation)\n"
              << " seed=" << kSeed << "\n"
              << "=====================================================================\n\n";
    const auto e = run_experiment();
    const auto orig = trace::extract_features(e.original);
    const auto synth = trace::extract_features(e.replayed);

    const struct {
        IoType type;
        const char* label;
    } blocks[] = {{IoType::kRead, "1st User Request (64 KB GFS read)"},
                  {IoType::kWrite, "2nd User Request (4 MB GFS write)"}};
    for (const auto& b : blocks) {
        const auto report = core::compare_single(mean_features(orig, b.type),
                                                 mean_features(synth, b.type),
                                                 b.label);
        std::cout << report.to_table() << "\n";
        std::cout << "  max feature variation: "
                  << kooza::bench::fmt_pct(report.max_feature_variation())
                  << "   latency variation: "
                  << kooza::bench::fmt_pct(report.latency_variation()) << "\n\n";
    }
}

/// Fourth column: the Harrison-style HMM baseline run through the same
/// validation loop (train on the identical trace, generate 200, replay in
/// independent mode — the HMM carries no phase structure to follow), with
/// an accuracy-vs-training-cost line under each block.
void print_hmm_column() {
    std::cout << "=====================================================================\n"
              << " Table 2, HMM column - the same validation loop through the\n"
              << " Harrison-style HMM storage baseline (replayed independently)\n"
              << " seed=" << kSeed << "\n"
              << "=====================================================================\n\n";
    const gfs::GfsConfig cfg;
    const auto original = bench::simulate(training_workload(50), cfg);
    const auto model = baselines::HmmModel::train(original);
    sim::Rng rng(kSeed);
    const auto synthetic = model.generate(200, rng);
    core::Replayer replayer(bench::replay_config(cfg, 0.4));
    const auto replayed =
        replayer.replay(synthetic, core::ReplayMode::kIndependent).traces;

    const auto orig = trace::extract_features(original);
    const auto synth = trace::extract_features(replayed);
    const struct {
        IoType type;
        const char* label;
    } blocks[] = {{IoType::kRead, "1st User Request via HMM (64 KB read)"},
                  {IoType::kWrite, "2nd User Request via HMM (4 MB write)"}};
    for (const auto& b : blocks) {
        const auto report = core::compare_single(mean_features(orig, b.type),
                                                 mean_features(synth, b.type),
                                                 b.label);
        std::cout << report.to_table() << "\n";
        std::cout << "  max feature variation: "
                  << kooza::bench::fmt_pct(report.max_feature_variation())
                  << "   latency variation: "
                  << kooza::bench::fmt_pct(report.latency_variation()) << "\n\n";
    }
    std::cout << "  accuracy-vs-cost: " << model.parameter_count() << " params, "
              << model.config().n_states << " states, "
              << bench::fmt(model.fit_wall_seconds() * 1e3, 2) << " ms fit, "
              << model.segments_fitted() << " segments\n\n";
}

/// Scenario axis: the same capture -> train -> generate -> replay ->
/// validate loop, but driven by the scenario library instead of the
/// paper's two-request micro workload. One validation block per scenario
/// (diurnal / flashcrowd / tiered / checkpoint), including the
/// unknown-phase warning when the replayer had to skip structure.
void print_scenario_axis() {
    std::cout << "=====================================================================\n"
              << " Scenario axis - validation across the scenario library\n"
              << " (capture -> train -> generate -> replay, per scenario)\n"
              << " seed=" << kSeed << "\n"
              << "=====================================================================\n\n";
    for (const auto& name : workloads::scenario_names()) {
        core::CaptureOptions co;
        co.scenario = name;
        co.count = 300;
        co.rate = 40.0;
        co.period = 20.0;
        co.seed = kSeed;
        const auto cap = core::run_capture(co);
        if (cap.traces.requests.empty()) {
            std::cout << "scenario " << name << ": no completed requests, skipped\n";
            continue;
        }
        core::Trainer trainer({.workload_name = "scenario-" + name});
        const auto model = trainer.train(cap.traces);
        sim::Rng rng(kSeed);
        const auto synthetic =
            core::Generator(model).generate(cap.traces.requests.size(), rng);
        core::Replayer replayer(
            bench::replay_config(gfs::GfsConfig{}, model.cpu_verify_fraction()));
        const auto replayed = replayer.replay(synthetic);
        auto report = core::compare_features(trace::extract_features(cap.traces),
                                             trace::extract_features(replayed.traces),
                                             "scenario: " + name);
        report.unknown_phases = replayed.unknown_phases;
        std::cout << report.to_table()
                  << "  max feature variation: "
                  << bench::fmt_pct(report.max_feature_variation())
                  << "   latency variation: "
                  << bench::fmt_pct(report.latency_variation()) << "\n\n";
    }
}

void BM_TrainHmmTable2(benchmark::State& state) {
    const auto ts = bench::simulate(training_workload(50));
    for (auto _ : state) {
        auto model = baselines::HmmModel::train(ts);
        benchmark::DoNotOptimize(model.parameter_count());
    }
}
BENCHMARK(BM_TrainHmmTable2);

void BM_TrainTable2(benchmark::State& state) {
    const auto ts = bench::simulate(training_workload(50));
    core::Trainer trainer;
    for (auto _ : state) {
        auto model = trainer.train(ts);
        benchmark::DoNotOptimize(model.parameter_count());
    }
}
BENCHMARK(BM_TrainTable2);

void BM_GenerateTable2(benchmark::State& state) {
    const auto ts = bench::simulate(training_workload(50));
    const auto model = core::Trainer().train(ts);
    sim::Rng rng(kSeed);
    for (auto _ : state) {
        auto w = core::Generator(model).generate(200, rng);
        benchmark::DoNotOptimize(w.requests.size());
    }
}
BENCHMARK(BM_GenerateTable2);

void BM_ReplayTable2(benchmark::State& state) {
    const gfs::GfsConfig cfg;
    const auto ts = bench::simulate(training_workload(50), cfg);
    const auto model = core::Trainer().train(ts);
    sim::Rng rng(kSeed);
    const auto w = core::Generator(model).generate(200, rng);
    core::Replayer replayer(bench::replay_config(cfg, model.cpu_verify_fraction()));
    for (auto _ : state) {
        auto res = replayer.replay(w);
        benchmark::DoNotOptimize(res.latencies.size());
    }
}
BENCHMARK(BM_ReplayTable2);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_table2();
    print_hmm_column();
    print_scenario_axis();
    return kooza::bench::run_benchmarks(argc, argv);
}
