// Figure 2 reproduction: "Complete Workload Model for One User Request".
//
// The paper's Fig. 2 draws the trained KOOZA model: the CPU Markov chain
// over utilization levels, the storage chain over LBN ranges, the memory
// chain over banks, the network queueing model, and the structure queue
// wiring them in the Fig. 1 order. This bench trains the model on a GFS
// trace and prints every piece, then checks the learned structure matches
// the Fig. 1 path.

#include <iostream>

#include "bench_util.hpp"
#include "core/trainer.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 21;

core::ServerModel train_model() {
    sim::Rng rng(kSeed);
    workloads::MicroProfile profile({.count = 400, .arrival_rate = 25.0});
    const auto ts = bench::simulate(profile.generate(rng));
    return core::Trainer({.workload_name = "fig2"}).train(ts);
}

void print_fig2() {
    std::cout << "==================================================================\n"
              << " Figure 2 - Complete KOOZA workload model for one user request\n"
              << " (trained on a mixed 64KB-read / 4MB-write GFS trace; seed="
              << kSeed << ")\n"
              << "==================================================================\n\n";
    const auto model = train_model();

    std::cout << "Network queueing model:\n  " << model.arrivals().describe()
              << "\n\n";
    std::cout << "CPU Markov model (states = utilization levels, "
              << model.util_states().describe() << "):\n"
              << model.reads().cpu.chain().to_string() << "\n";
    std::cout << "Storage Markov model (states = LBN ranges, "
              << model.lbn_states().describe() << "):\n"
              << model.reads().storage.chain().to_string() << "\n";
    std::cout << "Memory Markov model (states = banks, "
              << model.bank_states().describe() << "):\n"
              << model.reads().memory.chain().to_string() << "\n";
    std::cout << "Structure queue (read requests):\n"
              << model.reads().structure.describe() << "\n";
    std::cout << "Structure queue (write requests):\n"
              << model.writes().structure.describe() << "\n";
    std::cout << "Per-state feature annotations:\n  storage: "
              << model.reads().storage.describe() << "\n  memory:  "
              << model.reads().memory.describe() << "\n  cpu:     "
              << model.reads().cpu.describe() << "\n\n";

    const std::vector<std::string> fig1{"net.rx",  "cpu.verify",    "mem.buffer",
                                        "disk.io", "cpu.aggregate", "net.tx"};
    const bool ok = model.reads().structure.dominant() == fig1 &&
                    model.writes().structure.dominant() == fig1;
    std::cout << "Learned dominant phase order matches Figure 1 path: "
              << (ok ? "YES" : "NO") << "\n"
              << "Total model parameters: ~" << model.parameter_count() << "\n\n";
}

void BM_TrainFig2Model(benchmark::State& state) {
    sim::Rng rng(kSeed);
    workloads::MicroProfile profile({.count = 400, .arrival_rate = 25.0});
    const auto ts = kooza::bench::simulate(profile.generate(rng));
    for (auto _ : state) {
        auto model = core::Trainer().train(ts);
        benchmark::DoNotOptimize(model.parameter_count());
    }
}
BENCHMARK(BM_TrainFig2Model);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_fig2();
    return kooza::bench::run_benchmarks(argc, argv);
}
