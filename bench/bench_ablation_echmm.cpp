// Ablation A6: ECHMM vs discrete bank chain as the memory model.
//
// Moro '09 (paper Section 2.1.4) trains an Ergodic Continuous HMM on the
// raw memory-reference stream and claims it is "significantly more
// accurate in determining the memory behavior of a workload than
// previously proposed methods". Here both models are trained on the same
// memory trace (addresses with hot/cold regions) and compared on held-out
// predictive quality and on how well their synthetic traces reproduce the
// original's bank-hit distribution.

#include <cmath>
#include <iostream>

#include "baselines/hmm.hpp"
#include "bench_util.hpp"
#include "markov/chain.hpp"
#include "markov/discretizer.hpp"
#include "markov/echmm.hpp"
#include "stats/hypothesis.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 36;

/// Memory address stream with hot/cold phases: long runs in a hot region
/// with occasional excursions to a cold one (Search-like behavior the
/// paper's Section 2.1.4 describes).
std::vector<double> address_stream(std::size_t n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    bool hot = true;
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(hot ? 0.01 : 0.05)) hot = !hot;
        const double center = hot ? 0.2e9 : 3.0e9;
        const double spread = hot ? 0.05e9 : 0.4e9;
        out.push_back(std::max(0.0, rng.normal(center, spread)));
    }
    return out;
}

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A6 - ECHMM (Moro '09) vs discrete bank Markov chain\n"
              << " as the memory model (hot/cold address stream; seed=" << kSeed
              << ")\n"
              << "==================================================================\n\n";

    const auto train = address_stream(6000, kSeed);
    const auto test = address_stream(2000, kSeed + 1);

    bench::Table t({16, 10, 20, 14});
    t.row("Model", "Params", "TestLogLik/step", "AddrKS");
    t.rule();

    // Bank-chain baseline at a few granularities: discretize addresses to
    // banks, fit a chain, score the test set, generate and compare the
    // address distribution (bank representatives).
    for (std::size_t banks : {4, 16, 64}) {
        markov::EqualWidthDiscretizer disc(0.0, 4e9, banks);
        const std::vector<std::vector<std::size_t>> train_seq{
            markov::discretize(disc, train)};
        const auto chain = markov::MarkovChain::fit(train_seq, banks, 0.5);
        const auto test_seq = markov::discretize(disc, test);
        const double ll =
            chain.log_likelihood(test_seq) / double(test_seq.size());
        sim::Rng rng(kSeed + banks);
        const auto path = chain.sample_path(test.size(), rng);
        std::vector<double> synth;
        for (auto s : path) synth.push_back(disc.sample_within(s, rng));
        t.row("chain/" + std::to_string(banks), banks * banks + banks,
              bench::fmt(ll, 4),
              bench::fmt(stats::ks_statistic_two_sample(test, synth), 3));
    }

    // ECHMM: continuous emissions, few states.
    for (std::size_t states : {2, 4, 8}) {
        const std::vector<std::vector<double>> seqs{train};
        const auto hmm = markov::Echmm::fit(seqs, states, 30);
        // Per-step log-likelihood on held-out data, made comparable to the
        // discrete chain by integrating the Gaussian over the bank width
        // (log p(x) + log(binwidth) ~ log P(bin)); report the density-based
        // value and the synthetic-trace KS which needs no such alignment.
        const double ll = hmm.log_likelihood(test) / double(test.size());
        sim::Rng rng(kSeed + states);
        const auto synth = hmm.generate(test.size(), rng);
        t.row("echmm/" + std::to_string(states), hmm.parameter_count(),
              bench::fmt(ll + std::log(4e9 / 64.0), 4),  // align to 64-bin width
              bench::fmt(stats::ks_statistic_two_sample(test, synth), 3));
    }
    std::cout << "\nExpected shape: a 2-4 state ECHMM matches the address\n"
              << "distribution (low KS) with an order of magnitude fewer\n"
              << "parameters than a fine-grained bank chain — Moro's claim.\n\n";
}

/// State-count sweep of the full HMM storage baseline (baselines::HmmModel,
/// both ECHMMs + the per-state request mix) on a GFS trace: the
/// accuracy-vs-training-cost curve behind the cross-examination's fourth
/// column. KS is measured on the synthetic storage-size marginal.
void print_hmm_state_sweep() {
    std::cout << "==================================================================\n"
              << " HMM baseline state-count sweep (web-search GFS trace; seed="
              << kSeed << ")\n"
              << "==================================================================\n\n";
    sim::Rng rng(kSeed);
    workloads::WebSearchProfile profile({.count = 400, .arrival_rate = 30.0});
    const auto ts = bench::simulate(profile.generate(rng), gfs::GfsConfig{});
    const auto orig = trace::extract_features(ts);
    const auto orig_sizes = trace::column_storage_bytes(orig);

    bench::Table t({16, 10, 12, 10, 12});
    t.row("Model", "Params", "FitMs", "SizeKS", "Iters");
    t.rule();
    for (std::size_t states : {2, 4, 8, 16}) {
        baselines::HmmConfig cfg{.n_states = states};
        const auto model = baselines::HmmModel::train(ts, cfg);
        sim::Rng gen_rng(kSeed + states);
        const auto w = model.generate(1000, gen_rng);
        std::vector<double> synth_sizes;
        for (const auto& r : w.requests) synth_sizes.push_back(double(r.storage_bytes));
        t.row("hmm/" + std::to_string(states), model.parameter_count(),
              bench::fmt(model.fit_wall_seconds() * 1e3, 2),
              bench::fmt(stats::ks_statistic_two_sample(orig_sizes, synth_sizes), 3),
              model.size_hmm().iterations_run());
    }
    std::cout << "\nExpected shape: SizeKS drops steeply up to ~4 states, then\n"
              << "flattens while FitMs and Params keep growing — the knee the\n"
              << "--hmm-states knob should sit at.\n\n";
}

void BM_FitEchmm(benchmark::State& state) {
    const auto train = address_stream(3000, kSeed);
    const std::vector<std::vector<double>> seqs{train};
    for (auto _ : state) {
        auto m = markov::Echmm::fit(seqs, std::size_t(state.range(0)), 10);
        benchmark::DoNotOptimize(m.training_log_likelihood());
    }
}
BENCHMARK(BM_FitEchmm)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_ablation();
    print_hmm_state_sweep();
    return kooza::bench::run_benchmarks(argc, argv);
}
