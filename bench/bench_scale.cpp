// bench_scale — datacenter-scale streamed capture: O(1000) chunkservers
// and millions of requests with flat peak memory.
//
// Two machine-checkable claims, written to BENCH_scale.json:
//  1. Peak RSS of a streamed capture (--stream) is flat in the horizon:
//     a 1000-chunkserver sweep over 1M/2M/4M requests stays within 10%
//     of its minimum. Each sweep point runs in a forked child so
//     ru_maxrss is that capture's own monotone peak.
//  2. Streamed output is byte-identical to the materialized
//     write_traces path, at 1 and at 8 worker threads, including under
//     fault injection with replication.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench_util.hpp"
#include "core/capture.hpp"
#include "trace/io.hpp"

namespace {

namespace fs = std::filesystem;
using namespace kooza;

constexpr std::size_t kServers = 1000;
constexpr std::size_t kSweepRequests[] = {1'000'000, 2'000'000, 4'000'000};
constexpr double kFlatness = 1.10;  ///< max/min peak-RSS bound across the sweep

core::CaptureOptions scale_options(std::size_t requests, const fs::path& dir) {
    core::CaptureOptions o;
    o.profile = "micro";
    o.count = requests;
    o.rate = 1000.0;
    o.seed = 5;
    o.n_servers = kServers;
    o.span_sample_every = 100;
    o.out_dir = dir.string();
    o.stream = true;
    // Switch-friendly request sizes: the 4 MB micro default is chopped
    // into ~2800 MTU frames per request, which measures the switch, not
    // the capture path.
    o.read_size = 8192;
    o.write_size = 8192;
    // The per-request latency vector is the one O(requests) structure
    // left in the cluster; a scale capture turns it off.
    o.collect_latencies = false;
    return o;
}

struct SweepPoint {
    std::size_t requests = 0;
    std::uint64_t records = 0;
    long peak_rss_kb = 0;
    double wall_s = 0.0;
    double sim_s = 0.0;
};

/// Run one streamed capture in a forked child and report its own
/// ru_maxrss. The fork keeps each point's peak independent (ru_maxrss
/// never decreases within a process) and starts from the parent's small
/// pre-sweep footprint.
SweepPoint run_sweep_point(std::size_t requests) {
    const auto dir =
        fs::temp_directory_path() / ("kooza_bench_scale_" + std::to_string(requests));
    int pipe_fd[2];
    if (pipe(pipe_fd) != 0) throw std::runtime_error("bench_scale: pipe failed");
    const pid_t pid = fork();
    if (pid < 0) throw std::runtime_error("bench_scale: fork failed");
    if (pid == 0) {
        close(pipe_fd[0]);
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = core::run_capture(scale_options(requests, dir));
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        rusage ru{};
        getrusage(RUSAGE_SELF, &ru);
        char line[256];
        const int len =
            std::snprintf(line, sizeof line, "%llu %ld %.6f %.6f",
                          static_cast<unsigned long long>(res.records),
                          ru.ru_maxrss, wall, res.duration);
        const auto written = write(pipe_fd[1], line, std::size_t(len));
        _exit(written == len ? 0 : 1);
    }
    close(pipe_fd[1]);
    char buf[256] = {};
    std::size_t got = 0;
    for (ssize_t n = 0;
         (n = read(pipe_fd[0], buf + got, sizeof buf - 1 - got)) > 0;)
        got += std::size_t(n);
    close(pipe_fd[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    fs::remove_all(dir);
    SweepPoint p;
    p.requests = requests;
    unsigned long long recs = 0;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
        std::sscanf(buf, "%llu %ld %lf %lf", &recs, &p.peak_rss_kb, &p.wall_s,
                    &p.sim_s) != 4)
        throw std::runtime_error("bench_scale: sweep child failed");
    p.records = recs;
    return p;
}

/// Byte-compare the seven kooza.trace/1 stream files of two capture dirs.
bool dirs_identical(const fs::path& a, const fs::path& b) {
    static const char* kFiles[] = {"storage.bin",  "cpu.bin",      "memory.bin",
                                   "network.bin",  "requests.bin", "failures.bin",
                                   "spans.bin"};
    for (const char* name : kFiles) {
        std::ifstream fa(a / name, std::ios::binary);
        std::ifstream fb(b / name, std::ios::binary);
        if (!fa || !fb) return false;
        const std::string ba((std::istreambuf_iterator<char>(fa)),
                             std::istreambuf_iterator<char>());
        const std::string bb((std::istreambuf_iterator<char>(fb)),
                             std::istreambuf_iterator<char>());
        if (ba != bb) return false;
    }
    return true;
}

struct IdentityResult {
    std::uint64_t records = 0;
    bool streamed_equals_materialized = false;
    bool threads_1_equals_8 = false;
};

/// Faulty replicated capture, materialized vs streamed, 1 vs 8 threads.
IdentityResult check_identity() {
    core::CaptureOptions o;
    o.profile = "micro";
    o.count = 20'000;
    o.rate = 200.0;
    o.seed = 17;
    o.n_servers = 16;
    o.replication = 3;
    o.fault_rate = 0.05;
    o.mttr = 2.0;
    o.read_size = 65536;
    o.write_size = 65536;
    o.format = trace::Format::kBinary;

    const auto base = fs::temp_directory_path();
    const auto mat_dir = base / "kooza_bench_scale_mat";
    const auto st1_dir = base / "kooza_bench_scale_st1";
    const auto st8_dir = base / "kooza_bench_scale_st8";

    IdentityResult r;
    par::set_threads(1);
    o.out_dir = mat_dir.string();
    o.stream = false;
    r.records = core::run_capture(o).records;
    o.out_dir = st1_dir.string();
    o.stream = true;
    (void)core::run_capture(o);
    par::set_threads(8);
    o.out_dir = st8_dir.string();
    (void)core::run_capture(o);
    par::set_threads(0);

    r.streamed_equals_materialized = dirs_identical(mat_dir, st1_dir);
    r.threads_1_equals_8 = dirs_identical(st1_dir, st8_dir);
    fs::remove_all(mat_dir);
    fs::remove_all(st1_dir);
    fs::remove_all(st8_dir);
    return r;
}

void write_json(const std::vector<SweepPoint>& sweep, double rss_ratio,
                const IdentityResult& id, const fs::path& path) {
    std::ofstream f(path);
    f.precision(6);
    f << std::fixed;
    f << "{\n  \"schema\": \"kooza.bench_scale/1\",\n"
      << "  \"servers\": " << kServers << ",\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto& p = sweep[i];
        f << "    {\"requests\": " << p.requests << ", \"records\": " << p.records
          << ", \"peak_rss_kb\": " << p.peak_rss_kb << ", \"wall_s\": " << p.wall_s
          << ", \"sim_s\": " << p.sim_s << "}"
          << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    const bool flat = rss_ratio <= kFlatness;
    f << "  ],\n  \"rss_ratio_max_over_min\": " << rss_ratio
      << ",\n  \"rss_flat_within_10pct\": " << (flat ? "true" : "false")
      << ",\n  \"identity\": {\"records\": " << id.records
      << ", \"streamed_equals_materialized\": "
      << (id.streamed_equals_materialized ? "true" : "false")
      << ", \"threads_1_equals_8\": "
      << (id.threads_1_equals_8 ? "true" : "false") << "}\n}\n";
}

// google-benchmark registration over a small streamed capture so the
// usual --benchmark_* flags time the capture path here too.
void BM_StreamedCapture(benchmark::State& state) {
    const auto dir = fs::temp_directory_path() / "kooza_bench_scale_bm";
    for (auto _ : state) {
        auto o = scale_options(2000, dir);
        o.n_servers = 32;
        const auto res = core::run_capture(o);
        benchmark::DoNotOptimize(res.records);
    }
    fs::remove_all(dir);
}
BENCHMARK(BM_StreamedCapture)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    using kooza::bench::Table;
    using kooza::bench::fmt;
    kooza::bench::print_run_header(5);
    std::cout << "\nStreamed capture at datacenter scale: " << kServers
              << " chunkservers\n\n";

    // Sweep before the identity check so each forked child inherits a
    // small parent footprint.
    std::vector<SweepPoint> sweep;
    Table table({12, 14, 14, 12, 12});
    table.row("requests", "records", "peak RSS", "wall s", "sim s");
    table.rule();
    for (const auto n : kSweepRequests) {
        sweep.push_back(run_sweep_point(n));
        const auto& p = sweep.back();
        table.row(p.requests, p.records,
                  kooza::bench::fmt_bytes(double(p.peak_rss_kb) * 1024.0),
                  fmt(p.wall_s, 2), fmt(p.sim_s, 1));
    }
    table.rule();
    long min_rss = sweep.front().peak_rss_kb, max_rss = min_rss;
    for (const auto& p : sweep) {
        min_rss = std::min(min_rss, p.peak_rss_kb);
        max_rss = std::max(max_rss, p.peak_rss_kb);
    }
    const double ratio = double(max_rss) / double(min_rss);
    std::cout << "\npeak RSS max/min over " << sweep.front().requests << ".."
              << sweep.back().requests << " requests: " << fmt(ratio, 3)
              << " (flat bar: <= " << fmt(kFlatness, 2) << ")\n";

    std::cout << "\nbyte-identity (16 servers, replication 3, faults on):\n";
    const auto id = check_identity();
    std::cout << "  streamed == materialized: "
              << (id.streamed_equals_materialized ? "yes" : "NO") << "\n"
              << "  1 thread == 8 threads:    "
              << (id.threads_1_equals_8 ? "yes" : "NO") << "\n";

    write_json(sweep, ratio, id, "BENCH_scale.json");
    std::cout << "wrote BENCH_scale.json\n\n";

    const bool pass = ratio <= kFlatness && id.streamed_equals_materialized &&
                      id.threads_1_equals_8;
    if (!pass) {
        std::cout << "BENCH_scale: FAILED acceptance\n";
        return 1;
    }
    return kooza::bench::run_benchmarks(argc, argv);
}
