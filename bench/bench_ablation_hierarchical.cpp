// Ablation A3: flat vs hierarchical storage Markov model.
//
// The paper: "In order to convey more detailed information ... the simple
// Markov Chain can be substituted by a corresponding hierarchical
// representation." For a workload with strong spatial locality (streaming
// sessions sweep files sequentially), a two-level chain over (file-group,
// LBN-range-within-group) should match the flat chain's held-out
// likelihood at a fraction of the parameters.

#include <iostream>

#include "bench_util.hpp"
#include "markov/chain.hpp"
#include "markov/discretizer.hpp"
#include "markov/hierarchical.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 33;

/// LBN state sequence of a streaming workload, split into train/test.
struct Sequences {
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
    std::size_t n_states = 0;
};

Sequences make_sequences(std::size_t states) {
    gfs::GfsConfig cfg;
    sim::Rng rng(kSeed);
    workloads::StreamingProfile profile({.sessions = 120, .files = 8});
    const auto ts = bench::simulate(profile.generate(rng), cfg);
    std::uint64_t max_lbn = 1;
    for (const auto& r : ts.storage) max_lbn = std::max(max_lbn, r.lbn + 1);
    markov::LbnRangeDiscretizer disc(max_lbn, states);
    std::vector<std::size_t> all;
    for (const auto& r : ts.storage) all.push_back(disc.state_of(double(r.lbn)));
    Sequences out;
    out.n_states = states;
    const std::size_t split = all.size() * 3 / 4;
    out.train.assign(all.begin(), all.begin() + long(split));
    out.test.assign(all.begin() + long(split), all.end());
    return out;
}

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A3 - flat vs hierarchical storage Markov model\n"
              << " (streaming workload, strong spatial locality; seed=" << kSeed
              << ")\n"
              << "==================================================================\n\n";

    bench::Table t({10, 14, 12, 22, 22});
    t.row("States", "Model", "Params", "TrainLogLik/step", "TestLogLik/step");
    t.rule();
    for (std::size_t states : {8, 16, 32}) {
        const auto seqs = make_sequences(states);
        const std::vector<std::vector<std::size_t>> train_wrap{seqs.train};

        const auto flat = markov::MarkovChain::fit(train_wrap, states, 0.5);
        const double flat_train =
            flat.log_likelihood(seqs.train) / double(seqs.train.size());
        const double flat_test =
            flat.log_likelihood(seqs.test) / double(seqs.test.size());
        t.row(states, "flat", states * states + states, bench::fmt(flat_train, 4),
              bench::fmt(flat_test, 4));

        // Groups: 4 contiguous LBN regions (≈ file neighborhoods).
        std::vector<std::size_t> groups(states);
        for (std::size_t s = 0; s < states; ++s) groups[s] = s / (states / 4);
        const auto hier =
            markov::HierarchicalMarkovChain::fit(train_wrap, states, groups, 0.5);
        // Hierarchical likelihood proxy: generate with it and fit a flat
        // chain to its output, then score the test set — measures how much
        // structure survives the factorization.
        sim::Rng rng(kSeed + states);
        const auto sample = hier.sample_path(seqs.train.size(), rng);
        const std::vector<std::vector<std::size_t>> sample_wrap{sample};
        const auto refit = markov::MarkovChain::fit(sample_wrap, states, 0.5);
        const double hier_train =
            refit.log_likelihood(seqs.train) / double(seqs.train.size());
        const double hier_test =
            refit.log_likelihood(seqs.test) / double(seqs.test.size());
        t.row(states, "hierarchical", hier.parameter_count(),
              bench::fmt(hier_train, 4), bench::fmt(hier_test, 4));
    }
    std::cout << "\nExpected shape: the hierarchical factorization tracks the flat\n"
              << "chain's held-out likelihood while using far fewer parameters as\n"
              << "the state space grows.\n\n";
}

void BM_FitFlat(benchmark::State& state) {
    const auto seqs = make_sequences(std::size_t(state.range(0)));
    const std::vector<std::vector<std::size_t>> wrap{seqs.train};
    for (auto _ : state) {
        auto c = markov::MarkovChain::fit(wrap, seqs.n_states, 0.5);
        benchmark::DoNotOptimize(c.n_states());
    }
}
BENCHMARK(BM_FitFlat)->Arg(8)->Arg(32);

void BM_FitHierarchical(benchmark::State& state) {
    const auto seqs = make_sequences(std::size_t(state.range(0)));
    const std::vector<std::vector<std::size_t>> wrap{seqs.train};
    std::vector<std::size_t> groups(seqs.n_states);
    for (std::size_t s = 0; s < seqs.n_states; ++s) groups[s] = s / (seqs.n_states / 4);
    for (auto _ : state) {
        auto c = markov::HierarchicalMarkovChain::fit(wrap, seqs.n_states, groups, 0.5);
        benchmark::DoNotOptimize(c.n_groups());
    }
}
BENCHMARK(BM_FitHierarchical)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_ablation();
    return kooza::bench::run_benchmarks(argc, argv);
}
