// Ablation A1: Markov state granularity vs accuracy and model size.
//
// The paper: "The detail of the model is configurable ... the designer can
// adjust the level of detail to the part of the system that is of
// interest. Additional detail increases the model's complexity, and that
// remains a trade-off." This bench sweeps the LBN-range / utilization
// state-space sizes and reports feature fidelity (KS on storage size and
// LBN distributions), latency error, and parameter count.

#include <iostream>

#include "bench_util.hpp"
#include "core/generator.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza;

constexpr std::uint64_t kSeed = 31;

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A1 - state-space granularity vs accuracy vs model size\n"
              << " (web-search-like workload; seed=" << kSeed << ")\n"
              << "==================================================================\n\n";

    gfs::GfsConfig cfg;
    sim::Rng rng(kSeed);
    workloads::WebSearchProfile profile({.count = 500, .arrival_rate = 30.0});
    const auto ts = bench::simulate(profile.generate(rng), cfg);
    const auto orig = trace::extract_features(ts);
    const auto orig_sizes = trace::column_storage_bytes(orig);
    std::vector<double> orig_lbns;
    for (const auto& f : orig) orig_lbns.push_back(double(f.first_lbn));
    const double orig_lat = stats::mean(trace::column_latency(orig));

    bench::Table t({12, 12, 14, 12, 14, 12});
    t.row("LbnRanges", "UtilLvls", "SizeKS", "LbnKS", "LatencyErr%", "Params");
    t.rule();
    struct Row {
        std::size_t g = 0, util_levels = 0, params = 0;
        double size_ks = 0.0, lbn_ks = 0.0, lat_err = 0.0;
    };
    const std::vector<std::size_t> grans{2, 4, 8, 16, 32};
    const auto rows = bench::sweep(grans.size(), [&](std::size_t i) {
        const std::size_t g = grans[i];
        core::TrainerConfig tc;
        tc.lbn_ranges = g;
        tc.util_levels = std::max<std::size_t>(2, g / 2);
        const auto model = core::Trainer(tc).train(ts);
        sim::Rng gen_rng(kSeed + g);
        const auto w = core::Generator(model).generate(500, gen_rng);
        std::vector<double> sizes, lbns;
        for (const auto& r : w.requests) {
            sizes.push_back(double(r.storage_bytes));
            lbns.push_back(double(r.lbn));
        }
        core::Replayer rep(bench::replay_config(cfg, model.cpu_verify_fraction()));
        const double lat = stats::mean(rep.replay(w).latencies);
        return Row{g, tc.util_levels, model.parameter_count(),
                   stats::ks_statistic_two_sample(orig_sizes, sizes),
                   stats::ks_statistic_two_sample(orig_lbns, lbns),
                   stats::variation_pct(lat, orig_lat)};
    });
    for (const auto& r : rows)
        t.row(r.g, r.util_levels, bench::fmt(r.size_ks, 3), bench::fmt(r.lbn_ks, 3),
              bench::fmt(r.lat_err, 1), r.params);
    std::cout << "\nExpected shape: LBN fidelity (LbnKS) improves with more ranges\n"
              << "while parameter count grows quadratically — the paper's\n"
              << "detail-vs-complexity trade-off.\n\n";
}

void BM_TrainAtGranularity(benchmark::State& state) {
    sim::Rng rng(kSeed);
    workloads::WebSearchProfile profile({.count = 300, .arrival_rate = 30.0});
    const auto ts = kooza::bench::simulate(profile.generate(rng));
    core::TrainerConfig tc;
    tc.lbn_ranges = std::size_t(state.range(0));
    for (auto _ : state) {
        auto model = core::Trainer(tc).train(ts);
        benchmark::DoNotOptimize(model.parameter_count());
    }
}
BENCHMARK(BM_TrainAtGranularity)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header(kSeed);
    print_ablation();
    return kooza::bench::run_benchmarks(argc, argv);
}
