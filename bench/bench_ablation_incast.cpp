// Ablation A5: multi-server composition and TCP-incast replication.
//
// The paper (Section 4): with multiple per-server model instances and
// recorded request ids, "the model can replicate effects like the TCP/IP
// incast problem, or other events involving multiple machines servicing
// the same request." This bench sweeps the fan-in of a striped GFS read
// and shows goodput collapse (drops, latency blow-up) in BOTH the
// original simulator and the multi-server KOOZA replay.

#include <iostream>

#include "bench_util.hpp"
#include "core/replayer.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace kooza;
using trace::IoType;

constexpr std::uint64_t kStripe = 256ull << 10;  // bytes per server

struct Point {
    std::size_t fan_in;
    double sim_latency;
    std::uint64_t replay_drops;
    double replay_latency;
};

Point run_point(std::size_t fan_in) {
    Point p;
    p.fan_in = fan_in;

    // Original system: one striped read across fan_in chunkservers.
    gfs::GfsConfig cfg;
    cfg.n_chunkservers = fan_in;
    cfg.chunk_size = kStripe;
    cfg.net.buffer_frames = 16;
    cfg.net.retry_timeout = 0.05;
    gfs::Cluster cluster(cfg);
    cluster.create_file("wide", kStripe * fan_in);
    cluster.submit({0.0, "wide", 0, kStripe * fan_in, IoType::kRead, 0});
    cluster.run();
    p.sim_latency = cluster.latencies().at(0);

    // KOOZA multi-server replay of the same fan-in (hand-built synthetic
    // requests: each server sends one stripe to the client).
    core::SyntheticWorkload w;
    w.model_name = "incast";
    for (std::size_t i = 0; i < fan_in; ++i) {
        core::SyntheticRequest r;
        r.time = 0.0;
        r.type = IoType::kRead;
        r.network_bytes = kStripe;
        r.storage_bytes = kStripe;
        r.memory_bytes = kStripe >> 2;
        r.cpu_busy_seconds = 1e-4;
        r.lbn = i * 4096;
        r.phases = {"disk.io", "net.tx"};
        r.server = std::uint32_t(i);
        w.requests.push_back(r);
    }
    core::ReplayConfig rcfg = kooza::bench::replay_config(cfg, 0.4);
    rcfg.n_servers = fan_in;
    core::Replayer rep(rcfg);
    const auto res = rep.replay(w);
    p.replay_drops = res.network_drops;
    double worst = 0.0;
    for (double l : res.latencies) worst = std::max(worst, l);
    p.replay_latency = worst;
    return p;
}

void print_ablation() {
    std::cout << "==================================================================\n"
              << " Ablation A5 - multi-server incast: striped read fan-in sweep\n"
              << " (256 KB per server into one client port, 16-frame buffer)\n"
              << "==================================================================\n\n";
    bench::Table t({10, 18, 18, 16});
    t.row("FanIn", "SimLatency", "ReplayLatency", "ReplayDrops");
    t.rule();
    const std::vector<std::size_t> fan_ins{2, 4, 8, 16, 32, 64};
    const auto points = bench::sweep(
        fan_ins.size(), [&](std::size_t i) { return run_point(fan_ins[i]); });
    for (const auto& p : points)
        t.row(p.fan_in, bench::fmt_ms(p.sim_latency),
              bench::fmt_ms(p.replay_latency), p.replay_drops);
    std::cout << "\nExpected shape: latency grows gently until the client buffer\n"
              << "saturates, then collapses (retransmission timeouts) — the incast\n"
              << "cliff — in both the original system and the model replay.\n\n";
}

void BM_IncastSweep(benchmark::State& state) {
    const auto fan_in = std::size_t(state.range(0));
    for (auto _ : state) {
        auto p = run_point(fan_in);
        benchmark::DoNotOptimize(p.replay_drops);
    }
}
BENCHMARK(BM_IncastSweep)->Arg(4)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
    kooza::bench::print_run_header();
    print_ablation();
    return kooza::bench::run_benchmarks(argc, argv);
}
