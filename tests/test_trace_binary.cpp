// kooza.trace/1 binary trace format: property-style round-trips against
// randomized TraceSets, record-for-record agreement with the CSV reader,
// corruption rejection (truncation, bit flips vs per-section CRC32),
// chunked-append byte-identity, and format auto-detection.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "trace/binary.hpp"
#include "trace/csv.hpp"
#include "trace/io.hpp"

namespace {

namespace fs = std::filesystem;
using namespace kooza;
using namespace kooza::trace;

fs::path fresh_dir(const char* name) {
    const auto dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    return dir;
}

/// Random TraceSet covering every stream, the full enum ranges, and
/// doubles of all magnitudes. `csv_safe_names` keeps span names inside
/// the CSV writer's alphabet so cross-reader tests can write both.
TraceSet random_traceset(std::uint64_t seed, std::size_t n,
                         bool csv_safe_names = true) {
    sim::Rng rng(seed);
    auto f64 = [&] {
        // Mix magnitudes: timestamps, tiny latencies, huge byte counts.
        const auto v = rng.lognormal(0.0, 4.0);
        return rng.bernoulli(0.5) ? v : -v;
    };
    auto u64 = [&] { return std::uint64_t(rng.uniform_int(0, 1'000'000'000)); };
    TraceSet ts;
    for (std::size_t i = 0; i < n; ++i) {
        ts.storage.push_back({f64(), u64(), u64(), u64(),
                              rng.bernoulli(0.5) ? IoType::kRead : IoType::kWrite,
                              f64()});
        ts.cpu.push_back({f64(), u64(), f64(), f64()});
        ts.memory.push_back({f64(), u64(), std::uint32_t(rng.uniform_int(0, 64)),
                             u64(),
                             rng.bernoulli(0.5) ? IoType::kRead : IoType::kWrite});
        ts.network.push_back({f64(), u64(), u64(),
                              rng.bernoulli(0.5) ? NetworkRecord::Direction::kRx
                                                 : NetworkRecord::Direction::kTx,
                              f64()});
        ts.requests.push_back({u64(),
                               rng.bernoulli(0.5) ? IoType::kRead : IoType::kWrite,
                               f64(), f64(), u64()});
        ts.failures.push_back(
            {f64(), u64(), std::uint32_t(rng.uniform_int(0, 32)),
             FailureRecord::Kind(rng.uniform_int(0, 5)), f64()});
        Span sp;
        sp.trace_id = u64();
        sp.span_id = u64();
        sp.parent_id = u64();
        static const char* kSafe[] = {"request", "net.rx", "cpu.verify",
                                      "disk.io", "repl.forward"};
        static const char* kWild[] = {"a,b", "name with space", "crlf\r\n", "",
                                      "q\"uote"};
        sp.name = csv_safe_names
                      ? kSafe[std::size_t(rng.uniform_int(0, 4))]
                      : kWild[std::size_t(rng.uniform_int(0, 4))];
        sp.start = f64();
        sp.end = f64();
        ts.spans.push_back(sp);
    }
    return ts;
}

void expect_equal(const TraceSet& a, const TraceSet& b) {
    ASSERT_EQ(a.storage.size(), b.storage.size());
    for (std::size_t i = 0; i < a.storage.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.storage[i].time, b.storage[i].time) << i;
        EXPECT_EQ(a.storage[i].request_id, b.storage[i].request_id) << i;
        EXPECT_EQ(a.storage[i].lbn, b.storage[i].lbn) << i;
        EXPECT_EQ(a.storage[i].size_bytes, b.storage[i].size_bytes) << i;
        EXPECT_EQ(a.storage[i].type, b.storage[i].type) << i;
        EXPECT_DOUBLE_EQ(a.storage[i].latency, b.storage[i].latency) << i;
    }
    ASSERT_EQ(a.cpu.size(), b.cpu.size());
    for (std::size_t i = 0; i < a.cpu.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.cpu[i].time, b.cpu[i].time) << i;
        EXPECT_EQ(a.cpu[i].request_id, b.cpu[i].request_id) << i;
        EXPECT_DOUBLE_EQ(a.cpu[i].busy_seconds, b.cpu[i].busy_seconds) << i;
        EXPECT_DOUBLE_EQ(a.cpu[i].utilization, b.cpu[i].utilization) << i;
    }
    ASSERT_EQ(a.memory.size(), b.memory.size());
    for (std::size_t i = 0; i < a.memory.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.memory[i].time, b.memory[i].time) << i;
        EXPECT_EQ(a.memory[i].request_id, b.memory[i].request_id) << i;
        EXPECT_EQ(a.memory[i].bank, b.memory[i].bank) << i;
        EXPECT_EQ(a.memory[i].size_bytes, b.memory[i].size_bytes) << i;
        EXPECT_EQ(a.memory[i].type, b.memory[i].type) << i;
    }
    ASSERT_EQ(a.network.size(), b.network.size());
    for (std::size_t i = 0; i < a.network.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.network[i].time, b.network[i].time) << i;
        EXPECT_EQ(a.network[i].request_id, b.network[i].request_id) << i;
        EXPECT_EQ(a.network[i].size_bytes, b.network[i].size_bytes) << i;
        EXPECT_EQ(a.network[i].direction, b.network[i].direction) << i;
        EXPECT_DOUBLE_EQ(a.network[i].latency, b.network[i].latency) << i;
    }
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].request_id, b.requests[i].request_id) << i;
        EXPECT_EQ(a.requests[i].type, b.requests[i].type) << i;
        EXPECT_DOUBLE_EQ(a.requests[i].arrival, b.requests[i].arrival) << i;
        EXPECT_DOUBLE_EQ(a.requests[i].completion, b.requests[i].completion) << i;
        EXPECT_EQ(a.requests[i].bytes, b.requests[i].bytes) << i;
    }
    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (std::size_t i = 0; i < a.failures.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.failures[i].time, b.failures[i].time) << i;
        EXPECT_EQ(a.failures[i].request_id, b.failures[i].request_id) << i;
        EXPECT_EQ(a.failures[i].server, b.failures[i].server) << i;
        EXPECT_EQ(a.failures[i].kind, b.failures[i].kind) << i;
        EXPECT_DOUBLE_EQ(a.failures[i].duration, b.failures[i].duration) << i;
    }
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        EXPECT_EQ(a.spans[i].trace_id, b.spans[i].trace_id) << i;
        EXPECT_EQ(a.spans[i].span_id, b.spans[i].span_id) << i;
        EXPECT_EQ(a.spans[i].parent_id, b.spans[i].parent_id) << i;
        EXPECT_EQ(a.spans[i].name, b.spans[i].name) << i;
        EXPECT_DOUBLE_EQ(a.spans[i].start, b.spans[i].start) << i;
        EXPECT_DOUBLE_EQ(a.spans[i].end, b.spans[i].end) << i;
    }
}

std::vector<std::uint8_t> slurp(const fs::path& p) {
    std::ifstream f(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

TEST(Binary, RandomRoundTripIsExact) {
    // Property-style: several random TraceSets (wild span names included)
    // must survive binary -> read bit-exactly.
    for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
        const auto dir = fresh_dir("kooza_bin_roundtrip");
        const auto ts = random_traceset(seed, 200, /*csv_safe_names=*/false);
        write_binary(ts, dir);
        const auto back = read_binary(dir);
        expect_equal(ts, back);
        fs::remove_all(dir);
    }
}

TEST(Binary, EmptyTraceSetRoundTrips) {
    const auto dir = fresh_dir("kooza_bin_empty");
    write_binary(TraceSet{}, dir);
    const auto back = read_binary(dir);
    EXPECT_TRUE(back.empty());
    fs::remove_all(dir);
}

TEST(Binary, AgreesWithCsvReaderRecordForRecord) {
    // The two readers must load the same capture identically. CSV text
    // is written at precision 17, so doubles survive both paths exactly.
    const auto ts = random_traceset(99, 300);
    const auto bin_dir = fresh_dir("kooza_bin_agree_b");
    const auto csv_dir = fresh_dir("kooza_bin_agree_c");
    write_binary(ts, bin_dir);
    write_csv(ts, csv_dir);
    const auto from_bin = read_binary(bin_dir);
    const auto from_csv = read_csv(csv_dir);
    expect_equal(from_bin, from_csv);
    expect_equal(ts, from_bin);
    fs::remove_all(bin_dir);
    fs::remove_all(csv_dir);
}

TEST(Binary, ChunkedAppendMatchesOneShotByteForByte) {
    // However the capture was chunked into the writer, the files are
    // byte-identical — the contract sharded captures rely on.
    const auto one = fresh_dir("kooza_bin_oneshot");
    const auto chunked = fresh_dir("kooza_bin_chunked");
    const auto a = random_traceset(5, 100, false);
    const auto b = random_traceset(6, 57, false);
    const auto c = random_traceset(7, 1, false);
    TraceSet all;
    all.merge(a);
    all.merge(b);
    all.merge(c);
    write_binary(all, one);
    {
        BinaryWriter w(chunked);
        w.append(a);
        w.append(b);
        w.append(c);
        w.finish();
        EXPECT_EQ(w.records_appended(), all.total_records());
    }
    for (const auto* stem : kStreamStems) {
        const auto name = std::string(stem) + ".bin";
        EXPECT_EQ(slurp(one / name), slurp(chunked / name)) << name;
    }
    fs::remove_all(one);
    fs::remove_all(chunked);
}

TEST(Binary, AppendAfterFinishThrows) {
    const auto dir = fresh_dir("kooza_bin_finished");
    BinaryWriter w(dir);
    w.append(random_traceset(1, 3));
    w.finish();
    w.finish();  // idempotent
    EXPECT_THROW(w.append(TraceSet{}), std::logic_error);
    fs::remove_all(dir);
}

TEST(Binary, MissingStreamFileFailsLoudly) {
    const auto dir = fresh_dir("kooza_bin_missing");
    write_binary(random_traceset(2, 10), dir);
    fs::remove(dir / "network.bin");
    const auto& missing = obs::counter("trace.bin.missing_files_total");
    const auto before = missing.value();
    EXPECT_THROW(
        {
            try {
                (void)read_binary(dir);
            } catch (const std::runtime_error& e) {
                EXPECT_NE(std::string(e.what()).find("network.bin"),
                          std::string::npos);
                throw;
            }
        },
        std::runtime_error);
    EXPECT_EQ(missing.value(), before + 1);
    fs::remove_all(dir);
}

TEST(Binary, TruncatedFileRejected) {
    const auto dir = fresh_dir("kooza_bin_trunc");
    write_binary(random_traceset(3, 50), dir);
    const auto p = dir / "storage.bin";
    fs::resize_file(p, fs::file_size(p) / 2);
    EXPECT_THROW((void)read_binary(dir), std::runtime_error);
    fs::remove_all(dir);
}

TEST(Binary, BitFlipRejectedByCrc) {
    const auto dir = fresh_dir("kooza_bin_flip");
    write_binary(random_traceset(4, 50), dir);
    const auto p = dir / "cpu.bin";
    auto bytes = slurp(p);
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] ^= 0x01;  // one bit, mid-column
    {
        std::ofstream f(p, std::ios::binary | std::ios::trunc);
        f.write(reinterpret_cast<const char*>(bytes.data()),
                std::streamsize(bytes.size()));
    }
    EXPECT_THROW(
        {
            try {
                (void)read_binary(dir);
            } catch (const std::runtime_error& e) {
                EXPECT_NE(std::string(e.what()).find("CRC32"), std::string::npos);
                throw;
            }
        },
        std::runtime_error);
    fs::remove_all(dir);
}

TEST(Binary, CorruptHeaderRejected) {
    const auto dir = fresh_dir("kooza_bin_header");
    write_binary(random_traceset(8, 5), dir);
    const auto p = dir / "requests.bin";
    auto bytes = slurp(p);
    bytes[3] ^= 0xFF;  // damage the magic
    {
        std::ofstream f(p, std::ios::binary | std::ios::trunc);
        f.write(reinterpret_cast<const char*>(bytes.data()),
                std::streamsize(bytes.size()));
    }
    EXPECT_THROW((void)read_binary(dir), std::runtime_error);
    fs::remove_all(dir);
}

TEST(Binary, OutOfRangeEnumRejected) {
    // A CRC-valid file whose enum column holds a byte outside the enum's
    // range must still be rejected — strictness mirroring the CSV
    // readers' direction/io-type parsing.
    const auto dir = fresh_dir("kooza_bin_badenum");
    TraceSet ts;
    NetworkRecord r;
    r.time = 1.0;
    r.request_id = 1;
    r.size_bytes = 10;
    r.direction = static_cast<NetworkRecord::Direction>(7);  // corrupt source
    r.latency = 0.1;
    ts.network.push_back(r);
    write_binary(ts, dir);
    EXPECT_THROW(
        {
            try {
                (void)read_binary(dir);
            } catch (const std::runtime_error& e) {
                EXPECT_NE(std::string(e.what()).find("direction"),
                          std::string::npos);
                throw;
            }
        },
        std::runtime_error);
    fs::remove_all(dir);
}

TEST(Binary, StringTableDeduplicatesNames) {
    // 1000 spans over 2 distinct names: the name column is u32 indices,
    // so the file stays far smaller than inlining the strings would be.
    const auto dir = fresh_dir("kooza_bin_strtab");
    TraceSet ts;
    for (std::size_t i = 0; i < 1000; ++i) {
        Span s;
        s.trace_id = i;
        s.span_id = i + 1;
        s.name = (i % 2 == 0) ? "a.rather.long.phase.name.repeated.often"
                              : "another.long.name";
        ts.spans.push_back(s);
    }
    write_binary(ts, dir);
    const auto back = read_binary(dir);
    ASSERT_EQ(back.spans.size(), 1000u);
    EXPECT_EQ(back.spans[0].name, "a.rather.long.phase.name.repeated.often");
    EXPECT_EQ(back.spans[1].name, "another.long.name");
    // 1000 spans * (3*u64 + u32 + 2*f64) = 44 KB of columns; the two
    // names add ~60 bytes once. Inlined they would add ~28 KB.
    EXPECT_LT(fs::file_size(dir / "spans.bin"), 50'000u);
    fs::remove_all(dir);
}

TEST(Io, DetectFormatPrefersBinary) {
    const auto dir = fresh_dir("kooza_io_detect");
    const auto ts = random_traceset(11, 20);
    write_csv(ts, dir);
    EXPECT_EQ(detect_format(dir), Format::kCsv);
    write_binary(ts, dir);  // both layouts present -> binary wins
    EXPECT_EQ(detect_format(dir), Format::kBinary);
    expect_equal(read_traces(dir), ts);
    fs::remove_all(dir);
    EXPECT_THROW((void)detect_format(dir), std::runtime_error);
    fs::remove_all(dir);
}

TEST(Io, FormatStrings) {
    EXPECT_STREQ(to_string(Format::kCsv), "csv");
    EXPECT_STREQ(to_string(Format::kBinary), "bin");
    EXPECT_EQ(format_from_string("csv"), Format::kCsv);
    EXPECT_EQ(format_from_string("bin"), Format::kBinary);
    EXPECT_EQ(format_from_string("binary"), Format::kBinary);
    EXPECT_EQ(format_from_string("parquet"), std::nullopt);
}

TEST(Binary, Crc32KnownVectors) {
    // CRC-32/ISO-HDLC check value: crc32("123456789") == 0xCBF43926.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

}  // namespace
