// Tests for parameter estimation and KS-based model selection: each
// estimator must recover known parameters from synthetic samples, and
// fit_best must identify the generating family.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sim/rng.hpp"
#include "stats/empirical.hpp"
#include "stats/fitting.hpp"

namespace {

using namespace kooza::stats;
using kooza::sim::Rng;

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto& x : xs) x = d.sample(rng);
    return xs;
}

TEST(FitExponential, RecoversRate) {
    Exponential truth(2.5);
    auto fit = fit_exponential(draw(truth, 20000, 1));
    EXPECT_NEAR(fit->lambda(), 2.5, 0.1);
}

TEST(FitExponential, RejectsBadInput) {
    EXPECT_THROW(fit_exponential({}), std::invalid_argument);
    const std::vector<double> neg{-1.0, -2.0};
    EXPECT_THROW(fit_exponential(neg), std::invalid_argument);
}

TEST(FitNormal, RecoversParams) {
    Normal truth(10.0, 3.0);
    auto fit = fit_normal(draw(truth, 20000, 2));
    EXPECT_NEAR(fit->mean(), 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(fit->variance()), 3.0, 0.1);
}

TEST(FitNormal, ConstantRejected) {
    const std::vector<double> xs{5.0, 5.0, 5.0};
    EXPECT_THROW(fit_normal(xs), std::invalid_argument);
}

TEST(FitLogNormal, RecoversParams) {
    LogNormal truth(1.0, 0.4);
    auto fit = fit_lognormal(draw(truth, 20000, 3));
    EXPECT_NEAR(fit->mu(), 1.0, 0.05);
    EXPECT_NEAR(fit->sigma(), 0.4, 0.05);
}

TEST(FitLogNormal, NegativeDataRejected) {
    const std::vector<double> xs{1.0, -1.0};
    EXPECT_THROW(fit_lognormal(xs), std::invalid_argument);
}

TEST(FitPareto, RecoversParams) {
    Pareto truth(2.0, 3.0);
    auto fit = fit_pareto(draw(truth, 20000, 4));
    EXPECT_NEAR(fit->xm(), 2.0, 0.01);
    EXPECT_NEAR(fit->alpha(), 3.0, 0.15);
}

TEST(FitWeibull, RecoversParams) {
    Weibull truth(1.7, 3.0);
    auto fit = fit_weibull(draw(truth, 20000, 5));
    EXPECT_NEAR(fit->shape(), 1.7, 0.1);
    EXPECT_NEAR(fit->scale(), 3.0, 0.1);
}

TEST(FitGamma, RecoversParams) {
    Gamma truth(4.0, 1.5);
    auto fit = fit_gamma(draw(truth, 20000, 6));
    EXPECT_NEAR(fit->mean(), 6.0, 0.2);
    EXPECT_NEAR(fit->variance(), 9.0, 0.7);
}

TEST(FitUniform, CoversSample) {
    Uniform truth(3.0, 8.0);
    auto fit = fit_uniform(draw(truth, 5000, 7));
    EXPECT_NEAR(fit->lo(), 3.0, 0.05);
    EXPECT_NEAR(fit->hi(), 8.0, 0.05);
}

struct BestCase {
    std::string expected;
    std::function<std::unique_ptr<Distribution>()> make;
};

class FitBestIdentifies : public ::testing::TestWithParam<std::string> {};

TEST_P(FitBestIdentifies, GeneratingFamilyWins) {
    const std::string which = GetParam();
    std::unique_ptr<Distribution> truth;
    if (which == "exponential") truth = std::make_unique<Exponential>(1.0);
    if (which == "normal") truth = std::make_unique<Normal>(50.0, 5.0);
    if (which == "pareto") truth = std::make_unique<Pareto>(1.0, 1.2);
    if (which == "uniform") truth = std::make_unique<Uniform>(10.0, 20.0);
    ASSERT_NE(truth, nullptr);
    auto best = fit_best(draw(*truth, 8000, 42));
    if (which == "exponential") {
        // Weibull(1, s) and Gamma(1, s) coincide with the exponential; any
        // of the three may win the KS race on a finite sample.
        EXPECT_TRUE(best.dist->name() == "exponential" ||
                    best.dist->name() == "weibull" || best.dist->name() == "gamma")
            << best.dist->describe();
    } else {
        EXPECT_EQ(best.dist->name(), which);
    }
    EXPECT_LT(best.ks, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Families, FitBestIdentifies,
                         ::testing::Values("exponential", "normal", "pareto",
                                           "uniform"),
                         [](const auto& info) { return info.param; });

TEST(FitAll, SortedByKs) {
    Exponential truth(1.0);
    const Family fams[] = {Family::kExponential, Family::kNormal, Family::kUniform};
    auto fits = fit_all(draw(truth, 4000, 8), fams);
    ASSERT_GE(fits.size(), 2u);
    for (std::size_t i = 1; i < fits.size(); ++i)
        EXPECT_LE(fits[i - 1].ks, fits[i].ks);
}

TEST(FitAll, ConstantSampleGivesDeterministic) {
    const std::vector<double> xs{7.0, 7.0, 7.0};
    const Family fams[] = {Family::kExponential, Family::kNormal};
    auto fits = fit_all(xs, fams);
    ASSERT_EQ(fits.size(), 1u);
    EXPECT_EQ(fits[0].dist->name(), "deterministic");
    EXPECT_DOUBLE_EQ(fits[0].ks, 0.0);
}

TEST(FitAll, SkipsInapplicableFamilies) {
    // Data with negatives: lognormal/pareto/weibull must be skipped, not throw.
    Normal truth(0.0, 1.0);
    const Family fams[] = {Family::kLogNormal, Family::kPareto, Family::kWeibull,
                           Family::kNormal};
    auto fits = fit_all(draw(truth, 2000, 9), fams);
    ASSERT_EQ(fits.size(), 1u);
    EXPECT_EQ(fits[0].dist->name(), "normal");
}

TEST(FitOrEmpirical, ParametricWhenGoodFit) {
    Exponential truth(2.0);
    auto d = fit_or_empirical(draw(truth, 5000, 10), 0.05);
    // Must stay parametric (exponential or a generalization), not empirical.
    EXPECT_NE(d->name(), "empirical");
    EXPECT_NEAR(d->mean(), 0.5, 0.05);
}

TEST(FitOrEmpirical, EmpiricalFallbackOnMixture) {
    // Strongly bimodal data fits no single family well.
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i)
        xs.push_back(rng.bernoulli(0.5) ? rng.normal(1.0, 0.01)
                                        : rng.normal(100.0, 0.01));
    auto d = fit_or_empirical(xs, 0.05);
    EXPECT_EQ(d->name(), "empirical");
}

TEST(FitOrEmpirical, ConstantGivesDeterministic) {
    const std::vector<double> xs{4.0, 4.0};
    auto d = fit_or_empirical(xs);
    EXPECT_EQ(d->name(), "deterministic");
}

TEST(FamilyName, AllNamed) {
    EXPECT_EQ(family_name(Family::kExponential), "exponential");
    EXPECT_EQ(family_name(Family::kDeterministic), "deterministic");
    EXPECT_EQ(family_name(Family::kGamma), "gamma");
}

}  // namespace
