// Tests for k-means and Gaussian-mixture (model-based) clustering.
#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"
#include "stats/cluster.hpp"

namespace {

using namespace kooza::stats;
using kooza::sim::Rng;

Matrix two_blobs(int per_blob, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < per_blob; ++i)
        rows.push_back({rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)});
    for (int i = 0; i < per_blob; ++i)
        rows.push_back({rng.normal(10.0, 0.5), rng.normal(10.0, 0.5)});
    return Matrix::from_rows(rows);
}

TEST(KMeans, SeparatesTwoBlobs) {
    Rng rng(1);
    const auto data = two_blobs(100, 42);
    const auto r = kmeans(data, 2, rng);
    // Every point in blob 1 shares a label, distinct from blob 2's.
    const auto l0 = r.labels[0];
    for (int i = 0; i < 100; ++i) EXPECT_EQ(r.labels[std::size_t(i)], l0);
    const auto l1 = r.labels[100];
    EXPECT_NE(l0, l1);
    for (int i = 100; i < 200; ++i) EXPECT_EQ(r.labels[std::size_t(i)], l1);
}

TEST(KMeans, CentroidsNearBlobMeans) {
    Rng rng(2);
    const auto r = kmeans(two_blobs(200, 43), 2, rng);
    std::set<int> found;
    for (std::size_t c = 0; c < 2; ++c) {
        if (std::abs(r.centroids(c, 0)) < 1.0) found.insert(0);
        if (std::abs(r.centroids(c, 0) - 10.0) < 1.0) found.insert(1);
    }
    EXPECT_EQ(found.size(), 2u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
    Rng rng(3);
    const auto data = two_blobs(100, 44);
    const auto r1 = kmeans(data, 1, rng);
    const auto r2 = kmeans(data, 2, rng);
    EXPECT_LT(r2.inertia, r1.inertia * 0.2);
}

TEST(KMeans, Validation) {
    Rng rng(4);
    const auto data = two_blobs(5, 45);
    EXPECT_THROW(kmeans(data, 0, rng), std::invalid_argument);
    EXPECT_THROW(kmeans(data, 100, rng), std::invalid_argument);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
    Rng rng(5);
    auto data = Matrix::from_rows({{0.0, 0.0}, {5.0, 5.0}, {9.0, 1.0}});
    const auto r = kmeans(data, 3, rng);
    EXPECT_NEAR(r.inertia, 0.0, 1e-18);
}

TEST(Gmm, RecoversTwoComponents) {
    Rng rng(6);
    GaussianMixture gmm(two_blobs(200, 46), 2, rng);
    ASSERT_EQ(gmm.components(), 2u);
    EXPECT_NEAR(gmm.weights()[0], 0.5, 0.05);
    // Means near (0,0) and (10,10) in some order.
    const bool first_low = gmm.means()[0][0] < 5.0;
    const auto& low = gmm.means()[first_low ? 0 : 1];
    const auto& high = gmm.means()[first_low ? 1 : 0];
    EXPECT_NEAR(low[0], 0.0, 0.3);
    EXPECT_NEAR(high[0], 10.0, 0.3);
}

TEST(Gmm, ClassifyAssignsNearestComponent) {
    Rng rng(7);
    GaussianMixture gmm(two_blobs(200, 47), 2, rng);
    const std::vector<double> near_low{0.1, -0.2};
    const std::vector<double> near_high{9.8, 10.1};
    EXPECT_NE(gmm.classify(near_low), gmm.classify(near_high));
}

TEST(Gmm, LogPdfHigherNearMass) {
    Rng rng(8);
    GaussianMixture gmm(two_blobs(200, 48), 2, rng);
    const std::vector<double> on{0.0, 0.0};
    const std::vector<double> off{5.0, 5.0};
    EXPECT_GT(gmm.log_pdf(on), gmm.log_pdf(off));
}

TEST(Gmm, SampleStaysNearComponents) {
    Rng rng(9);
    GaussianMixture gmm(two_blobs(200, 49), 2, rng);
    for (int i = 0; i < 200; ++i) {
        const auto x = gmm.sample(rng);
        const bool near_low = std::abs(x[0]) < 3.0 && std::abs(x[1]) < 3.0;
        const bool near_high =
            std::abs(x[0] - 10.0) < 3.0 && std::abs(x[1] - 10.0) < 3.0;
        EXPECT_TRUE(near_low || near_high) << x[0] << "," << x[1];
    }
}

TEST(Gmm, BicSelectsTwoForTwoBlobs) {
    Rng rng(10);
    EXPECT_EQ(select_components(two_blobs(150, 50), 4, rng), 2u);
}

TEST(Gmm, BicSelectsOneForSingleBlob) {
    Rng rng(11);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 300; ++i)
        rows.push_back({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)});
    EXPECT_EQ(select_components(Matrix::from_rows(rows), 3, rng), 1u);
}

TEST(Gmm, ParameterCount) {
    Rng rng(12);
    GaussianMixture gmm(two_blobs(50, 51), 2, rng);
    // (k-1) weights + k*d means + k*d variances = 1 + 4 + 4.
    EXPECT_EQ(gmm.parameter_count(), 9u);
    EXPECT_THROW((void)gmm.bic(0), std::invalid_argument);
}

TEST(Gmm, DimensionValidation) {
    Rng rng(13);
    GaussianMixture gmm(two_blobs(50, 52), 2, rng);
    const std::vector<double> wrong{1.0};
    EXPECT_THROW((void)gmm.log_pdf(wrong), std::invalid_argument);
    EXPECT_THROW((void)gmm.classify(wrong), std::invalid_argument);
}

}  // namespace
