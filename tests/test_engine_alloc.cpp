// Steady-state allocation audit: global operator new/delete counting
// hooks prove that a schedule/dispatch cycle at constant queue depth
// touches the system heap zero times — event nodes come from the engine's
// slab arena, EventFn captures live inline (or in recycled arena blocks
// when oversized), and metrics are batched into engine-local tallies.
//
// Skipped under sanitizers: their interceptors own the allocator and the
// replacement operators below would fight them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/engine.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KOOZA_ALLOC_HOOKS_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KOOZA_ALLOC_HOOKS_DISABLED 1
#endif
#endif

#ifndef KOOZA_ALLOC_HOOKS_DISABLED

namespace {
// Single-threaded test binary: plain counters are enough.
bool g_counting = false;
std::uint64_t g_new_calls = 0;

void* counted_alloc(std::size_t sz) {
    if (g_counting) ++g_new_calls;
    if (void* p = std::malloc(sz ? sz : 1)) return p;
    throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t sz) { return counted_alloc(sz); }
void* operator new[](std::size_t sz) { return counted_alloc(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !KOOZA_ALLOC_HOOKS_DISABLED

namespace {

using kooza::sim::Engine;

std::uint64_t next_u64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}
double next_unit(std::uint64_t& s) { return double(next_u64(s) >> 11) * 0x1.0p-53; }

// Self-rescheduling hold actor: the queue sits at constant depth forever,
// so run_until() windows measure pure steady-state scheduling.
template <typename MakeAction>
void expect_zero_steady_state_allocs(MakeAction make_action) {
#ifdef KOOZA_ALLOC_HOOKS_DISABLED
    GTEST_SKIP() << "allocator hooks disabled under sanitizers";
#else
    Engine eng;
    std::uint64_t s = 11;
    for (int i = 0; i < 512; ++i)
        eng.schedule_after(next_unit(s) * 1e-3, make_action(eng, s));

    // Warm up: first-touch work (slab carving, bucket resizes to the
    // steady-state size, metric registration) is allowed to allocate.
    eng.run_until(0.05);
    const std::uint64_t warm_events = eng.executed();
    ASSERT_GT(warm_events, 10000u);
    const std::size_t warm_slabs = eng.arena().slab_count();

    g_new_calls = 0;
    g_counting = true;
    eng.run_until(0.10);
    g_counting = false;

    ASSERT_GT(eng.executed(), warm_events + 10000u);
    EXPECT_EQ(g_new_calls, 0u)
        << "steady-state schedule/dispatch touched the system heap";
    EXPECT_EQ(eng.arena().slab_count(), warm_slabs)
        << "steady state grew the arena";
#endif
}

TEST(EngineAlloc, InlineCaptureHoldModelIsAllocationFree) {
    struct Actor {
        Engine* eng;
        std::uint64_t* s;
        void fire() const {
            Actor self = *this;
            eng->schedule_after(next_unit(*s) * 1e-3, [self] { self.fire(); });
        }
    };
    expect_zero_steady_state_allocs([](Engine& eng, std::uint64_t& s) {
        Actor actor{&eng, &s};
        return [actor] { actor.fire(); };
    });
}

TEST(EngineAlloc, OversizedCaptureHoldModelReusesArenaBlocks) {
    // The capture exceeds kEventFnInlineBytes, so every schedule draws an
    // overflow block — which must come from the arena free list, not the
    // system heap, once the depth-sized working set exists.
    struct FatActor {
        Engine* eng;
        std::uint64_t* s;
        char ballast[72] = {};
        void fire() const {
            FatActor self = *this;
            eng->schedule_after(next_unit(*s) * 1e-3, [self] { self.fire(); });
        }
    };
    static_assert(sizeof(FatActor) > kooza::sim::kEventFnInlineBytes);
    expect_zero_steady_state_allocs([](Engine& eng, std::uint64_t& s) {
        FatActor actor{&eng, &s};
        return [actor] { actor.fire(); };
    });
}

}  // namespace
