// Tests for the GFS simulator: master placement, request execution paths
// (Fig. 1 of the paper), trace emission, replication and location caching.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gfs/cluster.hpp"
#include "gfs/master.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza::gfs;
using kooza::trace::IoType;
using kooza::trace::SpanTree;

TEST(Master, PlacesChunksRoundRobin) {
    Master m(4, 1, 1 << 20);
    m.create_file("a", 4u << 20);  // 4 chunks
    const auto& chunks = m.chunks("a");
    ASSERT_EQ(chunks.size(), 4u);
    std::set<std::uint32_t> servers;
    for (const auto& c : chunks) servers.insert(c.servers.at(0));
    EXPECT_EQ(servers.size(), 4u);  // spread across all servers
}

TEST(Master, ReplicationDistinctServers) {
    Master m(4, 3, 1 << 20);
    m.create_file("a", 1u << 20);
    const auto& loc = m.chunks("a").front();
    std::set<std::uint32_t> reps(loc.servers.begin(), loc.servers.end());
    EXPECT_EQ(reps.size(), 3u);
}

TEST(Master, ReplicationClampedToServers) {
    Master m(2, 3, 1 << 20);
    EXPECT_EQ(m.replication(), 2u);
}

TEST(Master, LookupByOffset) {
    Master m(2, 1, 1 << 20);
    m.create_file("a", 3u << 20);
    const auto& c0 = m.lookup("a", 0);
    const auto& c2 = m.lookup("a", (2u << 20) + 5);
    EXPECT_NE(c0.handle, c2.handle);
    EXPECT_THROW((void)m.lookup("a", 3u << 20), std::out_of_range);
    EXPECT_THROW((void)m.lookup("nope", 0), std::invalid_argument);
}

TEST(Master, DuplicateAndEmptyFilesRejected) {
    Master m(1, 1, 1 << 20);
    m.create_file("a", 100);
    EXPECT_THROW(m.create_file("a", 100), std::invalid_argument);
    EXPECT_THROW(m.create_file("b", 0), std::invalid_argument);
    EXPECT_TRUE(m.has_file("a"));
    EXPECT_FALSE(m.has_file("b"));
    EXPECT_EQ(m.file_size("a"), 100u);
}

GfsConfig small_config() {
    GfsConfig cfg;
    cfg.n_chunkservers = 1;
    cfg.chunk_size = 64ull << 20;
    return cfg;
}

TEST(Cluster, ReadProducesExpectedRecords) {
    Cluster cluster(small_config());
    cluster.create_file("f", 64ull << 20);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 65536,
                    .type = IoType::kRead});
    cluster.run();
    const auto ts = cluster.traces();
    ASSERT_EQ(ts.requests.size(), 1u);
    const auto fs = kooza::trace::extract_features(ts);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].network_bytes, 65536u);          // response payload
    EXPECT_EQ(fs[0].storage_bytes, 65536u);          // one disk read
    EXPECT_EQ(fs[0].storage_type, IoType::kRead);
    EXPECT_EQ(fs[0].memory_bytes, 65536u >> 2);      // cfg.mem_shift_read = 2
    EXPECT_EQ(fs[0].memory_type, IoType::kRead);
    EXPECT_GT(fs[0].latency, 0.0);
    EXPECT_GT(fs[0].cpu_utilization, 0.0);
    EXPECT_LT(fs[0].cpu_utilization, 0.2);
}

TEST(Cluster, WriteProducesExpectedRecords) {
    Cluster cluster(small_config());
    cluster.create_file("f", 64ull << 20);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4u << 20,
                    .type = IoType::kWrite});
    cluster.run();
    const auto fs = kooza::trace::extract_features(cluster.traces());
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].network_bytes, 4u << 20);
    EXPECT_EQ(fs[0].storage_bytes, 4u << 20);
    EXPECT_EQ(fs[0].storage_type, IoType::kWrite);
    EXPECT_EQ(fs[0].memory_bytes, (4u << 20) >> 4);  // cfg.mem_shift_write = 4
    EXPECT_EQ(fs[0].memory_type, IoType::kWrite);
}

TEST(Cluster, WriteSlowerThanReadOfSameSize) {
    // The write pays the inbound payload transfer; a read of equal size
    // pays it outbound — but the write also acks, so compare against read.
    Cluster cluster(small_config());
    cluster.create_file("f", 64ull << 20);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 1u << 20,
                    .type = IoType::kRead});
    cluster.submit({.time = 1.0, .file = "f", .offset = 0, .size = 1u << 20,
                    .type = IoType::kWrite});
    cluster.run();
    ASSERT_EQ(cluster.latencies().size(), 2u);
    EXPECT_GT(cluster.latencies()[1], 0.0);
}

TEST(Cluster, SpanTreeMatchesFigure1Path) {
    Cluster cluster(small_config());
    cluster.create_file("f", 64ull << 20);
    const auto id = cluster.submit({.time = 0.0, .file = "f", .offset = 0,
                                    .size = 65536, .type = IoType::kRead});
    cluster.run();
    const auto ts = cluster.traces();
    SpanTree tree(ts.spans, id);
    const auto seq = tree.phase_sequence();
    // request, master.lookup (first access), then the Fig. 1 path.
    const std::vector<std::string> expected{
        "request", "master.lookup", "net.rx",        "cpu.verify",
        "mem.buffer", "disk.io",    "cpu.aggregate", "net.tx"};
    EXPECT_EQ(seq, expected);
}

TEST(Cluster, LocationCachingSkipsSecondLookup) {
    Cluster cluster(small_config());
    cluster.create_file("f", 64ull << 20);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    const auto second = cluster.submit({.time = 1.0, .file = "f", .offset = 0,
                                        .size = 4096, .type = IoType::kRead});
    cluster.run();
    SpanTree tree(cluster.traces().spans, second);
    for (const auto& name : tree.phase_sequence())
        EXPECT_NE(name, "master.lookup");
}

TEST(Cluster, NoCachingRepaysLookup) {
    auto cfg = small_config();
    cfg.client_caches_locations = false;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    const auto second = cluster.submit({.time = 1.0, .file = "f", .offset = 0,
                                        .size = 4096, .type = IoType::kRead});
    cluster.run();
    SpanTree tree(cluster.traces().spans, second);
    EXPECT_EQ(tree.phase_sequence()[1], "master.lookup");
}

TEST(Cluster, ReplicationWritesAllReplicas) {
    GfsConfig cfg;
    cfg.n_chunkservers = 3;
    cfg.replication = 3;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 1u << 20,
                    .type = IoType::kWrite});
    cluster.run();
    const auto ts = cluster.traces();
    // Three disk writes (primary + 2 replicas).
    EXPECT_EQ(ts.storage.size(), 3u);
    for (const auto& r : ts.storage) EXPECT_EQ(r.type, IoType::kWrite);
    // Replication phases appear in the span tree.
    SpanTree tree(ts.spans, 0);
    std::size_t forwards = 0;
    for (const auto& name : tree.phase_sequence())
        if (name == "repl.forward") ++forwards;
    EXPECT_EQ(forwards, 2u);
}

TEST(Cluster, ReplicatedWriteSlowerThanUnreplicated) {
    auto run = [](std::size_t replication) {
        GfsConfig cfg;
        cfg.n_chunkservers = 3;
        cfg.replication = replication;
        Cluster cluster(cfg);
        cluster.create_file("f", 64ull << 20);
        cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4u << 20,
                        .type = IoType::kWrite});
        cluster.run();
        return cluster.latencies().at(0);
    };
    EXPECT_GT(run(3), run(1) * 1.5);
}

TEST(Cluster, MultiChunkRequestFansOut) {
    GfsConfig cfg;
    cfg.n_chunkservers = 4;
    cfg.chunk_size = 1ull << 20;  // 1 MB chunks
    Cluster cluster(cfg);
    cluster.create_file("f", 16ull << 20);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4u << 20,
                    .type = IoType::kRead});
    cluster.run();
    const auto ts = cluster.traces();
    // 4 chunks touched -> 4 disk reads across servers.
    EXPECT_EQ(ts.storage.size(), 4u);
    ASSERT_EQ(ts.requests.size(), 1u);
    EXPECT_EQ(ts.requests[0].bytes, 4u << 20);
}

TEST(Cluster, SamplingReducesSpans) {
    auto run = [](std::uint64_t every) {
        auto cfg = small_config();
        cfg.span_sample_every = every;
        Cluster cluster(cfg);
        cluster.create_file("f", 64ull << 20);
        for (int i = 0; i < 20; ++i)
            cluster.submit({.time = double(i), .file = "f", .offset = 0, .size = 4096,
                            .type = IoType::kRead});
        cluster.run();
        return cluster.traces().spans.size();
    };
    EXPECT_GT(run(1), run(10) * 5);
}

TEST(Cluster, RequestBeyondFileRejected) {
    Cluster cluster(small_config());
    cluster.create_file("f", 1u << 20);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 2u << 20,
                    .type = IoType::kRead});
    EXPECT_THROW(cluster.run(), std::invalid_argument);
}

TEST(Cluster, CompletedCountsRequests) {
    Cluster cluster(small_config());
    cluster.create_file("f", 64ull << 20);
    for (int i = 0; i < 5; ++i)
        cluster.submit({.time = double(i) * 0.1, .file = "f", .offset = 0,
                        .size = 4096, .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 5u);
    EXPECT_EQ(cluster.latencies().size(), 5u);
}

TEST(FailureInjection, ReadFailsOverToReplica) {
    GfsConfig cfg;
    cfg.n_chunkservers = 3;
    cfg.replication = 3;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    // Fail the primary for chunk 0 (round-robin placement: server 0).
    cluster.server(0).set_failed(true);
    const auto id = cluster.submit({.time = 0.0, .file = "f", .offset = 0,
                                    .size = 65536, .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 1u);
    EXPECT_EQ(cluster.failed_requests(), 0u);
    // Failover timeout shows up in the latency and the span tree.
    EXPECT_GT(cluster.latencies().at(0), cfg.failover_timeout);
    SpanTree tree(cluster.traces().spans, id);
    bool saw_failover = false;
    for (const auto& name : tree.phase_sequence())
        if (name == "failover") saw_failover = true;
    EXPECT_TRUE(saw_failover);
}

TEST(FailureInjection, AllReplicasDownFailsRequest) {
    GfsConfig cfg;
    cfg.n_chunkservers = 2;
    cfg.replication = 2;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    cluster.server(0).set_failed(true);
    cluster.server(1).set_failed(true);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 0u);
    EXPECT_EQ(cluster.failed_requests(), 1u);
    EXPECT_TRUE(cluster.traces().requests.empty());
}

TEST(FailureInjection, WritePromotesNewPrimary) {
    GfsConfig cfg;
    cfg.n_chunkservers = 3;
    cfg.replication = 3;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    cluster.server(0).set_failed(true);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 1u << 20,
                    .type = IoType::kWrite});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 1u);
    // Only the two healthy servers wrote.
    EXPECT_EQ(cluster.traces().storage.size(), 2u);
    EXPECT_EQ(cluster.server(0).disk().completed(), 0u);
}

TEST(FailureInjection, RecoveryRestoresService) {
    GfsConfig cfg;
    Cluster cluster(cfg);  // single server, replication 1
    cluster.create_file("f", 64ull << 20);
    cluster.server(0).set_failed(true);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.failed_requests(), 1u);
    cluster.server(0).set_failed(false);
    cluster.submit({.time = 10.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 1u);
}

TEST(Append, OffsetsAllocatedSequentially) {
    Master m(2, 1, 1 << 20);
    m.create_file("log", 1000);
    EXPECT_EQ(m.allocate_append("log", 500), 1000u);
    EXPECT_EQ(m.allocate_append("log", 500), 1500u);
    EXPECT_EQ(m.file_size("log"), 2000u);
}

TEST(Append, PadsAtChunkBoundary) {
    Master m(2, 1, 1 << 20);
    m.create_file("log", (1 << 20) - 100);  // 100 bytes left in chunk 0
    // A 500-byte record can't straddle: it pads to chunk 1.
    EXPECT_EQ(m.allocate_append("log", 500), std::uint64_t(1 << 20));
    EXPECT_EQ(m.chunks("log").size(), 2u);
}

TEST(Append, GrowsChunkList) {
    Master m(4, 2, 1 << 20);
    m.create_file("log", 100);
    for (int i = 0; i < 5; ++i) (void)m.allocate_append("log", 512 << 10);
    EXPECT_GE(m.chunks("log").size(), 3u);
    for (const auto& loc : m.chunks("log")) EXPECT_EQ(loc.servers.size(), 2u);
}

TEST(Append, Validation) {
    Master m(1, 1, 1 << 20);
    m.create_file("log", 100);
    EXPECT_THROW((void)m.allocate_append("log", 0), std::invalid_argument);
    EXPECT_THROW((void)m.allocate_append("log", 2 << 20), std::invalid_argument);
    EXPECT_THROW((void)m.allocate_append("nope", 100), std::invalid_argument);
}

TEST(Append, ClusterAppendsAreWrites) {
    Cluster cluster(small_config());
    cluster.create_file("log", 4096);
    for (int i = 0; i < 5; ++i)
        cluster.submit({.time = double(i) * 0.1, .file = "log", .offset = 0,
                        .size = 64u << 10, .type = IoType::kRead, .client = 0,
                        .append = true});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 5u);
    const auto ts = cluster.traces();
    ASSERT_EQ(ts.storage.size(), 5u);
    // All writes, at strictly increasing LBNs (append locality).
    for (const auto& r : ts.storage) EXPECT_EQ(r.type, IoType::kWrite);
    std::vector<kooza::trace::StorageRecord> sorted = ts.storage;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.time < b.time; });
    for (std::size_t i = 1; i < sorted.size(); ++i)
        EXPECT_GT(sorted[i].lbn, sorted[i - 1].lbn);
}

TEST(Append, SequentialityBeatsRandomWrites) {
    // Appends land contiguously -> near-sequential disk service; random
    // writes of the same size pay seeks.
    auto mean_latency = [](bool append) {
        Cluster cluster(small_config());
        cluster.create_file("f", 64ull << 20);
        kooza::sim::Rng rng(7);
        for (int i = 0; i < 30; ++i) {
            RequestSpec r;
            r.time = double(i) * 0.5;
            r.file = "f";
            r.size = 256u << 10;
            r.type = IoType::kWrite;
            if (append) {
                r.append = true;
            } else {
                r.offset = (std::uint64_t(rng.uniform(0.0, double(60ull << 20))) /
                            4096) *
                           4096;
            }
            cluster.submit(r);
        }
        cluster.run();
        double sum = 0.0;
        for (double l : cluster.latencies()) sum += l;
        return sum / double(cluster.latencies().size());
    };
    EXPECT_LT(mean_latency(true), mean_latency(false));
}

TEST(Profiler, SamplesAllServersOnCadence) {
    GfsConfig cfg;
    cfg.n_chunkservers = 2;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    for (int i = 0; i < 20; ++i)
        cluster.submit({.time = double(i) * 0.1, .file = "f", .offset = 0,
                        .size = 1u << 20, .type = IoType::kRead});
    auto& prof = cluster.attach_profiler(0.5, 2.0);
    cluster.run();
    // 4 ticks x 2 servers.
    EXPECT_EQ(prof.samples().size(), 8u);
    for (const auto& m : prof.samples()) {
        EXPECT_GE(m.cpu_utilization, 0.0);
        EXPECT_LE(m.cpu_utilization, 1.0);
        EXPECT_GE(m.disk_utilization, 0.0);
        EXPECT_LE(m.disk_utilization, 1.0);
    }
    EXPECT_EQ(prof.cpu_series(0).size(), 4u);
}

TEST(Profiler, FlagsTheHotServer) {
    GfsConfig cfg;
    cfg.n_chunkservers = 2;
    cfg.chunk_size = 32ull << 20;
    Cluster cluster(cfg);
    // Two single-chunk files: one per server; hammer only the first.
    cluster.create_file("hot", 32ull << 20);
    cluster.create_file("cold", 32ull << 20);
    for (int i = 0; i < 50; ++i)
        cluster.submit({.time = double(i) * 0.05, .file = "hot", .offset = 0,
                        .size = 4u << 20, .type = IoType::kRead});
    cluster.submit({.time = 0.0, .file = "cold", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    auto& prof = cluster.attach_profiler(0.5, 3.0);
    cluster.run();
    EXPECT_EQ(prof.hottest_server(), 0u);
    // The hot server's peak interval utilization dominates the cold one's
    // (the *final* interval may be idle for both once the burst drains —
    // per-interval deltas reflect current load, not start-weighted history).
    const auto hot = prof.disk_series(0);
    const auto cold = prof.disk_series(1);
    const double hot_peak = *std::max_element(hot.begin(), hot.end());
    const double cold_peak = *std::max_element(cold.begin(), cold.end());
    EXPECT_GT(hot_peak, cold_peak * 5.0);
}

TEST(Profiler, ReportsPerIntervalDeltasNotCumulative) {
    GfsConfig cfg;
    cfg.n_chunkservers = 1;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    // Burst of work in the first half-second, then a long idle tail.
    for (int i = 0; i < 10; ++i)
        cluster.submit({.time = double(i) * 0.05, .file = "f", .offset = 0,
                        .size = 4u << 20, .type = IoType::kRead});
    auto& prof = cluster.attach_profiler(1.0, 4.0);
    cluster.run();
    const auto disk = prof.disk_series(0);
    ASSERT_EQ(disk.size(), 4u);
    // The burst interval is busy; the cumulative-reporting bug kept the
    // idle tail's "utilization" pinned near the historical average instead
    // of dropping to zero.
    EXPECT_GT(disk.front(), 0.05);
    EXPECT_NEAR(disk.back(), 0.0, 1e-9);
    // Per-interval I/O counts must sum to the device's cumulative total.
    std::uint64_t ios = 0;
    for (const auto& m : prof.samples()) ios += m.disk_ios;
    EXPECT_EQ(ios, cluster.server(0).disk().completed());
}

TEST(Profiler, TakesFinalPartialSampleAtHorizon) {
    GfsConfig cfg;
    cfg.n_chunkservers = 1;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    // Activity near the horizon that only the partial tail tick can see.
    cluster.submit({.time = 1.7, .file = "f", .offset = 0, .size = 1u << 20,
                    .type = IoType::kRead});
    auto& prof = cluster.attach_profiler(0.8, 2.0);
    cluster.run();
    // Ticks at 0.8, 1.6 and the partial one at the 2.0 horizon.
    ASSERT_EQ(prof.samples().size(), 3u);
    const auto& tail = prof.samples().back();
    EXPECT_DOUBLE_EQ(tail.time, 2.0);
    EXPECT_NEAR(tail.interval, 0.4, 1e-12);
    EXPECT_GT(tail.disk_ios, 0u);
}

TEST(Profiler, EmptyProfileReturnsSentinel) {
    GfsConfig cfg;
    Cluster cluster(cfg);
    auto& prof = cluster.attach_profiler(0.5, 1.0);
    // Never run: no samples taken; flagging must not throw.
    EXPECT_TRUE(prof.samples().empty());
    EXPECT_EQ(prof.hottest_server(), MachineProfiler::kNone);
}

TEST(Profiler, Validation) {
    GfsConfig cfg;
    Cluster cluster(cfg);
    EXPECT_THROW(cluster.attach_profiler(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(cluster.attach_profiler(0.5, 0.0), std::invalid_argument);
    cluster.attach_profiler(0.5, 1.0);
    EXPECT_THROW(cluster.attach_profiler(0.5, 1.0), std::logic_error);
}

TEST(Cluster, DeterministicForSeed) {
    auto run = [] {
        Cluster cluster(small_config());
        cluster.create_file("f", 64ull << 20);
        for (int i = 0; i < 10; ++i)
            cluster.submit({.time = double(i) * 0.05, .file = "f",
                            .offset = std::uint64_t(i) * 8192, .size = 4096,
                            .type = IoType::kRead});
        cluster.run();
        return cluster.latencies();
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
