// Tests for the workload characterization report.
#include <gtest/gtest.h>

#include "core/characterize.hpp"
#include "gfs/cluster.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;

trace::TraceSet run_profile(const workloads::Profile& p, std::uint64_t seed) {
    gfs::GfsConfig cfg;
    gfs::Cluster cluster(cfg);
    sim::Rng rng(seed);
    p.generate(rng).install(cluster);
    cluster.run();
    return cluster.traces();
}

TEST(Characterize, BasicVolumeAndMix) {
    const auto ts = run_profile(
        workloads::MicroProfile({.count = 300, .arrival_rate = 20.0,
                                 .read_fraction = 0.7}),
        1);
    const auto r = core::characterize(ts);
    EXPECT_EQ(r.requests, 300u);
    EXPECT_NEAR(r.arrival_rate, 20.0, 3.0);
    EXPECT_NEAR(r.read_fraction, 0.7, 0.08);
    EXPECT_GT(r.duration, 0.0);
    EXPECT_FALSE(r.to_string().empty());
}

TEST(Characterize, PoissonStreamRecognized) {
    const auto ts = run_profile(
        workloads::MicroProfile({.count = 800, .arrival_rate = 25.0}), 2);
    const auto r = core::characterize(ts);
    // Exponential gaps (or a generalization that nests it).
    EXPECT_TRUE(r.arrival_family == "exponential" || r.arrival_family == "weibull" ||
                r.arrival_family == "gamma")
        << r.arrival_family;
    EXPECT_LT(r.burstiness_idc, 2.5);
}

TEST(Characterize, BurstyOltpFlagged) {
    const auto ts =
        run_profile(workloads::OltpProfile({.count = 2000, .base_rate = 30.0}), 3);
    const auto r = core::characterize(ts);
    EXPECT_GT(r.burstiness_idc, 3.0);
    EXPECT_GT(r.peak_to_mean, 2.0);
}

TEST(Characterize, StreamingIsReadOnly) {
    const auto ts = run_profile(workloads::StreamingProfile({.sessions = 40}), 4);
    const auto r = core::characterize(ts);
    EXPECT_DOUBLE_EQ(r.read_fraction, 1.0);
}

TEST(Characterize, PcaDimsWithinBounds) {
    const auto ts = run_profile(
        workloads::WebSearchProfile({.count = 500, .arrival_rate = 30.0}), 5);
    const auto r = core::characterize(ts);
    EXPECT_GE(r.pca_dims_90, 1u);
    EXPECT_LE(r.pca_dims_90, r.feature_dims);
    EXPECT_EQ(r.feature_dims, 5u);
}

TEST(Correlation, LatencyTracksStorageBytes) {
    // Micro profile: bimodal sizes dominate latency, so latency must
    // correlate strongly with storage bytes.
    const auto ts = run_profile(
        workloads::MicroProfile({.count = 400, .arrival_rate = 15.0}), 7);
    const auto r = core::correlation_report(ts);
    ASSERT_EQ(r.names.size(), 5u);
    const auto idx = [&](const std::string& n) {
        return std::size_t(std::find(r.names.begin(), r.names.end(), n) -
                           r.names.begin());
    };
    EXPECT_GT(r.matrix[idx("sto_bytes")][idx("latency")], 0.6);
    // Diagonal is exactly 1, matrix symmetric.
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(r.matrix[i][i], 1.0);
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_DOUBLE_EQ(r.matrix[i][j], r.matrix[j][i]);
    }
}

TEST(Correlation, PerformanceModelPredicts) {
    const auto ts = run_profile(
        workloads::MicroProfile({.count = 400, .arrival_rate = 15.0}), 8);
    const auto r = core::correlation_report(ts);
    EXPECT_GT(r.perf_r_squared, 0.5);
    // Predicting the average request's latency lands near the mean.
    const auto features = trace::extract_features(ts);
    double err = 0.0, mean_lat = 0.0;
    for (const auto& f : features) {
        err += std::fabs(r.predict_latency(f) - f.latency);
        mean_lat += f.latency;
    }
    err /= double(features.size());
    mean_lat /= double(features.size());
    EXPECT_LT(err, mean_lat * 0.5);
    EXPECT_NE(r.to_string().find("R^2"), std::string::npos);
}

TEST(Correlation, TooFewRequestsRejected) {
    const auto ts = run_profile(
        workloads::MicroProfile({.count = 5, .arrival_rate = 15.0}), 9);
    EXPECT_THROW(core::correlation_report(ts), std::invalid_argument);
}

TEST(Characterize, Validation) {
    trace::TraceSet empty;
    EXPECT_THROW(core::characterize(empty), std::invalid_argument);
    const auto ts = run_profile(
        workloads::MicroProfile({.count = 100, .arrival_rate = 20.0}), 6);
    EXPECT_THROW(core::characterize(ts, 0.0), std::invalid_argument);
}

}  // namespace
