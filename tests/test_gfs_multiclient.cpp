// Multi-client cluster tests: per-client response ports, contention
// between clients, and fairness of the shared chunkserver.
#include <gtest/gtest.h>

#include "gfs/cluster.hpp"
#include "stats/descriptive.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza::gfs;
using kooza::trace::IoType;

GfsConfig one_server() {
    GfsConfig cfg;
    cfg.n_chunkservers = 1;
    return cfg;
}

TEST(MultiClient, RequestsFromAllClientsComplete) {
    Cluster cluster(one_server(), /*n_clients=*/3);
    cluster.create_file("f", 64ull << 20);
    for (int i = 0; i < 30; ++i)
        cluster.submit({.time = double(i) * 0.05, .file = "f",
                        .offset = std::uint64_t(i) * 65536, .size = 4096,
                        .type = IoType::kRead,
                        .client = std::uint32_t(i % 3)});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 30u);
    EXPECT_EQ(cluster.traces().requests.size(), 30u);
}

TEST(MultiClient, UnknownClientRejected) {
    Cluster cluster(one_server(), 2);
    cluster.create_file("f", 1u << 20);
    EXPECT_THROW(cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                                 .type = IoType::kRead, .client = 5}),
                 std::invalid_argument);
}

TEST(MultiClient, EachClientCachesLocationsIndependently) {
    // Both clients' FIRST requests pay the master lookup; their second
    // requests do not — caches are per client.
    Cluster cluster(one_server(), 2);
    cluster.create_file("f", 64ull << 20);
    std::vector<std::uint64_t> ids;
    for (std::uint32_t c = 0; c < 2; ++c)
        for (int i = 0; i < 2; ++i)
            ids.push_back(cluster.submit({.time = double(ids.size()), .file = "f",
                                          .offset = 0, .size = 4096,
                                          .type = IoType::kRead, .client = c}));
    cluster.run();
    const auto ts = cluster.traces();
    auto has_lookup = [&](std::uint64_t id) {
        kooza::trace::SpanTree tree(ts.spans, id);
        for (const auto& name : tree.phase_sequence())
            if (name == "master.lookup") return true;
        return false;
    };
    EXPECT_TRUE(has_lookup(ids[0]));   // client 0, first
    EXPECT_FALSE(has_lookup(ids[1]));  // client 0, second
    EXPECT_TRUE(has_lookup(ids[2]));   // client 1, first — its own cache
    EXPECT_FALSE(has_lookup(ids[3]));
}

TEST(MultiClient, ContentionRaisesLatency) {
    // The same request stream split across 4 clients still contends on
    // the single chunkserver; concurrent bursts are slower than serial.
    auto run = [](double gap) {
        Cluster cluster(one_server(), 4);
        cluster.create_file("f", 64ull << 20);
        for (int i = 0; i < 16; ++i)
            cluster.submit({.time = double(i) * gap, .file = "f",
                            .offset = std::uint64_t(i) * (1u << 20),
                            .size = 1u << 20, .type = IoType::kRead,
                            .client = std::uint32_t(i % 4)});
        cluster.run();
        return kooza::stats::mean(cluster.latencies());
    };
    EXPECT_GT(run(0.0), 2.0 * run(1.0));  // burst vs spread-out
}

TEST(MultiClient, ResponsesLandOnIssuersPort) {
    // With two clients reading concurrently, both see their own
    // completions: per-request records exist for every id and each
    // client's failed count is zero.
    Cluster cluster(one_server(), 2);
    cluster.create_file("f", 64ull << 20);
    for (int i = 0; i < 10; ++i)
        cluster.submit({.time = 0.0, .file = "f",
                        .offset = std::uint64_t(i) * (1u << 20), .size = 1u << 20,
                        .type = IoType::kRead, .client = std::uint32_t(i % 2)});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 10u);
    EXPECT_EQ(cluster.client(0).failed_requests(), 0u);
    EXPECT_EQ(cluster.client(1).failed_requests(), 0u);
    const auto fs = kooza::trace::extract_features(cluster.traces());
    EXPECT_EQ(fs.size(), 10u);
}

}  // namespace
