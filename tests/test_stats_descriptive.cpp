// Tests for descriptive statistics and histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace kooza::stats;

TEST(Descriptive, MeanBasics) {
    const std::vector<double> xs{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Descriptive, VarianceUnbiased) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(Descriptive, StddevIsSqrtVariance) {
    const std::vector<double> xs{1, 3, 5};
    EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(Descriptive, QuantileInterpolates) {
    const std::vector<double> xs{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Descriptive, QuantileUnsortedInput) {
    const std::vector<double> xs{40, 10, 30, 20};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Descriptive, QuantileErrors) {
    EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
    const std::vector<double> xs{1.0};
    EXPECT_THROW((void)quantile(xs, 1.5), std::invalid_argument);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.9), 1.0);
}

TEST(Descriptive, MedianOddEven) {
    EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(Descriptive, SummaryFields) {
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const auto s = summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_NEAR(s.skewness, 0.0, 1e-12);
    EXPECT_FALSE(s.to_string().empty());
}

TEST(Descriptive, SummarySkewedData) {
    const std::vector<double> xs{1, 1, 1, 1, 100};
    EXPECT_GT(summarize(xs).skewness, 1.0);
}

TEST(Descriptive, SummaryEmpty) {
    const auto s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Descriptive, CvZeroWhenMeanZero) {
    const std::vector<double> xs{-1, 1};
    EXPECT_DOUBLE_EQ(summarize(xs).cv(), 0.0);
}

TEST(Descriptive, CorrelationPerfect) {
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
    const std::vector<double> ny{8, 6, 4, 2};
    EXPECT_NEAR(correlation(xs, ny), -1.0, 1e-12);
}

TEST(Descriptive, CorrelationDegenerate) {
    const std::vector<double> xs{1, 1, 1};
    const std::vector<double> ys{1, 2, 3};
    EXPECT_DOUBLE_EQ(correlation(xs, ys), 0.0);
    EXPECT_THROW((void)correlation(xs, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Descriptive, VariationPct) {
    EXPECT_DOUBLE_EQ(variation_pct(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(variation_pct(90.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(variation_pct(5.0, 5.0), 0.0);
    // Zero baseline: absolute deviation in the quantity's own unit, not a
    // fake percentage.
    EXPECT_DOUBLE_EQ(variation_pct(0.02, 0.0), 0.02);
}

TEST(Descriptive, VariationStruct) {
    const auto rel = variation(110.0, 100.0);
    EXPECT_FALSE(rel.absolute);
    EXPECT_DOUBLE_EQ(rel.value, 10.0);

    // 0 vs 0 deviates by nothing: 0%, still a relative measure.
    const auto zero = variation(0.0, 0.0);
    EXPECT_FALSE(zero.absolute);
    EXPECT_DOUBLE_EQ(zero.value, 0.0);

    // Nonzero vs zero baseline: absolute difference, flagged as such. The
    // old behavior reported 16 KB vs 0 B as 1,638,400%.
    const auto abs = variation(16384.0, 0.0);
    EXPECT_TRUE(abs.absolute);
    EXPECT_DOUBLE_EQ(abs.value, 16384.0);

    const auto neg = variation(-3.0, 0.0);
    EXPECT_TRUE(neg.absolute);
    EXPECT_DOUBLE_EQ(neg.value, 3.0);
}

TEST(Histogram, BinsAndClamping) {
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);   // clamps to bin 0
    h.add(0.5);
    h.add(9.9);
    h.add(100.0);  // clamps to last bin
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinCenters) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
    EXPECT_THROW((void)h.bin_center(5), std::out_of_range);
}

TEST(Histogram, FrequenciesSumToOne) {
    Histogram h(0.0, 1.0, 4);
    const std::vector<double> xs{0.1, 0.2, 0.6, 0.9};
    h.add_all(xs);
    double sum = 0.0;
    for (double f : h.frequencies()) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, InvalidConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderNonEmpty) {
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    EXPECT_NE(h.render().find('#'), std::string::npos);
}

TEST(LogHistogram, PowerOfTwoBinning) {
    LogHistogram h;
    h.add(1.0);    // 2^0
    h.add(3.0);    // 2^1
    h.add(1024);   // 2^10
    EXPECT_EQ(h.bins().at(0), 1u);
    EXPECT_EQ(h.bins().at(1), 1u);
    EXPECT_EQ(h.bins().at(10), 1u);
    EXPECT_THROW(h.add(0.0), std::invalid_argument);
}

TEST(VuList, CountsCells) {
    VuList vu({{"a", 0.0, 1.0, 2}, {"b", 0.0, 1.0, 2}});
    const std::vector<double> p1{0.2, 0.2};
    const std::vector<double> p2{0.8, 0.8};
    vu.add(p1);
    vu.add(p1);
    vu.add(p2);
    EXPECT_EQ(vu.total(), 3u);
    EXPECT_EQ(vu.occupied_cells(), 2u);
    EXPECT_EQ(vu.count_at(p1), 2u);
    EXPECT_EQ(vu.count_at(p2), 1u);
}

TEST(VuList, DimensionMismatchThrows) {
    VuList vu({{"a", 0.0, 1.0, 2}});
    const std::vector<double> bad{0.5, 0.5};
    EXPECT_THROW(vu.add(bad), std::invalid_argument);
}

TEST(VuList, MarginalMatchesData) {
    VuList vu({{"a", 0.0, 1.0, 4}, {"b", 0.0, 1.0, 4}});
    for (int i = 0; i < 8; ++i) {
        const std::vector<double> p{0.1, double(i) / 8.0};
        vu.add(p);
    }
    const auto m = vu.marginal(0);
    EXPECT_EQ(m.count(0), 8u);
    EXPECT_THROW(vu.marginal(2), std::out_of_range);
}

}  // namespace
