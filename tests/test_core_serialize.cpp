// Tests for model persistence: distribution round-trips across every
// family, and the strong end-to-end property that a saved+loaded model
// generates the *identical* synthetic workload for the same seed.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/generator.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "gfs/cluster.hpp"
#include "stats/empirical.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;
using namespace kooza::core;

std::unique_ptr<stats::Distribution> roundtrip(const stats::Distribution& d) {
    std::stringstream ss;
    save_distribution(d, ss);
    return load_distribution(ss);
}

class DistributionRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(DistributionRoundTrip, PreservesFamilyAndMoments) {
    std::unique_ptr<stats::Distribution> d;
    const auto which = GetParam();
    if (which == "deterministic") d = std::make_unique<stats::Deterministic>(3.5);
    if (which == "uniform") d = std::make_unique<stats::Uniform>(1.0, 9.0);
    if (which == "exponential") d = std::make_unique<stats::Exponential>(2.5);
    if (which == "normal") d = std::make_unique<stats::Normal>(10.0, 2.0);
    if (which == "lognormal") d = std::make_unique<stats::LogNormal>(1.0, 0.5);
    if (which == "pareto") d = std::make_unique<stats::Pareto>(2.0, 3.0);
    if (which == "weibull") d = std::make_unique<stats::Weibull>(1.5, 4.0);
    if (which == "gamma") d = std::make_unique<stats::Gamma>(3.0, 2.0);
    if (which == "empirical") {
        const std::vector<double> xs{1.0, 2.0, 2.0, 5.5, 9.25};
        d = std::make_unique<stats::Empirical>(xs);
    }
    ASSERT_NE(d, nullptr);
    const auto back = roundtrip(*d);
    EXPECT_EQ(back->name(), d->name());
    EXPECT_NEAR(back->mean(), d->mean(), 1e-9 * std::max(1.0, std::fabs(d->mean())));
    EXPECT_NEAR(back->cdf(3.0), d->cdf(3.0), 1e-12);
    // Sampling determinism: same seed, same values.
    sim::Rng a(5), b(5);
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(back->sample(a), d->sample(b));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionRoundTrip,
                         ::testing::Values("deterministic", "uniform", "exponential",
                                           "normal", "lognormal", "pareto", "weibull",
                                           "gamma", "empirical"),
                         [](const auto& info) { return info.param; });

ServerModel train_micro(std::uint64_t seed) {
    gfs::GfsConfig cfg;
    gfs::Cluster cluster(cfg);
    sim::Rng rng(seed);
    workloads::MicroProfile profile({.count = 250, .arrival_rate = 20.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    return Trainer({.workload_name = "serialize-test"}).train(cluster.traces());
}

TEST(ModelRoundTrip, PreservesStructureAndScalars) {
    const auto model = train_micro(1);
    std::stringstream ss;
    save_model(model, ss);
    const auto back = load_model(ss);
    EXPECT_EQ(back.workload_name(), model.workload_name());
    EXPECT_DOUBLE_EQ(back.read_fraction(), model.read_fraction());
    EXPECT_DOUBLE_EQ(back.cpu_verify_fraction(), model.cpu_verify_fraction());
    EXPECT_EQ(back.lbn_states().n_states(), model.lbn_states().n_states());
    EXPECT_EQ(back.bank_states().n_states(), model.bank_states().n_states());
    EXPECT_EQ(back.reads().structure.dominant(), model.reads().structure.dominant());
    EXPECT_EQ(back.writes().structure.variants().size(),
              model.writes().structure.variants().size());
    EXPECT_EQ(back.parameter_count(), model.parameter_count());
    EXPECT_EQ(back.arrivals().describe(), model.arrivals().describe());
}

TEST(ModelRoundTrip, GeneratesIdenticalWorkload) {
    const auto model = train_micro(2);
    std::stringstream ss;
    save_model(model, ss);
    const auto back = load_model(ss);
    sim::Rng a(7), b(7);
    const auto w1 = Generator(model).generate(200, a);
    const auto w2 = Generator(back).generate(200, b);
    ASSERT_EQ(w1.requests.size(), w2.requests.size());
    for (std::size_t i = 0; i < w1.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(w1.requests[i].time, w2.requests[i].time);
        EXPECT_EQ(w1.requests[i].type, w2.requests[i].type);
        EXPECT_EQ(w1.requests[i].storage_bytes, w2.requests[i].storage_bytes);
        EXPECT_EQ(w1.requests[i].memory_bytes, w2.requests[i].memory_bytes);
        EXPECT_EQ(w1.requests[i].lbn, w2.requests[i].lbn);
        EXPECT_EQ(w1.requests[i].bank, w2.requests[i].bank);
        EXPECT_DOUBLE_EQ(w1.requests[i].cpu_busy_seconds,
                         w2.requests[i].cpu_busy_seconds);
        EXPECT_EQ(w1.requests[i].phases, w2.requests[i].phases);
    }
}

TEST(ModelRoundTrip, FileBacked) {
    const auto model = train_micro(3);
    const auto file = std::filesystem::temp_directory_path() / "kooza_model_test.txt";
    save_model(model, file);
    const auto back = load_model(file);
    EXPECT_EQ(back.workload_name(), model.workload_name());
    std::filesystem::remove(file);
    EXPECT_THROW((void)load_model(file), std::runtime_error);
}

TEST(ModelRoundTrip, MalformedInputRejected) {
    std::stringstream empty;
    EXPECT_THROW((void)load_model(empty), std::runtime_error);
    std::stringstream wrong("other-format v9");
    EXPECT_THROW((void)load_model(wrong), std::runtime_error);
    std::stringstream truncated("kooza-model v1\nname x\nread_fraction 0.5\n");
    EXPECT_THROW((void)load_model(truncated), std::runtime_error);
}

TEST(DistributionSerialize, UnknownFamilyRejected) {
    std::stringstream ss("dist klingon 1 2 3");
    EXPECT_THROW((void)load_distribution(ss), std::runtime_error);
}

}  // namespace
