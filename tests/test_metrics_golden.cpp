// Golden-file check on the deterministic metrics export: a fixed-seed
// capture must serialize to exactly the JSON committed under
// tests/golden/. Any drift — a renamed metric, a changed count, a
// serialization tweak — fails loudly here instead of silently changing
// what downstream dashboards and the paper tables read.
//
// To regenerate after an intentional change:
//   KOOZA_REGEN_GOLDEN=1 ./tests/test_metrics_golden
// then review the diff and commit the new golden file.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/capture.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace kooza;

std::filesystem::path golden_path() {
    return std::filesystem::path(KOOZA_GOLDEN_DIR) / "capture_micro_metrics.json";
}

std::string read_file(const std::filesystem::path& p) {
    std::ifstream f(p);
    if (!f) return {};
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

TEST(MetricsGolden, FixedSeedCaptureMatchesCommittedJson) {
    // The global registry may carry counts from other tests in this
    // binary; zero it so the export reflects exactly this run.
    obs::Registry::global().reset();

    core::CaptureOptions opts;
    opts.profile = "micro";
    opts.count = 200;
    opts.seed = 7;
    opts.n_servers = 3;
    (void)core::run_capture(opts);

    const auto json = obs::to_json(obs::Registry::global().snapshot(),
                                   {.include_wall = false});

    if (std::getenv("KOOZA_REGEN_GOLDEN") != nullptr) {
        std::ofstream f(golden_path());
        ASSERT_TRUE(bool(f)) << "cannot write " << golden_path();
        f << json;
        GTEST_SKIP() << "regenerated " << golden_path();
    }

    const auto expected = read_file(golden_path());
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << golden_path()
        << " — run with KOOZA_REGEN_GOLDEN=1 to create it";
    EXPECT_EQ(json, expected)
        << "metrics export drifted from " << golden_path()
        << "; if intentional, regenerate with KOOZA_REGEN_GOLDEN=1";
}

}  // namespace
