// Event-core contracts: dispatch-order properties of the calendar-queue
// scheduler against a reference priority queue, engine control-flow edge
// cases (stop inside run_until, daemon-only queues, deadlines before the
// first event, re-running after stop), non-finite timestamp rejection,
// and the EventFn small-buffer callable.
//
// The order-property tests deliberately sweep distributions that push the
// calendar through its internal modes — uniform (steady calendar),
// bimodal-skewed (width re-estimation), all-equal and astronomically
// spread timestamps (binary-heap fallback) — asserting the one contract
// every mode must uphold: strict (at, seq) dispatch order.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/eventfn.hpp"

namespace {

using kooza::sim::Engine;
using kooza::sim::EventArena;
using kooza::sim::EventFn;

// splitmix64: a deterministic stream with no library dependency.
std::uint64_t next_u64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}
double next_unit(std::uint64_t& s) { return double(next_u64(s) >> 11) * 0x1.0p-53; }

// ---------------------------------------------------------------------------
// Dispatch-order property: schedule a batch of timestamps, run, and
// require the exact order a stable (at, insertion-order) sort prescribes.
// ---------------------------------------------------------------------------

void expect_dispatch_order(const std::vector<double>& ts,
                           bool expect_fallback) {
    Engine eng;
    std::vector<std::size_t> fired;
    for (std::size_t i = 0; i < ts.size(); ++i)
        eng.schedule_at(ts[i], [&fired, i] { fired.push_back(i); });
    eng.run();

    std::vector<std::size_t> want(ts.size());
    for (std::size_t i = 0; i < want.size(); ++i) want[i] = i;
    std::stable_sort(want.begin(), want.end(),
                     [&](std::size_t a, std::size_t b) { return ts[a] < ts[b]; });

    ASSERT_EQ(fired, want);
    EXPECT_EQ(eng.scheduler_heap_fallback(), expect_fallback);
}

TEST(EngineOrder, UniformTimestamps) {
    std::uint64_t s = 1;
    std::vector<double> ts(20000);
    for (auto& t : ts) t = next_unit(s);
    expect_dispatch_order(ts, false);
}

TEST(EngineOrder, BimodalSkewedTimestamps) {
    // 90% in [0, 0.1ms), 10% in [0, 100ms): the distribution that forces
    // the calendar to re-estimate its bucket width.
    std::uint64_t s = 2;
    std::vector<double> ts(20000);
    for (auto& t : ts) {
        const double u = next_unit(s);
        t = u < 0.9 ? next_unit(s) * 0.1e-3 : next_unit(s) * 100e-3;
    }
    expect_dispatch_order(ts, false);
}

TEST(EngineOrder, AllEqualTimestampsFallBackToHeap) {
    // Degenerate: every event at one instant. No calendar width exists;
    // the scheduler must fall back to its heap and keep FIFO order.
    std::vector<double> ts(5000, 1.0);
    expect_dispatch_order(ts, true);
}

TEST(EngineOrder, AstronomicalRangeFallsBackToHeap) {
    // A quotient beyond any representable calendar layout trips the
    // overflow guard.
    std::uint64_t s = 3;
    std::vector<double> ts(1000);
    for (std::size_t i = 0; i < ts.size(); ++i)
        ts[i] = (i % 2) ? next_unit(s) * 1e-6 : 1e19 + next_unit(s) * 1e19;
    expect_dispatch_order(ts, true);
}

TEST(EngineOrder, NarrowWidthThenWideSpreadRecovers) {
    // Fill with a dense microsecond-scale cluster (the width estimate
    // lands tiny), drain it, then feed timestamps spread over hundreds of
    // seconds: dispatch scans crawl until the long-scan trigger
    // re-estimates the width. Order must hold throughout, without
    // abandoning the calendar.
    Engine eng;
    std::vector<double> fired;
    std::uint64_t s = 4;
    for (int i = 0; i < 5000; ++i)
        eng.schedule_at(next_unit(s) * 1e-3,
                        [&eng, &fired] { fired.push_back(eng.now()); });
    eng.run();
    for (int i = 0; i < 5000; ++i)
        eng.schedule_at(1.0 + next_unit(s) * 200.0,
                        [&eng, &fired] { fired.push_back(eng.now()); });
    eng.run();
    ASSERT_EQ(fired.size(), 10000u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_FALSE(eng.scheduler_heap_fallback());
}

TEST(EngineOrder, InterleavedHoldModelMatchesReferenceQueue) {
    // Hold model (every dispatch schedules one successor): the push/pop
    // interleaving exercises the insert pipeline's staged nodes as live
    // queue members. The reference is a plain std::priority_queue over
    // (at, seq).
    struct Ref {
        using Item = std::pair<double, std::uint64_t>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> q;
    };

    const std::uint64_t kSeed = 5;
    const int kDepth = 64;
    const int kEvents = 20000;

    std::vector<double> ref_order;
    {
        Ref ref;
        std::uint64_t s = kSeed, seq = 0, remaining = kEvents;
        for (int i = 0; i < kDepth; ++i) ref.q.push({next_unit(s), seq++});
        while (!ref.q.empty()) {
            auto [at, sq] = ref.q.top();
            ref.q.pop();
            ref_order.push_back(at);
            if (remaining > 0) {
                --remaining;
                ref.q.push({at + next_unit(s), seq++});
            }
        }
    }

    std::vector<double> eng_order;
    {
        Engine eng;
        std::uint64_t s = kSeed, remaining = kEvents;
        struct Actor {
            Engine* eng;
            std::uint64_t* s;
            std::uint64_t* remaining;
            std::vector<double>* order;
            void fire() const {
                order->push_back(eng->now());
                if (*remaining > 0) {
                    --*remaining;
                    Actor self = *this;
                    eng->schedule_after(next_unit(*s), [self] { self.fire(); });
                }
            }
        } actor{&eng, &s, &remaining, &eng_order};
        for (int i = 0; i < kDepth; ++i)
            eng.schedule_at(next_unit(s), [actor] { actor.fire(); });
        eng.run();
    }

    ASSERT_EQ(eng_order, ref_order);
}

// ---------------------------------------------------------------------------
// Control-flow edges.
// ---------------------------------------------------------------------------

TEST(EngineControl, StopInsideEventDuringRunUntilKeepsClock) {
    Engine eng;
    int fired = 0;
    eng.schedule_at(1.0, [&] {
        ++fired;
        eng.stop();
    });
    eng.schedule_at(2.0, [&] { ++fired; });
    const auto n = eng.run_until(10.0);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    // stop() mid-run means the clock stays at the last event, not the
    // deadline.
    EXPECT_DOUBLE_EQ(eng.now(), 1.0);
    EXPECT_EQ(eng.pending(), 1u);
}

TEST(EngineControl, ReRunAfterStopResumes) {
    Engine eng;
    int fired = 0;
    eng.schedule_at(1.0, [&] {
        ++fired;
        eng.stop();
    });
    eng.schedule_at(2.0, [&] { ++fired; });
    eng.run();
    EXPECT_EQ(fired, 1);
    eng.run();  // stop() is not sticky: a fresh run drains the rest
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eng.empty());
}

TEST(EngineControl, DaemonOnlyQueueReturnsImmediately) {
    Engine eng;
    int fired = 0;
    eng.schedule_daemon_at(1.0, [&] { ++fired; });
    eng.schedule_daemon_at(2.0, [&] { ++fired; });
    EXPECT_EQ(eng.run(), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_DOUBLE_EQ(eng.now(), 0.0);
    EXPECT_EQ(eng.pending(), 2u);  // daemons stay queued
}

TEST(EngineControl, RunUntilDeadlineBeforeFirstEvent) {
    Engine eng;
    int fired = 0;
    eng.schedule_at(5.0, [&] { ++fired; });
    EXPECT_EQ(eng.run_until(2.0), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_DOUBLE_EQ(eng.now(), 2.0);
    EXPECT_EQ(eng.pending(), 1u);
    EXPECT_EQ(eng.run_until(5.0), 1u);  // boundary events still execute
    EXPECT_EQ(fired, 1);
}

TEST(EngineControl, PendingSeesJustScheduledEvents) {
    // The insert pipeline stages the most recent pushes; they must still
    // be fully visible to pending()/empty()/step().
    Engine eng;
    std::vector<int> order;
    eng.schedule_at(2.0, [&] { order.push_back(2); });
    eng.schedule_at(1.0, [&] { order.push_back(1); });
    EXPECT_EQ(eng.pending(), 2u);
    EXPECT_FALSE(eng.empty());
    EXPECT_TRUE(eng.step());
    EXPECT_TRUE(eng.step());
    EXPECT_FALSE(eng.step());
    EXPECT_TRUE(eng.empty());
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Non-finite timestamp rejection.
// ---------------------------------------------------------------------------

TEST(EngineReject, NonFiniteTimesThrow) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    Engine eng;
    EXPECT_THROW(eng.schedule_at(nan, [] {}), std::invalid_argument);
    EXPECT_THROW(eng.schedule_at(inf, [] {}), std::invalid_argument);
    EXPECT_THROW(eng.schedule_at(-inf, [] {}), std::invalid_argument);
    EXPECT_THROW(eng.schedule_after(nan, [] {}), std::invalid_argument);
    EXPECT_THROW(eng.schedule_after(inf, [] {}), std::invalid_argument);
    EXPECT_THROW(eng.schedule_daemon_at(nan, [] {}), std::invalid_argument);
    EXPECT_THROW(eng.schedule_daemon_at(inf, [] {}), std::invalid_argument);
    EXPECT_TRUE(eng.empty());  // nothing leaked into the queue
    EXPECT_EQ(eng.run(), 0u);
}

// ---------------------------------------------------------------------------
// EventFn: the 48-byte inline callable.
// ---------------------------------------------------------------------------

TEST(EventFnTest, InvokesInlineCapture) {
    int hits = 0;
    EventFn fn([&hits] { ++hits; });
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, MoveTransfersCallable) {
    int hits = 0;
    EventFn a([&hits] { ++hits; });
    EventFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);
    EventFn c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, OversizedCaptureSpillsAndWorks) {
    struct Big {
        char payload[96];
    };
    static_assert(sizeof(Big) > kooza::sim::kEventFnInlineBytes);
    Big big{};
    big.payload[0] = 42;
    int got = 0;
    EventFn fn([big, &got] { got = big.payload[0]; });
    fn();
    EXPECT_EQ(got, 42);
}

TEST(EventFnTest, ArenaReusesFreedBlocks) {
    EventArena arena;
    void* p1 = arena.allocate(100);
    arena.deallocate(p1, 100);
    void* p2 = arena.allocate(100);
    EXPECT_EQ(p1, p2);  // LIFO free list hands the block straight back
    arena.deallocate(p2, 100);
}

TEST(EventFnTest, EngineRunsOversizedCaptures) {
    Engine eng;
    struct Big {
        char payload[128];
    };
    Big big{};
    big.payload[127] = 7;
    int got = 0;
    eng.schedule_at(1.0, [big, &got] { got = big.payload[127]; });
    eng.run();
    EXPECT_EQ(got, 7);
}

}  // namespace
