// kooza_obs: registry semantics, export round-trips, and the determinism
// contract — the same work exports a byte-identical snapshot at any
// thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/capture.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "stats/descriptive.hpp"
#include "stats/sample.hpp"

namespace {

using namespace kooza;

TEST(Counter, AddAndReset) {
    obs::Registry reg;
    auto& c = reg.counter("c");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksValueAndMax) {
    obs::Registry reg;
    auto& g = reg.gauge("g");
    g.set(3.0);
    g.set(7.0);
    g.set(2.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);   // last write
    EXPECT_DOUBLE_EQ(g.max(), 7.0);     // high-water mark survives
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_DOUBLE_EQ(g.max(), 0.0);
}

TEST(Histogram, Log2Buckets) {
    EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
    EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
    EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
    EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
    EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
    EXPECT_EQ(obs::Histogram::bucket_of(1ull << 63), 64u);

    obs::Registry reg;
    auto& h = reg.histogram("h");
    h.observe(0);
    h.observe(3);
    h.observe(3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Histogram, ObserveSecondsConvertsAndClamps) {
    obs::Registry reg;
    auto& h = reg.histogram("h", obs::Unit::kNanoseconds);
    h.observe_seconds(1.5);    // 1.5e9 ns
    h.observe_seconds(-0.25);  // negative clamps to 0
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), 1500000000u);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(TimerScope, SimClockScopesNest) {
    obs::Registry reg;
    auto& h = reg.histogram("t", obs::Unit::kNanoseconds);
    double now = 0.0;
    const auto clock = [&now] { return now; };
    {
        obs::TimerScope outer(h, clock);
        now = 1.0;
        {
            obs::TimerScope inner(h, clock);
            now = 1.5;
        }  // inner spans 0.5 s
        now = 2.0;
    }  // outer spans 2.0 s
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), 500000000u + 2000000000u);
}

TEST(Registry, FindOrCreateIsIdempotent) {
    obs::Registry reg;
    auto& a = reg.counter("x.total");
    auto& b = reg.counter("x.total");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.size(), 1u);
    // Same name, different kind: a programming error, not a new metric.
    EXPECT_THROW((void)reg.gauge("x.total"), std::logic_error);
    EXPECT_THROW((void)reg.histogram("x.total"), std::logic_error);
}

TEST(Registry, SnapshotSortedByName) {
    obs::Registry reg;
    reg.counter("b").add(2);
    reg.counter("a").add(1);
    reg.gauge("c").set(3.0);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.metrics.size(), 3u);
    EXPECT_EQ(snap.metrics[0].name, "a");
    EXPECT_EQ(snap.metrics[1].name, "b");
    EXPECT_EQ(snap.metrics[2].name, "c");
    ASSERT_NE(snap.find("b"), nullptr);
    EXPECT_EQ(snap.find("b")->value, 2u);
    EXPECT_EQ(snap.find("nope"), nullptr);
}

TEST(Registry, ResetKeepsReferencesValid) {
    obs::Registry reg;
    auto& c = reg.counter("c");
    c.add(5);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(1);  // cached reference still live after reset
    EXPECT_EQ(reg.snapshot().find("c")->value, 1u);
}

TEST(HistogramQuantile, EdgeCases) {
    obs::Registry reg;
    auto& h = reg.histogram("hq.edge");
    {
        const auto snap = reg.snapshot();
        EXPECT_DOUBLE_EQ(obs::histogram_quantile(*snap.find("hq.edge"), 0.5), 0.0);
    }
    h.observe(0);
    h.observe(0);
    {
        // Bucket 0 holds exactly the value 0 — no interpolation to do.
        const auto snap = reg.snapshot();
        EXPECT_DOUBLE_EQ(obs::histogram_quantile(*snap.find("hq.edge"), 0.99), 0.0);
    }
    h.observe(1000);  // bucket [512, 1024)
    const auto snap = reg.snapshot();
    const auto& m = *snap.find("hq.edge");
    // Out-of-range q clamps instead of misindexing.
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(m, -1.0),
                     obs::histogram_quantile(m, 0.0));
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(m, 2.0),
                     obs::histogram_quantile(m, 1.0));
    // The top rank interpolates inside [512, 1024), never past the bucket
    // edge (the old estimator pinned every answer to the upper edge).
    const double p100 = obs::histogram_quantile(m, 1.0);
    EXPECT_GE(p100, 512.0);
    EXPECT_LE(p100, 1024.0);
    // Quantiles are nondecreasing in q.
    double prev = 0.0;
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        const double v = obs::histogram_quantile(m, q);
        EXPECT_GE(v, prev) << q;
        prev = v;
    }
}

TEST(HistogramQuantile, CrossChecksExactSampleWithinOneBucket) {
    // Feed the identical deterministic stream into a log2 histogram and
    // an exact first-K sample (cap never hit), then compare quantile
    // estimates. A log2 bucket spans a factor of 2, so the interpolated
    // estimate must land within [exact/2, exact*2] — and typically much
    // closer on dense data like this.
    obs::Registry reg;
    auto& h = reg.histogram("hq.cross");
    stats::CappedSample exact;
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 5000; ++i) {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        const std::uint64_t v = 1 + s % 1'000'000;
        h.observe(v);
        exact.observe(double(v));
    }
    ASSERT_FALSE(exact.truncated());
    const auto snap = reg.snapshot();
    const auto& m = *snap.find("hq.cross");
    ASSERT_EQ(m.count, 5000u);
    for (double q : {0.01, 0.1, 0.5, 0.9, 0.95, 0.99}) {
        const double est = obs::histogram_quantile(m, q);
        const double ex = stats::quantile(exact.values(), q);
        EXPECT_GE(est, ex / 2.0) << "q=" << q;
        EXPECT_LE(est, ex * 2.0) << "q=" << q;
    }
}

// Fixed total work split across T threads; integer shard merges commute,
// so every T must export byte-identical canonical JSON.
std::string json_after_work(unsigned n_threads) {
    obs::Registry reg;
    auto& ops = reg.counter("t.ops_total");
    auto& bytes = reg.counter("t.bytes_total", obs::Unit::kBytes);
    auto& lat = reg.histogram("t.latency_ns", obs::Unit::kNanoseconds);
    constexpr unsigned kTotal = 8000;
    const unsigned per_thread = kTotal / n_threads;
    // Each thread takes a disjoint slice of the same global index range,
    // so the multiset of observed samples is independent of n_threads.
    auto work = [&](unsigned t) {
        for (unsigned i = t * per_thread; i < (t + 1) * per_thread; ++i) {
            ops.add();
            bytes.add(512);
            lat.observe(i % 17);
        }
    };
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < n_threads; ++t) threads.emplace_back(work, t);
    for (auto& t : threads) t.join();
    return obs::to_json(reg.snapshot());
}

TEST(Determinism, ByteIdenticalJsonAcrossThreadCounts) {
    const auto one = json_after_work(1);
    EXPECT_EQ(one, json_after_work(2));
    EXPECT_EQ(one, json_after_work(8));
}

TEST(Export, WallMetricsExcludable) {
    obs::Registry reg;
    reg.counter("sim.steps").add(3);
    reg.histogram("train.wall_ns", obs::Unit::kNanoseconds, /*wall=*/true)
        .observe(100);
    const auto snap = reg.snapshot();
    const auto full = obs::to_json(snap);
    EXPECT_NE(full.find("train.wall_ns"), std::string::npos);
    const auto det = obs::to_json(snap, {.include_wall = false});
    EXPECT_EQ(det.find("train.wall_ns"), std::string::npos);
    EXPECT_NE(det.find("sim.steps"), std::string::npos);
}

TEST(Export, JsonAndCsvRoundTrip) {
    obs::Registry reg;
    reg.counter("rt.ops_total").add(7);
    reg.counter("rt.bytes_total", obs::Unit::kBytes).add(4096);
    auto& g = reg.gauge("rt.depth");
    g.set(5.0);
    g.set(2.5);
    auto& h = reg.histogram("rt.latency_ns", obs::Unit::kNanoseconds);
    h.observe(0);
    h.observe(1000);
    h.observe(1000000);
    const auto snap = reg.snapshot();

    const auto dir = std::filesystem::temp_directory_path() / "kooza_obs_rt";
    std::filesystem::remove_all(dir);
    for (const char* name : {"m.json", "m.csv"}) {
        obs::write_metrics(snap, dir / name);
        const auto back = obs::load_metrics(dir / name);
        ASSERT_EQ(back.metrics.size(), snap.metrics.size()) << name;
        const auto* c = back.find("rt.bytes_total");
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->value, 4096u);
        EXPECT_EQ(c->unit, obs::Unit::kBytes);
        const auto* gg = back.find("rt.depth");
        ASSERT_NE(gg, nullptr);
        EXPECT_DOUBLE_EQ(gg->gauge_value, 2.5);
        EXPECT_DOUBLE_EQ(gg->gauge_max, 5.0);
        const auto* hh = back.find("rt.latency_ns");
        ASSERT_NE(hh, nullptr);
        EXPECT_EQ(hh->count, 3u);
        EXPECT_EQ(hh->sum, 1001000u);
        EXPECT_EQ(hh->buckets, snap.find("rt.latency_ns")->buckets);
        // Loading must preserve the canonical form exactly.
        EXPECT_EQ(obs::to_json(back), obs::to_json(snap)) << name;
    }
    std::filesystem::remove_all(dir);
}

TEST(Export, LoadRejectsMalformedInput) {
    const auto dir = std::filesystem::temp_directory_path() / "kooza_obs_bad";
    std::filesystem::create_directories(dir);
    {
        std::ofstream f(dir / "bad.json");
        f << "{ \"schema\": \"other/9\" }";
    }
    EXPECT_THROW((void)obs::load_metrics(dir / "bad.json"), std::runtime_error);
    EXPECT_THROW((void)obs::load_metrics(dir / "missing.json"), std::runtime_error);
    std::filesystem::remove_all(dir);
}

// End-to-end: one capture run must register metrics from every layer the
// export contract names — sim engine, hw devices, gfs, core pipeline.
TEST(Integration, CaptureCoversAllSubsystems) {
    core::CaptureOptions opts;
    opts.profile = "micro";
    opts.count = 50;
    opts.seed = 3;
    opts.n_servers = 2;
    const auto res = core::run_capture(opts);
    EXPECT_GT(res.completed, 0u);

    const auto snap = obs::Registry::global().snapshot();
    auto covered = [&](const std::string& prefix) {
        for (const auto& m : snap.metrics)
            if (m.name.rfind(prefix, 0) == 0 &&
                (m.value > 0 || m.count > 0 || m.gauge_max > 0))
                return true;
        return false;
    };
    EXPECT_TRUE(covered("sim."));
    EXPECT_TRUE(covered("hw."));
    EXPECT_TRUE(covered("gfs."));
    EXPECT_TRUE(covered("core.capture."));
}

// Regression: core.capture.requests_total used to count only completed
// requests, undercounting under fault injection. The invariant is
// requests_total delta == completed + failed for every capture run.
TEST(Integration, CaptureRequestsTotalCountsFailedRequests) {
    auto value_of = [](const char* name) -> std::uint64_t {
        const auto snap = obs::Registry::global().snapshot();
        const auto* m = snap.find(name);
        return m != nullptr ? m->value : 0;
    };
    const auto req_before = value_of("core.capture.requests_total");
    const auto failed_before = value_of("core.capture.failed_requests_total");

    core::CaptureOptions opts;
    opts.profile = "micro";
    opts.count = 300;
    opts.rate = 50.0;
    opts.seed = 9;
    opts.n_servers = 3;
    opts.replication = 2;
    opts.fault_rate = 0.5;
    opts.mttr = 2.0;
    const auto res = core::run_capture(opts);
    EXPECT_GT(res.completed, 0u);
    // This seed loses some requests to crashes; without failures the
    // invariant below would degenerate to the old completed-only count.
    EXPECT_GT(res.failed, 0u);
    EXPECT_EQ(value_of("core.capture.requests_total") - req_before,
              res.completed + res.failed);
    EXPECT_EQ(value_of("core.capture.failed_requests_total") - failed_before,
              res.failed);
}

}  // namespace
