// Conformance suite for the pluggable workload-generator API: every
// generator (profile adapter, scenario mixes, checkpoint/restart, trace
// replay, trained-model replay) honors the ScheduleStream contracts —
// nondecreasing times, permanent exhaustion, same-seed reproducibility —
// and scenario captures stay byte-identical across capture modes and
// thread counts. Runs in the `workloads` tier and under TSan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "core/capture.hpp"
#include "core/generator.hpp"
#include "core/model_replay.hpp"
#include "core/trainer.hpp"
#include "core/validator.hpp"
#include "par/pool.hpp"
#include "trace/io.hpp"
#include "workloads/generator.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace kooza;
namespace fs = std::filesystem;

struct ThreadGuard {
    ~ThreadGuard() { par::set_threads(0); }
};

std::vector<gfs::RequestSpec> drain(workloads::ScheduleStream& s) {
    std::vector<gfs::RequestSpec> out;
    while (auto r = s.next()) out.push_back(*r);
    return out;
}

void expect_same_sequence(const std::vector<gfs::RequestSpec>& a,
                          const std::vector<gfs::RequestSpec>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].time, b[i].time) << i;
        EXPECT_EQ(a[i].file, b[i].file) << i;
        EXPECT_EQ(a[i].offset, b[i].offset) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].type, b[i].type) << i;
        EXPECT_EQ(a[i].append, b[i].append) << i;
    }
}

workloads::ScenarioParams small_params() {
    workloads::ScenarioParams p;
    p.count = 200;
    p.rate = 40.0;
    p.period = 10.0;
    p.seed = 99;
    return p;
}

TEST(ScenarioLibrary, NamesDescribedAndUnknownRejected) {
    const auto& names = workloads::scenario_names();
    ASSERT_GE(names.size(), 4u);
    for (const auto& n : names) {
        EXPECT_FALSE(workloads::describe_scenario(n).empty()) << n;
        EXPECT_NE(workloads::make_scenario(n, small_params()), nullptr) << n;
    }
    EXPECT_TRUE(workloads::describe_scenario("no-such-scenario").empty());
    EXPECT_EQ(workloads::make_scenario("no-such-scenario", small_params()), nullptr);
}

TEST(GeneratorConformance, SameSeedSameSequence) {
    for (const auto& name : workloads::scenario_names()) {
        auto a = workloads::make_scenario(name, small_params());
        auto b = workloads::make_scenario(name, small_params());
        SCOPED_TRACE(name);
        expect_same_sequence(drain(*a), drain(*b));
    }
}

TEST(GeneratorConformance, NondecreasingTimesAndDeclaredFiles) {
    for (const auto& name : workloads::scenario_names()) {
        auto gen = workloads::make_scenario(name, small_params());
        SCOPED_TRACE(name);
        std::set<std::string> declared;
        for (const auto& [file, size] : gen->files()) {
            EXPECT_GT(size, 0u) << file;
            declared.insert(file);
        }
        const auto ops = drain(*gen);
        ASSERT_FALSE(ops.empty());
        double last = 0.0;
        for (const auto& op : ops) {
            EXPECT_GE(op.time, last);
            last = op.time;
            EXPECT_EQ(declared.count(op.file), 1u) << op.file;
            EXPECT_GT(op.size, 0u);
        }
    }
}

TEST(GeneratorConformance, ExhaustionIsPermanent) {
    for (const auto& name : workloads::scenario_names()) {
        auto gen = workloads::make_scenario(name, small_params());
        SCOPED_TRACE(name);
        (void)drain(*gen);
        for (int i = 0; i < 3; ++i) EXPECT_FALSE(gen->next().has_value());
    }
}

TEST(GeneratorConformance, MixHonorsCount) {
    auto gen = workloads::make_scenario("diurnal", small_params());
    EXPECT_EQ(drain(*gen).size(), small_params().count);
}

// ---- ScheduleStream boundary enforcement (bugfix regression) ----------

class BrokenClockStream final : public workloads::ScheduleStream {
public:
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return files_;
    }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override {
        gfs::RequestSpec r;
        r.file = "f";
        r.size = 512;
        r.time = (n_++ == 0) ? 5.0 : 1.0;  // second request steps backwards
        return r;
    }

private:
    std::vector<std::pair<std::string, std::uint64_t>> files_{{"f", 1 << 20}};
    int n_ = 0;
};

class RevivingStream final : public workloads::ScheduleStream {
public:
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return files_;
    }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override {
        if (n_++ == 0) return std::nullopt;  // claims exhaustion ...
        gfs::RequestSpec r;                  // ... then tries to revive
        r.file = "f";
        r.size = 512;
        r.time = double(n_);
        return r;
    }

private:
    std::vector<std::pair<std::string, std::uint64_t>> files_{{"f", 1 << 20}};
    int n_ = 0;
};

TEST(ScheduleStreamContract, TimeRegressionThrowsNamingBothTimestamps) {
    BrokenClockStream s;
    EXPECT_TRUE(s.next().has_value());
    try {
        (void)s.next();
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("nondecreasing"), std::string::npos) << msg;
        EXPECT_NE(msg.find("t=1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("t=5"), std::string::npos) << msg;
    }
}

TEST(ScheduleStreamContract, ExhaustionSticksEvenIfPollRevives) {
    RevivingStream s;
    EXPECT_FALSE(s.next().has_value());
    for (int i = 0; i < 3; ++i) EXPECT_FALSE(s.next().has_value());
}

// ---- Individual generators -------------------------------------------

TEST(ProfileGenerator, MatchesUnderlyingProfileStream) {
    workloads::MicroProfile::Params mp{.count = 150, .arrival_rate = 30.0};
    workloads::ProfileGenerator gen(
        std::make_unique<workloads::MicroProfile>(mp), /*seed=*/5);
    EXPECT_EQ(gen.name(), "micro");
    auto direct = workloads::MicroProfile(mp).open_stream(sim::Rng(5));
    expect_same_sequence(drain(gen), drain(*direct));
}

TEST(CheckpointGenerator, DalyIntervalAndPhaseShape) {
    workloads::CheckpointGenerator::Params p;
    p.count = 600;
    p.mtti = 20.0;
    p.checkpoint_bytes = 64ull << 20;
    p.bandwidth = 1e9;
    p.ranks = 4;
    p.segment = 4ull << 20;
    workloads::CheckpointGenerator gen(p, sim::Rng(3));

    // shard = 16 MB/rank, delta = shard/bandwidth, tau = sqrt(2 d M) - d.
    const double delta = double(16ull << 20) / 1e9;
    EXPECT_NEAR(gen.optimal_interval(),
                std::max(delta, std::sqrt(2.0 * delta * p.mtti) - delta), 1e-12);

    ASSERT_EQ(gen.files().size(), p.ranks);
    const std::uint64_t shard = gen.files()[0].second;
    EXPECT_EQ(shard, 16ull << 20);

    const auto ops = drain(gen);
    ASSERT_EQ(ops.size(), p.count);
    bool saw_read = false;
    for (const auto& op : ops) {
        EXPECT_EQ(op.size, p.segment);
        EXPECT_LE(op.offset + op.size, shard);
        if (op.type == trace::IoType::kRead) saw_read = true;
        // Restart reads can only follow a completed checkpoint.
        if (!saw_read) {
            EXPECT_EQ(op.type, trace::IoType::kWrite);
        }
    }
    // With MTTI = 20s and tau ~ 1.1s many failures land in 600 ops.
    EXPECT_TRUE(saw_read);
}

TEST(TraceReplayGenerator, ReplaysRequestLogInArrivalOrder) {
    const auto dir = fs::temp_directory_path() / "kooza_gen_replay_src";
    fs::remove_all(dir);
    core::CaptureOptions co;
    co.profile = "micro";
    co.count = 120;
    co.seed = 21;
    co.out_dir = dir.string();
    co.format = trace::Format::kBinary;
    const auto cap = core::run_capture(co);
    ASSERT_GT(cap.traces.requests.size(), 0u);

    workloads::TraceReplayGenerator gen(dir);
    EXPECT_EQ(gen.name(), "trace-replay");
    EXPECT_EQ(gen.total_ops(), cap.traces.requests.size());
    const auto ops = drain(gen);
    ASSERT_EQ(ops.size(), cap.traces.requests.size());
    // Identical on a second open: replay is deterministic.
    workloads::TraceReplayGenerator again(dir);
    expect_same_sequence(ops, drain(again));

    EXPECT_THROW(workloads::TraceReplayGenerator(dir / "missing"), std::exception);
    fs::remove_all(dir);
}

TEST(MergeGenerator, MergesInTimeOrderAndRejectsCollisions) {
    auto part = [](const std::string& prefix, std::size_t count, double rate) {
        workloads::MixGenerator::Params p;
        p.count = count;
        p.file_prefix = prefix;
        p.files = 2;
        return std::make_unique<workloads::MixGenerator>(
            prefix, p, std::make_unique<queueing::PoissonArrivals>(rate),
            sim::Rng(4));
    };
    std::vector<std::unique_ptr<workloads::Generator>> parts;
    parts.push_back(part("a.", 50, 10.0));
    parts.push_back(part("b.", 70, 25.0));
    workloads::MergeGenerator merged("both", std::move(parts));
    EXPECT_EQ(merged.files().size(), 4u);
    const auto ops = drain(merged);
    ASSERT_EQ(ops.size(), 120u);
    std::size_t from_a = 0;
    for (const auto& op : ops)
        if (op.file.rfind("a.", 0) == 0) ++from_a;
    EXPECT_EQ(from_a, 50u);  // merge drops nothing

    std::vector<std::unique_ptr<workloads::Generator>> colliding;
    colliding.push_back(part("same.", 10, 10.0));
    colliding.push_back(part("same.", 10, 10.0));
    EXPECT_THROW(workloads::MergeGenerator("bad", std::move(colliding)),
                 std::invalid_argument);
}

TEST(ModelReplayGenerator, MatchesBatchGeneratorDraws) {
    // The streaming model walk must reproduce Generator::generate()'s
    // exact draw sequence: same times, types and storage sizes.
    const auto dir = fs::temp_directory_path() / "kooza_gen_model_src";
    fs::remove_all(dir);
    core::CaptureOptions co;
    co.profile = "micro";
    co.count = 200;
    co.seed = 31;
    const auto cap = core::run_capture(co);
    auto model = core::Trainer({.workload_name = "conformance"}).train(cap.traces);

    const std::size_t n = 150;
    const std::uint64_t seed = 13;
    sim::Rng rng(seed);
    const auto batch = core::Generator(model).generate(n, rng);

    core::ModelReplayGenerator::Params mp;
    mp.count = n;
    mp.seed = seed;
    core::ModelReplayGenerator gen(std::move(model), mp);
    EXPECT_EQ(gen.name(), "model:conformance");
    const auto ops = drain(gen);
    ASSERT_EQ(ops.size(), n);
    const std::uint64_t file_size = gen.files()[0].second;
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(ops[i].time, batch.requests[i].time) << i;
        EXPECT_EQ(ops[i].type, batch.requests[i].type) << i;
        EXPECT_EQ(ops[i].size,
                  std::min(batch.requests[i].storage_bytes, file_size))
            << i;
        EXPECT_LE(ops[i].offset + ops[i].size, file_size) << i;
    }
    fs::remove_all(dir);
}

// ---- Capture integration: byte identity across modes and threads ------

TEST(ScenarioCapture, StreamedByteIdenticalAcrossThreadCounts) {
    // Acceptance contract: `kooza_capture --scenario diurnal --stream`
    // produces byte-identical kooza.trace/1 files at 1 vs 8 threads, and
    // both match the materialized (non-streamed) capture.
    ThreadGuard guard;
    auto slurp = [](const fs::path& p) {
        std::ifstream f(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
    };
    core::CaptureOptions opts;
    opts.scenario = "diurnal";
    opts.count = 300;
    opts.rate = 40.0;
    opts.period = 15.0;
    opts.seed = 123;
    opts.format = trace::Format::kBinary;
    opts.chunk_records = 64;  // force many mid-run flushes

    const auto base = fs::temp_directory_path();
    const auto mat = base / "kooza_scen_mat";
    const auto st1 = base / "kooza_scen_t1";
    const auto st8 = base / "kooza_scen_t8";
    auto run_into = [&](const fs::path& dir, bool stream, std::size_t threads) {
        par::set_threads(threads);
        fs::remove_all(dir);
        auto o = opts;
        o.out_dir = dir.string();
        o.stream = stream;
        return core::run_capture(o);
    };
    const auto res_mat = run_into(mat, false, 1);
    const auto res_st1 = run_into(st1, true, 1);
    const auto res_st8 = run_into(st8, true, 8);
    EXPECT_GT(res_mat.records, 0u);
    EXPECT_EQ(res_mat.records, res_st1.records);
    EXPECT_EQ(res_mat.records, res_st8.records);
    for (const auto* stem : trace::kStreamStems) {
        const auto name = std::string(stem) + ".bin";
        const auto a = slurp(mat / name);
        EXPECT_FALSE(a.empty()) << name;
        EXPECT_EQ(a, slurp(st1 / name)) << name;
        EXPECT_EQ(a, slurp(st8 / name)) << name;
    }
    fs::remove_all(mat);
    fs::remove_all(st1);
    fs::remove_all(st8);
}

TEST(ScenarioCapture, ConflictingSourcesRejected) {
    core::CaptureOptions opts;
    opts.scenario = "diurnal";
    opts.model_file = "some.model";
    EXPECT_THROW((void)core::make_capture_schedule(opts), std::invalid_argument);
    core::CaptureOptions unknown;
    unknown.scenario = "nope";
    EXPECT_THROW((void)core::make_capture_schedule(unknown), std::invalid_argument);
}

// ---- Validator warning surface (bugfix regression) --------------------

TEST(ValidationReport, UnknownPhasesPrintAWarningRow) {
    core::ValidationReport rep;
    rep.model_name = "warn-test";
    EXPECT_EQ(rep.to_table().find("WARNING"), std::string::npos);
    rep.unknown_phases = 3;
    const auto table = rep.to_table();
    EXPECT_NE(table.find("WARNING"), std::string::npos);
    EXPECT_NE(table.find("3"), std::string::npos);
    EXPECT_NE(table.find("unknown_phases_total"), std::string::npos);
}

}  // namespace
