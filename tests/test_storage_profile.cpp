// Tests for the Rome-style storage profile: characterization, synthesis
// and the Gulati-style latency predictor, validated against the disk sim.
#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/timeseries.hpp"
#include "workloads/storage_profile.hpp"

namespace {

using namespace kooza::workloads;
using kooza::sim::Rng;
using kooza::trace::IoType;
using kooza::trace::StorageRecord;

/// Hand-built trace: `rate` IOs/s Poisson, `read_frac` reads, `rand_frac`
/// random jumps over `lbn_space`, fixed `size` bytes.
std::vector<StorageRecord> synthetic_trace(std::size_t n, double rate,
                                           double read_frac, double rand_frac,
                                           std::uint64_t size, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<StorageRecord> out;
    const std::uint64_t lbn_space = 1u << 22;
    double t = 0.0;
    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
        t += rng.exponential(rate);
        StorageRecord r;
        r.time = t;
        r.request_id = i;
        r.type = rng.bernoulli(read_frac) ? IoType::kRead : IoType::kWrite;
        r.size_bytes = size;
        if (rng.bernoulli(rand_frac))
            cursor = std::uint64_t(rng.uniform(0.0, double(lbn_space)));
        r.lbn = cursor;
        cursor += std::max<std::uint64_t>(1, size / 512);
        out.push_back(r);
    }
    return out;
}

TEST(ExtractProfile, RecoversRateAndMix) {
    const auto trace = synthetic_trace(5000, 100.0, 0.7, 0.5, 8192, 1);
    const auto p = extract_profile(trace);
    EXPECT_NEAR(p.request_rate, 100.0, 5.0);
    EXPECT_NEAR(p.read_fraction, 0.7, 0.03);
    EXPECT_NEAR(p.randomness, 0.5, 0.03);
    EXPECT_NEAR(p.size_dist->mean(), 8192.0, 1.0);
    EXPECT_NEAR(p.burstiness, 1.0, 0.5);  // Poisson arrivals
}

TEST(ExtractProfile, SequentialWorkloadLowRandomness) {
    const auto trace = synthetic_trace(2000, 50.0, 1.0, 0.0, 65536, 2);
    const auto p = extract_profile(trace);
    EXPECT_LT(p.randomness, 0.01);
    EXPECT_DOUBLE_EQ(p.read_fraction, 1.0);
}

TEST(ExtractProfile, Validation) {
    std::vector<StorageRecord> one(1);
    EXPECT_THROW(extract_profile(one), std::invalid_argument);
}

TEST(GenerateTrace, RoundTripsProfileParameters) {
    const auto original = synthetic_trace(5000, 80.0, 0.6, 0.4, 16384, 3);
    const auto p = extract_profile(original);
    Rng rng(4);
    const auto regen = generate_trace(p, 5000, rng);
    const auto p2 = extract_profile(regen);
    EXPECT_NEAR(p2.request_rate, p.request_rate, p.request_rate * 0.15);
    EXPECT_NEAR(p2.read_fraction, p.read_fraction, 0.05);
    EXPECT_NEAR(p2.randomness, p.randomness, 0.08);
    EXPECT_NEAR(p2.size_dist->mean(), p.size_dist->mean(),
                p.size_dist->mean() * 0.1);
}

TEST(GenerateTrace, BurstyProfileGivesBurstyTrace) {
    StorageProfile p;
    p.request_rate = 100.0;
    p.read_fraction = 1.0;
    p.randomness = 0.5;
    p.burstiness = 10.0;
    p.size_dist = std::make_unique<kooza::stats::Deterministic>(4096.0);
    p.mean_seek_fraction = 0.25;
    p.lbn_space = 1u << 22;
    Rng rng(5);
    const auto trace = generate_trace(p, 5000, rng);
    std::vector<double> arrivals;
    for (const auto& r : trace) arrivals.push_back(r.time);
    EXPECT_GT(kooza::stats::index_of_dispersion(arrivals, 0.1), 2.0);
}

TEST(GenerateTrace, Validation) {
    StorageProfile p;
    p.request_rate = 10.0;
    Rng rng(6);
    EXPECT_THROW(generate_trace(p, 100, rng), std::invalid_argument);  // no size dist
    p.size_dist = std::make_unique<kooza::stats::Deterministic>(4096.0);
    EXPECT_THROW(generate_trace(p, 0, rng), std::invalid_argument);
}

TEST(ProfileClone, DeepCopies) {
    StorageProfile p;
    p.request_rate = 5.0;
    p.size_dist = std::make_unique<kooza::stats::Deterministic>(1024.0);
    const auto c = p.clone();
    EXPECT_DOUBLE_EQ(c.request_rate, 5.0);
    EXPECT_NE(c.size_dist.get(), p.size_dist.get());
    EXPECT_DOUBLE_EQ(c.size_dist->mean(), 1024.0);
    EXPECT_FALSE(c.describe().empty());
}

TEST(PredictLatency, MatchesSimulatedDiskSequential) {
    // Sequential reads: latency ~ transfer time, light queueing.
    const auto trace = synthetic_trace(3000, 50.0, 1.0, 0.0, 262144, 7);
    const auto p = extract_profile(trace);
    kooza::hw::DiskParams disk;
    const double predicted = predict_latency(p, disk);
    const double measured = measure_latency(trace, disk);
    EXPECT_NEAR(predicted, measured, measured * 0.35);
}

TEST(PredictLatency, MatchesSimulatedDiskRandom) {
    const auto trace = synthetic_trace(3000, 40.0, 0.7, 1.0, 8192, 8);
    const auto p = extract_profile(trace);
    kooza::hw::DiskParams disk;
    const double predicted = predict_latency(p, disk);
    const double measured = measure_latency(trace, disk);
    EXPECT_NEAR(predicted, measured, measured * 0.35);
}

TEST(PredictLatency, RandomSlowerThanSequential) {
    StorageProfile seq;
    seq.request_rate = 20.0;
    seq.randomness = 0.0;
    seq.burstiness = 1.0;
    seq.size_dist = std::make_unique<kooza::stats::Deterministic>(65536.0);
    seq.mean_seek_fraction = 0.0;
    auto rnd = seq.clone();
    rnd.randomness = 1.0;
    rnd.mean_seek_fraction = 0.3;
    kooza::hw::DiskParams disk;
    EXPECT_GT(predict_latency(rnd, disk), 2.0 * predict_latency(seq, disk));
}

TEST(PredictLatency, OverloadRejected) {
    StorageProfile p;
    p.request_rate = 1e6;
    p.randomness = 1.0;
    p.burstiness = 1.0;
    p.mean_seek_fraction = 0.3;
    p.size_dist = std::make_unique<kooza::stats::Deterministic>(65536.0);
    kooza::hw::DiskParams disk;
    EXPECT_THROW((void)predict_latency(p, disk), std::invalid_argument);
}

TEST(PredictLatency, FasterDiskLowerLatency) {
    StorageProfile p;
    p.request_rate = 50.0;
    p.randomness = 0.5;
    p.burstiness = 1.0;
    p.mean_seek_fraction = 0.2;
    p.size_dist = std::make_unique<kooza::stats::Deterministic>(16384.0);
    kooza::hw::DiskParams slow, fast;
    fast.min_seek = 50e-6;
    fast.max_seek = 100e-6;
    fast.transfer_rate = 500e6;
    EXPECT_LT(predict_latency(p, fast), predict_latency(p, slow));
}

}  // namespace
