// Scale-tier smoke test (ctest -L scale): a many-server streamed capture
// small enough for the default tier, verifying the datacenter-scale path
// end to end — stream mode on, latency collection off, span sampling on,
// and the resulting kooza.trace/1 directory structurally sound. The full
// 1000-server / multi-million-request acceptance run lives in
// bench/bench_scale.cpp.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/capture.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"

namespace {

namespace fs = std::filesystem;
using namespace kooza;

TEST(Scale, StreamedManyServerCaptureSmoke) {
    const auto dir = fs::temp_directory_path() / "kooza_scale_smoke";
    fs::remove_all(dir);

    core::CaptureOptions opts;
    opts.profile = "micro";
    opts.count = 2000;
    opts.rate = 500.0;
    opts.seed = 5;
    opts.n_servers = 64;
    opts.span_sample_every = 10;
    opts.out_dir = dir.string();
    opts.stream = true;
    opts.chunk_records = 512;  // many flushes even at smoke size
    opts.read_size = 8192;
    opts.write_size = 8192;
    opts.collect_latencies = false;
    const auto res = core::run_capture(opts);

    EXPECT_EQ(res.completed, opts.count);
    EXPECT_EQ(res.failed, 0u);
    EXPECT_GT(res.records, res.completed);  // device records, not just requests
    EXPECT_TRUE(res.traces.empty());        // nothing materialized in memory

    // The streamed directory is a complete, CRC-valid kooza.trace/1
    // capture whose row counts match what the run reported.
    trace::ChunkedReader reader(dir);
    EXPECT_EQ(reader.total_rows(), res.records);
    EXPECT_EQ(reader.rows(trace::StreamId::kRequests), res.completed);
    EXPECT_GT(reader.rows(trace::StreamId::kStorage), 0u);
    EXPECT_GT(reader.rows(trace::StreamId::kNetwork), 0u);
    EXPECT_GT(reader.rows(trace::StreamId::kSpans), 0u);
    // Sampling 1-in-10 traces keeps spans well below one per request.
    EXPECT_LT(reader.rows(trace::StreamId::kSpans), res.completed);
    for (const auto* stem : trace::kStreamStems)
        EXPECT_TRUE(fs::exists(dir / (std::string(stem) + ".bin"))) << stem;
    fs::remove_all(dir);
}

}  // namespace
