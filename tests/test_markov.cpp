// Tests for Markov chains, discretizers, annotated chains and the
// hierarchical model.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "markov/annotated.hpp"
#include "markov/chain.hpp"
#include "markov/discretizer.hpp"
#include "markov/hierarchical.hpp"
#include "sim/rng.hpp"

namespace {

using namespace kooza::markov;
using kooza::sim::Rng;

TEST(MarkovChain, UniformDefault) {
    MarkovChain c(4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(c.transition(i, j), 0.25);
}

TEST(MarkovChain, ExplicitMatrixValidated) {
    EXPECT_NO_THROW(MarkovChain({{0.5, 0.5}, {1.0, 0.0}}, {1.0, 0.0}));
    EXPECT_THROW(MarkovChain({{0.5, 0.6}, {1.0, 0.0}}, {1.0, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(MarkovChain({{0.5, 0.5}}, {1.0}), std::invalid_argument);
    EXPECT_THROW(MarkovChain({{-0.5, 1.5}, {1.0, 0.0}}, {1.0, 0.0}),
                 std::invalid_argument);
}

TEST(MarkovChain, FitRecoversTransitions) {
    // Deterministic cycle 0 -> 1 -> 2 -> 0.
    std::vector<std::vector<std::size_t>> seqs{{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}};
    const auto c = MarkovChain::fit(seqs, 3, /*alpha=*/0.0);
    EXPECT_DOUBLE_EQ(c.transition(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(c.transition(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(c.transition(2, 0), 1.0);
}

TEST(MarkovChain, LaplaceSmoothingKeepsUnseenPossible) {
    std::vector<std::vector<std::size_t>> seqs{{0, 1, 0, 1}};
    const auto c = MarkovChain::fit(seqs, 3, 0.5);
    EXPECT_GT(c.transition(0, 2), 0.0);
    EXPECT_GT(c.transition(2, 0), 0.0);  // never-seen row becomes smoothed
}

TEST(MarkovChain, FitValidation) {
    std::vector<std::vector<std::size_t>> bad{{0, 5}};
    EXPECT_THROW(MarkovChain::fit(bad, 3), std::invalid_argument);
    std::vector<std::vector<std::size_t>> empty{};
    EXPECT_THROW(MarkovChain::fit(empty, 3), std::invalid_argument);
    std::vector<std::vector<std::size_t>> seqs{{0}};
    EXPECT_THROW(MarkovChain::fit(seqs, 3, -1.0), std::invalid_argument);
}

TEST(MarkovChain, StationaryOfKnownChain) {
    // Two-state chain: P(0->1)=0.1, P(1->0)=0.3 -> pi = (0.75, 0.25).
    MarkovChain c({{0.9, 0.1}, {0.3, 0.7}}, {0.5, 0.5});
    const auto pi = c.stationary();
    EXPECT_NEAR(pi[0], 0.75, 1e-9);
    EXPECT_NEAR(pi[1], 0.25, 1e-9);
}

TEST(MarkovChain, SamplePathFollowsSupport) {
    MarkovChain c({{0.0, 1.0}, {1.0, 0.0}}, {1.0, 0.0});
    Rng rng(1);
    const auto path = c.sample_path(10, rng);
    for (std::size_t i = 0; i < path.size(); ++i) EXPECT_EQ(path[i], i % 2);
}

TEST(MarkovChain, SamplePathDeterministicBySeed) {
    std::vector<std::vector<std::size_t>> seqs{{0, 1, 2, 1, 0, 2, 2, 1}};
    const auto c = MarkovChain::fit(seqs, 3);
    Rng a(9), b(9);
    EXPECT_EQ(c.sample_path(50, a), c.sample_path(50, b));
}

TEST(MarkovChain, LogLikelihoodOrdersModels) {
    std::vector<std::vector<std::size_t>> seqs{{0, 1, 0, 1, 0, 1, 0, 1}};
    const auto fitted = MarkovChain::fit(seqs, 2, 0.1);
    const MarkovChain uniform(2);
    const std::vector<std::size_t> test_seq{0, 1, 0, 1, 0, 1};
    EXPECT_GT(fitted.log_likelihood(test_seq), uniform.log_likelihood(test_seq));
}

TEST(MarkovChain, LogLikelihoodImpossiblePathIsMinusInf) {
    MarkovChain c({{0.0, 1.0}, {1.0, 0.0}}, {1.0, 0.0});
    const std::vector<std::size_t> impossible{0, 0};
    EXPECT_TRUE(std::isinf(c.log_likelihood(impossible)));
}

TEST(MarkovChain, TransitionDistanceZeroToSelf) {
    MarkovChain c({{0.9, 0.1}, {0.3, 0.7}}, {0.5, 0.5});
    EXPECT_NEAR(c.transition_distance(c), 0.0, 1e-12);
    MarkovChain other({{0.5, 0.5}, {0.5, 0.5}}, {0.5, 0.5});
    EXPECT_GT(c.transition_distance(other), 0.1);
    MarkovChain wrong_size(3);
    EXPECT_THROW((void)c.transition_distance(wrong_size), std::invalid_argument);
}

TEST(MarkovChain, ToStringMentionsStates) {
    MarkovChain c(2);
    EXPECT_NE(c.to_string().find("2 states"), std::string::npos);
}

TEST(EqualWidth, MapsAndClamps) {
    EqualWidthDiscretizer d(0.0, 10.0, 5);
    EXPECT_EQ(d.state_of(-1.0), 0u);
    EXPECT_EQ(d.state_of(3.0), 1u);
    EXPECT_EQ(d.state_of(10.0), 4u);
    EXPECT_DOUBLE_EQ(d.representative(0), 1.0);
    EXPECT_THROW((void)d.representative(5), std::out_of_range);
}

TEST(EqualWidth, SampleWithinStaysInBin) {
    EqualWidthDiscretizer d(0.0, 10.0, 5);
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const double x = d.sample_within(2, rng);
        EXPECT_GE(x, 4.0);
        EXPECT_LT(x, 6.0);
    }
}

TEST(Quantile, AdaptsToMass) {
    // 90% of data in [0,1], 10% in [9,10]: quantile bins concentrate low.
    std::vector<double> xs;
    for (int i = 0; i < 900; ++i) xs.push_back(double(i) / 900.0);
    for (int i = 0; i < 100; ++i) xs.push_back(9.0 + double(i) / 100.0);
    QuantileDiscretizer d(xs, 4);
    EXPECT_EQ(d.n_states(), 4u);
    // First three states cover the low mass.
    EXPECT_EQ(d.state_of(0.1), 0u);
    EXPECT_EQ(d.state_of(9.5), 3u);
}

TEST(Quantile, DuplicateHeavySample) {
    std::vector<double> xs(100, 5.0);
    xs.push_back(6.0);
    QuantileDiscretizer d(xs, 4);  // edges collapse, must not throw
    EXPECT_GE(d.n_states(), 1u);
    EXPECT_NO_THROW((void)d.representative(0));
}

TEST(LbnRange, FourRangesOverDisk) {
    LbnRangeDiscretizer d(1000, 4);
    EXPECT_EQ(d.state_of(0.0), 0u);
    EXPECT_EQ(d.state_of(999.0), 3u);
    EXPECT_EQ(d.state_of(250.0), 1u);
    EXPECT_DOUBLE_EQ(d.representative(0), 125.0);
}

TEST(LbnRange, SampleWithinRange) {
    LbnRangeDiscretizer d(1000, 4);
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        const double lbn = d.sample_within(1, rng);
        EXPECT_GE(lbn, 250.0);
        EXPECT_LT(lbn, 500.0);
        EXPECT_DOUBLE_EQ(lbn, std::floor(lbn));
    }
}

TEST(LbnRange, Validation) {
    EXPECT_THROW(LbnRangeDiscretizer(0, 4), std::invalid_argument);
    EXPECT_THROW(LbnRangeDiscretizer(2, 4), std::invalid_argument);
}

TEST(Bank, IdentityMapping) {
    BankDiscretizer d(4);
    EXPECT_EQ(d.state_of(2.0), 2u);
    EXPECT_EQ(d.state_of(9.0), 3u);  // clamps
    EXPECT_DOUBLE_EQ(d.representative(1), 1.0);
}

TEST(Utilization, CoversZeroToOne) {
    UtilizationDiscretizer d(4);
    EXPECT_EQ(d.state_of(0.0), 0u);
    EXPECT_EQ(d.state_of(0.3), 1u);
    EXPECT_EQ(d.state_of(1.0), 3u);
    EXPECT_NE(d.describe().find("cpu-util"), std::string::npos);
}

TEST(Discretize, WholeSequence) {
    EqualWidthDiscretizer d(0.0, 10.0, 5);
    const std::vector<double> xs{1.0, 5.0, 9.0};
    EXPECT_EQ(discretize(d, xs), (std::vector<std::size_t>{0, 2, 4}));
}

AnnotatedSequence make_annotated_training() {
    // Alternating 0/1 states; state 0 carries small sizes, state 1 large.
    AnnotatedSequence seq;
    for (int i = 0; i < 200; ++i) {
        seq.states.push_back(std::size_t(i % 2));
        seq.features["size"].push_back(i % 2 == 0 ? 100.0 : 1000.0);
    }
    return seq;
}

TEST(Annotated, FitAndGenerateFeatures) {
    const AnnotatedSequence seqs[] = {make_annotated_training()};
    const auto m = AnnotatedMarkovChain::fit(seqs, 2, 0.0);
    Rng rng(3);
    const auto steps = m.generate(100, rng);
    ASSERT_EQ(steps.size(), 100u);
    for (const auto& s : steps) {
        const double size = s.features.at("size");
        if (s.state == 0)
            EXPECT_DOUBLE_EQ(size, 100.0);
        else
            EXPECT_DOUBLE_EQ(size, 1000.0);
    }
}

TEST(Annotated, AlternationPreserved) {
    const AnnotatedSequence seqs[] = {make_annotated_training()};
    const auto m = AnnotatedMarkovChain::fit(seqs, 2, 0.0);
    Rng rng(4);
    const auto steps = m.generate(50, rng);
    for (std::size_t i = 1; i < steps.size(); ++i)
        EXPECT_NE(steps[i].state, steps[i - 1].state);
}

TEST(Annotated, MisalignedFeaturesRejected) {
    AnnotatedSequence bad;
    bad.states = {0, 1};
    bad.features["size"] = {1.0};
    const AnnotatedSequence seqs[] = {std::move(bad)};
    EXPECT_THROW(AnnotatedMarkovChain::fit(seqs, 2), std::invalid_argument);
}

TEST(Annotated, UnknownFeatureThrows) {
    const AnnotatedSequence seqs[] = {make_annotated_training()};
    const auto m = AnnotatedMarkovChain::fit(seqs, 2);
    EXPECT_THROW((void)m.feature(0, "nope"), std::out_of_range);
    EXPECT_THROW((void)m.feature(9, "size"), std::out_of_range);
}

TEST(Annotated, UnvisitedStateFallsBackToGlobal) {
    const AnnotatedSequence seqs[] = {make_annotated_training()};
    const auto m = AnnotatedMarkovChain::fit(seqs, 3);  // state 2 never seen
    Rng rng(5);
    const auto step = m.annotate(2, rng);
    const double size = step.features.at("size");
    EXPECT_TRUE(size >= 100.0 && size <= 1000.0);
}

TEST(Annotated, ParameterCountGrowsWithStates) {
    const AnnotatedSequence seqs[] = {make_annotated_training()};
    const auto small = AnnotatedMarkovChain::fit(seqs, 2);
    const auto big = AnnotatedMarkovChain::fit(seqs, 8);
    EXPECT_GT(big.parameter_count(), small.parameter_count());
    EXPECT_FALSE(small.describe().empty());
}

TEST(Hierarchical, FitAndSample) {
    // 4 states in 2 groups: {0,1} and {2,3}; long runs within groups.
    std::vector<std::vector<std::size_t>> seqs;
    std::vector<std::size_t> s;
    for (int rep = 0; rep < 20; ++rep) {
        for (int i = 0; i < 10; ++i) s.push_back(std::size_t(i % 2));
        for (int i = 0; i < 10; ++i) s.push_back(std::size_t(2 + i % 2));
    }
    seqs.push_back(s);
    const std::vector<std::size_t> groups{0, 0, 1, 1};
    const auto h = HierarchicalMarkovChain::fit(seqs, 4, groups);
    EXPECT_EQ(h.n_groups(), 2u);
    EXPECT_EQ(h.group_of(3), 1u);
    Rng rng(6);
    const auto path = h.sample_path(200, rng);
    for (auto st : path) EXPECT_LT(st, 4u);
}

TEST(Hierarchical, StaysInGroupMostly) {
    std::vector<std::vector<std::size_t>> seqs;
    std::vector<std::size_t> s;
    for (int rep = 0; rep < 50; ++rep) {
        for (int i = 0; i < 20; ++i) s.push_back(std::size_t(i % 2));
        for (int i = 0; i < 20; ++i) s.push_back(std::size_t(2 + i % 2));
    }
    seqs.push_back(s);
    const std::vector<std::size_t> groups{0, 0, 1, 1};
    const auto h = HierarchicalMarkovChain::fit(seqs, 4, groups, 0.0);
    Rng rng(7);
    const auto path = h.sample_path(1000, rng);
    std::size_t switches = 0;
    for (std::size_t i = 1; i < path.size(); ++i)
        if (h.group_of(path[i]) != h.group_of(path[i - 1])) ++switches;
    // Training data switches groups every 20 steps; generated path should
    // be in the same ballpark, not thrashing.
    EXPECT_LT(switches, 200u);
}

TEST(Hierarchical, FewerParamsThanFlatForManyStates) {
    // 16 states in 4 groups of 4.
    std::vector<std::size_t> groups(16);
    for (std::size_t i = 0; i < 16; ++i) groups[i] = i / 4;
    std::vector<std::vector<std::size_t>> seqs{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                                12, 13, 14, 15}};
    const auto h = HierarchicalMarkovChain::fit(seqs, 16, groups);
    EXPECT_LT(h.parameter_count(), 16u * 16u + 16u);
    EXPECT_FALSE(h.describe().empty());
}

TEST(Hierarchical, Validation) {
    std::vector<std::vector<std::size_t>> seqs{{0, 1}};
    const std::vector<std::size_t> short_groups{0};
    EXPECT_THROW(HierarchicalMarkovChain::fit(seqs, 2, short_groups),
                 std::invalid_argument);
    const std::vector<std::size_t> gap_groups{0, 2};  // group 1 missing
    EXPECT_THROW(HierarchicalMarkovChain::fit(seqs, 2, gap_groups),
                 std::invalid_argument);
}

}  // namespace
