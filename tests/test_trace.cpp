// Tests for trace records, Dapper-style spans, TraceSet, CSV IO and
// request-feature extraction.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/csv.hpp"
#include "trace/features.hpp"
#include "trace/records.hpp"
#include "trace/span.hpp"
#include "trace/traceset.hpp"

namespace {

using namespace kooza::trace;

TEST(Records, IoTypeRoundTrip) {
    EXPECT_STREQ(to_string(IoType::kRead), "read");
    EXPECT_STREQ(to_string(IoType::kWrite), "write");
    EXPECT_EQ(iotype_from_string("read"), IoType::kRead);
    EXPECT_EQ(iotype_from_string("write"), IoType::kWrite);
    EXPECT_THROW((void)iotype_from_string("bogus"), std::invalid_argument);
}

TEST(Records, RequestLatency) {
    RequestRecord r;
    r.arrival = 1.5;
    r.completion = 3.0;
    EXPECT_DOUBLE_EQ(r.latency(), 1.5);
}

TEST(SpanTracer, RecordsWhenSampled) {
    SpanTracer t(1);
    const auto root = t.start_span(0, 0, "request", 0.0);
    const auto child = t.start_span(0, root, "disk.io", 0.1);
    t.annotate(child, 0.15, "seek");
    t.end_span(child, 0.2);
    t.end_span(root, 0.3);
    ASSERT_EQ(t.spans().size(), 2u);
    EXPECT_EQ(t.spans()[0].name, "disk.io");
    EXPECT_EQ(t.spans()[0].annotations.size(), 1u);
    EXPECT_DOUBLE_EQ(t.spans()[1].duration(), 0.3);
}

TEST(SpanTracer, HeadSamplingDropsWholeTraces) {
    SpanTracer t(10);
    for (TraceId id = 0; id < 100; ++id) {
        const auto s = t.start_span(id, 0, "request", 0.0);
        t.end_span(s, 1.0);
    }
    EXPECT_EQ(t.sampled_trace_count(), 10u);  // ids 0,10,...,90
    EXPECT_EQ(t.operations_requested(), 200u);
    EXPECT_EQ(t.operations_recorded(), 20u);
}

TEST(SpanTracer, UnsampledHandleIsNoop) {
    SpanTracer t(2);
    const auto s = t.start_span(1, 0, "request", 0.0);  // id 1 not sampled
    EXPECT_EQ(s, 0u);
    EXPECT_NO_THROW(t.annotate(s, 0.5, "x"));
    EXPECT_NO_THROW(t.end_span(s, 1.0));
    EXPECT_TRUE(t.spans().empty());
}

TEST(SpanTracer, UnknownHandleThrows) {
    SpanTracer t(1);
    EXPECT_THROW(t.end_span(99, 1.0), std::logic_error);
    EXPECT_THROW(t.annotate(99, 1.0, "x"), std::logic_error);
    EXPECT_THROW(SpanTracer(0), std::invalid_argument);
}

TEST(SpanTracer, ClearResets) {
    SpanTracer t(1);
    const auto s = t.start_span(0, 0, "request", 0.0);
    t.end_span(s, 1.0);
    t.clear();
    EXPECT_TRUE(t.spans().empty());
    EXPECT_EQ(t.operations_requested(), 0u);
}

std::vector<Span> make_tree_spans() {
    SpanTracer t(1);
    const auto root = t.start_span(7, 0, "request", 0.0);
    const auto rx = t.start_span(7, root, "net.rx", 0.0);
    t.end_span(rx, 0.1);
    const auto cpu = t.start_span(7, root, "cpu.verify", 0.1);
    t.end_span(cpu, 0.2);
    const auto io = t.start_span(7, root, "disk.io", 0.2);
    t.end_span(io, 0.8);
    t.end_span(root, 1.0);
    return t.spans();
}

TEST(SpanTree, BuildsAndOrders) {
    const auto spans = make_tree_spans();
    SpanTree tree(spans, 7);
    EXPECT_EQ(tree.root().name, "request");
    EXPECT_DOUBLE_EQ(tree.total_duration(), 1.0);
    const auto seq = tree.phase_sequence();
    // Root sorts first (same start as net.rx but recorded earlier).
    ASSERT_EQ(seq.size(), 4u);
    EXPECT_EQ(seq[0], "request");
    EXPECT_EQ(seq[1], "net.rx");
    EXPECT_EQ(seq[2], "cpu.verify");
    EXPECT_EQ(seq[3], "disk.io");
    const auto durs = tree.phase_durations();
    EXPECT_NEAR(durs[3], 0.6, 1e-12);
}

TEST(SpanTree, ChildrenOfRoot) {
    const auto spans = make_tree_spans();
    SpanTree tree(spans, 7);
    EXPECT_EQ(tree.children_of(tree.root().span_id).size(), 3u);
}

TEST(SpanTree, RenderShowsHierarchy) {
    const auto spans = make_tree_spans();
    SpanTree tree(spans, 7);
    const auto text = tree.render();
    EXPECT_NE(text.find("request"), std::string::npos);
    EXPECT_NE(text.find("  net.rx"), std::string::npos);
}

TEST(SpanTree, MissingTraceThrows) {
    const auto spans = make_tree_spans();
    EXPECT_THROW(SpanTree(spans, 99), std::invalid_argument);
}

TEST(SpanTree, TraceIdsEnumerates) {
    auto spans = make_tree_spans();
    auto more = make_tree_spans();
    for (auto& s : more) s.trace_id = 8;
    spans.insert(spans.end(), more.begin(), more.end());
    EXPECT_EQ(SpanTree::trace_ids(spans), (std::vector<TraceId>{7, 8}));
}

TraceSet make_sample_traceset() {
    TraceSet ts;
    // Request 1: a 64 KB read. Network tx 64K, cpu 2 bursts, memory 16K,
    // storage 64K.
    ts.requests.push_back({1, IoType::kRead, 0.0, 0.010, 65536});
    ts.network.push_back({0.009, 1, 65536, NetworkRecord::Direction::kTx, 0.001});
    ts.cpu.push_back({0.001, 1, 0.0001, 1.0});
    ts.cpu.push_back({0.008, 1, 0.0001, 1.0});
    ts.memory.push_back({0.002, 1, 2, 16384, IoType::kRead});
    ts.storage.push_back({0.003, 1, 1000, 65536, IoType::kRead, 0.005});
    // Request 2: a write.
    ts.requests.push_back({2, IoType::kWrite, 0.020, 0.050, 4 << 20});
    ts.network.push_back({0.020, 2, 4 << 20, NetworkRecord::Direction::kRx, 0.002});
    ts.cpu.push_back({0.030, 2, 0.0010, 1.0});
    ts.memory.push_back({0.031, 2, 3, 262144, IoType::kWrite});
    ts.storage.push_back({0.032, 2, 5000, 4 << 20, IoType::kWrite, 0.01});
    return ts;
}

TEST(TraceSet, MergeAndCounts) {
    auto a = make_sample_traceset();
    const auto b = make_sample_traceset();
    const auto before = a.total_records();
    a.merge(b);
    EXPECT_EQ(a.total_records(), 2 * before);
    EXPECT_FALSE(a.empty());
    a.clear();
    EXPECT_TRUE(a.empty());
}

TEST(TraceSet, SortByTime) {
    TraceSet ts;
    ts.storage.push_back({5.0, 1, 0, 10, IoType::kRead, 0.0});
    ts.storage.push_back({1.0, 2, 0, 10, IoType::kRead, 0.0});
    ts.sort_by_time();
    EXPECT_DOUBLE_EQ(ts.storage[0].time, 1.0);
}

TEST(TraceSet, SummaryMentionsCounts) {
    const auto ts = make_sample_traceset();
    EXPECT_NE(ts.summary().find("requests=2"), std::string::npos);
}

TEST(Features, ExtractAggregates) {
    const auto fs = extract_features(make_sample_traceset());
    ASSERT_EQ(fs.size(), 2u);
    // Sorted by arrival: request 1 first.
    EXPECT_EQ(fs[0].request_id, 1u);
    EXPECT_EQ(fs[0].network_bytes, 65536u);
    EXPECT_EQ(fs[0].memory_bytes, 16384u);
    EXPECT_EQ(fs[0].memory_type, IoType::kRead);
    EXPECT_EQ(fs[0].storage_bytes, 65536u);
    EXPECT_EQ(fs[0].storage_type, IoType::kRead);
    EXPECT_NEAR(fs[0].latency, 0.010, 1e-12);
    // Per-request CPU utilization = busy / latency = 0.0002 / 0.010.
    EXPECT_NEAR(fs[0].cpu_utilization, 0.02, 1e-9);
    EXPECT_EQ(fs[0].first_lbn, 1000u);
    EXPECT_EQ(fs[0].first_bank, 2u);
    // Write request.
    EXPECT_EQ(fs[1].storage_type, IoType::kWrite);
    EXPECT_EQ(fs[1].memory_type, IoType::kWrite);
}

TEST(Features, ExtractForSpecificRequest) {
    const auto ts = make_sample_traceset();
    const auto f = extract_features_for(ts, 2);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->request_id, 2u);
    EXPECT_FALSE(extract_features_for(ts, 99).has_value());
}

TEST(Features, ColumnsAligned) {
    const auto fs = extract_features(make_sample_traceset());
    EXPECT_EQ(column_network_bytes(fs).size(), 2u);
    EXPECT_DOUBLE_EQ(column_latency(fs)[0], 0.010);
    EXPECT_DOUBLE_EQ(column_arrival(fs)[1], 0.020);
    EXPECT_DOUBLE_EQ(column_storage_bytes(fs)[1], double(4 << 20));
}

TEST(Features, ToStringReadable) {
    const auto fs = extract_features(make_sample_traceset());
    EXPECT_NE(fs[0].to_string().find("req 1"), std::string::npos);
}

TEST(Csv, RoundTrip) {
    auto ts = make_sample_traceset();
    ts.spans = make_tree_spans();
    const auto dir = std::filesystem::temp_directory_path() / "kooza_csv_test";
    std::filesystem::remove_all(dir);
    write_csv(ts, dir);
    const auto back = read_csv(dir);
    EXPECT_EQ(back.storage.size(), ts.storage.size());
    EXPECT_EQ(back.cpu.size(), ts.cpu.size());
    EXPECT_EQ(back.memory.size(), ts.memory.size());
    EXPECT_EQ(back.network.size(), ts.network.size());
    EXPECT_EQ(back.requests.size(), ts.requests.size());
    EXPECT_EQ(back.spans.size(), ts.spans.size());
    EXPECT_EQ(back.storage[0].lbn, ts.storage[0].lbn);
    EXPECT_EQ(back.storage[0].type, ts.storage[0].type);
    EXPECT_DOUBLE_EQ(back.requests[1].completion, ts.requests[1].completion);
    EXPECT_EQ(back.spans[0].name, ts.spans[0].name);
    std::filesystem::remove_all(dir);
}

TEST(Csv, MissingDirectoryThrows) {
    // A partial or absent capture must fail loudly, not read as a quiet
    // workload with empty streams.
    EXPECT_THROW((void)read_csv("/nonexistent/kooza"), std::runtime_error);
}

TEST(Csv, SplitLine) {
    EXPECT_EQ(split_csv_line("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split_csv_line(""), (std::vector<std::string>{""}));
    EXPECT_EQ(split_csv_line("x,"), (std::vector<std::string>{"x", ""}));
}

TEST(Csv, MalformedRowThrows) {
    const auto dir = std::filesystem::temp_directory_path() / "kooza_csv_bad";
    std::filesystem::remove_all(dir);
    write_csv(TraceSet{}, dir);
    {
        std::ofstream f(dir / "cpu.csv");
        f << "time,request_id,busy_seconds,utilization\n";
        f << "1.0,nonsense,0.1,0.5\n";
    }
    EXPECT_THROW(read_csv(dir), std::runtime_error);
    std::filesystem::remove_all(dir);
}

}  // namespace
