// Tests for the parametric distribution families, including
// parameterized CDF/quantile round-trip and sample-moment properties.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "sim/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/empirical.hpp"

namespace {

using namespace kooza::stats;
using kooza::sim::Rng;

std::unique_ptr<Distribution> make_family(const std::string& which) {
    if (which == "uniform") return std::make_unique<Uniform>(2.0, 5.0);
    if (which == "exponential") return std::make_unique<Exponential>(1.5);
    if (which == "normal") return std::make_unique<Normal>(10.0, 2.0);
    if (which == "lognormal") return std::make_unique<LogNormal>(1.0, 0.5);
    if (which == "pareto") return std::make_unique<Pareto>(1.0, 3.5);
    if (which == "weibull") return std::make_unique<Weibull>(1.8, 2.0);
    if (which == "gamma") return std::make_unique<Gamma>(3.0, 2.0);
    throw std::logic_error("unknown family " + which);
}

class DistributionFamily : public ::testing::TestWithParam<std::string> {};

TEST_P(DistributionFamily, QuantileCdfRoundTrip) {
    auto d = make_family(GetParam());
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95, 0.999}) {
        const double x = d->quantile(p);
        EXPECT_NEAR(d->cdf(x), p, 1e-6) << GetParam() << " p=" << p;
    }
}

TEST_P(DistributionFamily, CdfMonotone) {
    auto d = make_family(GetParam());
    double prev = -1e-9;
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const double x = d->quantile(p);
        const double c = d->cdf(x);
        EXPECT_GE(c, prev) << GetParam();
        prev = c;
    }
}

TEST_P(DistributionFamily, SampleMomentsMatch) {
    auto d = make_family(GetParam());
    Rng rng(11);
    const int n = 60000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = d->sample(rng);
        sum += x;
        sq += x * x;
    }
    const double m = sum / n;
    const double v = sq / n - m * m;
    EXPECT_NEAR(m, d->mean(), 0.05 * std::max(1.0, std::fabs(d->mean())))
        << GetParam();
    EXPECT_NEAR(v, d->variance(), 0.15 * std::max(1.0, d->variance())) << GetParam();
}

TEST_P(DistributionFamily, CloneIsEquivalent) {
    auto d = make_family(GetParam());
    auto c = d->clone();
    EXPECT_EQ(d->describe(), c->describe());
    EXPECT_DOUBLE_EQ(d->cdf(1.7), c->cdf(1.7));
}

TEST_P(DistributionFamily, DescribeContainsName) {
    auto d = make_family(GetParam());
    EXPECT_NE(d->describe().find(d->name()), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionFamily,
                         ::testing::Values("uniform", "exponential", "normal",
                                           "lognormal", "pareto", "weibull", "gamma"),
                         [](const auto& info) { return info.param; });

TEST(Deterministic, PointMass) {
    Deterministic d(3.0);
    EXPECT_DOUBLE_EQ(d.cdf(2.999), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(d.sample(rng), 3.0);
}

TEST(Exponential, KnownValues) {
    Exponential d(2.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.5);
    EXPECT_NEAR(d.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
    EXPECT_THROW(Exponential(0.0), std::invalid_argument);
}

TEST(Normal, SymmetryAroundMean) {
    Normal d(5.0, 1.0);
    EXPECT_NEAR(d.cdf(5.0), 0.5, 1e-12);
    EXPECT_NEAR(d.cdf(4.0) + d.cdf(6.0), 1.0, 1e-10);
    EXPECT_THROW(Normal(0.0, 0.0), std::invalid_argument);
}

TEST(LogNormal, PositiveSupport) {
    LogNormal d(0.0, 1.0);
    EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
    EXPECT_NEAR(d.cdf(1.0), 0.5, 1e-12);  // median = e^mu
    EXPECT_NEAR(d.mean(), std::exp(0.5), 1e-12);
}

TEST(Pareto, TailAndMoments) {
    Pareto d(1.0, 2.5);
    EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
    EXPECT_NEAR(d.mean(), 2.5 / 1.5, 1e-12);
    Pareto heavy(1.0, 0.9);
    EXPECT_TRUE(std::isinf(heavy.mean()));
    Pareto no_var(1.0, 1.5);
    EXPECT_TRUE(std::isinf(no_var.variance()));
}

TEST(Weibull, ShapeOneIsExponential) {
    Weibull w(1.0, 2.0);
    Exponential e(0.5);
    for (double x : {0.5, 1.0, 2.0, 4.0}) EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
}

TEST(Gamma, ShapeOneIsExponential) {
    Gamma g(1.0, 2.0);
    Exponential e(0.5);
    for (double x : {0.5, 1.0, 2.0, 4.0}) EXPECT_NEAR(g.cdf(x), e.cdf(x), 1e-9);
}

TEST(ZipfSampler, PmfSumsToOne) {
    ZipfSampler z(10, 1.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < 10; ++i) sum += z.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GT(z.pmf(0), z.pmf(9));
}

TEST(ZipfSampler, SamplingMatchesPmf) {
    ZipfSampler z(5, 1.2);
    Rng rng(3);
    std::vector<int> counts(5, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(double(counts[i]) / n, z.pmf(i), 0.01);
}

TEST(ZipfSampler, UniformWhenSZero) {
    ZipfSampler z(4, 0.0);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(z.pmf(i), 0.25, 1e-12);
}

TEST(Empirical, CdfIsEcdf) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    Empirical e(xs);
    EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(e.cdf(2.0), 0.5);
    EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
}

TEST(Empirical, QuantileInterpolates) {
    const std::vector<double> xs{0.0, 10.0};
    Empirical e(xs);
    EXPECT_DOUBLE_EQ(e.quantile(0.5), 5.0);
}

TEST(Empirical, MomentsMatchSample) {
    const std::vector<double> xs{2, 4, 6, 8};
    Empirical e(xs);
    EXPECT_DOUBLE_EQ(e.mean(), 5.0);
    EXPECT_NEAR(e.variance(), 20.0 / 3.0, 1e-12);
}

TEST(Empirical, SamplesWithinRange) {
    const std::vector<double> xs{3.0, 7.0, 5.0};
    Empirical e(xs);
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const double x = e.sample(rng);
        EXPECT_GE(x, 3.0);
        EXPECT_LE(x, 7.0);
    }
}

TEST(Empirical, EmptyRejected) {
    EXPECT_THROW(Empirical(std::vector<double>{}), std::invalid_argument);
}

}  // namespace
