// Tests for SQS (stochastic queueing simulation with statistical
// sampling), validated against the M/M/1 analytic oracle.
#include <gtest/gtest.h>

#include "queueing/analytic.hpp"
#include "queueing/sqs.hpp"
#include "sim/rng.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace kooza::queueing;
using kooza::sim::Rng;
using kooza::stats::Exponential;

SqsWorkloadModel mm1_model(double lambda, double mu, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> gaps(4000), services(4000);
    Exponential arr(lambda), svc(mu);
    for (auto& g : gaps) g = arr.sample(rng);
    for (auto& s : services) s = svc.sample(rng);
    return SqsWorkloadModel::characterize(gaps, services);
}

TEST(SqsCharacterize, FitsParametricWhenPossible) {
    const auto m = mm1_model(8.0, 10.0, 1);
    EXPECT_NE(m.interarrival->name(), "empirical");
    EXPECT_NEAR(m.interarrival->mean(), 1.0 / 8.0, 0.01);
    EXPECT_NEAR(m.service->mean(), 0.1, 0.005);
    EXPECT_FALSE(m.describe().empty());
}

TEST(SqsCharacterize, EmpiricalFallbackOnBimodal) {
    Rng rng(2);
    std::vector<double> gaps(2000), services(2000);
    for (auto& g : gaps) g = rng.exponential(10.0);
    for (auto& s : services)
        s = rng.bernoulli(0.5) ? rng.normal(0.001, 0.00001)
                               : rng.normal(0.05, 0.0001);
    const auto m = SqsWorkloadModel::characterize(gaps, services);
    EXPECT_EQ(m.service->name(), "empirical");
}

TEST(SqsCharacterize, FromRequestRecords) {
    Rng rng(3);
    std::vector<kooza::trace::RequestRecord> recs;
    double t = 0.0;
    for (int i = 0; i < 500; ++i) {
        t += rng.exponential(20.0);
        kooza::trace::RequestRecord r;
        r.request_id = std::uint64_t(i);
        r.arrival = t;
        r.completion = t + 0.01 + rng.exponential(200.0);
        recs.push_back(r);
    }
    const auto m = SqsWorkloadModel::characterize(recs);
    EXPECT_NEAR(m.interarrival->mean(), 0.05, 0.01);
    EXPECT_GT(m.service->mean(), 0.0);
    std::vector<kooza::trace::RequestRecord> tiny(2);
    EXPECT_THROW(SqsWorkloadModel::characterize(tiny), std::invalid_argument);
}

TEST(SqsSimulator, MatchesMm1Oracle) {
    const auto model = mm1_model(8.0, 10.0, 4);
    SqsSimulator sim({.tasks_per_server = 5000, .target_rel_ci = 0.02, .seed = 5});
    const auto res = sim.run(model, 1000);
    const auto oracle = mm1(8.0, 10.0);
    EXPECT_NEAR(res.mean_response, oracle.mean_response,
                oracle.mean_response * 0.12);
    EXPECT_NEAR(res.utilization, 0.8, 0.05);
}

TEST(SqsSimulator, SamplingStopsEarly) {
    const auto model = mm1_model(5.0, 10.0, 6);
    SqsSimulator sim({.tasks_per_server = 3000, .target_rel_ci = 0.05, .seed = 7});
    const auto res = sim.run(model, 10000);
    EXPECT_LT(res.servers_simulated, 10000u);
    EXPECT_GT(res.sampling_savings(), 0.9);
    EXPECT_EQ(res.servers_requested, 10000u);
    EXPECT_LE(res.ci_halfwidth / res.mean_response, 0.05 + 1e-9);
}

TEST(SqsSimulator, TighterCiNeedsMoreServers) {
    const auto model = mm1_model(8.0, 10.0, 8);
    SqsSimulator loose({.tasks_per_server = 500, .target_rel_ci = 0.2, .seed = 9});
    SqsSimulator tight({.tasks_per_server = 500, .target_rel_ci = 0.01, .seed = 9});
    const auto a = loose.run(model, 5000);
    const auto b = tight.run(model, 5000);
    EXPECT_LE(a.servers_simulated, b.servers_simulated);
}

TEST(SqsSimulator, RejectsUnstableModel) {
    const auto model = mm1_model(12.0, 10.0, 10);  // rho = 1.2
    SqsSimulator sim;
    EXPECT_THROW((void)sim.run(model, 10), std::invalid_argument);
    const auto ok = mm1_model(5.0, 10.0, 11);
    EXPECT_THROW((void)sim.run(ok, 0), std::invalid_argument);
}

TEST(SqsSimulator, HigherLoadHigherResponse) {
    SqsSimulator sim({.tasks_per_server = 3000, .target_rel_ci = 0.03, .seed = 12});
    const auto low = sim.run(mm1_model(3.0, 10.0, 13), 500);
    const auto high = sim.run(mm1_model(9.0, 10.0, 14), 500);
    EXPECT_GT(high.mean_response, 2.0 * low.mean_response);
    EXPECT_GT(high.utilization, low.utilization);
}

TEST(SqsSimulator, DeterministicPerSeed) {
    const auto model = mm1_model(5.0, 10.0, 15);
    SqsSimulator sim({.tasks_per_server = 1000, .target_rel_ci = 0.05, .seed = 16});
    const auto a = sim.run(model, 100);
    const auto b = sim.run(model, 100);
    EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
    EXPECT_EQ(a.servers_simulated, b.servers_simulated);
}

TEST(SqsSimulator, OptionValidation) {
    EXPECT_THROW(SqsSimulator({.tasks_per_server = 0}), std::invalid_argument);
    EXPECT_THROW(SqsSimulator({.target_rel_ci = 0.0}), std::invalid_argument);
    EXPECT_THROW(SqsSimulator({.min_servers = 0}), std::invalid_argument);
}

}  // namespace
