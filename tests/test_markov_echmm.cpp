// Tests for the Ergodic Continuous HMM (Moro '09 memory-trace model).
#include <gtest/gtest.h>

#include <cmath>

#include "markov/echmm.hpp"
#include "sim/rng.hpp"

namespace {

using kooza::markov::Echmm;
using kooza::sim::Rng;

/// Two-regime data: long runs near 10, long runs near 100.
std::vector<double> two_regime_sequence(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    double level = 10.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(0.02)) level = level < 50.0 ? 100.0 : 10.0;
        out.push_back(rng.normal(level, 1.0));
    }
    return out;
}

TEST(Echmm, RecoversTwoRegimes) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(3000, 1)};
    const auto m = Echmm::fit(seqs, 2, 40);
    // Emission means near 10 and 100, in some order.
    const bool first_low = m.emission_mean(0) < 50.0;
    const double low = m.emission_mean(first_low ? 0 : 1);
    const double high = m.emission_mean(first_low ? 1 : 0);
    EXPECT_NEAR(low, 10.0, 2.0);
    EXPECT_NEAR(high, 100.0, 2.0);
    // Sticky transitions (the regimes persist ~50 steps).
    EXPECT_GT(m.transition(0, 0), 0.9);
    EXPECT_GT(m.transition(1, 1), 0.9);
}

TEST(Echmm, TrainingImprovesLikelihood) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(2000, 2)};
    const auto one_iter = Echmm::fit(seqs, 2, 1);
    const auto many = Echmm::fit(seqs, 2, 30);
    EXPECT_GE(many.training_log_likelihood(), one_iter.training_log_likelihood());
    EXPECT_GE(many.iterations_run(), 2u);
}

TEST(Echmm, LikelihoodPrefersMatchingData) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(2000, 3)};
    const auto m = Echmm::fit(seqs, 2, 30);
    const auto matching = two_regime_sequence(500, 4);
    Rng rng(5);
    std::vector<double> noise(500);
    for (auto& x : noise) x = rng.uniform(-500.0, 500.0);
    EXPECT_GT(m.log_likelihood(matching) / 500.0, m.log_likelihood(noise) / 500.0);
}

TEST(Echmm, ViterbiTracksRegimes) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(2000, 6)};
    const auto m = Echmm::fit(seqs, 2, 30);
    const std::vector<double> obs{10, 11, 9, 100, 101, 99, 10};
    const auto path = m.viterbi(obs);
    ASSERT_EQ(path.size(), obs.size());
    EXPECT_EQ(path[0], path[1]);
    EXPECT_EQ(path[3], path[4]);
    EXPECT_NE(path[0], path[3]);
    EXPECT_EQ(path[6], path[0]);
}

TEST(Echmm, GenerateMatchesRegimeStatistics) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(3000, 7)};
    const auto m = Echmm::fit(seqs, 2, 30);
    Rng rng(8);
    const auto synth = m.generate(3000, rng);
    // Synthetic data occupies both regimes.
    std::size_t low = 0, high = 0;
    for (double x : synth) {
        if (x < 50.0)
            ++low;
        else
            ++high;
    }
    EXPECT_GT(low, 300u);
    EXPECT_GT(high, 300u);
    // Runs are long: few regime switches per 3000 samples.
    std::size_t switches = 0;
    for (std::size_t i = 1; i < synth.size(); ++i)
        if ((synth[i] < 50.0) != (synth[i - 1] < 50.0)) ++switches;
    EXPECT_LT(switches, 300u);
}

TEST(Echmm, MultipleSequencesPooled) {
    std::vector<std::vector<double>> seqs;
    for (int s = 0; s < 4; ++s) seqs.push_back(two_regime_sequence(500, 9 + s));
    const auto m = Echmm::fit(seqs, 2, 20);
    EXPECT_EQ(m.n_states(), 2u);
    EXPECT_FALSE(m.describe().empty());
}

TEST(Echmm, ParameterCount) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(500, 20)};
    const auto m = Echmm::fit(seqs, 3, 5);
    // (3-1) + 3*2 + 2*3 = 14.
    EXPECT_EQ(m.parameter_count(), 14u);
}

TEST(Echmm, Validation) {
    const std::vector<std::vector<double>> tiny{{1.0, 2.0}};
    EXPECT_THROW(Echmm::fit(tiny, 4), std::invalid_argument);
    const std::vector<std::vector<double>> seqs{two_regime_sequence(500, 21)};
    const auto m = Echmm::fit(seqs, 2, 5);
    EXPECT_THROW((void)m.transition(5, 0), std::out_of_range);
    EXPECT_THROW((void)m.emission_mean(5), std::out_of_range);
    Rng rng(22);
    EXPECT_THROW(m.generate(0, rng), std::invalid_argument);
    EXPECT_TRUE(m.viterbi(std::vector<double>{}).empty());
}

TEST(Echmm, InitialDistributionNormalized) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(1000, 23)};
    const auto m = Echmm::fit(seqs, 3, 10);
    double sum = 0.0;
    for (double p : m.initial()) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (std::size_t i = 0; i < 3; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < 3; ++j) row += m.transition(i, j);
        EXPECT_NEAR(row, 1.0, 1e-9);
    }
}

}  // namespace
