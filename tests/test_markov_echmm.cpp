// Tests for the Ergodic Continuous HMM (Moro '09 memory-trace model).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "markov/echmm.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace {

using kooza::markov::Echmm;
using kooza::sim::Rng;

/// Two-regime data: long runs near 10, long runs near 100.
std::vector<double> two_regime_sequence(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    double level = 10.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(0.02)) level = level < 50.0 ? 100.0 : 10.0;
        out.push_back(rng.normal(level, 1.0));
    }
    return out;
}

TEST(Echmm, RecoversTwoRegimes) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(3000, 1)};
    const auto m = Echmm::fit(seqs, 2, 40);
    // Emission means near 10 and 100, in some order.
    const bool first_low = m.emission_mean(0) < 50.0;
    const double low = m.emission_mean(first_low ? 0 : 1);
    const double high = m.emission_mean(first_low ? 1 : 0);
    EXPECT_NEAR(low, 10.0, 2.0);
    EXPECT_NEAR(high, 100.0, 2.0);
    // Sticky transitions (the regimes persist ~50 steps).
    EXPECT_GT(m.transition(0, 0), 0.9);
    EXPECT_GT(m.transition(1, 1), 0.9);
}

TEST(Echmm, TrainingImprovesLikelihood) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(2000, 2)};
    const auto one_iter = Echmm::fit(seqs, 2, 1);
    const auto many = Echmm::fit(seqs, 2, 30);
    EXPECT_GE(many.training_log_likelihood(), one_iter.training_log_likelihood());
    EXPECT_GE(many.iterations_run(), 2u);
}

TEST(Echmm, LikelihoodPrefersMatchingData) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(2000, 3)};
    const auto m = Echmm::fit(seqs, 2, 30);
    const auto matching = two_regime_sequence(500, 4);
    Rng rng(5);
    std::vector<double> noise(500);
    for (auto& x : noise) x = rng.uniform(-500.0, 500.0);
    EXPECT_GT(m.log_likelihood(matching) / 500.0, m.log_likelihood(noise) / 500.0);
}

TEST(Echmm, ViterbiTracksRegimes) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(2000, 6)};
    const auto m = Echmm::fit(seqs, 2, 30);
    const std::vector<double> obs{10, 11, 9, 100, 101, 99, 10};
    const auto path = m.viterbi(obs);
    ASSERT_EQ(path.size(), obs.size());
    EXPECT_EQ(path[0], path[1]);
    EXPECT_EQ(path[3], path[4]);
    EXPECT_NE(path[0], path[3]);
    EXPECT_EQ(path[6], path[0]);
}

TEST(Echmm, GenerateMatchesRegimeStatistics) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(3000, 7)};
    const auto m = Echmm::fit(seqs, 2, 30);
    Rng rng(8);
    const auto synth = m.generate(3000, rng);
    // Synthetic data occupies both regimes.
    std::size_t low = 0, high = 0;
    for (double x : synth) {
        if (x < 50.0)
            ++low;
        else
            ++high;
    }
    EXPECT_GT(low, 300u);
    EXPECT_GT(high, 300u);
    // Runs are long: few regime switches per 3000 samples.
    std::size_t switches = 0;
    for (std::size_t i = 1; i < synth.size(); ++i)
        if ((synth[i] < 50.0) != (synth[i - 1] < 50.0)) ++switches;
    EXPECT_LT(switches, 300u);
}

TEST(Echmm, MultipleSequencesPooled) {
    std::vector<std::vector<double>> seqs;
    for (int s = 0; s < 4; ++s) seqs.push_back(two_regime_sequence(500, 9 + s));
    const auto m = Echmm::fit(seqs, 2, 20);
    EXPECT_EQ(m.n_states(), 2u);
    EXPECT_FALSE(m.describe().empty());
}

TEST(Echmm, ParameterCount) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(500, 20)};
    const auto m = Echmm::fit(seqs, 3, 5);
    // (3-1) + 3*2 + 2*3 = 14.
    EXPECT_EQ(m.parameter_count(), 14u);
}

TEST(Echmm, Validation) {
    const std::vector<std::vector<double>> tiny{{1.0, 2.0}};
    EXPECT_THROW(Echmm::fit(tiny, 4), std::invalid_argument);
    const std::vector<std::vector<double>> seqs{two_regime_sequence(500, 21)};
    const auto m = Echmm::fit(seqs, 2, 5);
    EXPECT_THROW((void)m.transition(5, 0), std::out_of_range);
    EXPECT_THROW((void)m.emission_mean(5), std::out_of_range);
    Rng rng(22);
    EXPECT_THROW(m.generate(0, rng), std::invalid_argument);
    EXPECT_TRUE(m.viterbi(std::vector<double>{}).empty());
}

/// Like two_regime_sequence but with unequal regime masses (~6:1), which
/// makes the quantile initialization start the high-regime mean far from
/// 100 — the first EM iterations move it a long way, exactly the setting
/// where a variance computed against the stale mean blows up.
std::vector<double> skewed_two_regime(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    double level = 10.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(level < 50.0 ? 0.01 : 0.06)) {
            level = level < 50.0 ? 100.0 : 10.0;
        }
        out.push_back(rng.normal(level, 1.0));
    }
    return out;
}

// Regression for the stale-mean M-step bug: sigma was accumulated against
// the previous iteration's mu, overestimating the variance by
// (mu_new - mu_old)^2 per iteration. With the skewed fixture and only 3
// iterations the stale formula leaves sigma_high ~ 3.5; E[x^2] - mu_new^2
// recovers ~1.07 (true stddev 1.0).
TEST(Echmm, RecoveredStddevsUnbiased) {
    const std::vector<std::vector<double>> seqs{skewed_two_regime(3000, 1)};
    const auto m = Echmm::fit(seqs, 2, /*max_iter=*/3, /*tol=*/1e-12);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_GT(m.emission_stddev(i), 0.5) << "state " << i;
        EXPECT_LT(m.emission_stddev(i), 2.0) << "state " << i;
    }
}

// Convergence path 1: the |delta LL| stop. Feeding identical data twice
// leaves the likelihood nearly unchanged, so the second iteration
// converges under a generous tolerance — but the first never can (the
// previous likelihood starts at -inf).
TEST(Echmm, ConvergesOnSmallAbsoluteDelta) {
    const auto data = two_regime_sequence(800, 30);
    Echmm::Fitter fitter(2, /*tol=*/1e9);
    fitter.initialize(data);
    fitter.begin_iteration();
    fitter.accumulate(data);
    EXPECT_FALSE(fitter.end_iteration());  // first iteration: prev = -inf
    fitter.begin_iteration();
    fitter.accumulate(data);
    EXPECT_TRUE(fitter.end_iteration());
    EXPECT_EQ(fitter.model().iterations_run(), 2u);
}

// Convergence path 2: a likelihood *decrease* is counted, not treated as
// convergence. The old check (total_ll - prev_ll < tol) declared any
// drop converged; force a genuine drop by swapping in wildly different
// data on the second iteration and check the fitter keeps going.
TEST(Echmm, LikelihoodDecreaseCountedNotConverged) {
    const auto matching = two_regime_sequence(800, 31);
    Rng rng(32);
    std::vector<double> noise(800);
    for (auto& x : noise) x = rng.uniform(-5000.0, 5000.0);

    auto& ctr = kooza::obs::counter("markov.echmm.ll_decreased_total");
    const auto before = ctr.value();

    Echmm::Fitter fitter(2, /*tol=*/1e-4);
    fitter.initialize(matching);
    fitter.begin_iteration();
    fitter.accumulate(matching);
    EXPECT_FALSE(fitter.end_iteration());
    const double ll_first = fitter.model().training_log_likelihood();
    fitter.begin_iteration();
    fitter.accumulate(noise);  // likelihood craters
    EXPECT_FALSE(fitter.end_iteration());  // NOT convergence
    EXPECT_LT(fitter.model().training_log_likelihood(), ll_first);
    EXPECT_EQ(ctr.value(), before + 1);
}

// Seed handling: with the default single restart the fit is deterministic
// and byte-identical for every seed (restart 0 never consults it).
TEST(Echmm, SingleRestartByteCompatAcrossSeeds) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(1000, 33)};
    const auto a = Echmm::fit(seqs, 2, 20, 1e-4, /*seed=*/1, /*n_restarts=*/1);
    const auto b = Echmm::fit(seqs, 2, 20, 1e-4, /*seed=*/999, /*n_restarts=*/1);
    EXPECT_EQ(a.training_log_likelihood(), b.training_log_likelihood());
    EXPECT_EQ(a.iterations_run(), b.iterations_run());
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(a.emission_mean(i), b.emission_mean(i));
        EXPECT_EQ(a.emission_stddev(i), b.emission_stddev(i));
        EXPECT_EQ(a.initial()[i], b.initial()[i]);
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_EQ(a.transition(i, j), b.transition(i, j));
    }
}

// Seeded restarts keep the best-likelihood model, are reproducible for a
// fixed seed, and can never do worse than the deterministic restart 0.
TEST(Echmm, SeededRestartsKeepBest) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(1000, 34)};
    const auto base = Echmm::fit(seqs, 3, 15, 1e-4, 7, 1);
    const auto multi = Echmm::fit(seqs, 3, 15, 1e-4, 7, 6);
    const auto multi_again = Echmm::fit(seqs, 3, 15, 1e-4, 7, 6);
    EXPECT_GE(multi.training_log_likelihood(), base.training_log_likelihood());
    EXPECT_EQ(multi.training_log_likelihood(),
              multi_again.training_log_likelihood());
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(multi.emission_mean(i), multi_again.emission_mean(i));
}

// Multi-sequence Baum-Welch, degenerate case: with a single state there
// are no boundary effects (pi and the transition matrix are trivial), so
// fitting {s1, s2} must be byte-identical to fitting the concatenation —
// the accumulators see the same values in the same order.
TEST(Echmm, SingleStateMultiSequenceMatchesConcatenation) {
    const auto s1 = two_regime_sequence(400, 35);
    const auto s2 = two_regime_sequence(400, 36);
    std::vector<double> concat = s1;
    concat.insert(concat.end(), s2.begin(), s2.end());
    const std::vector<std::vector<double>> split{s1, s2};
    const std::vector<std::vector<double>> joined{concat};
    const auto a = Echmm::fit(split, 1, 10, 1e-12);
    const auto b = Echmm::fit(joined, 1, 10, 1e-12);
    EXPECT_EQ(a.emission_mean(0), b.emission_mean(0));
    EXPECT_EQ(a.emission_stddev(0), b.emission_stddev(0));
}

// Multi-sequence Baum-Welch, boundary semantics: each sequence restarts
// from pi (every t=0 contributes) and no xi crosses a sequence boundary.
// One pure-low and one pure-high sequence therefore yield pi ~ {1/2, 1/2},
// while their concatenation pins pi to the single starting regime.
TEST(Echmm, MultiSequencePiSeesEveryStart) {
    Rng rng(37);
    std::vector<double> low(400), high(400);
    for (auto& x : low) x = rng.normal(10.0, 1.0);
    for (auto& x : high) x = rng.normal(100.0, 1.0);
    std::vector<double> concat = low;
    concat.insert(concat.end(), high.begin(), high.end());

    const std::vector<std::vector<double>> split{low, high};
    const std::vector<std::vector<double>> joined{concat};
    const auto m_split = Echmm::fit(split, 2, 20);
    const auto m_joined = Echmm::fit(joined, 2, 20);

    // Both recover the regime means...
    for (const auto* m : {&m_split, &m_joined}) {
        const bool first_low = m->emission_mean(0) < 50.0;
        EXPECT_NEAR(m->emission_mean(first_low ? 0 : 1), 10.0, 2.0);
        EXPECT_NEAR(m->emission_mean(first_low ? 1 : 0), 100.0, 2.0);
    }
    // ...but only the split fit sees two sequence starts.
    const double split_pi_max =
        std::max(m_split.initial()[0], m_split.initial()[1]);
    const double joined_pi_max =
        std::max(m_joined.initial()[0], m_joined.initial()[1]);
    EXPECT_NEAR(split_pi_max, 0.5, 0.05);
    EXPECT_GT(joined_pi_max, 0.9);
}

// Fitter misuse is a logic error, not UB.
TEST(Echmm, FitterGuardsProtocol) {
    EXPECT_THROW(Echmm::Fitter(0), std::invalid_argument);
    Echmm::Fitter fitter(2);
    EXPECT_THROW(fitter.begin_iteration(), std::logic_error);
    const auto data = two_regime_sequence(100, 38);
    EXPECT_THROW(fitter.accumulate(data), std::logic_error);
    EXPECT_THROW(fitter.end_iteration(), std::logic_error);
    fitter.initialize(data);
    EXPECT_THROW(fitter.accumulate(data), std::logic_error);  // no iteration yet
    fitter.begin_iteration();
    fitter.accumulate(data);
    EXPECT_FALSE(fitter.end_iteration());
    EXPECT_THROW(fitter.end_iteration(), std::logic_error);  // already ended
    const std::vector<double> tiny{1.0, 2.0};
    Echmm::Fitter starved(4);
    EXPECT_THROW(starved.initialize(tiny), std::invalid_argument);
}

TEST(Echmm, InitialDistributionNormalized) {
    const std::vector<std::vector<double>> seqs{two_regime_sequence(1000, 23)};
    const auto m = Echmm::fit(seqs, 3, 10);
    double sum = 0.0;
    for (double p : m.initial()) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (std::size_t i = 0; i < 3; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < 3; ++j) row += m.transition(i, j);
        EXPECT_NEAR(row, 1.0, 1e-9);
    }
}

}  // namespace
