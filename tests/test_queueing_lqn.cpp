// Tests for the layered queueing network: nested resource possession,
// thread-pool saturation, and the contrast with a plain tandem network.
#include <gtest/gtest.h>

#include "queueing/lqn.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace kooza::queueing;
using kooza::sim::Engine;
using kooza::sim::Rng;
using kooza::stats::Deterministic;
using kooza::stats::Exponential;

TEST(Lqn, SingleTaskIsSimpleQueue) {
    Engine eng;
    LqnModel lqn(eng, 1);
    const auto t = lqn.add_task("solo", 1, std::make_shared<Exponential>(10.0));
    PoissonArrivals arr(8.0);
    Rng rng(2);
    lqn.drive(t, arr, 20000, rng);
    eng.run();
    // M/M/1 with lambda=8, mu=10: W = 0.5.
    EXPECT_NEAR(kooza::stats::mean(lqn.response_times()), 0.5, 0.06);
    EXPECT_EQ(lqn.completions(t), 20000u);
}

TEST(Lqn, NestedCallHoldsCallerThread) {
    // Front task: zero own service, 1 thread, calls a slow back task.
    // With possession, the front pool is busy the whole back service, so
    // its utilization matches the back's even though it does no work.
    Engine eng;
    LqnModel lqn(eng, 3);
    const auto front = lqn.add_task("front", 1, std::make_shared<Deterministic>(0.0));
    const auto back = lqn.add_task("back", 1, std::make_shared<Deterministic>(0.05));
    lqn.add_call(front, back, 1.0);
    PoissonArrivals arr(10.0);
    Rng rng(4);
    lqn.drive(front, arr, 2000, rng);
    eng.run();
    EXPECT_NEAR(lqn.pool_utilization(front), lqn.pool_utilization(back), 0.02);
    EXPECT_GT(lqn.pool_utilization(front), 0.4);
}

TEST(Lqn, FrontSaturatesOnThreadsNotCpu) {
    // 2 front threads over a 0.1 s blocking call chain cap throughput at
    // 20/s regardless of offered load — thread starvation, not CPU.
    Engine eng;
    LqnModel lqn(eng, 5);
    const auto front = lqn.add_task("front", 2, std::make_shared<Deterministic>(0.001));
    const auto back = lqn.add_task("back", 64, std::make_shared<Deterministic>(0.1));
    lqn.add_call(front, back, 1.0);
    PoissonArrivals arr(100.0);
    Rng rng(6);
    lqn.drive(front, arr, 500, rng);
    eng.run();
    // 500 requests at ~2/0.101 ~ 19.8/s takes ~25 s.
    EXPECT_GT(eng.now(), 20.0);
    EXPECT_NEAR(lqn.pool_utilization(front), 1.0, 0.05);
    EXPECT_LT(lqn.pool_utilization(back), 0.1);  // back pool nearly idle
}

TEST(Lqn, MoreFrontThreadsRestoreThroughput) {
    auto run_with_threads = [](std::uint32_t threads) {
        Engine eng;
        LqnModel lqn(eng, 7);
        const auto front =
            lqn.add_task("front", threads, std::make_shared<Deterministic>(0.001));
        const auto back =
            lqn.add_task("back", 64, std::make_shared<Deterministic>(0.1));
        lqn.add_call(front, back, 1.0);
        PoissonArrivals arr(100.0);
        Rng rng(8);
        lqn.drive(front, arr, 500, rng);
        eng.run();
        return eng.now();  // makespan
    };
    EXPECT_LT(run_with_threads(16), run_with_threads(2) / 3.0);
}

TEST(Lqn, MultipleCallsPerInvocation) {
    Engine eng;
    LqnModel lqn(eng, 9);
    const auto front = lqn.add_task("front", 8, std::make_shared<Deterministic>(0.0));
    const auto back = lqn.add_task("back", 8, std::make_shared<Deterministic>(0.01));
    lqn.add_call(front, back, 3.0);
    DeterministicArrivals arr(1.0);
    Rng rng(10);
    lqn.drive(front, arr, 100, rng);
    eng.run();
    EXPECT_EQ(lqn.completions(back), 300u);  // exactly 3 calls each
    // Sequential synchronous calls: response = 3 x 0.01.
    EXPECT_NEAR(kooza::stats::mean(lqn.response_times()), 0.03, 1e-9);
}

TEST(Lqn, FractionalMeanCallsSampled) {
    Engine eng;
    LqnModel lqn(eng, 11);
    const auto front = lqn.add_task("front", 8, std::make_shared<Deterministic>(0.0));
    const auto back = lqn.add_task("back", 8, std::make_shared<Deterministic>(0.001));
    lqn.add_call(front, back, 0.5);
    DeterministicArrivals arr(100.0);
    Rng rng(12);
    lqn.drive(front, arr, 4000, rng);
    eng.run();
    EXPECT_NEAR(double(lqn.completions(back)) / 4000.0, 0.5, 0.05);
}

TEST(Lqn, ThreeTierChain) {
    Engine eng;
    LqnModel lqn(eng, 13);
    const auto web = lqn.add_task("web", 4, std::make_shared<Exponential>(500.0));
    const auto app = lqn.add_task("app", 4, std::make_shared<Exponential>(250.0));
    const auto db = lqn.add_task("db", 2, std::make_shared<Exponential>(125.0));
    lqn.add_call(web, app, 1.0);
    lqn.add_call(app, db, 2.0);
    PoissonArrivals arr(20.0);
    Rng rng(14);
    lqn.drive(web, arr, 5000, rng);
    eng.run();
    ASSERT_EQ(lqn.response_times().size(), 5000u);
    // Mean >= sum of mean demands along the chain: 2ms + 4ms + 2*8ms.
    EXPECT_GT(kooza::stats::mean(lqn.response_times()), 0.022);
    // Possession ordering: web holds through everything.
    EXPECT_GE(lqn.pool_utilization(web) + 0.02, lqn.pool_utilization(app));
}

TEST(Lqn, CycleRejected) {
    Engine eng;
    LqnModel lqn(eng, 15);
    const auto a = lqn.add_task("a", 1, std::make_shared<Deterministic>(0.0));
    const auto b = lqn.add_task("b", 1, std::make_shared<Deterministic>(0.0));
    lqn.add_call(a, b, 1.0);
    EXPECT_THROW(lqn.add_call(b, a, 1.0), std::invalid_argument);
    EXPECT_THROW(lqn.add_call(a, a, 1.0), std::invalid_argument);
}

TEST(Lqn, Validation) {
    Engine eng;
    LqnModel lqn(eng, 16);
    EXPECT_THROW(lqn.add_task("x", 1, nullptr), std::invalid_argument);
    const auto a = lqn.add_task("a", 1, std::make_shared<Deterministic>(0.0));
    EXPECT_THROW(lqn.add_call(a, 9, 1.0), std::invalid_argument);
    EXPECT_THROW(lqn.add_call(a, a, 0.0), std::invalid_argument);
    PoissonArrivals arr(1.0);
    Rng rng(17);
    EXPECT_THROW(lqn.drive(9, arr, 1, rng), std::invalid_argument);
    EXPECT_THROW((void)lqn.pool_utilization(9), std::invalid_argument);
}

}  // namespace
