// Tests for the replayer: structured vs independent modes, trace output,
// incast behaviour, and phase handling.
#include <gtest/gtest.h>

#include "core/replayer.hpp"
#include "stats/descriptive.hpp"
#include "trace/features.hpp"

namespace {

using namespace kooza::core;
using kooza::trace::IoType;

SyntheticRequest basic_read(double t) {
    SyntheticRequest r;
    r.time = t;
    r.type = IoType::kRead;
    r.network_bytes = 65536;
    r.cpu_busy_seconds = 0.0002;
    r.memory_bytes = 16384;
    r.memory_type = IoType::kRead;
    r.bank = 1;
    r.storage_bytes = 65536;
    r.storage_type = IoType::kRead;
    r.lbn = 4096;
    r.phases = {"net.rx",  "cpu.verify",    "mem.buffer",
                "disk.io", "cpu.aggregate", "net.tx"};
    return r;
}

SyntheticWorkload workload_of(std::vector<SyntheticRequest> rs) {
    SyntheticWorkload w;
    w.model_name = "test";
    w.requests = std::move(rs);
    return w;
}

TEST(Replayer, StructuredProducesFullTraces) {
    Replayer rep;
    const auto res = rep.replay(workload_of({basic_read(0.0)}));
    ASSERT_EQ(res.latencies.size(), 1u);
    EXPECT_GT(res.latencies[0], 0.0);
    EXPECT_EQ(res.traces.requests.size(), 1u);
    EXPECT_EQ(res.traces.storage.size(), 1u);
    EXPECT_EQ(res.traces.cpu.size(), 2u);  // verify + aggregate
    EXPECT_EQ(res.traces.memory.size(), 1u);
    EXPECT_EQ(res.traces.network.size(), 1u);  // read payload on net.tx
    EXPECT_EQ(res.unknown_phases, 0u);
}

TEST(Replayer, FeatureProjectionMatchesInput) {
    Replayer rep;
    const auto res = rep.replay(workload_of({basic_read(0.0)}));
    const auto fs = kooza::trace::extract_features(res.traces);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].network_bytes, 65536u);
    EXPECT_EQ(fs[0].storage_bytes, 65536u);
    EXPECT_EQ(fs[0].memory_bytes, 16384u);
    EXPECT_EQ(fs[0].first_lbn, 4096u);
    EXPECT_EQ(fs[0].first_bank, 1u);
}

TEST(Replayer, IndependentFasterThanStructured) {
    // Serial phases must take at least as long as the max single phase.
    std::vector<SyntheticRequest> rs;
    for (int i = 0; i < 50; ++i) rs.push_back(basic_read(double(i) * 0.05));
    Replayer rep;
    const auto structured = rep.replay(workload_of(rs), ReplayMode::kStructured);
    const auto independent = rep.replay(workload_of(rs), ReplayMode::kIndependent);
    EXPECT_LT(kooza::stats::mean(independent.latencies),
              kooza::stats::mean(structured.latencies));
}

TEST(Replayer, EmptyPhasesFallBackToIndependent) {
    auto r = basic_read(0.0);
    r.phases.clear();
    Replayer rep;
    const auto res = rep.replay(workload_of({r}), ReplayMode::kStructured);
    ASSERT_EQ(res.latencies.size(), 1u);
    EXPECT_GT(res.latencies[0], 0.0);
}

TEST(Replayer, UnknownPhasesCountedAndSkipped) {
    auto r = basic_read(0.0);
    r.phases = {"warp.drive", "disk.io"};
    Replayer rep;
    const auto res = rep.replay(workload_of({r}));
    EXPECT_EQ(res.unknown_phases, 1u);
    EXPECT_EQ(res.traces.storage.size(), 1u);
}

TEST(Replayer, WritePathRecordsRxPayload) {
    auto r = basic_read(0.0);
    r.type = IoType::kWrite;
    r.storage_type = IoType::kWrite;
    r.memory_type = IoType::kWrite;
    Replayer rep;
    const auto res = rep.replay(workload_of({r}));
    ASSERT_EQ(res.traces.network.size(), 1u);
    EXPECT_EQ(res.traces.network[0].direction,
              kooza::trace::NetworkRecord::Direction::kRx);
}

TEST(Replayer, ReplForwardUsesSecondServerDisk) {
    auto r = basic_read(0.0);
    r.type = IoType::kWrite;
    r.storage_type = IoType::kWrite;
    r.phases = {"net.rx", "disk.io", "repl.forward", "net.tx"};
    ReplayConfig cfg;
    cfg.n_servers = 2;
    Replayer rep(cfg);
    const auto res = rep.replay(workload_of({r}));
    EXPECT_EQ(res.traces.storage.size(), 2u);   // primary + replica write
    EXPECT_EQ(res.traces.network.size(), 2u);   // rx payload + forward
}

TEST(Replayer, MasterLookupPhaseSupported) {
    auto r = basic_read(0.0);
    r.phases.insert(r.phases.begin(), "master.lookup");
    Replayer rep;
    const auto res = rep.replay(workload_of({r}));
    EXPECT_EQ(res.unknown_phases, 0u);
}

TEST(Replayer, LbnAndBankClamped) {
    auto r = basic_read(0.0);
    r.lbn = ~0ull;  // beyond any disk
    r.bank = 1000;
    Replayer rep;
    EXPECT_NO_THROW(rep.replay(workload_of({r})));
}

TEST(Replayer, IncastDropsGrowWithFanIn) {
    // Many servers respond to one client at the same instant.
    auto run = [](std::size_t n_servers) {
        std::vector<SyntheticRequest> rs;
        for (std::size_t i = 0; i < n_servers; ++i) {
            auto r = basic_read(0.0);
            r.network_bytes = 256 << 10;
            r.phases = {"net.tx"};
            r.server = std::uint32_t(i);
            rs.push_back(r);
        }
        ReplayConfig cfg;
        cfg.n_servers = n_servers;
        cfg.net.buffer_frames = 8;
        cfg.net.retry_timeout = 0.05;
        Replayer rep(cfg);
        return rep.replay(workload_of(rs)).network_drops;
    };
    EXPECT_EQ(run(2), 0u);
    EXPECT_GT(run(64), 0u);
}

TEST(Replayer, Validation) {
    Replayer rep;
    EXPECT_THROW(rep.replay(SyntheticWorkload{}), std::invalid_argument);
    ReplayConfig bad;
    bad.n_servers = 0;
    EXPECT_THROW(Replayer{bad}, std::invalid_argument);
    ReplayConfig bad2;
    bad2.cpu_verify_fraction = 1.5;
    EXPECT_THROW(Replayer{bad2}, std::invalid_argument);
}

TEST(Replayer, RepeatedPhasesSplitTheByteBudget) {
    // A chunk-boundary write has two disk.io phases; the request's bytes
    // must be split across them, not executed twice.
    auto r = basic_read(0.0);
    r.type = IoType::kWrite;
    r.storage_type = IoType::kWrite;
    r.storage_bytes = 4 << 20;
    r.network_bytes = 4 << 20;
    r.memory_bytes = 256 << 10;
    r.phases = {"net.rx",  "net.rx",  "cpu.verify", "mem.buffer", "disk.io",
                "cpu.verify", "mem.buffer", "disk.io", "cpu.aggregate", "net.tx"};
    Replayer rep;
    const auto res = rep.replay(workload_of({r}));
    const auto fs = kooza::trace::extract_features(res.traces);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].storage_bytes, 4u << 20);   // 2 x 2 MB, not 2 x 4 MB
    EXPECT_EQ(fs[0].network_bytes, 4u << 20);
    EXPECT_EQ(fs[0].memory_bytes, 256u << 10);
    EXPECT_EQ(res.traces.storage.size(), 2u);
    EXPECT_EQ(res.traces.storage[0].size_bytes, 2u << 20);
}

TEST(Replayer, RepeatedCpuPhasesSplitBusyTime) {
    auto r = basic_read(0.0);
    r.cpu_busy_seconds = 0.004;
    r.phases = {"cpu.verify", "cpu.verify", "cpu.aggregate", "cpu.aggregate"};
    Replayer rep;  // verify fraction 0.4
    const auto res = rep.replay(workload_of({r}));
    const auto fs = kooza::trace::extract_features(res.traces);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_NEAR(fs[0].cpu_busy_seconds, 0.004, 1e-12);
    ASSERT_EQ(res.traces.cpu.size(), 4u);
    EXPECT_NEAR(res.traces.cpu[0].busy_seconds, 0.4 * 0.004 / 2.0, 1e-12);
    EXPECT_NEAR(res.traces.cpu[2].busy_seconds, 0.6 * 0.004 / 2.0, 1e-12);
}

TEST(Replayer, SinglePhaseKeepsFullBudget) {
    auto r = basic_read(0.0);
    r.phases = {"disk.io"};
    Replayer rep;
    const auto res = rep.replay(workload_of({r}));
    ASSERT_EQ(res.traces.storage.size(), 1u);
    EXPECT_EQ(res.traces.storage[0].size_bytes, 65536u);
}

TEST(Replayer, ReportsUtilizationAndDuration) {
    std::vector<SyntheticRequest> rs;
    for (int i = 0; i < 40; ++i) rs.push_back(basic_read(double(i) * 0.02));
    Replayer rep;
    const auto res = rep.replay(workload_of(rs));
    EXPECT_GT(res.duration, 0.0);
    EXPECT_GT(res.mean_disk_utilization, 0.0);
    EXPECT_LE(res.mean_disk_utilization, 1.0);
    EXPECT_GT(res.mean_cpu_utilization, 0.0);
    EXPECT_LE(res.mean_cpu_utilization, 1.0);
    // Disk dominates this workload.
    EXPECT_GT(res.mean_disk_utilization, res.mean_cpu_utilization);
}

TEST(Replayer, DeterministicAcrossRuns) {
    std::vector<SyntheticRequest> rs;
    for (int i = 0; i < 20; ++i) rs.push_back(basic_read(double(i) * 0.01));
    Replayer rep;
    const auto a = rep.replay(workload_of(rs));
    const auto b = rep.replay(workload_of(rs));
    ASSERT_EQ(a.latencies.size(), b.latencies.size());
    for (std::size_t i = 0; i < a.latencies.size(); ++i)
        EXPECT_DOUBLE_EQ(a.latencies[i], b.latencies[i]);
}

}  // namespace
