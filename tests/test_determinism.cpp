// Determinism regression tests for the parallel pipeline: every
// parallelized stage (Trainer, sharded Replayer, ClusterModel, SQS
// sampling) must produce bit-identical results at 1 vs N threads.
// Runs under TSan in the sanitizer tier (ctest -L tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/capture.hpp"
#include "core/generator.hpp"
#include "core/multiserver.hpp"
#include "core/replayer.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "gfs/cluster.hpp"
#include "par/pool.hpp"
#include "queueing/sqs.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;
using namespace kooza::core;

/// Restores the global pool size on scope exit so tests don't leak a
/// thread-count override into each other.
struct ThreadGuard {
    ~ThreadGuard() { par::set_threads(0); }
};

trace::TraceSet capture_micro(std::uint64_t seed, std::size_t count = 300) {
    gfs::GfsConfig cfg;
    gfs::Cluster cluster(cfg);
    sim::Rng rng(seed);
    workloads::MicroProfile profile({.count = count, .arrival_rate = 25.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    return cluster.traces();
}

TEST(CanonicalPhases, WriteDiffersFromRead) {
    const auto read = canonical_phases(trace::IoType::kRead);
    const auto write = canonical_phases(trace::IoType::kWrite);
    EXPECT_NE(read, write);  // the Fig. 1 write path is not the read path
    // Writes fan out to replicas between the primary disk write and the
    // ack; reads never touch the replication path.
    EXPECT_NE(std::find(write.begin(), write.end(), "repl.forward"), write.end());
    EXPECT_EQ(std::find(read.begin(), read.end(), "repl.forward"), read.end());
    // Both stay bracketed by the network round trip.
    ASSERT_FALSE(read.empty());
    ASSERT_FALSE(write.empty());
    EXPECT_EQ(read.front(), "net.rx");
    EXPECT_EQ(read.back(), "net.tx");
    EXPECT_EQ(write.front(), "net.rx");
    EXPECT_EQ(write.back(), "net.tx");
}

TEST(Determinism, TrainerByteIdenticalAcrossThreadCounts) {
    ThreadGuard guard;
    const auto ts = capture_micro(11);
    auto serialized = [&ts](std::size_t threads) {
        par::set_threads(threads);
        const auto model = Trainer({.workload_name = "det-test"}).train(ts);
        std::stringstream ss;
        save_model(model, ss);
        return ss.str();
    };
    const auto one = serialized(1);
    EXPECT_EQ(one, serialized(4));
    EXPECT_EQ(one, serialized(7));
}

TEST(Determinism, ShardedReplayIdenticalAcrossThreadCounts) {
    ThreadGuard guard;
    const auto ts = capture_micro(12);
    par::set_threads(1);
    const auto model = Trainer({.workload_name = "det-replay"}).train(ts);
    sim::Rng rng(5);
    auto workload = Generator(model).generate(400, rng);
    for (std::size_t i = 0; i < workload.requests.size(); ++i)
        workload.requests[i].server = std::uint32_t(i % 4);

    ReplayConfig rc;
    rc.n_servers = 4;
    rc.cpu_verify_fraction = model.cpu_verify_fraction();
    const Replayer replayer(rc);
    auto run = [&](std::size_t threads) {
        par::set_threads(threads);
        return replayer.replay_sharded(workload);
    };
    const auto a = run(1);
    const auto b = run(4);
    ASSERT_EQ(a.latencies.size(), b.latencies.size());
    for (std::size_t i = 0; i < a.latencies.size(); ++i)
        EXPECT_DOUBLE_EQ(a.latencies[i], b.latencies[i]) << "request " << i;
    EXPECT_EQ(a.network_drops, b.network_drops);
    EXPECT_EQ(a.network_timeouts, b.network_timeouts);
    EXPECT_EQ(a.unknown_phases, b.unknown_phases);
    EXPECT_DOUBLE_EQ(a.duration, b.duration);
    EXPECT_DOUBLE_EQ(a.mean_cpu_utilization, b.mean_cpu_utilization);
    EXPECT_DOUBLE_EQ(a.mean_disk_utilization, b.mean_disk_utilization);
    ASSERT_EQ(a.traces.requests.size(), b.traces.requests.size());
    for (std::size_t i = 0; i < a.traces.requests.size(); ++i) {
        EXPECT_EQ(a.traces.requests[i].request_id, b.traces.requests[i].request_id);
        EXPECT_DOUBLE_EQ(a.traces.requests[i].completion,
                         b.traces.requests[i].completion);
    }
}

TEST(Determinism, ClusterModelGenerateIdenticalAcrossThreadCounts) {
    ThreadGuard guard;
    const std::vector<trace::TraceSet> per_server{capture_micro(21, 150),
                                                  capture_micro(22, 150),
                                                  capture_micro(23, 150)};
    auto generate = [&](std::size_t threads) {
        par::set_threads(threads);
        const auto cluster = ClusterModel::train(per_server);
        sim::Rng rng(9);
        return cluster.generate(5.0, rng);
    };
    const auto a = generate(1);
    const auto b = generate(4);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    ASSERT_FALSE(a.requests.empty());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.requests[i].time, b.requests[i].time);
        EXPECT_EQ(a.requests[i].type, b.requests[i].type);
        EXPECT_EQ(a.requests[i].server, b.requests[i].server);
        EXPECT_EQ(a.requests[i].storage_bytes, b.requests[i].storage_bytes);
        EXPECT_EQ(a.requests[i].lbn, b.requests[i].lbn);
        EXPECT_EQ(a.requests[i].phases, b.requests[i].phases);
    }
}

TEST(Determinism, BinaryTraceFilesByteIdenticalAcrossThreadCounts) {
    // A fixed-seed capture written as kooza.trace/1 must produce
    // byte-identical .bin files at any thread count — the on-disk
    // extension of the existing trace/metrics determinism contract.
    namespace fs = std::filesystem;
    ThreadGuard guard;
    auto slurp = [](const fs::path& p) {
        std::ifstream f(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
    };
    auto capture_to = [&](std::size_t threads, const fs::path& dir) {
        par::set_threads(threads);
        fs::remove_all(dir);
        trace::write_binary(capture_micro(33), dir);
    };
    const auto dir_1 = fs::temp_directory_path() / "kooza_det_bin_t1";
    const auto dir_n = fs::temp_directory_path() / "kooza_det_bin_t8";
    capture_to(1, dir_1);
    capture_to(8, dir_n);
    for (const auto* stem : trace::kStreamStems) {
        const auto name = std::string(stem) + ".bin";
        const auto a = slurp(dir_1 / name);
        EXPECT_FALSE(a.empty()) << name;
        EXPECT_EQ(a, slurp(dir_n / name)) << name;
    }
    fs::remove_all(dir_1);
    fs::remove_all(dir_n);
}

TEST(Determinism, StreamedCaptureByteIdenticalToMaterialized) {
    // The tentpole contract of the streaming capture path: flushing
    // chunks while the simulation runs (CaptureOptions::stream) must lay
    // down the same seven .bin files as materializing the TraceSet and
    // writing it post-hoc — at 1 and at N threads, and with a chunk size
    // small enough to force many mid-run flushes.
    namespace fs = std::filesystem;
    ThreadGuard guard;
    auto slurp = [](const fs::path& p) {
        std::ifstream f(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
    };
    CaptureOptions opts;
    opts.profile = "micro";
    opts.count = 400;
    opts.rate = 50.0;
    opts.seed = 77;
    opts.n_servers = 5;
    opts.replication = 2;
    opts.fault_rate = 0.2;
    opts.mttr = 1.0;
    opts.format = trace::Format::kBinary;
    opts.chunk_records = 64;  // many flushes, not one big one

    const auto base = fs::temp_directory_path();
    const auto mat = base / "kooza_det_stream_mat";
    const auto st1 = base / "kooza_det_stream_t1";
    const auto st8 = base / "kooza_det_stream_t8";
    auto run_into = [&](const fs::path& dir, bool stream, std::size_t threads) {
        par::set_threads(threads);
        fs::remove_all(dir);
        auto o = opts;
        o.out_dir = dir.string();
        o.stream = stream;
        return core::run_capture(o);
    };
    const auto res_mat = run_into(mat, false, 1);
    const auto res_st1 = run_into(st1, true, 1);
    const auto res_st8 = run_into(st8, true, 8);
    EXPECT_GT(res_mat.records, 0u);
    EXPECT_EQ(res_mat.records, res_st1.records);
    EXPECT_EQ(res_mat.records, res_st8.records);
    for (const auto* stem : trace::kStreamStems) {
        const auto name = std::string(stem) + ".bin";
        const auto a = slurp(mat / name);
        EXPECT_FALSE(a.empty()) << name;
        EXPECT_EQ(a, slurp(st1 / name)) << name;
        EXPECT_EQ(a, slurp(st8 / name)) << name;
    }
    fs::remove_all(mat);
    fs::remove_all(st1);
    fs::remove_all(st8);
}

TEST(Determinism, ClosedLoopCaptureByteIdenticalAcrossThreadCounts) {
    // Closed-loop feedback (completion callbacks refill the client
    // windows) plus admission control plus faults — all of it runs on the
    // single-threaded engine, so the capture files must stay
    // byte-identical at 1 vs 8 threads in both capture modes, exactly
    // like the open-loop contract above.
    namespace fs = std::filesystem;
    ThreadGuard guard;
    auto slurp = [](const fs::path& p) {
        std::ifstream f(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
    };
    CaptureOptions opts;
    opts.closed_loop = true;
    opts.clients = 6;
    opts.outstanding = 3;
    opts.think_time = 0.002;
    opts.count = 400;
    opts.seed = 91;
    opts.n_servers = 3;
    opts.replication = 2;
    opts.fault_rate = 0.2;
    opts.mttr = 1.0;
    opts.admission = "queue";
    opts.format = trace::Format::kBinary;
    opts.chunk_records = 64;

    const auto base = fs::temp_directory_path();
    const auto mat = base / "kooza_det_closed_mat";
    const auto st1 = base / "kooza_det_closed_t1";
    const auto st8 = base / "kooza_det_closed_t8";
    auto run_into = [&](const fs::path& dir, bool stream, std::size_t threads) {
        par::set_threads(threads);
        fs::remove_all(dir);
        auto o = opts;
        o.out_dir = dir.string();
        o.stream = stream;
        return core::run_capture(o);
    };
    const auto res_mat = run_into(mat, false, 1);
    const auto res_st1 = run_into(st1, true, 1);
    const auto res_st8 = run_into(st8, true, 8);
    EXPECT_GT(res_mat.completed, 0u);
    EXPECT_GT(res_mat.records, 0u);
    EXPECT_EQ(res_mat.records, res_st1.records);
    EXPECT_EQ(res_mat.records, res_st8.records);
    EXPECT_EQ(res_st1.completed, res_st8.completed);
    EXPECT_EQ(res_st1.rejected, res_st8.rejected);
    EXPECT_EQ(res_st1.converged_tickets, res_st8.converged_tickets);
    for (const auto* stem : trace::kStreamStems) {
        const auto name = std::string(stem) + ".bin";
        const auto a = slurp(mat / name);
        EXPECT_FALSE(a.empty()) << name;
        EXPECT_EQ(a, slurp(st1 / name)) << name;
        EXPECT_EQ(a, slurp(st8 / name)) << name;
    }
    fs::remove_all(mat);
    fs::remove_all(st1);
    fs::remove_all(st8);
}

TEST(Determinism, ClosedLoopCsvIdenticalAcrossThreadCounts) {
    // CSV leg of the same contract: a materialized closed-loop capture
    // written as CSV must lay down identical text at any thread count.
    namespace fs = std::filesystem;
    ThreadGuard guard;
    auto slurp_dir = [](const fs::path& dir) {
        std::string all;
        std::vector<fs::path> files;
        for (const auto& e : fs::directory_iterator(dir)) files.push_back(e.path());
        std::sort(files.begin(), files.end());
        for (const auto& p : files) {
            std::ifstream f(p, std::ios::binary);
            all += p.filename().string();
            all += std::string(std::istreambuf_iterator<char>(f),
                               std::istreambuf_iterator<char>());
        }
        return all;
    };
    CaptureOptions opts;
    opts.scenario = "closedloop";
    opts.count = 300;
    opts.seed = 17;
    opts.n_servers = 2;
    opts.admission = "queue";
    opts.format = trace::Format::kCsv;
    auto run_into = [&](const fs::path& dir, std::size_t threads) {
        par::set_threads(threads);
        fs::remove_all(dir);
        auto o = opts;
        o.out_dir = dir.string();
        return core::run_capture(o);
    };
    const auto base = fs::temp_directory_path();
    const auto d1 = base / "kooza_det_closed_csv_t1";
    const auto d8 = base / "kooza_det_closed_csv_t8";
    const auto r1 = run_into(d1, 1);
    const auto r8 = run_into(d8, 8);
    EXPECT_GT(r1.completed, 0u);
    EXPECT_EQ(r1.completed, r8.completed);
    const auto a = slurp_dir(d1);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, slurp_dir(d8));
    fs::remove_all(d1);
    fs::remove_all(d8);
}

TEST(Determinism, SqsSamplingIdenticalAcrossThreadCounts) {
    ThreadGuard guard;
    std::vector<double> gaps, services;
    sim::Rng rng(3);
    stats::Exponential arrivals(50.0);
    stats::Exponential service(100.0);
    for (int i = 0; i < 500; ++i) {
        gaps.push_back(arrivals.sample(rng));
        services.push_back(service.sample(rng));
    }
    const auto model = queueing::SqsWorkloadModel::characterize(gaps, services);
    const queueing::SqsSimulator sim({.tasks_per_server = 500, .seed = 31});
    auto run = [&](std::size_t threads) {
        par::set_threads(threads);
        return sim.run(model, 256);
    };
    const auto a = run(1);
    const auto b = run(4);
    EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
    EXPECT_DOUBLE_EQ(a.ci_halfwidth, b.ci_halfwidth);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.servers_simulated, b.servers_simulated);
    EXPECT_EQ(a.tasks_simulated, b.tasks_simulated);
}

}  // namespace
