// Tests for the in-breadth and in-depth baseline models.
#include <gtest/gtest.h>

#include "baselines/inbreadth.hpp"
#include "baselines/indepth.hpp"
#include "core/trainer.hpp"
#include "gfs/cluster.hpp"
#include "stats/descriptive.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

namespace {

using kooza::baselines::InBreadthModel;
using kooza::baselines::InDepthModel;
using kooza::sim::Rng;
using kooza::trace::IoType;

kooza::trace::TraceSet simulate(std::size_t count, std::uint64_t seed) {
    kooza::gfs::GfsConfig cfg;
    kooza::gfs::Cluster cluster(cfg);
    Rng rng(seed);
    kooza::workloads::MicroProfile profile({.count = count, .arrival_rate = 20.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    return cluster.traces();
}

TEST(InBreadth, GeneratesWithoutStructure) {
    const auto ts = simulate(300, 1);
    const auto model = InBreadthModel::train(ts);
    Rng rng(2);
    const auto w = model.generate(200, rng);
    EXPECT_EQ(w.requests.size(), 200u);
    for (const auto& r : w.requests) EXPECT_TRUE(r.phases.empty());
    EXPECT_NE(w.model_name.find("in-breadth"), std::string::npos);
}

TEST(InBreadth, FeatureDistributionsPreserved) {
    const auto ts = simulate(400, 3);
    const auto model = InBreadthModel::train(ts);
    Rng rng(4);
    const auto w = model.generate(1000, rng);
    // Feature means track the original (the in-breadth strength).
    const auto orig = kooza::trace::extract_features(ts);
    double orig_sto = kooza::stats::mean(kooza::trace::column_storage_bytes(orig));
    double synth_sto = 0.0;
    for (const auto& r : w.requests) synth_sto += double(r.storage_bytes);
    synth_sto /= double(w.requests.size());
    EXPECT_NEAR(synth_sto, orig_sto, orig_sto * 0.15);
}

TEST(InBreadth, FewerParamsThanWithStructure) {
    const auto ts = simulate(200, 5);
    const auto model = InBreadthModel::train(ts);
    const auto full = kooza::core::Trainer().train(ts);
    EXPECT_LT(model.parameter_count(), full.parameter_count());
    EXPECT_FALSE(model.describe().empty());
}

TEST(InDepth, RequiresSpans) {
    auto ts = simulate(100, 6);
    ts.spans.clear();
    EXPECT_THROW(InDepthModel::train(ts), std::invalid_argument);
}

TEST(InDepth, StructureLearned) {
    const auto ts = simulate(300, 7);
    const auto model = InDepthModel::train(ts);
    EXPECT_TRUE(model.has_reads());
    EXPECT_TRUE(model.has_writes());
    const std::vector<std::string> fig1{"net.rx",  "cpu.verify",    "mem.buffer",
                                        "disk.io", "cpu.aggregate", "net.tx"};
    EXPECT_EQ(model.read_structure().dominant(), fig1);
}

TEST(InDepth, GeneratesConstantMeanFeatures) {
    const auto ts = simulate(300, 8);
    const auto model = InDepthModel::train(ts);
    Rng rng(9);
    const auto w = model.generate(500, rng);
    // All reads share identical feature values (means only).
    std::uint64_t first_read_size = 0;
    for (const auto& r : w.requests) {
        if (r.type != IoType::kRead) continue;
        if (first_read_size == 0)
            first_read_size = r.storage_bytes;
        else
            EXPECT_EQ(r.storage_bytes, first_read_size);
        EXPECT_FALSE(r.phases.empty());
    }
    EXPECT_GT(first_read_size, 0u);
}

TEST(InDepth, PredictLatenciesPlausible) {
    const auto ts = simulate(300, 10);
    const auto model = InDepthModel::train(ts);
    Rng rng(11);
    const auto lats = model.predict_latencies(500, rng);
    ASSERT_EQ(lats.size(), 500u);
    const auto orig = kooza::trace::extract_features(ts);
    const double orig_mean = kooza::stats::mean(kooza::trace::column_latency(orig));
    // Queueing-model prediction lands within 50% of truth (the paper's
    // point: decent timing, no feature fidelity).
    EXPECT_NEAR(kooza::stats::mean(lats), orig_mean, orig_mean * 0.5);
    EXPECT_THROW(model.predict_latencies(0, rng), std::invalid_argument);
}

TEST(InDepth, ReadFractionPreserved) {
    const auto ts = simulate(400, 12);
    const auto model = InDepthModel::train(ts);
    Rng rng(13);
    const auto w = model.generate(1000, rng);
    std::size_t reads = 0;
    for (const auto& r : w.requests)
        if (r.type == IoType::kRead) ++reads;
    EXPECT_NEAR(double(reads) / 1000.0, model.read_fraction(), 0.05);
}

TEST(InDepth, ParamCountSmallerThanInBreadth) {
    const auto ts = simulate(300, 14);
    const auto indepth = InDepthModel::train(ts);
    const auto inbreadth = InBreadthModel::train(ts);
    // The paper's "simplicity of the model" point: the queueing model is
    // far smaller than four annotated chains.
    EXPECT_LT(indepth.parameter_count(), inbreadth.parameter_count());
    EXPECT_FALSE(indepth.describe().empty());
}

TEST(InDepth, EmptyTraceThrows) {
    kooza::trace::TraceSet empty;
    EXPECT_THROW(InDepthModel::train(empty), std::invalid_argument);
}

}  // namespace
