// Tests for KS / chi-square tests and the special functions behind them.
#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/hypothesis.hpp"
#include "stats/special.hpp"

namespace {

using namespace kooza::stats;
using kooza::sim::Rng;

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto& x : xs) x = d.sample(rng);
    return xs;
}

TEST(Special, NormalCdfKnownValues) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Special, NormalQuantileInvertsCdf) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99})
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8);
    EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
    EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

TEST(Special, GammaPBoundaries) {
    EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
    EXPECT_NEAR(gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
    EXPECT_NEAR(gamma_p(2.0, 100.0), 1.0, 1e-10);
    EXPECT_NEAR(gamma_p(0.5, 0.5) + gamma_q(0.5, 0.5), 1.0, 1e-12);
    EXPECT_THROW((void)gamma_p(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(Special, KolmogorovSurvival) {
    EXPECT_DOUBLE_EQ(kolmogorov_survival(0.0), 1.0);
    EXPECT_NEAR(kolmogorov_survival(1.36), 0.05, 0.005);  // classic 5% point
    EXPECT_LT(kolmogorov_survival(3.0), 1e-6);
}

TEST(Special, ChiSquareSurvival) {
    // chi2(1): P(X > 3.841) ~ 0.05.
    EXPECT_NEAR(chi_square_survival(3.841, 1.0), 0.05, 0.002);
    EXPECT_DOUBLE_EQ(chi_square_survival(0.0, 3.0), 1.0);
}

TEST(KsTest, AcceptsTrueDistribution) {
    Exponential d(1.0);
    const auto r = ks_test(draw(d, 2000, 1), d);
    EXPECT_FALSE(r.reject(0.01));
    EXPECT_LT(r.statistic, 0.05);
}

TEST(KsTest, RejectsWrongDistribution) {
    Exponential truth(1.0);
    Normal wrong(1.0, 1.0);
    const auto r = ks_test(draw(truth, 2000, 2), wrong);
    EXPECT_TRUE(r.reject(0.01));
}

TEST(KsStatistic, ExactSmallSample) {
    // Sample {0.5} vs U(0,1): ECDF jumps 0 -> 1 at 0.5, so D = 0.5.
    Uniform u(0.0, 1.0);
    const std::vector<double> xs{0.5};
    EXPECT_DOUBLE_EQ(ks_statistic(xs, u), 0.5);
    EXPECT_THROW((void)ks_statistic({}, u), std::invalid_argument);
}

TEST(KsTwoSample, SameSourceAccepted) {
    Normal d(0.0, 1.0);
    const auto r = ks_test_two_sample(draw(d, 1500, 3), draw(d, 1500, 4));
    EXPECT_FALSE(r.reject(0.01));
}

TEST(KsTwoSample, ShiftedSourceRejected) {
    Normal a(0.0, 1.0), b(1.0, 1.0);
    const auto r = ks_test_two_sample(draw(a, 1500, 5), draw(b, 1500, 6));
    EXPECT_TRUE(r.reject(0.001));
}

TEST(KsTwoSample, IdenticalSamplesZeroStatistic) {
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(ks_statistic_two_sample(xs, xs), 0.0);
}

TEST(ChiSquare, AcceptsTrueDistribution) {
    Exponential d(2.0);
    const auto r = chi_square_test(draw(d, 3000, 7), d, 10, 1);
    EXPECT_FALSE(r.reject(0.01));
}

TEST(ChiSquare, RejectsWrongDistribution) {
    Exponential truth(2.0);
    Uniform wrong(0.0, 2.0);
    const auto r = chi_square_test(draw(truth, 3000, 8), wrong, 10, 0);
    EXPECT_TRUE(r.reject(0.001));
}

TEST(ChiSquare, ParameterValidation) {
    Exponential d(1.0);
    const std::vector<double> xs{1.0, 2.0};
    EXPECT_THROW((void)chi_square_test(xs, d, 1, 0), std::invalid_argument);
    EXPECT_THROW((void)chi_square_test(xs, d, 3, 2), std::invalid_argument);
    EXPECT_THROW((void)chi_square_test({}, d, 5, 0), std::invalid_argument);
}

}  // namespace
