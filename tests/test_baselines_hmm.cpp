// Tests for the Harrison-style HMM storage baseline, including the
// chunked-vs-materialized training byte-identity contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/hmm.hpp"
#include "gfs/cluster.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "trace/features.hpp"
#include "trace/io.hpp"
#include "workloads/profiles.hpp"

namespace {

namespace fs = std::filesystem;
using kooza::baselines::HmmConfig;
using kooza::baselines::HmmModel;
using kooza::sim::Rng;
using kooza::trace::IoType;

kooza::trace::TraceSet simulate(std::size_t count, std::uint64_t seed) {
    kooza::gfs::GfsConfig cfg;
    kooza::gfs::Cluster cluster(cfg);
    Rng rng(seed);
    kooza::workloads::WebSearchProfile profile(
        {.count = count, .arrival_rate = 25.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    return cluster.traces();
}

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag)
        : path(fs::temp_directory_path() /
               ("kooza_hmm_test_" + tag + "_" + std::to_string(::getpid()))) {
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

/// Exact (bitwise) model equality across every fitted parameter.
void expect_models_identical(const HmmModel& a, const HmmModel& b) {
    const std::pair<const kooza::markov::Echmm*, const kooza::markov::Echmm*>
        pairs[] = {{&a.interarrival_hmm(), &b.interarrival_hmm()},
                   {&a.size_hmm(), &b.size_hmm()}};
    for (const auto& [x, y] : pairs) {
        ASSERT_EQ(x->n_states(), y->n_states());
        EXPECT_EQ(x->training_log_likelihood(), y->training_log_likelihood());
        EXPECT_EQ(x->iterations_run(), y->iterations_run());
        for (std::size_t i = 0; i < x->n_states(); ++i) {
            EXPECT_EQ(x->emission_mean(i), y->emission_mean(i));
            EXPECT_EQ(x->emission_stddev(i), y->emission_stddev(i));
            EXPECT_EQ(x->initial()[i], y->initial()[i]);
            for (std::size_t j = 0; j < x->n_states(); ++j)
                EXPECT_EQ(x->transition(i, j), y->transition(i, j));
        }
    }
    EXPECT_EQ(a.read_fraction(), b.read_fraction());
    ASSERT_EQ(a.state_read_prob().size(), b.state_read_prob().size());
    for (std::size_t s = 0; s < a.state_read_prob().size(); ++s)
        EXPECT_EQ(a.state_read_prob()[s], b.state_read_prob()[s]);
    for (auto t : {IoType::kRead, IoType::kWrite}) {
        EXPECT_EQ(a.means(t).network_bytes, b.means(t).network_bytes);
        EXPECT_EQ(a.means(t).cpu_busy, b.means(t).cpu_busy);
        EXPECT_EQ(a.means(t).memory_bytes, b.means(t).memory_bytes);
        EXPECT_EQ(a.means(t).memory_type, b.means(t).memory_type);
        EXPECT_EQ(a.means(t).bank, b.means(t).bank);
        EXPECT_EQ(a.means(t).lbn, b.means(t).lbn);
        EXPECT_EQ(a.means(t).count, b.means(t).count);
    }
    EXPECT_EQ(a.parameter_count(), b.parameter_count());
    EXPECT_EQ(a.segments_fitted(), b.segments_fitted());
}

TEST(HmmBaseline, TrainsAndGenerates) {
    const auto ts = simulate(300, 1);
    const auto model = HmmModel::train(ts);
    EXPECT_EQ(model.interarrival_hmm().n_states(), 4u);
    EXPECT_EQ(model.size_hmm().n_states(), 4u);
    EXPECT_GT(model.parameter_count(), 0u);
    EXPECT_NE(model.describe().find("Harrison"), std::string::npos);

    Rng rng(2);
    const auto w = model.generate(400, rng);
    ASSERT_EQ(w.requests.size(), 400u);
    EXPECT_EQ(w.model_name, "hmm");
    double prev = 0.0;
    std::size_t reads = 0;
    for (const auto& r : w.requests) {
        EXPECT_GT(r.time, prev);  // arrivals strictly increase
        prev = r.time;
        EXPECT_TRUE(r.phases.empty());  // no structure information
        EXPECT_EQ(r.storage_type, r.type);
        if (r.type == IoType::kRead) ++reads;
    }
    // Request mix tracks the training trace.
    EXPECT_NEAR(double(reads) / 400.0, model.read_fraction(), 0.15);
}

TEST(HmmBaseline, SizeDistributionCaptured) {
    const auto ts = simulate(400, 3);
    const auto model = HmmModel::train(ts);
    Rng rng(4);
    const auto w = model.generate(1000, rng);
    const auto orig = kooza::trace::extract_features(ts);
    const auto orig_sizes = kooza::trace::column_storage_bytes(orig);
    std::vector<double> synth_sizes;
    for (const auto& r : w.requests) synth_sizes.push_back(double(r.storage_bytes));
    // The per-state Gaussians (in log2 space) reproduce the size marginal
    // far better than a single mean would; exactness is KOOZA's job.
    EXPECT_LT(kooza::stats::ks_statistic_two_sample(orig_sizes, synth_sizes), 0.35);
}

TEST(HmmBaseline, ArrivalRateCaptured) {
    const auto ts = simulate(400, 5);
    const auto model = HmmModel::train(ts);
    Rng rng(6);
    const auto w = model.generate(1000, rng);
    const auto orig = kooza::trace::extract_features(ts);
    const double orig_rate =
        double(orig.size() - 1) / (orig.back().arrival - orig.front().arrival);
    const double synth_rate =
        999.0 / (w.requests.back().time - w.requests.front().time);
    EXPECT_NEAR(synth_rate, orig_rate, orig_rate * 0.5);
}

TEST(HmmBaseline, ChunkedMatchesMaterialized) {
    const auto ts = simulate(350, 7);
    TempDir dir("chunked");
    kooza::trace::write_traces(ts, dir.path, kooza::trace::Format::kBinary);

    const auto ts_back = kooza::trace::read_traces(dir.path);
    const auto materialized = HmmModel::train(ts_back);
    // Tiny chunks force many read_rows batches per stream; the fitted
    // model must be byte-identical to the materialized one.
    const auto chunked = HmmModel::train_streaming(dir.path, {}, 64);
    expect_models_identical(materialized, chunked);

    // And chunk size must not matter.
    const auto chunked_large = HmmModel::train_streaming(dir.path, {}, 1 << 16);
    expect_models_identical(chunked, chunked_large);
}

TEST(HmmBaseline, StateCountConfigurable) {
    const auto ts = simulate(300, 8);
    HmmConfig two{.n_states = 2};
    HmmConfig eight{.n_states = 8};
    const auto m2 = HmmModel::train(ts, two);
    const auto m8 = HmmModel::train(ts, eight);
    EXPECT_EQ(m2.size_hmm().n_states(), 2u);
    EXPECT_EQ(m8.size_hmm().n_states(), 8u);
    // Configurability axis: parameter count grows with the state space.
    EXPECT_LT(m2.parameter_count(), m8.parameter_count());
}

TEST(HmmBaseline, SeededRestartsNeverWorse) {
    const auto ts = simulate(300, 9);
    HmmConfig one;
    HmmConfig four{.seed = 11, .n_restarts = 4};
    const auto m1 = HmmModel::train(ts, one);
    const auto m4 = HmmModel::train(ts, four);
    // Restart 0 is the deterministic init, so keep-best can only improve.
    EXPECT_GE(m4.size_hmm().training_log_likelihood(),
              m1.size_hmm().training_log_likelihood());
    EXPECT_GE(m4.interarrival_hmm().training_log_likelihood(),
              m1.interarrival_hmm().training_log_likelihood());
}

TEST(HmmBaseline, Validation) {
    kooza::trace::TraceSet empty;
    EXPECT_THROW(HmmModel::train(empty), std::invalid_argument);

    const auto ts = simulate(200, 10);
    HmmConfig bad_states{.n_states = 0};
    EXPECT_THROW(HmmModel::train(ts, bad_states), std::invalid_argument);
    HmmConfig bad_segment;
    bad_segment.segment_length = 1;
    EXPECT_THROW(HmmModel::train(ts, bad_segment), std::invalid_argument);

    const auto model = HmmModel::train(ts);
    Rng rng(11);
    EXPECT_THROW(model.generate(0, rng), std::invalid_argument);
    EXPECT_THROW(HmmModel::train_streaming("/nonexistent-kooza-capture"),
                 std::runtime_error);
    TempDir dir("validation");
    kooza::trace::write_traces(ts, dir.path, kooza::trace::Format::kBinary);
    EXPECT_THROW(HmmModel::train_streaming(dir.path, {}, 0),
                 std::invalid_argument);
}

}  // namespace
