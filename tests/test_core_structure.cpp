// Tests for the structure queue (KOOZA's time-dependencies model).
#include <gtest/gtest.h>

#include "core/structure.hpp"
#include "sim/rng.hpp"
#include "trace/span.hpp"

namespace {

using kooza::core::StructureQueue;
using kooza::sim::Rng;
using kooza::trace::Span;
using kooza::trace::SpanTracer;
using kooza::trace::TraceId;

// Build spans for `n` traces: 80% A->B->C, 20% A->C.
std::vector<Span> make_spans(std::size_t n) {
    SpanTracer t(1);
    for (TraceId id = 0; id < n; ++id) {
        const double base = double(id);
        const auto root = t.start_span(id, 0, "request", base);
        const auto a = t.start_span(id, root, "A", base + 0.0);
        t.end_span(a, base + 0.1);
        if (id % 5 != 0) {
            const auto b = t.start_span(id, root, "B", base + 0.1);
            t.end_span(b, base + 0.3);
        }
        const auto c = t.start_span(id, root, "C", base + 0.3);
        t.end_span(c, base + 0.4);
        t.end_span(root, base + 0.4);
    }
    return t.spans();
}

std::vector<TraceId> all_ids(std::size_t n) {
    std::vector<TraceId> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i;
    return ids;
}

TEST(StructureQueue, LearnsVariantsWithProbabilities) {
    const auto spans = make_spans(100);
    const auto q = StructureQueue::fit(spans, all_ids(100));
    ASSERT_EQ(q.variants().size(), 2u);
    EXPECT_EQ(q.dominant(), (std::vector<std::string>{"A", "B", "C"}));
    EXPECT_NEAR(q.variants()[0].probability, 0.8, 1e-9);
    EXPECT_NEAR(q.variants()[1].probability, 0.2, 1e-9);
    EXPECT_EQ(q.training_traces(), 100u);
}

TEST(StructureQueue, ExcludesRootSpan) {
    const auto q = StructureQueue::fit(make_spans(10), all_ids(10));
    for (const auto& v : q.variants())
        for (const auto& p : v.phases) EXPECT_NE(p, "request");
}

TEST(StructureQueue, SampleMatchesProbabilities) {
    const auto q = StructureQueue::fit(make_spans(100), all_ids(100));
    Rng rng(1);
    std::size_t with_b = 0;
    const std::size_t n = 5000;
    for (std::size_t i = 0; i < n; ++i)
        if (q.sample(rng).size() == 3) ++with_b;
    EXPECT_NEAR(double(with_b) / double(n), 0.8, 0.03);
}

TEST(StructureQueue, PhaseDurationsLearned) {
    const auto q = StructureQueue::fit(make_spans(100), all_ids(100));
    EXPECT_NEAR(q.phase_duration("A").mean(), 0.1, 0.01);
    EXPECT_NEAR(q.phase_duration("B").mean(), 0.2, 0.01);
    EXPECT_TRUE(q.has_phase("C"));
    EXPECT_FALSE(q.has_phase("Z"));
    EXPECT_THROW((void)q.phase_duration("Z"), std::out_of_range);
    EXPECT_EQ(q.phase_names().size(), 3u);
}

TEST(StructureQueue, FilterByTraceIds) {
    const auto spans = make_spans(100);
    // Only the A->C traces (ids divisible by 5).
    std::vector<TraceId> ids;
    for (TraceId id = 0; id < 100; id += 5) ids.push_back(id);
    const auto q = StructureQueue::fit(spans, ids);
    ASSERT_EQ(q.variants().size(), 1u);
    EXPECT_EQ(q.dominant(), (std::vector<std::string>{"A", "C"}));
}

TEST(StructureQueue, NoUsableTracesThrows) {
    const auto spans = make_spans(10);
    const std::vector<TraceId> none{999};
    EXPECT_THROW(StructureQueue::fit(spans, none), std::invalid_argument);
}

TEST(StructureQueue, CanonicalFallback) {
    const auto q = StructureQueue::canonical({"x", "y"});
    EXPECT_EQ(q.dominant(), (std::vector<std::string>{"x", "y"}));
    EXPECT_EQ(q.training_traces(), 0u);
    EXPECT_DOUBLE_EQ(q.phase_duration("x").mean(), 0.0);
    EXPECT_THROW(StructureQueue::canonical({}), std::invalid_argument);
}

TEST(StructureQueue, ParameterCountAndDescribe) {
    const auto q = StructureQueue::fit(make_spans(50), all_ids(50));
    EXPECT_GT(q.parameter_count(), 0u);
    EXPECT_NE(q.describe().find("variants"), std::string::npos);
}

}  // namespace
