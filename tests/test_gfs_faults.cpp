// Tests for the deterministic fault-injection subsystem and the failover
// correctness fixes that ride with it: seed-stable fault plans, master
// re-replication, exponential client backoff, location-cache demotion
// (the "pay the dead primary's timeout once" regression), disjoint
// chunk->LBN mapping, and the retries-exhausted network record.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/characterize.hpp"
#include "gfs/cluster.hpp"
#include "gfs/faults.hpp"
#include "hw/network.hpp"
#include "par/pool.hpp"
#include "trace/csv.hpp"
#include "workloads/profiles.hpp"

namespace {

namespace fs = std::filesystem;
using namespace kooza;
using namespace kooza::gfs;
using kooza::trace::FailureRecord;
using kooza::trace::IoType;

TEST(FaultPlan, DeterministicPerSeed) {
    FaultConfig cfg;
    cfg.mtbf = 5.0;
    cfg.mttr = 2.0;
    cfg.horizon = 50.0;
    const auto a = make_fault_plan(cfg, 4, 99);
    const auto b = make_fault_plan(cfg, 4, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].server, b[i].server);
        EXPECT_EQ(a[i].fail, b[i].fail);
    }
    // A different cluster seed produces a different schedule.
    const auto c = make_fault_plan(cfg, 4, 100);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].time != c[i].time || a[i].server != c[i].server;
    EXPECT_TRUE(differs);
    // An explicit FaultConfig::seed overrides the cluster seed.
    cfg.seed = 7;
    const auto d = make_fault_plan(cfg, 4, 99);
    const auto e = make_fault_plan(cfg, 4, 12345);
    ASSERT_EQ(d.size(), e.size());
    for (std::size_t i = 0; i < d.size(); ++i) EXPECT_DOUBLE_EQ(d[i].time, e[i].time);
}

TEST(FaultPlan, SortedAlternatingWithinHorizon) {
    FaultConfig cfg;
    cfg.mtbf = 3.0;
    cfg.mttr = 1.0;
    cfg.horizon = 40.0;
    const auto plan = make_fault_plan(cfg, 3, 42);
    ASSERT_FALSE(plan.empty());
    for (std::size_t i = 1; i < plan.size(); ++i)
        EXPECT_LE(plan[i - 1].time, plan[i].time);
    // Per server: strictly alternating crash/recover starting with a crash.
    for (std::uint32_t s = 0; s < 3; ++s) {
        bool expect_fail = true;
        for (const auto& ev : plan) {
            if (ev.server != s) continue;
            EXPECT_GT(ev.time, 0.0);
            EXPECT_LT(ev.time, cfg.horizon);
            EXPECT_EQ(ev.fail, expect_fail);
            expect_fail = !expect_fail;
        }
    }
    EXPECT_THROW((void)make_fault_plan(FaultConfig{.mtbf = 0.0}, 2, 1),
                 std::invalid_argument);
}

// The PR's headline regression: with location caching on, a client used to
// re-pay the dead primary's failover timeout on every request to the same
// chunk, because the cache was never updated (emplace on an existing key
// is a no-op). Demotion moves the dead primary to the back of the cached
// entry, so only the first request pays the wait.
TEST(FailoverRegression, CachedDeadPrimaryTimeoutPaidOnce) {
    GfsConfig cfg;
    cfg.n_chunkservers = 3;
    cfg.replication = 2;
    ASSERT_TRUE(cfg.client_caches_locations);
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);  // one chunk on servers {0, 1}
    cluster.server(0).set_failed(true);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.submit({.time = 5.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    ASSERT_EQ(cluster.completed(), 2u);
    // First request pays the timeout and fails over; the second goes
    // straight to the demoted entry's live head.
    EXPECT_GT(cluster.latencies().at(0), cfg.failover_timeout);
    EXPECT_LT(cluster.latencies().at(1), cfg.failover_timeout);
    EXPECT_EQ(cluster.failovers(), 1u);
    // The paid wait is in the failures stream.
    const auto ts = cluster.traces();
    ASSERT_EQ(ts.failures.size(), 1u);
    EXPECT_EQ(ts.failures[0].kind, FailureRecord::Kind::kFailover);
    EXPECT_EQ(ts.failures[0].server, 0u);
    EXPECT_DOUBLE_EQ(ts.failures[0].duration, cfg.failover_timeout);
}

TEST(FailoverRegression, BackoffGrowsAndCaps) {
    GfsConfig cfg;  // one server, replication 1, retry round re-lookup
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    cluster.server(0).set_failed(true);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.failed_requests(), 1u);
    const auto ts = cluster.traces();
    // Two failover waits (one per round) plus the terminal failure record.
    std::vector<double> waits;
    bool saw_failed = false;
    for (const auto& f : ts.failures) {
        if (f.kind == FailureRecord::Kind::kFailover) waits.push_back(f.duration);
        if (f.kind == FailureRecord::Kind::kRequestFailed) saw_failed = true;
    }
    ASSERT_EQ(waits.size(), 2u);
    EXPECT_DOUBLE_EQ(waits[0], cfg.failover_timeout);
    // Second attempt backs off: timeout * backoff^2 (the eviction round in
    // between also consumed a step), capped at failover_timeout_max.
    EXPECT_GT(waits[1], waits[0]);
    EXPECT_LE(waits[1], cfg.failover_timeout_max);
    EXPECT_TRUE(saw_failed);
}

TEST(FailoverRegression, ShrinkingBackoffFactorNeverShrinksTheWait) {
    // Regression for the backoff_wait hardening: with a backoff factor
    // <= 1 the old loop multiplied the wait smaller on every step,
    // silently turning "back off" into "retry faster and faster" (and
    // doing O(step) work to get there). The contract now: a non-growing
    // factor pins every wait at the base timeout (capped), so waits are
    // nondecreasing in the step for ANY factor.
    GfsConfig cfg;
    cfg.failover_backoff = 0.5;   // pathological: would shrink waits
    cfg.client_retry_rounds = 4;  // several rounds -> several backoff steps
    Cluster cluster(cfg);         // one server, replication 1
    cluster.create_file("f", 64ull << 20);
    cluster.server(0).set_failed(true);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.failed_requests(), 1u);
    const auto ts = cluster.traces();
    std::vector<double> waits;
    for (const auto& f : ts.failures)
        if (f.kind == FailureRecord::Kind::kFailover) waits.push_back(f.duration);
    ASSERT_GE(waits.size(), 2u);
    for (const auto w : waits) {
        EXPECT_DOUBLE_EQ(w, cfg.failover_timeout);  // pinned, never shrunk
        EXPECT_LE(w, cfg.failover_timeout_max);
    }
}

TEST(FailoverRegression, LargeBackoffManyRoundsStaysCapped) {
    // Aggressive growth with many retry rounds: every recorded wait must
    // respect the failover_timeout_max ceiling, and once the cap is hit
    // the waits stay there (the sequence is nondecreasing throughout).
    GfsConfig cfg;
    cfg.failover_backoff = 10.0;
    cfg.client_retry_rounds = 50;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    cluster.server(0).set_failed(true);
    cluster.submit({.time = 0.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.failed_requests(), 1u);
    const auto ts = cluster.traces();
    std::vector<double> waits;
    for (const auto& f : ts.failures)
        if (f.kind == FailureRecord::Kind::kFailover) waits.push_back(f.duration);
    ASSERT_GT(waits.size(), 2u);
    bool hit_cap = false;
    for (std::size_t i = 0; i < waits.size(); ++i) {
        EXPECT_LE(waits[i], cfg.failover_timeout_max) << i;
        if (i > 0) {
            EXPECT_GE(waits[i], waits[i - 1]) << i;
        }
        hit_cap = hit_cap || waits[i] == cfg.failover_timeout_max;
    }
    EXPECT_TRUE(hit_cap);  // 50 rounds of 10x growth must reach the ceiling
}

TEST(Repair, CrashTriggersReReplication) {
    GfsConfig cfg;
    cfg.n_chunkservers = 4;
    cfg.replication = 2;
    cfg.chunk_size = 1u << 20;
    Cluster cluster(cfg);
    cluster.create_file("f", 2u << 20);  // chunk0 -> {0,1}, chunk1 -> {1,2}
    cluster.inject_faults({FaultEvent{0.5, 0, true}});
    cluster.run();
    EXPECT_TRUE(cluster.master().server_down(0));
    ASSERT_NE(cluster.fault_injector(), nullptr);
    EXPECT_EQ(cluster.fault_injector()->crashes(), 1u);
    // Chunk 0 lost its replica on server 0 and was re-replicated.
    EXPECT_EQ(cluster.fault_injector()->repairs(), 1u);
    EXPECT_EQ(cluster.master().re_replications(), 1u);
    const auto& loc = cluster.master().chunks("f").at(0);
    EXPECT_EQ(std::count(loc.servers.begin(), loc.servers.end(), 0u), 0);
    EXPECT_EQ(loc.servers.size(), 2u);
    // Post-repair reads of the chunk never touch the dead server.
    cluster.submit({.time = 20.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 1u);
    EXPECT_LT(cluster.latencies().at(0), cfg.failover_timeout);
    // The repair itself is in the failures stream, with the copy traffic
    // tagged outside the client request-id space.
    const auto ts = cluster.traces();
    bool saw_repair = false;
    for (const auto& f : ts.failures)
        if (f.kind == FailureRecord::Kind::kRepair) {
            saw_repair = true;
            EXPECT_GE(f.request_id, kRepairRequestIdBase);
            EXPECT_GT(f.duration, 0.0);
        }
    EXPECT_TRUE(saw_repair);
}

TEST(Repair, RecoveryRestoresServerViaInjector) {
    GfsConfig cfg;  // one server, replication 1: no repair possible
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    cluster.inject_faults({FaultEvent{1.0, 0, true}, FaultEvent{3.0, 0, false}});
    cluster.submit({.time = 5.0, .file = "f", .offset = 0, .size = 4096,
                    .type = IoType::kRead});
    cluster.run();
    EXPECT_EQ(cluster.completed(), 1u);
    EXPECT_EQ(cluster.failed_requests(), 0u);
    EXPECT_FALSE(cluster.master().server_down(0));
    EXPECT_EQ(cluster.fault_injector()->crashes(), 1u);
    EXPECT_EQ(cluster.fault_injector()->recoveries(), 1u);
    const auto ts = cluster.traces();
    std::multiset<FailureRecord::Kind> kinds;
    for (const auto& f : ts.failures) kinds.insert(f.kind);
    EXPECT_EQ(kinds.count(FailureRecord::Kind::kCrash), 1u);
    EXPECT_EQ(kinds.count(FailureRecord::Kind::kRecover), 1u);
}

TEST(Lbn, DistinctChunksGetDisjointBlockRanges) {
    GfsConfig cfg;
    cfg.chunk_size = 1u << 20;  // 2048 blocks of 512 B per chunk
    Cluster cluster(cfg);
    cluster.create_file("f", 4u << 20);  // 4 chunks, all on the one server
    for (int c = 0; c < 4; ++c)
        cluster.submit({.time = double(c) * 0.1, .file = "f",
                        .offset = std::uint64_t(c) << 20, .size = 4096,
                        .type = IoType::kRead});
    cluster.run();
    const auto ts = cluster.traces();
    ASSERT_EQ(ts.storage.size(), 4u);
    const std::uint64_t blocks_per_chunk = cfg.chunk_size / cfg.disk.block_size;
    std::set<std::uint64_t> bases;
    for (const auto& r : ts.storage) {
        // Chunk-aligned base: the old mapping produced overlapping,
        // unaligned ranges once handles wrapped the disk.
        EXPECT_EQ(r.lbn % blocks_per_chunk, 0u);
        bases.insert(r.lbn / blocks_per_chunk);
    }
    EXPECT_EQ(bases.size(), 4u);
}

// Satellite fix: a transfer that exhausts its retries must still emit its
// NetworkRecord — the congested tail is exactly what incast models train
// on, and the give-up path used to drop it silently.
TEST(NetworkGiveUp, RetriesExhaustedStillEmitsRecord) {
    sim::Engine engine;
    trace::TraceSet sink;
    trace::MemorySink msink(sink);
    hw::SwitchParams p;
    p.bandwidth = 1e6;
    p.mtu = 1000;
    p.buffer_frames = 1;
    p.retry_timeout = 0.2;
    p.max_retries = 0;
    hw::SwitchPort port(engine, p, trace::NetworkRecord::Direction::kRx, &msink);
    int done = 0;
    for (int i = 0; i < 3; ++i)
        port.transfer(std::uint64_t(i), 10000, [&](double) { ++done; });
    engine.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(port.completed(), 3u);
    EXPECT_GE(port.timeouts(), 1u);
    ASSERT_EQ(sink.network.size(), 3u);  // give-up transfer included
    bool saw_pathological = false;
    for (const auto& r : sink.network)
        if (r.latency >= p.retry_timeout) saw_pathological = true;
    EXPECT_TRUE(saw_pathological);
}

TEST(FailureCsv, RoundTripsThroughDisk) {
    trace::TraceSet ts;
    ts.failures.push_back({0.5, 0, 2, FailureRecord::Kind::kCrash, 0.0});
    ts.failures.push_back({1.25, 17, 1, FailureRecord::Kind::kFailover, 0.5});
    ts.failures.push_back(
        {2.0, kRepairRequestIdBase, 3, FailureRecord::Kind::kRepair, 0.125});
    const auto dir = fs::temp_directory_path() / "kooza_failures_csv";
    fs::create_directories(dir);
    trace::write_csv(ts, dir.string());
    const auto back = trace::read_csv(dir.string());
    fs::remove_all(dir);
    ASSERT_EQ(back.failures.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(back.failures[i].time, ts.failures[i].time);
        EXPECT_EQ(back.failures[i].request_id, ts.failures[i].request_id);
        EXPECT_EQ(back.failures[i].server, ts.failures[i].server);
        EXPECT_EQ(back.failures[i].kind, ts.failures[i].kind);
        EXPECT_DOUBLE_EQ(back.failures[i].duration, ts.failures[i].duration);
    }
}

trace::TraceSet faulted_capture(std::uint64_t seed) {
    GfsConfig cfg;
    cfg.n_chunkservers = 4;
    cfg.replication = 2;
    cfg.seed = seed;
    cfg.faults.enabled = true;
    cfg.faults.mtbf = 8.0;
    cfg.faults.mttr = 3.0;
    cfg.faults.horizon = 25.0;
    Cluster cluster(cfg);
    sim::Rng rng(seed);
    workloads::MicroProfile profile({.count = 200, .arrival_rate = 10.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    return cluster.traces();
}

std::string slurp_dir(const fs::path& dir) {
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(dir)) files.push_back(e.path());
    std::sort(files.begin(), files.end());
    std::ostringstream all;
    for (const auto& f : files) {
        std::ifstream in(f, std::ios::binary);
        all << f.filename().string() << "\n" << in.rdbuf();
    }
    return all.str();
}

// DESIGN.md section 6 contract, extended to faults: the same seed yields
// the same fault plan and byte-identical trace CSVs at any thread count.
TEST(FaultDeterminism, TracesByteIdenticalAcrossThreadCounts) {
    struct ThreadGuard {
        ~ThreadGuard() { par::set_threads(0); }
    } guard;
    const auto base = fs::temp_directory_path();
    par::set_threads(1);
    const auto plan_1 = make_fault_plan({.mtbf = 8.0, .mttr = 3.0, .horizon = 25.0},
                                        4, 77);
    const auto dir_1 = base / "kooza_faults_det_t1";
    fs::create_directories(dir_1);
    trace::write_csv(faulted_capture(77), dir_1.string());

    par::set_threads(4);
    const auto plan_n = make_fault_plan({.mtbf = 8.0, .mttr = 3.0, .horizon = 25.0},
                                        4, 77);
    const auto dir_n = base / "kooza_faults_det_t4";
    fs::create_directories(dir_n);
    trace::write_csv(faulted_capture(77), dir_n.string());

    ASSERT_EQ(plan_1.size(), plan_n.size());
    for (std::size_t i = 0; i < plan_1.size(); ++i)
        EXPECT_DOUBLE_EQ(plan_1[i].time, plan_n[i].time);
    EXPECT_EQ(slurp_dir(dir_1), slurp_dir(dir_n));
    fs::remove_all(dir_1);
    fs::remove_all(dir_n);
}

TEST(Characterize, ReportsDegradedModeActivity) {
    GfsConfig cfg;
    cfg.n_chunkservers = 3;
    cfg.replication = 2;
    Cluster cluster(cfg);
    cluster.create_file("f", 64ull << 20);
    cluster.inject_faults({FaultEvent{0.05, 0, true}, FaultEvent{4.0, 0, false}});
    for (int i = 0; i < 8; ++i)
        cluster.submit({.time = 0.1 + double(i) * 0.2, .file = "f", .offset = 0,
                        .size = 4096, .type = IoType::kRead});
    cluster.run();
    const auto report = core::characterize(cluster.traces());
    EXPECT_EQ(report.crashes, 1u);
    EXPECT_EQ(report.recoveries, 1u);
    EXPECT_GE(report.failovers, 1u);
    EXPECT_GT(report.mean_failover_wait, 0.0);
    EXPECT_DOUBLE_EQ(report.request_success_rate, 1.0);
    EXPECT_NE(report.to_string().find("faults:"), std::string::npos);
    // A healthy capture keeps the section out of the report.
    Cluster healthy(GfsConfig{});
    healthy.create_file("f", 64ull << 20);
    for (int i = 0; i < 8; ++i)
        healthy.submit({.time = double(i) * 0.2, .file = "f", .offset = 0,
                        .size = 4096, .type = IoType::kRead});
    healthy.run();
    const auto clean = core::characterize(healthy.traces());
    EXPECT_EQ(clean.to_string().find("faults:"), std::string::npos);
}

// Satellite regression: the fault horizon used to be derived from the
// last arrival (`last + 1.0`), so any request whose service drained past
// that cutoff ran on an artificially fault-free cluster. With
// FaultConfig::horizon == 0 the injector follows the run to drain:
// crashes must keep landing while a slow tail request is still in
// flight, well past where the old horizon would have stopped.
TEST(FaultDrain, LazyFaultsFollowSlowTailPastOldHorizon) {
    GfsConfig cfg;
    cfg.n_chunkservers = 4;
    cfg.replication = 2;
    cfg.seed = 91;
    cfg.faults.enabled = true;
    cfg.faults.mtbf = 1.5;
    cfg.faults.mttr = 0.5;
    cfg.faults.horizon = 0.0;  // drain-following lazy mode
    Cluster cluster(cfg);
    cluster.create_file("f", 512ull << 20);
    // A few quick reads, then one 256 MB multi-chunk write whose transfer
    // alone keeps the cluster draining for a couple of simulated seconds
    // after the final arrival.
    for (int i = 0; i < 4; ++i)
        cluster.submit({.time = 0.1 * double(i + 1), .file = "f", .offset = 0,
                        .size = 4096, .type = IoType::kRead});
    const double last_arrival = 0.5;
    cluster.submit({.time = last_arrival, .file = "f", .offset = 64ull << 20,
                    .size = 256ull << 20, .type = IoType::kWrite});
    cluster.run();

    const double old_horizon = last_arrival + 1.0;
    EXPECT_GT(cluster.engine().now(), old_horizon);  // the tail really is slow
    ASSERT_NE(cluster.fault_injector(), nullptr);
    EXPECT_GT(cluster.fault_injector()->crashes(), 0u);
    const auto ts = cluster.traces();
    bool crash_past_old_horizon = false;
    for (const auto& f : ts.failures)
        if (f.kind == FailureRecord::Kind::kCrash && f.time > old_horizon)
            crash_past_old_horizon = true;
    EXPECT_TRUE(crash_past_old_horizon);
    // Every submitted request resolved one way or the other; the lazy
    // daemon chain itself never keeps the engine alive.
    EXPECT_EQ(cluster.completed() + cluster.failed_requests(), 5u);
}

}  // namespace
