// End-to-end integration tests: the paper's validation loop, the
// cross-examination ordering (KOOZA vs baselines), CSV round-trip through
// training, and the incast composition.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/inbreadth.hpp"
#include "baselines/indepth.hpp"
#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "core/trainer.hpp"
#include "core/validator.hpp"
#include "gfs/cluster.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "trace/csv.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;
using sim::Rng;
using trace::IoType;

gfs::GfsConfig default_cfg() { return gfs::GfsConfig{}; }

trace::TraceSet run_cluster(const workloads::Workload& w,
                            const gfs::GfsConfig& cfg = default_cfg()) {
    gfs::Cluster cluster(cfg);
    w.install(cluster);
    cluster.run();
    return cluster.traces();
}

core::ReplayConfig replay_cfg_for(const gfs::GfsConfig& cfg,
                                  double verify_fraction) {
    core::ReplayConfig r;
    r.disk = cfg.disk;
    r.cpu = cfg.cpu;
    r.memory = cfg.memory;
    r.net = cfg.net;
    r.cpu_verify_fraction = verify_fraction;
    return r;
}

TEST(Integration, Table2ScenarioFeaturesNearExact) {
    // The paper's validation: one 64 KB read and one 4 MB write, unloaded.
    // Train on repeated instances, generate, replay, compare per type.
    workloads::Workload train_w;
    train_w.files.emplace_back("validate.dat", 64ull << 20);
    for (int i = 0; i < 50; ++i) {
        train_w.requests.push_back({double(i), "validate.dat", 0, 64ull << 10,
                                    IoType::kRead, 0});
        train_w.requests.push_back({double(i) + 0.5, "validate.dat", 8ull << 20,
                                    4ull << 20, IoType::kWrite, 0});
    }
    const auto cfg = default_cfg();
    const auto ts = run_cluster(train_w, cfg);
    const auto model = core::Trainer({.workload_name = "table2"}).train(ts);
    Rng rng(1);
    const auto synth = core::Generator(model).generate(100, rng);
    core::Replayer replayer(replay_cfg_for(cfg, model.cpu_verify_fraction()));
    const auto replayed = replayer.replay(synth);

    // Table 2 compares per user-request type (one block for the 64 KB
    // read, one for the 4 MB write), so split both sides by type.
    auto by_type = [](const std::vector<trace::RequestFeatures>& fs, IoType t) {
        std::vector<trace::RequestFeatures> out;
        for (const auto& f : fs)
            if (f.storage_type == t) out.push_back(f);
        return out;
    };
    const auto orig = trace::extract_features(ts);
    const auto gen = trace::extract_features(replayed.traces);
    for (IoType t : {IoType::kRead, IoType::kWrite}) {
        const auto report = core::compare_features(
            by_type(orig, t), by_type(gen, t),
            t == IoType::kRead ? "table2-read" : "table2-write");
        // Deterministic request features must match almost exactly.
        EXPECT_LT(report.max_feature_variation(), 5.0) << report.to_table();
        // Latency in the paper deviates <= 6.6%; grant slack for load.
        EXPECT_LT(report.latency_variation(), 10.0) << report.to_table();
    }
}

TEST(Integration, KoozaBeatsInBreadthOnLatency) {
    Rng wl_rng(2);
    workloads::MicroProfile profile({.count = 400, .arrival_rate = 25.0});
    const auto w = profile.generate(wl_rng);
    const auto cfg = default_cfg();
    const auto ts = run_cluster(w, cfg);
    const auto orig = trace::extract_features(ts);
    const double orig_lat = stats::mean(trace::column_latency(orig));

    // KOOZA.
    const auto kooza_model = core::Trainer().train(ts);
    Rng g1(3);
    const auto kooza_w = core::Generator(kooza_model).generate(400, g1);
    core::Replayer replayer(replay_cfg_for(cfg, kooza_model.cpu_verify_fraction()));
    const double kooza_lat =
        stats::mean(replayer.replay(kooza_w, core::ReplayMode::kStructured).latencies);

    // In-breadth (no structure): independent stressing.
    const auto ib_model = baselines::InBreadthModel::train(ts);
    Rng g2(4);
    const auto ib_w = ib_model.generate(400, g2);
    const double ib_lat =
        stats::mean(replayer.replay(ib_w, core::ReplayMode::kIndependent).latencies);

    const double kooza_err = stats::variation_pct(kooza_lat, orig_lat);
    const double ib_err = stats::variation_pct(ib_lat, orig_lat);
    EXPECT_LT(kooza_err, ib_err);
    // In-breadth underestimates: parallel stressing cannot reproduce the
    // serialized request path.
    EXPECT_LT(ib_lat, orig_lat);
}

TEST(Integration, KoozaBeatsInDepthOnFeatures) {
    // Needs within-type size variance (lognormal web-search results), so
    // a per-type *mean* cannot summarize the distribution.
    Rng wl_rng(5);
    workloads::WebSearchProfile profile({.count = 400, .arrival_rate = 25.0});
    const auto ts = run_cluster(profile.generate(wl_rng));
    const auto orig = trace::extract_features(ts);

    const auto kooza_model = core::Trainer().train(ts);
    Rng g1(6);
    const auto kooza_w = core::Generator(kooza_model).generate(1000, g1);

    const auto id_model = baselines::InDepthModel::train(ts);
    Rng g2(7);
    const auto id_w = id_model.generate(1000, g2);

    // Compare feature *distributions* via two-sample KS on storage size.
    auto sizes_of = [](const core::SyntheticWorkload& w) {
        std::vector<double> out;
        for (const auto& r : w.requests) out.push_back(double(r.storage_bytes));
        return out;
    };
    const auto orig_sizes = trace::column_storage_bytes(orig);
    const double kooza_ks =
        stats::ks_statistic_two_sample(orig_sizes, sizes_of(kooza_w));
    const double id_ks = stats::ks_statistic_two_sample(orig_sizes, sizes_of(id_w));
    EXPECT_LT(kooza_ks, id_ks);
    // The in-depth model collapses the size distribution to two points, so
    // its KS distance to the real bimodal distribution is large.
    EXPECT_GT(id_ks, 0.3);
}

TEST(Integration, TrainingThroughCsvRoundTrip) {
    Rng wl_rng(8);
    workloads::MicroProfile profile({.count = 200, .arrival_rate = 25.0});
    const auto ts = run_cluster(profile.generate(wl_rng));
    const auto dir = std::filesystem::temp_directory_path() / "kooza_integration_csv";
    std::filesystem::remove_all(dir);
    trace::write_csv(ts, dir);
    const auto loaded = trace::read_csv(dir);
    std::filesystem::remove_all(dir);

    const auto m1 = core::Trainer().train(ts);
    const auto m2 = core::Trainer().train(loaded);
    EXPECT_DOUBLE_EQ(m1.read_fraction(), m2.read_fraction());
    EXPECT_EQ(m1.parameter_count(), m2.parameter_count());
    EXPECT_EQ(m1.reads().structure.dominant(), m2.reads().structure.dominant());
}

TEST(Integration, MultiServerIncastReproduced) {
    // Striped read across many chunkservers converging on one client:
    // the original system shows incast drops; a multi-server KOOZA replay
    // shows them too (paper Section 4's incast claim).
    gfs::GfsConfig cfg;
    cfg.n_chunkservers = 32;
    cfg.chunk_size = 256ull << 10;
    cfg.net.buffer_frames = 16;
    cfg.net.retry_timeout = 0.05;
    gfs::Cluster cluster(cfg);
    cluster.create_file("wide", 32ull << 20);
    // One big striped read: 8 MB over 32 chunks of 256 KB.
    cluster.submit({0.0, "wide", 0, 8ull << 20, IoType::kRead, 0});
    cluster.run();
    const auto ts = cluster.traces();
    ASSERT_EQ(ts.requests.size(), 1u);

    // Replay the same fan-in with the multi-server replayer.
    core::SyntheticWorkload w;
    w.model_name = "incast";
    for (int i = 0; i < 32; ++i) {
        core::SyntheticRequest r;
        r.time = 0.0;
        r.type = IoType::kRead;
        r.network_bytes = 256 << 10;
        r.storage_bytes = 256 << 10;
        r.memory_bytes = 64 << 10;
        r.cpu_busy_seconds = 1e-4;
        r.lbn = std::uint64_t(i) * 4096;
        r.phases = {"disk.io", "net.tx"};
        r.server = std::uint32_t(i);
        w.requests.push_back(r);
    }
    core::ReplayConfig rcfg = replay_cfg_for(cfg, 0.4);
    rcfg.n_servers = 32;
    core::Replayer rep(rcfg);
    const auto res = rep.replay(w);
    EXPECT_GT(res.network_drops, 0u);
}

TEST(Integration, ModelPortableAcrossServerConfigs) {
    // Applicability (paper Section 5): train once, replay on a different
    // server configuration to predict its latency; a faster disk must give
    // lower predicted latency.
    Rng wl_rng(9);
    workloads::MicroProfile profile({.count = 300, .arrival_rate = 20.0});
    const auto cfg = default_cfg();
    const auto ts = run_cluster(profile.generate(wl_rng), cfg);
    const auto model = core::Trainer().train(ts);
    Rng g(10);
    const auto synth = core::Generator(model).generate(300, g);

    auto latency_with_disk = [&](double transfer_rate) {
        auto rc = replay_cfg_for(cfg, model.cpu_verify_fraction());
        rc.disk.transfer_rate = transfer_rate;
        core::Replayer rep(rc);
        return stats::mean(rep.replay(synth).latencies);
    };
    EXPECT_LT(latency_with_disk(500e6), latency_with_disk(60e6));
}

}  // namespace
