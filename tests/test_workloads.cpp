// Tests for the workload profile generators.
#include <gtest/gtest.h>

#include <map>

#include "gfs/cluster.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza::workloads;
using kooza::sim::Rng;
using kooza::trace::IoType;

template <typename P>
Workload gen(const P& profile, std::uint64_t seed = 1) {
    Rng rng(seed);
    return profile.generate(rng);
}

void expect_within_files(const Workload& w) {
    std::map<std::string, std::uint64_t> sizes(w.files.begin(), w.files.end());
    for (const auto& r : w.requests) {
        auto it = sizes.find(r.file);
        ASSERT_NE(it, sizes.end()) << r.file;
        EXPECT_LE(r.offset + r.size, it->second) << r.file;
        EXPECT_GT(r.size, 0u);
        EXPECT_GE(r.time, 0.0);
    }
}

void expect_sorted(const Workload& w) {
    for (std::size_t i = 1; i < w.requests.size(); ++i)
        EXPECT_GE(w.requests[i].time, w.requests[i - 1].time);
}

TEST(Micro, GeneratesRequestedCount) {
    MicroProfile p({.count = 100});
    const auto w = gen(p);
    EXPECT_EQ(w.requests.size(), 100u);
    expect_within_files(w);
    expect_sorted(w);
}

TEST(Micro, SizesMatchTypes) {
    MicroProfile p({.count = 200, .read_size = 1024, .write_size = 2048});
    for (const auto& r : gen(p).requests) {
        if (r.type == IoType::kRead)
            EXPECT_EQ(r.size, 1024u);
        else
            EXPECT_EQ(r.size, 2048u);
    }
}

TEST(Micro, ReadFractionRespected) {
    MicroProfile p({.count = 2000, .read_fraction = 0.8});
    std::size_t reads = 0;
    for (const auto& r : gen(p).requests)
        if (r.type == IoType::kRead) ++reads;
    EXPECT_NEAR(double(reads) / 2000.0, 0.8, 0.05);
}

TEST(Micro, SequentialModeAdvances) {
    MicroProfile p({.count = 10, .read_fraction = 1.0, .sequential = true});
    const auto w = gen(p);
    for (std::size_t i = 1; i < w.requests.size(); ++i)
        EXPECT_GT(w.requests[i].offset, w.requests[i - 1].offset);
}

TEST(Micro, ArrivalRateApproximate) {
    MicroProfile p({.count = 2000, .arrival_rate = 50.0});
    const auto w = gen(p);
    const double span = w.requests.back().time - w.requests.front().time;
    EXPECT_NEAR(2000.0 / span, 50.0, 5.0);
}

TEST(Oltp, PageSizedAccesses) {
    OltpProfile p({.count = 500});
    const auto w = gen(p);
    expect_within_files(w);
    for (const auto& r : w.requests)
        EXPECT_TRUE(r.size == 4096 || r.size == 8192 || r.size == 16384);
}

TEST(Oltp, MostlyReads) {
    OltpProfile p({.count = 2000, .read_fraction = 0.7});
    std::size_t reads = 0;
    for (const auto& r : gen(p).requests)
        if (r.type == IoType::kRead) ++reads;
    EXPECT_NEAR(double(reads) / 2000.0, 0.7, 0.05);
}

TEST(Oltp, BurstyArrivals) {
    OltpProfile p({.count = 5000});
    const auto w = gen(p);
    std::vector<double> gaps;
    for (std::size_t i = 1; i < w.requests.size(); ++i)
        gaps.push_back(w.requests[i].time - w.requests[i - 1].time);
    // MMPP gaps have CV > 1 (Poisson would be ~1).
    double m = 0.0, s2 = 0.0;
    for (double g : gaps) m += g;
    m /= double(gaps.size());
    for (double g : gaps) s2 += (g - m) * (g - m);
    s2 /= double(gaps.size());
    EXPECT_GT(std::sqrt(s2) / m, 1.1);
}

TEST(WebSearch, ZipfPopularitySkew) {
    WebSearchProfile p({.count = 5000, .shards = 16});
    std::map<std::string, int> hits;
    for (const auto& r : gen(p).requests) ++hits[r.file];
    EXPECT_GT(hits["shard.0"], hits["shard.15"] * 2);
}

TEST(WebSearch, ReadDominant) {
    WebSearchProfile p({.count = 3000});
    std::size_t reads = 0;
    const auto w = gen(p);
    for (const auto& r : w.requests)
        if (r.type == IoType::kRead) ++reads;
    EXPECT_GT(double(reads) / double(w.requests.size()), 0.97);
    expect_within_files(w);
    expect_sorted(w);
}

TEST(Streaming, SequentialSegmentsPerSession) {
    StreamingProfile p({.sessions = 5, .mean_segments = 10});
    const auto w = gen(p);
    expect_within_files(w);
    expect_sorted(w);
    for (const auto& r : w.requests) EXPECT_EQ(r.type, IoType::kRead);
}

TEST(Streaming, SegmentsUniformSize) {
    StreamingProfile::Params params;
    params.sessions = 10;
    StreamingProfile p(params);
    for (const auto& r : gen(p).requests) EXPECT_EQ(r.size, params.segment);
}

TEST(LogAppend, AllAppendWrites) {
    LogAppendProfile p({.count = 300, .logs = 3});
    const auto w = gen(p);
    EXPECT_EQ(w.requests.size(), 300u);
    expect_sorted(w);
    for (const auto& r : w.requests) {
        EXPECT_TRUE(r.append);
        EXPECT_EQ(r.type, IoType::kWrite);
        EXPECT_GE(r.size, 512u);
    }
    EXPECT_EQ(w.files.size(), 3u);
}

TEST(LogAppend, RunsOnCluster) {
    kooza::gfs::GfsConfig cfg;
    kooza::gfs::Cluster cluster(cfg);
    LogAppendProfile p({.count = 100});
    gen(p).install(cluster);
    cluster.run();
    EXPECT_EQ(cluster.completed(), 100u);
    // The logs grew beyond their initial size.
    EXPECT_GT(cluster.master().file_size("log.0"), 1ull << 20);
}

TEST(Table2Workload, ExactPaperRequests) {
    const auto w = table2_validation_workload();
    ASSERT_EQ(w.requests.size(), 2u);
    EXPECT_EQ(w.requests[0].size, 64u << 10);
    EXPECT_EQ(w.requests[0].type, IoType::kRead);
    EXPECT_EQ(w.requests[1].size, 4u << 20);
    EXPECT_EQ(w.requests[1].type, IoType::kWrite);
    EXPECT_GT(w.requests[1].time, w.requests[0].time);
    expect_within_files(w);
}

TEST(Workload, InstallRunsOnCluster) {
    kooza::gfs::GfsConfig cfg;
    kooza::gfs::Cluster cluster(cfg);
    MicroProfile p({.count = 20});
    gen(p).install(cluster);
    cluster.run();
    EXPECT_EQ(cluster.completed(), 20u);
}

TEST(Workload, DeterministicPerSeed) {
    MicroProfile p({.count = 50});
    const auto a = gen(p, 9);
    const auto b = gen(p, 9);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.requests[i].time, b.requests[i].time);
        EXPECT_EQ(a.requests[i].offset, b.requests[i].offset);
    }
}

}  // namespace
