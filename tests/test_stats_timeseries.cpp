// Tests for autocorrelation, burstiness, self-similarity (Hurst) and
// stationarity — the stream-characterization toolkit.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "stats/timeseries.hpp"

namespace {

using namespace kooza::stats;
using kooza::sim::Rng;

TEST(Autocorrelation, IidIsNearZero) {
    Rng rng(1);
    std::vector<double> xs(5000);
    for (auto& x : xs) x = rng.uniform();
    const auto acf = autocorrelation(xs, 5);
    for (double a : acf) EXPECT_NEAR(a, 0.0, 0.05);
}

TEST(Autocorrelation, Ar1IsPositive) {
    Rng rng(2);
    std::vector<double> xs(5000);
    xs[0] = 0.0;
    for (std::size_t i = 1; i < xs.size(); ++i)
        xs[i] = 0.8 * xs[i - 1] + rng.normal(0.0, 1.0);
    const auto acf = autocorrelation(xs, 3);
    EXPECT_NEAR(acf[0], 0.8, 0.05);
    EXPECT_GT(acf[0], acf[1]);
    EXPECT_GT(acf[1], acf[2]);
}

TEST(Autocorrelation, ConstantSeriesZero) {
    const std::vector<double> xs(100, 3.0);
    for (double a : autocorrelation(xs, 3)) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(Autocorrelation, Validation) {
    const std::vector<double> xs{1.0, 2.0};
    EXPECT_THROW(autocorrelation(xs, 2), std::invalid_argument);
    EXPECT_THROW(autocorrelation({}, 1), std::invalid_argument);
    EXPECT_DOUBLE_EQ(autocorrelation_at(xs, 0), 1.0);
}

TEST(IndexOfDispersion, PoissonNearOne) {
    Rng rng(3);
    std::vector<double> arrivals;
    double t = 0.0;
    for (int i = 0; i < 20000; ++i) arrivals.push_back(t += rng.exponential(10.0));
    EXPECT_NEAR(index_of_dispersion(arrivals, 1.0), 1.0, 0.25);
}

TEST(IndexOfDispersion, BurstyExceedsOne) {
    Rng rng(4);
    std::vector<double> arrivals;
    double t = 0.0;
    // On/off: 1 s of 100/s bursts alternating with 9 s silence.
    for (int cycle = 0; cycle < 50; ++cycle) {
        const double start = double(cycle) * 10.0;
        t = start;
        while (t < start + 1.0) arrivals.push_back(t += rng.exponential(100.0));
    }
    EXPECT_GT(index_of_dispersion(arrivals, 1.0), 5.0);
}

TEST(PeakToMean, DetectsBursts) {
    std::vector<double> even, bursty;
    for (int i = 0; i < 100; ++i) even.push_back(double(i));
    for (int i = 0; i < 100; ++i) bursty.push_back(i < 90 ? 0.5 : double(i));
    EXPECT_NEAR(peak_to_mean(even, 10.0), 1.0, 0.2);
    EXPECT_GT(peak_to_mean(bursty, 10.0), 3.0);
}

TEST(Hurst, IidNearHalf) {
    Rng rng(5);
    std::vector<double> xs(4096);
    for (auto& x : xs) x = rng.normal(0.0, 1.0);
    EXPECT_NEAR(hurst_exponent(xs), 0.55, 0.12);  // R/S biases slightly high
}

TEST(Hurst, LongRangeDependentHigher) {
    // A slowly-wandering series (integrated noise) has H near 1.
    Rng rng(6);
    std::vector<double> xs(4096);
    double level = 0.0;
    for (auto& x : xs) x = (level += rng.normal(0.0, 1.0));
    EXPECT_GT(hurst_exponent(xs), 0.8);
}

TEST(Hurst, RequiresMinimumLength) {
    const std::vector<double> xs(16, 1.0);
    EXPECT_THROW((void)hurst_exponent(xs), std::invalid_argument);
}

TEST(Stationarity, StableSeriesLowDrift) {
    Rng rng(7);
    std::vector<double> xs(2000);
    for (auto& x : xs) x = rng.normal(10.0, 1.0);
    EXPECT_LT(stationarity_drift(xs, 4), 0.05);
}

TEST(Stationarity, TrendingSeriesHighDrift) {
    std::vector<double> xs(2000);
    for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = double(i);
    EXPECT_GT(stationarity_drift(xs, 4), 0.3);
}

TEST(Stationarity, Validation) {
    const std::vector<double> xs{1.0};
    EXPECT_THROW((void)stationarity_drift(xs, 2), std::invalid_argument);
    EXPECT_THROW((void)stationarity_drift(xs, 1), std::invalid_argument);
}

TEST(DominantPeriod, FindsSine) {
    std::vector<double> xs(1000);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = std::sin(2.0 * M_PI * double(i) / 50.0);
    EXPECT_EQ(dominant_period(xs, 10, 100), 50u);
}

TEST(DominantPeriod, NoiseGivesZero) {
    Rng rng(8);
    std::vector<double> xs(2000);
    for (auto& x : xs) x = rng.uniform();
    EXPECT_EQ(dominant_period(xs, 5, 50, 0.3), 0u);
}

TEST(DominantPeriod, Validation) {
    const std::vector<double> xs(100, 1.0);
    EXPECT_THROW((void)dominant_period(xs, 0, 10), std::invalid_argument);
    EXPECT_THROW((void)dominant_period(xs, 20, 10), std::invalid_argument);
    EXPECT_THROW((void)dominant_period(xs, 5, 100), std::invalid_argument);
}

}  // namespace
