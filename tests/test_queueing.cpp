// Tests for analytic queueing formulas, arrival processes, and the
// queueing-network simulator (validated against the analytic oracles).
#include <gtest/gtest.h>

#include <numeric>

#include "queueing/analytic.hpp"
#include "queueing/arrival.hpp"
#include "queueing/network.hpp"
#include "sim/engine.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace kooza::queueing;
using kooza::sim::Engine;
using kooza::sim::Rng;

TEST(Mm1, KnownValues) {
    // lambda=8, mu=10: rho=0.8, W=1/(mu-lambda)=0.5, L=4.
    const auto m = mm1(8.0, 10.0);
    EXPECT_NEAR(m.utilization, 0.8, 1e-12);
    EXPECT_NEAR(m.mean_response, 0.5, 1e-12);
    EXPECT_NEAR(m.mean_jobs, 4.0, 1e-9);
    EXPECT_NEAR(m.mean_wait, 0.4, 1e-12);
    EXPECT_NEAR(m.mean_queue_length, 3.2, 1e-9);
}

TEST(Mm1, UnstableRejected) {
    EXPECT_THROW((void)mm1(10.0, 10.0), std::invalid_argument);
    EXPECT_THROW((void)mm1(-1.0, 10.0), std::invalid_argument);
}

TEST(ErlangC, SingleServerEqualsRho) {
    // For c=1, P(wait) = rho.
    EXPECT_NEAR(erlang_c(6.0, 10.0, 1), 0.6, 1e-12);
}

TEST(ErlangC, MoreServersLessWaiting) {
    const double p2 = erlang_c(12.0, 10.0, 2);
    const double p4 = erlang_c(12.0, 10.0, 4);
    EXPECT_GT(p2, p4);
    EXPECT_THROW((void)erlang_c(30.0, 10.0, 2), std::invalid_argument);
}

TEST(Mmc, ReducesToMm1) {
    const auto a = mm1(8.0, 10.0);
    const auto b = mmc(8.0, 10.0, 1);
    EXPECT_NEAR(a.mean_response, b.mean_response, 1e-9);
    EXPECT_NEAR(a.mean_wait, b.mean_wait, 1e-9);
}

TEST(Mg1, ExponentialServiceMatchesMm1) {
    // M/G/1 with scv=1 is M/M/1.
    const auto a = mm1(8.0, 10.0);
    const auto b = mg1(8.0, 0.1, 1.0);
    EXPECT_NEAR(a.mean_wait, b.mean_wait, 1e-9);
}

TEST(Mg1, DeterministicServiceHalvesWait) {
    const auto exp_svc = mg1(8.0, 0.1, 1.0);
    const auto det_svc = mg1(8.0, 0.1, 0.0);
    EXPECT_NEAR(det_svc.mean_wait, exp_svc.mean_wait / 2.0, 1e-9);
    EXPECT_THROW((void)mg1(8.0, 0.2, 1.0), std::invalid_argument);  // rho = 1.6
}

TEST(PoissonArrivals, MeanRate) {
    PoissonArrivals p(50.0);
    EXPECT_DOUBLE_EQ(p.mean_rate(), 50.0);
    Rng rng(1);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += p.next_interarrival(rng);
    EXPECT_NEAR(double(n) / sum, 50.0, 1.5);
    EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
}

TEST(MmppArrivals, MeanRateFormula) {
    // pi0 = s1/(s0+s1) = 2/3: rate = (2/3)*10 + (1/3)*100 = 40.
    MmppArrivals m(10.0, 100.0, 1.0, 2.0);
    EXPECT_NEAR(m.mean_rate(), 40.0, 1e-12);
}

TEST(MmppArrivals, EmpiricalRateAndBurstiness) {
    MmppArrivals m(10.0, 200.0, 0.5, 2.0);
    Rng rng(2);
    std::vector<double> gaps(30000);
    for (auto& g : gaps) g = m.next_interarrival(rng);
    const double rate = double(gaps.size()) / std::accumulate(gaps.begin(), gaps.end(), 0.0);
    EXPECT_NEAR(rate, m.mean_rate(), m.mean_rate() * 0.1);
    // Burstier than Poisson: gap CV > 1.
    const auto s = kooza::stats::summarize(gaps);
    EXPECT_GT(s.cv(), 1.2);
}

TEST(DeterministicArrivals, ConstantGaps) {
    DeterministicArrivals d(4.0);
    Rng rng(3);
    EXPECT_DOUBLE_EQ(d.next_interarrival(rng), 0.25);
    EXPECT_DOUBLE_EQ(d.mean_rate(), 4.0);
}

TEST(TraceArrivals, CyclesThroughGaps) {
    TraceArrivals t({1.0, 2.0, 3.0});
    Rng rng(4);
    EXPECT_DOUBLE_EQ(t.next_interarrival(rng), 1.0);
    EXPECT_DOUBLE_EQ(t.next_interarrival(rng), 2.0);
    EXPECT_DOUBLE_EQ(t.next_interarrival(rng), 3.0);
    EXPECT_DOUBLE_EQ(t.next_interarrival(rng), 1.0);  // wraps
    t.reset();
    EXPECT_DOUBLE_EQ(t.next_interarrival(rng), 1.0);
    EXPECT_NEAR(t.mean_rate(), 0.5, 1e-12);
}

TEST(TraceArrivals, FromTimestamps) {
    const std::vector<double> ts{5.0, 1.0, 3.0};
    auto t = TraceArrivals::from_timestamps(ts);
    Rng rng(5);
    EXPECT_DOUBLE_EQ(t.next_interarrival(rng), 2.0);
    EXPECT_DOUBLE_EQ(t.next_interarrival(rng), 2.0);
    EXPECT_THROW(TraceArrivals(std::vector<double>{}), std::invalid_argument);
}

TEST(ArrivalProcess, CloneIsIndependent) {
    TraceArrivals t({1.0, 2.0});
    Rng rng(6);
    (void)t.next_interarrival(rng);
    auto c = t.clone();
    // Clone starts from the *current* cursor state of the original...
    // actually clone copies state; advancing one must not advance the other.
    const double a = t.next_interarrival(rng);
    const double b = c->next_interarrival(rng);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Network, Mm1MatchesAnalytic) {
    Engine eng;
    Network net(eng, 11);
    const auto st = net.add_station("srv", 1);
    std::vector<Hop> path;
    path.push_back(Hop{st, std::make_shared<kooza::stats::Exponential>(10.0)});
    const auto cls = net.add_class("jobs", std::move(path));
    PoissonArrivals arr(8.0);
    net.drive(cls, arr, 30000);
    eng.run();
    const auto& resp = net.response_times(cls);
    ASSERT_EQ(resp.size(), 30000u);
    const auto oracle = mm1(8.0, 10.0);
    EXPECT_NEAR(kooza::stats::mean(resp), oracle.mean_response,
                oracle.mean_response * 0.08);
    const auto rep = net.station_report(st);
    EXPECT_NEAR(rep.utilization, 0.8, 0.05);
    EXPECT_EQ(rep.completions, 30000u);
}

TEST(Network, TandemAddsResponseTimes) {
    Engine eng;
    Network net(eng, 12);
    const auto a = net.add_station("a", 1);
    const auto b = net.add_station("b", 1);
    std::vector<Hop> path;
    path.push_back(Hop{a, std::make_shared<kooza::stats::Exponential>(20.0)});
    path.push_back(Hop{b, std::make_shared<kooza::stats::Exponential>(20.0)});
    const auto cls = net.add_class("jobs", std::move(path));
    PoissonArrivals arr(10.0);
    net.drive(cls, arr, 20000);
    eng.run();
    // Jackson network: each station is M/M/1 with lambda=10, mu=20.
    const double expected = 2.0 * mm1(10.0, 20.0).mean_response;
    EXPECT_NEAR(kooza::stats::mean(net.response_times(cls)), expected,
                expected * 0.1);
    // Per-station sojourns match too.
    EXPECT_NEAR(kooza::stats::mean(net.station_sojourns(cls, a)),
                mm1(10.0, 20.0).mean_response, 0.02);
}

TEST(Network, MultiServerStationReducesWait) {
    auto run_with_servers = [](std::uint32_t servers) {
        Engine eng;
        Network net(eng, 13);
        const auto st = net.add_station("srv", servers);
        std::vector<Hop> path;
        path.push_back(Hop{st, std::make_shared<kooza::stats::Exponential>(10.0)});
        const auto cls = net.add_class("jobs", std::move(path));
        PoissonArrivals arr(15.0);
        net.drive(cls, arr, 10000);
        eng.run();
        return kooza::stats::mean(net.response_times(cls));
    };
    EXPECT_LT(run_with_servers(4), run_with_servers(2));
}

TEST(Network, Validation) {
    Engine eng;
    Network net(eng, 14);
    EXPECT_THROW(net.add_class("empty", {}), std::invalid_argument);
    std::vector<Hop> bad;
    bad.push_back(Hop{5, std::make_shared<kooza::stats::Exponential>(1.0)});
    EXPECT_THROW(net.add_class("bad", std::move(bad)), std::invalid_argument);
    std::vector<Hop> no_dist;
    no_dist.push_back(Hop{net.add_station("s", 1), nullptr});
    EXPECT_THROW(net.add_class("nodist", std::move(no_dist)), std::invalid_argument);
    EXPECT_THROW(net.submit(0), std::out_of_range);
}

TEST(RateEnvelope, DiurnalStaysWithinBand) {
    kooza::queueing::DiurnalEnvelope env(40.0, 0.8, 60.0);
    for (double t = 0.0; t < 240.0; t += 0.7) {
        EXPECT_GT(env.rate_at(t), 0.0);
        EXPECT_LE(env.rate_at(t), env.peak_rate() + 1e-12);
    }
    EXPECT_DOUBLE_EQ(env.peak_rate(), 40.0 * 1.8);
    EXPECT_DOUBLE_EQ(env.average_rate(), 40.0);
    // Quarter period with zero phase is the sine peak.
    EXPECT_NEAR(env.rate_at(15.0), env.peak_rate(), 1e-9);
    EXPECT_THROW(kooza::queueing::DiurnalEnvelope(40.0, 1.0, 60.0),
                 std::invalid_argument);
    EXPECT_THROW(kooza::queueing::DiurnalEnvelope(0.0, 0.5, 60.0),
                 std::invalid_argument);
}

TEST(RateEnvelope, SpikeWindowAndAverage) {
    kooza::queueing::SpikeEnvelope env(10.0, 8.0, 30.0, 3.0);
    EXPECT_DOUBLE_EQ(env.rate_at(1.0), 80.0);    // inside the spike window
    EXPECT_DOUBLE_EQ(env.rate_at(5.0), 10.0);    // outside
    EXPECT_DOUBLE_EQ(env.rate_at(31.0), 80.0);   // window recurs each period
    EXPECT_DOUBLE_EQ(env.peak_rate(), 80.0);
    // Duty cycle 0.1: average = base * (1 + 7 * 0.1).
    EXPECT_DOUBLE_EQ(env.average_rate(), 17.0);
    EXPECT_THROW(kooza::queueing::SpikeEnvelope(10.0, 0.5, 30.0, 3.0),
                 std::invalid_argument);
    EXPECT_THROW(kooza::queueing::SpikeEnvelope(10.0, 8.0, 30.0, 31.0),
                 std::invalid_argument);
}

TEST(ModulatedArrivals, DeterministicAndResettable) {
    using kooza::queueing::DiurnalEnvelope;
    using kooza::queueing::ModulatedArrivals;
    auto make = [] {
        return ModulatedArrivals(std::make_unique<DiurnalEnvelope>(40.0, 0.8, 60.0));
    };
    auto a = make();
    auto b = make();
    kooza::sim::Rng ra(9), rb(9);
    for (int i = 0; i < 200; ++i)
        EXPECT_DOUBLE_EQ(a.next_interarrival(ra), b.next_interarrival(rb)) << i;
    // reset() rewinds the envelope clock: the same RNG reproduces the run.
    a.reset();
    kooza::sim::Rng rc(9);
    auto c = make();
    kooza::sim::Rng rd(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(a.next_interarrival(rc), c.next_interarrival(rd)) << i;
}

TEST(ModulatedArrivals, ThinningTracksAverageRate) {
    using kooza::queueing::ModulatedArrivals;
    ModulatedArrivals arr(
        std::make_unique<kooza::queueing::SpikeEnvelope>(50.0, 4.0, 10.0, 1.0));
    EXPECT_DOUBLE_EQ(arr.mean_rate(), 65.0);
    kooza::sim::Rng rng(17);
    const int n = 20000;
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += arr.next_interarrival(rng);
    const double empirical = double(n) / total;
    // Lewis-Shedler thinning should land near the envelope's average rate.
    EXPECT_NEAR(empirical, arr.mean_rate(), 0.05 * arr.mean_rate());
    // Cloning preserves the envelope (and the current clock).
    auto clone = arr.clone();
    EXPECT_EQ(clone->describe(), arr.describe());
}

TEST(ThreeTier, BuildsAndRuns) {
    Engine eng;
    std::size_t cls = 0;
    ThreeTierConfig cfg;
    auto net = make_three_tier(eng, cfg, cls, 15);
    EXPECT_EQ(net->n_stations(), 3u);
    PoissonArrivals arr(50.0);
    net->drive(cls, arr, 5000);
    eng.run();
    ASSERT_EQ(net->response_times(cls).size(), 5000u);
    // Response must be at least the sum of mean services (no negative wait).
    const double floor = 0.0;
    for (double r : net->response_times(cls)) EXPECT_GT(r, floor);
    // DB tier (1 server, slowest) is the bottleneck.
    const auto db = net->station_report(2);
    const auto web = net->station_report(0);
    EXPECT_GT(db.utilization, web.utilization);
}

}  // namespace
