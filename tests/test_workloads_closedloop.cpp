// Conformance suite for the closed-loop path (ctest -L closedloop):
// ClosedLoopPool's draw contracts, the ticket-based AdmissionController's
// grant/queue/reject/probe behaviour, the closed-loop scenario table, the
// capture wiring (run_capture + submit-with-callback), and the
// interactive response-time law cross-check that anchors the whole loop
// to textbook queueing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/capture.hpp"
#include "core/characterize.hpp"
#include "gfs/admission.hpp"
#include "gfs/cluster.hpp"
#include "queueing/interactive.hpp"
#include "sim/engine.hpp"
#include "workloads/closedloop.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace kooza;

// ---------------------------------------------------------------------------
// ClosedLoopPool
// ---------------------------------------------------------------------------

TEST(ClosedLoopPool, ValidatesParams) {
    workloads::ClosedLoopParams p;
    p.clients = 0;
    EXPECT_THROW(workloads::ClosedLoopPool{p}, std::invalid_argument);
    p = {};
    p.outstanding = 0;
    EXPECT_THROW(workloads::ClosedLoopPool{p}, std::invalid_argument);
    p = {};
    p.think_time = -1.0;
    EXPECT_THROW(workloads::ClosedLoopPool{p}, std::invalid_argument);
    p = {};
    p.read_fraction = 1.5;
    EXPECT_THROW(workloads::ClosedLoopPool{p}, std::invalid_argument);
    p = {};
    p.files = 0;
    EXPECT_THROW(workloads::ClosedLoopPool{p}, std::invalid_argument);
    p = {};
    p.read_size = 0;
    EXPECT_THROW(workloads::ClosedLoopPool{p}, std::invalid_argument);
}

TEST(ClosedLoopPool, DrawContract) {
    workloads::ClosedLoopParams p;
    p.clients = 3;
    p.total = 50;
    p.think_time = 0.005;
    workloads::ClosedLoopPool pool(p);
    ASSERT_EQ(pool.files().size(), p.files);

    std::set<std::string> names;
    for (const auto& [name, size] : pool.files()) {
        names.insert(name);
        EXPECT_EQ(size, p.file_size);
    }

    std::size_t drawn = 0;
    double now = 0.0;
    while (auto spec = pool.next(drawn % p.clients, now)) {
        ++drawn;
        EXPECT_GE(spec->time, now);  // think time never goes backwards
        EXPECT_TRUE(names.count(spec->file)) << spec->file;
        EXPECT_EQ(spec->client, (drawn - 1) % p.clients);
        EXPECT_GT(spec->size, 0u);
        EXPECT_EQ(spec->offset % 4096, 0u);  // 4 KB aligned like MixGenerator
        EXPECT_LE(spec->offset + spec->size, p.file_size);
        now = spec->time;
    }
    EXPECT_EQ(drawn, p.total);  // the global budget is exact
    EXPECT_TRUE(pool.exhausted());
    EXPECT_FALSE(pool.next(0, now).has_value());  // stays exhausted
    EXPECT_THROW((void)pool.next(99, 0.0), std::out_of_range);
}

TEST(ClosedLoopPool, DeterministicPerClientStreams) {
    workloads::ClosedLoopParams p;
    p.clients = 4;
    p.total = 200;
    auto draw_all = [&p] {
        workloads::ClosedLoopPool pool(p);
        std::vector<gfs::RequestSpec> specs;
        for (std::size_t i = 0; i < p.total; ++i) {
            auto s = pool.next(std::uint32_t(i % p.clients), double(i) * 0.001);
            specs.push_back(*s);
        }
        return specs;
    };
    const auto a = draw_all();
    const auto b = draw_all();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].time, b[i].time) << i;
        EXPECT_EQ(a[i].file, b[i].file) << i;
        EXPECT_EQ(a[i].offset, b[i].offset) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].type, b[i].type) << i;
    }
    // Different clients draw from different shard streams: the interleaved
    // draw above must not equal a single client drawing everything.
    workloads::ClosedLoopPool solo(p);
    bool any_differ = false;
    for (std::size_t i = 0; i < p.total && !any_differ; ++i) {
        auto s = solo.next(0, double(i) * 0.001);
        any_differ = s->offset != a[i].offset || s->file != a[i].file;
    }
    EXPECT_TRUE(any_differ);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

gfs::AdmissionConfig static_cfg(std::uint32_t tickets, bool queue = true,
                               std::size_t queue_limit = 64) {
    gfs::AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.initial_tickets = tickets;
    cfg.min_tickets = tickets;
    cfg.max_tickets = tickets;
    cfg.probe_interval = 0.0;  // static: no probe loop
    cfg.queue = queue;
    cfg.queue_limit = queue_limit;
    return cfg;
}

TEST(AdmissionController, GrantsUpToTicketsThenQueuesFifo) {
    sim::Engine eng;
    gfs::AdmissionController adm(eng, 0, static_cfg(2));
    std::vector<int> ran;
    auto op = [&ran](int i) { return [&ran, i] { ran.push_back(i); }; };
    adm.admit(op(0), {});
    adm.admit(op(1), {});
    adm.admit(op(2), {});
    adm.admit(op(3), {});
    EXPECT_EQ(ran, (std::vector<int>{0, 1}));  // two tickets, two grants
    EXPECT_EQ(adm.in_flight(), 2u);
    EXPECT_EQ(adm.queue_depth(), 2u);
    adm.release();
    EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));  // FIFO head got the ticket
    adm.release();
    adm.release();
    adm.release();
    EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(adm.in_flight(), 0u);
    EXPECT_EQ(adm.admitted(), 4u);
    EXPECT_EQ(adm.completed(), 4u);
    EXPECT_EQ(adm.rejected(), 0u);
}

TEST(AdmissionController, RejectsPastQueueLimit) {
    sim::Engine eng;
    gfs::AdmissionController adm(eng, 0, static_cfg(1, /*queue=*/true,
                                                    /*queue_limit=*/1));
    int ran = 0, rejected = 0;
    auto op = [&ran] { ++ran; };
    auto rej = [&rejected] { ++rejected; };
    adm.admit(op, rej);  // granted
    adm.admit(op, rej);  // queued (limit 1)
    adm.admit(op, rej);  // bounced
    EXPECT_EQ(ran, 1);
    eng.run();  // the rejection is an engine event
    EXPECT_EQ(rejected, 1);
    EXPECT_EQ(adm.rejected(), 1u);
    // An empty on_reject cannot be bounced: it queues past the limit.
    adm.admit(op, {});
    EXPECT_EQ(adm.queue_depth(), 2u);
    adm.release();
    adm.release();
    adm.release();
    EXPECT_EQ(ran, 3);
}

TEST(AdmissionController, RejectPolicyBouncesInsteadOfQueueing) {
    sim::Engine eng;
    gfs::AdmissionController adm(eng, 0,
                                 static_cfg(1, /*queue=*/false));
    int ran = 0, rejected = 0;
    adm.admit([&ran] { ++ran; }, [&rejected] { ++rejected; });
    adm.admit([&ran] { ++ran; }, [&rejected] { ++rejected; });
    eng.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(rejected, 1);
    EXPECT_EQ(adm.queue_depth(), 0u);
}

TEST(AdmissionController, ProbeLoopDoesNotKeepEngineAlive) {
    // The probe chain is daemon events: an otherwise-idle engine must
    // terminate even though the controller would probe forever.
    sim::Engine eng;
    gfs::AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.probe_interval = 0.25;
    gfs::AdmissionController adm(eng, 0, cfg);
    int ran = 0;
    adm.admit([&ran] { ++ran; }, {});
    adm.release();
    eng.run();  // would hang forever if probes were live events
    EXPECT_EQ(ran, 1);
}

TEST(AdmissionController, ProbeConvergesToSmallestTicketCountWithinBand) {
    // Synthetic load where goodput saturates at exactly 3 tickets: a
    // "server" that completes min(tickets, 3) ops per probe window. The
    // controller must converge its best_tickets to the knee, not wander
    // to the ticket ceiling (within-band moves prefer fewer tickets).
    sim::Engine eng;
    gfs::AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.initial_tickets = 1;
    cfg.min_tickets = 1;
    cfg.max_tickets = 16;
    cfg.probe_interval = 1.0;
    cfg.hysteresis = 0.05;
    gfs::AdmissionController adm(eng, 0, cfg);

    // Each window: submit plenty of work; capacity 3/window regardless of
    // extra tickets. Model: per window, complete min(tickets, 3) ops.
    const int windows = 40;
    for (int w = 0; w < windows; ++w) {
        eng.schedule_at(double(w) + 0.5, [&adm] {
            const auto capacity = std::min<std::uint32_t>(adm.tickets(), 3);
            for (std::uint32_t i = 0; i < capacity; ++i) {
                bool granted = false;
                adm.admit([&granted] { granted = true; }, [] {});
                if (granted) adm.release();
            }
        });
    }
    eng.run();
    EXPECT_GT(adm.probes(), 10u);
    EXPECT_EQ(adm.best_tickets(), 3u)
        << "best goodput " << adm.best_goodput();
}

// ---------------------------------------------------------------------------
// Scenario table
// ---------------------------------------------------------------------------

TEST(ClosedLoopScenarios, TableIsConsistent) {
    const auto names = workloads::closed_loop_scenario_names();
    ASSERT_FALSE(names.empty());
    for (const auto& name : names) {
        EXPECT_TRUE(workloads::is_closed_loop_scenario(name)) << name;
        EXPECT_FALSE(workloads::describe_closed_loop_scenario(name).empty())
            << name;
        // Closed-loop recipes live outside the open-loop generator table.
        const auto open = workloads::scenario_names();
        EXPECT_EQ(std::find(open.begin(), open.end(), name), open.end()) << name;
        workloads::ScenarioParams sp;
        sp.count = 40;
        sp.seed = 7;
        const auto p = workloads::make_closed_loop_scenario(name, sp);
        EXPECT_EQ(p.total, 40u) << name;
        EXPECT_EQ(p.seed, 7u) << name;
        workloads::ClosedLoopPool pool(p);  // params must construct a pool
        EXPECT_FALSE(pool.files().empty()) << name;
    }
    EXPECT_FALSE(workloads::is_closed_loop_scenario("diurnal"));
    EXPECT_FALSE(workloads::is_closed_loop_scenario(""));
    EXPECT_THROW((void)workloads::make_closed_loop_scenario(
                     "no-such-scenario", workloads::ScenarioParams{}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Capture wiring
// ---------------------------------------------------------------------------

TEST(ClosedLoopCapture, RunsToBudgetAndReportsTails) {
    core::CaptureOptions co;
    co.closed_loop = true;
    co.clients = 4;
    co.outstanding = 2;
    co.think_time = 0.002;
    co.count = 120;
    co.seed = 5;
    const auto res = core::run_capture(co);
    EXPECT_EQ(res.completed, 120u);  // no faults, no admission: all finish
    EXPECT_EQ(res.failed, 0u);
    EXPECT_EQ(res.rejected, 0u);
    EXPECT_EQ(res.converged_tickets, 0u);  // admission off
    EXPECT_GT(res.duration, 0.0);
    EXPECT_GT(res.goodput, 0.0);
    ASSERT_EQ(res.latency.count, 120u);
    EXPECT_GT(res.latency.median, 0.0);
    EXPECT_GE(res.latency.p95, res.latency.median);
    EXPECT_GE(res.latency.p99, res.latency.p95);
    EXPECT_EQ(res.traces.requests.size(), 120u);
}

TEST(ClosedLoopCapture, ScenarioNameSwitchesClosedLoopOn) {
    core::CaptureOptions co;
    co.scenario = "closedloop";
    co.count = 80;
    co.seed = 9;
    const auto res = core::run_capture(co);
    EXPECT_EQ(res.completed, 80u);
    EXPECT_GT(res.goodput, 0.0);
}

TEST(ClosedLoopCapture, RejectPolicyShedsButAccountsEveryRequest) {
    core::CaptureOptions co;
    co.closed_loop = true;
    co.clients = 16;
    co.outstanding = 4;  // 64 offered against 1 ticket: must shed
    co.think_time = 0.0;
    co.count = 300;
    co.seed = 13;
    co.admission = "reject";
    co.admission_tickets = 1;
    const auto res = core::run_capture(co);
    EXPECT_GT(res.rejected, 0u);
    EXPECT_EQ(res.completed + res.failed, 300u);  // nothing vanishes
    EXPECT_GT(res.failed, 0u);  // rejections surface as failed requests
    // A request spanning several chunks can be bounced once per piece, so
    // rejections bound failures from above, not below.
    EXPECT_LE(res.failed, res.rejected);
    EXPECT_EQ(res.converged_tickets, 1u);  // pinned

    // Rejections flow through the failures stream into characterization —
    // checked on a gentler shed that still completes enough requests for
    // characterize()'s minimum.
    core::CaptureOptions gentle;
    gentle.closed_loop = true;
    gentle.clients = 8;
    gentle.outstanding = 1;
    gentle.think_time = 0.01;
    gentle.count = 200;
    gentle.seed = 14;
    gentle.admission = "reject";
    gentle.admission_tickets = 1;
    const auto res2 = core::run_capture(gentle);
    EXPECT_GT(res2.rejected, 0u);
    ASSERT_GE(res2.completed, 4u);
    const auto ch = core::characterize(res2.traces);
    EXPECT_EQ(ch.admission_rejections, res2.rejected);
    EXPECT_NE(ch.to_string().find("rejected by ticket admission"),
              std::string::npos);
}

TEST(ClosedLoopCapture, QueuePolicyCompletesEverythingUnderPressure) {
    core::CaptureOptions co;
    co.closed_loop = true;
    co.clients = 8;
    co.outstanding = 4;
    co.think_time = 0.0;
    co.count = 200;
    co.seed = 21;
    co.admission = "queue";
    co.admission_tickets = 2;
    const auto res = core::run_capture(co);
    // 32 offered vs 2 tickets: the overflow queues (limit 64 covers it),
    // so every request still completes — just slower.
    EXPECT_EQ(res.completed, 200u);
    EXPECT_EQ(res.rejected, 0u);
}

TEST(ClosedLoopCapture, RejectsConflictingOptions) {
    core::CaptureOptions co;
    co.closed_loop = true;
    co.model_file = "model.bin";
    EXPECT_THROW((void)core::run_capture(co), std::invalid_argument);
    co = {};
    co.closed_loop = true;
    co.replay_dir = "some/dir";
    EXPECT_THROW((void)core::run_capture(co), std::invalid_argument);
    co = {};
    co.closed_loop = true;
    co.scenario = "diurnal";  // open-loop scenario cannot close the loop
    EXPECT_THROW((void)core::run_capture(co), std::invalid_argument);
    co = {};
    co.admission = "drop-everything";
    EXPECT_THROW((void)core::run_capture(co), std::invalid_argument);
}

TEST(ClosedLoopCapture, SubmitCallbackReportsFailureAsNegativeLatency) {
    gfs::GfsConfig cfg;
    cfg.admission.enabled = true;
    cfg.admission.initial_tickets = 1;
    cfg.admission.min_tickets = 1;
    cfg.admission.max_tickets = 1;
    cfg.admission.probe_interval = 0.0;
    cfg.admission.queue = false;  // reject: the 2nd concurrent piece bounces
    gfs::Cluster cluster(cfg, 2);
    cluster.create_file("cb.dat", 1ull << 20);
    std::vector<double> latencies;
    auto submit = [&](double t, std::uint32_t client) {
        gfs::RequestSpec s;
        s.time = t;
        s.file = "cb.dat";
        s.size = 64ull << 10;
        s.client = client;
        cluster.submit(s, [&latencies](double l) { latencies.push_back(l); });
    };
    submit(0.0, 0);
    submit(0.0, 1);  // same instant: one admitted, one bounced
    cluster.run();
    ASSERT_EQ(latencies.size(), 2u);
    const auto negatives =
        std::count_if(latencies.begin(), latencies.end(),
                      [](double l) { return l < 0.0; });
    EXPECT_EQ(negatives, 1);
    EXPECT_EQ(cluster.rejected_requests(), 1u);
}

// ---------------------------------------------------------------------------
// Interactive response-time law
// ---------------------------------------------------------------------------

TEST(InteractiveLaw, AlgebraAndEdgeCases) {
    EXPECT_DOUBLE_EQ(queueing::interactive_response_time(10, 1.0, 5.0), 1.0);
    EXPECT_DOUBLE_EQ(queueing::interactive_response_time(10, 1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(queueing::interactive_response_time(1, 10.0, 1.0), 0.0);
    EXPECT_NEAR(queueing::interactive_throughput(10, 1.0, 1.0), 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(queueing::interactive_throughput(10, 0.0, 0.0), 0.0);
    // Bound: client-limited at small N, bottleneck-limited at large N.
    EXPECT_NEAR(queueing::closed_throughput_bound(1, 0.9, 0.1, 0.05), 1.0, 1e-12);
    EXPECT_NEAR(queueing::closed_throughput_bound(100, 0.9, 0.1, 0.05), 20.0,
                1e-12);
    EXPECT_NEAR(queueing::saturation_population(0.9, 0.1, 0.05), 20.0, 1e-12);
    EXPECT_DOUBLE_EQ(queueing::saturation_population(0.9, 0.1, 0.0), 0.0);
}

TEST(InteractiveLaw, ClosedLoopCaptureObeysResponseTimeLaw) {
    // Window 1 means the capture IS the law's closed system: N clients,
    // think Z, measured X. R = N/X - Z is exact in steady state; startup
    // and drain edges leave a few percent, so assert a generous band.
    core::CaptureOptions co;
    co.closed_loop = true;
    co.clients = 6;
    co.outstanding = 1;
    co.think_time = 0.005;
    co.count = 600;
    co.seed = 3;
    const auto res = core::run_capture(co);
    ASSERT_GT(res.goodput, 0.0);
    ASSERT_GT(res.latency.mean, 0.0);
    const double law = queueing::interactive_response_time(
        co.clients, co.think_time, res.goodput);
    EXPECT_NEAR(law, res.latency.mean, 0.25 * res.latency.mean)
        << "N=" << co.clients << " X=" << res.goodput << " Z=" << co.think_time;
}

}  // namespace
