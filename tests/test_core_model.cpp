// Tests for the KOOZA trainer, ServerModel, generator and validator.
#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "core/trainer.hpp"
#include "core/validator.hpp"
#include "gfs/cluster.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza::core;
using kooza::sim::Rng;
using kooza::trace::IoType;

kooza::trace::TraceSet simulate_micro(std::size_t count, std::uint64_t seed,
                                      double read_fraction = 0.5) {
    kooza::gfs::GfsConfig cfg;
    kooza::gfs::Cluster cluster(cfg);
    Rng rng(seed);
    kooza::workloads::MicroProfile profile(
        {.count = count, .arrival_rate = 20.0, .read_fraction = read_fraction});
    profile.generate(rng).install(cluster);
    cluster.run();
    return cluster.traces();
}

TEST(Trainer, LearnsReadFraction) {
    const auto ts = simulate_micro(300, 1, 0.7);
    const auto model = Trainer({.workload_name = "m"}).train(ts);
    EXPECT_NEAR(model.read_fraction(), 0.7, 0.08);
    EXPECT_TRUE(model.has_reads());
    EXPECT_TRUE(model.has_writes());
    EXPECT_EQ(model.workload_name(), "m");
}

TEST(Trainer, PoissonArrivalsRecognized) {
    const auto ts = simulate_micro(400, 2);
    const auto model = Trainer().train(ts);
    EXPECT_NE(model.arrivals().describe().find("poisson"), std::string::npos);
    EXPECT_NEAR(model.arrivals().mean_rate(), 20.0, 3.0);
}

TEST(Trainer, StateSpaceSizesFromConfig) {
    const auto ts = simulate_micro(200, 3);
    TrainerConfig cfg;
    cfg.lbn_ranges = 8;
    cfg.util_levels = 6;
    const auto model = Trainer(cfg).train(ts);
    EXPECT_EQ(model.lbn_states().n_states(), 8u);
    EXPECT_EQ(model.util_states().n_states(), 6u);
    // Banks inferred from the simulator's 4-bank memory.
    EXPECT_EQ(model.bank_states().n_states(), 4u);
}

TEST(Trainer, StructureLearnedPerType) {
    const auto ts = simulate_micro(300, 4);
    const auto model = Trainer().train(ts);
    // Dominant read structure is the Fig. 1 path.
    const auto& seq = model.reads().structure.dominant();
    const std::vector<std::string> fig1{"net.rx",  "cpu.verify",    "mem.buffer",
                                        "disk.io", "cpu.aggregate", "net.tx"};
    EXPECT_EQ(seq, fig1);
    EXPECT_EQ(model.writes().structure.dominant(), fig1);
}

TEST(Trainer, VerifyFractionLearned) {
    const auto ts = simulate_micro(300, 5);
    const auto model = Trainer().train(ts);
    EXPECT_GT(model.cpu_verify_fraction(), 0.1);
    EXPECT_LT(model.cpu_verify_fraction(), 0.9);
}

TEST(Trainer, FallbackStructureWhenNoSpans) {
    auto ts = simulate_micro(200, 6);
    ts.spans.clear();
    const auto model = Trainer().train(ts);
    EXPECT_EQ(model.reads().structure.training_traces(), 0u);  // canonical
    EXPECT_FALSE(model.reads().structure.dominant().empty());
}

TEST(Trainer, NoFallbackThrowsWithoutSpans) {
    auto ts = simulate_micro(100, 7);
    ts.spans.clear();
    TrainerConfig cfg;
    cfg.fallback_structure = false;
    EXPECT_THROW(Trainer(cfg).train(ts), std::invalid_argument);
}

TEST(Trainer, EmptyTraceThrows) {
    kooza::trace::TraceSet empty;
    EXPECT_THROW(Trainer().train(empty), std::invalid_argument);
}

TEST(Trainer, SingleTypeWorkload) {
    const auto ts = simulate_micro(150, 8, 1.0);  // all reads
    const auto model = Trainer().train(ts);
    EXPECT_TRUE(model.has_reads());
    EXPECT_FALSE(model.has_writes());
    EXPECT_THROW((void)model.writes(), std::logic_error);
    EXPECT_DOUBLE_EQ(model.read_fraction(), 1.0);
}

TEST(Model, ParameterCountPositiveAndDescribed) {
    const auto ts = simulate_micro(200, 9);
    const auto model = Trainer().train(ts);
    EXPECT_GT(model.parameter_count(), 10u);
    const auto text = model.describe();
    EXPECT_NE(text.find("arrivals"), std::string::npos);
    EXPECT_NE(text.find("read structure"), std::string::npos);
}

TEST(Generator, CountAndArrivalSpacing) {
    const auto ts = simulate_micro(300, 10);
    const auto model = Trainer().train(ts);
    Rng rng(11);
    const auto w = Generator(model).generate(500, rng);
    ASSERT_EQ(w.requests.size(), 500u);
    for (std::size_t i = 1; i < w.requests.size(); ++i)
        EXPECT_GE(w.requests[i].time, w.requests[i - 1].time);
    const double span = w.requests.back().time - w.requests.front().time;
    EXPECT_NEAR(500.0 / span, 20.0, 4.0);
}

TEST(Generator, FeaturesMatchTrainingMixture) {
    const auto ts = simulate_micro(400, 12);
    const auto model = Trainer().train(ts);
    Rng rng(13);
    const auto w = Generator(model).generate(1000, rng);
    std::size_t reads = 0;
    for (const auto& r : w.requests) {
        if (r.type == IoType::kRead) {
            ++reads;
            EXPECT_NEAR(double(r.storage_bytes), 65536.0, 65536.0 * 0.2);
        } else {
            EXPECT_NEAR(double(r.storage_bytes), double(4 << 20),
                        double(4 << 20) * 0.2);
            EXPECT_EQ(r.memory_type, IoType::kWrite);
        }
        EXPECT_FALSE(r.phases.empty());
        EXPECT_GE(r.cpu_busy_seconds, 0.0);
        EXPECT_GT(r.network_bytes, 0u);
    }
    EXPECT_NEAR(double(reads) / 1000.0, model.read_fraction(), 0.05);
}

TEST(Generator, DeterministicBySeed) {
    const auto ts = simulate_micro(200, 14);
    const auto model = Trainer().train(ts);
    Rng a(15), b(15);
    const auto wa = Generator(model).generate(100, a);
    const auto wb = Generator(model).generate(100, b);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(wa.requests[i].time, wb.requests[i].time);
        EXPECT_EQ(wa.requests[i].storage_bytes, wb.requests[i].storage_bytes);
    }
}

TEST(Generator, ZeroCountRejected) {
    const auto ts = simulate_micro(100, 16);
    const auto model = Trainer().train(ts);
    Rng rng(17);
    EXPECT_THROW(Generator(model).generate(0, rng), std::invalid_argument);
}

TEST(Validator, SingleRequestRows) {
    kooza::trace::RequestFeatures a, b;
    a.network_bytes = 65536;
    b.network_bytes = 65536;
    a.cpu_utilization = 0.021;
    b.cpu_utilization = 0.023;
    a.latency = 0.0114;
    b.latency = 0.01185;
    const auto rep = compare_single(a, b, "1st User Request");
    EXPECT_EQ(rep.rows.size(), 7u);
    EXPECT_DOUBLE_EQ(rep.rows[0].variation_pct, 0.0);  // network size exact
    EXPECT_NEAR(rep.latency_variation(), 3.947, 0.01);
    EXPECT_NE(rep.to_table().find("1st User Request"), std::string::npos);
}

TEST(Validator, AggregateComparison) {
    const auto ts = simulate_micro(200, 18);
    const auto fs = kooza::trace::extract_features(ts);
    const auto rep = compare_features(fs, fs, "self");
    EXPECT_DOUBLE_EQ(rep.max_feature_variation(), 0.0);
    EXPECT_DOUBLE_EQ(rep.latency_variation(), 0.0);
}

TEST(Validator, TailRowsMakeQuantilesAndGoodputFirstClass) {
    const auto ts = simulate_micro(200, 18);
    const auto fs = kooza::trace::extract_features(ts);
    const auto rep = compare_features(fs, fs, "tails");
    auto find_row = [&rep](const std::string& metric) -> const MetricRow* {
        for (const auto& r : rep.rows)
            if (r.metric == metric) return &r;
        return nullptr;
    };
    const auto* p50 = find_row("Latency p50");
    const auto* p95 = find_row("Latency p95");
    const auto* p99 = find_row("Latency p99");
    const auto* goodput = find_row("Goodput");
    ASSERT_NE(p50, nullptr);
    ASSERT_NE(p95, nullptr);
    ASSERT_NE(p99, nullptr);
    ASSERT_NE(goodput, nullptr);
    EXPECT_GT(p50->original, 0.0);
    EXPECT_GE(p95->original, p50->original);
    EXPECT_GE(p99->original, p95->original);
    EXPECT_GT(goodput->original, 0.0);
    EXPECT_EQ(goodput->unit, "req/s");
    // Self-comparison: every new row is exact.
    EXPECT_DOUBLE_EQ(p99->variation_pct, 0.0);
    EXPECT_DOUBLE_EQ(goodput->variation_pct, 0.0);
    // The mean-latency row stays FIRST among Performance rows — that is
    // the latency_variation() contract the quantile rows must not break.
    for (const auto& r : rep.rows) {
        if (r.subsystem != "Performance") continue;
        EXPECT_EQ(r.metric, "Latency");
        break;
    }
    // Tail rows are excluded from max_feature_variation (Performance).
    EXPECT_DOUBLE_EQ(rep.max_feature_variation(), 0.0);
}

// Regression for the empty-side guards: admission control can reject an
// entire phase, leaving one side of the comparison with no completed
// requests. compare_features used to throw from stats::quantile mid-table;
// now every row degrades to the zero-baseline convention and the table
// still renders.
TEST(Validator, EmptySidesRenderInsteadOfThrowing) {
    const auto ts = simulate_micro(120, 18);
    const auto fs = kooza::trace::extract_features(ts);
    ValidationReport rep;
    ASSERT_NO_THROW(rep = compare_features({}, fs, "empty-original"));
    const auto table = rep.to_table();
    EXPECT_NE(table.find("empty-original"), std::string::npos);
    EXPECT_NE(table.find("Latency p99"), std::string::npos);
    for (const auto& r : rep.rows) {
        EXPECT_TRUE(r.absolute || r.variation_pct == 0.0) << r.metric;
        EXPECT_DOUBLE_EQ(r.original, 0.0) << r.metric;
    }
    EXPECT_DOUBLE_EQ(rep.max_feature_variation(), 0.0);  // absolute rows skip it

    ASSERT_NO_THROW(rep = compare_features(fs, {}, "empty-synthetic"));
    EXPECT_NO_THROW((void)rep.to_table());
    ASSERT_NO_THROW(rep = compare_features({}, {}, "both-empty"));
    for (const auto& r : rep.rows) {
        EXPECT_DOUBLE_EQ(r.variation_pct, 0.0) << r.metric;  // 0-vs-0 -> 0%
        EXPECT_FALSE(r.absolute) << r.metric;
    }

    // Single-sample sides exercise the quantile guard's other edge: one
    // completed request still yields finite, rendered quantile rows.
    std::vector<kooza::trace::RequestFeatures> one(fs.begin(), fs.begin() + 1);
    ASSERT_NO_THROW(rep = compare_features(one, one, "single"));
    EXPECT_NO_THROW((void)rep.to_table());
    EXPECT_DOUBLE_EQ(rep.latency_variation(), 0.0);
}

TEST(Validator, LatencyKsEmptySidesReportZero) {
    const auto ts = simulate_micro(100, 18);
    const auto fs = kooza::trace::extract_features(ts);
    EXPECT_DOUBLE_EQ(latency_ks({}, fs), 0.0);
    EXPECT_DOUBLE_EQ(latency_ks(fs, {}), 0.0);
    EXPECT_DOUBLE_EQ(latency_ks({}, {}), 0.0);
}

TEST(Validator, LatencyKsZeroForIdentical) {
    const auto ts = simulate_micro(150, 19);
    const auto fs = kooza::trace::extract_features(ts);
    EXPECT_DOUBLE_EQ(latency_ks(fs, fs), 0.0);
}

TEST(Synthetic, ToFeaturesProjection) {
    SyntheticWorkload w;
    w.model_name = "test";
    SyntheticRequest r;
    r.time = 1.5;
    r.network_bytes = 100;
    r.memory_bytes = 50;
    r.storage_bytes = 200;
    r.cpu_busy_seconds = 0.01;
    w.requests.push_back(r);
    const auto fs = to_features(w);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].network_bytes, 100u);
    EXPECT_DOUBLE_EQ(fs[0].arrival, 1.5);
    EXPECT_DOUBLE_EQ(fs[0].cpu_busy_seconds, 0.01);
}

}  // namespace
