// Property-based sweeps: invariants that must hold for EVERY workload
// profile and seed — trace conservation, model well-formedness, generator
// output validity, replay accounting, and determinism. Parameterized over
// the profile x seed grid.
#include <gtest/gtest.h>

#include <memory>

#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "core/trainer.hpp"
#include "gfs/cluster.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;
using trace::IoType;

struct Case {
    std::string profile;
    std::uint64_t seed;
};

std::unique_ptr<workloads::Profile> make_profile(const std::string& name) {
    if (name == "micro")
        return std::make_unique<workloads::MicroProfile>(
            workloads::MicroProfile::Params{.count = 250, .arrival_rate = 20.0});
    if (name == "oltp")
        return std::make_unique<workloads::OltpProfile>(
            workloads::OltpProfile::Params{.count = 400, .base_rate = 30.0});
    if (name == "websearch")
        return std::make_unique<workloads::WebSearchProfile>(
            workloads::WebSearchProfile::Params{.count = 300, .arrival_rate = 30.0});
    if (name == "streaming")
        return std::make_unique<workloads::StreamingProfile>(
            workloads::StreamingProfile::Params{.sessions = 25});
    throw std::logic_error("unknown profile " + name);
}

class WorkloadProperty : public ::testing::TestWithParam<Case> {
protected:
    trace::TraceSet simulate() const {
        gfs::GfsConfig cfg;
        gfs::Cluster cluster(cfg);
        sim::Rng rng(GetParam().seed);
        make_profile(GetParam().profile)->generate(rng).install(cluster);
        cluster.run();
        n_submitted_ = cluster.completed();
        return cluster.traces();
    }
    mutable std::uint64_t n_submitted_ = 0;
};

TEST_P(WorkloadProperty, TraceConservation) {
    const auto ts = simulate();
    // Every completed request has end-to-end bytes covered by its records.
    const auto features = trace::extract_features(ts);
    ASSERT_EQ(features.size(), ts.requests.size());
    for (const auto& f : features) {
        EXPECT_GT(f.latency, 0.0);
        EXPECT_GT(f.network_bytes, 0u);
        EXPECT_GT(f.storage_bytes, 0u);
        EXPECT_GT(f.memory_bytes, 0u);
        EXPECT_GE(f.cpu_busy_seconds, 0.0);
        EXPECT_LE(f.cpu_utilization, 1.0 + 1e-9);
        // Payload accounting: the paper's request-size column equals the
        // storage traffic for GFS requests.
        EXPECT_EQ(f.network_bytes, f.storage_bytes);
    }
    // Span trees reassemble for every sampled trace.
    for (auto id : trace::SpanTree::trace_ids(ts.spans)) {
        trace::SpanTree tree(ts.spans, id);
        EXPECT_GT(tree.total_duration(), 0.0);
        for (const auto& s : tree.spans()) EXPECT_GE(s.duration(), 0.0);
    }
}

TEST_P(WorkloadProperty, TrainedModelWellFormed) {
    const auto ts = simulate();
    const auto model = core::Trainer().train(ts);
    // Chain rows must be stochastic for every trained sub-model.
    auto check_chain = [](const markov::MarkovChain& c) {
        for (std::size_t i = 0; i < c.n_states(); ++i) {
            double row = 0.0;
            for (std::size_t j = 0; j < c.n_states(); ++j) {
                EXPECT_GE(c.transition(i, j), 0.0);
                row += c.transition(i, j);
            }
            EXPECT_NEAR(row, 1.0, 1e-9);
        }
        // Stationary distribution exists and sums to 1.
        double pi_sum = 0.0;
        for (double p : c.stationary()) pi_sum += p;
        EXPECT_NEAR(pi_sum, 1.0, 1e-9);
    };
    if (model.has_reads()) {
        check_chain(model.reads().storage.chain());
        check_chain(model.reads().memory.chain());
        check_chain(model.reads().cpu.chain());
    }
    if (model.has_writes()) check_chain(model.writes().storage.chain());
    // Structure-queue probabilities sum to 1.
    if (model.has_reads()) {
        double p = 0.0;
        for (const auto& v : model.reads().structure.variants()) p += v.probability;
        EXPECT_NEAR(p, 1.0, 1e-9);
    }
    EXPECT_GT(model.arrivals().mean_rate(), 0.0);
}

TEST_P(WorkloadProperty, GeneratedRequestsValid) {
    const auto ts = simulate();
    const auto model = core::Trainer().train(ts);
    sim::Rng rng(GetParam().seed + 1000);
    const auto w = core::Generator(model).generate(300, rng);
    double prev = -1.0;
    for (const auto& r : w.requests) {
        EXPECT_GE(r.time, prev);
        prev = r.time;
        EXPECT_GT(r.storage_bytes, 0u);
        EXPECT_GT(r.network_bytes, 0u);
        EXPECT_GT(r.memory_bytes, 0u);
        EXPECT_GE(r.cpu_busy_seconds, 0.0);
        EXPECT_FALSE(r.phases.empty());
        EXPECT_EQ(r.storage_type, r.type);
        EXPECT_LT(r.bank, model.bank_states().n_states());
    }
}

TEST_P(WorkloadProperty, ReplayAccountingConsistent) {
    const auto ts = simulate();
    const auto model = core::Trainer().train(ts);
    sim::Rng rng(GetParam().seed + 2000);
    const auto w = core::Generator(model).generate(200, rng);
    core::ReplayConfig rc;
    rc.cpu_verify_fraction = model.cpu_verify_fraction();
    core::Replayer rep(rc);
    const auto res = rep.replay(w);
    EXPECT_EQ(res.latencies.size(), w.requests.size());
    EXPECT_EQ(res.traces.requests.size(), w.requests.size());
    for (double l : res.latencies) EXPECT_GT(l, 0.0);
    EXPECT_EQ(res.unknown_phases, 0u);
    // Replayed features preserve the generated byte budgets.
    const auto fs = trace::extract_features(res.traces);
    std::uint64_t want = 0, got = 0;
    for (const auto& r : w.requests) want += r.storage_bytes;
    for (const auto& f : fs) got += f.storage_bytes;
    // Integer split across repeated phases can round down a few bytes.
    EXPECT_NEAR(double(got), double(want), double(want) * 0.001);
}

TEST_P(WorkloadProperty, EndToEndDeterminism) {
    const auto a = simulate();
    const auto b = simulate();
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.requests[i].arrival, b.requests[i].arrival);
        EXPECT_DOUBLE_EQ(a.requests[i].completion, b.requests[i].completion);
    }
}

std::vector<Case> grid() {
    std::vector<Case> out;
    for (const auto* p : {"micro", "oltp", "websearch", "streaming"})
        for (std::uint64_t seed : {11ull, 47ull})
            out.push_back({p, seed});
    return out;
}

INSTANTIATE_TEST_SUITE_P(ProfilesBySeeds, WorkloadProperty, ::testing::ValuesIn(grid()),
                         [](const auto& info) {
                             return info.param.profile + "_s" +
                                    std::to_string(info.param.seed);
                         });

}  // namespace
