// Tests for the CLI flag parser shared by the kooza_* tools.
#include <gtest/gtest.h>

#include "../tools/cli_util.hpp"

namespace {

using kooza::cli::Args;

Args make(std::vector<std::string> argv, std::set<std::string> switches = {}) {
    std::vector<char*> ptrs;
    ptrs.push_back(const_cast<char*>("prog"));
    for (auto& a : argv) ptrs.push_back(a.data());
    return Args(int(ptrs.size()), ptrs.data(), std::move(switches));
}

TEST(CliArgs, PositionalAndFlags) {
    auto args = make({"trace-dir", "--count", "42", "--out", "/tmp/x"});
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "trace-dir");
    EXPECT_EQ(args.get_u64("count", 0), 42u);
    EXPECT_EQ(args.get("out", ""), "/tmp/x");
}

TEST(CliArgs, DefaultsWhenAbsent) {
    auto args = make({"x"});
    EXPECT_EQ(args.get_u64("count", 7), 7u);
    EXPECT_DOUBLE_EQ(args.get_double("rate", 2.5), 2.5);
    EXPECT_EQ(args.get("out", "fallback"), "fallback");
}

TEST(CliArgs, DoubleParsing) {
    auto args = make({"--rate", "12.75"});
    EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 12.75);
    EXPECT_TRUE(args.positional().empty());
}

TEST(CliArgs, ValuelessFlagIsBooleanSwitch) {
    // A flag followed by another flag (or the end of the line) is a
    // boolean switch — how kooza_capture spells --stream/--no-latencies.
    auto args = make({"dir", "--stream", "--count", "5"});
    EXPECT_TRUE(args.has("stream"));
    EXPECT_FALSE(args.has("count-missing"));
    EXPECT_EQ(args.get_u64("count", 0), 5u);
    auto tail = make({"dir", "--count"});
    EXPECT_TRUE(tail.has("count"));
    // Reading a switch as a valued flag still fails loudly.
    EXPECT_THROW((void)tail.get_u64("count", 0), std::invalid_argument);
}

TEST(CliArgs, InterleavedOrder) {
    auto args = make({"--a", "1", "pos1", "--b", "2", "pos2"});
    EXPECT_EQ(args.positional(), (std::vector<std::string>{"pos1", "pos2"}));
    EXPECT_EQ(args.get("a", ""), "1");
    EXPECT_EQ(args.get("b", ""), "2");
}

TEST(CliArgs, EmptyCommandLine) {
    auto args = make({});
    EXPECT_TRUE(args.positional().empty());
}

TEST(CliArgs, RejectsTrailingJunkOnIntegers) {
    // "--count 10x" used to parse as 10 via std::stoull's prefix rule;
    // now the whole field must be digits.
    auto args = make({"--count", "10x"});
    EXPECT_THROW((void)args.get_u64("count", 0), std::invalid_argument);
    EXPECT_THROW((void)make({"--count", "1 2"}).get_u64("count", 0),
                 std::invalid_argument);
    EXPECT_THROW((void)make({"--count", "0x10"}).get_u64("count", 0),
                 std::invalid_argument);
}

TEST(CliArgs, RejectsNegativeIntegers) {
    // "--count -3" used to wrap to 2^64-3 through stoull; it must fail.
    auto args = make({"--count", "-3"});
    EXPECT_THROW((void)args.get_u64("count", 0), std::invalid_argument);
}

TEST(CliArgs, RejectsOutOfRangeIntegers) {
    auto args = make({"--count", "99999999999999999999999999"});
    EXPECT_THROW((void)args.get_u64("count", 0), std::invalid_argument);
}

TEST(CliArgs, RejectsTrailingJunkOnDoubles) {
    EXPECT_THROW((void)make({"--rate", "1.5qps"}).get_double("rate", 0.0),
                 std::invalid_argument);
    EXPECT_THROW((void)make({"--rate", "nanx"}).get_double("rate", 0.0),
                 std::invalid_argument);
    // Plain scientific notation still parses.
    EXPECT_DOUBLE_EQ(make({"--rate", "2e2"}).get_double("rate", 0.0), 200.0);
}

TEST(CliArgs, RegisteredSwitchesNeverConsumeAValue) {
    // "kooza_capture --closed-loop /tmp/dir": without registration the
    // parser swallowed the directory as the switch's value and the tool
    // saw zero positionals.
    auto args = make({"--closed-loop", "/tmp/dir", "--count", "5"},
                     {"closed-loop"});
    EXPECT_TRUE(args.has("closed-loop"));
    EXPECT_EQ(args.get("closed-loop", "sentinel"), "");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "/tmp/dir");
    EXPECT_EQ(args.get_u64("count", 0), 5u);
    // Unregistered flags keep the old greedy behaviour.
    auto greedy = make({"--out", "/tmp/dir"});
    EXPECT_EQ(greedy.get("out", ""), "/tmp/dir");
    EXPECT_TRUE(greedy.positional().empty());
}

TEST(CliArgs, ErrorNamesTheFlag) {
    try {
        (void)make({"--chunk-records", "64k"}).get_u64("chunk-records", 0);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--chunk-records"), std::string::npos) << msg;
        EXPECT_NE(msg.find("64k"), std::string::npos) << msg;
    }
}

}  // namespace
