// Tests for per-server trace capture and the multi-server ClusterModel.
#include <gtest/gtest.h>

#include "core/multiserver.hpp"
#include "core/replayer.hpp"
#include "gfs/cluster.hpp"
#include "stats/descriptive.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;
using trace::IoType;

/// Web-search over 4 servers: Zipf shard popularity skews load so the
/// server holding shard.0 is hottest.
gfs::Cluster make_skewed_cluster(std::uint64_t seed) {
    gfs::GfsConfig cfg;
    cfg.n_chunkservers = 4;
    gfs::Cluster cluster(cfg);
    sim::Rng rng(seed);
    // Single-chunk shards (32 MB < the 64 MB chunk size) so each shard
    // lives on exactly one server and the Zipf popularity translates into
    // per-server load skew instead of striping away.
    workloads::WebSearchProfile profile({.count = 800,
                                         .arrival_rate = 40.0,
                                         .shards = 8,
                                         .shard_size = 32ull << 20,
                                         .zipf_s = 1.2});
    profile.generate(rng).install(cluster);
    cluster.run();
    return cluster;
}

TEST(PerServerTraces, PartitionDeviceRecords) {
    auto cluster = make_skewed_cluster(1);
    const auto all = cluster.traces();
    std::size_t storage_sum = 0;
    for (std::size_t s = 0; s < cluster.n_servers(); ++s) {
        const auto ts = cluster.traces_for_server(s);
        storage_sum += ts.storage.size();
        // Every per-server view carries its requests' end-to-end records.
        EXPECT_FALSE(ts.requests.empty());
        EXPECT_FALSE(ts.spans.empty());
    }
    EXPECT_EQ(storage_sum, all.storage.size());
    EXPECT_THROW((void)cluster.traces_for_server(99), std::out_of_range);
}

TEST(PerServerTraces, LoadSkewVisible) {
    auto cluster = make_skewed_cluster(2);
    std::vector<std::size_t> per_server;
    for (std::size_t s = 0; s < cluster.n_servers(); ++s)
        per_server.push_back(cluster.traces_for_server(s).requests.size());
    const auto [mn, mx] = std::minmax_element(per_server.begin(), per_server.end());
    EXPECT_GT(*mx, *mn * 2);  // Zipf 1.2 over 8 shards on 4 servers
}

std::vector<trace::TraceSet> per_server_traces(gfs::Cluster& cluster) {
    std::vector<trace::TraceSet> out;
    for (std::size_t s = 0; s < cluster.n_servers(); ++s)
        out.push_back(cluster.traces_for_server(s));
    return out;
}

TEST(ClusterModel, TrainsOneInstancePerServer) {
    auto cluster = make_skewed_cluster(3);
    const auto traces = per_server_traces(cluster);
    const auto model = core::ClusterModel::train(traces);
    EXPECT_EQ(model.n_servers(), 4u);
    EXPECT_GT(model.parameter_count(), model.server(0).parameter_count());
    EXPECT_FALSE(model.describe().empty());
}

TEST(ClusterModel, PreservesLoadSkew) {
    auto cluster = make_skewed_cluster(4);
    const auto traces = per_server_traces(cluster);
    const auto model = core::ClusterModel::train(traces);
    // Learned rates ordered like observed per-server request counts.
    const auto rates = model.arrival_rates();
    std::vector<double> observed;
    for (const auto& ts : traces) observed.push_back(double(ts.requests.size()));
    EXPECT_GT(stats::correlation(rates, observed), 0.9);

    // Generated streams keep the skew.
    sim::Rng rng(5);
    const auto w = model.generate(10.0, rng);
    std::vector<double> generated(model.n_servers(), 0.0);
    for (const auto& r : w.requests) generated[r.server] += 1.0;
    EXPECT_GT(stats::correlation(generated, observed), 0.9);
}

TEST(ClusterModel, GeneratedStreamSortedAndBounded) {
    auto cluster = make_skewed_cluster(6);
    const auto model = core::ClusterModel::train(per_server_traces(cluster));
    sim::Rng rng(7);
    const auto w = model.generate(5.0, rng);
    ASSERT_FALSE(w.requests.empty());
    for (std::size_t i = 1; i < w.requests.size(); ++i)
        EXPECT_GE(w.requests[i].time, w.requests[i - 1].time);
    for (const auto& r : w.requests) {
        EXPECT_LE(r.time, 5.0);
        EXPECT_LT(r.server, 4u);
    }
}

TEST(ClusterModel, ReplaysAcrossMatchingServers) {
    auto cluster = make_skewed_cluster(8);
    const auto model = core::ClusterModel::train(per_server_traces(cluster));
    sim::Rng rng(9);
    const auto w = model.generate(8.0, rng);
    core::ReplayConfig rc;
    rc.n_servers = model.n_servers();
    core::Replayer rep(rc);
    const auto res = rep.replay(w);
    EXPECT_EQ(res.latencies.size(), w.requests.size());
    EXPECT_EQ(res.unknown_phases, 0u);
    EXPECT_EQ(res.traces.requests.size(), w.requests.size());
}

TEST(ClusterModel, Validation) {
    EXPECT_THROW(core::ClusterModel::train({}), std::invalid_argument);
    trace::TraceSet empty;
    const std::vector<trace::TraceSet> with_empty{empty};
    EXPECT_THROW(core::ClusterModel::train(with_empty), std::invalid_argument);
    auto cluster = make_skewed_cluster(10);
    const auto model = core::ClusterModel::train(per_server_traces(cluster));
    sim::Rng rng(11);
    EXPECT_THROW(model.generate(0.0, rng), std::invalid_argument);
}

}  // namespace
