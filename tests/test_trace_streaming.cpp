// StreamingSink / ChunkedReader / train_streaming — the streamed capture
// path's unit contracts: canonical record ordering under the hold
// protocol, chunk-size and spill-buffer invariance of the produced
// bytes, bounded-memory row-range reads agreeing with read_binary, and
// Trainer::train_streaming producing a byte-identical model to training
// on the materialized TraceSet.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/streaming.hpp"

namespace {

namespace fs = std::filesystem;
using namespace kooza;
using namespace kooza::trace;

fs::path fresh_dir(const char* name) {
    const auto dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    return dir;
}

std::string slurp(const fs::path& p) {
    std::ifstream f(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void expect_dirs_byte_equal(const fs::path& a, const fs::path& b) {
    for (const auto* stem : kStreamStems) {
        const auto name = std::string(stem) + ".bin";
        EXPECT_EQ(slurp(a / name), slurp(b / name)) << name;
    }
}

StorageRecord storage_at(double t, std::uint64_t id) {
    return {t, id, /*lbn=*/id * 8, /*size_bytes=*/4096, IoType::kRead,
            /*latency=*/0.001};
}

// The hold protocol's ordering contract: a record keyed in the past may
// arrive late (its I/O completed late), but as long as its emitter held
// the key, the sink must still lay it down before later-keyed records
// that arrived earlier.
TEST(Streaming, HoldsReorderLateArrivalsCanonically) {
    const auto dir = fresh_dir("kooza_stream_holds");
    double now = 0.0;
    StreamingSink sink({.dir = dir}, /*n_groups=*/3);
    sink.set_clock([&now] { return now; });

    // Group 1 issues a disk I/O at t=1.0; the record only lands later.
    sink.group(1).open_hold(StreamId::kStorage, 1.0);
    now = 3.0;
    // Group 2's record keyed t=2.0 arrives first. It must wait behind
    // the open hold — nothing keyed >= 1.0 may flush yet.
    sink.group(2).append(storage_at(2.0, 200));
    // The held record lands and the hold closes: both flush, in key
    // order, not arrival order.
    sink.group(1).append(storage_at(1.0, 100));
    sink.group(1).close_hold(StreamId::kStorage, 1.0);
    now = 10.0;
    sink.group(0).append(storage_at(9.0, 300));
    sink.finish();
    EXPECT_EQ(sink.records_seen(), 3u);

    const auto back = read_binary(dir);
    ASSERT_EQ(back.storage.size(), 3u);
    EXPECT_EQ(back.storage[0].request_id, 100u);
    EXPECT_EQ(back.storage[1].request_id, 200u);
    EXPECT_EQ(back.storage[2].request_id, 300u);

    // Byte-identity with the materialized path over the same records.
    TraceSet ts;
    ts.storage = {storage_at(1.0, 100), storage_at(2.0, 200),
                  storage_at(9.0, 300)};
    const auto mat = fresh_dir("kooza_stream_holds_mat");
    write_binary(ts, mat);
    expect_dirs_byte_equal(dir, mat);
    fs::remove_all(dir);
    fs::remove_all(mat);
}

TEST(Streaming, TiesBreakByGroupThenSequence) {
    const auto dir = fresh_dir("kooza_stream_ties");
    double now = 0.0;
    StreamingSink sink({.dir = dir}, /*n_groups=*/3);
    sink.set_clock([&now] { return now; });
    // Three records with the identical key, appended in descending group
    // order; the canonical order is ascending (group, sequence).
    sink.group(2).append(storage_at(1.0, 22));
    sink.group(1).append(storage_at(1.0, 11));
    sink.group(1).append(storage_at(1.0, 12));
    sink.group(0).append(storage_at(1.0, 1));
    now = 2.0;
    sink.finish();
    const auto back = read_binary(dir);
    ASSERT_EQ(back.storage.size(), 4u);
    EXPECT_EQ(back.storage[0].request_id, 1u);
    EXPECT_EQ(back.storage[1].request_id, 11u);
    EXPECT_EQ(back.storage[2].request_id, 12u);
    EXPECT_EQ(back.storage[3].request_id, 22u);
    fs::remove_all(dir);
}

TEST(Streaming, ChunkSizeDoesNotChangeBytes) {
    // Flushing every 3 records vs one big flush at finish() must produce
    // identical files — chunking is an internal buffering detail.
    auto run = [](const fs::path& dir, std::size_t chunk_records) {
        fs::remove_all(dir);
        double now = 0.0;
        StreamingSink sink({.dir = dir, .chunk_records = chunk_records},
                           /*n_groups=*/2);
        sink.set_clock([&now] { return now; });
        for (int i = 0; i < 100; ++i) {
            now = 0.01 * double(i + 1);
            auto& g = sink.group(std::size_t(i) % 2);
            g.append(storage_at(now - 0.005, std::uint64_t(i)));
            g.append(CpuRecord{now - 0.005, std::uint64_t(i), 1e-4, 0.5});
            Span sp;
            sp.trace_id = std::uint64_t(i);
            sp.span_id = 1;
            sp.name = "disk.io";
            sp.start = now - 0.005;
            sp.end = now;
            g.append(sp);
        }
        sink.finish();
    };
    const auto small = fresh_dir("kooza_stream_chunk3");
    const auto big = fresh_dir("kooza_stream_chunk64k");
    run(small, 3);
    run(big, std::size_t(1) << 16);
    expect_dirs_byte_equal(small, big);
    fs::remove_all(small);
    fs::remove_all(big);
}

TEST(Streaming, FinishThrowsOnOpenHold) {
    const auto dir = fresh_dir("kooza_stream_leak");
    {
        StreamingSink sink({.dir = dir}, 1);
        sink.group(0).open_hold(StreamId::kNetwork, 0.5);
        EXPECT_THROW(sink.finish(), std::logic_error);
        // Closing the hold unblocks finish.
        sink.group(0).close_hold(StreamId::kNetwork, 0.5);
        sink.finish();
    }
    EXPECT_THROW(StreamingSink({.dir = dir, .chunk_records = 0}, 1),
                 std::invalid_argument);
    EXPECT_THROW(StreamingSink({.dir = dir}, 0), std::invalid_argument);
    fs::remove_all(dir);
}

TEST(Streaming, CloseHoldWithoutOpenThrows) {
    const auto dir = fresh_dir("kooza_stream_badclose");
    StreamingSink sink({.dir = dir}, 1);
    EXPECT_THROW(sink.group(0).close_hold(StreamId::kStorage, 1.0),
                 std::logic_error);
    EXPECT_THROW((void)sink.group(7), std::out_of_range);
    sink.finish();
    fs::remove_all(dir);
}

TEST(Streaming, WriterSpillPathBytesIdentical) {
    // A tiny spill buffer forces every column through the temp-file
    // spill-and-splice path; the final files must not change.
    TraceSet ts;
    for (int i = 0; i < 200; ++i) {
        ts.storage.push_back(storage_at(0.01 * double(i), std::uint64_t(i)));
        Span sp;
        sp.trace_id = std::uint64_t(i);
        sp.span_id = 2;
        sp.name = (i % 2) != 0 ? "net.rx" : "cpu.verify";
        sp.start = 0.01 * double(i);
        sp.end = sp.start + 0.001;
        ts.spans.push_back(sp);
    }
    const auto plain = fresh_dir("kooza_spill_off");
    const auto spilled = fresh_dir("kooza_spill_on");
    {
        BinaryWriter w(plain, /*spill_buffer_bytes=*/0);
        w.append(ts);
        w.finish();
    }
    {
        BinaryWriter w(spilled, /*spill_buffer_bytes=*/64);
        // Append in chunks so spills interleave with appends.
        for (int c = 0; c < 4; ++c) {
            TraceSet chunk;
            chunk.storage.assign(ts.storage.begin() + c * 50,
                                 ts.storage.begin() + (c + 1) * 50);
            chunk.spans.assign(ts.spans.begin() + c * 50,
                               ts.spans.begin() + (c + 1) * 50);
            w.append(chunk);
        }
        w.finish();
    }
    expect_dirs_byte_equal(plain, spilled);
    // No spill temp files are left behind.
    for (const auto& e : fs::directory_iterator(spilled))
        EXPECT_EQ(e.path().extension(), ".bin") << e.path();
    fs::remove_all(plain);
    fs::remove_all(spilled);
}

TEST(ChunkedReader, RowRangesAgreeWithReadBinary) {
    core::CaptureOptions opts;
    opts.profile = "micro";
    opts.count = 150;
    opts.rate = 50.0;
    opts.seed = 13;
    opts.n_servers = 3;
    opts.format = Format::kBinary;
    const auto dir = fresh_dir("kooza_chunked_reader");
    opts.out_dir = dir.string();
    const auto res = core::run_capture(opts);
    ASSERT_GT(res.records, 0u);

    const auto whole = read_binary(dir);
    ChunkedReader reader(dir);
    EXPECT_EQ(reader.total_rows(), res.records);
    EXPECT_EQ(reader.rows(StreamId::kStorage), whole.storage.size());
    EXPECT_EQ(reader.rows(StreamId::kRequests), whole.requests.size());
    EXPECT_EQ(reader.rows(StreamId::kSpans), whole.spans.size());

    // Reassemble the storage and span streams from odd-sized row ranges;
    // the concatenation must agree with the one-shot reader.
    TraceSet pieced;
    const std::uint64_t n_sto = reader.rows(StreamId::kStorage);
    for (std::uint64_t at = 0; at < n_sto;) {
        const auto n = std::min<std::uint64_t>(7, n_sto - at);
        reader.read_rows(StreamId::kStorage, at, n, pieced);
        at += n;
    }
    ASSERT_EQ(pieced.storage.size(), whole.storage.size());
    for (std::size_t i = 0; i < whole.storage.size(); ++i) {
        EXPECT_DOUBLE_EQ(pieced.storage[i].time, whole.storage[i].time) << i;
        EXPECT_EQ(pieced.storage[i].request_id, whole.storage[i].request_id) << i;
        EXPECT_EQ(pieced.storage[i].lbn, whole.storage[i].lbn) << i;
    }
    const std::uint64_t n_spans = reader.rows(StreamId::kSpans);
    reader.read_rows(StreamId::kSpans, 0, n_spans, pieced);
    ASSERT_EQ(pieced.spans.size(), whole.spans.size());
    for (std::size_t i = 0; i < whole.spans.size(); ++i) {
        EXPECT_EQ(pieced.spans[i].name, whole.spans[i].name) << i;
        EXPECT_DOUBLE_EQ(pieced.spans[i].start, whole.spans[i].start) << i;
    }

    EXPECT_THROW(reader.read_rows(StreamId::kStorage, n_sto, 1, pieced),
                 std::out_of_range);
    fs::remove_all(dir);
}

TEST(Trainer, TrainStreamingByteIdenticalToMaterialized) {
    // The chunked sufficient-statistics path must reproduce the
    // whole-TraceSet fit exactly: same capture, models serialized
    // byte-for-byte equal — including under faults with replication.
    core::CaptureOptions opts;
    opts.profile = "micro";
    opts.count = 400;
    opts.rate = 50.0;
    opts.seed = 21;
    opts.n_servers = 4;
    opts.replication = 2;
    opts.fault_rate = 0.3;
    opts.mttr = 1.5;
    opts.format = Format::kBinary;
    opts.stream = true;
    const auto dir = fresh_dir("kooza_train_streaming");
    opts.out_dir = dir.string();
    const auto res = core::run_capture(opts);
    ASSERT_GT(res.records, 0u);

    const core::Trainer trainer({.workload_name = "stream-eq"});
    auto serialized = [](const core::ServerModel& m) {
        std::stringstream ss;
        core::save_model(m, ss);
        return ss.str();
    };
    const auto materialized = serialized(trainer.train(read_binary(dir)));
    // An odd chunk size exercises ragged chunk boundaries on every stream.
    const auto streamed = serialized(trainer.train_streaming(dir, 97));
    EXPECT_EQ(materialized, streamed);
    EXPECT_EQ(materialized, serialized(trainer.train_streaming(dir)));
    EXPECT_THROW((void)trainer.train_streaming(dir, 0), std::invalid_argument);
    fs::remove_all(dir);
}

}  // namespace
