// Tests for the matrix kernel, eigensolver, PCA and regression.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "stats/matrix.hpp"
#include "stats/pca.hpp"
#include "stats/regression.hpp"

namespace {

using namespace kooza::stats;
using kooza::sim::Rng;

TEST(Matrix, ConstructionAndAccess) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
    m.at(0, 0) = 7.0;
    EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
    EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
    EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
}

TEST(Matrix, FromRowsValidatesShape) {
    auto m = Matrix::from_rows({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
    EXPECT_THROW(Matrix::from_rows({}), std::invalid_argument);
}

TEST(Matrix, TransposeMultiply) {
    auto a = Matrix::from_rows({{1, 2}, {3, 4}});
    auto b = Matrix::from_rows({{5, 6}, {7, 8}});
    auto ab = a.multiply(b);
    EXPECT_DOUBLE_EQ(ab(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(ab(1, 1), 50.0);
    auto at = a.transpose();
    EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
    const std::vector<double> v{1.0, 1.0};
    const auto av = a.multiply(v);
    EXPECT_DOUBLE_EQ(av[0], 3.0);
    EXPECT_DOUBLE_EQ(av[1], 7.0);
}

TEST(Matrix, SolveLinearSystem) {
    auto a = Matrix::from_rows({{2, 1}, {1, 3}});
    const auto x = Matrix::solve(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveSingularThrows) {
    auto a = Matrix::from_rows({{1, 2}, {2, 4}});
    EXPECT_THROW(Matrix::solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Matrix, DeterminantAndInverse) {
    auto a = Matrix::from_rows({{4, 7}, {2, 6}});
    EXPECT_NEAR(a.determinant(), 10.0, 1e-12);
    auto inv = a.inverse();
    auto prod = a.multiply(inv);
    EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
    auto sing = Matrix::from_rows({{1, 2}, {2, 4}});
    EXPECT_NEAR(sing.determinant(), 0.0, 1e-12);
    EXPECT_THROW(sing.inverse(), std::runtime_error);
}

TEST(Matrix, CovarianceKnown) {
    // Two perfectly correlated columns.
    auto data = Matrix::from_rows({{1, 2}, {2, 4}, {3, 6}});
    auto cov = covariance_matrix(data);
    EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-15);
}

TEST(Eigen, DiagonalMatrix) {
    auto d = Matrix::from_rows({{3, 0}, {0, 1}});
    auto e = symmetric_eigen(d);
    EXPECT_NEAR(e.values[0], 3.0, 1e-10);
    EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(Eigen, KnownSymmetric) {
    // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
    auto m = Matrix::from_rows({{2, 1}, {1, 2}});
    auto e = symmetric_eigen(m);
    EXPECT_NEAR(e.values[0], 3.0, 1e-10);
    EXPECT_NEAR(e.values[1], 1.0, 1e-10);
    // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
    const auto v = e.vectors.col(0);
    EXPECT_NEAR(std::fabs(v[0]), 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(v[0], v[1], 1e-8);
}

TEST(Eigen, RejectsAsymmetric) {
    auto m = Matrix::from_rows({{1, 2}, {3, 4}});
    EXPECT_THROW(symmetric_eigen(m), std::invalid_argument);
}

TEST(Pca, ExplainsVarianceInOrder) {
    // Data with dominant variance along x.
    Rng rng(1);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 500; ++i)
        rows.push_back({rng.normal(0.0, 10.0), rng.normal(0.0, 1.0)});
    Pca pca(Matrix::from_rows(rows));
    EXPECT_GT(pca.eigenvalues()[0], pca.eigenvalues()[1]);
    EXPECT_GT(pca.explained_variance(1), 0.95);
    EXPECT_NEAR(pca.explained_variance(2), 1.0, 1e-12);
    EXPECT_EQ(pca.components_for(0.9), 1u);
}

TEST(Pca, FirstComponentAlignsWithSpread) {
    Rng rng(2);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 500; ++i) {
        const double t = rng.normal(0.0, 5.0);
        rows.push_back({t, t + rng.normal(0.0, 0.1)});
    }
    Pca pca(Matrix::from_rows(rows));
    const auto c = pca.component(0);
    // Should be close to (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(c[0]), std::fabs(c[1]), 0.05);
}

TEST(Pca, ProjectReconstructRoundTrip) {
    Rng rng(3);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 200; ++i)
        rows.push_back({rng.normal(5.0, 2.0), rng.normal(-3.0, 1.0),
                        rng.normal(0.0, 0.5)});
    Pca pca(Matrix::from_rows(rows));
    const std::vector<double> x{6.0, -2.5, 0.2};
    const auto full = pca.project(x, 3);
    const auto back = pca.reconstruct(full);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(Pca, StandardizedIgnoresScale) {
    Rng rng(4);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 500; ++i)
        rows.push_back({rng.normal(0.0, 1000.0), rng.normal(0.0, 1.0)});
    Pca pca(Matrix::from_rows(rows), /*standardize=*/true);
    // After standardization both dims contribute comparably.
    EXPECT_LT(pca.explained_variance(1), 0.7);
}

TEST(Regression, SimpleRecoversLine) {
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(double(i));
        ys.push_back(3.0 + 2.0 * double(i));
    }
    const auto r = fit_simple(xs, ys);
    EXPECT_NEAR(r.intercept, 3.0, 1e-9);
    EXPECT_NEAR(r.slope, 2.0, 1e-12);
    EXPECT_NEAR(r.r_squared, 1.0, 1e-12);
    EXPECT_NEAR(r.predict(100.0), 203.0, 1e-9);
}

TEST(Regression, NoisyR2BelowOne) {
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int i = 0; i < 500; ++i) {
        xs.push_back(double(i));
        ys.push_back(2.0 * double(i) + rng.normal(0.0, 50.0));
    }
    const auto r = fit_simple(xs, ys);
    EXPECT_NEAR(r.slope, 2.0, 0.2);
    EXPECT_LT(r.r_squared, 1.0);
    EXPECT_GT(r.r_squared, 0.8);
}

TEST(Regression, Validation) {
    const std::vector<double> one{1.0};
    EXPECT_THROW((void)fit_simple(one, one), std::invalid_argument);
    const std::vector<double> xs{1.0, 1.0};
    const std::vector<double> ys{1.0, 2.0};
    EXPECT_THROW((void)fit_simple(xs, ys), std::invalid_argument);
}

TEST(LinearModel, RecoversCoefficients) {
    Rng rng(6);
    std::vector<std::vector<double>> rows;
    std::vector<double> ys;
    for (int i = 0; i < 300; ++i) {
        const double a = rng.uniform(0.0, 10.0), b = rng.uniform(0.0, 5.0);
        rows.push_back({a, b});
        ys.push_back(1.0 + 2.0 * a - 3.0 * b);
    }
    LinearModel m(Matrix::from_rows(rows), ys);
    EXPECT_NEAR(m.coefficients()[0], 1.0, 1e-8);
    EXPECT_NEAR(m.coefficients()[1], 2.0, 1e-8);
    EXPECT_NEAR(m.coefficients()[2], -3.0, 1e-8);
    EXPECT_NEAR(m.r_squared(), 1.0, 1e-10);
    const std::vector<double> x{1.0, 1.0};
    EXPECT_NEAR(m.predict(x), 0.0, 1e-8);
}

TEST(LinearModel, RidgeHandlesCollinearPredictors) {
    // Second predictor is an exact copy of the first: plain least squares
    // is singular; ridge solves and still predicts correctly.
    Rng rng(7);
    std::vector<std::vector<double>> rows;
    std::vector<double> ys;
    for (int i = 0; i < 100; ++i) {
        const double a = rng.uniform(0.0, 10.0);
        rows.push_back({a, a});
        ys.push_back(2.0 + 3.0 * a);
    }
    const auto data = Matrix::from_rows(rows);
    EXPECT_THROW(LinearModel(data, ys), std::runtime_error);  // singular
    LinearModel m(data, ys, 1e-8);
    const std::vector<double> x{4.0, 4.0};
    EXPECT_NEAR(m.predict(x), 14.0, 1e-3);
    EXPECT_NEAR(m.r_squared(), 1.0, 1e-6);
    EXPECT_THROW(LinearModel(data, ys, -1.0), std::invalid_argument);
}

TEST(LinearModel, Validation) {
    auto data = Matrix::from_rows({{1.0, 2.0}, {2.0, 3.0}});
    EXPECT_THROW(LinearModel(data, std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);  // too few observations
}

}  // namespace
