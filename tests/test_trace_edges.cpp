// Edge-case tests for the tracing stack: span-tree pathologies, CSV
// robustness, and feature extraction on sparse/partial traces.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"
#include "trace/binary.hpp"
#include "trace/csv.hpp"
#include "trace/features.hpp"
#include "trace/span.hpp"
#include "trace/traceset.hpp"

namespace {

using namespace kooza::trace;

/// Strict read_csv requires the full stream set; lay down an empty
/// capture first so a test can overwrite just the stream it targets.
std::filesystem::path full_dir(const char* name) {
    const auto dir = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    write_csv(TraceSet{}, dir);
    return dir;
}

TEST(SpanEdges, MultipleRootsPerTraceTolerated) {
    // A trace with two root spans (e.g. client retried and re-rooted):
    // the tree picks the first root by start time and still renders.
    SpanTracer t(1);
    const auto r1 = t.start_span(5, 0, "request", 0.0);
    t.end_span(r1, 1.0);
    const auto r2 = t.start_span(5, 0, "request", 2.0);
    t.end_span(r2, 3.0);
    SpanTree tree(t.spans(), 5);
    EXPECT_EQ(tree.root().start, 0.0);
    EXPECT_FALSE(tree.render().empty());
}

TEST(SpanEdges, OrphanParentTreatedAsLeaf) {
    // A child whose parent was never recorded (partial trace) is still in
    // the tree's span list; render starts from the root that exists.
    SpanTracer t(1);
    const auto root = t.start_span(7, 0, "request", 0.0);
    const auto orphan = t.start_span(7, 9999, "lost.child", 0.1);
    t.end_span(orphan, 0.2);
    t.end_span(root, 1.0);
    SpanTree tree(t.spans(), 7);
    EXPECT_EQ(tree.spans().size(), 2u);
    EXPECT_EQ(tree.children_of(tree.root().span_id).size(), 0u);
}

TEST(SpanEdges, ZeroDurationSpans) {
    SpanTracer t(1);
    const auto s = t.start_span(1, 0, "instant", 5.0);
    t.end_span(s, 5.0);
    SpanTree tree(t.spans(), 1);
    EXPECT_DOUBLE_EQ(tree.total_duration(), 0.0);
    EXPECT_DOUBLE_EQ(tree.phase_durations()[0], 0.0);
}

TEST(SpanEdges, AnnotationsSurviveCollection) {
    SpanTracer t(1);
    const auto s = t.start_span(2, 0, "request", 0.0);
    t.annotate(s, 0.5, "midpoint");
    t.annotate(s, 0.9, "late");
    t.end_span(s, 1.0);
    ASSERT_EQ(t.spans()[0].annotations.size(), 2u);
    EXPECT_EQ(t.spans()[0].annotations[1].message, "late");
}

TEST(CsvEdges, EmptyTraceSetRoundTrips) {
    const auto dir = std::filesystem::temp_directory_path() / "kooza_csv_empty";
    std::filesystem::remove_all(dir);
    TraceSet empty;
    write_csv(empty, dir);
    const auto back = read_csv(dir);
    EXPECT_TRUE(back.empty());
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, BlankLinesSkipped) {
    const auto dir = full_dir("kooza_csv_blank");
    {
        std::ofstream f(dir / "requests.csv");
        f << "request_id,type,arrival,completion,bytes\n\n\n";
        f << "1,read,0.5,1.5,4096\n\n";
    }
    const auto ts = read_csv(dir);
    ASSERT_EQ(ts.requests.size(), 1u);
    EXPECT_EQ(ts.requests[0].bytes, 4096u);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, LeadingBlankLineKeepsHeader) {
    // A blank first line used to demote the real header (matched by
    // line number, not content) to a data row, so the first record was
    // parsed from the header text and threw.
    const auto dir = full_dir("kooza_csv_lead");
    {
        std::ofstream f(dir / "requests.csv");
        f << "\n\nrequest_id,type,arrival,completion,bytes\n";
        f << "3,write,0.25,0.75,8192\n";
        f << "4,read,1.0,1.25,512\n";
    }
    const auto ts = read_csv(dir);
    ASSERT_EQ(ts.requests.size(), 2u);
    EXPECT_EQ(ts.requests[0].request_id, 3u);
    EXPECT_EQ(ts.requests[0].type, IoType::kWrite);
    EXPECT_EQ(ts.requests[1].bytes, 512u);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, CrlfLineEndingsRoundTrip) {
    // Traces exported on Windows (or via git with autocrlf) carry \r\n;
    // the stray '\r' used to ride on the last field and break exact-match
    // parsing of enum columns like the I/O type.
    const auto dir = full_dir("kooza_csv_crlf");
    {
        std::ofstream f(dir / "requests.csv", std::ios::binary);
        f << "request_id,type,arrival,completion,bytes\r\n";
        f << "7,read,0.5,1.5,4096\r\n";
        f << "8,write,2.0,2.5,1024\r\n";
    }
    {
        std::ofstream f(dir / "storage.csv", std::ios::binary);
        f << "time,request_id,lbn,size_bytes,type,latency\r\n";
        f << "0.6,7,128,4096,read,0.01\r\n";
    }
    const auto ts = read_csv(dir);
    ASSERT_EQ(ts.requests.size(), 2u);
    EXPECT_EQ(ts.requests[0].type, IoType::kRead);
    EXPECT_EQ(ts.requests[0].bytes, 4096u);  // last field, where '\r' rode
    EXPECT_EQ(ts.requests[1].type, IoType::kWrite);
    ASSERT_EQ(ts.storage.size(), 1u);
    EXPECT_DOUBLE_EQ(ts.storage[0].latency, 0.01);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, SplitCsvLineStripsTrailingCr) {
    const auto f = split_csv_line("1,read,0.5\r");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f.back(), "0.5");
    // A lone '\r' field (blank last column on a CRLF file) becomes empty.
    const auto g = split_csv_line("a,b,");
    ASSERT_EQ(g.size(), 3u);
    EXPECT_TRUE(g.back().empty());
}

TEST(CsvEdges, WrongFieldCountThrows) {
    const auto dir = full_dir("kooza_csv_fields");
    {
        std::ofstream f(dir / "storage.csv");
        f << "time,request_id,lbn,size_bytes,type,latency\n";
        f << "1.0,1,2,3\n";  // 4 fields, need 6
    }
    EXPECT_THROW(read_csv(dir), std::runtime_error);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, BadIoTypeThrows) {
    const auto dir = full_dir("kooza_csv_type");
    {
        std::ofstream f(dir / "memory.csv");
        f << "time,request_id,bank,size_bytes,type\n";
        f << "1.0,1,0,4096,sideways\n";
    }
    EXPECT_THROW(read_csv(dir), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, TrailingJunkOnNumberThrows) {
    // stod parses a valid prefix, so "0.5sec" used to load silently as
    // 0.5 — corrupt data round-tripped as clean.
    const auto dir = full_dir("kooza_csv_junknum");
    {
        std::ofstream f(dir / "requests.csv");
        f << "request_id,type,arrival,completion,bytes\n";
        f << "1,read,0.5sec,1.5,4096\n";
    }
    EXPECT_THROW(read_csv(dir), std::runtime_error);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, NegativeIdThrows) {
    // stoull accepts a leading '-' and wraps: "-1" used to load as
    // 18446744073709551615 instead of being rejected.
    const auto dir = full_dir("kooza_csv_negid");
    {
        std::ofstream f(dir / "requests.csv");
        f << "request_id,type,arrival,completion,bytes\n";
        f << "-1,read,0.5,1.5,4096\n";
    }
    EXPECT_THROW(read_csv(dir), std::runtime_error);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, JunkIdThrows) {
    const auto dir = full_dir("kooza_csv_junkid");
    {
        std::ofstream f(dir / "requests.csv");
        f << "request_id,type,arrival,completion,bytes\n";
        f << "1,read,0.5,1.5,4096 B\n";
    }
    EXPECT_THROW(read_csv(dir), std::runtime_error);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, EmptyNumericFieldThrows) {
    const auto dir = full_dir("kooza_csv_emptyfield");
    {
        std::ofstream f(dir / "requests.csv");
        f << "request_id,type,arrival,completion,bytes\n";
        f << "1,read,0.5,1.5,\n";
    }
    EXPECT_THROW(read_csv(dir), std::runtime_error);
    std::filesystem::remove_all(dir);
}

TEST(FeatureEdges, RequestWithoutSubsystemRecords) {
    // A completed request with no device records (e.g. served entirely
    // from a cache we don't model) still extracts, with zeroed features.
    TraceSet ts;
    ts.requests.push_back({9, IoType::kRead, 1.0, 1.5, 100});
    const auto fs = extract_features(ts);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].network_bytes, 0u);
    EXPECT_EQ(fs[0].storage_bytes, 0u);
    EXPECT_DOUBLE_EQ(fs[0].cpu_utilization, 0.0);
    EXPECT_DOUBLE_EQ(fs[0].latency, 0.5);
}

TEST(FeatureEdges, OrphanDeviceRecordsIgnored) {
    // Device records whose request never completed don't produce feature
    // rows (the paper's models train on completed requests only).
    TraceSet ts;
    ts.storage.push_back({0.1, 77, 0, 4096, IoType::kRead, 0.01});
    ts.cpu.push_back({0.1, 77, 0.001, 1.0});
    const auto fs = extract_features(ts);
    EXPECT_TRUE(fs.empty());
}

TEST(CsvEdges, MissingStreamFileFailsLoudly) {
    // Deleting one stream file (say storage.csv) used to read back as an
    // empty stream — a partial capture masquerading as a quiet workload.
    const auto dir = full_dir("kooza_csv_missing");
    std::filesystem::remove(dir / "storage.csv");
    const auto& missing =
        kooza::obs::counter("trace.csv.missing_files_total");
    const auto before = missing.value();
    EXPECT_THROW(
        {
            try {
                (void)read_csv(dir);
            } catch (const std::runtime_error& e) {
                EXPECT_NE(std::string(e.what()).find("storage.csv"),
                          std::string::npos);
                throw;
            }
        },
        std::runtime_error);
    EXPECT_EQ(missing.value(), before + 1);
    std::filesystem::remove_all(dir);
}

TEST(CsvEdges, UnknownDirectionThrows) {
    // Anything but "rx"/"tx" used to silently parse as kTx.
    const auto dir = full_dir("kooza_csv_direction");
    {
        std::ofstream f(dir / "network.csv");
        f << "time,request_id,size_bytes,direction,latency\n";
        f << "1.0,1,4096,sideways,0.01\n";
    }
    EXPECT_THROW((void)read_csv(dir), std::runtime_error);
    std::filesystem::remove_all(dir);
}

TEST(Records, DirectionFromStringStrict) {
    EXPECT_EQ(direction_from_string("rx"), NetworkRecord::Direction::kRx);
    EXPECT_EQ(direction_from_string("tx"), NetworkRecord::Direction::kTx);
    EXPECT_THROW((void)direction_from_string("sideways"), std::invalid_argument);
    EXPECT_THROW((void)direction_from_string(""), std::invalid_argument);
    EXPECT_THROW((void)direction_from_string("TX"), std::invalid_argument);
}

TEST(CsvEdges, SpanNameWithCommaRejectedOnWrite) {
    // spans.csv has no quoting: a ',' (or stray CR) in a span name used
    // to shift every following field on read-back. The writer now
    // rejects such names; the binary string table is immune.
    const auto base = std::filesystem::temp_directory_path();
    for (const auto* name : {"disk,io", "net\rrx", "cpu\nverify"}) {
        TraceSet ts;
        Span s;
        s.trace_id = 1;
        s.span_id = 2;
        s.parent_id = 0;
        s.name = name;
        s.start = 0.5;
        s.end = 1.5;
        ts.spans.push_back(s);
        const auto csv_dir = base / "kooza_csv_spanname";
        std::filesystem::remove_all(csv_dir);
        EXPECT_THROW(write_csv(ts, csv_dir), std::runtime_error) << name;
        // Same names round-trip exactly through kooza.trace/1.
        const auto bin_dir = base / "kooza_bin_spanname";
        std::filesystem::remove_all(bin_dir);
        write_binary(ts, bin_dir);
        const auto back = read_binary(bin_dir);
        ASSERT_EQ(back.spans.size(), 1u) << name;
        EXPECT_EQ(back.spans[0].name, name);
        std::filesystem::remove_all(csv_dir);
        std::filesystem::remove_all(bin_dir);
    }
}

TEST(FeatureEdges, TiedMemoryTrafficPrefersRead) {
    TraceSet ts;
    ts.requests.push_back({1, IoType::kRead, 0.0, 1.0, 100});
    ts.memory.push_back({0.1, 1, 0, 512, IoType::kRead});
    ts.memory.push_back({0.2, 1, 1, 512, IoType::kWrite});
    const auto fs = extract_features(ts);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].memory_type, IoType::kRead);  // tie -> read
    EXPECT_EQ(fs[0].memory_bytes, 1024u);
}

}  // namespace
