// Tests for the discrete-event engine, RNG, and FCFS resources.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace {

using kooza::sim::Engine;
using kooza::sim::Resource;
using kooza::sim::Rng;

TEST(Engine, StartsAtTimeZero) {
    Engine eng;
    EXPECT_EQ(eng.now(), 0.0);
    EXPECT_TRUE(eng.empty());
}

TEST(Engine, ExecutesEventsInTimeOrder) {
    Engine eng;
    std::vector<int> order;
    eng.schedule_at(2.0, [&] { order.push_back(2); });
    eng.schedule_at(1.0, [&] { order.push_back(1); });
    eng.schedule_at(3.0, [&] { order.push_back(3); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.now(), 3.0);
}

TEST(Engine, TiesBreakFifo) {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) eng.schedule_at(1.0, [&, i] { order.push_back(i); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
    Engine eng;
    double fired_at = -1.0;
    eng.schedule_at(5.0, [&] {
        eng.schedule_after(2.5, [&] { fired_at = eng.now(); });
    });
    eng.run();
    EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, RejectsPastEvents) {
    Engine eng;
    eng.schedule_at(5.0, [] {});
    eng.run();
    EXPECT_THROW(eng.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Engine, RejectsNegativeDelay) {
    Engine eng;
    EXPECT_THROW(eng.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, RejectsEmptyAction) {
    Engine eng;
    EXPECT_THROW(eng.schedule_at(1.0, std::function<void()>{}), std::invalid_argument);
}

TEST(Engine, RunReturnsEventCount) {
    Engine eng;
    for (int i = 0; i < 7; ++i) eng.schedule_at(double(i), [] {});
    EXPECT_EQ(eng.run(), 7u);
    EXPECT_EQ(eng.executed(), 7u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
    Engine eng;
    int fired = 0;
    for (int i = 1; i <= 10; ++i) eng.schedule_at(double(i), [&] { ++fired; });
    eng.run_until(5.0);
    EXPECT_EQ(fired, 5);
    EXPECT_DOUBLE_EQ(eng.now(), 5.0);
    eng.run();
    EXPECT_EQ(fired, 10);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
    Engine eng;
    eng.run_until(42.0);
    EXPECT_DOUBLE_EQ(eng.now(), 42.0);
}

TEST(Engine, StopHaltsExecution) {
    Engine eng;
    int fired = 0;
    eng.schedule_at(1.0, [&] {
        ++fired;
        eng.stop();
    });
    eng.schedule_at(2.0, [&] { ++fired; });
    eng.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eng.pending(), 1u);
}

TEST(Engine, StepExecutesExactlyOne) {
    Engine eng;
    int fired = 0;
    eng.schedule_at(1.0, [&] { ++fired; });
    eng.schedule_at(2.0, [&] { ++fired; });
    EXPECT_TRUE(eng.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eng.step());
    EXPECT_FALSE(eng.step());
}

TEST(Engine, EventsCanScheduleMoreEvents) {
    Engine eng;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 100) eng.schedule_after(0.1, recurse);
    };
    eng.schedule_at(0.0, recurse);
    eng.run();
    EXPECT_EQ(depth, 100);
}

TEST(Rng, DeterministicForSeed) {
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(7), b(8);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        if (a.uniform() != b.uniform()) any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkIsIndependent) {
    Rng a(7);
    Rng child = a.fork();
    // Child stream shouldn't replicate the parent's next values.
    Rng a2(7);
    (void)a2.fork();
    double parent_next = a.uniform();
    double fresh_parent_next = a2.uniform();
    EXPECT_DOUBLE_EQ(parent_next, fresh_parent_next);  // fork is deterministic
    EXPECT_NE(child.uniform(), parent_next);
}

TEST(Rng, UniformRange) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntInclusive) {
    Rng rng(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
    Rng rng(2);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoSupport) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
    Rng rng(4);
    const double w[] = {0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(double(counts[2]) / double(counts[1]), 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
    Rng rng(5);
    EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
    const double zeros[] = {0.0, 0.0};
    EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
    const double neg[] = {1.0, -1.0};
    EXPECT_THROW(rng.weighted_index(neg), std::invalid_argument);
}

TEST(Rng, ZipfSmallSkewsToHead) {
    Rng rng(6);
    int counts[4] = {0, 0, 0, 0};
    for (int i = 0; i < 10000; ++i) ++counts[rng.zipf_small(4, 1.0)];
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[3]);
}

TEST(Resource, GrantsUpToCapacity) {
    Engine eng;
    Resource res(eng, 2);
    int granted = 0;
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(res.in_use(), 2u);
    EXPECT_EQ(res.queue_length(), 1u);
}

TEST(Resource, ReleaseGrantsNextWaiterFifo) {
    Engine eng;
    Resource res(eng, 1);
    std::vector<int> order;
    res.acquire([&] { order.push_back(0); });
    res.acquire([&] { order.push_back(1); });
    res.acquire([&] { order.push_back(2); });
    res.release();
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    res.release();
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, ReleaseWithoutHoldThrows) {
    Engine eng;
    Resource res(eng, 1);
    EXPECT_THROW(res.release(), std::logic_error);
}

TEST(Resource, ZeroCapacityRejected) {
    Engine eng;
    EXPECT_THROW(Resource(eng, 0), std::invalid_argument);
}

TEST(Resource, UtilizationTracksBusyTime) {
    Engine eng;
    Resource res(eng, 1);
    res.acquire([&] { eng.schedule_at(4.0, [&] { res.release(); }); });
    eng.run();
    eng.run_until(8.0);
    // Busy 4 s out of 8 s.
    EXPECT_NEAR(res.utilization(), 0.5, 1e-9);
}

TEST(Resource, QueueingDelaysSerializeWork) {
    Engine eng;
    Resource res(eng, 1);
    std::vector<double> completions;
    auto job = [&] {
        res.acquire([&] {
            eng.schedule_after(1.0, [&] {
                completions.push_back(eng.now());
                res.release();
            });
        });
    };
    eng.schedule_at(0.0, job);
    eng.schedule_at(0.0, job);
    eng.schedule_at(0.0, job);
    eng.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_NEAR(completions[0], 1.0, 1e-9);
    EXPECT_NEAR(completions[1], 2.0, 1e-9);
    EXPECT_NEAR(completions[2], 3.0, 1e-9);
}

TEST(Resource, TotalGrantsCounts) {
    Engine eng;
    Resource res(eng, 1);
    res.acquire([] {});
    res.release();
    eng.run();
    res.acquire([] {});
    res.release();
    eng.run();
    EXPECT_EQ(res.total_grants(), 2u);
}

}  // namespace
