// kooza_par: pool correctness (every index exactly once, exceptions
// propagate, nesting runs inline) and seed-derivation determinism. Runs
// under TSan in the sanitizer tier (ctest -L tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <set>
#include <stdexcept>
#include <vector>

#include "par/pool.hpp"

namespace {

using namespace kooza;

TEST(Splitmix64, KnownVectors) {
    // Reference values for seed 1234567 (Vigna's splitmix64.c).
    // First output of splitmix64 seeded with 0 (Vigna's splitmix64.c).
    EXPECT_EQ(par::splitmix64(0), 16294208416658607535ull);
    std::uint64_t x = 1234567;
    auto next = [&x] { return par::splitmix64(x++); };
    EXPECT_EQ(next(), 6457827717110365317ull);
    EXPECT_EQ(next(), 15093210361607215122ull);
}

TEST(ShardSeed, DeterministicAndDistinct) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t shard = 0; shard < 1000; ++shard) {
        const auto s = par::shard_seed(42, shard);
        EXPECT_EQ(s, par::shard_seed(42, shard));  // pure function
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);  // no collisions across shards
    // Different run seeds give different shard streams.
    EXPECT_NE(par::shard_seed(42, 0), par::shard_seed(43, 0));
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    par::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelMapMergesByIndex) {
    par::ThreadPool pool(4);
    const auto out = pool.parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, SameResultAtAnyPoolSize) {
    auto run = [](std::size_t lanes) {
        par::ThreadPool pool(lanes);
        return pool.parallel_map(100, [](std::size_t i) {
            // Shard-seeded work: result independent of schedule.
            std::mt19937_64 gen(par::shard_seed(7, i));
            return gen();
        });
    };
    const auto one = run(1);
    EXPECT_EQ(one, run(2));
    EXPECT_EQ(one, run(8));
}

TEST(ThreadPool, ExceptionPropagates) {
    par::ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [](std::size_t i) {
                                       if (i == 37)
                                           throw std::runtime_error("shard failed");
                                   }),
                 std::runtime_error);
    // The pool survives a failed loop.
    std::atomic<int> n{0};
    pool.parallel_for(10, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
    par::ThreadPool pool(4);
    std::atomic<int> n{0};
    pool.parallel_for(8, [&](std::size_t) {
        EXPECT_TRUE(par::ThreadPool::in_worker() || true);  // caller lane may not be
        pool.parallel_for(8, [&](std::size_t) { ++n; });
    });
    EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, ZeroAndOneIndexEdgeCases) {
    par::ThreadPool pool(2);
    pool.parallel_for(0, [](std::size_t) { FAIL() << "no indices to run"; });
    int runs = 0;
    pool.parallel_for(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(GlobalPool, SetThreadsResizes) {
    par::set_threads(3);
    EXPECT_EQ(par::threads(), 3u);
    EXPECT_EQ(par::pool().size(), 3u);
    par::set_threads(1);
    EXPECT_EQ(par::pool().size(), 1u);
    par::set_threads(0);  // back to auto for other tests
    EXPECT_GE(par::threads(), 1u);
}

}  // namespace
