// Tests for the hardware device models: disk mechanics, CPU pool, banked
// memory, links and the incast-capable switch port.
#include <gtest/gtest.h>

#include "hw/cpu.hpp"
#include "hw/disk.hpp"
#include "hw/memory.hpp"
#include "hw/network.hpp"
#include "hw/power.hpp"
#include "trace/sink.hpp"
#include "sim/engine.hpp"

namespace {

using namespace kooza::hw;
using kooza::sim::Engine;
using kooza::trace::IoType;
using kooza::trace::NetworkRecord;
using kooza::trace::MemorySink;
using kooza::trace::TraceSet;

TEST(DiskModel, SequentialFasterThanRandom) {
    DiskParams p;
    const double seq = disk_service_time(p, 1000, 1000, 65536);
    const double rnd = disk_service_time(p, 0, p.lbn_count / 2, 65536);
    EXPECT_LT(seq, rnd);
    // Sequential is pure transfer.
    EXPECT_NEAR(seq, 65536.0 / p.transfer_rate, 1e-12);
}

TEST(DiskModel, SeekGrowsWithDistance) {
    DiskParams p;
    const double near = disk_service_time(p, 0, p.lbn_count / 100, 4096);
    const double far = disk_service_time(p, 0, p.lbn_count - 1, 4096);
    EXPECT_LT(near, far);
    EXPECT_THROW((void)disk_service_time(p, 0, p.lbn_count, 4096), std::invalid_argument);
}

TEST(DiskModel, LargerTransfersTakeLonger) {
    DiskParams p;
    EXPECT_LT(disk_service_time(p, 0, 1000, 4096), disk_service_time(p, 0, 1000, 1 << 20));
}

TEST(Disk, EmitsStorageRecords) {
    Engine eng;
    TraceSet sink;
    MemorySink msink(sink);
    Disk disk(eng, DiskParams{}, &msink);
    double latency = -1.0;
    disk.io(42, 5000, 65536, IoType::kRead, [&](double l) { latency = l; });
    eng.run();
    ASSERT_EQ(sink.storage.size(), 1u);
    EXPECT_EQ(sink.storage[0].request_id, 42u);
    EXPECT_EQ(sink.storage[0].lbn, 5000u);
    EXPECT_EQ(sink.storage[0].size_bytes, 65536u);
    EXPECT_GT(latency, 0.0);
    EXPECT_DOUBLE_EQ(sink.storage[0].latency, latency);
    EXPECT_EQ(disk.completed(), 1u);
}

TEST(Disk, QueueSerializesIos) {
    Engine eng;
    Disk disk(eng, DiskParams{}, nullptr);
    std::vector<double> done;
    disk.io(1, 0, 1 << 20, IoType::kRead, [&](double) { done.push_back(eng.now()); });
    disk.io(2, 1 << 20, 1 << 20, IoType::kRead,
            [&](double) { done.push_back(eng.now()); });
    eng.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GT(done[1], done[0]);  // second waits for first
}

TEST(Disk, HeadMovesWithIo) {
    Engine eng;
    Disk disk(eng, DiskParams{}, nullptr);
    disk.io(1, 9999, 512, IoType::kWrite, [](double) {});
    eng.run();
    EXPECT_EQ(disk.head_position(), 10000u);  // lbn + 1 block
}

TEST(Disk, InvalidLbnThrows) {
    Engine eng;
    Disk disk(eng, DiskParams{}, nullptr);
    EXPECT_THROW(disk.io(1, DiskParams{}.lbn_count, 512, IoType::kRead, [](double) {}),
                 std::invalid_argument);
}

TEST(Cpu, WorkForBytesLinear) {
    Engine eng;
    CpuParams p{.cores = 1, .per_byte_cost = 1e-9, .per_request_overhead = 1e-5};
    Cpu cpu(eng, p, nullptr);
    EXPECT_NEAR(cpu.work_for_bytes(1000), 1e-5 + 1e-6, 1e-15);
}

TEST(Cpu, EmitsCpuRecords) {
    Engine eng;
    TraceSet sink;
    MemorySink msink(sink);
    Cpu cpu(eng, CpuParams{}, &msink);
    cpu.execute(7, 0.005, [] {});
    eng.run();
    ASSERT_EQ(sink.cpu.size(), 1u);
    EXPECT_EQ(sink.cpu[0].request_id, 7u);
    EXPECT_DOUBLE_EQ(sink.cpu[0].busy_seconds, 0.005);
    EXPECT_NEAR(sink.cpu[0].utilization, 1.0, 1e-9);  // uncontended burst
}

TEST(Cpu, CoresRunInParallel) {
    Engine eng;
    Cpu cpu(eng, CpuParams{.cores = 2}, nullptr);
    std::vector<double> done;
    for (int i = 0; i < 2; ++i)
        cpu.execute(std::uint64_t(i), 1.0, [&] { done.push_back(eng.now()); });
    eng.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[0], 1.0);
    EXPECT_DOUBLE_EQ(done[1], 1.0);  // both cores busy simultaneously
}

TEST(Cpu, ExcessWorkQueues) {
    Engine eng;
    TraceSet sink;
    MemorySink msink(sink);
    Cpu cpu(eng, CpuParams{.cores = 1}, &msink);
    cpu.execute(1, 1.0, [] {});
    cpu.execute(2, 1.0, [] {});
    eng.run();
    EXPECT_DOUBLE_EQ(eng.now(), 2.0);
    // Second burst spent half its window queued.
    EXPECT_NEAR(sink.cpu[1].utilization, 0.5, 1e-9);
    EXPECT_THROW(cpu.execute(3, -1.0, [] {}), std::invalid_argument);
}

TEST(Memory, BanksOperateInParallel) {
    Engine eng;
    Memory mem(eng, MemoryParams{.banks = 2}, nullptr);
    std::vector<double> done;
    mem.access(1, 0, 1 << 20, IoType::kRead, [&](double) { done.push_back(eng.now()); });
    mem.access(2, 1, 1 << 20, IoType::kRead, [&](double) { done.push_back(eng.now()); });
    eng.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[0], done[1]);  // different banks: no conflict
}

TEST(Memory, SameBankConflicts) {
    Engine eng;
    Memory mem(eng, MemoryParams{.banks = 2}, nullptr);
    std::vector<double> done;
    mem.access(1, 0, 1 << 20, IoType::kRead, [&](double) { done.push_back(eng.now()); });
    mem.access(2, 0, 1 << 20, IoType::kRead, [&](double) { done.push_back(eng.now()); });
    eng.run();
    EXPECT_GT(done[1], done[0]);
}

TEST(Memory, EmitsRecordsAndValidates) {
    Engine eng;
    TraceSet sink;
    MemorySink msink(sink);
    Memory mem(eng, MemoryParams{.banks = 4}, &msink);
    mem.access(9, 3, 4096, IoType::kWrite, [](double) {});
    eng.run();
    ASSERT_EQ(sink.memory.size(), 1u);
    EXPECT_EQ(sink.memory[0].bank, 3u);
    EXPECT_EQ(sink.memory[0].type, IoType::kWrite);
    EXPECT_THROW(mem.access(9, 4, 4096, IoType::kRead, [](double) {}),
                 std::invalid_argument);
    EXPECT_EQ(mem.bank_of(0), 0u);
    EXPECT_EQ(mem.bank_of(4096), 1u);
}

TEST(Link, LatencyIsSerializationPlusPropagation) {
    Engine eng;
    LinkParams p{.bandwidth = 1e6, .propagation = 0.01};
    Link link(eng, p, NetworkRecord::Direction::kRx, nullptr);
    double latency = 0.0;
    link.transfer(1, 500000, [&](double l) { latency = l; });
    eng.run();
    EXPECT_NEAR(latency, 0.5 + 0.01, 1e-9);
}

TEST(Link, TransfersSerialize) {
    Engine eng;
    TraceSet sink;
    MemorySink msink(sink);
    LinkParams p{.bandwidth = 1e6, .propagation = 0.0};
    Link link(eng, p, NetworkRecord::Direction::kTx, &msink);
    std::vector<double> done;
    link.transfer(1, 1000000, [&](double) { done.push_back(eng.now()); });
    link.transfer(2, 1000000, [&](double) { done.push_back(eng.now()); });
    eng.run();
    EXPECT_NEAR(done[0], 1.0, 1e-9);
    EXPECT_NEAR(done[1], 2.0, 1e-9);
    EXPECT_EQ(sink.network.size(), 2u);
    EXPECT_EQ(sink.network[0].direction, NetworkRecord::Direction::kTx);
}

TEST(SwitchPort, DeliversWholePayload) {
    Engine eng;
    TraceSet sink;
    MemorySink msink(sink);
    SwitchPort port(eng, SwitchParams{}, NetworkRecord::Direction::kRx, &msink);
    double latency = 0.0;
    port.transfer(5, 1 << 20, [&](double l) { latency = l; });
    eng.run();
    EXPECT_GT(latency, 0.0);
    ASSERT_EQ(sink.network.size(), 1u);
    EXPECT_EQ(sink.network[0].size_bytes, 1u << 20);
    EXPECT_EQ(port.drops(), 0u);
}

TEST(SwitchPort, ControlTransfersNotRecorded) {
    Engine eng;
    TraceSet sink;
    MemorySink msink(sink);
    SwitchPort port(eng, SwitchParams{}, NetworkRecord::Direction::kRx, &msink);
    port.transfer(5, 512, [](double) {}, /*record=*/false);
    eng.run();
    EXPECT_TRUE(sink.network.empty());
    EXPECT_EQ(port.completed(), 1u);
}

TEST(SwitchPort, IncastCausesDropsAndCollapse) {
    // Many concurrent senders into a tiny buffer: drops and timeouts.
    auto run_incast = [](int senders, std::uint32_t buffer) {
        Engine eng;
        SwitchParams p;
        p.buffer_frames = buffer;
        p.retry_timeout = 0.05;
        SwitchPort port(eng, p, NetworkRecord::Direction::kRx, nullptr);
        std::vector<double> latencies;
        for (int i = 0; i < senders; ++i)
            port.transfer(std::uint64_t(i), 256 << 10,
                          [&](double l) { latencies.push_back(l); });
        eng.run();
        double worst = 0.0;
        for (double l : latencies) worst = std::max(worst, l);
        return std::make_pair(port.drops(), worst);
    };
    const auto [drops_few, worst_few] = run_incast(2, 8);
    const auto [drops_many, worst_many] = run_incast(64, 8);
    EXPECT_EQ(drops_few, 0u);
    EXPECT_GT(drops_many, 0u);
    EXPECT_GT(worst_many, worst_few * 2.0);
}

TEST(Power, IdleFloorAndLoadProportionality) {
    PowerModel pm({.idle_watts = 100.0, .cpu_dynamic_watts = 80.0,
                   .disk_active_watts = 10.0, .memory_active_watts = 10.0});
    EXPECT_DOUBLE_EQ(pm.power(0.0, 0.0), 100.0);
    EXPECT_DOUBLE_EQ(pm.power(1.0, 1.0, 1.0), 200.0);
    EXPECT_DOUBLE_EQ(pm.power(0.5, 0.0), 140.0);
    // Utilizations clamp to [0,1].
    EXPECT_DOUBLE_EQ(pm.power(5.0, -1.0), 180.0);
}

TEST(Power, EnergyIntegratesSamples) {
    PowerModel pm({.idle_watts = 100.0, .cpu_dynamic_watts = 100.0,
                   .disk_active_watts = 0.0, .memory_active_watts = 0.0});
    const std::vector<UtilizationSample> samples{
        {1.0, 0.0, 0.0, 0.0},   // 1 s at idle-known-at-sample (100 W)
        {2.0, 1.0, 0.0, 0.0},   // 1 s at full CPU (200 W)
    };
    EXPECT_DOUBLE_EQ(pm.energy(samples), 100.0 + 200.0);
    EXPECT_DOUBLE_EQ(pm.energy({}), 0.0);
    const std::vector<UtilizationSample> bad{{2.0, 0, 0, 0}, {1.0, 0, 0, 0}};
    EXPECT_THROW((void)pm.energy(bad), std::invalid_argument);
}

TEST(Power, ConstantWindowEnergy) {
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.energy(10.0, 0.0, 0.0), 10.0 * pm.params().idle_watts);
    EXPECT_GT(pm.energy(10.0, 0.8, 0.5), pm.energy(10.0, 0.1, 0.1));
    EXPECT_THROW((void)pm.energy(-1.0, 0.0, 0.0), std::invalid_argument);
}

TEST(Power, Validation) {
    EXPECT_THROW(PowerModel({.idle_watts = -1.0}), std::invalid_argument);
}

TEST(SwitchPort, ParamValidation) {
    Engine eng;
    SwitchParams bad;
    bad.mtu = 0;
    EXPECT_THROW(SwitchPort(eng, bad), std::invalid_argument);
    SwitchParams bad2;
    bad2.buffer_frames = 0;
    EXPECT_THROW(SwitchPort(eng, bad2), std::invalid_argument);
}

}  // namespace
