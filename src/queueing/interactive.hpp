// Operational laws for closed (interactive) queueing systems, after
// Lazowska et al., "Quantitative System Performance" (1984), ch. 3.
//
// A closed system with N clients, think time Z, and throughput X obeys
// the interactive response-time law R = N/X - Z — an exact consequence
// of Little's law applied to the client population, independent of any
// distributional assumptions. It anchors the closed-loop capture path:
// measured mean latency must match N/X - Z whenever the pool is fully
// engaged, and the asymptotic bounds below say where adding concurrency
// stops buying goodput (the knee the admission controller hunts for).
#pragma once

#include <algorithm>
#include <cstddef>

namespace kooza::queueing {

/// Interactive response-time law: mean response time R = N/X - Z for a
/// closed system of `clients` with mean think `think_time` sustaining
/// throughput `throughput`. Returns 0 for non-positive throughput (an
/// idle system has no meaningful response time) and floors at 0.
[[nodiscard]] inline double interactive_response_time(std::size_t clients,
                                                      double think_time,
                                                      double throughput) {
    if (throughput <= 0.0) return 0.0;
    return std::max(0.0, double(clients) / throughput - think_time);
}

/// Throughput a closed system needs to give `clients` a mean response
/// time of `response_time` (the law solved for X).
[[nodiscard]] inline double interactive_throughput(std::size_t clients,
                                                   double think_time,
                                                   double response_time) {
    const double cycle = response_time + think_time;
    if (cycle <= 0.0) return 0.0;
    return double(clients) / cycle;
}

/// Asymptotic throughput bound for a closed system: with total service
/// demand `total_demand` per request and bottleneck demand `max_demand`,
///   X(N) <= min(N / (Z + total_demand), 1 / max_demand).
/// The crossover N* = (Z + total_demand) / max_demand is the smallest
/// population that can saturate the bottleneck — the offline-optimal
/// concurrency a ticket sweep discovers empirically.
[[nodiscard]] inline double closed_throughput_bound(std::size_t clients,
                                                    double think_time,
                                                    double total_demand,
                                                    double max_demand) {
    double bound = max_demand > 0.0 ? 1.0 / max_demand : 0.0;
    const double cycle = think_time + total_demand;
    if (cycle > 0.0) {
        const double light = double(clients) / cycle;
        bound = bound > 0.0 ? std::min(bound, light) : light;
    }
    return bound;
}

/// Saturation population N* = (Z + total_demand) / max_demand: below it
/// the system is client-limited, above it bottleneck-limited.
[[nodiscard]] inline double saturation_population(double think_time,
                                                  double total_demand,
                                                  double max_demand) {
    if (max_demand <= 0.0) return 0.0;
    return (think_time + total_demand) / max_demand;
}

}  // namespace kooza::queueing
