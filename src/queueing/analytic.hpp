// Closed-form queueing results: M/M/1, M/M/c (Erlang C) and M/G/1
// (Pollaczek-Khinchine). These give the analytic predictions the in-depth
// modeling literature (Liu '05, Kamra '04) relies on, and serve as oracles
// for the queueing-network simulator's tests.
#pragma once

#include <cstdint>

namespace kooza::queueing {

/// Steady-state metrics of a single queueing station.
struct StationMetrics {
    double utilization = 0.0;      ///< rho
    double mean_queue_length = 0.0;  ///< Lq: jobs waiting (excluding in service)
    double mean_jobs = 0.0;          ///< L: jobs in system
    double mean_wait = 0.0;          ///< Wq: time waiting
    double mean_response = 0.0;      ///< W: wait + service
};

/// M/M/1 with arrival rate lambda and service rate mu. Requires
/// lambda < mu (stability); throws std::invalid_argument otherwise.
[[nodiscard]] StationMetrics mm1(double lambda, double mu);

/// M/M/c with c identical servers. Requires lambda < c*mu.
[[nodiscard]] StationMetrics mmc(double lambda, double mu, std::uint32_t c);

/// Erlang-C probability that an arrival must wait in an M/M/c.
[[nodiscard]] double erlang_c(double lambda, double mu, std::uint32_t c);

/// M/G/1 via Pollaczek-Khinchine. `mean_service` and `service_scv` are the
/// mean and squared coefficient of variation (var/mean^2) of the service
/// distribution. Requires lambda * mean_service < 1.
[[nodiscard]] StationMetrics mg1(double lambda, double mean_service, double service_scv);

}  // namespace kooza::queueing
