// SQS — Stochastic Queueing Simulation (Meisner '10, surveyed in the
// paper's Section 2.2).
//
// SQS scales datacenter evaluation "to thousands of machines" in two
// phases: (1) a characterization phase builds *empirical* workload models
// (task arrival and service distributions) from observation, and (2) a
// simulation phase runs queueing models drawn from those distributions,
// using statistical sampling to stop as soon as the metric of interest
// has converged instead of simulating every server. This module
// implements both phases on top of the library's empirical distributions
// and event engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "stats/distributions.hpp"
#include "trace/records.hpp"

namespace kooza::queueing {

/// Phase 1 output: empirical per-server workload model.
struct SqsWorkloadModel {
    std::unique_ptr<stats::Distribution> interarrival;  ///< seconds between tasks
    std::unique_ptr<stats::Distribution> service;       ///< task service demand

    /// Build from raw samples (e.g. recorded arrival gaps and busy times).
    /// Falls back to empirical distributions when no parametric family
    /// passes the KS threshold — "empirical workload models ...
    /// constructed in an online manner" (the SQS characterization step).
    static SqsWorkloadModel characterize(std::span<const double> arrival_gaps,
                                         std::span<const double> service_times,
                                         double ks_threshold = 0.08);

    /// Convenience: characterize from end-to-end request records, using
    /// inter-arrival gaps and a service estimate (latency of uncontended
    /// requests approximated by the minimum-latency quantile band).
    static SqsWorkloadModel characterize(std::span<const trace::RequestRecord> recs,
                                         double ks_threshold = 0.08);

    [[nodiscard]] std::string describe() const;
};

/// Result of a sampled simulation run.
struct SqsResult {
    double mean_response = 0.0;       ///< across sampled servers
    double ci_halfwidth = 0.0;        ///< 95% CI on the mean
    double utilization = 0.0;         ///< mean server utilization
    std::size_t servers_requested = 0;
    std::size_t servers_simulated = 0;  ///< how many the sampler needed
    std::uint64_t tasks_simulated = 0;

    /// The SQS selling point: fraction of the fleet that never had to be
    /// simulated.
    [[nodiscard]] double sampling_savings() const noexcept {
        return servers_requested == 0
                   ? 0.0
                   : 1.0 - double(servers_simulated) / double(servers_requested);
    }
};

/// Phase 2: simulate a fleet of homogeneous single-server queues fed by
/// the workload model, sampling servers (in batches across the thread
/// pool; server i's stream is seeded from (seed, i) so results are
/// bit-identical at any thread count) until the 95% confidence interval
/// of the fleet-mean response time is within `target_rel_ci` of the mean
/// (or the whole fleet has been simulated).
class SqsSimulator {
public:
    struct Options {
        std::size_t tasks_per_server = 2000;  ///< horizon per sampled server
        /// Initial tasks excluded from the response average (the queue
        /// starts empty, which biases the mean low).
        std::size_t warmup_tasks = 200;
        double target_rel_ci = 0.05;          ///< CI half-width / mean
        std::size_t min_servers = 4;          ///< before testing convergence
        std::uint64_t seed = 17;
    };

    explicit SqsSimulator(Options opts);
    SqsSimulator() : SqsSimulator(Options{}) {}

    /// Throws std::invalid_argument if the model is unstable (offered
    /// load >= 1) or n_servers == 0.
    [[nodiscard]] SqsResult run(const SqsWorkloadModel& model,
                                std::size_t n_servers) const;

private:
    Options opts_;
};

}  // namespace kooza::queueing
