#include "queueing/network.hpp"

#include <stdexcept>

namespace kooza::queueing {

Network::Network(sim::Engine& engine, std::uint64_t seed)
    : engine_(engine), rng_(seed) {}

std::size_t Network::add_station(std::string name, std::uint32_t servers) {
    Station s;
    s.name = std::move(name);
    s.servers = std::make_unique<sim::Resource>(engine_, servers);
    stations_.push_back(std::move(s));
    return stations_.size() - 1;
}

std::size_t Network::add_class(std::string name, std::vector<Hop> path) {
    if (path.empty()) throw std::invalid_argument("Network::add_class: empty path");
    for (const auto& hop : path) {
        if (hop.station >= stations_.size())
            throw std::invalid_argument("Network::add_class: unknown station");
        if (!hop.service)
            throw std::invalid_argument("Network::add_class: missing service dist");
    }
    JobClass jc;
    jc.name = std::move(name);
    jc.path = std::move(path);
    jc.sojourns.resize(stations_.size());
    classes_.push_back(std::move(jc));
    return classes_.size() - 1;
}

void Network::submit(std::size_t cls) {
    if (cls >= classes_.size()) throw std::out_of_range("Network::submit: class");
    start_hop(cls, 0, engine_.now());
}

void Network::start_hop(std::size_t cls, std::size_t hop, double job_start) {
    auto& jc = classes_[cls];
    const auto& h = jc.path[hop];
    auto& st = stations_[h.station];
    ++st.arrivals_seen;
    st.queue_seen_sum += st.servers->queue_length();
    const double hop_start = engine_.now();
    st.servers->acquire([this, cls, hop, job_start, hop_start] {
        auto& jc2 = classes_[cls];
        const auto& h2 = jc2.path[hop];
        const double service = h2.service->sample(rng_);
        engine_.schedule_after(service, [this, cls, hop, job_start, hop_start] {
            auto& jc3 = classes_[cls];
            const auto& h3 = jc3.path[hop];
            auto& st3 = stations_[h3.station];
            st3.servers->release();
            ++st3.completions;
            jc3.sojourns[h3.station].push_back(engine_.now() - hop_start);
            if (hop + 1 < jc3.path.size()) {
                start_hop(cls, hop + 1, job_start);
            } else {
                jc3.responses.push_back(engine_.now() - job_start);
            }
        });
    });
}

void Network::drive(std::size_t cls, ArrivalProcess& arrivals, std::size_t count) {
    if (cls >= classes_.size()) throw std::out_of_range("Network::drive: class");
    double t = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        t += arrivals.next_interarrival(rng_);
        engine_.schedule_after(t, [this, cls] { submit(cls); });
    }
}

const std::vector<double>& Network::response_times(std::size_t cls) const {
    if (cls >= classes_.size()) throw std::out_of_range("Network::response_times");
    return classes_[cls].responses;
}

const std::vector<double>& Network::station_sojourns(std::size_t cls,
                                                     std::size_t station) const {
    if (cls >= classes_.size()) throw std::out_of_range("Network::station_sojourns: class");
    if (station >= stations_.size())
        throw std::out_of_range("Network::station_sojourns: station");
    return classes_[cls].sojourns[station];
}

StationReport Network::station_report(std::size_t station) const {
    if (station >= stations_.size()) throw std::out_of_range("Network::station_report");
    const auto& st = stations_[station];
    StationReport r;
    r.name = st.name;
    r.completions = st.completions;
    r.utilization = st.servers->utilization();
    r.mean_queue_seen = st.arrivals_seen == 0
                            ? 0.0
                            : double(st.queue_seen_sum) / double(st.arrivals_seen);
    return r;
}

std::unique_ptr<Network> make_three_tier(sim::Engine& engine, const ThreeTierConfig& cfg,
                                         std::size_t& class_out, std::uint64_t seed) {
    auto net = std::make_unique<Network>(engine, seed);
    const std::size_t web = net->add_station("web", cfg.web_servers);
    const std::size_t app = net->add_station("app", cfg.app_servers);
    const std::size_t db = net->add_station("db", cfg.db_servers);
    std::vector<Hop> path;
    path.push_back(Hop{web, std::make_shared<stats::Exponential>(1.0 / cfg.web_mean_service)});
    path.push_back(Hop{app, std::make_shared<stats::Exponential>(1.0 / cfg.app_mean_service)});
    path.push_back(Hop{db, std::make_shared<stats::Exponential>(1.0 / cfg.db_mean_service)});
    class_out = net->add_class("request", std::move(path));
    return net;
}

}  // namespace kooza::queueing
