#include "queueing/sqs.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "par/pool.hpp"
#include "sim/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/fitting.hpp"

namespace kooza::queueing {

SqsWorkloadModel SqsWorkloadModel::characterize(std::span<const double> arrival_gaps,
                                                std::span<const double> service_times,
                                                double ks_threshold) {
    if (arrival_gaps.empty() || service_times.empty())
        throw std::invalid_argument("SqsWorkloadModel::characterize: empty samples");
    SqsWorkloadModel m;
    m.interarrival = stats::fit_or_empirical(arrival_gaps, ks_threshold);
    m.service = stats::fit_or_empirical(service_times, ks_threshold);
    return m;
}

SqsWorkloadModel SqsWorkloadModel::characterize(
    std::span<const trace::RequestRecord> recs, double ks_threshold) {
    if (recs.size() < 3)
        throw std::invalid_argument("SqsWorkloadModel::characterize: need >= 3 records");
    std::vector<double> arrivals;
    std::vector<double> latencies;
    for (const auto& r : recs) {
        arrivals.push_back(r.arrival);
        latencies.push_back(r.latency());
    }
    std::sort(arrivals.begin(), arrivals.end());
    std::vector<double> gaps(arrivals.size() - 1);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        gaps[i - 1] = std::max(arrivals[i] - arrivals[i - 1], 1e-12);
    // Service estimate: contention inflates latency, so take the lower
    // quartile of the latency distribution as the uncontended service band
    // and rescale the whole sample into it.
    std::sort(latencies.begin(), latencies.end());
    const double floor_latency = latencies[latencies.size() / 4];
    const double mean_latency = stats::mean(latencies);
    const double shrink =
        mean_latency > 0.0 ? std::min(1.0, floor_latency / mean_latency) : 1.0;
    std::vector<double> service(latencies.size());
    for (std::size_t i = 0; i < latencies.size(); ++i)
        service[i] = std::max(latencies[i] * shrink, 1e-9);
    return characterize(gaps, service, ks_threshold);
}

std::string SqsWorkloadModel::describe() const {
    std::ostringstream os;
    os << "SqsWorkloadModel(interarrival=" << interarrival->describe()
       << ", service=" << service->describe() << ")";
    return os.str();
}

SqsSimulator::SqsSimulator(Options opts) : opts_(opts) {
    if (opts_.tasks_per_server == 0)
        throw std::invalid_argument("SqsSimulator: tasks_per_server 0");
    if (!(opts_.target_rel_ci > 0.0))
        throw std::invalid_argument("SqsSimulator: target_rel_ci must be > 0");
    if (opts_.min_servers == 0)
        throw std::invalid_argument("SqsSimulator: min_servers must be >= 1");
}

SqsResult SqsSimulator::run(const SqsWorkloadModel& model,
                            std::size_t n_servers) const {
    if (n_servers == 0) throw std::invalid_argument("SqsSimulator::run: no servers");
    if (!model.interarrival || !model.service)
        throw std::invalid_argument("SqsSimulator::run: incomplete model");
    const double rho = model.service->mean() / model.interarrival->mean();
    if (rho >= 1.0)
        throw std::invalid_argument("SqsSimulator::run: unstable (rho >= 1)");

    SqsResult out;
    out.servers_requested = n_servers;

    // One G/G/1 server, simulated directly by Lindley recursion — orders
    // of magnitude cheaper than a full event-driven run and exactly
    // equivalent for a single FCFS queue. Server s draws from a stream
    // seeded by shard_seed(seed, s), so its sample path is a function of
    // (seed, s) only — batches of servers can then run across the thread
    // pool while the convergence scan below consumes them strictly in
    // index order, reproducing the sequential sampler bit-for-bit at any
    // thread count (servers simulated past the stopping index are simply
    // discarded, not counted).
    struct ServerSample {
        double mean_response = 0.0;
        double utilization = 0.0;
    };
    auto simulate_server = [&](std::size_t s) -> ServerSample {
        sim::Rng server_rng(par::shard_seed(opts_.seed, s));
        double wait = 0.0;
        double response_sum = 0.0;
        double busy_sum = 0.0;
        double clock = 0.0;
        std::size_t counted = 0;
        const std::size_t warmup =
            std::min(opts_.warmup_tasks, opts_.tasks_per_server - 1);
        for (std::size_t t = 0; t < opts_.tasks_per_server; ++t) {
            const double gap =
                std::max(model.interarrival->sample(server_rng), 1e-12);
            const double service =
                std::max(model.service->sample(server_rng), 1e-12);
            // Lindley: W_{n+1} = max(0, W_n + S_n - A_{n+1}).
            if (t >= warmup) {
                response_sum += wait + service;
                ++counted;
            }
            busy_sum += service;
            clock += gap;
            wait = std::max(0.0, wait + service - gap);
        }
        return {response_sum / double(counted),
                clock > 0.0 ? std::min(1.0, busy_sum / clock) : 0.0};
    };

    std::vector<double> per_server_mean;
    double util_sum = 0.0;
    const std::size_t batch =
        std::max<std::size_t>(std::min(par::threads(), n_servers), 1);
    std::vector<ServerSample> samples;
    for (std::size_t s0 = 0; s0 < n_servers; s0 += batch) {
        const std::size_t b = std::min(batch, n_servers - s0);
        samples.assign(b, ServerSample{});
        par::pool().parallel_for(
            b, [&](std::size_t j) { samples[j] = simulate_server(s0 + j); });
        for (std::size_t j = 0; j < b; ++j) {
            per_server_mean.push_back(samples[j].mean_response);
            util_sum += samples[j].utilization;
            out.tasks_simulated += opts_.tasks_per_server;
            ++out.servers_simulated;

            if (out.servers_simulated >= opts_.min_servers) {
                const double mean = stats::mean(per_server_mean);
                const double sd = stats::stddev(per_server_mean);
                const double half =
                    1.96 * sd / std::sqrt(double(per_server_mean.size()));
                if (mean > 0.0 && half / mean <= opts_.target_rel_ci) {
                    out.mean_response = mean;
                    out.ci_halfwidth = half;
                    out.utilization = util_sum / double(out.servers_simulated);
                    return out;
                }
            }
        }
    }
    out.mean_response = stats::mean(per_server_mean);
    out.ci_halfwidth =
        1.96 * stats::stddev(per_server_mean) / std::sqrt(double(per_server_mean.size()));
    out.utilization = util_sum / double(out.servers_simulated);
    return out;
}

}  // namespace kooza::queueing
