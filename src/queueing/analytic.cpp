#include "queueing/analytic.hpp"

#include <cmath>
#include <stdexcept>

namespace kooza::queueing {

StationMetrics mm1(double lambda, double mu) {
    if (!(lambda > 0.0) || !(mu > 0.0))
        throw std::invalid_argument("mm1: rates must be > 0");
    const double rho = lambda / mu;
    if (rho >= 1.0) throw std::invalid_argument("mm1: unstable (lambda >= mu)");
    StationMetrics m;
    m.utilization = rho;
    m.mean_jobs = rho / (1.0 - rho);
    m.mean_queue_length = rho * rho / (1.0 - rho);
    m.mean_response = 1.0 / (mu - lambda);
    m.mean_wait = m.mean_response - 1.0 / mu;
    return m;
}

double erlang_c(double lambda, double mu, std::uint32_t c) {
    if (!(lambda > 0.0) || !(mu > 0.0))
        throw std::invalid_argument("erlang_c: rates must be > 0");
    if (c == 0) throw std::invalid_argument("erlang_c: c must be >= 1");
    const double a = lambda / mu;  // offered load in Erlangs
    if (a >= double(c)) throw std::invalid_argument("erlang_c: unstable");
    // Iterative Erlang-B then convert to Erlang-C (numerically stable).
    double b = 1.0;
    for (std::uint32_t k = 1; k <= c; ++k) b = a * b / (double(k) + a * b);
    const double rho = a / double(c);
    return b / (1.0 - rho + rho * b);
}

StationMetrics mmc(double lambda, double mu, std::uint32_t c) {
    const double pw = erlang_c(lambda, mu, c);
    const double rho = lambda / (mu * double(c));
    StationMetrics m;
    m.utilization = rho;
    m.mean_wait = pw / (double(c) * mu - lambda);
    m.mean_response = m.mean_wait + 1.0 / mu;
    m.mean_queue_length = lambda * m.mean_wait;
    m.mean_jobs = lambda * m.mean_response;
    return m;
}

StationMetrics mg1(double lambda, double mean_service, double service_scv) {
    if (!(lambda > 0.0) || !(mean_service > 0.0))
        throw std::invalid_argument("mg1: lambda and mean service must be > 0");
    if (service_scv < 0.0) throw std::invalid_argument("mg1: scv must be >= 0");
    const double rho = lambda * mean_service;
    if (rho >= 1.0) throw std::invalid_argument("mg1: unstable (rho >= 1)");
    StationMetrics m;
    m.utilization = rho;
    m.mean_wait = rho * mean_service * (1.0 + service_scv) / (2.0 * (1.0 - rho));
    m.mean_response = m.mean_wait + mean_service;
    m.mean_queue_length = lambda * m.mean_wait;
    m.mean_jobs = lambda * m.mean_response;
    return m;
}

}  // namespace kooza::queueing
