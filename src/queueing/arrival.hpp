// Arrival processes.
//
// KOOZA's network sub-model is "a simple queueing model to represent the
// arrival-rate of user-requests" (paper, Section 4); Sengupta '03 (in the
// survey) stresses that real DC traffic often diverges from Poisson, so we
// also provide a 2-state MMPP (bursty) and a trace-driven process, which
// ablation A4 compares.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace kooza::queueing {

/// A stationary stream of arrival events, described by successive
/// inter-arrival times.
class ArrivalProcess {
public:
    virtual ~ArrivalProcess() = default;
    /// Time until the next arrival (> 0 except for degenerate traces).
    [[nodiscard]] virtual double next_interarrival(sim::Rng& rng) = 0;
    /// Long-run arrival rate (events per second).
    [[nodiscard]] virtual double mean_rate() const = 0;
    [[nodiscard]] virtual std::string describe() const = 0;
    [[nodiscard]] virtual std::unique_ptr<ArrivalProcess> clone() const = 0;
    /// Reset any internal state (MMPP phase, trace cursor).
    virtual void reset() {}
};

/// Poisson arrivals at `rate` per second.
class PoissonArrivals final : public ArrivalProcess {
public:
    explicit PoissonArrivals(double rate);
    [[nodiscard]] double next_interarrival(sim::Rng& rng) override;
    [[nodiscard]] double mean_rate() const override { return rate_; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
        return std::make_unique<PoissonArrivals>(*this);
    }

private:
    double rate_;
};

/// Two-state Markov-modulated Poisson process: a hidden phase alternates
/// between rates r0 (quiet) and r1 (burst); the phase flips after an
/// exponential sojourn with rate s0 / s1. Produces the bursty,
/// autocorrelated arrival streams real DC front-ends see.
class MmppArrivals final : public ArrivalProcess {
public:
    MmppArrivals(double rate0, double rate1, double switch0, double switch1);
    [[nodiscard]] double next_interarrival(sim::Rng& rng) override;
    [[nodiscard]] double mean_rate() const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
        return std::make_unique<MmppArrivals>(*this);
    }
    void reset() override { phase_ = 0; }

    [[nodiscard]] double rate(int phase) const { return rate_[phase & 1]; }
    [[nodiscard]] double switch_rate(int phase) const { return switch_[phase & 1]; }

private:
    double rate_[2];
    double switch_[2];
    int phase_ = 0;
};

/// Deterministic arrivals every 1/rate seconds.
class DeterministicArrivals final : public ArrivalProcess {
public:
    explicit DeterministicArrivals(double rate);
    [[nodiscard]] double next_interarrival(sim::Rng&) override { return 1.0 / rate_; }
    [[nodiscard]] double mean_rate() const override { return rate_; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
        return std::make_unique<DeterministicArrivals>(*this);
    }

private:
    double rate_;
};

/// Deterministic arrival-rate envelope r(t) >= 0 for nonstationary
/// (time-varying) Poisson processes. The scenario library's diurnal load
/// curves and flash-crowd spikes are envelopes; ModulatedArrivals turns
/// one into an arrival stream by Lewis-Shedler thinning.
class RateEnvelope {
public:
    virtual ~RateEnvelope() = default;
    /// Instantaneous arrival rate at absolute time t (events/second).
    [[nodiscard]] virtual double rate_at(double t) const = 0;
    /// A finite upper bound on rate_at over all t (the thinning majorant).
    [[nodiscard]] virtual double peak_rate() const = 0;
    /// Time-average rate over one period (for mean_rate()).
    [[nodiscard]] virtual double average_rate() const = 0;
    [[nodiscard]] virtual std::string describe() const = 0;
    [[nodiscard]] virtual std::unique_ptr<RateEnvelope> clone() const = 0;
};

/// Diurnal load curve: base * (1 + amplitude * sin(2*pi*(t/period + phase))),
/// the classic day/night utilization cycle of user-facing datacenter
/// traffic, compressed to an arbitrary period for simulation.
class DiurnalEnvelope final : public RateEnvelope {
public:
    /// amplitude in [0, 1): the curve stays strictly positive.
    DiurnalEnvelope(double base_rate, double amplitude, double period,
                    double phase = 0.0);
    [[nodiscard]] double rate_at(double t) const override;
    [[nodiscard]] double peak_rate() const override {
        return base_ * (1.0 + amplitude_);
    }
    [[nodiscard]] double average_rate() const override { return base_; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<RateEnvelope> clone() const override {
        return std::make_unique<DiurnalEnvelope>(*this);
    }

private:
    double base_;
    double amplitude_;
    double period_;
    double phase_;
};

/// Flash-crowd spikes: base rate, except during a window of `spike_len`
/// seconds at the start of every `period` the rate jumps to
/// base * multiplier (a hot object going viral, a failover herd).
class SpikeEnvelope final : public RateEnvelope {
public:
    SpikeEnvelope(double base_rate, double multiplier, double period,
                  double spike_len);
    [[nodiscard]] double rate_at(double t) const override;
    [[nodiscard]] double peak_rate() const override { return base_ * multiplier_; }
    [[nodiscard]] double average_rate() const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<RateEnvelope> clone() const override {
        return std::make_unique<SpikeEnvelope>(*this);
    }

private:
    double base_;
    double multiplier_;
    double period_;
    double spike_len_;
};

/// Nonstationary Poisson arrivals following a RateEnvelope, generated by
/// Lewis-Shedler thinning: candidate gaps are drawn at the envelope's
/// peak rate and accepted with probability rate(t)/peak. Carries its own
/// absolute clock; reset() rewinds it to 0.
class ModulatedArrivals final : public ArrivalProcess {
public:
    explicit ModulatedArrivals(std::unique_ptr<RateEnvelope> envelope);
    ModulatedArrivals(const ModulatedArrivals& other);
    [[nodiscard]] double next_interarrival(sim::Rng& rng) override;
    [[nodiscard]] double mean_rate() const override {
        return envelope_->average_rate();
    }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
        return std::make_unique<ModulatedArrivals>(*this);
    }
    void reset() override { t_ = 0.0; }

    [[nodiscard]] const RateEnvelope& envelope() const noexcept { return *envelope_; }

private:
    std::unique_ptr<RateEnvelope> envelope_;
    double t_ = 0.0;
};

/// Replays a recorded inter-arrival sequence, cycling when exhausted.
class TraceArrivals final : public ArrivalProcess {
public:
    explicit TraceArrivals(std::vector<double> interarrivals);
    /// Build from absolute arrival timestamps (sorted internally).
    static TraceArrivals from_timestamps(std::span<const double> arrivals);
    [[nodiscard]] double next_interarrival(sim::Rng&) override;
    [[nodiscard]] double mean_rate() const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
        return std::make_unique<TraceArrivals>(*this);
    }
    void reset() override { cursor_ = 0; }

    [[nodiscard]] const std::vector<double>& gaps() const noexcept { return gaps_; }

private:
    std::vector<double> gaps_;
    std::size_t cursor_ = 0;
};

}  // namespace kooza::queueing
