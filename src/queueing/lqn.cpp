#include "queueing/lqn.hpp"

#include <cmath>
#include <stdexcept>

namespace kooza::queueing {

LqnModel::LqnModel(sim::Engine& engine, std::uint64_t seed)
    : engine_(engine), rng_(seed) {}

std::size_t LqnModel::add_task(std::string name, std::uint32_t threads,
                               std::shared_ptr<const stats::Distribution> service) {
    if (!service) throw std::invalid_argument("LqnModel::add_task: null service");
    Task t;
    t.name = std::move(name);
    t.threads = std::make_unique<sim::Resource>(engine_, threads);
    t.service = std::move(service);
    tasks_.push_back(std::move(t));
    return tasks_.size() - 1;
}

bool LqnModel::reachable(std::size_t from, std::size_t target) const {
    if (from == target) return true;
    for (const auto& c : tasks_[from].calls)
        if (reachable(c.callee, target)) return true;
    return false;
}

void LqnModel::add_call(std::size_t caller, std::size_t callee, double mean_calls) {
    if (caller >= tasks_.size() || callee >= tasks_.size())
        throw std::invalid_argument("LqnModel::add_call: unknown task");
    if (!(mean_calls > 0.0))
        throw std::invalid_argument("LqnModel::add_call: mean_calls must be > 0");
    if (reachable(callee, caller))
        throw std::invalid_argument("LqnModel::add_call: would create a cycle");
    tasks_[caller].calls.push_back(Call{callee, mean_calls});
}

void LqnModel::invoke(std::size_t task, std::function<void()> on_done) {
    auto& t = tasks_[task];
    t.threads->acquire([this, task, on_done = std::move(on_done)]() mutable {
        auto& t2 = tasks_[task];
        const double service = std::max(t2.service->sample(rng_), 0.0);
        engine_.schedule_after(service, [this, task,
                                         on_done = std::move(on_done)]() mutable {
            // Own processing done; now the nested synchronous calls, with
            // this task's thread still held.
            run_calls(task, 0, [this, task, on_done = std::move(on_done)] {
                auto& t3 = tasks_[task];
                t3.threads->release();
                ++t3.completions;
                on_done();
            });
        });
    });
}

void LqnModel::run_calls(std::size_t task, std::size_t call_index,
                         std::function<void()> on_done) {
    auto& t = tasks_[task];
    if (call_index >= t.calls.size()) {
        on_done();
        return;
    }
    const Call& call = t.calls[call_index];
    // Sample the number of invocations: floor(mean) plus a Bernoulli for
    // the fractional part.
    std::size_t n = std::size_t(call.mean_calls);
    if (rng_.bernoulli(call.mean_calls - double(n))) ++n;
    auto next_call = [this, task, call_index, on_done = std::move(on_done)]() mutable {
        run_calls(task, call_index + 1, std::move(on_done));
    };
    if (n == 0) {
        next_call();
        return;
    }
    // Run the n invocations sequentially (synchronous RPCs).
    auto remaining = std::make_shared<std::size_t>(n);
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [this, callee = call.callee, remaining, loop,
             next_call = std::move(next_call)]() mutable {
        if (*remaining == 0) {
            engine_.schedule_after(0.0, [loop] { *loop = nullptr; });
            next_call();
            return;
        }
        --*remaining;
        invoke(callee, [loop] { (*loop)(); });
    };
    (*loop)();
}

void LqnModel::drive(std::size_t task, ArrivalProcess& arrivals, std::size_t count,
                     sim::Rng& rng) {
    if (task >= tasks_.size()) throw std::invalid_argument("LqnModel::drive: task");
    double t = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        t += arrivals.next_interarrival(rng);
        engine_.schedule_after(t, [this, task] {
            const double start = engine_.now();
            invoke(task, [this, start] { responses_.push_back(engine_.now() - start); });
        });
    }
}

double LqnModel::pool_utilization(std::size_t task) const {
    if (task >= tasks_.size())
        throw std::invalid_argument("LqnModel::pool_utilization: task");
    return tasks_[task].threads->utilization();
}

std::uint64_t LqnModel::completions(std::size_t task) const {
    if (task >= tasks_.size())
        throw std::invalid_argument("LqnModel::completions: task");
    return tasks_[task].completions;
}

}  // namespace kooza::queueing
