// Layered queueing network (LQN) simulation.
//
// Franks '09 and Imieowski '09 (paper Section 2.2) model multi-tier web
// applications with LQNs "in order to demonstrate the nested possession
// of multiple resources": a software task holds its own thread *while*
// synchronously calling lower-layer tasks, so upper layers saturate on
// thread pools long before their processors do — an effect plain
// queueing networks cannot express. The paper's caveat is complexity:
// "the multiple concurrent queues often makes it prohibitive for large
// scale experiments". This module implements LQN semantics directly on
// the event engine: tasks with finite thread pools, per-entry service
// demands, and synchronous call graphs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "queueing/arrival.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "stats/distributions.hpp"

namespace kooza::queueing {

class LqnModel {
public:
    /// @param engine shared event engine
    /// @param seed   private RNG for service sampling
    LqnModel(sim::Engine& engine, std::uint64_t seed = 23);

    /// Add a software task: a pool of `threads` and a local service-time
    /// distribution (its own processing per invocation). Returns task id.
    std::size_t add_task(std::string name, std::uint32_t threads,
                         std::shared_ptr<const stats::Distribution> service);

    /// `caller` synchronously invokes `callee` `mean_calls` times per
    /// invocation (sampled; fractional means allowed). The caller's thread
    /// is HELD for the duration of every nested call — the LQN semantics.
    /// Call graphs must be acyclic (checked at add time).
    void add_call(std::size_t caller, std::size_t callee, double mean_calls);

    /// Drive `count` external requests into `task` (the reference task).
    void drive(std::size_t task, ArrivalProcess& arrivals, std::size_t count,
               sim::Rng& rng);

    /// End-to-end response times of completed external requests.
    [[nodiscard]] const std::vector<double>& response_times() const noexcept {
        return responses_;
    }

    /// Thread-pool utilization of a task (fraction of pool-time held —
    /// includes time blocked on callees, which is the LQN point).
    [[nodiscard]] double pool_utilization(std::size_t task) const;

    [[nodiscard]] std::uint64_t completions(std::size_t task) const;
    [[nodiscard]] std::size_t n_tasks() const noexcept { return tasks_.size(); }

private:
    struct Call {
        std::size_t callee;
        double mean_calls;
    };
    struct Task {
        std::string name;
        std::unique_ptr<sim::Resource> threads;
        std::shared_ptr<const stats::Distribution> service;
        std::vector<Call> calls;
        std::uint64_t completions = 0;
    };

    /// Invoke a task; `on_done` runs after its service and all nested
    /// calls complete and its thread is released.
    void invoke(std::size_t task, std::function<void()> on_done);
    void run_calls(std::size_t task, std::size_t call_index,
                   std::function<void()> on_done);
    [[nodiscard]] bool reachable(std::size_t from, std::size_t target) const;

    sim::Engine& engine_;
    sim::Rng rng_;
    std::vector<Task> tasks_;
    std::vector<double> responses_;
};

}  // namespace kooza::queueing
