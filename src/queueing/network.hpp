// Open multi-class queueing-network simulator.
//
// This is the substrate of the in-depth baseline: "their model consists of
// three multi-station queueing models, which emulate the Web, Application
// and Database tier" (Liu '05 in the paper's survey). Stations are
// multi-server FCFS queues; a job class defines the path a request takes
// through the stations and its per-hop service-time distributions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "queueing/arrival.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "stats/distributions.hpp"

namespace kooza::queueing {

/// One hop of a job-class path: which station, and the service demand there.
struct Hop {
    std::size_t station = 0;
    std::shared_ptr<const stats::Distribution> service;
};

/// Observed per-station counters.
struct StationReport {
    std::string name;
    std::uint64_t completions = 0;
    double utilization = 0.0;   ///< time-averaged busy fraction per server
    double mean_queue_seen = 0.0;  ///< mean waiters seen by arriving jobs
};

class Network {
public:
    /// @param engine shared event engine (not owned)
    /// @param seed   seed for the network's private service/arrival RNG
    Network(sim::Engine& engine, std::uint64_t seed = 7);

    /// Add a multi-server FCFS station; returns its index.
    std::size_t add_station(std::string name, std::uint32_t servers);

    /// Add a job class with its path; returns its index. Paths must be
    /// non-empty and reference existing stations.
    std::size_t add_class(std::string name, std::vector<Hop> path);

    /// Submit one job of class `cls` at the current simulated time.
    void submit(std::size_t cls);

    /// Drive `count` arrivals of class `cls` from an arrival process,
    /// starting at the current simulated time. The caller runs the engine.
    void drive(std::size_t cls, ArrivalProcess& arrivals, std::size_t count);

    /// End-to-end response times of completed jobs of a class.
    [[nodiscard]] const std::vector<double>& response_times(std::size_t cls) const;

    /// Per-hop sojourn (wait+service) samples at a station for a class.
    [[nodiscard]] const std::vector<double>& station_sojourns(std::size_t cls,
                                                              std::size_t station) const;

    [[nodiscard]] StationReport station_report(std::size_t station) const;
    [[nodiscard]] std::size_t n_stations() const noexcept { return stations_.size(); }
    [[nodiscard]] std::size_t n_classes() const noexcept { return classes_.size(); }

private:
    struct Station {
        std::string name;
        std::unique_ptr<sim::Resource> servers;
        std::uint64_t completions = 0;
        std::uint64_t arrivals_seen = 0;
        std::uint64_t queue_seen_sum = 0;
    };
    struct JobClass {
        std::string name;
        std::vector<Hop> path;
        std::vector<double> responses;
        // sojourn samples indexed by station id
        std::vector<std::vector<double>> sojourns;
    };

    void start_hop(std::size_t cls, std::size_t hop, double job_start);

    sim::Engine& engine_;
    sim::Rng rng_;
    std::vector<Station> stations_;
    std::vector<JobClass> classes_;
};

/// Build the Liu-style 3-tier web service model: Web, App and DB stations
/// in tandem with exponential service demands. Returns the network and the
/// single class index via out-parameter.
struct ThreeTierConfig {
    std::uint32_t web_servers = 2;
    std::uint32_t app_servers = 2;
    std::uint32_t db_servers = 1;
    double web_mean_service = 0.002;  ///< seconds
    double app_mean_service = 0.004;
    double db_mean_service = 0.008;
};

[[nodiscard]] std::unique_ptr<Network> make_three_tier(sim::Engine& engine,
                                                       const ThreeTierConfig& cfg,
                                                       std::size_t& class_out,
                                                       std::uint64_t seed = 7);

}  // namespace kooza::queueing
