#include "queueing/arrival.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace kooza::queueing {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
    if (!(rate > 0.0)) throw std::invalid_argument("PoissonArrivals: rate must be > 0");
}
double PoissonArrivals::next_interarrival(sim::Rng& rng) {
    return rng.exponential(rate_);
}
std::string PoissonArrivals::describe() const {
    std::ostringstream os;
    os << "poisson(rate=" << rate_ << "/s)";
    return os.str();
}

MmppArrivals::MmppArrivals(double rate0, double rate1, double switch0, double switch1) {
    if (!(rate0 > 0.0) || !(rate1 > 0.0))
        throw std::invalid_argument("MmppArrivals: rates must be > 0");
    if (!(switch0 > 0.0) || !(switch1 > 0.0))
        throw std::invalid_argument("MmppArrivals: switch rates must be > 0");
    rate_[0] = rate0;
    rate_[1] = rate1;
    switch_[0] = switch0;
    switch_[1] = switch1;
}

double MmppArrivals::next_interarrival(sim::Rng& rng) {
    // Competing exponentials: in the current phase, either an arrival fires
    // first or the phase switches and the race restarts.
    double elapsed = 0.0;
    for (int guard = 0; guard < 100000; ++guard) {
        const double t_arrival = rng.exponential(rate_[phase_]);
        const double t_switch = rng.exponential(switch_[phase_]);
        if (t_arrival <= t_switch) return elapsed + t_arrival;
        elapsed += t_switch;
        phase_ ^= 1;
    }
    return elapsed;  // pathological parameters; bound the loop
}

double MmppArrivals::mean_rate() const {
    // Stationary phase probabilities: pi0 = s1/(s0+s1).
    const double pi0 = switch_[1] / (switch_[0] + switch_[1]);
    return pi0 * rate_[0] + (1.0 - pi0) * rate_[1];
}

std::string MmppArrivals::describe() const {
    std::ostringstream os;
    os << "mmpp2(rates=" << rate_[0] << "," << rate_[1] << "/s, switch=" << switch_[0]
       << "," << switch_[1] << "/s)";
    return os.str();
}

DeterministicArrivals::DeterministicArrivals(double rate) : rate_(rate) {
    if (!(rate > 0.0))
        throw std::invalid_argument("DeterministicArrivals: rate must be > 0");
}
std::string DeterministicArrivals::describe() const {
    std::ostringstream os;
    os << "deterministic(rate=" << rate_ << "/s)";
    return os.str();
}

TraceArrivals::TraceArrivals(std::vector<double> interarrivals)
    : gaps_(std::move(interarrivals)) {
    if (gaps_.empty()) throw std::invalid_argument("TraceArrivals: empty trace");
    for (double g : gaps_)
        if (g < 0.0) throw std::invalid_argument("TraceArrivals: negative gap");
}

TraceArrivals TraceArrivals::from_timestamps(std::span<const double> arrivals) {
    if (arrivals.size() < 2)
        throw std::invalid_argument("TraceArrivals::from_timestamps: need >= 2 events");
    std::vector<double> ts(arrivals.begin(), arrivals.end());
    std::sort(ts.begin(), ts.end());
    std::vector<double> gaps(ts.size() - 1);
    for (std::size_t i = 1; i < ts.size(); ++i) gaps[i - 1] = ts[i] - ts[i - 1];
    return TraceArrivals(std::move(gaps));
}

double TraceArrivals::next_interarrival(sim::Rng&) {
    const double g = gaps_[cursor_];
    cursor_ = (cursor_ + 1) % gaps_.size();
    return g;
}

double TraceArrivals::mean_rate() const {
    const double total = std::accumulate(gaps_.begin(), gaps_.end(), 0.0);
    if (total <= 0.0) return 0.0;
    return double(gaps_.size()) / total;
}

std::string TraceArrivals::describe() const {
    std::ostringstream os;
    os << "trace(n=" << gaps_.size() << ", rate=" << mean_rate() << "/s)";
    return os.str();
}

}  // namespace kooza::queueing
