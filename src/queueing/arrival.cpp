#include "queueing/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace kooza::queueing {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
    if (!(rate > 0.0)) throw std::invalid_argument("PoissonArrivals: rate must be > 0");
}
double PoissonArrivals::next_interarrival(sim::Rng& rng) {
    return rng.exponential(rate_);
}
std::string PoissonArrivals::describe() const {
    std::ostringstream os;
    os << "poisson(rate=" << rate_ << "/s)";
    return os.str();
}

MmppArrivals::MmppArrivals(double rate0, double rate1, double switch0, double switch1) {
    if (!(rate0 > 0.0) || !(rate1 > 0.0))
        throw std::invalid_argument("MmppArrivals: rates must be > 0");
    if (!(switch0 > 0.0) || !(switch1 > 0.0))
        throw std::invalid_argument("MmppArrivals: switch rates must be > 0");
    rate_[0] = rate0;
    rate_[1] = rate1;
    switch_[0] = switch0;
    switch_[1] = switch1;
}

double MmppArrivals::next_interarrival(sim::Rng& rng) {
    // Competing exponentials: in the current phase, either an arrival fires
    // first or the phase switches and the race restarts.
    double elapsed = 0.0;
    for (int guard = 0; guard < 100000; ++guard) {
        const double t_arrival = rng.exponential(rate_[phase_]);
        const double t_switch = rng.exponential(switch_[phase_]);
        if (t_arrival <= t_switch) return elapsed + t_arrival;
        elapsed += t_switch;
        phase_ ^= 1;
    }
    return elapsed;  // pathological parameters; bound the loop
}

double MmppArrivals::mean_rate() const {
    // Stationary phase probabilities: pi0 = s1/(s0+s1).
    const double pi0 = switch_[1] / (switch_[0] + switch_[1]);
    return pi0 * rate_[0] + (1.0 - pi0) * rate_[1];
}

std::string MmppArrivals::describe() const {
    std::ostringstream os;
    os << "mmpp2(rates=" << rate_[0] << "," << rate_[1] << "/s, switch=" << switch_[0]
       << "," << switch_[1] << "/s)";
    return os.str();
}

DeterministicArrivals::DeterministicArrivals(double rate) : rate_(rate) {
    if (!(rate > 0.0))
        throw std::invalid_argument("DeterministicArrivals: rate must be > 0");
}
std::string DeterministicArrivals::describe() const {
    std::ostringstream os;
    os << "deterministic(rate=" << rate_ << "/s)";
    return os.str();
}

DiurnalEnvelope::DiurnalEnvelope(double base_rate, double amplitude, double period,
                                 double phase)
    : base_(base_rate), amplitude_(amplitude), period_(period), phase_(phase) {
    if (!(base_rate > 0.0))
        throw std::invalid_argument("DiurnalEnvelope: base rate must be > 0");
    if (!(amplitude >= 0.0 && amplitude < 1.0))
        throw std::invalid_argument("DiurnalEnvelope: amplitude outside [0, 1)");
    if (!(period > 0.0))
        throw std::invalid_argument("DiurnalEnvelope: period must be > 0");
}

double DiurnalEnvelope::rate_at(double t) const {
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return base_ * (1.0 + amplitude_ * std::sin(kTwoPi * (t / period_ + phase_)));
}

std::string DiurnalEnvelope::describe() const {
    std::ostringstream os;
    os << "diurnal(base=" << base_ << "/s, amplitude=" << amplitude_
       << ", period=" << period_ << "s)";
    return os.str();
}

SpikeEnvelope::SpikeEnvelope(double base_rate, double multiplier, double period,
                             double spike_len)
    : base_(base_rate), multiplier_(multiplier), period_(period),
      spike_len_(spike_len) {
    if (!(base_rate > 0.0))
        throw std::invalid_argument("SpikeEnvelope: base rate must be > 0");
    if (!(multiplier >= 1.0))
        throw std::invalid_argument("SpikeEnvelope: multiplier must be >= 1");
    if (!(period > 0.0) || !(spike_len > 0.0) || spike_len > period)
        throw std::invalid_argument("SpikeEnvelope: need 0 < spike_len <= period");
}

double SpikeEnvelope::rate_at(double t) const {
    const double in_period = t - period_ * std::floor(t / period_);
    return in_period < spike_len_ ? base_ * multiplier_ : base_;
}

double SpikeEnvelope::average_rate() const {
    const double duty = spike_len_ / period_;
    return base_ * (1.0 + (multiplier_ - 1.0) * duty);
}

std::string SpikeEnvelope::describe() const {
    std::ostringstream os;
    os << "spike(base=" << base_ << "/s, x" << multiplier_ << " for " << spike_len_
       << "s every " << period_ << "s)";
    return os.str();
}

ModulatedArrivals::ModulatedArrivals(std::unique_ptr<RateEnvelope> envelope)
    : envelope_(std::move(envelope)) {
    if (!envelope_)
        throw std::invalid_argument("ModulatedArrivals: null envelope");
    if (!(envelope_->peak_rate() > 0.0))
        throw std::invalid_argument("ModulatedArrivals: peak rate must be > 0");
}

ModulatedArrivals::ModulatedArrivals(const ModulatedArrivals& other)
    : envelope_(other.envelope_->clone()), t_(other.t_) {}

double ModulatedArrivals::next_interarrival(sim::Rng& rng) {
    // Lewis-Shedler: candidates at the peak rate, thinned by the envelope.
    const double peak = envelope_->peak_rate();
    const double start = t_;
    for (int guard = 0; guard < 1000000; ++guard) {
        t_ += rng.exponential(peak);
        if (rng.uniform(0.0, 1.0) * peak <= envelope_->rate_at(t_))
            return t_ - start;
    }
    return t_ - start;  // unreachable for sane envelopes; bound the loop
}

std::string ModulatedArrivals::describe() const {
    return "modulated[" + envelope_->describe() + "]";
}

TraceArrivals::TraceArrivals(std::vector<double> interarrivals)
    : gaps_(std::move(interarrivals)) {
    if (gaps_.empty()) throw std::invalid_argument("TraceArrivals: empty trace");
    for (double g : gaps_)
        if (g < 0.0) throw std::invalid_argument("TraceArrivals: negative gap");
}

TraceArrivals TraceArrivals::from_timestamps(std::span<const double> arrivals) {
    if (arrivals.size() < 2)
        throw std::invalid_argument("TraceArrivals::from_timestamps: need >= 2 events");
    std::vector<double> ts(arrivals.begin(), arrivals.end());
    std::sort(ts.begin(), ts.end());
    std::vector<double> gaps(ts.size() - 1);
    for (std::size_t i = 1; i < ts.size(); ++i) gaps[i - 1] = ts[i] - ts[i - 1];
    return TraceArrivals(std::move(gaps));
}

double TraceArrivals::next_interarrival(sim::Rng&) {
    const double g = gaps_[cursor_];
    cursor_ = (cursor_ + 1) % gaps_.size();
    return g;
}

double TraceArrivals::mean_rate() const {
    const double total = std::accumulate(gaps_.begin(), gaps_.end(), 0.0);
    if (total <= 0.0) return 0.0;
    return double(gaps_.size()) / total;
}

std::string TraceArrivals::describe() const {
    std::ostringstream os;
    os << "trace(n=" << gaps_.size() << ", rate=" << mean_rate() << "/s)";
    return os.str();
}

}  // namespace kooza::queueing
