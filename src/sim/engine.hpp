// Discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped callbacks and a simulated
// clock. All simulator components (device models, GFS servers, queueing
// stations) schedule work against one shared Engine. Events scheduled for
// the same timestamp fire in FIFO order of scheduling, which keeps runs
// deterministic for a fixed seed.
//
// Hot-path layout (see DESIGN.md "Event core"): callbacks are sim::EventFn
// (48-byte inline small-buffer callables, no per-event heap allocation),
// event nodes live in a slab/free-list EventArena and are recycled on
// dispatch, and the queue is a calendar-queue scheduler with a binary-heap
// fallback — all preserving the strict (at, seq) dispatch order, so runs
// are byte-identical to the original std::function/binary-heap engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <utility>

#include "sim/calendar.hpp"
#include "sim/eventfn.hpp"

namespace kooza::sim {

/// Simulated time in seconds. Double precision gives ~microsecond
/// resolution over multi-hour simulated horizons, which is ample for
/// millisecond-scale datacenter requests.
using Time = double;

/// Discrete-event engine: a simulated clock plus an event queue.
///
/// Usage:
///   Engine eng;
///   eng.schedule_after(0.5, []{ ... });
///   eng.run();
class Engine {
public:
    Engine() = default;
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;
    ~Engine();

    /// Current simulated time. Starts at 0.
    [[nodiscard]] Time now() const noexcept { return now_; }

    /// Schedule `action` at absolute simulated time `at`.
    /// Throws std::invalid_argument if `at` precedes the current time or
    /// is not finite (NaN/±inf would corrupt the dispatch order).
    template <typename F>
    void schedule_at(Time at, F&& action) {
        check_action(action);
        push_event(at, false, std::forward<F>(action));
    }

    /// Schedule `action` `delay` seconds after the current time.
    /// Negative or non-finite delays are rejected.
    template <typename F>
    void schedule_after(Time delay, F&& action) {
        if (delay < 0.0)
            throw std::invalid_argument("Engine::schedule_after: negative delay");
        check_action(action);
        push_event(now_ + delay, false, std::forward<F>(action));
    }

    /// Schedule a *daemon* event: it fires like a normal event but does
    /// not keep run() alive. run() returns once every non-daemon event
    /// has executed, leaving unfired daemon events in the queue. Used for
    /// open-ended background processes (lazy fault plans) that must not
    /// turn a finite simulation into an infinite one.
    template <typename F>
    void schedule_daemon_at(Time at, F&& action) {
        check_action(action);
        push_event(at, true, std::forward<F>(action));
    }

    /// Run until all *non-daemon* events drain or stop() is called.
    /// Returns the number of events executed.
    std::uint64_t run();

    /// Run until simulated time would exceed `deadline` (events at exactly
    /// `deadline` still execute). Returns the number of events executed.
    /// The clock is advanced to `deadline` on return — unless stop() was
    /// called mid-run, in which case it stays at the last event's time.
    std::uint64_t run_until(Time deadline);

    /// Execute exactly one event if any is pending. Returns true if one ran.
    bool step();

    /// Request that run()/run_until() return after the current event.
    void stop() noexcept { stopped_ = true; }

    /// True if no events are pending.
    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

    /// Number of pending events.
    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

    /// Total events executed since construction.
    [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

    /// The engine's slab allocator (event nodes, oversized EventFn
    /// captures). Components that stash continuations outside the queue
    /// (sim::Resource waiters) draw from it so their callbacks stay off
    /// the system heap too. Single-threaded, like the engine itself.
    [[nodiscard]] EventArena& arena() noexcept { return arena_; }

    /// True once the scheduler abandoned the calendar queue for its
    /// binary-heap fallback (pathological timestamp distribution).
    [[nodiscard]] bool scheduler_heap_fallback() const noexcept {
        return queue_.heap_fallback();
    }

private:
    /// std::function (and function pointers) carry an "empty" state the
    /// engine must reject eagerly — an empty callable would otherwise blow
    /// up mid-simulation at dispatch time. Lambdas have no such state and
    /// skip the check entirely.
    template <typename F>
    static void check_action(const F& f) {
        if constexpr (requires { static_cast<bool>(f); }) {
            if (!static_cast<bool>(f))
                throw std::invalid_argument("Engine::schedule_at: empty action");
        }
    }

    /// Allocate, construct, and enqueue the event node in one step. The
    /// callable is materialized directly into the node's EventFn (a
    /// prvalue member initializer, so guaranteed copy elision applies) —
    /// steady-state scheduling performs zero relocations and zero heap
    /// allocations.
    template <typename F>
    void push_event(Time at, bool daemon, F&& action) {
        // NaN compares false against everything, so the `at < now_` guard
        // alone would wave non-finite timestamps straight into the queue
        // and corrupt the dispatch order. Reject them explicitly.
        if (!std::isfinite(at))
            throw std::invalid_argument("Engine::schedule_at: non-finite time");
        if (at < now_)
            throw std::invalid_argument("Engine::schedule_at: time in the past");
        auto* n = ::new (arena_.allocate(sizeof(EventNode)))
            EventNode{at, next_seq_++, 0, nullptr, daemon ? 1u : 0u,
                      EventFn(&arena_, std::forward<F>(action))};
        queue_.push(n);
        if (!daemon) ++live_;
        ++tally_scheduled_;
        if (queue_.size() > depth_peak_) depth_peak_ = queue_.size();
    }

    /// Fold the engine-local tallies into the process-wide obs registry.
    /// Called at run()/run_until() exit and from the destructor, so the
    /// per-event hot path never touches an atomic.
    void flush_metrics() noexcept;

    Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t live_ = 0;  ///< pending non-daemon events
    bool stopped_ = false;

    // Batched obs tallies (flushed by flush_metrics).
    std::uint64_t tally_scheduled_ = 0;
    std::uint64_t tally_dispatched_ = 0;
    std::size_t depth_peak_ = 0;  ///< lifetime queue-depth high-water mark

    EventArena arena_;  ///< declared before queue_: nodes live in it
    CalendarQueue queue_;
};

}  // namespace kooza::sim
