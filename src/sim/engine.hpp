// Discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped callbacks and a simulated
// clock. All simulator components (device models, GFS servers, queueing
// stations) schedule work against one shared Engine. Events scheduled for
// the same timestamp fire in FIFO order of scheduling, which keeps runs
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace kooza::sim {

/// Simulated time in seconds. Double precision gives ~microsecond
/// resolution over multi-hour simulated horizons, which is ample for
/// millisecond-scale datacenter requests.
using Time = double;

/// One scheduled occurrence inside the engine.
struct Event {
    Time at = 0.0;
    std::uint64_t seq = 0;  ///< tie-breaker: FIFO among equal timestamps
    bool daemon = false;    ///< daemon events do not keep run() alive
    std::function<void()> action;
};

/// Discrete-event engine: a simulated clock plus an event queue.
///
/// Usage:
///   Engine eng;
///   eng.schedule_after(0.5, []{ ... });
///   eng.run();
class Engine {
public:
    Engine() = default;
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Current simulated time. Starts at 0.
    [[nodiscard]] Time now() const noexcept { return now_; }

    /// Schedule `action` at absolute simulated time `at`.
    /// Throws std::invalid_argument if `at` precedes the current time.
    void schedule_at(Time at, std::function<void()> action);

    /// Schedule `action` `delay` seconds after the current time.
    /// Negative delays are rejected.
    void schedule_after(Time delay, std::function<void()> action);

    /// Schedule a *daemon* event: it fires like a normal event but does
    /// not keep run() alive. run() returns once every non-daemon event
    /// has executed, leaving unfired daemon events in the queue. Used for
    /// open-ended background processes (lazy fault plans) that must not
    /// turn a finite simulation into an infinite one.
    void schedule_daemon_at(Time at, std::function<void()> action);

    /// Run until all *non-daemon* events drain or stop() is called.
    /// Returns the number of events executed.
    std::uint64_t run();

    /// Run until simulated time would exceed `deadline` (events at exactly
    /// `deadline` still execute). Returns the number of events executed.
    /// The clock is advanced to `deadline` on return.
    std::uint64_t run_until(Time deadline);

    /// Execute exactly one event if any is pending. Returns true if one ran.
    bool step();

    /// Request that run()/run_until() return after the current event.
    void stop() noexcept { stopped_ = true; }

    /// True if no events are pending.
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

    /// Number of pending events.
    [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

    /// Total events executed since construction.
    [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

private:
    // Binary min-heap on (at, seq) kept in a plain vector, so the next
    // event can be *moved* out on dispatch (std::priority_queue::top()
    // only hands back a const&, forcing a std::function copy per event —
    // the old hottest line of the simulator). (at, seq) is a strict total
    // order, so dispatch order is independent of the heap layout.
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    /// Remove and return the earliest event (heap must be non-empty).
    Event pop_next();

    void push_event(Time at, bool daemon, std::function<void()> action);

    Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t live_ = 0;  ///< pending non-daemon events
    bool stopped_ = false;
    std::vector<Event> heap_;
};

}  // namespace kooza::sim
