#include "sim/rng.hpp"

#include <cmath>
#include <numeric>

namespace kooza::sim {

std::size_t Rng::weighted_index(std::span<const double> weights) {
    if (weights.empty()) throw std::invalid_argument("Rng::weighted_index: empty weights");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0 || !std::isfinite(w))
            throw std::invalid_argument("Rng::weighted_index: negative or non-finite weight");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: all weights zero");
    double r = uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc) return i;
    }
    return weights.size() - 1;  // floating-point edge: r == total
}

std::size_t Rng::zipf_small(std::size_t n, double s) {
    if (n == 0) throw std::invalid_argument("Rng::zipf_small: n == 0");
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) w[i] = 1.0 / std::pow(double(i + 1), s);
    return weighted_index(w);
}

}  // namespace kooza::sim
