// Seeded random-number utility wrapping std::mt19937_64.
//
// Every stochastic component takes a Rng (or a seed) explicitly; nothing in
// the library reads global entropy, so all simulations, trainings and
// generations are reproducible from printed seeds.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace kooza::sim {

/// Deterministic random source. Thin convenience layer over mt19937_64
/// with the samplers the library needs.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 42) : gen_(seed), seed_(seed) {}

    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Derive an independent child stream (for per-component RNGs).
    [[nodiscard]] Rng fork() { return Rng(gen_() ^ 0x9e3779b97f4a7c15ULL); }

    /// Uniform real in [lo, hi).
    double uniform(double lo = 0.0, double hi = 1.0) {
        return std::uniform_real_distribution<double>(lo, hi)(gen_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
    }

    /// Exponential with rate lambda (mean 1/lambda).
    double exponential(double lambda) {
        return std::exponential_distribution<double>(lambda)(gen_);
    }

    double normal(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(gen_);
    }

    double lognormal(double mu, double sigma) {
        return std::lognormal_distribution<double>(mu, sigma)(gen_);
    }

    /// Pareto with scale xm > 0 and shape alpha > 0 (support [xm, inf)).
    double pareto(double xm, double alpha) {
        double u = uniform(0.0, 1.0);
        // Guard against u == 0 which would yield infinity.
        if (u <= 0.0) u = 1e-16;
        return xm / std::pow(u, 1.0 / alpha);
    }

    /// Weibull with shape k > 0 and scale lambda > 0.
    double weibull(double k, double lambda) {
        return std::weibull_distribution<double>(k, lambda)(gen_);
    }

    /// Bernoulli trial with success probability p.
    bool bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

    /// Geometric: number of failures before first success, p in (0,1].
    std::int64_t geometric(double p) {
        return std::geometric_distribution<std::int64_t>(p)(gen_);
    }

    std::int64_t poisson(double mean) {
        return std::poisson_distribution<std::int64_t>(mean)(gen_);
    }

    /// Sample an index according to non-negative weights (need not sum to 1).
    /// Throws if weights are empty or all zero.
    std::size_t weighted_index(std::span<const double> weights);

    /// Sample index 0..n-1 according to a Zipf(s) popularity law.
    /// P(i) proportional to 1/(i+1)^s. O(n) per call via precomputed CDF is the
    /// caller's job (see stats::Zipf); this helper is for small n.
    std::size_t zipf_small(std::size_t n, double s);

    /// Access the underlying engine (for std:: distribution objects).
    std::mt19937_64& engine() noexcept { return gen_; }

private:
    std::mt19937_64 gen_;
    std::uint64_t seed_;
};

}  // namespace kooza::sim
