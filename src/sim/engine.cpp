#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace kooza::sim {

namespace {

// Process-wide engine metrics, shared by every Engine (including the
// per-shard engines of replay_sharded — counters merge commutatively, and
// the heap-depth gauge's max is interleaving-independent).
struct EngineMetrics {
    obs::Counter& scheduled = obs::counter("sim.engine.events_scheduled_total");
    obs::Counter& dispatched = obs::counter("sim.engine.events_dispatched_total");
    obs::Gauge& heap_depth = obs::gauge("sim.engine.heap_depth");
};

EngineMetrics& metrics() {
    static EngineMetrics m;
    return m;
}

}  // namespace

void Engine::push_event(Time at, bool daemon, std::function<void()> action) {
    if (at < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
    if (!action) throw std::invalid_argument("Engine::schedule_at: empty action");
    heap_.push_back(Event{at, next_seq_++, daemon, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (!daemon) ++live_;
    auto& m = metrics();
    m.scheduled.add();
    m.heap_depth.set(double(heap_.size()));
}

void Engine::schedule_at(Time at, std::function<void()> action) {
    push_event(at, false, std::move(action));
}

void Engine::schedule_daemon_at(Time at, std::function<void()> action) {
    push_event(at, true, std::move(action));
}

void Engine::schedule_after(Time delay, std::function<void()> action) {
    if (delay < 0.0) throw std::invalid_argument("Engine::schedule_after: negative delay");
    schedule_at(now_ + delay, std::move(action));
}

Event Engine::pop_next() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
}

bool Engine::step() {
    if (heap_.empty()) return false;
    Event ev = pop_next();  // move-only: the action is never copied
    now_ = ev.at;
    if (!ev.daemon) --live_;
    ++executed_;
    metrics().dispatched.add();
    ev.action();
    return true;
}

std::uint64_t Engine::run() {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_ && live_ > 0 && step()) ++n;
    return n;
}

std::uint64_t Engine::run_until(Time deadline) {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_ && !heap_.empty() && heap_.front().at <= deadline) {
        step();
        ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

}  // namespace kooza::sim
