#include "sim/engine.hpp"

#include "obs/metrics.hpp"

namespace kooza::sim {

namespace {

// Process-wide engine metrics, shared by every Engine (including the
// per-shard engines of replay_sharded — counters merge commutatively, and
// the depth gauge's max is interleaving-independent). Engines accumulate
// locally and flush here at run boundaries.
struct EngineMetrics {
    obs::Counter& scheduled = obs::counter("sim.engine.events_scheduled_total");
    obs::Counter& dispatched = obs::counter("sim.engine.events_dispatched_total");
    // High-water-only: the deepest the queue has ever been. There is no
    // "current depth" metric — with batched flushing a point-in-time
    // sample would be stale by construction.
    obs::Gauge& depth_peak = obs::gauge("sim.engine.queue_depth_peak");
};

EngineMetrics& metrics() {
    static EngineMetrics m;
    return m;
}

}  // namespace

Engine::~Engine() {
    // Unfired events (daemon chains, post-stop leftovers) still own arena
    // nodes; destroy them before the arena goes away.
    queue_.for_each([this](EventNode* n) {
        n->~EventNode();
        arena_.deallocate(n, sizeof(EventNode));
    });
    queue_.clear();
    flush_metrics();
}

bool Engine::step() {
    EventNode* n = queue_.pop();
    if (!n) return false;
    now_ = n->at;
    if (!n->daemon) --live_;
    ++executed_;
    ++tally_dispatched_;
    // Invoke the callback straight out of the node — no relocation — and
    // recycle the node after it returns (exception-safe via the guard).
    // The common schedule-from-an-event pattern then reuses the block
    // freed by the previous dispatch, keeping the arena footprint flat.
    struct Recycle {
        EventArena* arena;
        EventNode* n;
        ~Recycle() {
            n->~EventNode();
            arena->deallocate(n, sizeof(EventNode));
        }
    } recycle{&arena_, n};
    n->fn();
    return true;
}

std::uint64_t Engine::run() {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_ && live_ > 0 && step()) ++n;
    flush_metrics();
    return n;
}

std::uint64_t Engine::run_until(Time deadline) {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_) {
        EventNode* head = queue_.peek();
        if (!head || head->at > deadline) break;
        step();
        ++n;
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
    flush_metrics();
    return n;
}

void Engine::flush_metrics() noexcept {
    if (tally_scheduled_ == 0 && tally_dispatched_ == 0) return;
    auto& m = metrics();
    m.scheduled.add(tally_scheduled_);
    m.dispatched.add(tally_dispatched_);
    m.depth_peak.set(double(depth_peak_));
    tally_scheduled_ = 0;
    tally_dispatched_ = 0;
}

}  // namespace kooza::sim
