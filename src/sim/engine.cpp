#include "sim/engine.hpp"

#include <utility>

namespace kooza::sim {

void Engine::schedule_at(Time at, std::function<void()> action) {
    if (at < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
    if (!action) throw std::invalid_argument("Engine::schedule_at: empty action");
    queue_.push(Event{at, next_seq_++, std::move(action)});
}

void Engine::schedule_after(Time delay, std::function<void()> action) {
    if (delay < 0.0) throw std::invalid_argument("Engine::schedule_after: negative delay");
    schedule_at(now_ + delay, std::move(action));
}

bool Engine::step() {
    if (queue_.empty()) return false;
    // priority_queue::top() returns const&; move out via const_cast is the
    // standard idiom but UB-adjacent — copy the callable instead. Actions
    // are cheap to copy (small lambdas) or shared_ptr-captured.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.action();
    return true;
}

std::uint64_t Engine::run() {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_ && step()) ++n;
    return n;
}

std::uint64_t Engine::run_until(Time deadline) {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_ && !queue_.empty() && queue_.top().at <= deadline) {
        step();
        ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

}  // namespace kooza::sim
