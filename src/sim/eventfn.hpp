// sim::EventFn — the engine's callback type: a fixed-capacity small-buffer
// callable with ~48 bytes of inline storage, move-only and non-allocating
// for the captures the simulator actually schedules. Oversized captures
// fall back to a slab/free-list arena block (EventArena) — or a plain
// heap block when no arena is supplied — so steady-state scheduling still
// performs zero system-heap allocations per event. Defining
// KOOZA_EVENTFN_INLINE_ONLY compiles the fallback out entirely: any
// capture larger than the inline buffer becomes a build error, which is
// how a hot-path audit finds fat lambdas.
//
// Contract: a callable is stored inline iff
//   sizeof(F)  <= kEventFnInlineBytes,
//   alignof(F) <= alignof(std::max_align_t), and
//   F is nothrow-move-constructible
// (EventFn itself is relocated when event nodes are recycled, so a
// throwing move could lose an event mid-flight).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace kooza::sim {

/// Inline capture capacity of EventFn, in bytes.
inline constexpr std::size_t kEventFnInlineBytes = 48;

/// Slab/free-list allocator for engine-owned allocations: calendar-queue
/// event nodes and oversized EventFn captures. Blocks come from geometric
/// size classes (64 B .. 8 KiB) carved out of 64 KiB slabs; freed blocks
/// return to a per-class intrusive free list, so a steady-state
/// schedule/dispatch cycle touches the system heap zero times. Requests
/// beyond the largest class pass through to ::operator new.
///
/// Not thread-safe: each Engine owns one arena, and an engine is
/// single-threaded by contract (kooza_par runs one engine per shard).
class EventArena {
public:
    static constexpr std::size_t kMinBlockBytes = 64;
    static constexpr std::size_t kClasses = 8;  ///< 64, 128, ... 8192 bytes
    static constexpr std::size_t kSlabBytes = 64 * 1024;

    EventArena() = default;
    EventArena(const EventArena&) = delete;
    EventArena& operator=(const EventArena&) = delete;
    ~EventArena() {
        for (auto* s : slabs_) ::operator delete(s);
    }

    /// Size class covering `bytes` (>= kClasses when only ::operator new
    /// can serve the request).
    [[nodiscard]] static std::size_t class_of(std::size_t bytes) noexcept {
        std::size_t c = 0;
        for (std::size_t sz = kMinBlockBytes; sz < bytes; sz <<= 1) ++c;
        return c;
    }

    [[nodiscard]] void* allocate(std::size_t bytes) {
        const std::size_t c = class_of(bytes);
        if (c >= kClasses) return ::operator new(bytes);
        if (void* p = free_[c]) {
            free_[c] = *static_cast<void**>(p);
            return p;
        }
        const std::size_t sz = kMinBlockBytes << c;
        if (bump_remaining_ < sz) {
            slabs_.push_back(
                static_cast<unsigned char*>(::operator new(kSlabBytes)));
            bump_ = slabs_.back();
            bump_remaining_ = kSlabBytes;
        }
        void* p = bump_;
        bump_ += sz;
        bump_remaining_ -= sz;
        return p;
    }

    /// `bytes` must be the size passed to the matching allocate().
    void deallocate(void* p, std::size_t bytes) noexcept {
        const std::size_t c = class_of(bytes);
        if (c >= kClasses) {
            ::operator delete(p);
            return;
        }
        *static_cast<void**>(p) = free_[c];
        free_[c] = p;
    }

    /// Slabs held (observability; monotone within an engine's lifetime).
    [[nodiscard]] std::size_t slab_count() const noexcept { return slabs_.size(); }

private:
    void* free_[kClasses] = {};
    unsigned char* bump_ = nullptr;
    std::size_t bump_remaining_ = 0;
    std::vector<unsigned char*> slabs_;
};

class EventFn {
    /// Per-callable-type operation table; `overflow` selects the pointer
    /// representation (payload lives in an arena/heap block, not buf_).
    /// `relocate`/`destroy` are null when the operation is trivial (a raw
    /// buffer copy / a no-op), so the per-event dispatch path skips the
    /// indirect call for the plain-data captures the simulator mostly
    /// schedules.
    struct Ops {
        void (*invoke)(EventFn&);
        void (*relocate)(EventFn& from, EventFn& to) noexcept;
        void (*destroy)(EventFn&) noexcept;
    };

    template <typename Fn>
    static constexpr bool fits_inline =
        sizeof(Fn) <= kEventFnInlineBytes &&
        alignof(Fn) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<Fn>;

    /// Arena block layout for oversized captures: the owning arena (null
    /// for plain-heap blocks) followed by the callable itself.
    template <typename Fn>
    struct OverflowBlock {
        EventArena* arena;
        Fn fn;
    };

public:
    EventFn() noexcept = default;

    /// Wrap `f`, spilling oversized captures into `arena` (or the system
    /// heap when `arena` is null). Engine::schedule_* always passes its
    /// own arena.
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                  std::is_invocable_v<std::remove_cvref_t<F>&>>>
    EventFn(EventArena* arena, F&& f) {
        using Fn = std::remove_cvref_t<F>;
        if constexpr (fits_inline<Fn>) {
            (void)arena;
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inline_ops<Fn>;
        } else {
#ifdef KOOZA_EVENTFN_INLINE_ONLY
            static_assert(fits_inline<Fn>,
                          "EventFn capture exceeds kEventFnInlineBytes and "
                          "KOOZA_EVENTFN_INLINE_ONLY is set — shrink the "
                          "lambda's capture list");
#else
            void* raw = arena ? arena->allocate(sizeof(OverflowBlock<Fn>))
                              : ::operator new(sizeof(OverflowBlock<Fn>));
            auto* blk = static_cast<OverflowBlock<Fn>*>(raw);
            blk->arena = arena;
            ::new (static_cast<void*>(&blk->fn)) Fn(std::forward<F>(f));
            ptr() = raw;
            ops_ = &overflow_ops<Fn>;
#endif
        }
    }

    /// Convenience: wrap with the system-heap fallback for oversized
    /// captures (tests, standalone use).
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                  std::is_invocable_v<std::remove_cvref_t<F>&>>>
    EventFn(F&& f) : EventFn(nullptr, std::forward<F>(f)) {}  // NOLINT(google-explicit-constructor)

    EventFn(EventFn&& other) noexcept { move_from(other); }
    EventFn& operator=(EventFn&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }
    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;
    ~EventFn() { reset(); }

    /// True when a callable is held.
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /// Invoke the callable (undefined when empty, like std::move'd-from
    /// std::function — the engine never stores empty EventFns).
    void operator()() { ops_->invoke(*this); }

    /// Destroy the held callable (releasing any overflow block) and
    /// become empty.
    void reset() noexcept {
        if (ops_) {
            if (ops_->destroy) ops_->destroy(*this);
            ops_ = nullptr;
        }
    }

private:
    void move_from(EventFn& other) noexcept {
        ops_ = other.ops_;
        if (ops_) {
            if (ops_->relocate)
                ops_->relocate(other, *this);
            else
                std::memcpy(buf_, other.buf_, kEventFnInlineBytes);
            other.ops_ = nullptr;
        }
    }

    void*& ptr() noexcept { return *reinterpret_cast<void**>(buf_); }

    template <typename Fn>
    static Fn& inline_obj(EventFn& e) noexcept {
        return *std::launder(reinterpret_cast<Fn*>(e.buf_));
    }
    template <typename Fn>
    static OverflowBlock<Fn>& overflow_obj(EventFn& e) noexcept {
        return *static_cast<OverflowBlock<Fn>*>(e.ptr());
    }

    template <typename Fn>
    static void inline_invoke(EventFn& e) {
        inline_obj<Fn>(e)();
    }
    template <typename Fn>
    static void inline_relocate(EventFn& from, EventFn& to) noexcept {
        ::new (static_cast<void*>(to.buf_)) Fn(std::move(inline_obj<Fn>(from)));
        inline_obj<Fn>(from).~Fn();
    }
    template <typename Fn>
    static void inline_destroy(EventFn& e) noexcept {
        inline_obj<Fn>(e).~Fn();
    }
    template <typename Fn>
    static constexpr Ops inline_ops{
        &inline_invoke<Fn>,
        std::is_trivially_copyable_v<Fn> ? nullptr : &inline_relocate<Fn>,
        std::is_trivially_destructible_v<Fn> ? nullptr : &inline_destroy<Fn>};

    template <typename Fn>
    static void overflow_invoke(EventFn& e) {
        overflow_obj<Fn>(e).fn();
    }
    static void overflow_relocate(EventFn& from, EventFn& to) noexcept {
        to.ptr() = from.ptr();
    }
    template <typename Fn>
    static void overflow_destroy(EventFn& e) noexcept {
        auto& blk = overflow_obj<Fn>(e);
        EventArena* arena = blk.arena;
        blk.fn.~Fn();
        if (arena)
            arena->deallocate(&blk, sizeof(OverflowBlock<Fn>));
        else
            ::operator delete(&blk);
    }
    template <typename Fn>
    static constexpr Ops overflow_ops{&overflow_invoke<Fn>, &overflow_relocate,
                                      &overflow_destroy<Fn>};

    alignas(std::max_align_t) unsigned char buf_[kEventFnInlineBytes];
    const Ops* ops_ = nullptr;
};

}  // namespace kooza::sim
