#include "sim/resource.hpp"

#include <stdexcept>
#include <utility>

namespace kooza::sim {

Resource::Resource(Engine& engine, std::uint32_t capacity)
    : engine_(engine), capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("Resource: capacity must be >= 1");
}

void Resource::settle() const noexcept {
    const Time now = engine_.now();
    busy_accum_ += double(in_use_) * (now - last_change_);
    last_change_ = now;
}

void Resource::acquire_fn(EventFn on_granted) {
    if (in_use_ < capacity_) {
        grant(std::move(on_granted));
    } else {
        waiters_.push_back(std::move(on_granted));
    }
}

void Resource::grant(EventFn on_granted) {
    settle();
    ++in_use_;
    ++grants_;
    on_granted();
}

void Resource::release() {
    if (in_use_ == 0) throw std::logic_error("Resource::release: nothing held");
    settle();
    --in_use_;
    if (!waiters_.empty()) {
        EventFn next = std::move(waiters_.front());
        waiters_.pop_front();
        // Defer the grant so release() never runs the waiter inline.
        engine_.schedule_after(0.0, [this, next = std::move(next)]() mutable {
            if (in_use_ < capacity_) {
                grant(std::move(next));
            } else {
                // A competing acquire won the slot between release and the
                // deferred grant; put the waiter back at the head.
                waiters_.push_front(std::move(next));
            }
        });
    }
}

double Resource::busy_time() const noexcept {
    settle();
    return busy_accum_;
}

double Resource::utilization() const noexcept {
    const Time now = engine_.now();
    if (now <= 0.0) return 0.0;
    return busy_time() / (double(capacity_) * now);
}

}  // namespace kooza::sim
