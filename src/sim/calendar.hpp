// Calendar-queue event scheduler (R. Brown, CACM 1988), the engine's
// priority queue: power-of-two timestamp buckets with sorted intrusive
// chains, lazy resize keyed to occupancy, and a binary-heap fallback for
// pathological timestamp distributions.
//
// Determinism contract: pop() removes events in strictly increasing
// (at, seq) order — the same total order the old std::push_heap engine
// dispatched — so any workload replays byte-identically regardless of
// which internal mode the queue is in.
//
// Bucket mapping is exact-by-construction: an event's virtual bucket
// ("epoch") is vq = uint64(at * inv_width), its slot is vq & (nbuckets-1),
// and the dispatch scan matches buckets by comparing the *same* integer vq
// against the scan epoch — never by accumulating floating-point bucket
// tops — so an event can never be classified into one window at insert
// time and a different one at dispatch time. The scan invariant is that
// cur_epoch_ never exceeds the epoch of any queued event; pushes pull it
// back, pops advance it to the epoch of the minimum they remove.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/eventfn.hpp"

namespace kooza::sim {

/// One scheduled event, allocated from the engine's EventArena and linked
/// intrusively into its calendar bucket (or heap slot).
struct EventNode {
    double at = 0.0;        ///< simulated time (seconds)
    std::uint64_t seq = 0;  ///< tie-breaker: FIFO among equal timestamps
    /// Calendar bookkeeping: the node's virtual bucket under the width it
    /// was inserted at (set by CalendarQueue::push, unused in heap mode).
    std::uint64_t epoch = 0;
    EventNode* next = nullptr;
    std::uint32_t daemon = 0;  ///< daemon events do not keep run() alive
    EventFn fn;
};

class CalendarQueue {
public:
    CalendarQueue() {
        buckets_.resize(kMinBuckets);
        refresh_slots();
    }
    CalendarQueue(const CalendarQueue&) = delete;
    CalendarQueue& operator=(const CalendarQueue&) = delete;

    [[nodiscard]] std::size_t size() const noexcept {
        return n_ + (staged_[0] != nullptr) + (staged_[1] != nullptr);
    }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

    /// True once the queue has permanently switched to its binary-heap
    /// fallback (degenerate or adversarial timestamp distribution).
    [[nodiscard]] bool heap_fallback() const noexcept { return heap_mode_; }

    /// Insert `n`. The queue takes over the intrusive link (`n->next` is
    /// overwritten); `n->at` must be finite and non-negative.
    ///
    /// Physically, the insert is pipelined two pushes deep: a splice needs
    /// the bucket slot and then the chain head — two *serial* cache misses
    /// once the working set outgrows L2 — so each push prefetches the new
    /// node's bucket line, prefetches the previous node's chain head, and
    /// splices the node staged two pushes ago, whose lines are warm by
    /// now. Staged nodes are full queue members (peek/pop/size see them),
    /// so the (at, seq) dispatch order is identical to an unstaged insert.
    void push(EventNode* n) {
        if (heap_mode_) {
            heap_.push_back(n);
            std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
            ++n_;
            return;
        }
        if (EventNode* m = staged_[0]) {
            staged_[0] = nullptr;
            insert_now(m);
            if (heap_mode_) {
                // insert_now fell back; staged_[1] was absorbed with it.
                push(n);
                return;
            }
        }
        staged_[0] = staged_[1];
        staged_[1] = n;
        if (staged_[0]) {
            // Stage 2: its bucket line was prefetched when it was staged;
            // read the chain head now and start pulling in the node the
            // splice will compare against. (The stored epoch is stale if a
            // resize happened in between — then this prefetches a useless
            // line, which is harmless; insert_now recomputes.)
            const Bucket& b = slots_[staged_[0]->epoch & mask_];
            if (b.head)
                __builtin_prefetch(reinterpret_cast<const char*>(b.head));
        }
        // Stage 1: preliminary epoch (recomputed at splice time) to start
        // the bucket-line fetch.
        const double q = n->at * inv_width_;
        if (q >= 0.0 && q < kMaxQuotient) {
            n->epoch = std::uint64_t(q);
            __builtin_prefetch(
                reinterpret_cast<const char*>(&slots_[n->epoch & mask_]));
        }
    }

    /// Earliest event by (at, seq), nullptr when empty.
    [[nodiscard]] EventNode* peek() {
        EventNode* m = peek_calendar();
        if (staged_[0] && (!m || before(staged_[0], m))) m = staged_[0];
        if (staged_[1] && (!m || before(staged_[1], m))) m = staged_[1];
        return m;
    }

  private:
    /// Calendar-resident minimum by (at, seq) — staged nodes excluded —
    /// nullptr when nothing is bucketed. The found position is cached, so
    /// a pop() right after is O(1).
    [[nodiscard]] EventNode* peek_calendar() {
        if (n_ == 0) return nullptr;
        if (heap_mode_) return heap_.front();
        if (peek_valid_) return peek_bucket_->head;

        // Each slot mirrors its chain head's epoch, so the scan compares
        // integers in the (dense, prefetch-friendly) bucket array and never
        // dereferences a node until the minimum is found.
        std::uint64_t epoch = cur_epoch_;
        for (std::size_t k = 0; k <= mask_; ++k, ++epoch) {
            Bucket& b = slots_[epoch & mask_];
            if (b.head && b.epoch <= epoch) {
                // A width that is too *narrow* shows up as scans crawling
                // over empty slots (the dual of too-wide's long chains).
                // Note it here; pop() re-estimates once it keeps
                // happening. (One long scan after a time gap is normal.)
                if (k > kLongScanSlots && ++long_scans_ >= kLongScanTrigger)
                    rewidth_pending_ = true;
                peek_bucket_ = &b;
                peek_epoch_ = epoch;
                peek_valid_ = true;
                return b.head;
            }
        }
        // Nothing within one full calendar year of the cursor: every event
        // is far in the future. Direct-search the bucket heads for the
        // global minimum and jump the cursor to its epoch.
        Bucket* best = nullptr;
        for (auto& b : buckets_)
            if (b.head && (!best || before(b.head, best->head))) best = &b;
        peek_bucket_ = best;
        peek_epoch_ = best->head->epoch;
        peek_valid_ = true;
        return best->head;
    }

  public:
    /// Remove and return the earliest event, nullptr when empty.
    EventNode* pop() {
        EventNode* cal = peek_calendar();
        EventNode* n = cal;
        int staged_ix = -1;
        if (staged_[0] && (!n || before(staged_[0], n))) {
            n = staged_[0];
            staged_ix = 0;
        }
        if (staged_[1] && (!n || before(staged_[1], n))) {
            n = staged_[1];
            staged_ix = 1;
        }
        if (!n) return nullptr;
        if (staged_ix >= 0) {
            // The minimum never reached a bucket: unstage it and leave the
            // calendar (and its cached peek position) untouched.
            if (staged_ix == 0) staged_[0] = staged_[1];
            staged_[1] = nullptr;
            n->next = nullptr;
            return n;
        }
        if (heap_mode_) {
            std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
            heap_.pop_back();
        } else {
            Bucket* b = peek_bucket_;
            b->head = n->next;
            if (n->next) b->epoch = n->next->epoch;
            cur_epoch_ = peek_epoch_;
            peek_valid_ = false;
        }
        --n_;
        if (!heap_mode_) {
            if (n_ > 0 && (n_ << 2) < mask_ + 1 && mask_ + 1 > kMinBuckets)
                resize((mask_ + 1) >> 1);
            if (rewidth_pending_) {
                rewidth_pending_ = false;
                on_layout_mismatch();
            }
            // Eagerly find the next minimum and start pulling its node
            // into cache: the caller dispatches the popped event next, and
            // that work hides the (otherwise serial) miss on a node last
            // touched thousands of events ago. A push that undercuts the
            // cached minimum invalidates it, so this is purely a hint.
            if (n_ > 0 && peek_calendar()) {
                const char* p = reinterpret_cast<const char*>(peek_bucket_->head);
                __builtin_prefetch(p);
                __builtin_prefetch(p + 64);
                // Deep queues are latency-bound on these node fetches, and
                // one event of dispatch work cannot hide a whole miss —
                // so pull the next few chain heads along the scan
                // direction too (soon-to-be minima, a few pops of
                // lookahead). Below kPrefetchDepth the nodes are
                // cache-resident anyway and the scan would be pure
                // overhead.
                if (n_ >= kPrefetchDepth) {
                    std::uint64_t e = peek_epoch_ + 1;
                    for (std::size_t k = 0, seen = 0; k < 32 && seen < 6;
                         ++k, ++e) {
                        const Bucket& b = slots_[e & mask_];
                        if (b.head) {
                            __builtin_prefetch(
                                reinterpret_cast<const char*>(b.head));
                            ++seen;
                        }
                    }
                }
            }
        }
        n->next = nullptr;
        return n;
    }

    /// Visit every queued event (destructor drains, diagnostics). Order
    /// unspecified; links may be reused by the visitor.
    template <typename Visit>
    void for_each(Visit&& visit) {
        for (EventNode* s : staged_)
            if (s) visit(s);
        if (heap_mode_) {
            for (EventNode* n : heap_) visit(n);
            return;
        }
        for (const Bucket& b : buckets_)
            for (EventNode* n = b.head; n;) {
                EventNode* next = n->next;
                visit(n);
                n = next;
            }
    }

    /// Drop every link without visiting (use after for_each freed nodes).
    void clear() noexcept {
        for (auto& b : buckets_) b.head = nullptr;
        heap_.clear();
        staged_[0] = nullptr;
        staged_[1] = nullptr;
        n_ = 0;
        peek_valid_ = false;
    }

private:
    static constexpr std::size_t kMinBuckets = 8;
    static constexpr std::size_t kMaxBuckets = std::size_t(1) << 22;
    /// uint64(at * inv_width) must stay well below 2^63 for the conversion
    /// to be defined; beyond this no calendar layout exists at this width.
    static constexpr double kMaxQuotient = 9.0e18;
    /// A sorted insert walking more than this many links counts as a
    /// "long walk" — evidence the bucket width no longer matches the
    /// distribution.
    static constexpr std::size_t kLongWalkLinks = 64;
    static constexpr std::size_t kLongWalkTrigger = 1024;
    /// A dispatch scan crossing more than this many slots counts as a
    /// "long scan" — evidence the bucket width is too narrow for the
    /// distribution (the dual of a long insert walk).
    static constexpr std::size_t kLongScanSlots = 32;
    static constexpr std::size_t kLongScanTrigger = 256;
    /// Below this population a skewed layout is too cheap to matter.
    static constexpr std::size_t kFallbackMinEvents = 128;
    /// Population above which pop() prefetches several upcoming chain
    /// heads: the node working set has outgrown L2 and the fetches are
    /// real misses worth hiding. Smaller queues skip the lookahead.
    static constexpr std::size_t kPrefetchDepth = 4096;

    /// One calendar slot: the sorted chain plus a mirror of the head's
    /// epoch, so the dispatch scan stays inside this dense array instead
    /// of chasing node pointers (set wherever head is).
    struct Bucket {
        EventNode* head = nullptr;
        std::uint64_t epoch = 0;  ///< head->epoch; meaningless when empty
    };

    [[nodiscard]] static bool before(const EventNode* a,
                                     const EventNode* b) noexcept {
        if (a->at != b->at) return a->at < b->at;
        return a->seq < b->seq;
    }
    struct HeapLater {
        bool operator()(const EventNode* a, const EventNode* b) const noexcept {
            return before(b, a);
        }
    };

    /// Splice a (formerly staged) node into its bucket for real: the old
    /// un-pipelined push. Handles occupancy resize, the quotient guard,
    /// and the heap fallback.
    void insert_now(EventNode* n) {
        if (heap_mode_) {
            heap_.push_back(n);
            std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
            ++n_;
            return;
        }
        const std::size_t nbuckets = mask_ + 1;
        if (n_ + 1 > (nbuckets >> 1) && nbuckets < kMaxBuckets) {
            resize(nbuckets << 1);
            if (heap_mode_) {
                insert_now(n);
                return;
            }
        }
        double q = n->at * inv_width_;
        if (!(q >= 0.0 && q < kMaxQuotient)) {
            if (n_ == 0) {
                // Nothing bucketed: the stale width from the previous
                // phase just doesn't fit this timestamp. Start over at
                // width 1.
                width_ = 1.0;
                inv_width_ = 1.0;
                q = n->at;
            }
            if (!(q >= 0.0 && q < kMaxQuotient)) {
                enter_heap_mode();
                insert_now(n);
                return;
            }
        }
        const std::uint64_t vq = std::uint64_t(q);
        insert_chain(n, vq);
        ++n_;
        if (n_ == 1 || vq < cur_epoch_) cur_epoch_ = vq;
    }

    void insert_chain(EventNode* n, std::uint64_t vq) {
        n->epoch = vq;
        Bucket& b = slots_[vq & mask_];
        if (!b.head || before(n, b.head)) {
            // New chain head: mirror its epoch into the slot. The cached
            // minimum survives only inserts that land strictly after it —
            // displacing the cached bucket's head or undercutting the
            // minimum both invalidate. (A mid-chain insert sits at or
            // after its head, which is at or after the cached minimum, so
            // only this front-insert path can invalidate.)
            n->next = b.head;
            b.head = n;
            b.epoch = vq;
            if (peek_valid_ &&
                (&b == peek_bucket_ || before(n, peek_bucket_->head)))
                peek_valid_ = false;
            return;
        }
        EventNode** link = &b.head->next;
        std::size_t walk = 1;
        while (*link && before(*link, n)) {
            link = &(*link)->next;
            ++walk;
        }
        n->next = *link;
        *link = n;
        if (walk > kLongWalkLinks && ++long_walks_ >= kLongWalkTrigger)
            on_layout_mismatch();
    }

    /// Unlink every node into one list (buckets are left empty).
    EventNode* gather() noexcept {
        EventNode* all = nullptr;
        for (auto& b : buckets_) {
            for (EventNode* n = b.head; n;) {
                EventNode* next = n->next;
                n->next = all;
                all = n;
                n = next;
            }
            b.head = nullptr;
        }
        peek_valid_ = false;
        return all;
    }

    /// Recompute the bucket width from the live population: the
    /// 10th..90th-percentile time range divided by the events it spans.
    /// Percentiles keep a few far-future outliers (lazy daemon chains)
    /// from smearing the width across an empty horizon; the full min/max
    /// still validate that every node's quotient stays representable.
    /// Returns false when the distribution is degenerate (concentrated at
    /// one timestamp) or the width cannot represent the extremes.
    bool recompute_width(EventNode* all) {
        scratch_.clear();
        double min_at = all->at, max_at = all->at;
        for (EventNode* n = all; n; n = n->next) {
            scratch_.push_back(n->at);
            min_at = std::min(min_at, n->at);
            max_at = std::max(max_at, n->at);
        }
        const std::size_t lo_ix = scratch_.size() / 10;
        const std::size_t hi_ix = scratch_.size() - 1 - scratch_.size() / 10;
        std::nth_element(scratch_.begin(),
                         scratch_.begin() + std::ptrdiff_t(lo_ix),
                         scratch_.end());
        const double lo = scratch_[lo_ix];
        std::nth_element(scratch_.begin(),
                         scratch_.begin() + std::ptrdiff_t(hi_ix),
                         scratch_.end());
        const double hi = scratch_[hi_ix];
        const double w = (hi - lo) / double(hi_ix - lo_ix + 1);
        const double inv = 1.0 / w;
        if (!(w > 0.0) || !(min_at * inv >= 0.0) ||
            !(max_at * inv < kMaxQuotient))
            return false;
        width_ = w;
        inv_width_ = inv;
        return true;
    }

    /// Occupancy-triggered resize: regather, re-estimate the width, and
    /// rebuild at `new_buckets`. A degenerate distribution over a real
    /// population abandons the calendar instead.
    void resize(std::size_t new_buckets) {
        EventNode* all = gather();
        const bool ok = n_ < 2 || recompute_width(all);
        if (!ok && n_ >= kFallbackMinEvents) {
            enter_heap_mode(all);
            return;
        }
        buckets_.assign(new_buckets, Bucket{});
        refresh_slots();
        rebuild_from(all);
        rewidth_failed_once_ = false;
    }

    /// The layout stopped matching the distribution — long sorted-insert
    /// walks (width too wide: events pile into few buckets) or long
    /// dispatch scans (width too narrow: the cursor crawls over empty
    /// slots) keep firing. Re-estimate the width at the same size; if that
    /// changes nothing twice in a row, the distribution has beaten the
    /// calendar — fall back to the heap.
    void on_layout_mismatch() {
        long_walks_ = 0;
        long_scans_ = 0;
        const double old_width = width_;
        EventNode* all = gather();
        const bool ok = n_ < 2 || recompute_width(all);
        if (((!ok) || (rewidth_failed_once_ && width_ == old_width)) &&
            n_ >= kFallbackMinEvents) {
            enter_heap_mode(all);
            return;
        }
        rewidth_failed_once_ = width_ == old_width;
        rebuild_from(all);
    }

    /// Re-link a gathered list into the (empty) buckets under the current
    /// width, and point the cursor at the minimum's epoch. Every node was
    /// validated against the current width (at insert or by
    /// recompute_width), so quotients cannot overflow here.
    void rebuild_from(EventNode* all) {
        const std::size_t mask = buckets_.size() - 1;
        const EventNode* min_node = nullptr;
        std::uint64_t min_epoch = 0;
        for (EventNode* n = all; n;) {
            EventNode* next = n->next;
            const std::uint64_t vq = std::uint64_t(n->at * inv_width_);
            n->epoch = vq;
            Bucket& b = buckets_[vq & mask];
            EventNode** link = &b.head;
            while (*link && before(*link, n)) link = &(*link)->next;
            n->next = *link;
            *link = n;
            if (link == &b.head) b.epoch = vq;
            if (!min_node || before(n, min_node)) {
                min_node = n;
                min_epoch = vq;
            }
            n = next;
        }
        if (min_node) cur_epoch_ = min_epoch;
        long_walks_ = 0;
        long_scans_ = 0;
        rewidth_pending_ = false;
        peek_valid_ = false;
    }

    /// One-way door: move everything — bucketed and staged — into a
    /// (at, seq) binary heap.
    void enter_heap_mode(EventNode* gathered = nullptr) {
        EventNode* all = gathered ? gathered : gather();
        heap_mode_ = true;
        peek_valid_ = false;
        heap_.clear();
        heap_.reserve(n_ + 3);
        for (EventNode* n = all; n;) {
            EventNode* next = n->next;
            n->next = nullptr;
            heap_.push_back(n);
            n = next;
        }
        for (EventNode*& s : staged_)
            if (s) {
                s->next = nullptr;
                heap_.push_back(s);
                s = nullptr;
                ++n_;
            }
        std::make_heap(heap_.begin(), heap_.end(), HeapLater{});
        buckets_.clear();
        buckets_.shrink_to_fit();
        refresh_slots();
    }

    /// Re-derive the raw slot pointer + mask after buckets_ reallocates.
    /// (Hot paths read these members instead of recomputing
    /// buckets_.size() and buckets_.data() per access.)
    void refresh_slots() noexcept {
        slots_ = buckets_.data();
        mask_ = buckets_.empty() ? 0 : buckets_.size() - 1;
    }

    // Calendar state. slots_/mask_ mirror buckets_.data()/size()-1 so the
    // per-event paths skip the vector recomputation (refresh_slots).
    std::vector<Bucket> buckets_;
    Bucket* slots_ = nullptr;
    std::size_t mask_ = 0;
    double width_ = 1.0;
    double inv_width_ = 1.0;
    std::size_t n_ = 0;
    std::uint64_t cur_epoch_ = 0;  ///< virtual bucket the dispatch scan is on
    std::size_t long_walks_ = 0;
    std::size_t long_scans_ = 0;
    bool rewidth_pending_ = false;  ///< peek noticed; pop re-widths
    bool rewidth_failed_once_ = false;
    std::vector<double> scratch_;  ///< resize-time percentile workspace

    // Insert pipeline: the last two pushed nodes, not yet spliced into a
    // bucket ([0] is older and splices next). Full queue members — peek,
    // pop, size, for_each, and clear all account for them.
    EventNode* staged_[2] = {nullptr, nullptr};

    // Cached peek position: the bucket whose head is the minimum, plus
    // the scan epoch to commit when it is popped.
    Bucket* peek_bucket_ = nullptr;
    std::uint64_t peek_epoch_ = 0;
    bool peek_valid_ = false;

    // Fallback state.
    bool heap_mode_ = false;
    std::vector<EventNode*> heap_;
};

}  // namespace kooza::sim
