// FCFS resources for discrete-event models.
//
// A Resource has a fixed capacity of concurrent holders; excess acquirers
// queue FIFO. Device models (disk, CPU cores, network ports) are built on
// this primitive so queueing delay falls out of contention naturally.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace kooza::sim {

/// Counted FCFS resource. `acquire` either grants immediately or enqueues
/// the continuation; `release` hands the slot to the next waiter (scheduled
/// as a zero-delay event so granting never reenters the releaser's stack).
class Resource {
public:
    /// @param engine   owning engine (must outlive the resource)
    /// @param capacity number of concurrent holders (>= 1)
    Resource(Engine& engine, std::uint32_t capacity);

    Resource(const Resource&) = delete;
    Resource& operator=(const Resource&) = delete;

    /// Request a slot; `on_granted` runs (possibly immediately) once a slot
    /// is held. The holder must call release() exactly once when done.
    void acquire(std::function<void()> on_granted);

    /// Return a held slot. Throws std::logic_error if nothing is held.
    void release();

    [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint32_t in_use() const noexcept { return in_use_; }
    [[nodiscard]] std::size_t queue_length() const noexcept { return waiters_.size(); }

    /// Cumulative busy time integrated over all slots (for utilization).
    [[nodiscard]] double busy_time() const noexcept;

    /// Utilization in [0,1] over the window [0, now]: busy_time / (cap * now).
    [[nodiscard]] double utilization() const noexcept;

    /// Total grants so far.
    [[nodiscard]] std::uint64_t total_grants() const noexcept { return grants_; }

private:
    void grant(std::function<void()> on_granted);

    Engine& engine_;
    std::uint32_t capacity_;
    std::uint32_t in_use_ = 0;
    std::uint64_t grants_ = 0;
    std::deque<std::function<void()>> waiters_;

    // busy-time integral bookkeeping
    mutable double busy_accum_ = 0.0;
    mutable Time last_change_ = 0.0;
    void settle() const noexcept;
};

}  // namespace kooza::sim
