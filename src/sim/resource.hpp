// FCFS resources for discrete-event models.
//
// A Resource has a fixed capacity of concurrent holders; excess acquirers
// queue FIFO. Device models (disk, CPU cores, network ports) are built on
// this primitive so queueing delay falls out of contention naturally.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/eventfn.hpp"

namespace kooza::sim {

/// Counted FCFS resource. `acquire` either grants immediately or enqueues
/// the continuation; `release` hands the slot to the next waiter (scheduled
/// as a zero-delay event so granting never reenters the releaser's stack).
class Resource {
public:
    /// @param engine   owning engine (must outlive the resource)
    /// @param capacity number of concurrent holders (>= 1)
    Resource(Engine& engine, std::uint32_t capacity);

    Resource(const Resource&) = delete;
    Resource& operator=(const Resource&) = delete;

    /// Request a slot; `on_granted` runs (possibly immediately) once a slot
    /// is held. The holder must call release() exactly once when done.
    /// Continuations are stored as sim::EventFn drawing overflow blocks
    /// from the owning engine's arena, so queueing stays off the system
    /// heap just like event scheduling.
    template <typename F>
    void acquire(F&& on_granted) {
        if constexpr (requires { static_cast<bool>(on_granted); }) {
            if (!static_cast<bool>(on_granted))
                throw std::invalid_argument("Resource::acquire: empty continuation");
        }
        acquire_fn(EventFn(&engine_.arena(), std::forward<F>(on_granted)));
    }

    /// Return a held slot. Throws std::logic_error if nothing is held.
    void release();

    [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint32_t in_use() const noexcept { return in_use_; }
    [[nodiscard]] std::size_t queue_length() const noexcept { return waiters_.size(); }

    /// Cumulative busy time integrated over all slots (for utilization).
    [[nodiscard]] double busy_time() const noexcept;

    /// Utilization in [0,1] over the window [0, now]: busy_time / (cap * now).
    [[nodiscard]] double utilization() const noexcept;

    /// Total grants so far.
    [[nodiscard]] std::uint64_t total_grants() const noexcept { return grants_; }

private:
    void acquire_fn(EventFn on_granted);
    void grant(EventFn on_granted);

    Engine& engine_;
    std::uint32_t capacity_;
    std::uint32_t in_use_ = 0;
    std::uint64_t grants_ = 0;
    std::deque<EventFn> waiters_;

    // busy-time integral bookkeeping
    mutable double busy_accum_ = 0.0;
    mutable Time last_change_ = 0.0;
    void settle() const noexcept;
};

}  // namespace kooza::sim
