#include "workloads/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace kooza::workloads {

std::optional<gfs::RequestSpec> ScheduleStream::next() {
    if (exhausted_) return std::nullopt;
    auto spec = poll();
    if (!spec) {
        exhausted_ = true;
        return std::nullopt;
    }
    if (spec->time < last_time_) {
        std::ostringstream os;
        os << "ScheduleStream: nondecreasing-time contract violated: request at t="
           << spec->time << " after t=" << last_time_;
        throw std::logic_error(os.str());
    }
    last_time_ = spec->time;
    return spec;
}

void Workload::install(gfs::Cluster& cluster) const {
    for (const auto& [name, size] : files) cluster.create_file(name, size);
    cluster.submit_all(requests);
}

namespace {

/// Clamp an offset so [offset, offset+size) stays inside the file.
std::uint64_t clamp_offset(std::uint64_t offset, std::uint64_t size,
                           std::uint64_t file_size) {
    if (size >= file_size) return 0;
    return std::min(offset, file_size - size);
}

/// Align an offset down to 4 KB (block-friendly I/O).
std::uint64_t align4k(std::uint64_t offset) { return offset & ~std::uint64_t(4095); }

/// Fallback stream: materialize generate() once and replay it.
class MaterializedStream final : public ScheduleStream {
public:
    explicit MaterializedStream(Workload w) : w_(std::move(w)) {}
    const std::vector<std::pair<std::string, std::uint64_t>>& files() const override {
        return w_.files;
    }
    std::optional<gfs::RequestSpec> poll() override {
        if (ix_ >= w_.requests.size()) return std::nullopt;
        return w_.requests[ix_++];
    }

private:
    Workload w_;
    std::size_t ix_ = 0;
};

/// True streaming micro schedule: one request per pull, same draws as
/// MicroProfile::generate (exponential, bernoulli, [uniform]).
class MicroStream final : public ScheduleStream {
public:
    MicroStream(MicroProfile::Params p, sim::Rng rng) : p_(p), rng_(rng) {
        files_.emplace_back("micro.dat", p_.file_size);
    }
    const std::vector<std::pair<std::string, std::uint64_t>>& files() const override {
        return files_;
    }
    std::optional<gfs::RequestSpec> poll() override {
        if (i_ >= p_.count) return std::nullopt;
        ++i_;
        t_ += rng_.exponential(p_.arrival_rate);
        gfs::RequestSpec r;
        r.time = t_;
        r.file = "micro.dat";
        r.type = rng_.bernoulli(p_.read_fraction) ? trace::IoType::kRead
                                                  : trace::IoType::kWrite;
        r.size = r.type == trace::IoType::kRead ? p_.read_size : p_.write_size;
        if (p_.sequential) {
            r.offset = clamp_offset(seq_cursor_, r.size, p_.file_size);
            seq_cursor_ += r.size;
            if (seq_cursor_ + r.size > p_.file_size) seq_cursor_ = 0;
        } else {
            r.offset = clamp_offset(
                align4k(std::uint64_t(rng_.uniform(0.0, double(p_.file_size)))),
                r.size, p_.file_size);
        }
        return r;
    }

private:
    MicroProfile::Params p_;
    sim::Rng rng_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
    double t_ = 0.0;
    std::uint64_t seq_cursor_ = 0;
    std::size_t i_ = 0;
};

/// True streaming OLTP schedule (MMPP phase state carried across pulls).
class OltpStream final : public ScheduleStream {
public:
    OltpStream(OltpProfile::Params p, sim::Rng rng) : p_(p), rng_(rng) {
        files_.emplace_back("table.db", p_.table_size);
    }
    const std::vector<std::pair<std::string, std::uint64_t>>& files() const override {
        return files_;
    }
    std::optional<gfs::RequestSpec> poll() override {
        if (i_ >= p_.count) return std::nullopt;
        ++i_;
        const double burst_rate = p_.base_rate * p_.burst_multiplier;
        const double switch_quiet = 0.5;
        const double switch_burst = 2.0;
        for (;;) {
            const double rate = phase_ == 0 ? p_.base_rate : burst_rate;
            const double sw = phase_ == 0 ? switch_quiet : switch_burst;
            const double ta = rng_.exponential(rate);
            const double ts = rng_.exponential(sw);
            if (ta <= ts) {
                t_ += ta;
                break;
            }
            t_ += ts;
            phase_ ^= 1;
        }
        gfs::RequestSpec r;
        r.time = t_;
        r.file = "table.db";
        r.type = rng_.bernoulli(p_.read_fraction) ? trace::IoType::kRead
                                                  : trace::IoType::kWrite;
        static constexpr std::uint64_t kPages[] = {4096, 8192, 16384};
        r.size = kPages[std::size_t(rng_.uniform_int(0, 2))];
        r.offset = clamp_offset(
            align4k(std::uint64_t(rng_.uniform(0.0, double(p_.table_size)))), r.size,
            p_.table_size);
        return r;
    }

private:
    OltpProfile::Params p_;
    sim::Rng rng_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
    double t_ = 0.0;
    int phase_ = 0;
    std::size_t i_ = 0;
};

/// True streaming log-append schedule.
class LogAppendStream final : public ScheduleStream {
public:
    LogAppendStream(LogAppendProfile::Params p, sim::Rng rng) : p_(p), rng_(rng) {
        for (std::size_t l = 0; l < p_.logs; ++l)
            files_.emplace_back("log." + std::to_string(l), p_.initial_size);
    }
    const std::vector<std::pair<std::string, std::uint64_t>>& files() const override {
        return files_;
    }
    std::optional<gfs::RequestSpec> poll() override {
        if (i_ >= p_.count) return std::nullopt;
        ++i_;
        t_ += rng_.exponential(p_.arrival_rate);
        gfs::RequestSpec r;
        r.time = t_;
        r.file = "log." + std::to_string(std::size_t(
                     rng_.uniform_int(0, std::int64_t(p_.logs) - 1)));
        r.type = trace::IoType::kWrite;
        r.append = true;
        r.size = align4k(std::uint64_t(
                     rng_.uniform(double(p_.min_record), double(p_.max_record))));
        r.size = std::max<std::uint64_t>(r.size, 512);
        return r;
    }

private:
    LogAppendProfile::Params p_;
    sim::Rng rng_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
    double t_ = 0.0;
    std::size_t i_ = 0;
};

}  // namespace

std::unique_ptr<ScheduleStream> Profile::open_stream(sim::Rng rng) const {
    return std::make_unique<MaterializedStream>(generate(rng));
}

std::unique_ptr<ScheduleStream> MicroProfile::open_stream(sim::Rng rng) const {
    return std::make_unique<MicroStream>(p_, rng);
}

std::unique_ptr<ScheduleStream> OltpProfile::open_stream(sim::Rng rng) const {
    return std::make_unique<OltpStream>(p_, rng);
}

std::unique_ptr<ScheduleStream> LogAppendProfile::open_stream(sim::Rng rng) const {
    return std::make_unique<LogAppendStream>(p_, rng);
}

Workload MicroProfile::generate(sim::Rng& rng) const {
    Workload w;
    w.files.emplace_back("micro.dat", p_.file_size);
    double t = 0.0;
    std::uint64_t seq_cursor = 0;
    for (std::size_t i = 0; i < p_.count; ++i) {
        t += rng.exponential(p_.arrival_rate);
        gfs::RequestSpec r;
        r.time = t;
        r.file = "micro.dat";
        r.type = rng.bernoulli(p_.read_fraction) ? trace::IoType::kRead
                                                 : trace::IoType::kWrite;
        r.size = r.type == trace::IoType::kRead ? p_.read_size : p_.write_size;
        if (p_.sequential) {
            r.offset = clamp_offset(seq_cursor, r.size, p_.file_size);
            seq_cursor += r.size;
            if (seq_cursor + r.size > p_.file_size) seq_cursor = 0;
        } else {
            r.offset = clamp_offset(
                align4k(std::uint64_t(rng.uniform(0.0, double(p_.file_size)))), r.size,
                p_.file_size);
        }
        w.requests.push_back(std::move(r));
    }
    return w;
}

Workload OltpProfile::generate(sim::Rng& rng) const {
    Workload w;
    w.files.emplace_back("table.db", p_.table_size);
    // MMPP(2): quiet at base_rate, bursts at base_rate * burst_multiplier.
    const double burst_rate = p_.base_rate * p_.burst_multiplier;
    const double switch_quiet = 0.5;  // leave quiet phase every ~2 s
    const double switch_burst = 2.0;  // bursts last ~0.5 s
    int phase = 0;
    double t = 0.0;
    for (std::size_t i = 0; i < p_.count; ++i) {
        // Competing exponentials between arrival and phase switch.
        for (;;) {
            const double rate = phase == 0 ? p_.base_rate : burst_rate;
            const double sw = phase == 0 ? switch_quiet : switch_burst;
            const double ta = rng.exponential(rate);
            const double ts = rng.exponential(sw);
            if (ta <= ts) {
                t += ta;
                break;
            }
            t += ts;
            phase ^= 1;
        }
        gfs::RequestSpec r;
        r.time = t;
        r.file = "table.db";
        r.type = rng.bernoulli(p_.read_fraction) ? trace::IoType::kRead
                                                 : trace::IoType::kWrite;
        // Page-sized accesses: 4, 8 or 16 KB.
        static constexpr std::uint64_t kPages[] = {4096, 8192, 16384};
        r.size = kPages[std::size_t(rng.uniform_int(0, 2))];
        r.offset = clamp_offset(
            align4k(std::uint64_t(rng.uniform(0.0, double(p_.table_size)))), r.size,
            p_.table_size);
        w.requests.push_back(std::move(r));
    }
    return w;
}

Workload WebSearchProfile::generate(sim::Rng& rng) const {
    Workload w;
    for (std::size_t s = 0; s < p_.shards; ++s)
        w.files.emplace_back("shard." + std::to_string(s), p_.shard_size);
    stats::ZipfSampler popularity(p_.shards, p_.zipf_s);
    double t = 0.0;
    for (std::size_t i = 0; i < p_.count; ++i) {
        t += rng.exponential(p_.arrival_rate);
        gfs::RequestSpec r;
        r.time = t;
        r.file = "shard." + std::to_string(popularity.sample(rng));
        r.type = rng.bernoulli(p_.read_fraction) ? trace::IoType::kRead
                                                 : trace::IoType::kWrite;
        const double bytes = rng.lognormal(p_.size_log_mean, p_.size_log_sigma);
        r.size = std::clamp<std::uint64_t>(std::uint64_t(bytes), 4096, 8ull << 20);
        r.offset = clamp_offset(
            align4k(std::uint64_t(rng.uniform(0.0, double(p_.shard_size)))), r.size,
            p_.shard_size);
        w.requests.push_back(std::move(r));
    }
    std::sort(w.requests.begin(), w.requests.end(),
              [](const gfs::RequestSpec& a, const gfs::RequestSpec& b) {
                  return a.time < b.time;
              });
    return w;
}

Workload StreamingProfile::generate(sim::Rng& rng) const {
    Workload w;
    for (std::size_t f = 0; f < p_.files; ++f)
        w.files.emplace_back("media." + std::to_string(f), p_.file_size);
    stats::ZipfSampler popularity(p_.files, p_.zipf_s);
    double session_start = 0.0;
    for (std::size_t s = 0; s < p_.sessions; ++s) {
        session_start += rng.exponential(p_.session_rate);
        const std::string file = "media." + std::to_string(popularity.sample(rng));
        // Geometric session length (>= 1 segment).
        const std::size_t segments =
            1 + std::size_t(rng.geometric(1.0 / double(p_.mean_segments)));
        // Start position: beginning of the file for most viewers, random
        // seek for some (interrupted playback).
        std::uint64_t cursor =
            rng.bernoulli(0.8) ? 0
                               : align4k(std::uint64_t(
                                     rng.uniform(0.0, double(p_.file_size) / 2)));
        for (std::size_t k = 0; k < segments; ++k) {
            if (cursor + p_.segment > p_.file_size) break;
            gfs::RequestSpec r;
            r.time = session_start + double(k) * p_.segment_interval;
            r.file = file;
            r.type = trace::IoType::kRead;
            r.size = p_.segment;
            r.offset = cursor;
            cursor += p_.segment;
            w.requests.push_back(std::move(r));
        }
    }
    std::sort(w.requests.begin(), w.requests.end(),
              [](const gfs::RequestSpec& a, const gfs::RequestSpec& b) {
                  return a.time < b.time;
              });
    return w;
}

Workload LogAppendProfile::generate(sim::Rng& rng) const {
    Workload w;
    for (std::size_t l = 0; l < p_.logs; ++l)
        w.files.emplace_back("log." + std::to_string(l), p_.initial_size);
    double t = 0.0;
    for (std::size_t i = 0; i < p_.count; ++i) {
        t += rng.exponential(p_.arrival_rate);
        gfs::RequestSpec r;
        r.time = t;
        r.file = "log." + std::to_string(std::size_t(
                     rng.uniform_int(0, std::int64_t(p_.logs) - 1)));
        r.type = trace::IoType::kWrite;
        r.append = true;
        r.size = align4k(std::uint64_t(
                     rng.uniform(double(p_.min_record), double(p_.max_record))));
        r.size = std::max<std::uint64_t>(r.size, 512);
        w.requests.push_back(std::move(r));
    }
    return w;
}

Workload table2_validation_workload() {
    Workload w;
    w.files.emplace_back("validate.dat", 64ull << 20);
    gfs::RequestSpec read;
    read.time = 0.0;
    read.file = "validate.dat";
    read.offset = 0;
    read.size = 64ull << 10;
    read.type = trace::IoType::kRead;
    w.requests.push_back(read);
    gfs::RequestSpec write;
    write.time = 1.0;  // unloaded: well after the read completes
    write.file = "validate.dat";
    write.offset = 8ull << 20;
    write.size = 4ull << 20;
    write.type = trace::IoType::kWrite;
    w.requests.push_back(write);
    return w;
}

}  // namespace kooza::workloads
