// Workload profiles: generators of timed GFS request streams.
//
// These play the role of the application traffic the paper's models are
// trained on. MicroProfile reproduces the paper's validation requests
// (fixed-size reads/writes); the OLTP, web-search and streaming profiles
// are the workload archetypes the survey repeatedly cites (Sengupta's
// OLTP request streams, Barroso's Search, Tang's MediSyn streaming-media
// sessions).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gfs/cluster.hpp"
#include "sim/rng.hpp"
#include "trace/records.hpp"

namespace kooza::workloads {

/// A generated workload: files to create plus a timed request schedule.
struct Workload {
    std::vector<std::pair<std::string, std::uint64_t>> files;  ///< name, bytes
    std::vector<gfs::RequestSpec> requests;

    /// Create the files and submit every request to a cluster.
    void install(gfs::Cluster& cluster) const;
};

/// Pull-based view of a profile's schedule: the file list up front, then
/// requests one at a time in nondecreasing time order. Datacenter-scale
/// captures pump requests from a stream instead of materializing a
/// multi-million-element schedule (core::run_capture uses a stream in
/// both capture modes, so streamed and in-memory runs see the exact same
/// request sequence).
class ScheduleStream {
public:
    virtual ~ScheduleStream() = default;
    ScheduleStream(const ScheduleStream&) = delete;
    ScheduleStream& operator=(const ScheduleStream&) = delete;

    [[nodiscard]] virtual const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const = 0;

    /// Next request, or nullopt once the schedule is exhausted; exhaustion
    /// is permanent (every later call also returns nullopt). Times are
    /// nondecreasing across calls — enforced here at the stream boundary,
    /// not trusted to each implementation: StreamingSink's open_hold/
    /// close_hold watermark ordering silently corrupts if a misbehaving
    /// generator ever steps time backwards, so that bug must die loudly at
    /// its source. Throws std::logic_error naming both timestamps.
    [[nodiscard]] std::optional<gfs::RequestSpec> next();

protected:
    ScheduleStream() = default;

    /// The implementation hook next() wraps with the invariant checks.
    [[nodiscard]] virtual std::optional<gfs::RequestSpec> poll() = 0;

private:
    double last_time_ = -1.0;  ///< all valid request times are >= 0
    bool exhausted_ = false;
};

/// Common interface so benches can sweep profiles generically.
class Profile {
public:
    virtual ~Profile() = default;
    [[nodiscard]] virtual Workload generate(sim::Rng& rng) const = 0;
    [[nodiscard]] virtual std::string name() const = 0;

    /// Open a pull-based stream over this profile's schedule. The base
    /// implementation materializes generate() and replays it, so every
    /// profile is streamable; profiles whose generators are already
    /// monotone in time (micro, oltp, logappend) override it with true
    /// O(1)-memory streams that draw the same RNG sequence as generate(),
    /// making the stream identical to the materialized schedule.
    [[nodiscard]] virtual std::unique_ptr<ScheduleStream> open_stream(
        sim::Rng rng) const;
};

/// Fixed-size request microbenchmark — the paper's Table 2 driver.
/// Generates `count` requests with Poisson arrivals; each is a read of
/// `read_size` with probability `read_fraction`, else a write of
/// `write_size`.
class MicroProfile final : public Profile {
public:
    struct Params {
        std::size_t count = 200;
        double arrival_rate = 20.0;       ///< requests/second
        std::uint64_t read_size = 64ull << 10;
        std::uint64_t write_size = 4ull << 20;
        double read_fraction = 0.5;
        std::uint64_t file_size = 1ull << 30;
        bool sequential = false;          ///< sequential vs random offsets
    };
    explicit MicroProfile(Params p) : p_(p) {}
    [[nodiscard]] Workload generate(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "micro"; }
    [[nodiscard]] std::unique_ptr<ScheduleStream> open_stream(
        sim::Rng rng) const override;
    [[nodiscard]] const Params& params() const noexcept { return p_; }

private:
    Params p_;
};

/// OLTP-like: small (4-16 KB) random reads and writes against one large
/// table file, 70% reads, bursty MMPP arrivals.
class OltpProfile final : public Profile {
public:
    struct Params {
        std::size_t count = 2000;
        double base_rate = 200.0;      ///< quiet-phase arrivals/second
        double burst_multiplier = 5.0;
        double read_fraction = 0.7;
        std::uint64_t table_size = 4ull << 30;
    };
    explicit OltpProfile(Params p) : p_(p) {}
    [[nodiscard]] Workload generate(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "oltp"; }
    [[nodiscard]] std::unique_ptr<ScheduleStream> open_stream(
        sim::Rng rng) const override;

private:
    Params p_;
};

/// Web-search-like: read-dominant, Zipf-popular index shards, lognormal
/// result sizes.
class WebSearchProfile final : public Profile {
public:
    struct Params {
        std::size_t count = 2000;
        double arrival_rate = 100.0;
        std::size_t shards = 32;
        std::uint64_t shard_size = 256ull << 20;
        double zipf_s = 0.9;
        double read_fraction = 0.99;   ///< the rest are index updates
        double size_log_mean = 11.0;   ///< ln bytes: e^11 ~ 60 KB
        double size_log_sigma = 0.6;
    };
    explicit WebSearchProfile(Params p) : p_(p) {}
    [[nodiscard]] Workload generate(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "websearch"; }

private:
    Params p_;
};

/// Streaming-media-like (MediSyn-flavored): Poisson session arrivals;
/// each session reads a Zipf-popular media file sequentially in fixed
/// segments at a steady playback rate.
class StreamingProfile final : public Profile {
public:
    struct Params {
        std::size_t sessions = 50;
        double session_rate = 2.0;       ///< session starts/second
        std::size_t files = 20;
        std::uint64_t file_size = 512ull << 20;
        double zipf_s = 1.1;
        std::uint64_t segment = 1ull << 20;  ///< bytes per segment read
        double segment_interval = 0.1;       ///< seconds between segments
        std::size_t mean_segments = 20;      ///< geometric session length
    };
    explicit StreamingProfile(Params p) : p_(p) {}
    [[nodiscard]] Workload generate(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "streaming"; }

private:
    Params p_;
};

/// Log-append: write-only record appends to a few log files (commit-log /
/// logging tier behavior; exercises the GFS record-append path with its
/// chunk padding and sequential disk locality).
class LogAppendProfile final : public Profile {
public:
    struct Params {
        std::size_t count = 1000;
        double arrival_rate = 50.0;
        std::size_t logs = 4;
        std::uint64_t initial_size = 1ull << 20;
        std::uint64_t min_record = 4096;
        std::uint64_t max_record = 256ull << 10;
    };
    explicit LogAppendProfile(Params p) : p_(p) {}
    [[nodiscard]] Workload generate(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "logappend"; }
    [[nodiscard]] std::unique_ptr<ScheduleStream> open_stream(
        sim::Rng rng) const override;

private:
    Params p_;
};

/// The paper's two validation requests (Table 2), issued back-to-back and
/// unloaded: request 0 = 64 KB read, request 1 = 4 MB write.
[[nodiscard]] Workload table2_validation_workload();

}  // namespace kooza::workloads
