// Scenario library: named, ready-to-run workload configurations for the
// cross-examination harness and `kooza_capture --scenario`.
//
// A scenario is a recipe composing the generator building blocks
// (generator.hpp) with the queueing layer's time-varying rate envelopes:
//
//   diurnal     day/night load curve over a mixed read/write file set
//   flashcrowd  flash-crowd spikes against Zipf-hot read objects
//   tiered      read-tier + log-append write-tier, time-merged
//   checkpoint  Daly-style HPC checkpoint/restart traffic
//
// Each scenario is deterministic in (params, seed): the same config opens
// the same op sequence, so streamed and materialized captures agree
// byte-for-byte at any thread count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/closedloop.hpp"
#include "workloads/generator.hpp"

namespace kooza::workloads {

/// Knobs every scenario accepts; each maps them onto its own recipe.
struct ScenarioParams {
    std::size_t count = 500;   ///< total requests to emit
    double rate = 40.0;        ///< base arrival rate (requests/second)
    std::uint64_t seed = 1234;
    std::uint64_t read_size = 64ull << 10;
    std::uint64_t write_size = 1ull << 20;
    double period = 60.0;      ///< envelope period (diurnal cycle / spike spacing)
};

/// Names accepted by make_scenario, in presentation order.
[[nodiscard]] const std::vector<std::string>& scenario_names();

/// One-line human description of a scenario ("" for unknown names).
[[nodiscard]] std::string describe_scenario(const std::string& name);

/// Build a scenario generator, or nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<Generator> make_scenario(const std::string& name,
                                                       const ScenarioParams& p);

/// Closed-loop scenarios are feedback recipes (client pools driven by
/// completion callbacks), not ScheduleStreams, so they live in their own
/// table: make_scenario() cannot build them and they are absent from
/// scenario_names(). run_capture routes them to the closed-loop driver.
[[nodiscard]] const std::vector<std::string>& closed_loop_scenario_names();
[[nodiscard]] bool is_closed_loop_scenario(const std::string& name);
[[nodiscard]] std::string describe_closed_loop_scenario(const std::string& name);

/// Map the common scenario knobs onto a closed-loop recipe. Throws
/// std::invalid_argument for a name not in closed_loop_scenario_names().
[[nodiscard]] ClosedLoopParams make_closed_loop_scenario(const std::string& name,
                                                         const ScenarioParams& p);

}  // namespace kooza::workloads
