#include "workloads/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "trace/io.hpp"

namespace kooza::workloads {

namespace {

std::uint64_t align4k(std::uint64_t offset) { return offset & ~std::uint64_t(4095); }

/// Clamp an offset so [offset, offset+size) stays inside the file.
std::uint64_t clamp_offset(std::uint64_t offset, std::uint64_t size,
                           std::uint64_t file_size) {
    if (size >= file_size) return 0;
    return std::min(offset, file_size - size);
}

}  // namespace

// ---------------------------------------------------------------- profiles

ProfileGenerator::ProfileGenerator(std::unique_ptr<Profile> profile,
                                   std::uint64_t seed)
    : profile_(std::move(profile)) {
    if (!profile_)
        throw std::invalid_argument("ProfileGenerator: null profile");
    stream_ = profile_->open_stream(sim::Rng(seed));
}

// --------------------------------------------------------------------- mix

MixGenerator::MixGenerator(std::string name, Params p,
                           std::unique_ptr<queueing::ArrivalProcess> arrivals,
                           sim::Rng rng)
    : name_(std::move(name)), p_(p), arrivals_(std::move(arrivals)), rng_(rng) {
    if (!arrivals_)
        throw std::invalid_argument("MixGenerator: null arrival process");
    if (p_.files == 0) throw std::invalid_argument("MixGenerator: zero files");
    if (p_.read_size == 0 || p_.write_size == 0)
        throw std::invalid_argument("MixGenerator: zero request size");
    arrivals_->reset();
    for (std::size_t f = 0; f < p_.files; ++f)
        files_.emplace_back(p_.file_prefix + std::to_string(f), p_.file_size);
    if (p_.zipf_s > 0.0 && p_.files > 1) {
        popularity_cdf_.resize(p_.files);
        double total = 0.0;
        for (std::size_t f = 0; f < p_.files; ++f) {
            total += 1.0 / std::pow(double(f + 1), p_.zipf_s);
            popularity_cdf_[f] = total;
        }
        for (double& c : popularity_cdf_) c /= total;
    }
}

std::optional<gfs::RequestSpec> MixGenerator::poll() {
    if (i_ >= p_.count) return std::nullopt;
    ++i_;
    t_ += arrivals_->next_interarrival(rng_);

    std::size_t file_ix = 0;
    if (!popularity_cdf_.empty()) {
        const double u = rng_.uniform(0.0, 1.0);
        file_ix = std::size_t(std::upper_bound(popularity_cdf_.begin(),
                                               popularity_cdf_.end(), u) -
                              popularity_cdf_.begin());
        file_ix = std::min(file_ix, p_.files - 1);
    } else if (p_.files > 1) {
        file_ix = std::size_t(rng_.uniform_int(0, std::int64_t(p_.files) - 1));
    }

    gfs::RequestSpec r;
    r.time = t_;
    r.file = files_[file_ix].first;
    r.type = rng_.bernoulli(p_.read_fraction) ? trace::IoType::kRead
                                              : trace::IoType::kWrite;
    r.size = r.type == trace::IoType::kRead ? p_.read_size : p_.write_size;
    if (r.type == trace::IoType::kWrite && p_.append_writes) {
        r.append = true;
    } else {
        r.offset = clamp_offset(
            align4k(std::uint64_t(rng_.uniform(0.0, double(p_.file_size)))), r.size,
            p_.file_size);
    }
    return r;
}

// -------------------------------------------------------------- checkpoint

CheckpointGenerator::CheckpointGenerator(Params p, sim::Rng rng)
    : p_(p), rng_(rng) {
    if (p_.ranks == 0) throw std::invalid_argument("CheckpointGenerator: zero ranks");
    if (p_.segment == 0)
        throw std::invalid_argument("CheckpointGenerator: zero segment");
    if (!(p_.bandwidth > 0.0))
        throw std::invalid_argument("CheckpointGenerator: bandwidth must be > 0");
    if (!(p_.mtti > 0.0))
        throw std::invalid_argument("CheckpointGenerator: mtti must be > 0");
    if (p_.checkpoint_bytes == 0)
        throw std::invalid_argument("CheckpointGenerator: zero checkpoint size");

    // Per-rank shard, rounded up to whole segments (>= one segment).
    const std::uint64_t raw = (p_.checkpoint_bytes + p_.ranks - 1) / p_.ranks;
    shard_ = ((std::max(raw, p_.segment) + p_.segment - 1) / p_.segment) * p_.segment;
    for (std::size_t r = 0; r < p_.ranks; ++r)
        files_.emplace_back("ckpt." + std::to_string(r), shard_);

    // Ranks write their shards concurrently at per-rank `bandwidth`, so a
    // checkpoint takes delta = shard/bandwidth; Daly '06 first-order
    // optimum tau = sqrt(2*delta*M) - delta, floored at delta (a shorter
    // compute phase than one checkpoint write is never optimal).
    delta_ = double(shard_) / p_.bandwidth;
    tau_ = std::max(delta_, std::sqrt(2.0 * delta_ * p_.mtti) - delta_);
    next_failure_ = rng_.exponential(1.0 / p_.mtti);
}

void CheckpointGenerator::refill() {
    const double seg_time = double(p_.segment) / p_.bandwidth;
    const std::size_t segs = std::size_t(shard_ / p_.segment);

    // A failure rolls the app back to its last complete checkpoint: every
    // rank reads its shard back in, then compute resumes.
    auto restart = [&](double f) {
        if (have_checkpoint_) {
            for (std::size_t k = 0; k < segs; ++k)
                for (std::size_t r = 0; r < p_.ranks; ++r) {
                    gfs::RequestSpec op;
                    op.time = f + double(k) * seg_time;
                    op.file = files_[r].first;
                    op.offset = std::uint64_t(k) * p_.segment;
                    op.size = p_.segment;
                    op.type = trace::IoType::kRead;
                    buffer_.push_back(std::move(op));
                }
            t_ = f + double(segs) * seg_time;
        } else {
            t_ = f;  // nothing to restore yet; just lose the work
        }
        next_failure_ = t_ + rng_.exponential(1.0 / p_.mtti);
    };

    const double ckpt_start = t_ + tau_;
    if (next_failure_ < ckpt_start) {
        restart(next_failure_);
        return;
    }
    for (std::size_t k = 0; k < segs; ++k) {
        const double wt = ckpt_start + double(k) * seg_time;
        if (wt >= next_failure_) {
            // Interrupted mid-checkpoint: the partial writes above stand,
            // but the checkpoint is not usable — restore the previous one.
            restart(next_failure_);
            return;
        }
        for (std::size_t r = 0; r < p_.ranks; ++r) {
            gfs::RequestSpec op;
            op.time = wt;
            op.file = files_[r].first;
            op.offset = std::uint64_t(k) * p_.segment;
            op.size = p_.segment;
            op.type = trace::IoType::kWrite;
            buffer_.push_back(std::move(op));
        }
    }
    t_ = ckpt_start + double(segs) * seg_time;
    have_checkpoint_ = true;
}

std::optional<gfs::RequestSpec> CheckpointGenerator::poll() {
    if (emitted_ >= p_.count) return std::nullopt;
    // refill() may legitimately produce nothing (a failure before the
    // first checkpoint); the guard bounds pathological parameter choices.
    for (int guard = 0; buffer_.empty() && guard < 100000; ++guard) refill();
    if (buffer_.empty()) return std::nullopt;
    ++emitted_;
    auto op = std::move(buffer_.front());
    buffer_.pop_front();
    return op;
}

// ------------------------------------------------------------ trace replay

TraceReplayGenerator::TraceReplayGenerator(const std::filesystem::path& trace_dir)
    : TraceReplayGenerator(trace_dir, Params{}) {}

TraceReplayGenerator::TraceReplayGenerator(const std::filesystem::path& trace_dir,
                                           Params p) {
    const auto ts = trace::read_traces(trace_dir);
    if (ts.requests.empty())
        throw std::runtime_error("TraceReplayGenerator: no request records in " +
                                 trace_dir.string());

    std::uint64_t max_size = 512;
    ops_.reserve(ts.requests.size());
    for (const auto& rec : ts.requests) {
        gfs::RequestSpec r;
        r.time = rec.arrival;
        r.type = rec.type;
        r.size = std::max<std::uint64_t>(rec.bytes, 512);
        // Offset re-laid-out deterministically from the request id (the
        // requests stream does not retain file placement).
        std::uint64_t h = (rec.request_id + 1) * 0x9E3779B97F4A7C15ull;
        h ^= h >> 33;
        r.offset = h;  // clamped below once the file size is known
        max_size = std::max(max_size, r.size);
        ops_.push_back(std::move(r));
    }
    const std::uint64_t file_size = std::max(p.file_size, 2 * max_size);
    files_.emplace_back("replay.dat", file_size);
    for (auto& r : ops_)
        r.file = "replay.dat",
        r.offset = clamp_offset(align4k(r.offset % file_size), r.size, file_size);

    // Request records land in completion order; replay needs arrival
    // order. Ties break by request id so the replay is deterministic.
    std::stable_sort(ops_.begin(), ops_.end(),
                     [](const gfs::RequestSpec& a, const gfs::RequestSpec& b) {
                         return a.time < b.time;
                     });
}

std::optional<gfs::RequestSpec> TraceReplayGenerator::poll() {
    if (ix_ >= ops_.size()) return std::nullopt;
    return ops_[ix_++];
}

// ------------------------------------------------------------------- merge

MergeGenerator::MergeGenerator(std::string name,
                               std::vector<std::unique_ptr<Generator>> parts)
    : name_(std::move(name)), parts_(std::move(parts)) {
    if (parts_.empty())
        throw std::invalid_argument("MergeGenerator: no sub-generators");
    std::set<std::string> seen;
    for (const auto& part : parts_) {
        if (!part) throw std::invalid_argument("MergeGenerator: null sub-generator");
        for (const auto& f : part->files()) {
            if (!seen.insert(f.first).second)
                throw std::invalid_argument(
                    "MergeGenerator: file name collision between sub-generators: " +
                    f.first);
            files_.push_back(f);
        }
    }
    heads_.reserve(parts_.size());
    for (auto& part : parts_) heads_.push_back(part->next());
}

std::optional<gfs::RequestSpec> MergeGenerator::poll() {
    std::size_t best = heads_.size();
    for (std::size_t i = 0; i < heads_.size(); ++i)
        if (heads_[i] && (best == heads_.size() || heads_[i]->time < heads_[best]->time))
            best = i;
    if (best == heads_.size()) return std::nullopt;
    auto op = std::move(heads_[best]);
    heads_[best] = parts_[best]->next();
    return op;
}

}  // namespace kooza::workloads
