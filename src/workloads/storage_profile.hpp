// Rome-style storage workload profiles.
//
// Three storage-modeling papers in the survey meet here:
//  * Ozmen '07 uses the Rome model: storage activity as "a stream of
//    stores characterized by parameters like: randomness, request rates,
//    read/write mix, burstiness, and request size" — StorageProfile is
//    exactly that parameter set.
//  * Sankar '09 characterizes production storage traces — extract_profile
//    measures the Rome parameters from a StorageRecord stream.
//  * Gulati '09 predicts "the expected latency to service I/O requests"
//    from the workload profile — predict_latency is that estimator
//    (M/G/1 on the disk mechanics).
// generate_trace closes the loop: a profile is enough to synthesize a
// representative trace without the platform the original was captured on.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hw/disk.hpp"
#include "sim/rng.hpp"
#include "stats/distributions.hpp"
#include "trace/records.hpp"

namespace kooza::workloads {

/// The Rome parameter set for one storage workload.
struct StorageProfile {
    double request_rate = 0.0;    ///< I/Os per second
    double read_fraction = 1.0;   ///< reads / all
    double randomness = 1.0;      ///< fraction of non-sequential I/Os
    double burstiness = 1.0;      ///< index of dispersion of arrival counts
    std::unique_ptr<stats::Distribution> size_dist;  ///< request size (bytes)
    double mean_seek_fraction = 0.0;  ///< mean LBN jump / LBN-space size
    std::uint64_t lbn_space = 0;      ///< observed LBN space (max + 1)

    StorageProfile() = default;
    StorageProfile(StorageProfile&&) = default;
    StorageProfile& operator=(StorageProfile&&) = default;
    /// Deep copy (clones the size distribution).
    [[nodiscard]] StorageProfile clone() const;

    [[nodiscard]] std::string describe() const;
};

/// Measure the Rome parameters of a storage trace (Sankar-style
/// characterization). Requires >= 2 records. `idc_window` is the bin
/// width for the burstiness measurement.
[[nodiscard]] StorageProfile extract_profile(std::span<const trace::StorageRecord> recs,
                                             double idc_window = 0.1);

/// Synthesize a storage trace from a profile (Rome-style generation):
/// bursty arrivals (two-phase modulated Poisson scaled to the profile's
/// burstiness), sequential runs broken by random jumps per `randomness`,
/// sizes from the profile's distribution, reads/writes per the mix.
/// Latency fields are left 0 (the trace has not been serviced yet).
[[nodiscard]] std::vector<trace::StorageRecord> generate_trace(
    const StorageProfile& profile, std::size_t count, sim::Rng& rng);

/// Gulati-style analytic latency prediction: expected mean I/O latency of
/// the profile on a disk, modeling the device as an M/G/1 queue whose
/// service time comes from the disk mechanics (seek by randomness,
/// rotation, transfer by size). Throws std::invalid_argument if the
/// profile overloads the disk (utilization >= 1).
[[nodiscard]] double predict_latency(const StorageProfile& profile,
                                     const hw::DiskParams& disk);

/// Convenience: run a (possibly synthetic) trace against a simulated Disk
/// and return the measured mean latency — the oracle predict_latency is
/// validated against.
[[nodiscard]] double measure_latency(std::span<const trace::StorageRecord> recs,
                                     const hw::DiskParams& disk);

}  // namespace kooza::workloads
