// Pluggable workload-generator API, after CODES' standard op-stream
// interface (codes_workload_get_next(): many generators, one simulator).
//
// A Generator is a named, pull-based stream of typed ops
// (gfs::RequestSpec) feeding core::run_capture's SchedulePump. It extends
// ScheduleStream — so every generator inherits the nondecreasing-time
// enforcement StreamingSink's hold protocol depends on — and adds an
// identity plus a family of implementations beyond the synthetic
// profiles:
//
//   ProfileGenerator     the existing workloads::Profile archetypes
//   CheckpointGenerator  Daly-style HPC checkpoint/restart traffic
//   TraceReplayGenerator re-issue a captured kooza.trace/1 requests log
//   MergeGenerator       time-merge of sub-generators (tiered scenarios)
//   core::ModelReplayGenerator  trained-KOOZA-model replay (core lib)
//
// The scenario library (scenarios.hpp) composes these into named configs.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "queueing/arrival.hpp"
#include "sim/rng.hpp"
#include "workloads/profiles.hpp"

namespace kooza::workloads {

/// Named pull-based op stream. Ops come back one at a time in
/// nondecreasing time order (enforced by ScheduleStream::next());
/// exhaustion (nullopt) is permanent. Generators are single-pass: open a
/// fresh one (same config + seed) to re-read the same op sequence.
class Generator : public ScheduleStream {
public:
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapter: any Profile is a Generator via its open_stream() schedule.
class ProfileGenerator final : public Generator {
public:
    ProfileGenerator(std::unique_ptr<Profile> profile, std::uint64_t seed);

    [[nodiscard]] std::string name() const override { return profile_->name(); }
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return stream_->files();
    }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override {
        return stream_->next();
    }

private:
    std::unique_ptr<Profile> profile_;
    std::unique_ptr<ScheduleStream> stream_;
};

/// Generic arrival-process-driven request mix: the building block the
/// scenario library modulates with time-varying envelopes. Fixed-size
/// reads/writes against a set of files with optional Zipf popularity.
class MixGenerator final : public Generator {
public:
    struct Params {
        std::size_t count = 500;
        double read_fraction = 0.7;
        std::uint64_t read_size = 64ull << 10;
        std::uint64_t write_size = 1ull << 20;
        std::size_t files = 8;
        std::uint64_t file_size = 1ull << 30;
        double zipf_s = 0.0;  ///< 0 = uniform file popularity
        std::string file_prefix = "data.";
        bool append_writes = false;  ///< writes use the record-append path
    };

    MixGenerator(std::string name, Params p,
                 std::unique_ptr<queueing::ArrivalProcess> arrivals, sim::Rng rng);

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return files_;
    }
    [[nodiscard]] const queueing::ArrivalProcess& arrivals() const noexcept {
        return *arrivals_;
    }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override;

private:
    std::string name_;
    Params p_;
    std::unique_ptr<queueing::ArrivalProcess> arrivals_;
    sim::Rng rng_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
    std::vector<double> popularity_cdf_;  ///< empty when uniform
    double t_ = 0.0;
    std::size_t i_ = 0;
};

/// Daly-style HPC checkpoint/restart workload (after the CODES checkpoint
/// generator): an application computes for the Daly-optimal interval
/// tau = sqrt(2*delta*MTTI) - delta (delta = checkpoint_bytes/bandwidth),
/// then every rank writes its checkpoint shard in segment-sized
/// sequential writes. Failures arrive with exponential MTTI; a failure
/// rolls the app back — every rank reads its last complete checkpoint
/// shard back in (restart reads) and recomputes. Ops stop after `count`.
class CheckpointGenerator final : public Generator {
public:
    struct Params {
        std::size_t count = 500;           ///< total ops (writes + reads)
        double mtti = 120.0;               ///< mean time to interrupt, seconds
        std::uint64_t checkpoint_bytes = 256ull << 20;  ///< app-wide snapshot
        double bandwidth = 1e9;            ///< sustained ckpt bytes/second
        std::size_t ranks = 4;             ///< files written per checkpoint
        std::uint64_t segment = 16ull << 20;  ///< bytes per write/read op
    };

    CheckpointGenerator(Params p, sim::Rng rng);

    [[nodiscard]] std::string name() const override { return "checkpoint"; }
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return files_;
    }
    /// The Daly-optimal compute interval this instance derived.
    [[nodiscard]] double optimal_interval() const noexcept { return tau_; }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override;

private:
    void refill();

    Params p_;
    sim::Rng rng_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
    std::deque<gfs::RequestSpec> buffer_;
    std::uint64_t shard_ = 0;     ///< checkpoint bytes per rank
    double tau_ = 0.0;            ///< Daly-optimal compute interval
    double delta_ = 0.0;          ///< checkpoint write time
    double t_ = 0.0;              ///< application clock
    double next_failure_ = 0.0;
    bool have_checkpoint_ = false;
    std::size_t emitted_ = 0;
};

/// Trace-log replay: re-issue the end-to-end requests stream of a
/// captured trace directory (CSV or kooza.trace/1 binary, auto-detected)
/// against a fresh cluster. Arrival times, types and sizes replay
/// verbatim (sorted by arrival); file placement is re-laid-out
/// deterministically over one replay file, since request records do not
/// retain offsets.
class TraceReplayGenerator final : public Generator {
public:
    struct Params {
        std::uint64_t file_size = 1ull << 30;  ///< grows to fit large requests
    };

    explicit TraceReplayGenerator(const std::filesystem::path& trace_dir);
    TraceReplayGenerator(const std::filesystem::path& trace_dir, Params p);

    [[nodiscard]] std::string name() const override { return "trace-replay"; }
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return files_;
    }
    [[nodiscard]] std::size_t total_ops() const noexcept { return ops_.size(); }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override;

private:
    std::vector<std::pair<std::string, std::uint64_t>> files_;
    std::vector<gfs::RequestSpec> ops_;
    std::size_t ix_ = 0;
};

/// Time-merge of sub-generators into one nondecreasing op stream (ties
/// break by sub-generator index, so the merge is deterministic). The
/// sub-generators' file sets must not collide.
class MergeGenerator final : public Generator {
public:
    MergeGenerator(std::string name,
                   std::vector<std::unique_ptr<Generator>> parts);

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return files_;
    }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override;

private:
    std::string name_;
    std::vector<std::unique_ptr<Generator>> parts_;
    std::vector<std::optional<gfs::RequestSpec>> heads_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
};

}  // namespace kooza::workloads
