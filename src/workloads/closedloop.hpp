// Closed-loop client pool: the feedback half of the workload layer.
//
// Open-loop ScheduleStreams emit arrivals on a fixed clock regardless of
// how the cluster is doing; real serving systems are closed loops —
// each client keeps a bounded window of outstanding requests and only
// submits the next one after a completion (plus think time). That
// feedback is fundamentally incompatible with the ScheduleStream NVI
// contract (a completion at t can mint a request earlier than one
// already emitted for t' > t, violating nondecreasing next()), so the
// pool is a standalone source sharing the stream vocabulary — files()
// for cluster setup, gfs::RequestSpec per request — and is driven by
// completion callbacks from gfs::Cluster (see core::run_capture's
// closed-loop driver).
//
// Determinism: every client draws from its own sim::Rng seeded with
// par::shard_seed(seed, client), so the request sequence a client
// produces depends only on (seed, client, how many times it drew) —
// byte-reproducible at any thread count, exactly the PR 1 discipline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gfs/cluster.hpp"
#include "sim/rng.hpp"

namespace kooza::workloads {

struct ClosedLoopParams {
    std::size_t clients = 8;       ///< client pool size
    std::size_t outstanding = 4;   ///< window: requests in flight per client
    double think_time = 0.01;      ///< mean think seconds (exponential; 0 = none)
    std::size_t total = 500;       ///< global request budget across the pool
    double read_fraction = 0.7;
    std::uint64_t read_size = 64ull << 10;
    std::uint64_t write_size = 1ull << 20;
    std::size_t files = 8;
    std::uint64_t file_size = 1ull << 30;
    double zipf_s = 0.9;           ///< file popularity skew (0 = uniform)
    std::string file_prefix = "closed.";
    std::uint64_t seed = 1234;
};

class ClosedLoopPool {
public:
    explicit ClosedLoopPool(ClosedLoopParams p);

    /// Files the cluster must create before the pool runs (same contract
    /// as ScheduleStream::files()).
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>& files()
        const noexcept {
        return files_;
    }

    /// Draw `client`'s next request given that its slot freed at `now`
    /// (simulated seconds): submission time is now + a think-time draw.
    /// Returns nullopt once the global budget is spent — the pool, like a
    /// stream, is then permanently exhausted. Throws std::out_of_range
    /// for a client index outside the pool.
    [[nodiscard]] std::optional<gfs::RequestSpec> next(std::uint32_t client,
                                                      double now);

    [[nodiscard]] std::size_t issued() const noexcept { return issued_; }
    [[nodiscard]] bool exhausted() const noexcept { return issued_ >= p_.total; }
    [[nodiscard]] const ClosedLoopParams& params() const noexcept { return p_; }

private:
    ClosedLoopParams p_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
    std::vector<double> popularity_cdf_;  ///< empty = uniform file pick
    std::vector<sim::Rng> rngs_;          ///< one deterministic shard per client
    std::size_t issued_ = 0;
};

}  // namespace kooza::workloads
