#include "workloads/scenarios.hpp"

#include <algorithm>
#include <stdexcept>

#include "queueing/arrival.hpp"

namespace kooza::workloads {

namespace {

std::unique_ptr<Generator> make_diurnal(const ScenarioParams& p) {
    MixGenerator::Params mix;
    mix.count = p.count;
    mix.read_fraction = 0.7;
    mix.read_size = p.read_size;
    mix.write_size = p.write_size;
    mix.files = 8;
    mix.zipf_s = 0.9;
    mix.file_prefix = "diurnal.";
    auto arrivals = std::make_unique<queueing::ModulatedArrivals>(
        std::make_unique<queueing::DiurnalEnvelope>(p.rate, 0.8, p.period));
    return std::make_unique<MixGenerator>("diurnal", mix, std::move(arrivals),
                                          sim::Rng(p.seed));
}

std::unique_ptr<Generator> make_flashcrowd(const ScenarioParams& p) {
    MixGenerator::Params mix;
    mix.count = p.count;
    mix.read_fraction = 0.95;  // crowds read the hot object; few updates
    mix.read_size = p.read_size;
    mix.write_size = p.write_size;
    mix.files = 16;
    mix.zipf_s = 1.2;  // sharply skewed popularity: the viral object
    mix.file_prefix = "crowd.";
    auto arrivals = std::make_unique<queueing::ModulatedArrivals>(
        std::make_unique<queueing::SpikeEnvelope>(p.rate, 8.0, p.period,
                                                  p.period / 10.0));
    return std::make_unique<MixGenerator>("flashcrowd", mix, std::move(arrivals),
                                          sim::Rng(p.seed));
}

std::unique_ptr<Generator> make_tiered(const ScenarioParams& p) {
    // 70/30 split between a Zipf-read serving tier and a log-append
    // write tier, each with its own arrival stream and file namespace.
    const std::size_t reads = std::max<std::size_t>(1, (p.count * 7) / 10);
    const std::size_t writes = std::max<std::size_t>(1, p.count - reads);
    sim::Rng root(p.seed);
    auto read_rng = root.fork();
    auto write_rng = root.fork();

    MixGenerator::Params read_tier;
    read_tier.count = reads;
    read_tier.read_fraction = 1.0;
    read_tier.read_size = p.read_size;
    read_tier.files = 8;
    read_tier.zipf_s = 0.9;
    read_tier.file_prefix = "tier.read.";

    MixGenerator::Params write_tier;
    write_tier.count = writes;
    write_tier.read_fraction = 0.0;
    write_tier.write_size = p.write_size;
    write_tier.files = 2;
    write_tier.file_prefix = "tier.log.";
    write_tier.append_writes = true;  // commit-log tier uses record appends

    std::vector<std::unique_ptr<Generator>> parts;
    parts.push_back(std::make_unique<MixGenerator>(
        "tiered.read", read_tier,
        std::make_unique<queueing::PoissonArrivals>(p.rate * 0.7), read_rng));
    parts.push_back(std::make_unique<MixGenerator>(
        "tiered.log", write_tier,
        std::make_unique<queueing::PoissonArrivals>(
            std::max(p.rate * 0.3, 1e-6)),
        write_rng));
    return std::make_unique<MergeGenerator>("tiered", std::move(parts));
}

std::unique_ptr<Generator> make_checkpoint(const ScenarioParams& p) {
    CheckpointGenerator::Params ckpt;
    ckpt.count = p.count;
    ckpt.mtti = 2.0 * p.period;  // a couple of failures per capture
    ckpt.checkpoint_bytes = 256ull << 20;
    ckpt.bandwidth = 2e9;
    ckpt.ranks = 4;
    ckpt.segment = std::max<std::uint64_t>(p.write_size, 1ull << 20);
    return std::make_unique<CheckpointGenerator>(ckpt, sim::Rng(p.seed));
}

struct ScenarioEntry {
    const char* name;
    const char* description;
    std::unique_ptr<Generator> (*make)(const ScenarioParams&);
};

const ScenarioEntry kScenarios[] = {
    {"diurnal",
     "day/night sinusoidal load curve over a mixed read/write file set",
     &make_diurnal},
    {"flashcrowd",
     "periodic 8x flash-crowd spikes against Zipf-hot read objects",
     &make_flashcrowd},
    {"tiered",
     "Zipf read-serving tier time-merged with a log-append write tier",
     &make_tiered},
    {"checkpoint",
     "Daly-optimal HPC checkpoint writes with failure-driven restart reads",
     &make_checkpoint},
};

}  // namespace

const std::vector<std::string>& scenario_names() {
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto& s : kScenarios) v.emplace_back(s.name);
        return v;
    }();
    return names;
}

std::string describe_scenario(const std::string& name) {
    for (const auto& s : kScenarios)
        if (name == s.name) return s.description;
    return "";
}

std::unique_ptr<Generator> make_scenario(const std::string& name,
                                         const ScenarioParams& p) {
    for (const auto& s : kScenarios)
        if (name == s.name) return s.make(p);
    return nullptr;
}

// ------------------------------------------------------- closed-loop table

namespace {

/// Common knob mapping shared by every closed-loop recipe.
ClosedLoopParams closed_loop_base(const ScenarioParams& p) {
    ClosedLoopParams cl;
    cl.total = p.count;
    cl.read_size = p.read_size;
    cl.write_size = p.write_size;
    cl.seed = p.seed;
    return cl;
}

ClosedLoopParams make_closedloop(const ScenarioParams& p) {
    // Moderate load: the pool keeps the cluster busy without saturating
    // it, so latency tracks service time rather than queueing.
    ClosedLoopParams cl = closed_loop_base(p);
    cl.clients = 8;
    cl.outstanding = 4;
    cl.think_time = 0.01;
    return cl;
}

ClosedLoopParams make_closedloop_saturated(const ScenarioParams& p) {
    // Saturation: a large pool with near-zero think time drives offered
    // concurrency far past the service capacity — the regime where
    // admission control and tail quantiles earn their keep.
    ClosedLoopParams cl = closed_loop_base(p);
    cl.clients = 32;
    cl.outstanding = 4;
    cl.think_time = 0.001;
    cl.read_fraction = 0.9;
    return cl;
}

struct ClosedLoopEntry {
    const char* name;
    const char* description;
    ClosedLoopParams (*make)(const ScenarioParams&);
};

const ClosedLoopEntry kClosedLoopScenarios[] = {
    {"closedloop",
     "closed-loop pool at moderate load (8 clients x 4 outstanding, 10ms think)",
     &make_closedloop},
    {"closedloop-saturated",
     "closed-loop pool driving saturation (32 clients x 4 outstanding, 1ms think)",
     &make_closedloop_saturated},
};

}  // namespace

const std::vector<std::string>& closed_loop_scenario_names() {
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto& s : kClosedLoopScenarios) v.emplace_back(s.name);
        return v;
    }();
    return names;
}

bool is_closed_loop_scenario(const std::string& name) {
    for (const auto& s : kClosedLoopScenarios)
        if (name == s.name) return true;
    return false;
}

std::string describe_closed_loop_scenario(const std::string& name) {
    for (const auto& s : kClosedLoopScenarios)
        if (name == s.name) return s.description;
    return "";
}

ClosedLoopParams make_closed_loop_scenario(const std::string& name,
                                           const ScenarioParams& p) {
    for (const auto& s : kClosedLoopScenarios)
        if (name == s.name) return s.make(p);
    throw std::invalid_argument("make_closed_loop_scenario: unknown scenario '" +
                                name + "'");
}

}  // namespace kooza::workloads
