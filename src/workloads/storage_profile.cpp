#include "workloads/storage_profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/engine.hpp"
#include "stats/descriptive.hpp"
#include "stats/fitting.hpp"
#include "stats/timeseries.hpp"

namespace kooza::workloads {

StorageProfile StorageProfile::clone() const {
    StorageProfile p;
    p.request_rate = request_rate;
    p.read_fraction = read_fraction;
    p.randomness = randomness;
    p.burstiness = burstiness;
    p.size_dist = size_dist ? size_dist->clone() : nullptr;
    p.mean_seek_fraction = mean_seek_fraction;
    p.lbn_space = lbn_space;
    return p;
}

std::string StorageProfile::describe() const {
    std::ostringstream os;
    os << "StorageProfile(rate=" << request_rate << "/s, read=" << read_fraction
       << ", randomness=" << randomness << ", burstiness=" << burstiness
       << ", size=" << (size_dist ? size_dist->describe() : "none")
       << ", seek=" << mean_seek_fraction << ")";
    return os.str();
}

StorageProfile extract_profile(std::span<const trace::StorageRecord> recs,
                               double idc_window) {
    if (recs.size() < 2)
        throw std::invalid_argument("extract_profile: need >= 2 records");
    std::vector<trace::StorageRecord> sorted(recs.begin(), recs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.time < b.time; });

    StorageProfile p;
    const double span = sorted.back().time - sorted.front().time;
    p.request_rate = span > 0.0 ? double(sorted.size() - 1) / span
                                : double(sorted.size());

    std::size_t reads = 0;
    std::uint64_t max_lbn = 0;
    std::vector<double> sizes, arrivals;
    sizes.reserve(sorted.size());
    for (const auto& r : sorted) {
        if (r.type == trace::IoType::kRead) ++reads;
        max_lbn = std::max(max_lbn, r.lbn);
        sizes.push_back(double(r.size_bytes));
        arrivals.push_back(r.time);
    }
    p.read_fraction = double(reads) / double(sorted.size());
    p.lbn_space = max_lbn + 1;
    p.size_dist = stats::fit_or_empirical(sizes);
    p.burstiness = std::max(stats::index_of_dispersion(arrivals, idc_window), 1e-6);

    // Randomness + seek: an I/O is "sequential" when it starts where the
    // previous one ended (within one block).
    std::size_t random_ios = 0;
    double seek_sum = 0.0;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        const auto& prev = sorted[i - 1];
        const std::uint64_t expected = prev.lbn + std::max<std::uint64_t>(
                                                      1, prev.size_bytes / 512);
        const double jump =
            std::fabs(double(sorted[i].lbn) - double(expected));
        if (jump > 1.0) {
            ++random_ios;
            seek_sum += jump;
        }
    }
    p.randomness = double(random_ios) / double(sorted.size() - 1);
    p.mean_seek_fraction =
        random_ios > 0 ? (seek_sum / double(random_ios)) / double(p.lbn_space) : 0.0;
    return p;
}

std::vector<trace::StorageRecord> generate_trace(const StorageProfile& profile,
                                                 std::size_t count, sim::Rng& rng) {
    if (count == 0) throw std::invalid_argument("generate_trace: count 0");
    if (!profile.size_dist)
        throw std::invalid_argument("generate_trace: profile has no size dist");
    if (!(profile.request_rate > 0.0))
        throw std::invalid_argument("generate_trace: rate must be > 0");
    const std::uint64_t lbn_space = std::max<std::uint64_t>(profile.lbn_space, 1024);

    // Two-phase modulated arrivals scaled so that higher target burstiness
    // means a hotter burst phase. IDC ~ 1 -> plain Poisson.
    const bool bursty = profile.burstiness > 1.5;
    const double quiet_rate = profile.request_rate * (bursty ? 0.5 : 1.0);
    const double burst_rate =
        profile.request_rate * (bursty ? std::min(1.0 + profile.burstiness, 20.0) : 1.0);
    // Phase occupancy chosen to keep the long-run mean at request_rate:
    // pi_quiet * quiet + (1-pi_quiet) * burst = rate.
    const double pi_quiet =
        bursty ? (burst_rate - profile.request_rate) / (burst_rate - quiet_rate) : 1.0;
    const double s_quiet = 0.5;  // leave quiet every ~2 s
    const double s_burst = bursty && pi_quiet < 1.0
                               ? s_quiet * pi_quiet / (1.0 - pi_quiet)
                               : 1.0;

    std::vector<trace::StorageRecord> out;
    out.reserve(count);
    double t = 0.0;
    int phase = 0;
    std::uint64_t cursor = std::uint64_t(rng.uniform(0.0, double(lbn_space)));
    for (std::size_t i = 0; i < count; ++i) {
        // Arrival (competing exponentials when bursty).
        if (bursty) {
            for (;;) {
                const double rate = phase == 0 ? quiet_rate : burst_rate;
                const double sw = phase == 0 ? s_quiet : s_burst;
                const double ta = rng.exponential(rate);
                const double ts = rng.exponential(sw);
                if (ta <= ts) {
                    t += ta;
                    break;
                }
                t += ts;
                phase ^= 1;
            }
        } else {
            t += rng.exponential(profile.request_rate);
        }

        trace::StorageRecord rec;
        rec.time = t;
        rec.request_id = i;
        rec.type = rng.bernoulli(profile.read_fraction) ? trace::IoType::kRead
                                                        : trace::IoType::kWrite;
        const double raw = profile.size_dist->sample(rng);
        rec.size_bytes = std::uint64_t(std::max(raw, 512.0));
        if (rng.bernoulli(profile.randomness)) {
            // Random jump whose magnitude follows the profile's mean seek.
            const double scale =
                std::max(profile.mean_seek_fraction, 1e-6) * double(lbn_space);
            const double jump = rng.exponential(1.0 / scale) *
                                (rng.bernoulli(0.5) ? 1.0 : -1.0);
            double target = double(cursor) + jump;
            if (target < 0.0) target = -target;
            cursor = std::uint64_t(target) % lbn_space;
        }
        rec.lbn = cursor;
        cursor = (cursor + std::max<std::uint64_t>(1, rec.size_bytes / 512)) %
                 lbn_space;
        out.push_back(rec);
    }
    return out;
}

double predict_latency(const StorageProfile& profile, const hw::DiskParams& disk) {
    if (!profile.size_dist)
        throw std::invalid_argument("predict_latency: profile has no size dist");
    // Per-I/O service time: random I/Os pay seek + rotation, sequential
    // ones only transfer. Seek uses the disk's sqrt curve at the profile's
    // mean seek fraction.
    const double mean_size = profile.size_dist->mean();
    const double transfer = mean_size / disk.transfer_rate;
    // The profile's seek fraction is relative to the *observed* LBN span;
    // rescale it to the target disk's full stroke before applying the
    // device's seek curve.
    const double seek_blocks =
        profile.mean_seek_fraction * double(std::max<std::uint64_t>(
                                         profile.lbn_space, 1));
    const double seek_fraction = std::min(1.0, seek_blocks / double(disk.lbn_count));
    const double seek = disk.min_seek +
                        (disk.max_seek - disk.min_seek) * std::sqrt(seek_fraction);
    const double rotation = 0.5 * 60.0 / disk.rpm;
    const double mean_service =
        transfer + profile.randomness * (seek + rotation);

    // Service-time second moment (size variance + seek/no-seek mixture).
    const double var_size = profile.size_dist->variance();
    const double var_transfer =
        std::isfinite(var_size)
            ? var_size / (disk.transfer_rate * disk.transfer_rate)
            : 0.0;
    const double overhead = seek + rotation;
    const double p = profile.randomness;
    const double var_overhead = p * (1.0 - p) * overhead * overhead;
    const double var_service = var_transfer + var_overhead;
    const double scv =
        mean_service > 0.0 ? var_service / (mean_service * mean_service) : 0.0;

    const double rho = profile.request_rate * mean_service;
    if (rho >= 1.0)
        throw std::invalid_argument("predict_latency: profile overloads the disk");
    // Pollaczek-Khinchine, with the burstiness of the arrival stream
    // scaling the waiting term (batch-arrival approximation).
    const double wait = rho * mean_service * (1.0 + scv) / (2.0 * (1.0 - rho)) *
                        std::max(profile.burstiness, 1.0);
    return wait + mean_service;
}

double measure_latency(std::span<const trace::StorageRecord> recs,
                       const hw::DiskParams& disk) {
    if (recs.empty()) throw std::invalid_argument("measure_latency: empty trace");
    sim::Engine eng;
    hw::Disk device(eng, disk, nullptr);
    double total = 0.0;
    std::size_t done = 0;
    for (const auto& r : recs) {
        eng.schedule_at(r.time, [&, r] {
            device.io(r.request_id, std::min<std::uint64_t>(r.lbn, disk.lbn_count - 1),
                      r.size_bytes, r.type, [&](double latency) {
                          total += latency;
                          ++done;
                      });
        });
    }
    eng.run();
    return total / double(done);
}

}  // namespace kooza::workloads
