#include "workloads/closedloop.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "par/pool.hpp"

namespace kooza::workloads {

namespace {

std::uint64_t align4k(std::uint64_t offset) { return offset & ~std::uint64_t(4095); }

/// Clamp an offset so [offset, offset+size) stays inside the file.
std::uint64_t clamp_offset(std::uint64_t offset, std::uint64_t size,
                           std::uint64_t file_size) {
    if (size >= file_size) return 0;
    return std::min(offset, file_size - size);
}

}  // namespace

ClosedLoopPool::ClosedLoopPool(ClosedLoopParams p) : p_(p) {
    if (p_.clients == 0)
        throw std::invalid_argument("ClosedLoopPool: zero clients");
    if (p_.outstanding == 0)
        throw std::invalid_argument("ClosedLoopPool: zero outstanding window");
    if (p_.files == 0) throw std::invalid_argument("ClosedLoopPool: zero files");
    if (p_.read_size == 0 || p_.write_size == 0)
        throw std::invalid_argument("ClosedLoopPool: zero request size");
    if (p_.file_size == 0)
        throw std::invalid_argument("ClosedLoopPool: zero file size");
    if (p_.think_time < 0.0)
        throw std::invalid_argument("ClosedLoopPool: negative think time");
    if (p_.read_fraction < 0.0 || p_.read_fraction > 1.0)
        throw std::invalid_argument("ClosedLoopPool: read fraction outside [0, 1]");

    for (std::size_t f = 0; f < p_.files; ++f)
        files_.emplace_back(p_.file_prefix + std::to_string(f), p_.file_size);
    if (p_.zipf_s > 0.0 && p_.files > 1) {
        popularity_cdf_.resize(p_.files);
        double total = 0.0;
        for (std::size_t f = 0; f < p_.files; ++f) {
            total += 1.0 / std::pow(double(f + 1), p_.zipf_s);
            popularity_cdf_[f] = total;
        }
        for (double& c : popularity_cdf_) c /= total;
    }
    rngs_.reserve(p_.clients);
    for (std::size_t c = 0; c < p_.clients; ++c)
        rngs_.emplace_back(par::shard_seed(p_.seed, c));
}

std::optional<gfs::RequestSpec> ClosedLoopPool::next(std::uint32_t client,
                                                     double now) {
    if (client >= p_.clients)
        throw std::out_of_range("ClosedLoopPool::next: client " +
                                std::to_string(client) + " of " +
                                std::to_string(p_.clients));
    if (issued_ >= p_.total) return std::nullopt;
    ++issued_;
    auto& rng = rngs_[client];

    gfs::RequestSpec r;
    const double think =
        p_.think_time > 0.0 ? rng.exponential(1.0 / p_.think_time) : 0.0;
    r.time = now + think;
    r.client = client;

    std::size_t file_ix = 0;
    if (!popularity_cdf_.empty()) {
        const double u = rng.uniform(0.0, 1.0);
        file_ix = std::size_t(std::upper_bound(popularity_cdf_.begin(),
                                               popularity_cdf_.end(), u) -
                              popularity_cdf_.begin());
        file_ix = std::min(file_ix, p_.files - 1);
    } else if (p_.files > 1) {
        file_ix = std::size_t(rng.uniform_int(0, std::int64_t(p_.files) - 1));
    }
    r.file = files_[file_ix].first;
    r.type = rng.bernoulli(p_.read_fraction) ? trace::IoType::kRead
                                             : trace::IoType::kWrite;
    r.size = r.type == trace::IoType::kRead ? p_.read_size : p_.write_size;
    r.offset = clamp_offset(
        align4k(std::uint64_t(rng.uniform(0.0, double(p_.file_size)))), r.size,
        p_.file_size);
    return r;
}

}  // namespace kooza::workloads
