// Two-level (hierarchical) Markov model.
//
// The paper notes that "in order to convey more detailed information ...
// the simple Markov Chain can be substituted by a corresponding
// hierarchical representation" (Section 4). Here states are partitioned
// into groups; a top-level chain governs group-to-group movement while
// per-group chains govern movement inside a group. For spatially-local
// workloads this factorization needs far fewer effective parameters than
// a flat chain of the same state count (ablation A3).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "markov/chain.hpp"

namespace kooza::markov {

class HierarchicalMarkovChain {
public:
    /// Fit from state sequences.
    /// @param group_of  maps each global state id to its group id; group
    ///                  ids must be contiguous from 0.
    static HierarchicalMarkovChain fit(
        std::span<const std::vector<std::size_t>> sequences, std::size_t n_states,
        std::span<const std::size_t> group_of, double alpha = 0.5);

    [[nodiscard]] std::size_t n_states() const noexcept { return group_of_.size(); }
    [[nodiscard]] std::size_t n_groups() const noexcept { return entries_.size(); }
    [[nodiscard]] std::size_t group_of(std::size_t state) const;

    [[nodiscard]] const MarkovChain& group_chain() const noexcept { return top_; }

    /// Sample the first state (group from the top chain's initial
    /// distribution, then that group's entry distribution).
    [[nodiscard]] std::size_t sample_initial(sim::Rng& rng) const;

    /// Sample the successor of `state`: move groups per the top chain; stay
    /// in-group via the intra-group chain, or enter the new group via its
    /// entry distribution.
    [[nodiscard]] std::size_t next_state(std::size_t state, sim::Rng& rng) const;

    [[nodiscard]] std::vector<std::size_t> sample_path(std::size_t length,
                                                       sim::Rng& rng) const;

    /// Effective parameter count: top-level matrix + per-group intra
    /// matrices + entry distributions. Compare against n_states^2 for the
    /// flat chain.
    [[nodiscard]] std::size_t parameter_count() const noexcept;

    [[nodiscard]] std::string describe() const;

private:
    HierarchicalMarkovChain(MarkovChain top, std::vector<std::size_t> group_map,
                            std::vector<std::vector<std::size_t>> members,
                            std::vector<MarkovChain> intra,
                            std::vector<std::vector<double>> entries);

    MarkovChain top_;                                ///< over groups
    std::vector<std::size_t> group_of_;              ///< state -> group
    std::vector<std::vector<std::size_t>> members_;  ///< group -> member states
    std::vector<MarkovChain> intra_;    ///< per-group chain over local indices
    std::vector<std::vector<double>> entries_;  ///< per-group entry distribution
};

}  // namespace kooza::markov
