#include "markov/hierarchical.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace kooza::markov {

HierarchicalMarkovChain::HierarchicalMarkovChain(
    MarkovChain top, std::vector<std::size_t> group_map,
    std::vector<std::vector<std::size_t>> members, std::vector<MarkovChain> intra,
    std::vector<std::vector<double>> entries)
    : top_(std::move(top)),
      group_of_(std::move(group_map)),
      members_(std::move(members)),
      intra_(std::move(intra)),
      entries_(std::move(entries)) {}

HierarchicalMarkovChain HierarchicalMarkovChain::fit(
    std::span<const std::vector<std::size_t>> sequences, std::size_t n_states,
    std::span<const std::size_t> group_of, double alpha) {
    if (group_of.size() != n_states)
        throw std::invalid_argument("HierarchicalMarkovChain::fit: group map size");
    if (n_states == 0)
        throw std::invalid_argument("HierarchicalMarkovChain::fit: no states");
    const std::size_t n_groups =
        1 + *std::max_element(group_of.begin(), group_of.end());
    // Group membership and local indices.
    std::vector<std::vector<std::size_t>> members(n_groups);
    std::vector<std::size_t> local_index(n_states, 0);
    for (std::size_t s = 0; s < n_states; ++s) {
        local_index[s] = members[group_of[s]].size();
        members[group_of[s]].push_back(s);
    }
    for (std::size_t g = 0; g < n_groups; ++g)
        if (members[g].empty())
            throw std::invalid_argument(
                "HierarchicalMarkovChain::fit: group ids must be contiguous");

    // Top-level sequences: group of each visited state.
    std::vector<std::vector<std::size_t>> group_seqs;
    // Per-group intra sequences (runs within one group) and entry counts.
    std::vector<std::vector<std::vector<std::size_t>>> intra_seqs(n_groups);
    std::vector<std::vector<double>> entry_counts(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g)
        entry_counts[g].assign(members[g].size(), alpha > 0.0 ? alpha : 1e-9);

    for (const auto& seq : sequences) {
        if (seq.empty()) continue;
        std::vector<std::size_t> gseq;
        gseq.reserve(seq.size());
        std::vector<std::size_t> run;
        std::size_t prev_group = n_groups;  // sentinel
        for (std::size_t s : seq) {
            if (s >= n_states)
                throw std::invalid_argument(
                    "HierarchicalMarkovChain::fit: state out of range");
            const std::size_t g = group_of[s];
            gseq.push_back(g);
            if (g != prev_group) {
                if (!run.empty()) intra_seqs[prev_group].push_back(std::move(run));
                run.clear();
                entry_counts[g][local_index[s]] += 1.0;
                prev_group = g;
            }
            run.push_back(local_index[s]);
        }
        if (!run.empty()) intra_seqs[prev_group].push_back(std::move(run));
        group_seqs.push_back(std::move(gseq));
    }
    if (group_seqs.empty())
        throw std::invalid_argument("HierarchicalMarkovChain::fit: no data");

    MarkovChain top = MarkovChain::fit(group_seqs, n_groups, alpha);
    std::vector<MarkovChain> intra;
    intra.reserve(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
        if (intra_seqs[g].empty()) {
            intra.emplace_back(members[g].size());  // uniform fallback
        } else {
            intra.push_back(MarkovChain::fit(intra_seqs[g], members[g].size(), alpha));
        }
    }
    std::vector<std::vector<double>> entries(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
        double total = 0.0;
        for (double c : entry_counts[g]) total += c;
        entries[g].resize(members[g].size());
        for (std::size_t i = 0; i < members[g].size(); ++i)
            entries[g][i] = entry_counts[g][i] / total;
    }
    return HierarchicalMarkovChain(std::move(top),
                                   std::vector<std::size_t>(group_of.begin(),
                                                            group_of.end()),
                                   std::move(members), std::move(intra),
                                   std::move(entries));
}

std::size_t HierarchicalMarkovChain::group_of(std::size_t state) const {
    if (state >= group_of_.size())
        throw std::out_of_range("HierarchicalMarkovChain::group_of");
    return group_of_[state];
}

std::size_t HierarchicalMarkovChain::sample_initial(sim::Rng& rng) const {
    const std::size_t g = top_.sample_initial(rng);
    const std::size_t local = rng.weighted_index(entries_[g]);
    return members_[g][local];
}

std::size_t HierarchicalMarkovChain::next_state(std::size_t state, sim::Rng& rng) const {
    if (state >= group_of_.size())
        throw std::out_of_range("HierarchicalMarkovChain::next_state");
    const std::size_t g = group_of_[state];
    const std::size_t g_next = top_.next_state(g, rng);
    if (g_next == g) {
        // Local index of `state` inside its group.
        const auto& mem = members_[g];
        const std::size_t local =
            std::size_t(std::find(mem.begin(), mem.end(), state) - mem.begin());
        return mem[intra_[g].next_state(local, rng)];
    }
    return members_[g_next][rng.weighted_index(entries_[g_next])];
}

std::vector<std::size_t> HierarchicalMarkovChain::sample_path(std::size_t length,
                                                              sim::Rng& rng) const {
    if (length == 0)
        throw std::invalid_argument("HierarchicalMarkovChain::sample_path: length 0");
    std::vector<std::size_t> path(length);
    path[0] = sample_initial(rng);
    for (std::size_t i = 1; i < length; ++i) path[i] = next_state(path[i - 1], rng);
    return path;
}

std::size_t HierarchicalMarkovChain::parameter_count() const noexcept {
    std::size_t params = n_groups() * n_groups() + n_groups();  // top chain
    for (std::size_t g = 0; g < n_groups(); ++g) {
        const std::size_t m = members_[g].size();
        params += m * m + m;  // intra chain + entry distribution
    }
    return params;
}

std::string HierarchicalMarkovChain::describe() const {
    std::ostringstream os;
    os << "HierarchicalMarkovChain: " << n_states() << " states in " << n_groups()
       << " groups, ~" << parameter_count() << " params (flat would be "
       << n_states() * n_states() + n_states() << ")";
    return os.str();
}

}  // namespace kooza::markov
