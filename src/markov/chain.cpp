#include "markov/chain.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace kooza::markov {

namespace {
void check_stochastic(std::span<const double> row, const char* what) {
    double s = 0.0;
    for (double p : row) {
        if (p < 0.0) throw std::invalid_argument(std::string(what) + ": negative entry");
        s += p;
    }
    if (std::fabs(s - 1.0) > 1e-6)
        throw std::invalid_argument(std::string(what) + ": row does not sum to 1");
}
}  // namespace

MarkovChain::MarkovChain(std::size_t n_states) : n_(n_states) {
    if (n_ == 0) throw std::invalid_argument("MarkovChain: need >= 1 state");
    p_.assign(n_, std::vector<double>(n_, 1.0 / double(n_)));
    init_.assign(n_, 1.0 / double(n_));
}

MarkovChain::MarkovChain(std::vector<std::vector<double>> transitions,
                         std::vector<double> initial)
    : n_(transitions.size()), p_(std::move(transitions)), init_(std::move(initial)) {
    if (n_ == 0) throw std::invalid_argument("MarkovChain: empty transition matrix");
    for (const auto& row : p_) {
        if (row.size() != n_) throw std::invalid_argument("MarkovChain: non-square matrix");
        check_stochastic(row, "MarkovChain transitions");
    }
    if (init_.size() != n_)
        throw std::invalid_argument("MarkovChain: initial distribution size mismatch");
    check_stochastic(init_, "MarkovChain initial");
}

ChainSuffStats::ChainSuffStats(std::size_t n)
    : n_states(n),
      initial(n, 0.0),
      transitions(n, std::vector<double>(n, 0.0)) {
    if (n == 0) throw std::invalid_argument("ChainSuffStats: need >= 1 state");
}

void ChainSuffStats::observe(std::span<const std::size_t> seq) {
    if (seq.empty()) return;
    for (std::size_t s : seq)
        if (s >= n_states)
            throw std::invalid_argument("MarkovChain::fit: state id out of range");
    ++sequences;
    initial[seq.front()] += 1.0;
    for (std::size_t i = 0; i + 1 < seq.size(); ++i)
        transitions[seq[i]][seq[i + 1]] += 1.0;
}

void ChainSuffStats::merge(const ChainSuffStats& other) {
    if (other.n_states != n_states)
        throw std::invalid_argument("ChainSuffStats::merge: state count mismatch");
    sequences += other.sequences;
    for (std::size_t i = 0; i < n_states; ++i) {
        initial[i] += other.initial[i];
        for (std::size_t j = 0; j < n_states; ++j)
            transitions[i][j] += other.transitions[i][j];
    }
}

MarkovChain MarkovChain::fit(std::span<const std::vector<std::size_t>> sequences,
                             std::size_t n_states, double alpha) {
    if (n_states == 0) throw std::invalid_argument("MarkovChain::fit: need >= 1 state");
    ChainSuffStats stats(n_states);
    for (const auto& seq : sequences) stats.observe(seq);
    return fit_counts(stats, alpha);
}

MarkovChain MarkovChain::fit_counts(const ChainSuffStats& stats, double alpha) {
    if (alpha < 0.0) throw std::invalid_argument("MarkovChain::fit: alpha must be >= 0");
    const std::size_t n_states = stats.n_states;
    if (stats.sequences == 0)
        throw std::invalid_argument("MarkovChain::fit: no non-empty sequences");
    // alpha + integer counts is exact, so this matches the incremental
    // alpha-seeded accumulation fit() historically performed.
    std::vector<std::vector<double>> counts(n_states,
                                            std::vector<double>(n_states, alpha));
    std::vector<double> init_counts(n_states, alpha);
    for (std::size_t i = 0; i < n_states; ++i) {
        init_counts[i] += stats.initial[i];
        for (std::size_t j = 0; j < n_states; ++j)
            counts[i][j] += stats.transitions[i][j];
    }
    // Normalize rows; a row with zero mass (alpha == 0 and state never seen
    // as a predecessor) becomes uniform.
    for (auto& row : counts) {
        double s = 0.0;
        for (double c : row) s += c;
        if (s <= 0.0)
            for (auto& c : row) c = 1.0 / double(n_states);
        else
            for (auto& c : row) c /= s;
    }
    double is = 0.0;
    for (double c : init_counts) is += c;
    for (auto& c : init_counts) c /= is;
    return MarkovChain(std::move(counts), std::move(init_counts));
}

double MarkovChain::transition(std::size_t i, std::size_t j) const {
    if (i >= n_ || j >= n_) throw std::out_of_range("MarkovChain::transition");
    return p_[i][j];
}

std::size_t MarkovChain::sample_initial(sim::Rng& rng) const {
    return rng.weighted_index(init_);
}

std::size_t MarkovChain::next_state(std::size_t i, sim::Rng& rng) const {
    if (i >= n_) throw std::out_of_range("MarkovChain::next_state");
    return rng.weighted_index(p_[i]);
}

std::vector<std::size_t> MarkovChain::sample_path(std::size_t length,
                                                  sim::Rng& rng) const {
    if (length == 0) throw std::invalid_argument("MarkovChain::sample_path: length 0");
    std::vector<std::size_t> path(length);
    path[0] = sample_initial(rng);
    for (std::size_t i = 1; i < length; ++i) path[i] = next_state(path[i - 1], rng);
    return path;
}

std::vector<double> MarkovChain::stationary(std::size_t max_iter, double tol) const {
    std::vector<double> pi(n_, 1.0 / double(n_)), next(n_, 0.0);
    for (std::size_t iter = 0; iter < max_iter; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        for (std::size_t i = 0; i < n_; ++i)
            for (std::size_t j = 0; j < n_; ++j) next[j] += pi[i] * p_[i][j];
        double diff = 0.0;
        for (std::size_t j = 0; j < n_; ++j) diff += std::fabs(next[j] - pi[j]);
        pi.swap(next);
        if (diff < tol) return pi;
    }
    throw std::runtime_error("MarkovChain::stationary: power iteration did not converge");
}

double MarkovChain::log_likelihood(std::span<const std::size_t> seq) const {
    if (seq.empty()) return 0.0;
    for (std::size_t s : seq)
        if (s >= n_) throw std::invalid_argument("MarkovChain::log_likelihood: bad state");
    double ll = init_[seq.front()] > 0.0
                    ? std::log(init_[seq.front()])
                    : -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
        const double p = p_[seq[i]][seq[i + 1]];
        if (p <= 0.0) return -std::numeric_limits<double>::infinity();
        ll += std::log(p);
    }
    return ll;
}

double MarkovChain::transition_distance(const MarkovChain& other) const {
    if (other.n_ != n_)
        throw std::invalid_argument("MarkovChain::transition_distance: size mismatch");
    const auto pi = stationary();
    double d = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
        double row_tv = 0.0;
        for (std::size_t j = 0; j < n_; ++j) row_tv += std::fabs(p_[i][j] - other.p_[i][j]);
        d += pi[i] * 0.5 * row_tv;
    }
    return d;
}

std::string MarkovChain::to_string(int precision) const {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision);
    os << "MarkovChain(" << n_ << " states)\n  init:";
    for (double p : init_) os << " " << p;
    os << "\n";
    for (std::size_t i = 0; i < n_; ++i) {
        os << "  s" << i << " ->";
        for (std::size_t j = 0; j < n_; ++j) os << " " << p_[i][j];
        os << "\n";
    }
    return os.str();
}

}  // namespace kooza::markov
