#include "markov/annotated.hpp"

#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "stats/empirical.hpp"
#include "stats/fitting.hpp"
#include "stats/sample.hpp"

namespace kooza::markov {

AnnotatedMarkovChain::AnnotatedMarkovChain(
    MarkovChain chain,
    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>> per_state)
    : chain_(std::move(chain)), per_state_(std::move(per_state)) {}

AnnotatedMarkovChain AnnotatedMarkovChain::from_parts(
    MarkovChain chain,
    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>>
        per_state) {
    if (per_state.size() != chain.n_states())
        throw std::invalid_argument(
            "AnnotatedMarkovChain::from_parts: state count mismatch");
    for (const auto& feats : per_state)
        for (const auto& [name, dist] : feats)
            if (!dist)
                throw std::invalid_argument(
                    "AnnotatedMarkovChain::from_parts: null distribution for " + name);
    return AnnotatedMarkovChain(std::move(chain), std::move(per_state));
}

AnnotatedMarkovChain AnnotatedMarkovChain::fit(
    std::span<const AnnotatedSequence> sequences, std::size_t n_states, double alpha,
    double ks_threshold, std::size_t max_state_samples) {
    const std::size_t cap = max_state_samples == 0
                                ? std::numeric_limits<std::size_t>::max()
                                : max_state_samples;
    // Validate alignment, collect the feature-name universe, and count
    // transitions — sufficient statistics instead of copied sequences.
    std::set<std::string> names;
    ChainSuffStats chain_stats(n_states);
    for (const auto& seq : sequences) {
        for (const auto& [name, vals] : seq.features) {
            if (vals.size() != seq.states.size())
                throw std::invalid_argument(
                    "AnnotatedMarkovChain::fit: feature '" + name +
                    "' not aligned with states");
            names.insert(name);
        }
        chain_stats.observe(seq.states);
    }
    MarkovChain chain = MarkovChain::fit_counts(chain_stats, alpha);

    // Bucket feature values by state (first-`cap` retained per bucket).
    std::vector<std::map<std::string, stats::CappedSample>> buckets(n_states);
    std::map<std::string, stats::CappedSample> global;
    const auto bucket_of = [cap](std::map<std::string, stats::CappedSample>& m,
                                 const std::string& name) -> stats::CappedSample& {
        return m.try_emplace(name, stats::CappedSample(cap)).first->second;
    };
    for (const auto& seq : sequences)
        for (const auto& [name, vals] : seq.features)
            for (std::size_t i = 0; i < vals.size(); ++i) {
                bucket_of(buckets[seq.states[i]], name).observe(vals[i]);
                bucket_of(global, name).observe(vals[i]);
            }

    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>> per_state(
        n_states);
    for (std::size_t s = 0; s < n_states; ++s)
        for (const auto& name : names) {
            auto it = buckets[s].find(name);
            const auto& vals = (it != buckets[s].end() && !it->second.empty())
                                   ? it->second.values()
                                   : global.at(name).values();
            if (vals.empty())
                throw std::invalid_argument(
                    "AnnotatedMarkovChain::fit: feature '" + name + "' has no data");
            per_state[s][name] = stats::fit_or_empirical(vals, ks_threshold);
        }
    return AnnotatedMarkovChain(std::move(chain), std::move(per_state));
}

std::vector<std::string> AnnotatedMarkovChain::feature_names() const {
    std::vector<std::string> out;
    if (per_state_.empty()) return out;
    for (const auto& [name, dist] : per_state_.front()) out.push_back(name);
    return out;
}

const stats::Distribution& AnnotatedMarkovChain::feature(std::size_t state,
                                                         const std::string& name) const {
    if (state >= per_state_.size())
        throw std::out_of_range("AnnotatedMarkovChain::feature: state");
    auto it = per_state_[state].find(name);
    if (it == per_state_[state].end())
        throw std::out_of_range("AnnotatedMarkovChain::feature: unknown feature " + name);
    return *it->second;
}

AnnotatedStep AnnotatedMarkovChain::annotate(std::size_t state, sim::Rng& rng) const {
    if (state >= per_state_.size())
        throw std::out_of_range("AnnotatedMarkovChain::annotate: state");
    AnnotatedStep step;
    step.state = state;
    for (const auto& [name, dist] : per_state_[state])
        step.features[name] = dist->sample(rng);
    return step;
}

AnnotatedStep AnnotatedMarkovChain::step_from(std::size_t state, sim::Rng& rng) const {
    return annotate(chain_.next_state(state, rng), rng);
}

std::vector<AnnotatedStep> AnnotatedMarkovChain::generate(std::size_t length,
                                                          sim::Rng& rng) const {
    if (length == 0)
        throw std::invalid_argument("AnnotatedMarkovChain::generate: length 0");
    std::vector<AnnotatedStep> out;
    out.reserve(length);
    out.push_back(annotate(chain_.sample_initial(rng), rng));
    for (std::size_t i = 1; i < length; ++i)
        out.push_back(step_from(out.back().state, rng));
    return out;
}

std::size_t AnnotatedMarkovChain::parameter_count() const {
    const std::size_t n = chain_.n_states();
    std::size_t params = n * n + n;  // transition matrix + initial distribution
    for (const auto& feats : per_state_)
        for (const auto& [name, dist] : feats) {
            if (auto* emp = dynamic_cast<const stats::Empirical*>(dist.get()))
                params += emp->size();
            else
                params += 2;  // typical parametric family
        }
    return params;
}

std::string AnnotatedMarkovChain::describe() const {
    std::ostringstream os;
    os << "AnnotatedMarkovChain: " << chain_.n_states() << " states, features {";
    bool first = true;
    for (const auto& name : feature_names()) {
        os << (first ? "" : ", ") << name;
        first = false;
    }
    os << "}, ~" << parameter_count() << " params";
    return os.str();
}

}  // namespace kooza::markov
