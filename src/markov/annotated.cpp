#include "markov/annotated.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

#include "stats/empirical.hpp"
#include "stats/fitting.hpp"

namespace kooza::markov {

AnnotatedMarkovChain::AnnotatedMarkovChain(
    MarkovChain chain,
    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>> per_state)
    : chain_(std::move(chain)), per_state_(std::move(per_state)) {}

AnnotatedMarkovChain AnnotatedMarkovChain::from_parts(
    MarkovChain chain,
    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>>
        per_state) {
    if (per_state.size() != chain.n_states())
        throw std::invalid_argument(
            "AnnotatedMarkovChain::from_parts: state count mismatch");
    for (const auto& feats : per_state)
        for (const auto& [name, dist] : feats)
            if (!dist)
                throw std::invalid_argument(
                    "AnnotatedMarkovChain::from_parts: null distribution for " + name);
    return AnnotatedMarkovChain(std::move(chain), std::move(per_state));
}

AnnotatedMarkovChain AnnotatedMarkovChain::fit(
    std::span<const AnnotatedSequence> sequences, std::size_t n_states, double alpha,
    double ks_threshold) {
    // Validate alignment and collect the feature-name universe.
    std::set<std::string> names;
    std::vector<std::vector<std::size_t>> state_seqs;
    for (const auto& seq : sequences) {
        for (const auto& [name, vals] : seq.features) {
            if (vals.size() != seq.states.size())
                throw std::invalid_argument(
                    "AnnotatedMarkovChain::fit: feature '" + name +
                    "' not aligned with states");
            names.insert(name);
        }
        state_seqs.push_back(seq.states);
    }
    MarkovChain chain = MarkovChain::fit(state_seqs, n_states, alpha);

    // Bucket feature values by state.
    std::vector<std::map<std::string, std::vector<double>>> buckets(n_states);
    std::map<std::string, std::vector<double>> global;
    for (const auto& seq : sequences)
        for (const auto& [name, vals] : seq.features)
            for (std::size_t i = 0; i < vals.size(); ++i) {
                buckets[seq.states[i]][name].push_back(vals[i]);
                global[name].push_back(vals[i]);
            }

    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>> per_state(
        n_states);
    for (std::size_t s = 0; s < n_states; ++s)
        for (const auto& name : names) {
            auto it = buckets[s].find(name);
            const auto& vals =
                (it != buckets[s].end() && !it->second.empty()) ? it->second
                                                                : global.at(name);
            if (vals.empty())
                throw std::invalid_argument(
                    "AnnotatedMarkovChain::fit: feature '" + name + "' has no data");
            per_state[s][name] = stats::fit_or_empirical(vals, ks_threshold);
        }
    return AnnotatedMarkovChain(std::move(chain), std::move(per_state));
}

std::vector<std::string> AnnotatedMarkovChain::feature_names() const {
    std::vector<std::string> out;
    if (per_state_.empty()) return out;
    for (const auto& [name, dist] : per_state_.front()) out.push_back(name);
    return out;
}

const stats::Distribution& AnnotatedMarkovChain::feature(std::size_t state,
                                                         const std::string& name) const {
    if (state >= per_state_.size())
        throw std::out_of_range("AnnotatedMarkovChain::feature: state");
    auto it = per_state_[state].find(name);
    if (it == per_state_[state].end())
        throw std::out_of_range("AnnotatedMarkovChain::feature: unknown feature " + name);
    return *it->second;
}

AnnotatedStep AnnotatedMarkovChain::annotate(std::size_t state, sim::Rng& rng) const {
    if (state >= per_state_.size())
        throw std::out_of_range("AnnotatedMarkovChain::annotate: state");
    AnnotatedStep step;
    step.state = state;
    for (const auto& [name, dist] : per_state_[state])
        step.features[name] = dist->sample(rng);
    return step;
}

AnnotatedStep AnnotatedMarkovChain::step_from(std::size_t state, sim::Rng& rng) const {
    return annotate(chain_.next_state(state, rng), rng);
}

std::vector<AnnotatedStep> AnnotatedMarkovChain::generate(std::size_t length,
                                                          sim::Rng& rng) const {
    if (length == 0)
        throw std::invalid_argument("AnnotatedMarkovChain::generate: length 0");
    std::vector<AnnotatedStep> out;
    out.reserve(length);
    out.push_back(annotate(chain_.sample_initial(rng), rng));
    for (std::size_t i = 1; i < length; ++i)
        out.push_back(step_from(out.back().state, rng));
    return out;
}

std::size_t AnnotatedMarkovChain::parameter_count() const {
    const std::size_t n = chain_.n_states();
    std::size_t params = n * n + n;  // transition matrix + initial distribution
    for (const auto& feats : per_state_)
        for (const auto& [name, dist] : feats) {
            if (auto* emp = dynamic_cast<const stats::Empirical*>(dist.get()))
                params += emp->size();
            else
                params += 2;  // typical parametric family
        }
    return params;
}

std::string AnnotatedMarkovChain::describe() const {
    std::ostringstream os;
    os << "AnnotatedMarkovChain: " << chain_.n_states() << " states, features {";
    bool first = true;
    for (const auto& name : feature_names()) {
        os << (first ? "" : ", ") << name;
        first = false;
    }
    os << "}, ~" << parameter_count() << " params";
    return os.str();
}

}  // namespace kooza::markov
