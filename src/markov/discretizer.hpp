// State-space discretizers: map continuous subsystem observations onto
// Markov state ids.
//
// The paper's storage model states are Logical Block-Number ranges, the
// memory model's are memory banks, the CPU model's are utilization levels
// (Figure 2). These classes define those mappings and their inverses
// (representative value per state) so synthetic generation can emit
// concrete LBNs/banks/utilizations again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace kooza::markov {

/// Maps a scalar observation to a state id in [0, n_states) and back.
class Discretizer {
public:
    virtual ~Discretizer() = default;
    [[nodiscard]] virtual std::size_t n_states() const noexcept = 0;
    [[nodiscard]] virtual std::size_t state_of(double x) const = 0;
    /// Deterministic representative (e.g. bin center) of a state.
    [[nodiscard]] virtual double representative(std::size_t state) const = 0;
    /// Random value within the state's range (defaults to representative).
    [[nodiscard]] virtual double sample_within(std::size_t state, sim::Rng& rng) const;
    [[nodiscard]] virtual std::string describe() const = 0;
    [[nodiscard]] virtual std::unique_ptr<Discretizer> clone() const = 0;
};

/// Equal-width bins over [lo, hi); values outside clamp to the edge bins.
class EqualWidthDiscretizer : public Discretizer {
public:
    EqualWidthDiscretizer(double lo, double hi, std::size_t bins);
    [[nodiscard]] std::size_t n_states() const noexcept override { return bins_; }
    [[nodiscard]] std::size_t state_of(double x) const override;
    [[nodiscard]] double representative(std::size_t state) const override;
    [[nodiscard]] double sample_within(std::size_t state, sim::Rng& rng) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Discretizer> clone() const override {
        return std::make_unique<EqualWidthDiscretizer>(*this);
    }
    [[nodiscard]] double lo() const noexcept { return lo_; }
    [[nodiscard]] double hi() const noexcept { return hi_; }

private:
    double lo_, hi_;
    std::size_t bins_;
};

/// Quantile (equal-mass) bins learned from a training sample; adapts state
/// resolution to where the data actually lives.
class QuantileDiscretizer : public Discretizer {
public:
    QuantileDiscretizer(std::span<const double> sample, std::size_t bins);
    [[nodiscard]] std::size_t n_states() const noexcept override {
        return edges_.size() + 1;
    }
    [[nodiscard]] std::size_t state_of(double x) const override;
    [[nodiscard]] double representative(std::size_t state) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Discretizer> clone() const override {
        return std::make_unique<QuantileDiscretizer>(*this);
    }

private:
    std::vector<double> edges_;  ///< interior bin edges, ascending
    std::vector<double> reps_;   ///< per-bin medians of the training data
};

/// LBN-range states for the storage model: the disk's logical block space
/// [0, lbn_count) split into `ranges` contiguous ranges (paper Fig. 2:
/// "LBN 1..LBN 4"). sample_within draws a uniform LBN in the range.
class LbnRangeDiscretizer : public Discretizer {
public:
    LbnRangeDiscretizer(std::uint64_t lbn_count, std::size_t ranges);
    [[nodiscard]] std::size_t n_states() const noexcept override { return ranges_; }
    [[nodiscard]] std::size_t state_of(double lbn) const override;
    [[nodiscard]] double representative(std::size_t state) const override;
    [[nodiscard]] double sample_within(std::size_t state, sim::Rng& rng) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Discretizer> clone() const override {
        return std::make_unique<LbnRangeDiscretizer>(*this);
    }
    [[nodiscard]] std::uint64_t lbn_count() const noexcept { return lbn_count_; }

private:
    std::uint64_t lbn_count_;
    std::size_t ranges_;
};

/// Memory-bank states (paper Fig. 2: "Bank 1..Bank 4"): the identity map
/// over bank ids 0..banks-1.
class BankDiscretizer : public Discretizer {
public:
    explicit BankDiscretizer(std::size_t banks);
    [[nodiscard]] std::size_t n_states() const noexcept override { return banks_; }
    [[nodiscard]] std::size_t state_of(double bank) const override;
    [[nodiscard]] double representative(std::size_t state) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Discretizer> clone() const override {
        return std::make_unique<BankDiscretizer>(*this);
    }

private:
    std::size_t banks_;
};

/// CPU-utilization levels (paper Fig. 2: "CPU Util 1..4"): equal-width
/// buckets over [0, 1].
class UtilizationDiscretizer : public EqualWidthDiscretizer {
public:
    explicit UtilizationDiscretizer(std::size_t levels)
        : EqualWidthDiscretizer(0.0, 1.0, levels) {}
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Discretizer> clone() const override {
        return std::make_unique<UtilizationDiscretizer>(*this);
    }
};

/// Discretize a whole observation sequence.
[[nodiscard]] std::vector<std::size_t> discretize(const Discretizer& d,
                                                  std::span<const double> xs);

}  // namespace kooza::markov
