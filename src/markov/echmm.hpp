// Ergodic Continuous Hidden Markov Model (ECHMM).
//
// Moro, Mumolo & Nolich '09 (surveyed by the paper, Section 2.1.4) model
// "the sequence of memory references (i.e. virtual page numbers) as a
// series of floating point numbers used to train an Ergodic Continuous
// HMM", then categorize workloads and generate synthetic traces from it.
// This is a fully-connected (ergodic) HMM with one Gaussian emission per
// state, trained by Baum-Welch, with Viterbi decoding and generative
// sampling. It serves as the alternative, finer-grained memory model the
// A6 ablation compares against KOOZA's bank chain.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace kooza::markov {

class Echmm {
public:
    /// Train on one or more observation sequences (e.g. memory reference
    /// addresses as doubles) with `n_states` hidden states.
    /// Initialization: k-means-style quantile split of the pooled data;
    /// then `max_iter` Baum-Welch iterations (stops early when the total
    /// log-likelihood improves by less than `tol`).
    static Echmm fit(std::span<const std::vector<double>> sequences,
                     std::size_t n_states, std::size_t max_iter = 50,
                     double tol = 1e-4, std::uint64_t seed = 1);

    [[nodiscard]] std::size_t n_states() const noexcept { return n_; }
    [[nodiscard]] double transition(std::size_t i, std::size_t j) const;
    [[nodiscard]] double emission_mean(std::size_t i) const;
    [[nodiscard]] double emission_stddev(std::size_t i) const;
    [[nodiscard]] const std::vector<double>& initial() const noexcept { return pi_; }

    /// Total log-likelihood of a sequence under the model (forward pass).
    [[nodiscard]] double log_likelihood(std::span<const double> xs) const;

    /// Most likely hidden-state path (Viterbi).
    [[nodiscard]] std::vector<std::size_t> viterbi(std::span<const double> xs) const;

    /// Generate a synthetic observation sequence.
    [[nodiscard]] std::vector<double> generate(std::size_t length,
                                               sim::Rng& rng) const;

    /// Training log-likelihood after the final Baum-Welch iteration.
    [[nodiscard]] double training_log_likelihood() const noexcept { return train_ll_; }
    [[nodiscard]] std::size_t iterations_run() const noexcept { return iters_; }

    /// Free parameters: pi (n-1) + transitions n(n-1) + 2n emissions.
    [[nodiscard]] std::size_t parameter_count() const noexcept {
        return (n_ - 1) + n_ * (n_ - 1) + 2 * n_;
    }

    [[nodiscard]] std::string describe() const;

private:
    Echmm(std::size_t n) : n_(n) {}

    [[nodiscard]] double log_emission(std::size_t state, double x) const;

    std::size_t n_;
    std::vector<double> pi_;                  ///< initial distribution
    std::vector<std::vector<double>> a_;      ///< transitions
    std::vector<double> mu_;                  ///< emission means
    std::vector<double> sigma_;               ///< emission stddevs
    double train_ll_ = 0.0;
    std::size_t iters_ = 0;
};

}  // namespace kooza::markov
