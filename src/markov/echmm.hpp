// Ergodic Continuous Hidden Markov Model (ECHMM).
//
// Moro, Mumolo & Nolich '09 (surveyed by the paper, Section 2.1.4) model
// "the sequence of memory references (i.e. virtual page numbers) as a
// series of floating point numbers used to train an Ergodic Continuous
// HMM", then categorize workloads and generate synthetic traces from it.
// This is a fully-connected (ergodic) HMM with one Gaussian emission per
// state, trained by Baum-Welch, with Viterbi decoding and generative
// sampling. It serves as the alternative, finer-grained memory model the
// A6 ablation compares against KOOZA's bank chain, and the machinery
// behind the Harrison-style HMM storage baseline (baselines::HmmModel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace kooza::markov {

class Echmm {
public:
    class Fitter;

    /// Train on one or more observation sequences (e.g. memory reference
    /// addresses as doubles) with `n_states` hidden states.
    /// Initialization: k-means-style quantile split of the pooled data;
    /// then `max_iter` Baum-Welch iterations per restart (stopping early
    /// once |delta log-likelihood| < `tol`; a likelihood *decrease* —
    /// possible because the accumulator/sigma floors make the M-step
    /// inexact — is counted under `markov.echmm.ll_decreased_total`, not
    /// treated as convergence).
    ///
    /// `seed` drives randomized restarts: restart 0 always uses the
    /// deterministic quantile initialization (so the default
    /// `n_restarts = 1` is byte-identical for every seed), and restarts
    /// 1..n-1 jitter the initial emission means with Rng(seed ^ restart).
    /// The model with the best final training log-likelihood wins.
    static Echmm fit(std::span<const std::vector<double>> sequences,
                     std::size_t n_states, std::size_t max_iter = 50,
                     double tol = 1e-4, std::uint64_t seed = 1,
                     std::size_t n_restarts = 1);

    [[nodiscard]] std::size_t n_states() const noexcept { return n_; }
    [[nodiscard]] double transition(std::size_t i, std::size_t j) const;
    [[nodiscard]] double emission_mean(std::size_t i) const;
    [[nodiscard]] double emission_stddev(std::size_t i) const;
    [[nodiscard]] const std::vector<double>& initial() const noexcept { return pi_; }

    /// Total log-likelihood of a sequence under the model (forward pass).
    [[nodiscard]] double log_likelihood(std::span<const double> xs) const;

    /// Most likely hidden-state path (Viterbi).
    [[nodiscard]] std::vector<std::size_t> viterbi(std::span<const double> xs) const;

    /// Generate a synthetic observation sequence.
    [[nodiscard]] std::vector<double> generate(std::size_t length,
                                               sim::Rng& rng) const;

    /// Training log-likelihood after the final Baum-Welch iteration.
    [[nodiscard]] double training_log_likelihood() const noexcept { return train_ll_; }
    [[nodiscard]] std::size_t iterations_run() const noexcept { return iters_; }

    /// Free parameters: pi (n-1) + transitions n(n-1) + 2n emissions.
    [[nodiscard]] std::size_t parameter_count() const noexcept {
        return (n_ - 1) + n_ * (n_ - 1) + 2 * n_;
    }

    [[nodiscard]] std::string describe() const;

private:
    explicit Echmm(std::size_t n) : n_(n) {}

    [[nodiscard]] double log_emission(std::size_t state, double x) const;

    std::size_t n_;
    std::vector<double> pi_;                  ///< initial distribution
    std::vector<std::vector<double>> a_;      ///< transitions
    std::vector<double> mu_;                  ///< emission means
    std::vector<double> sigma_;               ///< emission stddevs
    double train_ll_ = 0.0;
    std::size_t iters_ = 0;
};

/// Incremental Baum-Welch driver: owns the model and the per-iteration
/// expectation accumulators, but never the observations. Each EM
/// iteration the caller streams every sequence through accumulate() —
/// from an in-memory vector or re-read chunk by chunk from disk — then
/// end_iteration() applies the M-step and reports convergence. Feeding
/// the same sequences in the same order every iteration makes the result
/// byte-identical to Echmm::fit on the materialized sequence list, which
/// is the contract baselines::HmmModel's streaming training relies on.
///
/// M-step variance uses the E[x^2] - mu_new^2 form, so sigma is computed
/// against the *updated* mean (a single stale-mean pass overestimates it
/// by (mu_new - mu_old)^2 every iteration).
class Echmm::Fitter {
public:
    explicit Fitter(std::size_t n_states, double tol = 1e-4);

    /// Quantile-initialize the emissions from the pooled observations
    /// (any order; sorted internally). `restart` 0 is deterministic;
    /// restarts >= 1 jitter the initial means with Rng(seed ^ restart).
    void initialize(std::span<const double> pooled, std::uint64_t seed = 1,
                    std::size_t restart = 0);

    void begin_iteration();
    /// E-step sufficient statistics of one observation sequence under the
    /// current model (empty sequences are ignored).
    void accumulate(std::span<const double> seq);
    /// M-step from everything accumulated this iteration. Returns true
    /// when |total_ll - previous total_ll| < tol (never on the first
    /// iteration); a log-likelihood decrease bumps
    /// `markov.echmm.ll_decreased_total` and does NOT count as converged.
    bool end_iteration();

    /// Current model (valid after initialize(); refined per iteration).
    [[nodiscard]] const Echmm& model() const noexcept { return m_; }

private:
    Echmm m_;
    double tol_;
    double prev_ll_;
    double total_ll_ = 0.0;
    std::size_t iters_ = 0;
    bool initialized_ = false;
    bool in_iteration_ = false;
    // Per-iteration expectation accumulators.
    std::vector<double> pi_acc_;
    std::vector<std::vector<double>> a_acc_;
    std::vector<double> gamma_all_;  ///< sum of gamma over all t
    std::vector<double> x_acc_;      ///< sum of gamma * x
    std::vector<double> x2_acc_;     ///< sum of gamma * x^2
};

}  // namespace kooza::markov
