#include "markov/echmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace kooza::markov {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;
constexpr double kSigmaFloor = 1e-6;
}  // namespace

double Echmm::log_emission(std::size_t state, double x) const {
    const double d = (x - mu_[state]) / sigma_[state];
    return -0.5 * (kLog2Pi + d * d) - std::log(sigma_[state]);
}

Echmm Echmm::fit(std::span<const std::vector<double>> sequences, std::size_t n_states,
                 std::size_t max_iter, double tol, std::uint64_t seed) {
    if (n_states == 0) throw std::invalid_argument("Echmm::fit: n_states 0");
    std::vector<double> pooled;
    for (const auto& s : sequences) pooled.insert(pooled.end(), s.begin(), s.end());
    if (pooled.size() < 2 * n_states)
        throw std::invalid_argument("Echmm::fit: too little data for state count");
    (void)seed;  // reserved for randomized restarts

    Echmm m(n_states);
    // Quantile initialization of the emissions.
    std::sort(pooled.begin(), pooled.end());
    m.mu_.resize(n_states);
    m.sigma_.resize(n_states);
    const std::size_t per = pooled.size() / n_states;
    for (std::size_t k = 0; k < n_states; ++k) {
        const std::size_t lo = k * per;
        const std::size_t hi = (k + 1 == n_states) ? pooled.size() : (k + 1) * per;
        double mean = 0.0;
        for (std::size_t i = lo; i < hi; ++i) mean += pooled[i];
        mean /= double(hi - lo);
        double var = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            var += (pooled[i] - mean) * (pooled[i] - mean);
        var /= double(hi - lo);
        m.mu_[k] = mean;
        m.sigma_[k] = std::max(std::sqrt(var), kSigmaFloor);
    }
    // Fall back to a global spread when a quantile bucket is degenerate.
    {
        double gmean = 0.0;
        for (double x : pooled) gmean += x;
        gmean /= double(pooled.size());
        double gvar = 0.0;
        for (double x : pooled) gvar += (x - gmean) * (x - gmean);
        gvar /= double(pooled.size());
        const double gsd = std::max(std::sqrt(gvar), kSigmaFloor);
        for (auto& s : m.sigma_)
            if (s < gsd * 1e-6) s = gsd * 0.1;
    }
    m.pi_.assign(n_states, 1.0 / double(n_states));
    m.a_.assign(n_states, std::vector<double>(n_states,
                                              n_states > 1 ? 0.2 / double(n_states - 1)
                                                           : 1.0));
    if (n_states > 1)
        for (std::size_t i = 0; i < n_states; ++i) m.a_[i][i] = 0.8;

    double prev_ll = -std::numeric_limits<double>::infinity();
    for (std::size_t iter = 0; iter < max_iter; ++iter) {
        // Accumulators.
        std::vector<double> pi_acc(n_states, 1e-10);
        std::vector<std::vector<double>> a_acc(n_states,
                                               std::vector<double>(n_states, 1e-10));
        std::vector<double> gamma_sum(n_states, 1e-10);       // over t < T-1
        std::vector<double> gamma_sum_all(n_states, 1e-10);   // over all t
        std::vector<double> mu_acc(n_states, 0.0);
        std::vector<double> var_acc(n_states, 0.0);
        double total_ll = 0.0;

        for (const auto& seq : sequences) {
            const std::size_t T = seq.size();
            if (T == 0) continue;
            // Scaled forward.
            std::vector<std::vector<double>> alpha(T, std::vector<double>(n_states));
            std::vector<std::vector<double>> beta(T, std::vector<double>(n_states));
            std::vector<double> scale(T, 0.0);
            for (std::size_t i = 0; i < n_states; ++i)
                alpha[0][i] = m.pi_[i] * std::exp(m.log_emission(i, seq[0]));
            for (std::size_t i = 0; i < n_states; ++i) scale[0] += alpha[0][i];
            scale[0] = std::max(scale[0], 1e-300);
            for (std::size_t i = 0; i < n_states; ++i) alpha[0][i] /= scale[0];
            for (std::size_t t = 1; t < T; ++t) {
                for (std::size_t j = 0; j < n_states; ++j) {
                    double s = 0.0;
                    for (std::size_t i = 0; i < n_states; ++i)
                        s += alpha[t - 1][i] * m.a_[i][j];
                    alpha[t][j] = s * std::exp(m.log_emission(j, seq[t]));
                }
                for (std::size_t j = 0; j < n_states; ++j) scale[t] += alpha[t][j];
                scale[t] = std::max(scale[t], 1e-300);
                for (std::size_t j = 0; j < n_states; ++j) alpha[t][j] /= scale[t];
            }
            for (std::size_t t = 0; t < T; ++t) total_ll += std::log(scale[t]);
            // Scaled backward.
            for (std::size_t i = 0; i < n_states; ++i) beta[T - 1][i] = 1.0;
            for (std::size_t t = T - 1; t-- > 0;) {
                for (std::size_t i = 0; i < n_states; ++i) {
                    double s = 0.0;
                    for (std::size_t j = 0; j < n_states; ++j)
                        s += m.a_[i][j] * std::exp(m.log_emission(j, seq[t + 1])) *
                             beta[t + 1][j];
                    beta[t][i] = s / scale[t + 1];
                }
            }
            // Gamma / xi accumulation.
            for (std::size_t t = 0; t < T; ++t) {
                double norm = 0.0;
                for (std::size_t i = 0; i < n_states; ++i)
                    norm += alpha[t][i] * beta[t][i];
                norm = std::max(norm, 1e-300);
                for (std::size_t i = 0; i < n_states; ++i) {
                    const double g = alpha[t][i] * beta[t][i] / norm;
                    gamma_sum_all[i] += g;
                    mu_acc[i] += g * seq[t];
                    var_acc[i] += g * (seq[t] - m.mu_[i]) * (seq[t] - m.mu_[i]);
                    if (t == 0) pi_acc[i] += g;
                    if (t + 1 < T) gamma_sum[i] += g;
                }
            }
            for (std::size_t t = 0; t + 1 < T; ++t) {
                double norm = 0.0;
                std::vector<std::vector<double>> xi(n_states,
                                                    std::vector<double>(n_states));
                for (std::size_t i = 0; i < n_states; ++i)
                    for (std::size_t j = 0; j < n_states; ++j) {
                        xi[i][j] = alpha[t][i] * m.a_[i][j] *
                                   std::exp(m.log_emission(j, seq[t + 1])) *
                                   beta[t + 1][j];
                        norm += xi[i][j];
                    }
                norm = std::max(norm, 1e-300);
                for (std::size_t i = 0; i < n_states; ++i)
                    for (std::size_t j = 0; j < n_states; ++j)
                        a_acc[i][j] += xi[i][j] / norm;
            }
        }

        // M-step.
        double pi_norm = 0.0;
        for (double p : pi_acc) pi_norm += p;
        for (std::size_t i = 0; i < n_states; ++i) m.pi_[i] = pi_acc[i] / pi_norm;
        for (std::size_t i = 0; i < n_states; ++i) {
            double row = 0.0;
            for (std::size_t j = 0; j < n_states; ++j) row += a_acc[i][j];
            for (std::size_t j = 0; j < n_states; ++j) m.a_[i][j] = a_acc[i][j] / row;
        }
        for (std::size_t i = 0; i < n_states; ++i) {
            m.mu_[i] = mu_acc[i] / gamma_sum_all[i];
            m.sigma_[i] =
                std::max(std::sqrt(var_acc[i] / gamma_sum_all[i]), kSigmaFloor);
        }
        m.train_ll_ = total_ll;
        m.iters_ = iter + 1;
        if (total_ll - prev_ll < tol && iter > 0) break;
        prev_ll = total_ll;
    }
    return m;
}

double Echmm::transition(std::size_t i, std::size_t j) const {
    if (i >= n_ || j >= n_) throw std::out_of_range("Echmm::transition");
    return a_[i][j];
}

double Echmm::emission_mean(std::size_t i) const {
    if (i >= n_) throw std::out_of_range("Echmm::emission_mean");
    return mu_[i];
}

double Echmm::emission_stddev(std::size_t i) const {
    if (i >= n_) throw std::out_of_range("Echmm::emission_stddev");
    return sigma_[i];
}

double Echmm::log_likelihood(std::span<const double> xs) const {
    if (xs.empty()) return 0.0;
    std::vector<double> alpha(n_);
    double ll = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        alpha[i] = pi_[i] * std::exp(log_emission(i, xs[0]));
    double scale = 0.0;
    for (double a : alpha) scale += a;
    scale = std::max(scale, 1e-300);
    for (auto& a : alpha) a /= scale;
    ll += std::log(scale);
    std::vector<double> next(n_);
    for (std::size_t t = 1; t < xs.size(); ++t) {
        for (std::size_t j = 0; j < n_; ++j) {
            double s = 0.0;
            for (std::size_t i = 0; i < n_; ++i) s += alpha[i] * a_[i][j];
            next[j] = s * std::exp(log_emission(j, xs[t]));
        }
        scale = 0.0;
        for (double a : next) scale += a;
        scale = std::max(scale, 1e-300);
        for (std::size_t j = 0; j < n_; ++j) alpha[j] = next[j] / scale;
        ll += std::log(scale);
    }
    return ll;
}

std::vector<std::size_t> Echmm::viterbi(std::span<const double> xs) const {
    if (xs.empty()) return {};
    const std::size_t T = xs.size();
    std::vector<std::vector<double>> delta(T, std::vector<double>(n_));
    std::vector<std::vector<std::size_t>> psi(T, std::vector<std::size_t>(n_, 0));
    for (std::size_t i = 0; i < n_; ++i)
        delta[0][i] = std::log(std::max(pi_[i], 1e-300)) + log_emission(i, xs[0]);
    for (std::size_t t = 1; t < T; ++t)
        for (std::size_t j = 0; j < n_; ++j) {
            double best = -std::numeric_limits<double>::infinity();
            std::size_t arg = 0;
            for (std::size_t i = 0; i < n_; ++i) {
                const double v =
                    delta[t - 1][i] + std::log(std::max(a_[i][j], 1e-300));
                if (v > best) {
                    best = v;
                    arg = i;
                }
            }
            delta[t][j] = best + log_emission(j, xs[t]);
            psi[t][j] = arg;
        }
    std::vector<std::size_t> path(T);
    path[T - 1] = std::size_t(
        std::max_element(delta[T - 1].begin(), delta[T - 1].end()) -
        delta[T - 1].begin());
    for (std::size_t t = T - 1; t-- > 0;) path[t] = psi[t + 1][path[t + 1]];
    return path;
}

std::vector<double> Echmm::generate(std::size_t length, sim::Rng& rng) const {
    if (length == 0) throw std::invalid_argument("Echmm::generate: length 0");
    std::vector<double> out;
    out.reserve(length);
    std::size_t state = rng.weighted_index(pi_);
    out.push_back(rng.normal(mu_[state], sigma_[state]));
    for (std::size_t t = 1; t < length; ++t) {
        state = rng.weighted_index(a_[state]);
        out.push_back(rng.normal(mu_[state], sigma_[state]));
    }
    return out;
}

std::string Echmm::describe() const {
    std::ostringstream os;
    os << "Echmm(" << n_ << " states, " << parameter_count() << " params, trained "
       << iters_ << " iters, ll=" << train_ll_ << ")";
    return os.str();
}

}  // namespace kooza::markov
