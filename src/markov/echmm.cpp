#include "markov/echmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::markov {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;
constexpr double kSigmaFloor = 1e-6;

struct EchmmMetrics {
    obs::Counter& ll_decreased = obs::counter("markov.echmm.ll_decreased_total");
    obs::Counter& fits = obs::counter("markov.echmm.fits_total");
};

EchmmMetrics& echmm_metrics() {
    static EchmmMetrics m;
    return m;
}
}  // namespace

double Echmm::log_emission(std::size_t state, double x) const {
    const double d = (x - mu_[state]) / sigma_[state];
    return -0.5 * (kLog2Pi + d * d) - std::log(sigma_[state]);
}

Echmm::Fitter::Fitter(std::size_t n_states, double tol)
    : m_(n_states), tol_(tol), prev_ll_(-std::numeric_limits<double>::infinity()) {
    if (n_states == 0) throw std::invalid_argument("Echmm::Fitter: n_states 0");
}

void Echmm::Fitter::initialize(std::span<const double> pooled, std::uint64_t seed,
                               std::size_t restart) {
    const std::size_t n_states = m_.n_;
    if (pooled.size() < 2 * n_states)
        throw std::invalid_argument("Echmm::fit: too little data for state count");
    std::vector<double> sorted(pooled.begin(), pooled.end());
    std::sort(sorted.begin(), sorted.end());

    // Quantile initialization of the emissions.
    m_.mu_.resize(n_states);
    m_.sigma_.resize(n_states);
    const std::size_t per = sorted.size() / n_states;
    for (std::size_t k = 0; k < n_states; ++k) {
        const std::size_t lo = k * per;
        const std::size_t hi = (k + 1 == n_states) ? sorted.size() : (k + 1) * per;
        double mean = 0.0;
        for (std::size_t i = lo; i < hi; ++i) mean += sorted[i];
        mean /= double(hi - lo);
        double var = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            var += (sorted[i] - mean) * (sorted[i] - mean);
        var /= double(hi - lo);
        m_.mu_[k] = mean;
        m_.sigma_[k] = std::max(std::sqrt(var), kSigmaFloor);
    }
    // Fall back to a global spread when a quantile bucket is degenerate.
    double gmean = 0.0;
    for (double x : sorted) gmean += x;
    gmean /= double(sorted.size());
    double gvar = 0.0;
    for (double x : sorted) gvar += (x - gmean) * (x - gmean);
    gvar /= double(sorted.size());
    const double gsd = std::max(std::sqrt(gvar), kSigmaFloor);
    for (auto& s : m_.sigma_)
        if (s < gsd * 1e-6) s = gsd * 0.1;

    // Randomized restart: jitter the initial means so each restart climbs
    // from a different basin. Restart 0 stays deterministic (byte-compat
    // with the single-restart fit regardless of seed).
    if (restart > 0) {
        sim::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * std::uint64_t(restart)));
        for (auto& mu : m_.mu_) mu += rng.normal(0.0, gsd * 0.25);
    }

    m_.pi_.assign(n_states, 1.0 / double(n_states));
    m_.a_.assign(n_states, std::vector<double>(n_states,
                                               n_states > 1 ? 0.2 / double(n_states - 1)
                                                            : 1.0));
    if (n_states > 1)
        for (std::size_t i = 0; i < n_states; ++i) m_.a_[i][i] = 0.8;

    prev_ll_ = -std::numeric_limits<double>::infinity();
    m_.train_ll_ = 0.0;
    m_.iters_ = 0;
    iters_ = 0;
    initialized_ = true;
    in_iteration_ = false;
}

void Echmm::Fitter::begin_iteration() {
    if (!initialized_)
        throw std::logic_error("Echmm::Fitter: begin_iteration before initialize");
    const std::size_t n = m_.n_;
    pi_acc_.assign(n, 1e-10);
    a_acc_.assign(n, std::vector<double>(n, 1e-10));
    gamma_all_.assign(n, 1e-10);
    x_acc_.assign(n, 0.0);
    x2_acc_.assign(n, 0.0);
    total_ll_ = 0.0;
    in_iteration_ = true;
}

void Echmm::Fitter::accumulate(std::span<const double> seq) {
    if (!in_iteration_)
        throw std::logic_error("Echmm::Fitter: accumulate outside an iteration");
    const std::size_t T = seq.size();
    if (T == 0) return;
    const std::size_t n = m_.n_;
    // Scaled forward.
    std::vector<std::vector<double>> alpha(T, std::vector<double>(n));
    std::vector<std::vector<double>> beta(T, std::vector<double>(n));
    std::vector<double> scale(T, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        alpha[0][i] = m_.pi_[i] * std::exp(m_.log_emission(i, seq[0]));
    for (std::size_t i = 0; i < n; ++i) scale[0] += alpha[0][i];
    scale[0] = std::max(scale[0], 1e-300);
    for (std::size_t i = 0; i < n; ++i) alpha[0][i] /= scale[0];
    for (std::size_t t = 1; t < T; ++t) {
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (std::size_t i = 0; i < n; ++i) s += alpha[t - 1][i] * m_.a_[i][j];
            alpha[t][j] = s * std::exp(m_.log_emission(j, seq[t]));
        }
        for (std::size_t j = 0; j < n; ++j) scale[t] += alpha[t][j];
        scale[t] = std::max(scale[t], 1e-300);
        for (std::size_t j = 0; j < n; ++j) alpha[t][j] /= scale[t];
    }
    for (std::size_t t = 0; t < T; ++t) total_ll_ += std::log(scale[t]);
    // Scaled backward.
    for (std::size_t i = 0; i < n; ++i) beta[T - 1][i] = 1.0;
    for (std::size_t t = T - 1; t-- > 0;) {
        for (std::size_t i = 0; i < n; ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                s += m_.a_[i][j] * std::exp(m_.log_emission(j, seq[t + 1])) *
                     beta[t + 1][j];
            beta[t][i] = s / scale[t + 1];
        }
    }
    // Gamma accumulation: first/second moments per state, so the M-step
    // can form the variance against the updated mean.
    for (std::size_t t = 0; t < T; ++t) {
        double norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) norm += alpha[t][i] * beta[t][i];
        norm = std::max(norm, 1e-300);
        for (std::size_t i = 0; i < n; ++i) {
            const double g = alpha[t][i] * beta[t][i] / norm;
            gamma_all_[i] += g;
            x_acc_[i] += g * seq[t];
            x2_acc_[i] += g * seq[t] * seq[t];
            if (t == 0) pi_acc_[i] += g;
        }
    }
    // Xi accumulation.
    std::vector<std::vector<double>> xi(n, std::vector<double>(n));
    for (std::size_t t = 0; t + 1 < T; ++t) {
        double norm = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) {
                xi[i][j] = alpha[t][i] * m_.a_[i][j] *
                           std::exp(m_.log_emission(j, seq[t + 1])) * beta[t + 1][j];
                norm += xi[i][j];
            }
        norm = std::max(norm, 1e-300);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) a_acc_[i][j] += xi[i][j] / norm;
    }
}

bool Echmm::Fitter::end_iteration() {
    if (!in_iteration_)
        throw std::logic_error("Echmm::Fitter: end_iteration outside an iteration");
    in_iteration_ = false;
    const std::size_t n = m_.n_;
    double pi_norm = 0.0;
    for (double p : pi_acc_) pi_norm += p;
    for (std::size_t i = 0; i < n; ++i) m_.pi_[i] = pi_acc_[i] / pi_norm;
    for (std::size_t i = 0; i < n; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n; ++j) row += a_acc_[i][j];
        for (std::size_t j = 0; j < n; ++j) m_.a_[i][j] = a_acc_[i][j] / row;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double mu = x_acc_[i] / gamma_all_[i];
        // E[x^2] - mu^2 against the *updated* mean; clamp the (possible)
        // tiny negative from catastrophic cancellation.
        const double var = std::max(x2_acc_[i] / gamma_all_[i] - mu * mu, 0.0);
        m_.mu_[i] = mu;
        m_.sigma_[i] = std::max(std::sqrt(var), kSigmaFloor);
    }
    m_.train_ll_ = total_ll_;
    m_.iters_ = ++iters_;
    if (total_ll_ < prev_ll_) echmm_metrics().ll_decreased.add();
    // |delta| guard: a decrease is numerical noise from the floored
    // accumulators, never evidence of convergence. prev_ll_ starts at
    // -inf, so the first iteration can never satisfy this.
    const bool converged = std::abs(total_ll_ - prev_ll_) < tol_;
    prev_ll_ = total_ll_;
    return converged;
}

Echmm Echmm::fit(std::span<const std::vector<double>> sequences,
                 std::size_t n_states, std::size_t max_iter, double tol,
                 std::uint64_t seed, std::size_t n_restarts) {
    if (n_states == 0) throw std::invalid_argument("Echmm::fit: n_states 0");
    if (n_restarts == 0) throw std::invalid_argument("Echmm::fit: n_restarts 0");
    std::vector<double> pooled;
    for (const auto& s : sequences) pooled.insert(pooled.end(), s.begin(), s.end());
    if (pooled.size() < 2 * n_states)
        throw std::invalid_argument("Echmm::fit: too little data for state count");
    echmm_metrics().fits.add();

    std::optional<Echmm> best;
    for (std::size_t restart = 0; restart < n_restarts; ++restart) {
        Fitter fitter(n_states, tol);
        fitter.initialize(pooled, seed, restart);
        for (std::size_t iter = 0; iter < max_iter; ++iter) {
            fitter.begin_iteration();
            for (const auto& seq : sequences) fitter.accumulate(seq);
            if (fitter.end_iteration()) break;
        }
        if (!best || fitter.model().training_log_likelihood() >
                         best->training_log_likelihood())
            best = fitter.model();
    }
    return *best;
}

double Echmm::transition(std::size_t i, std::size_t j) const {
    if (i >= n_ || j >= n_) throw std::out_of_range("Echmm::transition");
    return a_[i][j];
}

double Echmm::emission_mean(std::size_t i) const {
    if (i >= n_) throw std::out_of_range("Echmm::emission_mean");
    return mu_[i];
}

double Echmm::emission_stddev(std::size_t i) const {
    if (i >= n_) throw std::out_of_range("Echmm::emission_stddev");
    return sigma_[i];
}

double Echmm::log_likelihood(std::span<const double> xs) const {
    if (xs.empty()) return 0.0;
    std::vector<double> alpha(n_);
    double ll = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        alpha[i] = pi_[i] * std::exp(log_emission(i, xs[0]));
    double scale = 0.0;
    for (double a : alpha) scale += a;
    scale = std::max(scale, 1e-300);
    for (auto& a : alpha) a /= scale;
    ll += std::log(scale);
    std::vector<double> next(n_);
    for (std::size_t t = 1; t < xs.size(); ++t) {
        for (std::size_t j = 0; j < n_; ++j) {
            double s = 0.0;
            for (std::size_t i = 0; i < n_; ++i) s += alpha[i] * a_[i][j];
            next[j] = s * std::exp(log_emission(j, xs[t]));
        }
        scale = 0.0;
        for (double a : next) scale += a;
        scale = std::max(scale, 1e-300);
        for (std::size_t j = 0; j < n_; ++j) alpha[j] = next[j] / scale;
        ll += std::log(scale);
    }
    return ll;
}

std::vector<std::size_t> Echmm::viterbi(std::span<const double> xs) const {
    if (xs.empty()) return {};
    const std::size_t T = xs.size();
    std::vector<std::vector<double>> delta(T, std::vector<double>(n_));
    std::vector<std::vector<std::size_t>> psi(T, std::vector<std::size_t>(n_, 0));
    for (std::size_t i = 0; i < n_; ++i)
        delta[0][i] = std::log(std::max(pi_[i], 1e-300)) + log_emission(i, xs[0]);
    for (std::size_t t = 1; t < T; ++t)
        for (std::size_t j = 0; j < n_; ++j) {
            double best = -std::numeric_limits<double>::infinity();
            std::size_t arg = 0;
            for (std::size_t i = 0; i < n_; ++i) {
                const double v =
                    delta[t - 1][i] + std::log(std::max(a_[i][j], 1e-300));
                if (v > best) {
                    best = v;
                    arg = i;
                }
            }
            delta[t][j] = best + log_emission(j, xs[t]);
            psi[t][j] = arg;
        }
    std::vector<std::size_t> path(T);
    path[T - 1] = std::size_t(
        std::max_element(delta[T - 1].begin(), delta[T - 1].end()) -
        delta[T - 1].begin());
    for (std::size_t t = T - 1; t-- > 0;) path[t] = psi[t + 1][path[t + 1]];
    return path;
}

std::vector<double> Echmm::generate(std::size_t length, sim::Rng& rng) const {
    if (length == 0) throw std::invalid_argument("Echmm::generate: length 0");
    std::vector<double> out;
    out.reserve(length);
    std::size_t state = rng.weighted_index(pi_);
    out.push_back(rng.normal(mu_[state], sigma_[state]));
    for (std::size_t t = 1; t < length; ++t) {
        state = rng.weighted_index(a_[state]);
        out.push_back(rng.normal(mu_[state], sigma_[state]));
    }
    return out;
}

std::string Echmm::describe() const {
    std::ostringstream os;
    os << "Echmm(" << n_ << " states, " << parameter_count() << " params, trained "
       << iters_ << " iters, ll=" << train_ll_ << ")";
    return os.str();
}

}  // namespace kooza::markov
