#include "markov/discretizer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace kooza::markov {

double Discretizer::sample_within(std::size_t state, sim::Rng&) const {
    return representative(state);
}

EqualWidthDiscretizer::EqualWidthDiscretizer(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins) {
    if (!(hi > lo)) throw std::invalid_argument("EqualWidthDiscretizer: hi must exceed lo");
    if (bins == 0) throw std::invalid_argument("EqualWidthDiscretizer: bins must be >= 1");
}

std::size_t EqualWidthDiscretizer::state_of(double x) const {
    if (x <= lo_) return 0;
    if (x >= hi_) return bins_ - 1;
    return std::min(std::size_t((x - lo_) / (hi_ - lo_) * double(bins_)), bins_ - 1);
}

double EqualWidthDiscretizer::representative(std::size_t state) const {
    if (state >= bins_) throw std::out_of_range("EqualWidthDiscretizer::representative");
    const double w = (hi_ - lo_) / double(bins_);
    return lo_ + (double(state) + 0.5) * w;
}

double EqualWidthDiscretizer::sample_within(std::size_t state, sim::Rng& rng) const {
    if (state >= bins_) throw std::out_of_range("EqualWidthDiscretizer::sample_within");
    const double w = (hi_ - lo_) / double(bins_);
    return rng.uniform(lo_ + double(state) * w, lo_ + double(state + 1) * w);
}

std::string EqualWidthDiscretizer::describe() const {
    std::ostringstream os;
    os << "equal-width[" << lo_ << ", " << hi_ << ") x" << bins_;
    return os.str();
}

QuantileDiscretizer::QuantileDiscretizer(std::span<const double> sample,
                                         std::size_t bins) {
    if (bins == 0) throw std::invalid_argument("QuantileDiscretizer: bins must be >= 1");
    if (sample.empty()) throw std::invalid_argument("QuantileDiscretizer: empty sample");
    std::vector<double> s(sample.begin(), sample.end());
    std::sort(s.begin(), s.end());
    edges_.clear();
    for (std::size_t k = 1; k < bins; ++k) {
        const double q = double(k) / double(bins);
        const double pos = q * double(s.size() - 1);
        const std::size_t lo = std::size_t(pos);
        const std::size_t hi = std::min(lo + 1, s.size() - 1);
        const double frac = pos - double(lo);
        const double edge = s[lo] * (1.0 - frac) + s[hi] * frac;
        // Deduplicate edges (heavily-tied samples collapse bins).
        if (edges_.empty() || edge > edges_.back()) edges_.push_back(edge);
    }
    // Per-bin medians as representatives.
    const std::size_t nb = edges_.size() + 1;
    std::vector<std::vector<double>> members(nb);
    for (double x : s) {
        auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
        members[std::size_t(it - edges_.begin())].push_back(x);
    }
    reps_.resize(nb);
    for (std::size_t b = 0; b < nb; ++b) {
        if (members[b].empty()) {
            // Empty interior bin after dedup: fall back to nearest edge.
            reps_[b] = b < edges_.size() ? edges_[b] : s.back();
        } else {
            reps_[b] = members[b][members[b].size() / 2];
        }
    }
}

std::size_t QuantileDiscretizer::state_of(double x) const {
    auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    return std::size_t(it - edges_.begin());
}

double QuantileDiscretizer::representative(std::size_t state) const {
    if (state >= reps_.size()) throw std::out_of_range("QuantileDiscretizer::representative");
    return reps_[state];
}

std::string QuantileDiscretizer::describe() const {
    std::ostringstream os;
    os << "quantile x" << n_states();
    return os.str();
}

LbnRangeDiscretizer::LbnRangeDiscretizer(std::uint64_t lbn_count, std::size_t ranges)
    : lbn_count_(lbn_count), ranges_(ranges) {
    if (lbn_count == 0) throw std::invalid_argument("LbnRangeDiscretizer: lbn_count 0");
    if (ranges == 0) throw std::invalid_argument("LbnRangeDiscretizer: ranges 0");
    if (std::uint64_t(ranges) > lbn_count)
        throw std::invalid_argument("LbnRangeDiscretizer: more ranges than LBNs");
}

std::size_t LbnRangeDiscretizer::state_of(double lbn) const {
    if (lbn < 0.0) return 0;
    if (lbn >= double(lbn_count_)) return ranges_ - 1;
    return std::min(std::size_t(lbn / double(lbn_count_) * double(ranges_)), ranges_ - 1);
}

double LbnRangeDiscretizer::representative(std::size_t state) const {
    if (state >= ranges_) throw std::out_of_range("LbnRangeDiscretizer::representative");
    const double w = double(lbn_count_) / double(ranges_);
    return std::floor((double(state) + 0.5) * w);
}

double LbnRangeDiscretizer::sample_within(std::size_t state, sim::Rng& rng) const {
    if (state >= ranges_) throw std::out_of_range("LbnRangeDiscretizer::sample_within");
    const double w = double(lbn_count_) / double(ranges_);
    const double lo = double(state) * w;
    const double hi = std::min(double(lbn_count_), double(state + 1) * w);
    return std::floor(rng.uniform(lo, hi));
}

std::string LbnRangeDiscretizer::describe() const {
    std::ostringstream os;
    os << "lbn-ranges x" << ranges_ << " over " << lbn_count_ << " LBNs";
    return os.str();
}

BankDiscretizer::BankDiscretizer(std::size_t banks) : banks_(banks) {
    if (banks == 0) throw std::invalid_argument("BankDiscretizer: banks must be >= 1");
}

std::size_t BankDiscretizer::state_of(double bank) const {
    if (bank < 0.0) return 0;
    const auto b = std::size_t(bank);
    return std::min(b, banks_ - 1);
}

double BankDiscretizer::representative(std::size_t state) const {
    if (state >= banks_) throw std::out_of_range("BankDiscretizer::representative");
    return double(state);
}

std::string BankDiscretizer::describe() const {
    std::ostringstream os;
    os << "banks x" << banks_;
    return os.str();
}

std::string UtilizationDiscretizer::describe() const {
    std::ostringstream os;
    os << "cpu-util x" << n_states();
    return os.str();
}

std::vector<std::size_t> discretize(const Discretizer& d, std::span<const double> xs) {
    std::vector<std::size_t> out;
    out.reserve(xs.size());
    for (double x : xs) out.push_back(d.state_of(x));
    return out;
}

}  // namespace kooza::markov
