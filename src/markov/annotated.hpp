// Markov chains whose states carry request-feature distributions.
//
// In KOOZA the storage model does not just walk LBN ranges — each visit
// also reflects "the type of requests (block size, type, randomness,
// inter-arrival times)" (paper, Section 4). AnnotatedMarkovChain attaches
// named per-state feature distributions to a MarkovChain so a sampled path
// yields full synthetic records, not just state ids.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "markov/chain.hpp"
#include "stats/distributions.hpp"

namespace kooza::markov {

/// One training sequence: aligned state ids and per-feature observations.
struct AnnotatedSequence {
    std::vector<std::size_t> states;
    /// feature name -> values; every vector must match states.size().
    std::map<std::string, std::vector<double>> features;
};

/// One generated step: a state id plus sampled feature values.
struct AnnotatedStep {
    std::size_t state = 0;
    std::map<std::string, double> features;
};

class AnnotatedMarkovChain {
public:
    /// Fit the transition structure and, for every (state, feature) pair,
    /// a distribution over the values observed while in that state
    /// (parametric if a family passes the KS threshold, else empirical).
    /// States never observed fall back to the feature's global fit.
    /// The transition counts go through markov::ChainSuffStats and the
    /// feature buckets through stats::CappedSample, so the fit memory for
    /// huge captures is bounded by `max_state_samples` values per
    /// (state, feature) pair — 0 keeps every observation, in which case
    /// the result is byte-identical to the historical unbounded fit.
    static AnnotatedMarkovChain fit(std::span<const AnnotatedSequence> sequences,
                                    std::size_t n_states, double alpha = 0.5,
                                    double ks_threshold = 0.08,
                                    std::size_t max_state_samples = 0);

    /// Reassemble from previously-fitted parts (deserialization).
    /// `per_state` must have chain.n_states() entries.
    static AnnotatedMarkovChain from_parts(
        MarkovChain chain,
        std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>>
            per_state);

    [[nodiscard]] const MarkovChain& chain() const noexcept { return chain_; }
    [[nodiscard]] std::vector<std::string> feature_names() const;

    /// Distribution of `feature` while in `state`.
    [[nodiscard]] const stats::Distribution& feature(std::size_t state,
                                                     const std::string& name) const;

    /// Sample a path of `length` steps with features.
    [[nodiscard]] std::vector<AnnotatedStep> generate(std::size_t length,
                                                      sim::Rng& rng) const;

    /// Continue from a given state (for incremental generation).
    [[nodiscard]] AnnotatedStep step_from(std::size_t state, sim::Rng& rng) const;

    /// Sample features for a known state (no transition).
    [[nodiscard]] AnnotatedStep annotate(std::size_t state, sim::Rng& rng) const;

    /// Rough model size: transition entries + per-state feature params
    /// (2 per parametric feature, sample size for empirical). Used by the
    /// Table 1 complexity axis.
    [[nodiscard]] std::size_t parameter_count() const;

    [[nodiscard]] std::string describe() const;

private:
    AnnotatedMarkovChain(MarkovChain chain,
                         std::vector<std::map<std::string,
                                              std::unique_ptr<stats::Distribution>>>
                             per_state);

    MarkovChain chain_;
    /// per_state_[s][feature] -> distribution
    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>> per_state_;
};

}  // namespace kooza::markov
