// Discrete-time Markov chains.
//
// KOOZA's storage, CPU and memory sub-models are Markov chains: "we want
// to capture the sequence of states and the probabilities of switching
// between them" (paper, Section 4). Chains are fit from observed state
// sequences with Laplace smoothing and sampled to produce synthetic
// sequences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace kooza::markov {

/// Merge-able sufficient statistics for chain fitting: initial-state and
/// transition counts. Streaming trainers accumulate these chunk by chunk
/// (or shard by shard, then merge) and fit once at the end —
/// MarkovChain::fit_counts(stats, alpha) produces the same chain as
/// MarkovChain::fit over the concatenated sequences, bit for bit, since
/// counts are integers and exact in double precision.
struct ChainSuffStats {
    explicit ChainSuffStats(std::size_t n_states);

    /// Count one observed state sequence; empty sequences are ignored.
    /// Throws std::invalid_argument on a state id >= n_states.
    void observe(std::span<const std::size_t> seq);

    /// Combine counts from another accumulator over the same state space.
    void merge(const ChainSuffStats& other);

    std::size_t n_states = 0;
    std::vector<double> initial;                    ///< initial-state counts
    std::vector<std::vector<double>> transitions;   ///< transition counts
    std::uint64_t sequences = 0;  ///< non-empty sequences observed
};

class MarkovChain {
public:
    /// Uninformative chain: uniform transitions over n states.
    explicit MarkovChain(std::size_t n_states);

    /// Construct from an explicit row-stochastic transition matrix and an
    /// initial state distribution. Rows and the initial distribution must
    /// each sum to 1 within 1e-6. Throws std::invalid_argument otherwise.
    MarkovChain(std::vector<std::vector<double>> transitions,
                std::vector<double> initial);

    /// Fit from one or more observed state sequences.
    /// @param sequences  state id sequences; ids must be < n_states
    /// @param n_states   size of the state space
    /// @param alpha      Laplace smoothing pseudo-count added to every
    ///                   transition (keeps unseen transitions possible and
    ///                   log_likelihood finite); 0 disables smoothing
    static MarkovChain fit(std::span<const std::vector<std::size_t>> sequences,
                           std::size_t n_states, double alpha = 0.5);

    /// Fit from pre-accumulated sufficient statistics (the streaming
    /// path). Identical smoothing/normalization as fit(); throws
    /// std::invalid_argument when the stats saw no non-empty sequence.
    static MarkovChain fit_counts(const ChainSuffStats& stats, double alpha = 0.5);

    [[nodiscard]] std::size_t n_states() const noexcept { return n_; }

    /// P(next = j | current = i).
    [[nodiscard]] double transition(std::size_t i, std::size_t j) const;

    /// Initial state distribution.
    [[nodiscard]] const std::vector<double>& initial() const noexcept { return init_; }

    /// Sample the initial state.
    [[nodiscard]] std::size_t sample_initial(sim::Rng& rng) const;

    /// Sample the successor of state i.
    [[nodiscard]] std::size_t next_state(std::size_t i, sim::Rng& rng) const;

    /// Sample a path of `length` states starting from the initial
    /// distribution (length >= 1).
    [[nodiscard]] std::vector<std::size_t> sample_path(std::size_t length,
                                                       sim::Rng& rng) const;

    /// Stationary distribution by power iteration. Throws if the iteration
    /// fails to converge (period-2 chains etc. are out of scope here).
    [[nodiscard]] std::vector<double> stationary(std::size_t max_iter = 10000,
                                                 double tol = 1e-12) const;

    /// Log-likelihood of a sequence under the chain (includes the initial
    /// state term). -inf if any step has zero probability.
    [[nodiscard]] double log_likelihood(std::span<const std::size_t> seq) const;

    /// Total-variation-style distance between two chains' transition rows,
    /// weighted by this chain's stationary distribution. Both chains must
    /// have the same state count.
    [[nodiscard]] double transition_distance(const MarkovChain& other) const;

    [[nodiscard]] std::string to_string(int precision = 3) const;

private:
    std::size_t n_;
    std::vector<std::vector<double>> p_;  ///< row-stochastic transitions
    std::vector<double> init_;
};

}  // namespace kooza::markov
