#include "gfs/client.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace kooza::gfs {

namespace {
trace::SpanId begin_span(trace::SpanTracer* t, std::uint64_t trace_id,
                         trace::SpanId parent, const char* name, double now) {
    return t != nullptr ? t->start_span(trace_id, parent, name, now) : 0;
}
void finish_span(trace::SpanTracer* t, trace::SpanId s, double now) {
    if (t != nullptr) t->end_span(s, now);
}

struct ClientMetrics {
    obs::Counter& requests = obs::counter("gfs.client.requests_total");
    obs::Counter& failed = obs::counter("gfs.client.requests_failed_total");
    obs::Counter& cache_hits = obs::counter("gfs.client.cache_hits_total");
    obs::Counter& cache_misses = obs::counter("gfs.client.cache_misses_total");
    obs::Counter& failovers = obs::counter("gfs.client.failovers_total");
    obs::Counter& rejected = obs::counter("gfs.client.rejections_total");
    obs::Counter& retry_rounds = obs::counter("gfs.client.retry_rounds_total");
    obs::Histogram& latency_ns =
        obs::histogram("gfs.client.request_latency_ns", obs::Unit::kNanoseconds);
};

ClientMetrics& metrics() {
    static ClientMetrics m;
    return m;
}
}  // namespace

MasterNode::MasterNode(sim::Engine& engine, const GfsConfig& cfg) {
    hw::CpuParams mp = cfg.cpu;
    mp.cores = 1;
    cpu = std::make_unique<hw::Cpu>(engine, mp, nullptr);
    ingress = std::make_unique<hw::SwitchPort>(
        engine, cfg.net, trace::NetworkRecord::Direction::kRx, nullptr);
}

Client::Client(std::uint32_t id, sim::Engine& engine, const GfsConfig& cfg,
               Master& master, MasterNode& master_node,
               std::vector<std::unique_ptr<ChunkServer>>& servers,
               trace::Sink* sink, trace::SpanTracer* tracer)
    : id_(id),
      engine_(engine),
      cfg_(cfg),
      master_(master),
      master_node_(master_node),
      servers_(servers),
      sink_(sink),
      tracer_(tracer) {
    ingress_ = std::make_unique<hw::SwitchPort>(
        engine_, cfg_.net, trace::NetworkRecord::Direction::kTx, sink_);
}

std::uint64_t Client::lbn_of(ChunkHandle handle, std::uint64_t offset_in_chunk) const {
    const std::uint64_t blocks_per_chunk =
        std::max<std::uint64_t>(1, cfg_.chunk_size / cfg_.disk.block_size);
    if (cfg_.disk.lbn_count <= blocks_per_chunk)
        throw std::invalid_argument("Client: disk smaller than one chunk");
    // Chunks map to disjoint chunk-aligned block ranges: the disk holds
    // `slots` whole chunks and handles wrap onto aligned slots, so two
    // live handles never straddle each other's range (the old
    // `(handle*bpc) % (lbn_count-bpc)` produced overlapping, unaligned
    // ranges once handles wrapped, corrupting the storage model's
    // block-range states).
    const std::uint64_t slots = cfg_.disk.lbn_count / blocks_per_chunk;
    const std::uint64_t base = (handle % slots) * blocks_per_chunk;
    return base + offset_in_chunk / cfg_.disk.block_size;
}

double Client::backoff_wait(std::uint32_t step) const {
    // A backoff factor <= 1 cannot grow the wait, so short-circuit: the
    // old loop ran all `step` iterations shrinking the wait toward zero,
    // which both wasted O(step) work under large retry-round configs and
    // silently turned "backoff" into "retry faster and faster".
    if (cfg_.failover_backoff <= 1.0 || step == 0)
        return std::min(cfg_.failover_timeout, cfg_.failover_timeout_max);
    double wait = cfg_.failover_timeout;
    for (std::uint32_t i = 0; i < step; ++i) {
        wait *= cfg_.failover_backoff;
        if (wait >= cfg_.failover_timeout_max) break;
    }
    return std::min(wait, cfg_.failover_timeout_max);
}

void Client::demote_cached_replica(const CacheKey& key, std::uint32_t failed_server) {
    const auto it = location_cache_.find(key);
    if (it == location_cache_.end()) return;
    auto& servers = it->second.servers;
    const auto pos = std::find(servers.begin(), servers.end(), failed_server);
    if (pos != servers.end()) std::rotate(pos, pos + 1, servers.end());
}

void Client::lookup(std::uint64_t request_id, const std::string& file,
                    std::uint64_t offset, trace::SpanId root,
                    std::function<void(const ChunkLocation&)> next) {
    const std::uint64_t chunk_index = offset / master_.chunk_size();
    const auto key = std::make_pair(file, chunk_index);
    if (cfg_.client_caches_locations) {
        auto it = location_cache_.find(key);
        if (it != location_cache_.end()) {
            metrics().cache_hits.add();
            next(it->second);
            return;
        }
    }
    metrics().cache_misses.add();
    // Pay the master round trip: control to master, CPU work, control back.
    const auto sl =
        begin_span(tracer_, request_id, root, phase::kMasterLookup, engine_.now());
    master_node_.ingress->transfer(
        request_id, cfg_.control_bytes,
        [this, request_id, file, offset, key, sl, next = std::move(next)](double) mutable {
            master_node_.cpu->execute(
                request_id, master_node_.cpu->params().per_request_overhead,
                [this, request_id, file, offset, key, sl,
                 next = std::move(next)]() mutable {
                    ingress_->transfer(
                        request_id, cfg_.control_bytes,
                        [this, file, offset, key, sl, next = std::move(next)](double) {
                            finish_span(tracer_, sl, engine_.now());
                            // locate() lists replicas the master believes
                            // alive first; overwrite (never emplace) so a
                            // refreshed location replaces a stale one.
                            const ChunkLocation loc = master_.locate(file, offset);
                            if (cfg_.client_caches_locations)
                                location_cache_[key] = loc;
                            next(loc);
                        },
                        /*record=*/false);
                });
        },
        /*record=*/false);
}

void Client::try_replica(std::uint64_t request_id, std::string file,
                         std::uint64_t chunk_index, ChunkLocation loc,
                         std::uint64_t offset_in_chunk, std::uint64_t size,
                         trace::IoType type, trace::SpanId root, std::size_t attempt,
                         std::uint32_t round, std::uint32_t backoff_step,
                         std::shared_ptr<bool> request_failed,
                         std::function<void()> done) {
    if (loc.servers.empty())
        throw std::logic_error("Client::try_replica: no replicas");
    if (attempt >= loc.servers.size()) {
        // Every known replica is down. Evict the stale location and, if
        // retry rounds remain, back off and re-ask the master — it may
        // have re-replicated the chunk onto live servers by now.
        if (round < cfg_.client_retry_rounds) {
            metrics().retry_rounds.add();
            if (cfg_.client_caches_locations)
                location_cache_.erase(CacheKey(file, chunk_index));
            const double wait = backoff_wait(backoff_step);
            const auto sf = begin_span(tracer_, request_id, root, phase::kFailover,
                                       engine_.now());
            engine_.schedule_after(
                wait,
                [this, request_id, file = std::move(file), chunk_index,
                 offset_in_chunk, size, type, root, round, backoff_step, sf,
                 request_failed = std::move(request_failed),
                 done = std::move(done)]() mutable {
                    finish_span(tracer_, sf, engine_.now());
                    const std::uint64_t offset =
                        chunk_index * master_.chunk_size() + offset_in_chunk;
                    lookup(request_id, file, offset, root,
                           [this, request_id, file, chunk_index, offset_in_chunk,
                            size, type, root, round, backoff_step,
                            request_failed = std::move(request_failed),
                            done = std::move(done)](const ChunkLocation& fresh) mutable {
                               try_replica(request_id, std::move(file), chunk_index,
                                           fresh, offset_in_chunk, size, type, root,
                                           0, round + 1, backoff_step + 1,
                                           std::move(request_failed),
                                           std::move(done));
                           });
                });
            return;
        }
        // Out of retry rounds: the piece (and hence the request) fails.
        *request_failed = true;
        engine_.schedule_after(0.0, std::move(done));
        return;
    }
    ChunkServer* target = servers_.at(loc.servers[attempt]).get();
    if (target->failed()) {
        // Wait out the (backed-off) RPC timeout, demote the dead replica
        // in the cached location, then fail over to the next replica.
        const double wait = backoff_wait(backoff_step);
        ++failovers_;
        metrics().failovers.add();
        if (sink_ != nullptr) {
            trace::FailureRecord rec;
            rec.time = engine_.now();
            rec.request_id = request_id;
            rec.server = target->id();
            rec.kind = trace::FailureRecord::Kind::kFailover;
            rec.duration = wait;
            sink_->append(rec);
        }
        if (cfg_.client_caches_locations)
            demote_cached_replica(CacheKey(file, chunk_index), loc.servers[attempt]);
        const auto sf =
            begin_span(tracer_, request_id, root, phase::kFailover, engine_.now());
        engine_.schedule_after(
            wait,
            [this, request_id, file = std::move(file), chunk_index,
             loc = std::move(loc), offset_in_chunk, size, type, root, attempt, round,
             backoff_step, sf, request_failed = std::move(request_failed),
             done = std::move(done)]() mutable {
                finish_span(tracer_, sf, engine_.now());
                try_replica(request_id, std::move(file), chunk_index, std::move(loc),
                            offset_in_chunk, size, type, root, attempt + 1, round,
                            backoff_step + 1, std::move(request_failed),
                            std::move(done));
            });
        return;
    }
    const std::uint64_t lbn = lbn_of(loc.handle, offset_in_chunk);
    // Admission rejection is the server deliberately shedding load:
    // retrying would defeat the shed, so the piece (and the request)
    // fails immediately and the bounce lands in the failures stream.
    auto on_reject = [this, request_id, server = loc.servers[attempt],
                      request_failed, done]() {
        ++rejections_;
        metrics().rejected.add();
        if (sink_ != nullptr) {
            trace::FailureRecord rec;
            rec.time = engine_.now();
            rec.request_id = request_id;
            rec.server = server;
            rec.kind = trace::FailureRecord::Kind::kAdmissionReject;
            rec.duration = 0.0;
            sink_->append(rec);
        }
        *request_failed = true;
        done();
    };
    if (type == trace::IoType::kRead) {
        target->handle_read(request_id, lbn, size, root, *ingress_, std::move(done),
                            std::move(on_reject));
    } else {
        // The chosen server acts as primary; remaining healthy replicas
        // form the forwarding chain.
        std::vector<ChunkServer*> replicas;
        for (std::size_t r = 0; r < loc.servers.size(); ++r) {
            if (r == attempt) continue;
            ChunkServer* rep = servers_.at(loc.servers[r]).get();
            if (!rep->failed()) replicas.push_back(rep);
        }
        target->handle_write(request_id, lbn, size, root, *ingress_,
                             std::move(replicas), std::move(done),
                             std::move(on_reject));
    }
}

void Client::issue(std::uint64_t request_id, const std::string& file,
                   std::uint64_t offset, std::uint64_t size, trace::IoType type,
                   std::function<void(double)> on_done) {
    if (size == 0) throw std::invalid_argument("Client::issue: size 0");
    if (offset + size > master_.file_size(file))
        throw std::invalid_argument("Client::issue: beyond end of file " + file);
    const double arrival = engine_.now();
    // The RequestRecord is keyed at arrival but only emitted (or dropped,
    // on failure) at completion: hold the requests stream until then.
    if (sink_ != nullptr) sink_->open_hold(trace::StreamId::kRequests, arrival);
    const auto root =
        begin_span(tracer_, request_id, 0, phase::kRequest, arrival);

    // Split into per-chunk pieces.
    struct Piece {
        std::uint64_t offset;
        std::uint64_t size;
    };
    auto pieces = std::make_shared<std::vector<Piece>>();
    std::uint64_t cur = offset, remaining = size;
    while (remaining > 0) {
        const std::uint64_t in_chunk = cur % master_.chunk_size();
        const std::uint64_t take =
            std::min(remaining, master_.chunk_size() - in_chunk);
        pieces->push_back(Piece{cur, take});
        cur += take;
        remaining -= take;
    }

    auto outstanding = std::make_shared<std::size_t>(pieces->size());
    auto request_failed = std::make_shared<bool>(false);
    auto finish = [this, request_id, type, arrival, size, root, outstanding,
                   request_failed, on_done = std::move(on_done)]() {
        if (--*outstanding != 0) return;
        const double now = engine_.now();
        if (*request_failed) {
            ++failed_requests_;
            metrics().failed.add();
            if (sink_ != nullptr) {
                trace::FailureRecord rec;
                rec.time = now;
                rec.request_id = request_id;
                rec.kind = trace::FailureRecord::Kind::kRequestFailed;
                rec.duration = now - arrival;
                sink_->append(rec);
                // Failed requests emit no RequestRecord; release the hold.
                sink_->close_hold(trace::StreamId::kRequests, arrival);
            }
            finish_span(tracer_, root, now);
            if (on_done) on_done(-1.0);
            return;
        }
        if (sink_ != nullptr) {
            trace::RequestRecord rec;
            rec.request_id = request_id;
            rec.type = type;
            rec.arrival = arrival;
            rec.completion = now;
            rec.bytes = size;
            sink_->append(rec);
            sink_->close_hold(trace::StreamId::kRequests, arrival);
        }
        metrics().requests.add();
        metrics().latency_ns.observe_seconds(now - arrival);
        finish_span(tracer_, root, now);
        if (on_done) on_done(now - arrival);
    };

    for (const auto& piece : *pieces) {
        const std::uint64_t chunk_index = piece.offset / master_.chunk_size();
        lookup(request_id, file, piece.offset, root,
               [this, request_id, file, chunk_index, piece, type, root,
                request_failed, finish](const ChunkLocation& loc) {
                   try_replica(request_id, file, chunk_index, loc,
                               piece.offset % master_.chunk_size(), piece.size, type,
                               root, 0, 0, 0, request_failed, finish);
               });
    }
}

}  // namespace kooza::gfs
