#include "gfs/master.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::gfs {

namespace {

struct MasterMetrics {
    obs::Counter& lookups = obs::counter("gfs.master.lookups_total");
    obs::Counter& chunks = obs::counter("gfs.master.chunks_allocated_total");
    obs::Counter& re_replications = obs::counter("gfs.master.re_replications_total");
    obs::Gauge& servers_down = obs::gauge("gfs.master.servers_down");
};

MasterMetrics& metrics() {
    static MasterMetrics m;
    return m;
}

}  // namespace

Master::Master(std::size_t n_servers, std::size_t replication, std::uint64_t chunk_size)
    : n_servers_(n_servers),
      replication_(std::min(replication, n_servers)),
      chunk_size_(chunk_size),
      down_(n_servers, false) {
    if (n_servers == 0) throw std::invalid_argument("Master: need >= 1 chunkserver");
    if (replication == 0) throw std::invalid_argument("Master: replication must be >= 1");
    if (chunk_size == 0) throw std::invalid_argument("Master: chunk_size must be > 0");
}

ChunkHandle Master::allocate_chunk(const std::string& name, std::size_t idx,
                                   std::vector<ChunkLocation>& locs) {
    metrics().chunks.add();
    ChunkLocation loc;
    loc.handle = next_handle_++;
    for (std::size_t r = 0; r < replication_; ++r)
        loc.servers.push_back(std::uint32_t((next_server_ + r) % n_servers_));
    next_server_ = (next_server_ + 1) % n_servers_;
    chunk_of_.emplace(loc.handle, std::make_pair(name, idx));
    locs.push_back(std::move(loc));
    return locs.back().handle;
}

void Master::create_file(const std::string& name, std::uint64_t size) {
    if (size == 0) throw std::invalid_argument("Master::create_file: empty file");
    if (files_.count(name) != 0)
        throw std::invalid_argument("Master::create_file: file exists: " + name);
    const std::uint64_t n_chunks = (size + chunk_size_ - 1) / chunk_size_;
    std::vector<ChunkLocation> locs;
    locs.reserve(n_chunks);
    for (std::uint64_t c = 0; c < n_chunks; ++c)
        allocate_chunk(name, std::size_t(c), locs);
    files_.emplace(name, std::move(locs));
    sizes_.emplace(name, size);
}

std::uint64_t Master::allocate_append(const std::string& name, std::uint64_t size) {
    if (size == 0) throw std::invalid_argument("Master::allocate_append: size 0");
    if (size > chunk_size_)
        throw std::invalid_argument(
            "Master::allocate_append: record larger than a chunk");
    auto fit = files_.find(name);
    if (fit == files_.end())
        throw std::invalid_argument("Master::allocate_append: unknown file: " + name);
    std::uint64_t offset = sizes_.at(name);
    // Pad to the next chunk if the record would straddle a boundary.
    const std::uint64_t in_chunk = offset % chunk_size_;
    if (in_chunk + size > chunk_size_) offset += chunk_size_ - in_chunk;
    // Allocate chunks to cover [offset, offset + size).
    const std::uint64_t last_chunk = (offset + size - 1) / chunk_size_;
    auto& locs = fit->second;
    while (locs.size() <= last_chunk)
        allocate_chunk(name, locs.size(), locs);
    sizes_[name] = offset + size;
    return offset;
}

bool Master::has_file(const std::string& name) const { return files_.count(name) != 0; }

std::uint64_t Master::file_size(const std::string& name) const {
    auto it = sizes_.find(name);
    if (it == sizes_.end())
        throw std::invalid_argument("Master::file_size: unknown file: " + name);
    return it->second;
}

const ChunkLocation& Master::lookup(const std::string& name, std::uint64_t offset) const {
    const auto& locs = chunks(name);
    const std::uint64_t idx = offset / chunk_size_;
    if (idx >= locs.size())
        throw std::out_of_range("Master::lookup: offset beyond file: " + name);
    return locs[idx];
}

ChunkLocation Master::locate(const std::string& name, std::uint64_t offset) const {
    metrics().lookups.add();
    ChunkLocation loc = lookup(name, offset);
    std::stable_partition(loc.servers.begin(), loc.servers.end(),
                          [this](std::uint32_t s) { return !down_[s]; });
    return loc;
}

const std::vector<ChunkLocation>& Master::chunks(const std::string& name) const {
    auto it = files_.find(name);
    if (it == files_.end())
        throw std::invalid_argument("Master::chunks: unknown file: " + name);
    return it->second;
}

void Master::mark_server_down(std::uint32_t server) {
    if (server >= n_servers_)
        throw std::invalid_argument("Master::mark_server_down: unknown server");
    down_[server] = true;
    metrics().servers_down.set(
        double(std::count(down_.begin(), down_.end(), true)));
}

void Master::mark_server_up(std::uint32_t server) {
    if (server >= n_servers_)
        throw std::invalid_argument("Master::mark_server_up: unknown server");
    down_[server] = false;
    metrics().servers_down.set(
        double(std::count(down_.begin(), down_.end(), true)));
}

bool Master::server_down(std::uint32_t server) const {
    return server < n_servers_ && down_[server];
}

std::uint64_t Master::chunk_payload(const std::string& name, std::size_t idx) const {
    const std::uint64_t size = sizes_.at(name);
    const std::uint64_t start = std::uint64_t(idx) * chunk_size_;
    if (start >= size) return 0;
    return std::min(chunk_size_, size - start);
}

std::vector<RepairTask> Master::plan_repairs() {
    std::vector<RepairTask> tasks;
    for (const auto& [name, locs] : files_) {
        for (std::size_t idx = 0; idx < locs.size(); ++idx) {
            const auto& loc = locs[idx];
            if (repairing_.count(loc.handle) != 0) continue;
            // One dead replica per pass: losing several replicas of the
            // same chunk at once is repaired over successive passes.
            const auto dead_it =
                std::find_if(loc.servers.begin(), loc.servers.end(),
                             [this](std::uint32_t s) { return down_[s]; });
            if (dead_it == loc.servers.end()) continue;
            const auto src_it =
                std::find_if(loc.servers.begin(), loc.servers.end(),
                             [this](std::uint32_t s) { return !down_[s]; });
            if (src_it == loc.servers.end()) continue;  // nothing to copy from
            // Fresh destination: live and not already a replica, scanned
            // round-robin from the repair cursor.
            std::uint32_t dest = 0;
            bool found = false;
            for (std::size_t probe = 0; probe < n_servers_; ++probe) {
                const auto cand =
                    std::uint32_t((repair_cursor_ + probe) % n_servers_);
                if (down_[cand]) continue;
                if (std::find(loc.servers.begin(), loc.servers.end(), cand) !=
                    loc.servers.end())
                    continue;
                dest = cand;
                repair_cursor_ = (std::size_t(cand) + 1) % n_servers_;
                found = true;
                break;
            }
            if (!found) continue;  // cluster too degraded to re-replicate
            const std::uint64_t bytes = chunk_payload(name, idx);
            if (bytes == 0) continue;
            repairing_.insert(loc.handle);
            tasks.push_back(RepairTask{loc.handle, *src_it, dest, *dead_it, bytes});
        }
    }
    return tasks;
}

void Master::commit_repair(ChunkHandle handle, std::uint32_t dead, std::uint32_t dest) {
    repairing_.erase(handle);
    const auto it = chunk_of_.find(handle);
    if (it == chunk_of_.end())
        throw std::invalid_argument("Master::commit_repair: unknown chunk");
    auto& loc = files_.at(it->second.first).at(it->second.second);
    const auto dit = std::find(loc.servers.begin(), loc.servers.end(), dead);
    if (dit == loc.servers.end())
        throw std::logic_error("Master::commit_repair: dead replica not listed");
    *dit = dest;
    ++re_replications_;
    metrics().re_replications.add();
}

void Master::abort_repair(ChunkHandle handle) { repairing_.erase(handle); }

}  // namespace kooza::gfs
