#include "gfs/master.hpp"

#include <stdexcept>

namespace kooza::gfs {

Master::Master(std::size_t n_servers, std::size_t replication, std::uint64_t chunk_size)
    : n_servers_(n_servers),
      replication_(std::min(replication, n_servers)),
      chunk_size_(chunk_size) {
    if (n_servers == 0) throw std::invalid_argument("Master: need >= 1 chunkserver");
    if (replication == 0) throw std::invalid_argument("Master: replication must be >= 1");
    if (chunk_size == 0) throw std::invalid_argument("Master: chunk_size must be > 0");
}

void Master::create_file(const std::string& name, std::uint64_t size) {
    if (size == 0) throw std::invalid_argument("Master::create_file: empty file");
    if (files_.count(name) != 0)
        throw std::invalid_argument("Master::create_file: file exists: " + name);
    const std::uint64_t n_chunks = (size + chunk_size_ - 1) / chunk_size_;
    std::vector<ChunkLocation> locs;
    locs.reserve(n_chunks);
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
        ChunkLocation loc;
        loc.handle = next_handle_++;
        for (std::size_t r = 0; r < replication_; ++r) {
            loc.servers.push_back(std::uint32_t((next_server_ + r) % n_servers_));
        }
        next_server_ = (next_server_ + 1) % n_servers_;
        locs.push_back(std::move(loc));
    }
    files_.emplace(name, std::move(locs));
    sizes_.emplace(name, size);
}

std::uint64_t Master::allocate_append(const std::string& name, std::uint64_t size) {
    if (size == 0) throw std::invalid_argument("Master::allocate_append: size 0");
    if (size > chunk_size_)
        throw std::invalid_argument(
            "Master::allocate_append: record larger than a chunk");
    auto fit = files_.find(name);
    if (fit == files_.end())
        throw std::invalid_argument("Master::allocate_append: unknown file: " + name);
    std::uint64_t offset = sizes_.at(name);
    // Pad to the next chunk if the record would straddle a boundary.
    const std::uint64_t in_chunk = offset % chunk_size_;
    if (in_chunk + size > chunk_size_) offset += chunk_size_ - in_chunk;
    // Allocate chunks to cover [offset, offset + size).
    const std::uint64_t last_chunk = (offset + size - 1) / chunk_size_;
    auto& locs = fit->second;
    while (locs.size() <= last_chunk) {
        ChunkLocation loc;
        loc.handle = next_handle_++;
        for (std::size_t r = 0; r < replication_; ++r)
            loc.servers.push_back(std::uint32_t((next_server_ + r) % n_servers_));
        next_server_ = (next_server_ + 1) % n_servers_;
        locs.push_back(std::move(loc));
    }
    sizes_[name] = offset + size;
    return offset;
}

bool Master::has_file(const std::string& name) const { return files_.count(name) != 0; }

std::uint64_t Master::file_size(const std::string& name) const {
    auto it = sizes_.find(name);
    if (it == sizes_.end())
        throw std::invalid_argument("Master::file_size: unknown file: " + name);
    return it->second;
}

const ChunkLocation& Master::lookup(const std::string& name, std::uint64_t offset) const {
    const auto& locs = chunks(name);
    const std::uint64_t idx = offset / chunk_size_;
    if (idx >= locs.size())
        throw std::out_of_range("Master::lookup: offset beyond file: " + name);
    return locs[idx];
}

const std::vector<ChunkLocation>& Master::chunks(const std::string& name) const {
    auto it = files_.find(name);
    if (it == files_.end())
        throw std::invalid_argument("Master::chunks: unknown file: " + name);
    return it->second;
}

}  // namespace kooza::gfs
