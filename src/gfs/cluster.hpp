// Cluster harness: wires engine, master, chunkservers and clients, runs a
// request schedule, and hands back the TraceSet (including spans) that the
// modeling layers train on. This plays the role of the monitored
// production GFS deployment in the paper's experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gfs/admission.hpp"
#include "gfs/client.hpp"
#include "gfs/config.hpp"
#include "gfs/faults.hpp"
#include "gfs/profiler.hpp"
#include "sim/engine.hpp"
#include "trace/records.hpp"
#include "trace/sink.hpp"
#include "trace/traceset.hpp"

namespace kooza::gfs {

/// One scheduled user request.
struct RequestSpec {
    double time = 0.0;  ///< absolute issue time (seconds)
    std::string file;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    trace::IoType type = trace::IoType::kRead;
    std::uint32_t client = 0;  ///< issuing client index
    /// GFS record append: the offset is chosen by the master at issue
    /// time (file append cursor, chunk-padded); `offset` is ignored and
    /// `type` is forced to write.
    bool append = false;
};

class Cluster {
public:
    /// Without a provider the cluster records into internal TraceSets and
    /// traces()/take_traces() hand them back (memory mode). With a
    /// provider, every record goes straight to provider->group(g) as it
    /// is emitted — group 0 for cluster-level streams (requests,
    /// client-side network, failures, spans), group 1+s for chunkserver
    /// s — and traces() is unavailable: the provider (e.g. a
    /// trace::StreamingSink) owns the data. The provider must outlive the
    /// cluster and have group_count() == 1 + n_chunkservers.
    explicit Cluster(GfsConfig cfg, std::size_t n_clients = 1,
                     trace::SinkProvider* provider = nullptr);

    /// Create a file before submitting requests against it.
    void create_file(const std::string& name, std::uint64_t size);

    /// Schedule one request (time must not precede the current sim time).
    /// Returns the request id it will run under.
    std::uint64_t submit(const RequestSpec& spec);

    /// Like submit(), but fires `on_complete` when the request finishes:
    /// the successful latency in seconds, or a negative value when it
    /// failed (every replica down, or bounced by admission control).
    /// Closed-loop sources use this to refill a client's window.
    std::uint64_t submit(const RequestSpec& spec,
                         std::function<void(double latency)> on_complete);

    /// Schedule many requests.
    void submit_all(const std::vector<RequestSpec>& specs);

    /// Run the engine until all scheduled work completes.
    void run();

    /// Traces captured so far; span records are copied in from the tracer.
    /// The cluster keeps accumulating (call traces() again after more
    /// submits+run). Memory mode only: throws std::logic_error when a
    /// SinkProvider was attached.
    [[nodiscard]] trace::TraceSet traces() const;

    /// Like traces(), but *moves* the records out instead of copying,
    /// leaving the cluster's sinks empty. Peak memory stays ~one server's
    /// records above the captured total, instead of doubling it the way
    /// `TraceSet copy = traces()` does. Memory mode only.
    [[nodiscard]] trace::TraceSet take_traces();

    /// Per-server view: the device records chunkserver `i` emitted, plus
    /// the request/span/client-side records of the requests it served.
    /// This is the training input for one instance of a multi-server
    /// model composition (paper Section 4: "Scaling to multiple servers
    /// ... requires multiple instances of the model").
    [[nodiscard]] trace::TraceSet traces_for_server(std::size_t i) const;

    /// End-to-end latencies in completion order.
    [[nodiscard]] const std::vector<double>& latencies() const noexcept {
        return latencies_;
    }

    [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
    [[nodiscard]] Master& master() noexcept { return *master_; }
    [[nodiscard]] ChunkServer& server(std::size_t i) { return *servers_.at(i); }
    [[nodiscard]] std::size_t n_servers() const noexcept { return servers_.size(); }
    [[nodiscard]] Client& client(std::size_t i) { return *clients_.at(i); }
    [[nodiscard]] const GfsConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] const trace::SpanTracer& tracer() const noexcept { return *tracer_; }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

    /// Requests that exhausted every replica (failure injection).
    [[nodiscard]] std::uint64_t failed_requests() const;

    /// Failover waits clients have paid (dead-replica RPC timeouts).
    [[nodiscard]] std::uint64_t failovers() const;

    /// Request pieces bounced by chunkserver admission control.
    [[nodiscard]] std::uint64_t rejected_requests() const;

    /// Server `i`'s admission controller, or nullptr when
    /// cfg.admission.enabled is false.
    [[nodiscard]] AdmissionController* admission(std::size_t i);

    /// Inject an explicit crash/recover schedule. Call before run(); the
    /// cluster owns the injector. With cfg.faults.enabled the constructor
    /// already scheduled the auto-generated plan, and this throws.
    FaultInjector& inject_faults(FaultPlan plan);

    /// The injector, or nullptr when no faults were configured/injected.
    [[nodiscard]] FaultInjector* fault_injector() noexcept { return injector_.get(); }

    /// Attach a GWP-style machine profiler sampling every `interval`
    /// seconds until `horizon`. Call before run(); the cluster owns the
    /// profiler. Only one may be attached.
    MachineProfiler& attach_profiler(double interval, double horizon);

private:
    GfsConfig cfg_;
    std::unique_ptr<sim::Engine> engine_;
    std::unique_ptr<trace::TraceSet> sink_;  ///< client-side + request records
    std::vector<std::unique_ptr<trace::TraceSet>> server_sinks_;
    /// Memory mode: Sink adapters over sink_/server_sinks_ ([0] = cluster,
    /// [1+s] = server s). Empty when a provider supplies the sinks.
    std::vector<std::unique_ptr<trace::MemorySink>> memory_sinks_;
    trace::SinkProvider* provider_ = nullptr;
    trace::Sink* cluster_sink_ = nullptr;  ///< group-0 sink, either mode
    std::unique_ptr<trace::SpanTracer> tracer_;
    std::unique_ptr<Master> master_;
    std::unique_ptr<MasterNode> master_node_;
    std::vector<std::unique_ptr<ChunkServer>> servers_;
    std::vector<std::unique_ptr<AdmissionController>> admission_;
    std::vector<std::unique_ptr<Client>> clients_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<MachineProfiler> profiler_;
    std::vector<double> latencies_;
    std::uint64_t next_request_ = 0;
    std::uint64_t completed_ = 0;
};

}  // namespace kooza::gfs
