#include "gfs/profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "gfs/chunkserver.hpp"

namespace kooza::gfs {

MachineProfiler::MachineProfiler(
    sim::Engine& engine, const std::vector<std::unique_ptr<ChunkServer>>& servers,
    double interval, double horizon)
    : engine_(engine), servers_(servers), interval_(interval), horizon_(horizon) {
    if (!(interval > 0.0))
        throw std::invalid_argument("MachineProfiler: interval must be > 0");
    if (!(horizon > 0.0))
        throw std::invalid_argument("MachineProfiler: horizon must be > 0");
    engine_.schedule_after(interval_, [this] { tick(); });
}

void MachineProfiler::tick() {
    const double now = engine_.now();
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
        auto& srv = *servers_[s];
        MachineSample m;
        m.time = now;
        m.server = s;
        m.cpu_utilization = srv.cpu().utilization();
        m.disk_utilization = srv.disk().utilization();
        m.disk_ios = srv.disk().completed();
        m.cpu_bursts = srv.cpu().completed();
        samples_.push_back(m);
    }
    if (now + interval_ <= horizon_)
        engine_.schedule_after(interval_, [this] { tick(); });
}

std::vector<double> MachineProfiler::cpu_series(std::uint32_t server) const {
    std::vector<double> out;
    for (const auto& m : samples_)
        if (m.server == server) out.push_back(m.cpu_utilization);
    return out;
}

std::vector<double> MachineProfiler::disk_series(std::uint32_t server) const {
    std::vector<double> out;
    for (const auto& m : samples_)
        if (m.server == server) out.push_back(m.disk_utilization);
    return out;
}

std::uint32_t MachineProfiler::hottest_server() const {
    if (samples_.empty()) throw std::logic_error("MachineProfiler: no samples");
    std::vector<double> last(servers_.size(), 0.0);
    for (const auto& m : samples_) last[m.server] = m.disk_utilization;
    return std::uint32_t(std::max_element(last.begin(), last.end()) - last.begin());
}

}  // namespace kooza::gfs
