#include "gfs/profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "gfs/chunkserver.hpp"
#include "obs/metrics.hpp"

namespace kooza::gfs {

namespace {

struct ProfilerMetrics {
    obs::Counter& samples = obs::counter("gfs.profiler.samples_total");
};

ProfilerMetrics& metrics() {
    static ProfilerMetrics m;
    return m;
}

}  // namespace

MachineProfiler::MachineProfiler(
    sim::Engine& engine, const std::vector<std::unique_ptr<ChunkServer>>& servers,
    double interval, double horizon)
    : engine_(engine), servers_(servers), interval_(interval), horizon_(horizon) {
    if (!(interval > 0.0))
        throw std::invalid_argument("MachineProfiler: interval must be > 0");
    if (!(horizon > 0.0))
        throw std::invalid_argument("MachineProfiler: horizon must be > 0");
    last_tick_ = engine_.now();
    prev_cpu_busy_.resize(servers_.size(), 0.0);
    prev_disk_busy_.resize(servers_.size(), 0.0);
    prev_disk_ios_.resize(servers_.size(), 0);
    prev_cpu_bursts_.resize(servers_.size(), 0);
    // Baseline the cumulative device state so the first interval's delta
    // covers exactly (attach, attach + interval].
    for (std::size_t s = 0; s < servers_.size(); ++s) {
        prev_cpu_busy_[s] = servers_[s]->cpu().busy_time();
        prev_disk_busy_[s] = servers_[s]->disk().busy_time();
        prev_disk_ios_[s] = servers_[s]->disk().completed();
        prev_cpu_bursts_[s] = servers_[s]->cpu().completed();
    }
    engine_.schedule_after(std::min(interval_, horizon_), [this] { tick(); });
}

void MachineProfiler::tick() {
    const double now = engine_.now();
    const double dt = now - last_tick_;
    if (dt > 0.0) {
        for (std::uint32_t s = 0; s < servers_.size(); ++s) {
            auto& srv = *servers_[s];
            const double cpu_busy = srv.cpu().busy_time();
            const double disk_busy = srv.disk().busy_time();
            MachineSample m;
            m.time = now;
            m.interval = dt;
            m.server = s;
            // Per-interval busy fraction: busy-time delta over the
            // interval's capacity-seconds. The old code reported the
            // *cumulative* busy fraction since t=0 here, so a machine that
            // was hot an hour ago still looked hot now.
            m.cpu_utilization = std::clamp(
                (cpu_busy - prev_cpu_busy_[s]) / (double(srv.cpu().cores()) * dt),
                0.0, 1.0);
            m.disk_utilization =
                std::clamp((disk_busy - prev_disk_busy_[s]) / dt, 0.0, 1.0);
            m.disk_ios = srv.disk().completed() - prev_disk_ios_[s];
            m.cpu_bursts = srv.cpu().completed() - prev_cpu_bursts_[s];
            prev_cpu_busy_[s] = cpu_busy;
            prev_disk_busy_[s] = disk_busy;
            prev_disk_ios_[s] = srv.disk().completed();
            prev_cpu_bursts_[s] = srv.cpu().completed();
            samples_.push_back(m);
            metrics().samples.add();
        }
        last_tick_ = now;
    }
    if (now + interval_ <= horizon_) {
        engine_.schedule_after(interval_, [this] { tick(); });
    } else if (now < horizon_) {
        // Horizon not a multiple of the interval: take one final partial
        // sample at the horizon itself instead of dropping the tail.
        engine_.schedule_after(horizon_ - now, [this] { tick(); });
    }
}

std::vector<double> MachineProfiler::cpu_series(std::uint32_t server) const {
    std::vector<double> out;
    for (const auto& m : samples_)
        if (m.server == server) out.push_back(m.cpu_utilization);
    return out;
}

std::vector<double> MachineProfiler::disk_series(std::uint32_t server) const {
    std::vector<double> out;
    for (const auto& m : samples_)
        if (m.server == server) out.push_back(m.disk_utilization);
    return out;
}

std::uint32_t MachineProfiler::hottest_server() const {
    if (samples_.empty()) return kNone;
    std::vector<double> peak(servers_.size(), 0.0);
    for (const auto& m : samples_)
        peak[m.server] = std::max(peak[m.server], m.disk_utilization);
    return std::uint32_t(std::max_element(peak.begin(), peak.end()) - peak.begin());
}

}  // namespace kooza::gfs
