// GWP-style continuous machine profiler.
//
// The paper (Section 2.2) describes GWP: unlike Dapper's per-request
// traces, GWP samples "across machines ... whole-machine and per-process
// collection of profiles", gathering low-level utilization counters on a
// fixed cadence with adaptive sampling to bound overhead. This profiler
// samples every chunkserver's device utilizations at a fixed simulated
// interval, producing the machine-level time series that feed fleet
// studies (hot-machine detection, utilization histograms).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace kooza::gfs {

class ChunkServer;

/// One whole-machine sample.
struct MachineSample {
    double time = 0.0;
    std::uint32_t server = 0;
    double cpu_utilization = 0.0;   ///< cumulative busy fraction
    double disk_utilization = 0.0;
    std::uint64_t disk_ios = 0;      ///< completed so far
    std::uint64_t cpu_bursts = 0;
};

class MachineProfiler {
public:
    /// Sample every `interval` seconds while the engine runs. Attach
    /// before Cluster::run(); sampling stops when `horizon` is reached
    /// (the profiler does not keep an idle engine alive forever).
    MachineProfiler(sim::Engine& engine,
                    const std::vector<std::unique_ptr<ChunkServer>>& servers,
                    double interval, double horizon);

    [[nodiscard]] const std::vector<MachineSample>& samples() const noexcept {
        return samples_;
    }

    /// Per-server CPU-utilization series (sample order).
    [[nodiscard]] std::vector<double> cpu_series(std::uint32_t server) const;
    [[nodiscard]] std::vector<double> disk_series(std::uint32_t server) const;

    /// Index of the server with the highest final disk utilization — the
    /// hot machine a GWP-style fleet study would flag.
    [[nodiscard]] std::uint32_t hottest_server() const;

private:
    void tick();

    sim::Engine& engine_;
    const std::vector<std::unique_ptr<ChunkServer>>& servers_;
    double interval_;
    double horizon_;
    std::vector<MachineSample> samples_;
};

}  // namespace kooza::gfs
