// GWP-style continuous machine profiler.
//
// The paper (Section 2.2) describes GWP: unlike Dapper's per-request
// traces, GWP samples "across machines ... whole-machine and per-process
// collection of profiles", gathering low-level utilization counters on a
// fixed cadence with adaptive sampling to bound overhead. This profiler
// samples every chunkserver's device utilizations at a fixed simulated
// interval, producing the machine-level time series that feed fleet
// studies (hot-machine detection, utilization histograms).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace kooza::gfs {

class ChunkServer;

/// One whole-machine sample covering the interval (time - interval, time].
/// Utilizations and counts are per-interval (point-in-time load), not
/// cumulative since the start of the run.
struct MachineSample {
    double time = 0.0;      ///< end of the sampled interval
    double interval = 0.0;  ///< interval length (the horizon tick may be partial)
    std::uint32_t server = 0;
    double cpu_utilization = 0.0;   ///< busy fraction within the interval, [0,1]
    double disk_utilization = 0.0;
    std::uint64_t disk_ios = 0;     ///< I/Os completed within the interval
    std::uint64_t cpu_bursts = 0;
};

class MachineProfiler {
public:
    /// hottest_server() result when no samples were taken.
    static constexpr std::uint32_t kNone = UINT32_MAX;

    /// Sample every `interval` seconds while the engine runs. Attach
    /// before Cluster::run(); sampling stops at `horizon` — when the
    /// horizon is not a multiple of `interval`, a final partial-interval
    /// sample is still taken there, so activity in the tail is never lost.
    MachineProfiler(sim::Engine& engine,
                    const std::vector<std::unique_ptr<ChunkServer>>& servers,
                    double interval, double horizon);

    [[nodiscard]] const std::vector<MachineSample>& samples() const noexcept {
        return samples_;
    }

    /// Per-server CPU-utilization series (sample order).
    [[nodiscard]] std::vector<double> cpu_series(std::uint32_t server) const;
    [[nodiscard]] std::vector<double> disk_series(std::uint32_t server) const;

    /// Index of the server with the highest peak interval disk utilization
    /// — the hot machine a GWP-style fleet study would flag. Returns kNone
    /// when no samples were taken.
    [[nodiscard]] std::uint32_t hottest_server() const;

private:
    void tick();

    sim::Engine& engine_;
    const std::vector<std::unique_ptr<ChunkServer>>& servers_;
    double interval_;
    double horizon_;
    double last_tick_ = 0.0;
    // Cumulative device state at the previous tick, for interval deltas.
    std::vector<double> prev_cpu_busy_;
    std::vector<double> prev_disk_busy_;
    std::vector<std::uint64_t> prev_disk_ios_;
    std::vector<std::uint64_t> prev_cpu_bursts_;
    std::vector<MachineSample> samples_;
};

}  // namespace kooza::gfs
