#include "gfs/faults.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "par/pool.hpp"
#include "sim/rng.hpp"

namespace kooza::gfs {

namespace {

struct FaultMetrics {
    obs::Counter& crashes = obs::counter("gfs.faults.crashes_total");
    obs::Counter& recoveries = obs::counter("gfs.faults.recoveries_total");
    obs::Counter& repairs = obs::counter("gfs.faults.repairs_total");
    obs::Counter& repair_bytes =
        obs::counter("gfs.faults.re_replication_bytes_total", obs::Unit::kBytes);
};

FaultMetrics& metrics() {
    static FaultMetrics m;
    return m;
}

}  // namespace

FaultPlan make_fault_plan(const FaultConfig& cfg, std::size_t n_servers,
                          std::uint64_t cluster_seed) {
    if (cfg.mtbf <= 0.0 || cfg.mttr <= 0.0)
        throw std::invalid_argument("make_fault_plan: mtbf/mttr must be > 0");
    if (cfg.horizon <= 0.0)
        throw std::invalid_argument("make_fault_plan: horizon must be > 0");
    const std::uint64_t effective =
        cfg.seed != 0 ? cfg.seed
                      : par::splitmix64(cluster_seed ^ 0xFA17B0A7ull);
    FaultPlan plan;
    for (std::size_t s = 0; s < n_servers; ++s) {
        // One decorrelated stream per server, keyed on (seed, server)
        // only — never on thread count or iteration order.
        sim::Rng rng(par::shard_seed(effective, s));
        double t = 0.0;
        for (;;) {
            t += rng.exponential(1.0 / cfg.mtbf);
            if (t >= cfg.horizon) break;
            plan.push_back(FaultEvent{t, std::uint32_t(s), true});
            t += rng.exponential(1.0 / cfg.mttr);
            if (t >= cfg.horizon) break;
            plan.push_back(FaultEvent{t, std::uint32_t(s), false});
        }
    }
    std::sort(plan.begin(), plan.end(), [](const FaultEvent& a, const FaultEvent& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.server < b.server;
    });
    return plan;
}

FaultInjector::FaultInjector(sim::Engine& engine, const GfsConfig& cfg, Master& master,
                             std::vector<std::unique_ptr<ChunkServer>>& servers,
                             trace::Sink* sink)
    : engine_(engine), cfg_(cfg), master_(master), servers_(servers), sink_(sink) {}

void FaultInjector::schedule(FaultPlan plan) {
    if (!plan_.empty() || lazy_)
        throw std::logic_error("FaultInjector::schedule: plan already scheduled");
    plan_ = std::move(plan);
    for (const auto& ev : plan_)
        engine_.schedule_at(ev.time, [this, ev] { apply(ev); });
}

void FaultInjector::schedule_lazy(std::size_t n_servers, std::uint64_t cluster_seed) {
    if (!plan_.empty() || lazy_)
        throw std::logic_error("FaultInjector::schedule_lazy: plan already scheduled");
    if (cfg_.faults.mtbf <= 0.0 || cfg_.faults.mttr <= 0.0)
        throw std::invalid_argument("schedule_lazy: mtbf/mttr must be > 0");
    lazy_ = true;
    const std::uint64_t effective =
        cfg_.faults.seed != 0 ? cfg_.faults.seed
                              : par::splitmix64(cluster_seed ^ 0xFA17B0A7ull);
    for (std::size_t s = 0; s < n_servers; ++s) {
        // Same per-server stream and draw order as make_fault_plan, so a
        // lazy run crashes the same servers at the same times as a
        // materialized plan with a large enough horizon would.
        auto rng = std::make_shared<sim::Rng>(par::shard_seed(effective, s));
        const double first = rng->exponential(1.0 / cfg_.faults.mtbf);
        arm_lazy(std::uint32_t(s), std::move(rng), first, true);
    }
}

void FaultInjector::arm_lazy(std::uint32_t server, std::shared_ptr<sim::Rng> rng,
                             double at, bool fail) {
    engine_.schedule_daemon_at(at, [this, server, rng = std::move(rng), at, fail] {
        apply(FaultEvent{at, server, fail});
        const double mean = fail ? cfg_.faults.mttr : cfg_.faults.mtbf;
        const double next = at + rng->exponential(1.0 / mean);
        arm_lazy(server, rng, next, !fail);
    });
}

void FaultInjector::record(trace::FailureRecord::Kind kind, std::uint32_t server,
                           std::uint64_t request_id, double duration) {
    if (sink_ == nullptr) return;
    trace::FailureRecord rec;
    rec.time = engine_.now();
    rec.request_id = request_id;
    rec.server = server;
    rec.kind = kind;
    rec.duration = duration;
    sink_->append(rec);
}

void FaultInjector::apply(const FaultEvent& ev) {
    ChunkServer* server = servers_.at(ev.server).get();
    if (server->failed() == ev.fail) return;  // plan drift (e.g. manual toggles)
    server->set_failed(ev.fail);
    if (ev.fail) {
        ++crashes_;
        metrics().crashes.add();
        record(trace::FailureRecord::Kind::kCrash, ev.server, 0, 0.0);
        // Heartbeat loss: the master notices after detection_delay, then
        // starts re-replicating the chunks that lost a replica.
        engine_.schedule_after(cfg_.faults.detection_delay, [this, s = ev.server] {
            if (servers_.at(s)->failed()) master_.mark_server_down(s);
            detect_and_repair();
        });
    } else {
        ++recoveries_;
        metrics().recoveries.add();
        record(trace::FailureRecord::Kind::kRecover, ev.server, 0, 0.0);
        engine_.schedule_after(cfg_.faults.detection_delay, [this, s = ev.server] {
            if (!servers_.at(s)->failed()) master_.mark_server_up(s);
        });
    }
}

void FaultInjector::detect_and_repair() {
    for (const auto& task : master_.plan_repairs()) run_repair(task);
}

std::uint64_t FaultInjector::chunk_base_lbn(ChunkHandle handle) const {
    // Same chunk -> block-range mapping as Client::lbn_of: the disk holds
    // `slots` whole chunks, handles wrap onto aligned slots.
    const std::uint64_t blocks_per_chunk =
        std::max<std::uint64_t>(1, cfg_.chunk_size / cfg_.disk.block_size);
    const std::uint64_t slots = cfg_.disk.lbn_count / blocks_per_chunk;
    return (handle % slots) * blocks_per_chunk;
}

void FaultInjector::run_repair(const RepairTask& task) {
    ChunkServer* source = servers_.at(task.source).get();
    ChunkServer* dest = servers_.at(task.dest).get();
    if (source->failed() || dest->failed()) {
        master_.abort_repair(task.handle);
        return;
    }
    const std::uint64_t id = next_repair_id_++;
    const std::uint64_t lbn = chunk_base_lbn(task.handle);
    const double started = engine_.now();
    // Copy path: read the chunk off the source's disk, push it through the
    // destination's ingress port, write it to the destination's disk. Each
    // stage emits its usual device record, so repair traffic is part of
    // the captured workload.
    source->disk().io(id, lbn, task.bytes, trace::IoType::kRead,
                      [this, task, dest, id, lbn, started](double) {
                          dest->ingress().transfer(
                              id, task.bytes,
                              [this, task, dest, id, lbn, started](double) {
                                  dest->disk().io(
                                      id, lbn, task.bytes, trace::IoType::kWrite,
                                      [this, task, dest, id, started](double) {
                                          if (dest->failed()) {
                                              master_.abort_repair(task.handle);
                                              return;
                                          }
                                          master_.commit_repair(task.handle, task.dead,
                                                                task.dest);
                                          ++repairs_;
                                          metrics().repairs.add();
                                          metrics().repair_bytes.add(task.bytes);
                                          record(trace::FailureRecord::Kind::kRepair,
                                                 task.dest, id,
                                                 engine_.now() - started);
                                      });
                              });
                      });
}

}  // namespace kooza::gfs
