// Configuration for the GFS-like cluster simulator.
//
// Defaults are tuned so that the paper's two validation requests (a 64 KB
// read and a 4 MB write, Table 2) land in the same qualitative regime the
// paper reports: millisecond-scale latencies, single-digit-percent CPU
// utilization with writes costlier than reads, and memory traffic a
// fixed fraction of the payload (16 KB for the 64 KB read, 256 KB for the
// 4 MB write).
#pragma once

#include <cstddef>
#include <cstdint>

#include "hw/cpu.hpp"
#include "hw/disk.hpp"
#include "hw/memory.hpp"
#include "hw/network.hpp"

namespace kooza::gfs {

/// Fault-injection plan parameters. When `enabled`, the cluster builds a
/// seed-deterministic per-chunkserver crash/recover schedule: up intervals
/// are Exponential(1/mtbf) and down intervals Exponential(1/mttr), drawn
/// from per-server streams keyed on (seed, server) so the plan is
/// identical at any thread count. An explicit event list can be injected
/// instead via Cluster::inject_faults.
struct FaultConfig {
    bool enabled = false;
    double mtbf = 20.0;     ///< mean up time per server, seconds
    double mttr = 5.0;      ///< mean down time per server, seconds
    /// Generate events in [0, horizon). 0 means "until the cluster
    /// drains": events are produced lazily from the same per-server
    /// streams for as long as any request is still in flight, so slow
    /// draining tails keep seeing crashes instead of an artificially
    /// quiet cluster.
    double horizon = 60.0;
    /// Delay between a crash and the master noticing (heartbeat loss) and
    /// starting re-replication of the chunks that lost a replica.
    double detection_delay = 0.1;
    std::uint64_t seed = 0;  ///< 0 = derive from GfsConfig::seed
};

/// Ticket-style admission control at the chunkserver (after MongoDB's
/// execution-control ticket pools). A server holds `tickets` concurrency
/// tickets; requests past that either wait in a bounded FIFO or are
/// rejected back to the client. When `probe_interval > 0` the controller
/// probes: every interval it measures goodput (completions/interval),
/// steps the ticket count in its current direction, and keeps the move
/// only if goodput improved beyond the `hysteresis` band — settling on
/// the smallest ticket count whose goodput is within the band of the
/// best seen. `probe_interval <= 0` pins the ticket count at
/// `initial_tickets` (used for offline-optimal sweeps).
struct AdmissionConfig {
    bool enabled = false;
    std::uint32_t initial_tickets = 4;
    std::uint32_t min_tickets = 1;
    std::uint32_t max_tickets = 128;
    double probe_interval = 0.25;  ///< seconds between probe steps; <=0 = static
    double hysteresis = 0.05;      ///< relative goodput band treated as "same"
    std::size_t queue_limit = 64;  ///< waiters held before rejecting
    bool queue = true;             ///< false = reject immediately when out of tickets
};

struct GfsConfig {
    std::size_t n_chunkservers = 1;
    std::size_t replication = 1;   ///< replicas per chunk (1 = no replication)
    std::uint64_t chunk_size = 64ull << 20;  ///< bytes per chunk (GFS: 64 MB)

    hw::DiskParams disk{};
    hw::CpuParams cpu{.cores = 2, .per_byte_cost = 1.0 / 1e9,
                      .per_request_overhead = 20e-6};
    hw::MemoryParams memory{};
    hw::SwitchParams net{};

    /// Dapper-style head sampling: record 1 of every N request traces.
    std::uint64_t span_sample_every = 1;

    /// Control-message size (request headers, write acks, master RPCs).
    /// Control transfers cost time but are not recorded as payload traffic.
    std::uint64_t control_bytes = 512;

    /// Memory traffic per request = payload >> shift (buffer headers,
    /// chunk metadata): 64 KB read -> 16 KB (shift 2), 4 MB write ->
    /// 256 KB (shift 4), matching Table 2's memory column.
    std::uint32_t mem_shift_read = 2;
    std::uint32_t mem_shift_write = 4;

    /// Split of a request's CPU work between the verify (pre-I/O) and
    /// aggregate (post-I/O) phases of Fig. 1.
    double cpu_verify_fraction = 0.4;

    /// Clients cache chunk locations after the first lookup (GFS clients do).
    bool client_caches_locations = true;

    /// How long a client waits on an unresponsive chunkserver before
    /// failing over to the next replica (the first-attempt RPC timeout).
    double failover_timeout = 0.5;

    /// Exponential backoff on successive failovers within one request:
    /// attempt i waits min(failover_timeout * failover_backoff^i,
    /// failover_timeout_max).
    double failover_backoff = 2.0;
    double failover_timeout_max = 4.0;

    /// After exhausting every replica of a piece, the client evicts its
    /// cached location and re-asks the master (which may have
    /// re-replicated by then) up to this many extra rounds before the
    /// request fails. Kept at 1 so a doomed request fails within a few
    /// seconds of simulated time rather than stalling the workload.
    std::uint32_t client_retry_rounds = 1;

    /// Chunkserver crash/recover schedule (disabled by default).
    FaultConfig faults{};

    /// Chunkserver admission control (disabled by default).
    AdmissionConfig admission{};

    /// Keep the per-request latency vector (Cluster::latencies()). Turn
    /// off for datacenter-scale streamed captures, where an O(requests)
    /// vector would defeat flat-memory capture.
    bool collect_latencies = true;

    std::uint64_t seed = 123;
};

}  // namespace kooza::gfs
