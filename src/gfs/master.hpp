// GFS master: file namespace, chunk table, placement and repair.
//
// The master maps (file, offset) to a chunk handle and the chunk servers
// holding its replicas (Ghemawat '03). Placement is round-robin with a
// configurable replication factor. Lookup work costs a small CPU burst on
// the master, which clients avoid on repeat accesses by caching locations.
//
// Failure handling follows the GFS design: when a chunkserver's
// heartbeats stop the master marks it down, plans re-replication of every
// chunk that lost a replica (live source -> fresh live destination), and
// commits each repair once the copy lands — from then on lookups hand out
// the repaired location. Answering lookups with live replicas first is
// what lets clients that invalidated a stale cached location stop paying
// the failover timeout.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace kooza::gfs {

using ChunkHandle = std::uint64_t;

/// Where one chunk lives.
struct ChunkLocation {
    ChunkHandle handle = 0;
    std::vector<std::uint32_t> servers;  ///< replica chunkserver ids; [0] is primary
};

/// One planned re-replication: copy `bytes` of chunk `handle` from the
/// live replica `source` to the fresh server `dest`, replacing the dead
/// replica `dead` once committed.
struct RepairTask {
    ChunkHandle handle = 0;
    std::uint32_t source = 0;
    std::uint32_t dest = 0;
    std::uint32_t dead = 0;
    std::uint64_t bytes = 0;  ///< payload stored in the chunk
};

class Master {
public:
    /// @param n_servers    chunkservers available for placement
    /// @param replication  replicas per chunk (clamped to n_servers)
    /// @param chunk_size   bytes per chunk
    Master(std::size_t n_servers, std::size_t replication, std::uint64_t chunk_size);

    /// Create a file of `size` bytes; allocates and places its chunks.
    /// Throws if the file already exists or size is 0.
    void create_file(const std::string& name, std::uint64_t size);

    /// Record-append allocation (the signature GFS mutation): reserve
    /// `size` bytes at the file's append cursor and return the offset.
    /// If the record would straddle a chunk boundary, the cursor pads to
    /// the next chunk (GFS semantics); new chunks are allocated and
    /// placed on demand. Throws if size exceeds one chunk.
    [[nodiscard]] std::uint64_t allocate_append(const std::string& name,
                                                std::uint64_t size);

    [[nodiscard]] bool has_file(const std::string& name) const;
    [[nodiscard]] std::uint64_t file_size(const std::string& name) const;

    /// Chunk covering byte `offset` of `name`. Throws on unknown file or
    /// out-of-range offset.
    [[nodiscard]] const ChunkLocation& lookup(const std::string& name,
                                              std::uint64_t offset) const;

    /// Like lookup, but the returned copy lists replicas the master
    /// believes alive first (stable within each group) — what a real
    /// master answers a client RPC with once heartbeats flagged a server.
    [[nodiscard]] ChunkLocation locate(const std::string& name,
                                       std::uint64_t offset) const;

    /// All chunks of a file, in order.
    [[nodiscard]] const std::vector<ChunkLocation>& chunks(const std::string& name) const;

    // ---- Failure detection & re-replication (GFS master duties) ----

    /// Heartbeat-loss detection: mark `server` dead. Idempotent.
    void mark_server_down(std::uint32_t server);
    /// The server rejoined; its surviving replicas count again.
    void mark_server_up(std::uint32_t server);
    [[nodiscard]] bool server_down(std::uint32_t server) const;

    /// Plan re-replication of every chunk that (a) has a replica on a
    /// down server, (b) still has a live source, (c) has a live server
    /// not yet holding it, and (d) is not already being repaired. Planned
    /// chunks are held in-flight until commit_repair/abort_repair.
    [[nodiscard]] std::vector<RepairTask> plan_repairs();

    /// The copy for `handle` landed: replace replica `dead` with `dest`.
    void commit_repair(ChunkHandle handle, std::uint32_t dead, std::uint32_t dest);
    /// The copy failed (e.g. source crashed mid-repair): allow replanning.
    void abort_repair(ChunkHandle handle);

    /// Committed re-replications so far.
    [[nodiscard]] std::uint64_t re_replications() const noexcept {
        return re_replications_;
    }

    [[nodiscard]] std::uint64_t chunk_size() const noexcept { return chunk_size_; }
    [[nodiscard]] std::size_t n_servers() const noexcept { return n_servers_; }
    [[nodiscard]] std::size_t replication() const noexcept { return replication_; }
    [[nodiscard]] std::uint64_t total_chunks() const noexcept { return next_handle_; }

private:
    /// Bytes of file payload stored in chunk `idx` of `name`.
    [[nodiscard]] std::uint64_t chunk_payload(const std::string& name,
                                              std::size_t idx) const;
    ChunkHandle allocate_chunk(const std::string& name, std::size_t idx,
                               std::vector<ChunkLocation>& locs);

    std::size_t n_servers_;
    std::size_t replication_;
    std::uint64_t chunk_size_;
    ChunkHandle next_handle_ = 0;
    std::size_t next_server_ = 0;   ///< round-robin placement cursor
    std::size_t repair_cursor_ = 0; ///< separate cursor so repairs don't
                                    ///< perturb placement determinism
    std::map<std::string, std::uint64_t> sizes_;
    std::map<std::string, std::vector<ChunkLocation>> files_;
    std::map<ChunkHandle, std::pair<std::string, std::size_t>> chunk_of_;
    std::vector<bool> down_;
    std::set<ChunkHandle> repairing_;
    std::uint64_t re_replications_ = 0;
};

}  // namespace kooza::gfs
