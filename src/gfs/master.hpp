// GFS master: file namespace, chunk table and placement.
//
// The master maps (file, offset) to a chunk handle and the chunk servers
// holding its replicas (Ghemawat '03). Placement is round-robin with a
// configurable replication factor. Lookup work costs a small CPU burst on
// the master, which clients avoid on repeat accesses by caching locations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kooza::gfs {

using ChunkHandle = std::uint64_t;

/// Where one chunk lives.
struct ChunkLocation {
    ChunkHandle handle = 0;
    std::vector<std::uint32_t> servers;  ///< replica chunkserver ids; [0] is primary
};

class Master {
public:
    /// @param n_servers    chunkservers available for placement
    /// @param replication  replicas per chunk (clamped to n_servers)
    /// @param chunk_size   bytes per chunk
    Master(std::size_t n_servers, std::size_t replication, std::uint64_t chunk_size);

    /// Create a file of `size` bytes; allocates and places its chunks.
    /// Throws if the file already exists or size is 0.
    void create_file(const std::string& name, std::uint64_t size);

    /// Record-append allocation (the signature GFS mutation): reserve
    /// `size` bytes at the file's append cursor and return the offset.
    /// If the record would straddle a chunk boundary, the cursor pads to
    /// the next chunk (GFS semantics); new chunks are allocated and
    /// placed on demand. Throws if size exceeds one chunk.
    [[nodiscard]] std::uint64_t allocate_append(const std::string& name,
                                                std::uint64_t size);

    [[nodiscard]] bool has_file(const std::string& name) const;
    [[nodiscard]] std::uint64_t file_size(const std::string& name) const;

    /// Chunk covering byte `offset` of `name`. Throws on unknown file or
    /// out-of-range offset.
    [[nodiscard]] const ChunkLocation& lookup(const std::string& name,
                                              std::uint64_t offset) const;

    /// All chunks of a file, in order.
    [[nodiscard]] const std::vector<ChunkLocation>& chunks(const std::string& name) const;

    [[nodiscard]] std::uint64_t chunk_size() const noexcept { return chunk_size_; }
    [[nodiscard]] std::size_t n_servers() const noexcept { return n_servers_; }
    [[nodiscard]] std::size_t replication() const noexcept { return replication_; }
    [[nodiscard]] std::uint64_t total_chunks() const noexcept { return next_handle_; }

private:
    std::size_t n_servers_;
    std::size_t replication_;
    std::uint64_t chunk_size_;
    ChunkHandle next_handle_ = 0;
    std::size_t next_server_ = 0;  ///< round-robin cursor
    std::map<std::string, std::uint64_t> sizes_;
    std::map<std::string, std::vector<ChunkLocation>> files_;
};

}  // namespace kooza::gfs
