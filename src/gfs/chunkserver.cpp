#include "gfs/chunkserver.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "gfs/admission.hpp"
#include "obs/metrics.hpp"

namespace kooza::gfs {

ChunkServer::ChunkServer(std::uint32_t id, sim::Engine& engine, const GfsConfig& cfg,
                         trace::Sink* sink, trace::SpanTracer* tracer, sim::Rng rng)
    : id_(id), engine_(engine), cfg_(cfg), sink_(sink), tracer_(tracer), rng_(rng) {
    disk_ = std::make_unique<hw::Disk>(engine_, cfg_.disk, sink_);
    cpu_ = std::make_unique<hw::Cpu>(engine_, cfg_.cpu, sink_);
    memory_ = std::make_unique<hw::Memory>(engine_, cfg_.memory, sink_);
    ingress_ = std::make_unique<hw::SwitchPort>(
        engine_, cfg_.net, trace::NetworkRecord::Direction::kRx, sink_);
}

std::uint64_t ChunkServer::mem_bytes(std::uint64_t size, trace::IoType t) const {
    const std::uint32_t shift =
        t == trace::IoType::kRead ? cfg_.mem_shift_read : cfg_.mem_shift_write;
    return std::max<std::uint64_t>(size >> shift, 512);
}

std::uint32_t ChunkServer::pick_bank(std::uint64_t request_id) const {
    // Banks follow storage locality by default; fall back to request id.
    return std::uint32_t(request_id % cfg_.memory.banks);
}

namespace {
/// Span helpers tolerating a null tracer.
trace::SpanId begin_span(trace::SpanTracer* t, std::uint64_t trace_id,
                         trace::SpanId parent, const char* name, double now) {
    return t != nullptr ? t->start_span(trace_id, parent, name, now) : 0;
}
void finish_span(trace::SpanTracer* t, trace::SpanId s, double now) {
    if (t != nullptr) t->end_span(s, now);
}

struct ServerMetrics {
    obs::Counter& reads = obs::counter("gfs.server.reads_total");
    obs::Counter& writes = obs::counter("gfs.server.writes_total");
    obs::Counter& replica_writes = obs::counter("gfs.server.replica_writes_total");
    obs::Counter& read_bytes =
        obs::counter("gfs.server.read_bytes_total", obs::Unit::kBytes);
    obs::Counter& write_bytes =
        obs::counter("gfs.server.write_bytes_total", obs::Unit::kBytes);
};

ServerMetrics& metrics() {
    static ServerMetrics m;
    return m;
}
}  // namespace

void ChunkServer::verify_and_buffer(std::uint64_t request_id, std::uint64_t size,
                                    trace::IoType mem_type, trace::SpanId parent,
                                    std::function<void()> next) {
    const double verify_work =
        cfg_.cpu_verify_fraction * cpu_->work_for_bytes(size);
    const auto sv =
        begin_span(tracer_, request_id, parent, phase::kCpuVerify, engine_.now());
    cpu_->execute(request_id, verify_work, [this, request_id, size, mem_type, parent,
                                            sv, next = std::move(next)]() mutable {
        finish_span(tracer_, sv, engine_.now());
        const auto sm =
            begin_span(tracer_, request_id, parent, phase::kMemBuffer, engine_.now());
        const std::uint32_t bank = std::uint32_t(
            memory_->bank_of(request_id * 4096 + std::uint64_t(id_) * 64));
        memory_->access(request_id, bank, mem_bytes(size, mem_type), mem_type,
                        [this, sm, next = std::move(next)](double) mutable {
                            finish_span(tracer_, sm, engine_.now());
                            next();
                        });
    });
}

std::function<void()> ChunkServer::release_ticket_then(
    std::function<void()> on_done) {
    return [this, on_done = std::move(on_done)]() mutable {
        admission_->release();
        on_done();
    };
}

void ChunkServer::handle_read(std::uint64_t request_id, std::uint64_t lbn,
                              std::uint64_t size, trace::SpanId parent,
                              hw::SwitchPort& client_port,
                              std::function<void()> on_done,
                              std::function<void()> on_reject) {
    if (admission_ != nullptr) {
        admission_->admit(
            [this, request_id, lbn, size, parent, &client_port,
             on_done = std::move(on_done)]() mutable {
                read_admitted(request_id, lbn, size, parent, client_port,
                              release_ticket_then(std::move(on_done)));
            },
            std::move(on_reject));
        return;
    }
    read_admitted(request_id, lbn, size, parent, client_port, std::move(on_done));
}

void ChunkServer::read_admitted(std::uint64_t request_id, std::uint64_t lbn,
                                std::uint64_t size, trace::SpanId parent,
                                hw::SwitchPort& client_port,
                                std::function<void()> on_done) {
    metrics().reads.add();
    metrics().read_bytes.add(size);
    // net.rx: the request header reaches this server's port (control).
    const auto srx = begin_span(tracer_, request_id, parent, phase::kNetRx, engine_.now());
    ingress_->transfer(
        request_id, cfg_.control_bytes,
        [this, request_id, lbn, size, parent, srx, &client_port,
         on_done = std::move(on_done)](double) mutable {
            finish_span(tracer_, srx, engine_.now());
            verify_and_buffer(
                request_id, size, trace::IoType::kRead, parent,
                [this, request_id, lbn, size, parent, &client_port,
                 on_done = std::move(on_done)]() mutable {
                    const auto sd = begin_span(tracer_, request_id, parent,
                                               phase::kDiskIo, engine_.now());
                    disk_->io(
                        request_id, lbn, size, trace::IoType::kRead,
                        [this, request_id, size, parent, sd, &client_port,
                         on_done = std::move(on_done)](double) mutable {
                            finish_span(tracer_, sd, engine_.now());
                            const double agg_work =
                                (1.0 - cfg_.cpu_verify_fraction) *
                                cpu_->work_for_bytes(size);
                            const auto sa =
                                begin_span(tracer_, request_id, parent,
                                           phase::kCpuAggregate, engine_.now());
                            cpu_->execute(
                                request_id, agg_work,
                                [this, request_id, size, parent, sa, &client_port,
                                 on_done = std::move(on_done)]() mutable {
                                    finish_span(tracer_, sa, engine_.now());
                                    const auto st = begin_span(tracer_, request_id,
                                                               parent, phase::kNetTx,
                                                               engine_.now());
                                    client_port.transfer(
                                        request_id, size,
                                        [this, st,
                                         on_done = std::move(on_done)](double) mutable {
                                            finish_span(tracer_, st, engine_.now());
                                            on_done();
                                        },
                                        /*record=*/true);
                                });
                        });
                });
        },
        /*record=*/false);
}

void ChunkServer::handle_replica_write(std::uint64_t request_id, std::uint64_t lbn,
                                       std::uint64_t size, trace::SpanId parent,
                                       std::function<void()> on_done) {
    metrics().replica_writes.add();
    verify_and_buffer(request_id, size, trace::IoType::kWrite, parent,
                      [this, request_id, lbn, size, parent,
                       on_done = std::move(on_done)]() mutable {
                          const auto sd = begin_span(tracer_, request_id, parent,
                                                     phase::kDiskIo, engine_.now());
                          disk_->io(request_id, lbn, size, trace::IoType::kWrite,
                                    [this, sd,
                                     on_done = std::move(on_done)](double) mutable {
                                        finish_span(tracer_, sd, engine_.now());
                                        on_done();
                                    });
                      });
}

void ChunkServer::handle_write(std::uint64_t request_id, std::uint64_t lbn,
                               std::uint64_t size, trace::SpanId parent,
                               hw::SwitchPort& client_port,
                               std::vector<ChunkServer*> replicas,
                               std::function<void()> on_done,
                               std::function<void()> on_reject) {
    if (admission_ != nullptr) {
        admission_->admit(
            [this, request_id, lbn, size, parent, &client_port,
             replicas = std::move(replicas),
             on_done = std::move(on_done)]() mutable {
                write_admitted(request_id, lbn, size, parent, client_port,
                               std::move(replicas),
                               release_ticket_then(std::move(on_done)));
            },
            std::move(on_reject));
        return;
    }
    write_admitted(request_id, lbn, size, parent, client_port, std::move(replicas),
                   std::move(on_done));
}

void ChunkServer::write_admitted(std::uint64_t request_id, std::uint64_t lbn,
                                 std::uint64_t size, trace::SpanId parent,
                                 hw::SwitchPort& client_port,
                                 std::vector<ChunkServer*> replicas,
                                 std::function<void()> on_done) {
    metrics().writes.add();
    metrics().write_bytes.add(size);
    // net.rx: the write payload reaches this server's port.
    const auto srx = begin_span(tracer_, request_id, parent, phase::kNetRx, engine_.now());
    ingress_->transfer(
        request_id, size,
        [this, request_id, lbn, size, parent, srx, &client_port,
         replicas = std::move(replicas), on_done = std::move(on_done)](double) mutable {
            finish_span(tracer_, srx, engine_.now());
            verify_and_buffer(
                request_id, size, trace::IoType::kWrite, parent,
                [this, request_id, lbn, size, parent, &client_port,
                 replicas = std::move(replicas),
                 on_done = std::move(on_done)]() mutable {
                    const auto sd = begin_span(tracer_, request_id, parent,
                                               phase::kDiskIo, engine_.now());
                    disk_->io(
                        request_id, lbn, size, trace::IoType::kWrite,
                        [this, request_id, lbn, size, parent, sd, &client_port,
                         replicas = std::move(replicas),
                         on_done = std::move(on_done)](double) mutable {
                            finish_span(tracer_, sd, engine_.now());
                            // Forward along the replication chain, then ack.
                            auto forward = std::make_shared<std::function<void(std::size_t)>>();
                            auto replicas_ptr =
                                std::make_shared<std::vector<ChunkServer*>>(
                                    std::move(replicas));
                            auto done_ptr = std::make_shared<std::function<void()>>(
                                std::move(on_done));
                            *forward = [this, request_id, lbn, size, parent, &client_port,
                                        replicas_ptr, done_ptr,
                                        forward](std::size_t i) {
                                if (i < replicas_ptr->size()) {
                                    ChunkServer* rep = (*replicas_ptr)[i];
                                    const auto sf = begin_span(tracer_, request_id,
                                                               parent,
                                                               phase::kReplForward,
                                                               engine_.now());
                                    rep->ingress().transfer(
                                        request_id, size,
                                        [this, request_id, lbn, size, parent, rep, sf,
                                         forward, i](double) {
                                            rep->handle_replica_write(
                                                request_id, lbn, size, parent,
                                                [this, sf, forward, i] {
                                                    finish_span(tracer_, sf,
                                                                engine_.now());
                                                    (*forward)(i + 1);
                                                });
                                        },
                                        /*record=*/true);
                                    return;
                                }
                                // Chain finished: break the self-reference
                                // cycle once this invocation unwinds.
                                engine_.schedule_after(
                                    0.0, [forward] { *forward = nullptr; });
                                const double agg_work =
                                    (1.0 - cfg_.cpu_verify_fraction) *
                                    cpu_->work_for_bytes(size);
                                const auto sa = begin_span(tracer_, request_id, parent,
                                                           phase::kCpuAggregate,
                                                           engine_.now());
                                cpu_->execute(request_id, agg_work, [this, request_id,
                                                                     parent, sa,
                                                                     &client_port,
                                                                     done_ptr] {
                                    finish_span(tracer_, sa, engine_.now());
                                    const auto st = begin_span(tracer_, request_id,
                                                               parent, phase::kNetTx,
                                                               engine_.now());
                                    client_port.transfer(
                                        request_id, cfg_.control_bytes,
                                        [this, st, done_ptr](double) {
                                            finish_span(tracer_, st, engine_.now());
                                            (*done_ptr)();
                                        },
                                        /*record=*/false);
                                });
                            };
                            (*forward)(0);
                        });
                });
        },
        /*record=*/true);
}

}  // namespace kooza::gfs
