// Ticket-based admission / concurrency controller for a chunkserver.
//
// Modeled on MongoDB's execution-control ticket pools (SNIPPETS.md #1): a
// fixed pool of concurrency tickets gates how many requests execute on
// the server at once. Requests arriving with no free ticket either wait
// in a bounded FIFO (queue policy) or are bounced back to the client
// (reject policy). A probe-and-adapt loop periodically measures goodput
// (ticket releases per probe interval) and accumulates it *per ticket
// count* — a single 250 ms window holds only a handful of completions,
// so averaging every window a count has owned is what makes the estimate
// usable. `best_tickets()` is the smallest visited count whose cumulative
// goodput is within the hysteresis band of the best — the same
// smallest-within-band criterion an offline sweep uses — and each probe
// re-measures the current best or one of its ±step neighbours in turn,
// so the estimate keeps sharpening instead of freezing on a lucky window.
//
// Determinism: grants and releases are synchronous inside the caller's
// event; rejections and probe steps are engine events. Nothing here draws
// randomness, so captures stay byte-identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "gfs/config.hpp"
#include "sim/engine.hpp"

namespace kooza::gfs {

class AdmissionController {
public:
    AdmissionController(sim::Engine& engine, std::uint32_t server,
                        AdmissionConfig cfg);

    AdmissionController(const AdmissionController&) = delete;
    AdmissionController& operator=(const AdmissionController&) = delete;

    /// Run `op` now if a ticket is free, queue it if the wait queue has
    /// room, otherwise schedule `on_reject`. An empty `on_reject` means
    /// the caller cannot handle rejection: the op queues past the limit
    /// rather than being dropped. Every admitted op MUST release().
    void admit(std::function<void()> op, std::function<void()> on_reject);

    /// Return the ticket held by a completed op; hands it to the queue
    /// head when one is waiting. Counts toward the probe window goodput.
    void release();

    [[nodiscard]] std::uint32_t tickets() const noexcept { return tickets_; }
    /// Smallest ticket count within the hysteresis band of the best
    /// goodput seen so far — the controller's convergence target.
    [[nodiscard]] std::uint32_t best_tickets() const noexcept { return best_tickets_; }
    [[nodiscard]] double best_goodput() const noexcept {
        return best_goodput_ < 0.0 ? 0.0 : best_goodput_;
    }
    [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
    [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
    [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
    [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
    [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
    [[nodiscard]] std::uint32_t server() const noexcept { return server_; }
    [[nodiscard]] const AdmissionConfig& config() const noexcept { return cfg_; }

private:
    void arm_probe();
    void probe();
    void drain_queue();
    [[nodiscard]] std::uint32_t step_size() const noexcept;

    sim::Engine& engine_;
    std::uint32_t server_;
    AdmissionConfig cfg_;

    std::uint32_t tickets_;
    std::size_t in_flight_ = 0;
    std::deque<std::function<void()>> queue_;

    // Probe state: cumulative goodput per visited ticket count, explored
    // in a best / best+step / best-step cycle.
    struct WindowStats {
        double completions = 0.0;
        std::uint64_t windows = 0;
    };
    std::map<std::uint32_t, WindowStats> windows_;
    double best_goodput_ = -1.0;  ///< <0 until the first probe window closes
    std::uint32_t best_tickets_;
    int phase_ = 0;  ///< 0 = probe above, 1 = probe below, 2 = re-measure best
    std::uint64_t window_completions_ = 0;

    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t probes_ = 0;
};

}  // namespace kooza::gfs
