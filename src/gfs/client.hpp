// GFS client: splits user requests into per-chunk operations, resolves
// chunk locations at the master (with client-side caching, as GFS clients
// do), issues them to the primary chunkservers, and records the
// end-to-end RequestRecord plus the root "request" span.
//
// Failover policy (GFS semantics): a dead replica costs an RPC timeout
// that backs off exponentially across successive failovers of one piece
// (failover_timeout * failover_backoff^i, capped at failover_timeout_max).
// A failed primary is demoted to the back of the cached location so later
// requests do not re-pay its timeout; when every replica of a piece is
// down the client evicts the cached entry and re-asks the master — which
// may have re-replicated by then — for up to client_retry_rounds extra
// rounds before the request fails.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gfs/chunkserver.hpp"
#include "gfs/config.hpp"
#include "gfs/master.hpp"
#include "hw/cpu.hpp"
#include "hw/network.hpp"
#include "sim/engine.hpp"
#include "trace/sink.hpp"
#include "trace/span.hpp"

namespace kooza::gfs {

/// The master's executable half: a CPU for lookup work and an ingress
/// port. (Namespace state lives in gfs::Master.)
struct MasterNode {
    MasterNode(sim::Engine& engine, const GfsConfig& cfg);
    std::unique_ptr<hw::Cpu> cpu;
    std::unique_ptr<hw::SwitchPort> ingress;
};

class Client {
public:
    Client(std::uint32_t id, sim::Engine& engine, const GfsConfig& cfg, Master& master,
           MasterNode& master_node, std::vector<std::unique_ptr<ChunkServer>>& servers,
           trace::Sink* sink, trace::SpanTracer* tracer);

    /// Issue one user request (read or write of `size` bytes at `offset`
    /// of `file`). Multi-chunk requests fan out to all owning servers in
    /// parallel; completion (and `on_done`) fires when every piece is
    /// done. Emits the RequestRecord and closes the root span. If every
    /// replica of some piece is failed, the request fails: no
    /// RequestRecord, and `on_done` receives a negative latency.
    void issue(std::uint64_t request_id, const std::string& file, std::uint64_t offset,
               std::uint64_t size, trace::IoType type,
               std::function<void(double latency)> on_done);

    /// Responses from chunkservers land here.
    [[nodiscard]] hw::SwitchPort& ingress() noexcept { return *ingress_; }

    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

    /// Requests that exhausted every replica without an answer. Failed
    /// requests produce no RequestRecord and report a negative latency to
    /// the completion callback.
    [[nodiscard]] std::uint64_t failed_requests() const noexcept {
        return failed_requests_;
    }

    /// Failover waits this client has paid (dead-replica RPC timeouts).
    [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }

    /// Request pieces bounced by chunkserver admission control. A
    /// rejected piece fails its request (rejection is the shed — the
    /// client does not retry it).
    [[nodiscard]] std::uint64_t rejections() const noexcept { return rejections_; }

private:
    using CacheKey = std::pair<std::string, std::uint64_t>;  ///< file, chunk index

    void lookup(std::uint64_t request_id, const std::string& file, std::uint64_t offset,
                trace::SpanId root, std::function<void(const ChunkLocation&)> next);
    void try_replica(std::uint64_t request_id, std::string file,
                     std::uint64_t chunk_index, ChunkLocation loc,
                     std::uint64_t offset_in_chunk, std::uint64_t size,
                     trace::IoType type, trace::SpanId root, std::size_t attempt,
                     std::uint32_t round, std::uint32_t backoff_step,
                     std::shared_ptr<bool> request_failed, std::function<void()> done);
    /// Move a failed server to the back of the cached location for `key`
    /// so later requests try live replicas first.
    void demote_cached_replica(const CacheKey& key, std::uint32_t failed_server);
    /// Timeout of the step-th failover wait of one piece.
    [[nodiscard]] double backoff_wait(std::uint32_t step) const;
    [[nodiscard]] std::uint64_t lbn_of(ChunkHandle handle,
                                       std::uint64_t offset_in_chunk) const;

    std::uint32_t id_;
    sim::Engine& engine_;
    const GfsConfig& cfg_;
    Master& master_;
    MasterNode& master_node_;
    std::vector<std::unique_ptr<ChunkServer>>& servers_;
    trace::Sink* sink_;
    trace::SpanTracer* tracer_;
    std::unique_ptr<hw::SwitchPort> ingress_;
    std::map<CacheKey, ChunkLocation> location_cache_;
    std::uint64_t failed_requests_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t rejections_ = 0;
};

}  // namespace kooza::gfs
