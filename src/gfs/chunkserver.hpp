// GFS chunkserver: executes read and write requests against its local
// device models, following the subsystem path of the paper's Figure 1:
//
//   read:  net.rx -> cpu.verify -> mem.buffer -> disk.io -> cpu.aggregate
//          -> net.tx
//   write: net.rx -> cpu.verify -> mem.buffer -> disk.io -> repl.forward*
//          -> cpu.aggregate -> net.tx(ack)
//
// Every phase is wrapped in a Dapper-style span so in-depth tracing can
// recover the structure, and every device emits subsystem records so
// in-breadth models can be trained — both from the same run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gfs/config.hpp"
#include "gfs/master.hpp"
#include "hw/cpu.hpp"
#include "hw/disk.hpp"
#include "hw/memory.hpp"
#include "hw/network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "trace/sink.hpp"
#include "trace/span.hpp"

namespace kooza::gfs {

class AdmissionController;

/// Canonical phase names (shared with the KOOZA structure queue).
namespace phase {
inline constexpr const char* kNetRx = "net.rx";
inline constexpr const char* kCpuVerify = "cpu.verify";
inline constexpr const char* kMemBuffer = "mem.buffer";
inline constexpr const char* kDiskIo = "disk.io";
inline constexpr const char* kReplForward = "repl.forward";
inline constexpr const char* kCpuAggregate = "cpu.aggregate";
inline constexpr const char* kNetTx = "net.tx";
inline constexpr const char* kMasterLookup = "master.lookup";
inline constexpr const char* kFailover = "failover";
inline constexpr const char* kRequest = "request";
}  // namespace phase

class ChunkServer {
public:
    ChunkServer(std::uint32_t id, sim::Engine& engine, const GfsConfig& cfg,
                trace::Sink* sink, trace::SpanTracer* tracer, sim::Rng rng);

    /// Handle a read of `size` bytes at `lbn`. `parent` is the client's
    /// root span. `on_done` fires when the response payload has reached
    /// the client's port (the caller transfers it; see `respond_via`).
    /// With admission control attached, `on_reject` fires instead when
    /// the server bounces the request (empty on_reject = never bounce,
    /// queue past the limit instead).
    void handle_read(std::uint64_t request_id, std::uint64_t lbn, std::uint64_t size,
                     trace::SpanId parent, hw::SwitchPort& client_port,
                     std::function<void()> on_done,
                     std::function<void()> on_reject = {});

    /// Handle a write of `size` bytes at `lbn`. `replicas` are the
    /// secondary servers to forward to (chain order). Completion fires
    /// once the local write, all forwards, and the client ack are done.
    void handle_write(std::uint64_t request_id, std::uint64_t lbn, std::uint64_t size,
                      trace::SpanId parent, hw::SwitchPort& client_port,
                      std::vector<ChunkServer*> replicas,
                      std::function<void()> on_done,
                      std::function<void()> on_reject = {});

    /// Attach a ticket controller gating primary reads and writes.
    /// Replica-side writes are NOT gated: the primary's ticket covers the
    /// whole replication chain (gating forwards could deadlock the chain
    /// against itself on small ticket counts).
    void set_admission(AdmissionController* admission) noexcept {
        admission_ = admission;
    }
    [[nodiscard]] AdmissionController* admission() const noexcept {
        return admission_;
    }

    /// Ingress port (client->server and server->server traffic lands here).
    [[nodiscard]] hw::SwitchPort& ingress() noexcept { return *ingress_; }

    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
    [[nodiscard]] hw::Disk& disk() noexcept { return *disk_; }
    [[nodiscard]] hw::Cpu& cpu() noexcept { return *cpu_; }
    [[nodiscard]] hw::Memory& memory() noexcept { return *memory_; }

    /// Failure injection: a failed server never answers; clients time out
    /// and fail over to the next replica. Recover with set_failed(false).
    void set_failed(bool failed) noexcept { failed_ = failed; }
    [[nodiscard]] bool failed() const noexcept { return failed_; }

private:
    /// Admission-gated entry bodies (the public handlers wrap these with
    /// the ticket acquire/release when a controller is attached).
    void read_admitted(std::uint64_t request_id, std::uint64_t lbn,
                       std::uint64_t size, trace::SpanId parent,
                       hw::SwitchPort& client_port, std::function<void()> on_done);
    void write_admitted(std::uint64_t request_id, std::uint64_t lbn,
                        std::uint64_t size, trace::SpanId parent,
                        hw::SwitchPort& client_port,
                        std::vector<ChunkServer*> replicas,
                        std::function<void()> on_done);

    /// Wrap `on_done` so the admission ticket is returned before the
    /// caller's completion runs (the freed ticket must be grantable to
    /// whatever that completion submits next).
    [[nodiscard]] std::function<void()> release_ticket_then(
        std::function<void()> on_done);

    /// Replica-side write: disk + devices only, no client ack.
    void handle_replica_write(std::uint64_t request_id, std::uint64_t lbn,
                              std::uint64_t size, trace::SpanId parent,
                              std::function<void()> on_done);

    /// Common pre-I/O path: cpu.verify then mem.buffer. Calls `next`.
    void verify_and_buffer(std::uint64_t request_id, std::uint64_t size,
                           trace::IoType mem_type, trace::SpanId parent,
                           std::function<void()> next);

    [[nodiscard]] std::uint64_t mem_bytes(std::uint64_t size, trace::IoType t) const;
    [[nodiscard]] std::uint32_t pick_bank(std::uint64_t request_id) const;

    std::uint32_t id_;
    sim::Engine& engine_;
    const GfsConfig& cfg_;
    trace::Sink* sink_;
    trace::SpanTracer* tracer_;
    sim::Rng rng_;
    std::unique_ptr<hw::Disk> disk_;
    std::unique_ptr<hw::Cpu> cpu_;
    std::unique_ptr<hw::Memory> memory_;
    std::unique_ptr<hw::SwitchPort> ingress_;
    AdmissionController* admission_ = nullptr;
    bool failed_ = false;
};

}  // namespace kooza::gfs
