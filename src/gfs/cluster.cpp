#include "gfs/cluster.hpp"

#include <set>
#include <stdexcept>

namespace kooza::gfs {

Cluster::Cluster(GfsConfig cfg, std::size_t n_clients, trace::SinkProvider* provider)
    : cfg_(cfg), provider_(provider) {
    if (cfg_.n_chunkservers == 0)
        throw std::invalid_argument("Cluster: need >= 1 chunkserver");
    if (n_clients == 0) throw std::invalid_argument("Cluster: need >= 1 client");
    if (provider_ != nullptr &&
        provider_->group_count() != 1 + cfg_.n_chunkservers)
        throw std::invalid_argument(
            "Cluster: provider needs group_count() == 1 + n_chunkservers");
    engine_ = std::make_unique<sim::Engine>();
    tracer_ = std::make_unique<trace::SpanTracer>(cfg_.span_sample_every);
    if (provider_ == nullptr) {
        sink_ = std::make_unique<trace::TraceSet>();
        memory_sinks_.push_back(std::make_unique<trace::MemorySink>(*sink_));
        cluster_sink_ = memory_sinks_.back().get();
    } else {
        cluster_sink_ = &provider_->group(0);
        // Spans stream through the provider instead of piling up in the
        // tracer's done_ buffer.
        tracer_->set_sink(cluster_sink_);
    }
    master_ = std::make_unique<Master>(cfg_.n_chunkservers, cfg_.replication,
                                       cfg_.chunk_size);
    master_node_ = std::make_unique<MasterNode>(*engine_, cfg_);
    sim::Rng seeder(cfg_.seed);
    for (std::size_t s = 0; s < cfg_.n_chunkservers; ++s) {
        trace::Sink* server_sink = nullptr;
        if (provider_ == nullptr) {
            server_sinks_.push_back(std::make_unique<trace::TraceSet>());
            memory_sinks_.push_back(
                std::make_unique<trace::MemorySink>(*server_sinks_.back()));
            server_sink = memory_sinks_.back().get();
        } else {
            server_sink = &provider_->group(1 + s);
        }
        servers_.push_back(std::make_unique<ChunkServer>(
            std::uint32_t(s), *engine_, cfg_, server_sink, tracer_.get(),
            seeder.fork()));
    }
    if (cfg_.admission.enabled) {
        for (std::size_t s = 0; s < servers_.size(); ++s) {
            admission_.push_back(std::make_unique<AdmissionController>(
                *engine_, std::uint32_t(s), cfg_.admission));
            servers_[s]->set_admission(admission_.back().get());
        }
    }
    for (std::size_t c = 0; c < n_clients; ++c)
        clients_.push_back(std::make_unique<Client>(std::uint32_t(c), *engine_, cfg_,
                                                    *master_, *master_node_, servers_,
                                                    cluster_sink_, tracer_.get()));
    if (cfg_.faults.enabled) {
        injector_ = std::make_unique<FaultInjector>(*engine_, cfg_, *master_, servers_,
                                                    cluster_sink_);
        if (cfg_.faults.horizon > 0.0) {
            injector_->schedule(
                make_fault_plan(cfg_.faults, cfg_.n_chunkservers, cfg_.seed));
        } else {
            // horizon == 0: faults follow the run for as long as it has
            // live work (lazy daemon chains), so draining tails still see
            // crashes.
            injector_->schedule_lazy(cfg_.n_chunkservers, cfg_.seed);
        }
    }
}

FaultInjector& Cluster::inject_faults(FaultPlan plan) {
    if (injector_)
        throw std::logic_error("Cluster::inject_faults: injector already present");
    injector_ = std::make_unique<FaultInjector>(*engine_, cfg_, *master_, servers_,
                                                cluster_sink_);
    injector_->schedule(std::move(plan));
    return *injector_;
}

std::uint64_t Cluster::failovers() const {
    std::uint64_t n = 0;
    for (const auto& c : clients_) n += c->failovers();
    return n;
}

void Cluster::create_file(const std::string& name, std::uint64_t size) {
    master_->create_file(name, size);
}

std::uint64_t Cluster::submit(const RequestSpec& spec) {
    return submit(spec, {});
}

std::uint64_t Cluster::submit(const RequestSpec& spec,
                              std::function<void(double)> on_complete) {
    if (spec.client >= clients_.size())
        throw std::invalid_argument("Cluster::submit: unknown client");
    const std::uint64_t id = next_request_++;
    engine_->schedule_at(spec.time, [this, id, spec,
                                     on_complete = std::move(on_complete)]() mutable {
        // Record appends resolve their offset at issue time, serializing
        // on the master's append cursor.
        const std::uint64_t offset =
            spec.append ? master_->allocate_append(spec.file, spec.size)
                        : spec.offset;
        const auto type = spec.append ? trace::IoType::kWrite : spec.type;
        clients_[spec.client]->issue(
            id, spec.file, offset, spec.size, type,
            [this, on_complete = std::move(on_complete)](double latency) {
                if (latency >= 0.0) {
                    if (cfg_.collect_latencies) latencies_.push_back(latency);
                    ++completed_;
                }
                // Cluster accounting settles before the callback so a
                // closed-loop refill observes a consistent cluster.
                if (on_complete) on_complete(latency);
            });
    });
    return id;
}

void Cluster::submit_all(const std::vector<RequestSpec>& specs) {
    for (const auto& s : specs) submit(s);
}

void Cluster::run() { engine_->run(); }

MachineProfiler& Cluster::attach_profiler(double interval, double horizon) {
    if (profiler_) throw std::logic_error("Cluster: profiler already attached");
    profiler_ = std::make_unique<MachineProfiler>(*engine_, servers_, interval,
                                                  horizon);
    return *profiler_;
}

std::uint64_t Cluster::failed_requests() const {
    std::uint64_t n = 0;
    for (const auto& c : clients_) n += c->failed_requests();
    return n;
}

std::uint64_t Cluster::rejected_requests() const {
    std::uint64_t n = 0;
    for (const auto& c : clients_) n += c->rejections();
    return n;
}

AdmissionController* Cluster::admission(std::size_t i) {
    if (admission_.empty()) return nullptr;
    return admission_.at(i).get();
}

trace::TraceSet Cluster::traces() const {
    if (provider_ != nullptr)
        throw std::logic_error(
            "Cluster::traces: unavailable with a SinkProvider (the provider "
            "received the records as they were emitted)");
    trace::TraceSet out = *sink_;
    for (const auto& s : server_sinks_) out.merge(*s);
    out.spans = tracer_->spans();
    out.sort_by_time();
    return out;
}

trace::TraceSet Cluster::take_traces() {
    if (provider_ != nullptr)
        throw std::logic_error(
            "Cluster::take_traces: unavailable with a SinkProvider");
    trace::TraceSet out = std::move(*sink_);
    *sink_ = trace::TraceSet{};
    for (auto& s : server_sinks_) {
        out.merge(*s);
        *s = trace::TraceSet{};  // release the merged copy's source
    }
    out.spans = tracer_->take_spans();
    out.sort_by_time();
    return out;
}

trace::TraceSet Cluster::traces_for_server(std::size_t i) const {
    if (provider_ != nullptr)
        throw std::logic_error(
            "Cluster::traces_for_server: unavailable with a SinkProvider");
    if (i >= server_sinks_.size())
        throw std::out_of_range("Cluster::traces_for_server");
    trace::TraceSet out = *server_sinks_[i];
    // Request ids this server touched.
    std::set<std::uint64_t> ids;
    for (const auto& r : out.storage) ids.insert(r.request_id);
    for (const auto& r : out.cpu) ids.insert(r.request_id);
    for (const auto& r : out.memory) ids.insert(r.request_id);
    for (const auto& r : out.network) ids.insert(r.request_id);
    // Attach the matching end-to-end records, client-side network records
    // and spans from the shared sink.
    for (const auto& r : sink_->requests)
        if (ids.count(r.request_id) != 0) out.requests.push_back(r);
    for (const auto& r : sink_->network)
        if (ids.count(r.request_id) != 0) out.network.push_back(r);
    for (const auto& s : tracer_->spans())
        if (ids.count(s.trace_id) != 0) out.spans.push_back(s);
    out.sort_by_time();
    return out;
}

}  // namespace kooza::gfs
