#include "gfs/admission.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace kooza::gfs {

namespace {
struct AdmissionMetrics {
    obs::Counter& admitted = obs::counter("gfs.server.admission.admitted_total");
    obs::Counter& queued = obs::counter("gfs.server.admission.queued_total");
    obs::Counter& rejected = obs::counter("gfs.server.admission.rejected_total");
    obs::Gauge& tickets = obs::gauge("gfs.server.admission.tickets");
};

AdmissionMetrics& metrics() {
    static AdmissionMetrics m;
    return m;
}
}  // namespace

AdmissionController::AdmissionController(sim::Engine& engine, std::uint32_t server,
                                         AdmissionConfig cfg)
    : engine_(engine), server_(server), cfg_(cfg) {
    cfg_.min_tickets = std::max<std::uint32_t>(cfg_.min_tickets, 1);
    cfg_.max_tickets = std::max(cfg_.max_tickets, cfg_.min_tickets);
    tickets_ = std::clamp(cfg_.initial_tickets, cfg_.min_tickets, cfg_.max_tickets);
    best_tickets_ = tickets_;
    metrics().tickets.set(double(tickets_));
    arm_probe();
}

void AdmissionController::admit(std::function<void()> op,
                                std::function<void()> on_reject) {
    // Grant synchronously only when nobody is already waiting, so queued
    // ops keep FIFO order across ticket-count changes.
    if (queue_.empty() && in_flight_ < tickets_) {
        ++in_flight_;
        ++admitted_;
        metrics().admitted.add();
        op();
        return;
    }
    // A caller with no rejection path always queues: dropping its op
    // would leak the request. Otherwise the policy (and queue bound)
    // decides between waiting and bouncing.
    if (!on_reject || (cfg_.queue && queue_.size() < cfg_.queue_limit)) {
        queue_.push_back(std::move(op));
        metrics().queued.add();
        return;
    }
    ++rejected_;
    metrics().rejected.add();
    engine_.schedule_after(0.0, std::move(on_reject));
}

void AdmissionController::release() {
    ++completed_;
    ++window_completions_;
    if (in_flight_ > 0) --in_flight_;
    drain_queue();
}

void AdmissionController::drain_queue() {
    while (!queue_.empty() && in_flight_ < tickets_) {
        auto op = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
        ++admitted_;
        metrics().admitted.add();
        op();
    }
}

std::uint32_t AdmissionController::step_size() const noexcept {
    return std::max<std::uint32_t>(1, best_tickets_ / 4);
}

void AdmissionController::arm_probe() {
    if (cfg_.probe_interval <= 0.0) return;  // static ticket count
    // Daemon events never keep Engine::run() alive, so the probe chain
    // dies with the workload instead of spinning an idle cluster forever.
    engine_.schedule_daemon_at(engine_.now() + cfg_.probe_interval, [this] {
        probe();
        arm_probe();
    });
}

void AdmissionController::probe() {
    ++probes_;
    auto& w = windows_[tickets_];
    w.completions += double(window_completions_);
    ++w.windows;
    window_completions_ = 0;

    // Cumulative goodput per visited ticket count. A lone probe window
    // carries only a handful of completions — far noisier than the
    // hysteresis band — so every decision runs on the per-count averages,
    // which sharpen as counts are revisited.
    best_goodput_ = 0.0;
    for (const auto& [t, s] : windows_)
        best_goodput_ = std::max(
            best_goodput_, s.completions / (double(s.windows) * cfg_.probe_interval));
    for (const auto& [t, s] : windows_) {  // ordered: first hit = smallest
        const double g = s.completions / (double(s.windows) * cfg_.probe_interval);
        if (g >= best_goodput_ * (1.0 - cfg_.hysteresis)) {
            best_tickets_ = t;
            break;
        }
    }

    // Explore around the current best in a fixed above/below/re-measure
    // cycle. Re-measuring the best itself is essential: otherwise one
    // lucky window could hold the title forever.
    const std::uint32_t step = step_size();
    std::uint32_t next = best_tickets_;
    if (phase_ == 0)
        next = best_tickets_ + step;
    else if (phase_ == 1)
        next = best_tickets_ > step ? best_tickets_ - step : cfg_.min_tickets;
    phase_ = (phase_ + 1) % 3;
    tickets_ = std::clamp(next, cfg_.min_tickets, cfg_.max_tickets);
    metrics().tickets.set(double(tickets_));
    drain_queue();
}

}  // namespace kooza::gfs
