// Deterministic chunkserver fault injection.
//
// A FaultPlan is a time-ordered list of crash/recover events, either built
// from FaultConfig's MTBF/MTTR distributions (make_fault_plan) or supplied
// explicitly by tests. The plan is a pure function of (seed, server): each
// server draws its up/down intervals from a stream keyed with
// par::shard_seed, so the same seed yields a byte-identical plan — and
// hence identical traces — at any thread count (DESIGN.md section 6).
//
// The FaultInjector applies a plan to a live cluster: it flips chunkserver
// failure state at the scheduled times, tells the master after the
// heartbeat detection delay, and executes the master's re-replication
// plans as real device work (source disk read -> dest ingress transfer ->
// dest disk write), so repair traffic shows up in the captured traces as
// background load the way production re-replication does.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gfs/chunkserver.hpp"
#include "gfs/config.hpp"
#include "gfs/master.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "trace/sink.hpp"

namespace kooza::gfs {

/// One scheduled chunkserver state change.
struct FaultEvent {
    double time = 0.0;
    std::uint32_t server = 0;
    bool fail = true;  ///< true = crash, false = recover
};

using FaultPlan = std::vector<FaultEvent>;

/// Build the crash/recover schedule for `n_servers` servers from the
/// config's MTBF/MTTR exponentials. `cluster_seed` is mixed in when
/// cfg.seed is 0. Events are sorted by (time, server).
[[nodiscard]] FaultPlan make_fault_plan(const FaultConfig& cfg, std::size_t n_servers,
                                        std::uint64_t cluster_seed);

/// Repair requests carry ids from this base so they can never collide
/// with client request ids (which count up from 0); the requests stream
/// never lists them, so models treat repair device records as background
/// traffic.
inline constexpr std::uint64_t kRepairRequestIdBase = 1ull << 62;

/// Applies a FaultPlan to a cluster's servers and master.
class FaultInjector {
public:
    FaultInjector(sim::Engine& engine, const GfsConfig& cfg, Master& master,
                  std::vector<std::unique_ptr<ChunkServer>>& servers,
                  trace::Sink* sink);

    /// Schedule every event of the plan on the engine. Call before run();
    /// may be called once per injector.
    void schedule(FaultPlan plan);

    /// Lazy (drain-following) scheduling for FaultConfig::horizon == 0:
    /// instead of materializing a plan up front, each server carries a
    /// daemon event chain that draws the same per-server up/down
    /// exponentials as make_fault_plan on the fly, for as long as the
    /// simulation has live work. Slow-draining requests keep seeing
    /// crashes past the last arrival, and memory stays O(servers)
    /// regardless of how long the run drags on.
    void schedule_lazy(std::size_t n_servers, std::uint64_t cluster_seed);

    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
    [[nodiscard]] std::uint64_t recoveries() const noexcept { return recoveries_; }
    /// Re-replications that committed (copies that landed on a live dest).
    [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }

private:
    void apply(const FaultEvent& ev);
    /// One link of a lazy per-server daemon chain: apply the state flip,
    /// draw the next interval, re-arm.
    void arm_lazy(std::uint32_t server, std::shared_ptr<sim::Rng> rng, double at,
                  bool fail);
    /// Ask the master for repair work and execute it.
    void detect_and_repair();
    void run_repair(const RepairTask& task);
    [[nodiscard]] std::uint64_t chunk_base_lbn(ChunkHandle handle) const;
    void record(trace::FailureRecord::Kind kind, std::uint32_t server,
                std::uint64_t request_id, double duration);

    sim::Engine& engine_;
    const GfsConfig& cfg_;
    Master& master_;
    std::vector<std::unique_ptr<ChunkServer>>& servers_;
    trace::Sink* sink_;
    FaultPlan plan_;
    bool lazy_ = false;
    std::uint64_t next_repair_id_ = kRepairRequestIdBase;
    std::uint64_t crashes_ = 0;
    std::uint64_t recoveries_ = 0;
    std::uint64_t repairs_ = 0;
};

}  // namespace kooza::gfs
