// kooza_par — shard-level parallel execution for the KOOZA pipeline.
//
// A fixed-size thread pool plus parallel_for / parallel_map helpers used
// by the trainer (per-type model fits), the replayer (per-server shards),
// the SQS fleet sampler and the bench harness. The design invariant is
// bit-determinism regardless of thread count:
//
//  * work items are indexed, and every result lands in the slot of its
//    index — merging is always "by shard index", never by completion
//    order;
//  * any randomness inside a shard comes from a std::mt19937_64 seeded
//    via shard_seed(run_seed, shard_index) (a splitmix64 mix), so the
//    stream a shard sees is a pure function of the run seed and its
//    index, not of which thread picked it up;
//  * a parallel_for issued from inside a pool worker runs inline, so
//    nested parallel sections (trainer inside cluster-train inside a
//    bench sweep) cannot deadlock the fixed pool.
//
// The process-wide pool is sized by set_threads() / the KOOZA_THREADS
// environment variable / std::thread::hardware_concurrency, in that
// precedence order; the `--threads N` CLI flags route to set_threads().
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace kooza::par {

/// splitmix64 mixing step (Steele et al.) — the standard way to expand
/// one 64-bit seed into well-separated per-shard seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Seed for shard `shard` of a run seeded with `run_seed`. Independent of
/// thread count and schedule; distinct shards get decorrelated streams
/// even for adjacent run seeds.
constexpr std::uint64_t shard_seed(std::uint64_t run_seed,
                                   std::uint64_t shard) noexcept {
    return splitmix64(splitmix64(run_seed) ^ splitmix64(0x517cc1b727220a95ULL + shard));
}

/// Fixed-size thread pool. `parallel_for(n, fn)` runs fn(0..n-1) across
/// the workers plus the calling thread and blocks until every index has
/// finished; the first exception thrown by any index is rethrown in the
/// caller. A pool of size 1 (or n <= 1, or a call from inside a worker)
/// executes inline in index order.
class ThreadPool {
public:
    /// n_threads counts execution lanes including the caller; 0 means
    /// std::thread::hardware_concurrency. A pool of size N spawns N-1
    /// worker threads.
    explicit ThreadPool(std::size_t n_threads = 0);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Execution lanes (workers + caller).
    [[nodiscard]] std::size_t size() const noexcept;

    /// True on a thread currently executing pool work (any pool).
    [[nodiscard]] static bool in_worker() noexcept;

    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// parallel_for collecting fn(i) into a vector by index. The result
    /// type must be default-constructible and move-assignable.
    template <typename Fn>
    auto parallel_map(std::size_t n, Fn&& fn)
        -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
        std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> out(n);
        parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

private:
    struct Impl;
    Impl* impl_;
};

/// Desired process-wide parallelism (>= 1): the last set_threads() value,
/// else KOOZA_THREADS, else hardware concurrency.
[[nodiscard]] std::size_t threads() noexcept;

/// Set the process-wide parallelism (0 = auto) and rebuild the shared
/// pool at the new size. Not safe to call concurrently with parallel
/// work; call it at startup (the CLI tools' --threads flag) or between
/// pipeline stages (tests comparing 1 vs N threads).
void set_threads(std::size_t n);

/// The process-wide pool, built on first use at threads() lanes.
[[nodiscard]] ThreadPool& pool();

}  // namespace kooza::par
