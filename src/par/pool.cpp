#include "par/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace kooza::par {

namespace {

thread_local bool t_in_worker = false;

std::size_t resolve_auto_threads() {
    if (const char* env = std::getenv("KOOZA_THREADS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && v > 0) return std::size_t(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : std::size_t(hc);
}

}  // namespace

struct ThreadPool::Impl {
    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    bool stop = false;

    void worker_loop() {
        t_in_worker = true;
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lk(mu);
                cv.wait(lk, [&] { return stop || !tasks.empty(); });
                if (stop && tasks.empty()) return;
                task = std::move(tasks.front());
                tasks.pop_front();
            }
            task();
        }
    }
};

ThreadPool::ThreadPool(std::size_t n_threads) : impl_(new Impl) {
    if (n_threads == 0) n_threads = resolve_auto_threads();
    for (std::size_t i = 0; i + 1 < n_threads; ++i)
        impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    for (auto& w : impl_->workers) w.join();
    delete impl_;
}

std::size_t ThreadPool::size() const noexcept { return impl_->workers.size() + 1; }

bool ThreadPool::in_worker() noexcept { return t_in_worker; }

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (!fn) throw std::invalid_argument("ThreadPool::parallel_for: empty function");
    // Inline paths: trivial loops, a 1-lane pool, and nested calls from a
    // worker (the fixed pool must never block a worker on more pool work).
    if (n == 1 || impl_->workers.empty() || t_in_worker) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    struct ForState {
        std::atomic<std::size_t> next{0};
        std::size_t n = 0;
        const std::function<void(std::size_t)>* fn = nullptr;
        std::mutex mu;
        std::condition_variable done_cv;
        std::size_t active_jobs = 0;
        std::exception_ptr error;
    };
    auto state = std::make_shared<ForState>();
    state->n = n;
    state->fn = &fn;

    auto run_lane = [](ForState& st) {
        for (;;) {
            const std::size_t i = st.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= st.n) return;
            try {
                (*st.fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(st.mu);
                if (!st.error) st.error = std::current_exception();
                // Stop handing out further indices after a failure.
                st.next.store(st.n, std::memory_order_relaxed);
            }
        }
    };

    const std::size_t jobs = std::min(impl_->workers.size(), n - 1);
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        state->active_jobs = jobs;
        for (std::size_t j = 0; j < jobs; ++j) {
            impl_->tasks.emplace_back([state, run_lane] {
                run_lane(*state);
                {
                    std::lock_guard<std::mutex> slk(state->mu);
                    --state->active_jobs;
                }
                state->done_cv.notify_one();
            });
        }
    }
    impl_->cv.notify_all();

    run_lane(*state);  // the caller is a lane too

    std::unique_lock<std::mutex> lk(state->mu);
    state->done_cv.wait(lk, [&] { return state->active_jobs == 0; });
    if (state->error) std::rethrow_exception(state->error);
}

namespace {

std::mutex g_pool_mu;
std::size_t g_threads = 0;  // 0 = auto
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

std::size_t threads() noexcept {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    return g_threads != 0 ? g_threads : resolve_auto_threads();
}

void set_threads(std::size_t n) {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    g_threads = n;
    g_pool.reset();  // rebuilt at the new size on next pool() call
}

ThreadPool& pool() {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(g_threads != 0 ? g_threads
                                                             : resolve_auto_threads());
    return *g_pool;
}

}  // namespace kooza::par
