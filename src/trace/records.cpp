#include "trace/records.hpp"

#include <stdexcept>

namespace kooza::trace {

const char* to_string(IoType t) noexcept {
    return t == IoType::kRead ? "read" : "write";
}

IoType iotype_from_string(const std::string& s) {
    if (s == "read") return IoType::kRead;
    if (s == "write") return IoType::kWrite;
    throw std::invalid_argument("iotype_from_string: '" + s + "'");
}

const char* to_string(NetworkRecord::Direction d) noexcept {
    return d == NetworkRecord::Direction::kRx ? "rx" : "tx";
}

NetworkRecord::Direction direction_from_string(const std::string& s) {
    if (s == "rx") return NetworkRecord::Direction::kRx;
    if (s == "tx") return NetworkRecord::Direction::kTx;
    throw std::invalid_argument("direction_from_string: '" + s + "'");
}

const char* to_string(FailureRecord::Kind k) noexcept {
    switch (k) {
        case FailureRecord::Kind::kCrash: return "crash";
        case FailureRecord::Kind::kRecover: return "recover";
        case FailureRecord::Kind::kFailover: return "failover";
        case FailureRecord::Kind::kRepair: return "repair";
        case FailureRecord::Kind::kRequestFailed: return "request_failed";
        case FailureRecord::Kind::kAdmissionReject: return "admission_reject";
    }
    return "crash";
}

FailureRecord::Kind failure_kind_from_string(const std::string& s) {
    if (s == "crash") return FailureRecord::Kind::kCrash;
    if (s == "recover") return FailureRecord::Kind::kRecover;
    if (s == "failover") return FailureRecord::Kind::kFailover;
    if (s == "repair") return FailureRecord::Kind::kRepair;
    if (s == "request_failed") return FailureRecord::Kind::kRequestFailed;
    if (s == "admission_reject") return FailureRecord::Kind::kAdmissionReject;
    throw std::invalid_argument("failure_kind_from_string: '" + s + "'");
}

}  // namespace kooza::trace
