#include "trace/records.hpp"

#include <stdexcept>

namespace kooza::trace {

const char* to_string(IoType t) noexcept {
    return t == IoType::kRead ? "read" : "write";
}

IoType iotype_from_string(const std::string& s) {
    if (s == "read") return IoType::kRead;
    if (s == "write") return IoType::kWrite;
    throw std::invalid_argument("iotype_from_string: '" + s + "'");
}

const char* to_string(NetworkRecord::Direction d) noexcept {
    return d == NetworkRecord::Direction::kRx ? "rx" : "tx";
}

}  // namespace kooza::trace
