#include "trace/io.hpp"

#include <stdexcept>

#include "trace/binary.hpp"
#include "trace/csv.hpp"

namespace kooza::trace {

namespace fs = std::filesystem;

const char* to_string(Format f) noexcept {
    return f == Format::kBinary ? "bin" : "csv";
}

std::optional<Format> format_from_string(const std::string& s) {
    if (s == "csv") return Format::kCsv;
    if (s == "bin" || s == "binary") return Format::kBinary;
    return std::nullopt;
}

Format detect_format(const fs::path& dir) {
    for (const auto* stem : kStreamStems)
        if (fs::exists(dir / (std::string(stem) + ".bin"))) return Format::kBinary;
    for (const auto* stem : kStreamStems)
        if (fs::exists(dir / (std::string(stem) + ".csv"))) return Format::kCsv;
    throw std::runtime_error("detect_format: " + dir.string() +
                             " holds no trace streams (neither .bin nor .csv)");
}

TraceSet read_traces(const fs::path& dir, Format f) {
    return f == Format::kBinary ? read_binary(dir) : read_csv(dir);
}

TraceSet read_traces(const fs::path& dir) {
    return read_traces(dir, detect_format(dir));
}

void write_traces(const TraceSet& ts, const fs::path& dir, Format f) {
    if (f == Format::kBinary)
        write_binary(ts, dir);
    else
        write_csv(ts, dir);
}

}  // namespace kooza::trace
