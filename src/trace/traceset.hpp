// TraceSet: everything one monitored server (or cluster) emitted — the
// four per-subsystem record streams, end-to-end request records, and the
// Dapper-style span collection. This is the sole training input for every
// model in the library.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/records.hpp"
#include "trace/span.hpp"

namespace kooza::trace {

struct TraceSet {
    std::vector<StorageRecord> storage;
    std::vector<CpuRecord> cpu;
    std::vector<MemoryRecord> memory;
    std::vector<NetworkRecord> network;
    std::vector<RequestRecord> requests;
    std::vector<FailureRecord> failures;  ///< crash/recover/failover/repair events
    std::vector<Span> spans;

    /// Append everything from `other` (record order is preserved per
    /// stream; callers re-sort by time if they interleave sources).
    void merge(const TraceSet& other);

    /// Total record count across all streams (spans included).
    [[nodiscard]] std::size_t total_records() const noexcept;

    [[nodiscard]] bool empty() const noexcept { return total_records() == 0; }

    void clear();

    /// Sort every stream by timestamp (requests by arrival, spans by start).
    void sort_by_time();

    /// One-line inventory, e.g. "storage=120 cpu=240 ... spans=60".
    [[nodiscard]] std::string summary() const;
};

}  // namespace kooza::trace
