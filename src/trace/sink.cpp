#include "trace/sink.hpp"

namespace kooza::trace {

// Out-of-line virtuals anchor the vtables in kooza_trace.
Sink::~Sink() = default;

void Sink::open_hold(StreamId, double) {}
void Sink::close_hold(StreamId, double) {}

SinkProvider::~SinkProvider() = default;

}  // namespace kooza::trace
