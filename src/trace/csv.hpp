// CSV persistence for TraceSets, so captured workloads can be stored,
// shared and re-trained on — the role production trace archives (SNIA,
// IISWC traces) play for the papers the survey covers.
//
// Layout: one file per stream inside a directory —
//   storage.csv, cpu.csv, memory.csv, network.csv, requests.csv,
//   failures.csv, spans.csv
// Each file has a header row; fields are comma-separated, no quoting
// (span names and annotations must not contain commas or newlines).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "trace/traceset.hpp"

namespace kooza::trace {

/// Write every stream into `dir` (created if missing).
/// Throws std::runtime_error on I/O failure, or when a span name contains
/// a ',' or line break (unrepresentable without quoting — the binary
/// format's string table has no such restriction).
void write_csv(const TraceSet& ts, const std::filesystem::path& dir);

/// Read a TraceSet previously written by write_csv. Every stream file
/// must be present — a missing file means a partial capture and throws
/// (counted in trace.csv.missing_files_total); a malformed row throws
/// std::runtime_error with the file and line number.
[[nodiscard]] TraceSet read_csv(const std::filesystem::path& dir);

/// Split one CSV line on commas (no quoting/escaping).
[[nodiscard]] std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace kooza::trace
