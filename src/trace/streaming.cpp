#include "trace/streaming.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace kooza::trace {

namespace {

struct StreamMetrics {
    obs::Counter& records = obs::counter("trace.stream.records_total");
    obs::Counter& chunks = obs::counter("trace.stream.chunks_flushed_total");
    obs::Gauge& pending = obs::gauge("trace.stream.pending_records");
};

StreamMetrics& metrics() {
    static StreamMetrics m;
    return m;
}

}  // namespace

/// One server group's Sink facade: tags records with (group, per-stream
/// sequence) and forwards them — and the hold protocol — to the owner.
class StreamingShard final : public Sink {
public:
    StreamingShard(StreamingSink& owner, std::uint32_t group) noexcept
        : owner_(&owner), group_(group) {}

    void append(const StorageRecord& r) override {
        push(StreamId::kStorage, r.time, r);
    }
    void append(const CpuRecord& r) override { push(StreamId::kCpu, r.time, r); }
    void append(const MemoryRecord& r) override {
        push(StreamId::kMemory, r.time, r);
    }
    void append(const NetworkRecord& r) override {
        push(StreamId::kNetwork, r.time, r);
    }
    void append(const RequestRecord& r) override {
        push(StreamId::kRequests, r.arrival, r);
    }
    void append(const FailureRecord& r) override {
        push(StreamId::kFailures, r.time, r);
    }
    void append(const Span& s) override { push(StreamId::kSpans, s.start, s); }

    void open_hold(StreamId stream, double key) override {
        owner_->open(stream, key);
    }
    void close_hold(StreamId stream, double key) override {
        owner_->close(stream, key);
    }

private:
    template <typename R>
    void push(StreamId stream, double key, const R& rec) {
        owner_->push(stream, group_, seq_[std::size_t(stream)]++, key,
                     StreamingSink::AnyRecord(rec));
    }

    StreamingSink* owner_;
    std::uint32_t group_;
    std::array<std::uint64_t, kStreamCount> seq_{};
};

StreamingSink::StreamingSink(Options opts, std::size_t n_groups)
    : opts_(std::move(opts)), writer_(opts_.dir, opts_.spill_buffer_bytes) {
    if (n_groups == 0)
        throw std::invalid_argument("StreamingSink: need at least one group");
    if (opts_.chunk_records == 0)
        throw std::invalid_argument("StreamingSink: chunk_records must be > 0");
    shards_.reserve(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g)
        shards_.push_back(
            std::make_unique<StreamingShard>(*this, std::uint32_t(g)));
}

StreamingSink::~StreamingSink() {
    // finish() can throw; cover only the forgot-to-finish path.
    if (!finished_) {
        try {
            finish();
        } catch (...) {
        }
    }
}

Sink& StreamingSink::group(std::size_t g) {
    if (g >= shards_.size())
        throw std::out_of_range("StreamingSink::group: " + std::to_string(g));
    return *shards_[g];
}

void StreamingSink::push(StreamId stream, std::uint32_t group,
                         std::uint64_t seq, double key, AnyRecord rec) {
    if (finished_)
        throw std::logic_error("StreamingSink: append after finish()");
    auto& st = streams_[std::size_t(stream)];
    st.heap.push(Pending{key, group, seq, std::move(rec)});
    ++seen_;
    ++pending_;
    metrics().records.add();
    metrics().pending.set(double(pending_));
    release(st, /*drain_all=*/false);
}

void StreamingSink::open(StreamId stream, double key) {
    streams_[std::size_t(stream)].holds.insert(key);
}

void StreamingSink::close(StreamId stream, double key) {
    auto& st = streams_[std::size_t(stream)];
    const auto it = st.holds.find(key);
    if (it == st.holds.end())
        throw std::logic_error("StreamingSink: close_hold without open_hold");
    st.holds.erase(it);
    release(st, /*drain_all=*/false);
}

void StreamingSink::release(StreamState& st, bool drain_all) {
    double watermark = std::numeric_limits<double>::infinity();
    if (!drain_all) {
        // A held key can still receive its record; the simulation clock
        // bounds streams with no open holds (an emitter can only produce
        // new records keyed at or after now).
        if (!st.holds.empty()) watermark = *st.holds.begin();
        if (clock_) watermark = std::min(watermark, clock_());
    }
    while (!st.heap.empty() &&
           (drain_all || st.heap.top().key < watermark)) {
        std::visit([&st](const auto& r) { st.chunk.add(r); },
                   st.heap.top().rec);
        st.heap.pop();
        --pending_;
        ++st.chunk_count;
        if (st.chunk_count >= opts_.chunk_records) {
            writer_.append(st.chunk);
            st.chunk.clear();
            st.chunk_count = 0;
            metrics().chunks.add();
        }
    }
}

void StreamingSink::finish() {
    if (finished_) return;
    for (std::size_t i = 0; i < streams_.size(); ++i)
        if (!streams_[i].holds.empty())
            throw std::logic_error(
                "StreamingSink::finish: stream " + std::to_string(i) + " has " +
                std::to_string(streams_[i].holds.size()) +
                " open holds (emitter leaked a hold)");
    for (auto& st : streams_) {
        release(st, /*drain_all=*/true);
        if (st.chunk_count > 0) {
            writer_.append(st.chunk);
            st.chunk.clear();
            st.chunk_count = 0;
            metrics().chunks.add();
        }
    }
    metrics().pending.set(0.0);
    writer_.finish();
    finished_ = true;
}

}  // namespace kooza::trace
