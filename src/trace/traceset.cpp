#include "trace/traceset.hpp"

#include <algorithm>
#include <sstream>

namespace kooza::trace {

void TraceSet::merge(const TraceSet& other) {
    storage.insert(storage.end(), other.storage.begin(), other.storage.end());
    cpu.insert(cpu.end(), other.cpu.begin(), other.cpu.end());
    memory.insert(memory.end(), other.memory.begin(), other.memory.end());
    network.insert(network.end(), other.network.begin(), other.network.end());
    requests.insert(requests.end(), other.requests.begin(), other.requests.end());
    failures.insert(failures.end(), other.failures.begin(), other.failures.end());
    spans.insert(spans.end(), other.spans.begin(), other.spans.end());
}

std::size_t TraceSet::total_records() const noexcept {
    return storage.size() + cpu.size() + memory.size() + network.size() +
           requests.size() + failures.size() + spans.size();
}

void TraceSet::clear() {
    storage.clear();
    cpu.clear();
    memory.clear();
    network.clear();
    requests.clear();
    failures.clear();
    spans.clear();
}

void TraceSet::sort_by_time() {
    auto by_time = [](const auto& a, const auto& b) { return a.time < b.time; };
    std::stable_sort(storage.begin(), storage.end(), by_time);
    std::stable_sort(cpu.begin(), cpu.end(), by_time);
    std::stable_sort(memory.begin(), memory.end(), by_time);
    std::stable_sort(network.begin(), network.end(), by_time);
    std::stable_sort(requests.begin(), requests.end(),
                     [](const RequestRecord& a, const RequestRecord& b) {
                         return a.arrival < b.arrival;
                     });
    std::stable_sort(failures.begin(), failures.end(), by_time);
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) { return a.start < b.start; });
}

std::string TraceSet::summary() const {
    std::ostringstream os;
    os << "storage=" << storage.size() << " cpu=" << cpu.size()
       << " memory=" << memory.size() << " network=" << network.size()
       << " requests=" << requests.size() << " failures=" << failures.size()
       << " spans=" << spans.size();
    return os.str();
}

}  // namespace kooza::trace
