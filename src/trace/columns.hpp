// trace::ColumnChunk — a struct-of-arrays record buffer in kooza.trace/1
// wire encoding.
//
// StreamingSink used to stage released records in a TraceSet (array of
// structs), which BinaryWriter then re-walked field by field on every
// chunk flush. ColumnChunk does the column split once, at release time:
// each numeric stream is held as per-column little-endian byte vectors —
// exactly the bytes BinaryWriter's sections contain — so a chunk flush is
// a handful of column splices instead of a per-record, per-field re-pack.
// Spans stay array-of-structs: their name column is an index into the
// writer's deduplicated string table, which only the writer can assign.
//
// The field order and widths here must match binary.cpp's stream schemas
// byte for byte (the schema hash in every file header is the tripwire).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "trace/records.hpp"
#include "trace/sink.hpp"

namespace kooza::trace {

class ColumnChunk {
public:
    void add(const StorageRecord& r) {
        auto& s = streams_[std::size_t(StreamId::kStorage)];
        push_f64(s.cols[0], r.time);
        push_u64(s.cols[1], r.request_id);
        push_u64(s.cols[2], r.lbn);
        push_u64(s.cols[3], r.size_bytes);
        push_u8(s.cols[4], std::uint8_t(r.type));
        push_f64(s.cols[5], r.latency);
        ++s.count;
    }
    void add(const CpuRecord& r) {
        auto& s = streams_[std::size_t(StreamId::kCpu)];
        push_f64(s.cols[0], r.time);
        push_u64(s.cols[1], r.request_id);
        push_f64(s.cols[2], r.busy_seconds);
        push_f64(s.cols[3], r.utilization);
        ++s.count;
    }
    void add(const MemoryRecord& r) {
        auto& s = streams_[std::size_t(StreamId::kMemory)];
        push_f64(s.cols[0], r.time);
        push_u64(s.cols[1], r.request_id);
        push_u32(s.cols[2], r.bank);
        push_u64(s.cols[3], r.size_bytes);
        push_u8(s.cols[4], std::uint8_t(r.type));
        ++s.count;
    }
    void add(const NetworkRecord& r) {
        auto& s = streams_[std::size_t(StreamId::kNetwork)];
        push_f64(s.cols[0], r.time);
        push_u64(s.cols[1], r.request_id);
        push_u64(s.cols[2], r.size_bytes);
        push_u8(s.cols[3], std::uint8_t(r.direction));
        push_f64(s.cols[4], r.latency);
        ++s.count;
    }
    void add(const RequestRecord& r) {
        auto& s = streams_[std::size_t(StreamId::kRequests)];
        push_u64(s.cols[0], r.request_id);
        push_u8(s.cols[1], std::uint8_t(r.type));
        push_f64(s.cols[2], r.arrival);
        push_f64(s.cols[3], r.completion);
        push_u64(s.cols[4], r.bytes);
        ++s.count;
    }
    void add(const FailureRecord& r) {
        auto& s = streams_[std::size_t(StreamId::kFailures)];
        push_f64(s.cols[0], r.time);
        push_u64(s.cols[1], r.request_id);
        push_u32(s.cols[2], r.server);
        push_u8(s.cols[3], std::uint8_t(r.kind));
        push_f64(s.cols[4], r.duration);
        ++s.count;
    }
    void add(const Span& s) { spans_.push_back(s); }

    /// Records buffered across all streams.
    [[nodiscard]] std::uint64_t records() const noexcept {
        std::uint64_t n = spans_.size();
        for (const auto& s : streams_) n += s.count;
        return n;
    }

    /// Drop contents, keeping column capacity for the next chunk.
    void clear() noexcept {
        for (auto& s : streams_) {
            for (auto& c : s.cols) c.clear();
            s.count = 0;
        }
        spans_.clear();
    }

private:
    friend class BinaryWriter;

    /// Max columns of any numeric stream (storage has 6).
    static constexpr std::size_t kMaxCols = 6;

    struct StreamCols {
        std::array<std::vector<std::uint8_t>, kMaxCols> cols;
        std::uint64_t count = 0;
    };

    static void push_u8(std::vector<std::uint8_t>& b, std::uint8_t v) {
        b.push_back(v);
    }
    template <typename T>
    static void push_raw(std::vector<std::uint8_t>& b, T v) {
        const auto old = b.size();
        b.resize(old + sizeof(T));
        std::memcpy(b.data() + old, &v, sizeof(T));
    }
    static void push_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
        push_raw(b, v);
    }
    static void push_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
        push_raw(b, v);
    }
    static void push_f64(std::vector<std::uint8_t>& b, double v) {
        push_raw(b, std::bit_cast<std::uint64_t>(v));
    }

    std::array<StreamCols, kStreamCount> streams_;
    std::vector<Span> spans_;
};

}  // namespace kooza::trace
