#include "trace/span.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "trace/sink.hpp"

namespace kooza::trace {

SpanTracer::SpanTracer(std::uint64_t sample_every) : every_(sample_every) {
    if (sample_every == 0)
        throw std::invalid_argument("SpanTracer: sample_every must be >= 1");
}

bool SpanTracer::sampled(TraceId trace) const noexcept { return trace % every_ == 0; }

SpanId SpanTracer::start_span(TraceId trace, SpanId parent, std::string name,
                              double now) {
    ++ops_req_;
    if (!sampled(trace)) return 0;
    ++ops_rec_;
    const SpanId id = next_id_++;
    Span s;
    s.trace_id = trace;
    s.span_id = id;
    s.parent_id = parent;
    s.name = std::move(name);
    s.start = now;
    s.end = now;
    open_.emplace(id, std::move(s));
    // Streaming mode: the span is keyed at its start but only appended
    // when it closes, so hold the spans stream until then.
    if (sink_) sink_->open_hold(StreamId::kSpans, now);
    return id;
}

void SpanTracer::annotate(SpanId span, double now, std::string message) {
    ++ops_req_;
    if (span == 0) return;
    auto it = open_.find(span);
    if (it == open_.end()) throw std::logic_error("SpanTracer::annotate: unknown span");
    ++ops_rec_;
    it->second.annotations.push_back(Annotation{now, std::move(message)});
}

void SpanTracer::end_span(SpanId span, double now) {
    ++ops_req_;
    if (span == 0) return;
    auto it = open_.find(span);
    if (it == open_.end()) throw std::logic_error("SpanTracer::end_span: unknown span");
    ++ops_rec_;
    it->second.end = now;
    phase_histogram(it->second.name).observe_seconds(now - it->second.start);
    if (sink_) {
        const double start = it->second.start;
        sink_->append(it->second);
        sink_->close_hold(StreamId::kSpans, start);
    } else {
        done_.push_back(std::move(it->second));
    }
    open_.erase(it);
}

obs::Histogram& SpanTracer::phase_histogram(const std::string& name) {
    auto it = phase_hist_.find(name);
    if (it == phase_hist_.end())
        it = phase_hist_
                 .emplace(name, &obs::histogram("trace.phase." + name + ".duration_ns",
                                                obs::Unit::kNanoseconds))
                 .first;
    return *it->second;
}

std::size_t SpanTracer::sampled_trace_count() const {
    std::set<TraceId> ids;
    for (const auto& s : done_) ids.insert(s.trace_id);
    return ids.size();
}

void SpanTracer::clear() {
    open_.clear();
    done_.clear();
    ops_req_ = ops_rec_ = 0;
}

SpanTree::SpanTree(const std::vector<Span>& all, TraceId trace) : trace_(trace) {
    for (const auto& s : all)
        if (s.trace_id == trace) spans_.push_back(s);
    if (spans_.empty()) throw std::invalid_argument("SpanTree: no spans for trace");
    // Order by start time; ties break on creation order (span id), which
    // puts a parent before children opened at the same instant.
    std::stable_sort(spans_.begin(), spans_.end(), [](const Span& a, const Span& b) {
        if (a.start != b.start) return a.start < b.start;
        return a.span_id < b.span_id;
    });
    // Validate there is exactly one root.
    std::size_t roots = 0;
    for (const auto& s : spans_)
        if (s.parent_id == 0) ++roots;
    if (roots == 0) throw std::invalid_argument("SpanTree: no root span");
}

const Span& SpanTree::root() const {
    for (const auto& s : spans_)
        if (s.parent_id == 0) return s;
    throw std::logic_error("SpanTree::root: unreachable");
}

std::vector<const Span*> SpanTree::children_of(SpanId parent) const {
    std::vector<const Span*> out;
    for (const auto& s : spans_)
        if (s.parent_id == parent) out.push_back(&s);
    return out;
}

std::vector<std::string> SpanTree::phase_sequence() const {
    std::vector<std::string> out;
    out.reserve(spans_.size());
    for (const auto& s : spans_) out.push_back(s.name);
    return out;
}

std::vector<double> SpanTree::phase_durations() const {
    std::vector<double> out;
    out.reserve(spans_.size());
    for (const auto& s : spans_) out.push_back(s.duration());
    return out;
}

double SpanTree::total_duration() const { return root().duration(); }

void SpanTree::render_node(const Span& s, int depth, std::string& out) const {
    std::ostringstream os;
    os << std::string(std::size_t(depth) * 2, ' ') << s.name << " ["
       << s.duration() * 1e3 << " ms]";
    for (const auto& a : s.annotations) os << " {" << a.message << "}";
    os << "\n";
    out += os.str();
    for (const Span* c : children_of(s.span_id)) render_node(*c, depth + 1, out);
}

std::string SpanTree::render() const {
    std::string out;
    render_node(root(), 0, out);
    return out;
}

std::vector<TraceId> SpanTree::trace_ids(const std::vector<Span>& all) {
    std::set<TraceId> ids;
    for (const auto& s : all) ids.insert(s.trace_id);
    return {ids.begin(), ids.end()};
}

}  // namespace kooza::trace
