// Dapper-style request tracing: trees of nested spans with annotations and
// 1-in-N sampling.
//
// The paper describes Dapper (Sigelman '10): "trees of nested RPCs, spans
// (i.e. tree nodes) and annotations", with "sampling 1 out of 1000
// requests" for low overhead. SpanTracer reproduces that data model; the
// KOOZA trainer consumes span trees to learn the structure queue, and
// ablation A2 sweeps the sampling rate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kooza::obs {
class Histogram;
}

namespace kooza::trace {

class Sink;
enum class StreamId : std::uint8_t;

using TraceId = std::uint64_t;  ///< global request identifier
using SpanId = std::uint64_t;   ///< unique within the tracer

/// Timestamped note inside a span (Dapper annotations).
struct Annotation {
    double time = 0.0;
    std::string message;
};

/// One node of a request's RPC/phase tree.
struct Span {
    TraceId trace_id = 0;
    SpanId span_id = 0;
    SpanId parent_id = 0;  ///< 0 = root span
    std::string name;      ///< e.g. "net.rx", "cpu.verify", "disk.io"
    double start = 0.0;
    double end = 0.0;
    std::vector<Annotation> annotations;

    [[nodiscard]] double duration() const noexcept { return end - start; }
};

/// Collects spans with deterministic 1-in-N head sampling (a trace is
/// either fully recorded or fully dropped, as in Dapper).
class SpanTracer {
public:
    /// @param sample_every record 1 out of `sample_every` traces (>= 1)
    explicit SpanTracer(std::uint64_t sample_every = 1);

    /// Head-sampling decision for a trace id (deterministic: id % N == 0).
    [[nodiscard]] bool sampled(TraceId trace) const noexcept;

    /// Open a span; returns its id (0 if the trace is not sampled, which
    /// the other calls treat as a no-op handle).
    SpanId start_span(TraceId trace, SpanId parent, std::string name, double now);

    /// Attach an annotation to an open span. No-op for handle 0.
    void annotate(SpanId span, double now, std::string message);

    /// Close a span. No-op for handle 0. Throws std::logic_error on an
    /// unknown/closed non-zero handle.
    void end_span(SpanId span, double now);

    /// Route closed spans into `sink` (spans stream, held from start to
    /// close per the sink hold protocol) instead of retaining them in
    /// spans() — the streaming-capture mode, where span memory must stay
    /// bounded by the in-flight set. Pass nullptr to restore collection.
    void set_sink(Sink* sink) noexcept { sink_ = sink; }

    /// All closed spans, in completion order (empty while a sink is set).
    [[nodiscard]] const std::vector<Span>& spans() const noexcept { return done_; }

    /// Move the closed spans out (the tracer keeps running but starts
    /// empty) — lets one-shot captures avoid a full copy.
    [[nodiscard]] std::vector<Span> take_spans() noexcept {
        return std::move(done_);
    }

    /// Bookkeeping for the overhead ablation: how many span operations
    /// were requested vs actually recorded.
    [[nodiscard]] std::uint64_t operations_requested() const noexcept { return ops_req_; }
    [[nodiscard]] std::uint64_t operations_recorded() const noexcept { return ops_rec_; }

    /// Distinct sampled trace ids with at least one closed span.
    [[nodiscard]] std::size_t sampled_trace_count() const;

    void clear();

private:
    /// Per-phase duration histogram ("trace.phase.<name>.duration_ns"),
    /// fed at every end_span so p50/p95/p99 per phase are first-class in
    /// the metrics export even when spans are sampled out of the trace.
    [[nodiscard]] obs::Histogram& phase_histogram(const std::string& name);

    std::uint64_t every_;
    SpanId next_id_ = 1;
    Sink* sink_ = nullptr;
    std::map<std::string, obs::Histogram*> phase_hist_;
    std::map<SpanId, Span> open_;
    std::vector<Span> done_;
    std::uint64_t ops_req_ = 0;
    std::uint64_t ops_rec_ = 0;
};

/// A reassembled request tree.
class SpanTree {
public:
    /// Build the tree for one trace id from a span collection. Throws if
    /// the trace has no spans or no root.
    SpanTree(const std::vector<Span>& all, TraceId trace);

    [[nodiscard]] TraceId trace_id() const noexcept { return trace_; }
    [[nodiscard]] const Span& root() const;
    [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
    [[nodiscard]] std::vector<const Span*> children_of(SpanId parent) const;

    /// Names of all spans in start-time order — the phase sequence the
    /// KOOZA structure queue is trained on.
    [[nodiscard]] std::vector<std::string> phase_sequence() const;

    /// Durations matching phase_sequence().
    [[nodiscard]] std::vector<double> phase_durations() const;

    /// End-to-end duration (root span).
    [[nodiscard]] double total_duration() const;

    /// Indented one-line-per-span rendering (for Fig. 1 reproduction).
    [[nodiscard]] std::string render() const;

    /// All trace ids present in a span collection.
    [[nodiscard]] static std::vector<TraceId> trace_ids(const std::vector<Span>& all);

private:
    void render_node(const Span& s, int depth, std::string& out) const;

    TraceId trace_;
    std::vector<Span> spans_;  ///< sorted by start time
};

}  // namespace kooza::trace
