// kooza.trace/1 — versioned binary columnar persistence for TraceSets,
// the fast path next to the human-readable CSV layout (csv.hpp).
//
// Layout: one file per stream inside a directory —
//   storage.bin, cpu.bin, memory.bin, network.bin, requests.bin,
//   failures.bin, spans.bin
// Each file is:
//   [header]   magic "KOOZATR1", u32 version, u32 stream id,
//              u64 schema hash (FNV-1a over the column spec string),
//              u64 record count, u32 CRC32 of the header bytes
//   [columns]  one section per column, in schema order: u64 byte length,
//              the column's values packed little-endian fixed-width
//              (f64 as IEEE-754 bits, u64/u32/u8), u32 CRC32 of the bytes
//   [strings]  spans.bin only: a final section holding the deduplicated
//              span-name table (u32 count, then u32 length + bytes each);
//              the name column stores u32 indices into it
// Every section is CRC-checked on read, enum columns are range-checked
// (the strictness mirror of the CSV readers), and doubles round-trip
// bit-exactly — including NaN payloads — which text formats cannot
// guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "trace/sink.hpp"
#include "trace/traceset.hpp"

namespace kooza::trace {

class ColumnChunk;

/// First 8 bytes of every kooza.trace/1 stream file.
inline constexpr char kBinaryMagic[8] = {'K', 'O', 'O', 'Z', 'A', 'T', 'R', '1'};
inline constexpr std::uint32_t kBinaryVersion = 1;

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — the per-section
/// checksum. Exposed so tests can corrupt-then-refit sections. Passing a
/// previous return value as `seed` continues the checksum, so
/// crc32(b, nb, crc32(a, na)) == crc32(a || b) — the chaining the spill
/// path relies on.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;

/// Buffered streaming writer: append record chunks as they are captured
/// (no full-TraceSet materialization required by the caller), then
/// finish() to lay the files down. Columns are buffered per stream, so
/// the output is byte-identical however the records were chunked.
///
/// With `spill_buffer_bytes > 0`, any column buffer reaching that size is
/// flushed to a temp file next to the output (CRC chained across
/// flushes), keeping the writer's memory flat for arbitrarily long
/// captures; finish() splices the spill files into the final sections.
/// The produced bytes are identical either way.
class BinaryWriter {
public:
    explicit BinaryWriter(std::filesystem::path dir,
                          std::size_t spill_buffer_bytes = 0);
    BinaryWriter(const BinaryWriter&) = delete;
    BinaryWriter& operator=(const BinaryWriter&) = delete;
    ~BinaryWriter();

    /// Append every record in `chunk` to the per-stream column buffers.
    /// Throws std::logic_error after finish().
    void append(const TraceSet& chunk);

    /// Append a struct-of-arrays chunk (trace/columns.hpp): the numeric
    /// streams' pre-encoded columns are spliced in wholesale, only spans
    /// are re-encoded (their name column indexes this writer's string
    /// table). Produces bytes identical to the TraceSet overload.
    void append(const ColumnChunk& chunk);

    /// Write all seven stream files (directory created if missing).
    /// Idempotent; throws std::runtime_error on I/O failure.
    void finish();

    [[nodiscard]] std::uint64_t records_appended() const noexcept {
        return records_;
    }

private:
    struct Column {
        std::vector<std::uint8_t> bytes;
        // Spill state: bytes already flushed to `spill_path`, with the
        // running CRC32 over them (chained into the section checksum).
        std::filesystem::path spill_path;
        std::ofstream spill;
        std::uint64_t spilled = 0;
        std::uint32_t crc = 0;
    };
    struct Stream {
        std::vector<Column> columns;
        std::uint64_t count = 0;
    };

    void maybe_spill();
    void spill_column(std::size_t stream_id, std::size_t col_ix);
    void write_stream_file(std::size_t stream_id);

    std::filesystem::path dir_;
    std::size_t spill_buffer_bytes_ = 0;
    std::vector<Stream> streams_;                  ///< indexed by stream id
    std::vector<std::string> names_;               ///< span-name string table
    std::map<std::string, std::uint32_t> name_ix_; ///< dedup index into names_
    std::uint64_t records_ = 0;
    bool finished_ = false;
};

/// One-shot convenience: write `ts` as kooza.trace/1 into `dir`.
void write_binary(const TraceSet& ts, const std::filesystem::path& dir);

/// Read a TraceSet previously written by BinaryWriter. Every stream file
/// must be present (a partial capture fails loudly and counts
/// trace.bin.missing_files_total); header, schema hash and per-section
/// CRCs are validated and enum columns range-checked. Throws
/// std::runtime_error with the offending file on any mismatch.
[[nodiscard]] TraceSet read_binary(const std::filesystem::path& dir);

/// Bounded-memory reader over a kooza.trace/1 directory: validates every
/// header and section CRC once at construction (streamed through a small
/// buffer, never loading a whole file), then serves arbitrary row ranges
/// per stream. This is what lets trainers consume captures far larger
/// than RAM (core::Trainer::train_streaming).
class ChunkedReader {
public:
    /// Opens and fully validates all seven stream files. Same strictness
    /// and error reporting as read_binary.
    explicit ChunkedReader(std::filesystem::path dir);
    ChunkedReader(const ChunkedReader&) = delete;
    ChunkedReader& operator=(const ChunkedReader&) = delete;

    /// Record count of one stream.
    [[nodiscard]] std::uint64_t rows(StreamId s) const noexcept;

    /// Total records across all streams.
    [[nodiscard]] std::uint64_t total_rows() const noexcept;

    /// Decode rows [begin, begin + n) of `s`, appending them to the
    /// matching stream of `out` (other streams untouched). Decoding and
    /// enum range checks match read_binary exactly. Throws
    /// std::out_of_range when the range exceeds rows(s).
    void read_rows(StreamId s, std::uint64_t begin, std::uint64_t n,
                   TraceSet& out);

private:
    struct StreamFile {
        std::filesystem::path path;
        std::ifstream file;
        std::uint64_t count = 0;
        std::vector<std::uint64_t> col_offsets;  ///< absolute payload offsets
    };

    std::filesystem::path dir_;
    std::vector<StreamFile> files_;     ///< indexed by stream id
    std::vector<std::string> names_;    ///< spans string table
};

}  // namespace kooza::trace
