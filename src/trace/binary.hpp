// kooza.trace/1 — versioned binary columnar persistence for TraceSets,
// the fast path next to the human-readable CSV layout (csv.hpp).
//
// Layout: one file per stream inside a directory —
//   storage.bin, cpu.bin, memory.bin, network.bin, requests.bin,
//   failures.bin, spans.bin
// Each file is:
//   [header]   magic "KOOZATR1", u32 version, u32 stream id,
//              u64 schema hash (FNV-1a over the column spec string),
//              u64 record count, u32 CRC32 of the header bytes
//   [columns]  one section per column, in schema order: u64 byte length,
//              the column's values packed little-endian fixed-width
//              (f64 as IEEE-754 bits, u64/u32/u8), u32 CRC32 of the bytes
//   [strings]  spans.bin only: a final section holding the deduplicated
//              span-name table (u32 count, then u32 length + bytes each);
//              the name column stores u32 indices into it
// Every section is CRC-checked on read, enum columns are range-checked
// (the strictness mirror of the CSV readers), and doubles round-trip
// bit-exactly — including NaN payloads — which text formats cannot
// guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "trace/traceset.hpp"

namespace kooza::trace {

/// First 8 bytes of every kooza.trace/1 stream file.
inline constexpr char kBinaryMagic[8] = {'K', 'O', 'O', 'Z', 'A', 'T', 'R', '1'};
inline constexpr std::uint32_t kBinaryVersion = 1;

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — the per-section
/// checksum. Exposed so tests can corrupt-then-refit sections.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;

/// Buffered streaming writer: append record chunks as they are captured
/// (no full-TraceSet materialization required by the caller), then
/// finish() to lay the files down. Columns are buffered per stream, so
/// the output is byte-identical however the records were chunked.
class BinaryWriter {
public:
    explicit BinaryWriter(std::filesystem::path dir);
    BinaryWriter(const BinaryWriter&) = delete;
    BinaryWriter& operator=(const BinaryWriter&) = delete;
    ~BinaryWriter();

    /// Append every record in `chunk` to the per-stream column buffers.
    /// Throws std::logic_error after finish().
    void append(const TraceSet& chunk);

    /// Write all seven stream files (directory created if missing).
    /// Idempotent; throws std::runtime_error on I/O failure.
    void finish();

    [[nodiscard]] std::uint64_t records_appended() const noexcept {
        return records_;
    }

private:
    struct Column {
        std::vector<std::uint8_t> bytes;
    };
    struct Stream {
        std::vector<Column> columns;
        std::uint64_t count = 0;
    };

    void write_stream_file(std::size_t stream_id) const;

    std::filesystem::path dir_;
    std::vector<Stream> streams_;                  ///< indexed by stream id
    std::vector<std::string> names_;               ///< span-name string table
    std::map<std::string, std::uint32_t> name_ix_; ///< dedup index into names_
    std::uint64_t records_ = 0;
    bool finished_ = false;
};

/// One-shot convenience: write `ts` as kooza.trace/1 into `dir`.
void write_binary(const TraceSet& ts, const std::filesystem::path& dir);

/// Read a TraceSet previously written by BinaryWriter. Every stream file
/// must be present (a partial capture fails loudly and counts
/// trace.bin.missing_files_total); header, schema hash and per-section
/// CRCs are validated and enum columns range-checked. Throws
/// std::runtime_error with the offending file on any mismatch.
[[nodiscard]] TraceSet read_binary(const std::filesystem::path& dir);

}  // namespace kooza::trace
