// Format-dispatching trace persistence: one entry point over the CSV
// (csv.hpp, human-readable interop) and kooza.trace/1 binary columnar
// (binary.hpp, fast path) layouts, with auto-detection on read.
//
// Detection rule: a directory containing any `<stream>.bin` file is a
// binary capture (binary wins if both layouts are present — the .bin
// files are the authoritative, CRC-protected copy); otherwise it is
// read as CSV.
#pragma once

#include <array>
#include <filesystem>
#include <optional>
#include <string>

#include "trace/traceset.hpp"

namespace kooza::trace {

/// File stems of the seven per-stream files, shared by both layouts
/// (`<stem>.csv` / `<stem>.bin`).
inline constexpr std::array<const char*, 7> kStreamStems = {
    "storage", "cpu", "memory", "network", "requests", "failures", "spans"};

enum class Format : std::uint8_t { kCsv = 0, kBinary = 1 };

[[nodiscard]] const char* to_string(Format f) noexcept;

/// Parse a --format flag value ("csv" or "bin"); empty optional on junk.
[[nodiscard]] std::optional<Format> format_from_string(const std::string& s);

/// Decide which layout `dir` holds (see detection rule above). Throws
/// std::runtime_error when the directory holds neither layout.
[[nodiscard]] Format detect_format(const std::filesystem::path& dir);

/// Read a trace directory in the given format.
[[nodiscard]] TraceSet read_traces(const std::filesystem::path& dir, Format f);

/// Read a trace directory, auto-detecting the format.
[[nodiscard]] TraceSet read_traces(const std::filesystem::path& dir);

/// Write every stream into `dir` (created if missing) in the given format.
void write_traces(const TraceSet& ts, const std::filesystem::path& dir, Format f);

}  // namespace kooza::trace
