// Trace record schemas for the four subsystems the paper models (storage,
// CPU, memory, network) plus end-to-end request records. These are the
// only interface between the "real system" (the GFS simulator) and every
// model: trainers consume TraceSets, never simulator internals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kooza::trace {

/// Read/write tag used by storage and memory records.
enum class IoType : std::uint8_t { kRead = 0, kWrite = 1 };

[[nodiscard]] const char* to_string(IoType t) noexcept;
[[nodiscard]] IoType iotype_from_string(const std::string& s);

/// One disk I/O: when it was issued, where (logical block number), how
/// big, which way, and how long the device took.
struct StorageRecord {
    double time = 0.0;
    std::uint64_t request_id = 0;
    std::uint64_t lbn = 0;
    std::uint64_t size_bytes = 0;
    IoType type = IoType::kRead;
    double latency = 0.0;
};

/// One CPU burst attributed to a request. `utilization` is the fraction of
/// one core the burst represents over the request's service window — the
/// quantity the paper's CPU model states discretize ("CPU Util 1..4").
struct CpuRecord {
    double time = 0.0;
    std::uint64_t request_id = 0;
    double busy_seconds = 0.0;
    double utilization = 0.0;
};

/// One memory access burst: bank touched, bytes moved, direction.
struct MemoryRecord {
    double time = 0.0;
    std::uint64_t request_id = 0;
    std::uint32_t bank = 0;
    std::uint64_t size_bytes = 0;
    IoType type = IoType::kRead;
};

/// One network transfer at a server NIC.
struct NetworkRecord {
    enum class Direction : std::uint8_t { kRx = 0, kTx = 1 };
    double time = 0.0;
    std::uint64_t request_id = 0;
    std::uint64_t size_bytes = 0;
    Direction direction = Direction::kRx;
    double latency = 0.0;
};

[[nodiscard]] const char* to_string(NetworkRecord::Direction d) noexcept;
[[nodiscard]] NetworkRecord::Direction direction_from_string(const std::string& s);

/// One failure-path event: a chunkserver crash or recovery, a client
/// failover wait (with its backoff duration), a master-driven chunk
/// re-replication, or a request that exhausted every retry. These are the
/// records that give degraded traces their texture — GFS's "failures are
/// the norm" operating regime — and let trainers characterize workloads
/// captured while the cluster was unhealthy.
struct FailureRecord {
    enum class Kind : std::uint8_t {
        kCrash = 0,          ///< chunkserver went down (server field)
        kRecover = 1,        ///< chunkserver came back (server field)
        kFailover = 2,       ///< client waited `duration` on a dead replica
        kRepair = 3,         ///< master re-replicated a chunk onto `server`
        kRequestFailed = 4,  ///< request gave up after every retry round
        kAdmissionReject = 5,  ///< chunkserver admission control bounced it
    };
    double time = 0.0;
    std::uint64_t request_id = 0;  ///< 0 for server-lifecycle events
    std::uint32_t server = 0;
    Kind kind = Kind::kCrash;
    double duration = 0.0;  ///< backoff wait / repair latency; 0 otherwise
};

[[nodiscard]] const char* to_string(FailureRecord::Kind k) noexcept;
[[nodiscard]] FailureRecord::Kind failure_kind_from_string(const std::string& s);

/// End-to-end view of one user request.
struct RequestRecord {
    std::uint64_t request_id = 0;
    IoType type = IoType::kRead;
    double arrival = 0.0;
    double completion = 0.0;
    std::uint64_t bytes = 0;

    [[nodiscard]] double latency() const noexcept { return completion - arrival; }
};

}  // namespace kooza::trace
