#include "trace/binary.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "trace/columns.hpp"

// The column payloads are written and bulk-loaded as native integers;
// the on-disk spec is little-endian, so a big-endian port would need
// byte-swapping loads here.
static_assert(std::endian::native == std::endian::little,
              "kooza.trace/1 I/O assumes a little-endian host");

namespace kooza::trace {

namespace {

namespace fs = std::filesystem;

struct BinMetrics {
    obs::Counter& rows = obs::counter("trace.bin.rows_total");
    obs::Counter& files_written = obs::counter("trace.bin.files_written_total");
    obs::Counter& bytes_written =
        obs::counter("trace.bin.bytes_written_total", obs::Unit::kBytes);
    obs::Counter& bad_files = obs::counter("trace.bin.bad_files_total");
    obs::Counter& missing_files = obs::counter("trace.bin.missing_files_total");
};

BinMetrics& metrics() {
    static BinMetrics m;
    return m;
}

/// Column value widths, used for both packing and validation.
enum class Col : std::uint8_t { kF64, kU64, kU32, kU8 };

constexpr std::size_t width(Col c) noexcept {
    switch (c) {
        case Col::kF64:
        case Col::kU64: return 8;
        case Col::kU32: return 4;
        case Col::kU8: return 1;
    }
    return 0;
}

/// Per-stream schema: id, file stem, column spec string (hashed into the
/// header — any layout change must bump it) and column widths.
struct StreamSchema {
    std::uint32_t id;
    const char* stem;
    const char* spec;
    std::vector<Col> cols;
};

const std::array<StreamSchema, 7>& schemas() {
    static const std::array<StreamSchema, 7> s{{
        {0, "storage",
         "time:f64,request_id:u64,lbn:u64,size_bytes:u64,type:u8,latency:f64",
         {Col::kF64, Col::kU64, Col::kU64, Col::kU64, Col::kU8, Col::kF64}},
        {1, "cpu", "time:f64,request_id:u64,busy_seconds:f64,utilization:f64",
         {Col::kF64, Col::kU64, Col::kF64, Col::kF64}},
        {2, "memory", "time:f64,request_id:u64,bank:u32,size_bytes:u64,type:u8",
         {Col::kF64, Col::kU64, Col::kU32, Col::kU64, Col::kU8}},
        {3, "network",
         "time:f64,request_id:u64,size_bytes:u64,direction:u8,latency:f64",
         {Col::kF64, Col::kU64, Col::kU64, Col::kU8, Col::kF64}},
        {4, "requests", "request_id:u64,type:u8,arrival:f64,completion:f64,bytes:u64",
         {Col::kU64, Col::kU8, Col::kF64, Col::kF64, Col::kU64}},
        {5, "failures",
         "time:f64,request_id:u64,server:u32,kind:u8,duration:f64",
         {Col::kF64, Col::kU64, Col::kU32, Col::kU8, Col::kF64}},
        {6, "spans",
         "trace_id:u64,span_id:u64,parent_id:u64,name:strtab32,start:f64,end:f64",
         {Col::kU64, Col::kU64, Col::kU64, Col::kU32, Col::kF64, Col::kF64}},
    }};
    return s;
}

/// FNV-1a 64-bit over the schema spec string.
std::uint64_t schema_hash(const char* spec) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char* p = spec; *p; ++p) {
        h ^= std::uint8_t(*p);
        h *= 0x100000001b3ull;
    }
    return h;
}

template <typename T>
void put(std::vector<std::uint8_t>& b, T v) {
    const auto old = b.size();
    b.resize(old + sizeof(T));
    std::memcpy(b.data() + old, &v, sizeof(T));
}

void put_f64(std::vector<std::uint8_t>& b, double v) {
    put(b, std::bit_cast<std::uint64_t>(v));
}

/// Append one column for a whole record batch: a single resize, then a
/// tight fixed-stride store loop — the struct-of-arrays split that
/// replaces the old per-record, per-field push_back walk. `get` projects
/// a record to the column's wire value (u8/u32/u64 or bit-cast f64).
template <typename Rec, typename Get>
void pack_column(std::vector<std::uint8_t>& b, const std::vector<Rec>& rs,
                 Get&& get) {
    using V = decltype(get(rs.data()[0]));
    const auto old = b.size();
    b.resize(old + rs.size() * sizeof(V));
    std::uint8_t* p = b.data() + old;
    for (const auto& r : rs) {
        const V v = get(r);
        std::memcpy(p, &v, sizeof(V));
        p += sizeof(V);
    }
}

std::uint64_t f64_bits(double v) noexcept {
    return std::bit_cast<std::uint64_t>(v);
}

[[noreturn]] void bad_file(const fs::path& p, const std::string& why) {
    metrics().bad_files.add();
    throw std::runtime_error("read_binary: " + p.string() + ": " + why);
}

/// Fixed-size serialized header: magic + version + stream id + schema
/// hash + record count, then its CRC.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

std::vector<std::uint8_t> make_header(const StreamSchema& s, std::uint64_t count) {
    std::vector<std::uint8_t> h;
    h.insert(h.end(), std::begin(kBinaryMagic), std::end(kBinaryMagic));
    put(h, kBinaryVersion);
    put(h, s.id);
    put(h, schema_hash(s.spec));
    put(h, count);
    put(h, crc32(h.data(), h.size()));
    return h;
}

/// Cursor over a fully-loaded stream file.
struct FileView {
    fs::path path;
    std::vector<std::uint8_t> data;
    std::size_t pos = 0;

    void need(std::size_t n, const char* what) const {
        if (pos + n > data.size())
            bad_file(path, std::string("truncated file (") + what + ")");
    }
    template <typename T>
    T take() {
        T v;
        std::memcpy(&v, data.data() + pos, sizeof(T));
        pos += sizeof(T);
        return v;
    }
    /// One CRC-checked section: u64 length + payload + u32 crc. Returns
    /// the payload's offset; `pos` advances past the section.
    std::size_t take_section(const char* what, std::size_t expected_len) {
        need(8, what);
        const auto len = take<std::uint64_t>();
        if (expected_len != std::size_t(-1) && len != expected_len)
            bad_file(path, std::string(what) + ": unexpected section length");
        need(std::size_t(len) + 4, what);
        const auto off = pos;
        pos += std::size_t(len);
        const auto stored = take<std::uint32_t>();
        if (crc32(data.data() + off, std::size_t(len)) != stored)
            bad_file(path, std::string(what) + ": CRC32 mismatch (corrupt section)");
        return off;
    }
};

FileView load_file(const fs::path& p) {
    std::ifstream f(p, std::ios::binary);
    if (!f) bad_file(p, "cannot open");
    FileView v{p, {}, 0};
    f.seekg(0, std::ios::end);
    v.data.resize(std::size_t(f.tellg()));
    f.seekg(0);
    // One bulk read; columns are then loaded by pointer from the buffer.
    f.read(reinterpret_cast<char*>(v.data.data()),
           std::streamsize(v.data.size()));
    if (!f) bad_file(p, "short read");
    return v;
}

/// Validate header; returns the record count.
std::uint64_t read_header(FileView& v, const StreamSchema& s) {
    v.need(kHeaderBytes + 4, "header");
    if (std::memcmp(v.data.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0)
        bad_file(v.path, "bad magic (not a kooza.trace/1 file)");
    const auto stored_crc = [&] {
        std::uint32_t c;
        std::memcpy(&c, v.data.data() + kHeaderBytes, 4);
        return c;
    }();
    if (crc32(v.data.data(), kHeaderBytes) != stored_crc)
        bad_file(v.path, "header CRC32 mismatch");
    v.pos = sizeof(kBinaryMagic);
    if (const auto ver = v.take<std::uint32_t>(); ver != kBinaryVersion)
        bad_file(v.path, "unsupported version " + std::to_string(ver));
    if (const auto id = v.take<std::uint32_t>(); id != s.id)
        bad_file(v.path, "stream id mismatch (file renamed?)");
    if (v.take<std::uint64_t>() != schema_hash(s.spec))
        bad_file(v.path, "schema hash mismatch");
    const auto count = v.take<std::uint64_t>();
    v.pos += 4;  // header crc
    return count;
}

/// Columns of one loaded stream: payload offsets in file order.
struct Columns {
    FileView view;
    std::uint64_t count = 0;
    std::vector<std::size_t> offsets;

    template <typename T>
    T get(std::size_t col, std::size_t row) const {
        T v;
        std::memcpy(&v, view.data.data() + offsets[col] + row * sizeof(T),
                    sizeof(T));
        return v;
    }
    double f64(std::size_t col, std::size_t row) const {
        return std::bit_cast<double>(get<std::uint64_t>(col, row));
    }
    /// Enum columns mirror the CSV readers' strictness: a byte outside
    /// the enum's range is corruption, not a default value.
    std::uint8_t enum8(std::size_t col, std::size_t row, std::uint8_t max,
                       const char* what) const {
        const auto v = get<std::uint8_t>(col, row);
        if (v > max)
            bad_file(view.path, "record " + std::to_string(row) +
                                    ": invalid " + what + " value " +
                                    std::to_string(v));
        return v;
    }
};

Columns load_stream(const fs::path& dir, const StreamSchema& s) {
    Columns c{load_file(dir / (std::string(s.stem) + ".bin")), 0, {}};
    c.count = read_header(c.view, s);
    c.offsets.reserve(s.cols.size());
    for (std::size_t i = 0; i < s.cols.size(); ++i)
        c.offsets.push_back(c.view.take_section(
            "column", std::size_t(c.count) * width(s.cols[i])));
    metrics().rows.add(c.count);
    return c;
}

/// The spans string table: the final section of spans.bin.
std::vector<std::string> load_string_table(Columns& c) {
    const auto off = c.view.take_section("string table", std::size_t(-1));
    const auto end = c.view.pos - 4;  // section payload ends before its crc
    std::size_t p = off;
    auto need = [&](std::size_t n) {
        if (p + n > end) bad_file(c.view.path, "string table truncated");
    };
    need(4);
    std::uint32_t n;
    std::memcpy(&n, c.view.data.data() + p, 4);
    p += 4;
    std::vector<std::string> names;
    names.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        need(4);
        std::uint32_t len;
        std::memcpy(&len, c.view.data.data() + p, 4);
        p += 4;
        need(len);
        names.emplace_back(reinterpret_cast<const char*>(c.view.data.data() + p),
                           len);
        p += len;
    }
    if (p != end) bad_file(c.view.path, "string table has trailing bytes");
    return names;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) noexcept {
    // Slicing-by-8: table[0] is the classic byte-at-a-time table; table[s]
    // advances a byte s extra positions through the shift register, so the
    // main loop folds 8 payload bytes per iteration. Same polynomial and
    // check value as the byte-wise form (crc32("123456789") == 0xCBF43926).
    static const auto tables = [] {
        std::array<std::array<std::uint32_t, 256>, 8> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (std::size_t s = 1; s < 8; ++s)
            for (std::uint32_t i = 0; i < 256; ++i)
                t[s][i] = t[0][t[s - 1][i] & 0xFF] ^ (t[s - 1][i] >> 8);
        return t;
    }();
    const auto& t = tables;
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (len >= 8) {
        std::uint32_t lo, hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= c;
        c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
            t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
            t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
        p += 8;
        len -= 8;
    }
    while (len-- > 0) c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

BinaryWriter::BinaryWriter(std::filesystem::path dir,
                           std::size_t spill_buffer_bytes)
    : dir_(std::move(dir)), spill_buffer_bytes_(spill_buffer_bytes) {
    streams_.resize(schemas().size());
    for (const auto& s : schemas())
        streams_[s.id].columns.resize(s.cols.size());
}

BinaryWriter::~BinaryWriter() {
    // Callers should finish() explicitly (it can throw); the destructor
    // only covers the non-exceptional forgot-to-finish path.
    if (!finished_) {
        try {
            finish();
        } catch (...) {
        }
    }
}

void BinaryWriter::append(const TraceSet& chunk) {
    if (finished_)
        throw std::logic_error("BinaryWriter::append: writer already finished");
    auto& st = streams_;
    // Column-major: each column of a stream is packed for the whole batch
    // in one pass (single resize + tight stride loop) instead of cycling
    // through every column per record.
    auto col = [&](std::size_t stream, std::size_t ix) -> auto& {
        return st[stream].columns[ix].bytes;
    };
    if (!chunk.storage.empty()) {
        const auto& rs = chunk.storage;
        pack_column(col(0, 0), rs, [](const auto& r) { return f64_bits(r.time); });
        pack_column(col(0, 1), rs, [](const auto& r) { return r.request_id; });
        pack_column(col(0, 2), rs, [](const auto& r) { return r.lbn; });
        pack_column(col(0, 3), rs, [](const auto& r) { return r.size_bytes; });
        pack_column(col(0, 4), rs,
                    [](const auto& r) { return std::uint8_t(r.type); });
        pack_column(col(0, 5), rs,
                    [](const auto& r) { return f64_bits(r.latency); });
        st[0].count += rs.size();
    }
    if (!chunk.cpu.empty()) {
        const auto& rs = chunk.cpu;
        pack_column(col(1, 0), rs, [](const auto& r) { return f64_bits(r.time); });
        pack_column(col(1, 1), rs, [](const auto& r) { return r.request_id; });
        pack_column(col(1, 2), rs,
                    [](const auto& r) { return f64_bits(r.busy_seconds); });
        pack_column(col(1, 3), rs,
                    [](const auto& r) { return f64_bits(r.utilization); });
        st[1].count += rs.size();
    }
    if (!chunk.memory.empty()) {
        const auto& rs = chunk.memory;
        pack_column(col(2, 0), rs, [](const auto& r) { return f64_bits(r.time); });
        pack_column(col(2, 1), rs, [](const auto& r) { return r.request_id; });
        pack_column(col(2, 2), rs, [](const auto& r) { return r.bank; });
        pack_column(col(2, 3), rs, [](const auto& r) { return r.size_bytes; });
        pack_column(col(2, 4), rs,
                    [](const auto& r) { return std::uint8_t(r.type); });
        st[2].count += rs.size();
    }
    if (!chunk.network.empty()) {
        const auto& rs = chunk.network;
        pack_column(col(3, 0), rs, [](const auto& r) { return f64_bits(r.time); });
        pack_column(col(3, 1), rs, [](const auto& r) { return r.request_id; });
        pack_column(col(3, 2), rs, [](const auto& r) { return r.size_bytes; });
        pack_column(col(3, 3), rs,
                    [](const auto& r) { return std::uint8_t(r.direction); });
        pack_column(col(3, 4), rs,
                    [](const auto& r) { return f64_bits(r.latency); });
        st[3].count += rs.size();
    }
    if (!chunk.requests.empty()) {
        const auto& rs = chunk.requests;
        pack_column(col(4, 0), rs, [](const auto& r) { return r.request_id; });
        pack_column(col(4, 1), rs,
                    [](const auto& r) { return std::uint8_t(r.type); });
        pack_column(col(4, 2), rs,
                    [](const auto& r) { return f64_bits(r.arrival); });
        pack_column(col(4, 3), rs,
                    [](const auto& r) { return f64_bits(r.completion); });
        pack_column(col(4, 4), rs, [](const auto& r) { return r.bytes; });
        st[4].count += rs.size();
    }
    if (!chunk.failures.empty()) {
        const auto& rs = chunk.failures;
        pack_column(col(5, 0), rs, [](const auto& r) { return f64_bits(r.time); });
        pack_column(col(5, 1), rs, [](const auto& r) { return r.request_id; });
        pack_column(col(5, 2), rs, [](const auto& r) { return r.server; });
        pack_column(col(5, 3), rs,
                    [](const auto& r) { return std::uint8_t(r.kind); });
        pack_column(col(5, 4), rs,
                    [](const auto& r) { return f64_bits(r.duration); });
        st[5].count += rs.size();
    }
    if (!chunk.spans.empty()) {
        // Spans resolve names through the dedup table, so the name column
        // is record-at-a-time; the numeric columns still batch.
        const auto& rs = chunk.spans;
        pack_column(col(6, 0), rs, [](const auto& r) { return r.trace_id; });
        pack_column(col(6, 1), rs, [](const auto& r) { return r.span_id; });
        pack_column(col(6, 2), rs, [](const auto& r) { return r.parent_id; });
        for (const auto& sp : rs) {
            auto [it, inserted] =
                name_ix_.try_emplace(sp.name, std::uint32_t(names_.size()));
            if (inserted) names_.push_back(sp.name);
            put(col(6, 3), it->second);
        }
        pack_column(col(6, 4), rs,
                    [](const auto& r) { return f64_bits(r.start); });
        pack_column(col(6, 5), rs, [](const auto& r) { return f64_bits(r.end); });
        st[6].count += rs.size();
    }
    records_ += chunk.total_records();
    maybe_spill();
}

void BinaryWriter::append(const ColumnChunk& chunk) {
    if (finished_)
        throw std::logic_error("BinaryWriter::append: writer already finished");
    // Numeric streams arrive pre-encoded: splice whole columns.
    for (std::size_t id = 0; id < kStreamCount; ++id) {
        const auto& src = chunk.streams_[id];
        if (src.count == 0) continue;
        auto& dst = streams_[id];
        for (std::size_t c = 0; c < dst.columns.size(); ++c) {
            auto& b = dst.columns[c].bytes;
            b.insert(b.end(), src.cols[c].begin(), src.cols[c].end());
        }
        dst.count += src.count;
    }
    // Spans re-encode through the string table, same as the TraceSet path.
    auto& sp_stream = streams_[6];
    for (const auto& sp : chunk.spans_) {
        put(sp_stream.columns[0].bytes, sp.trace_id);
        put(sp_stream.columns[1].bytes, sp.span_id);
        put(sp_stream.columns[2].bytes, sp.parent_id);
        auto [it, inserted] =
            name_ix_.try_emplace(sp.name, std::uint32_t(names_.size()));
        if (inserted) names_.push_back(sp.name);
        put(sp_stream.columns[3].bytes, it->second);
        put_f64(sp_stream.columns[4].bytes, sp.start);
        put_f64(sp_stream.columns[5].bytes, sp.end);
        ++sp_stream.count;
    }
    records_ += chunk.records();
    maybe_spill();
}

void BinaryWriter::maybe_spill() {
    if (spill_buffer_bytes_ == 0) return;
    for (std::size_t id = 0; id < streams_.size(); ++id)
        for (std::size_t c = 0; c < streams_[id].columns.size(); ++c)
            if (streams_[id].columns[c].bytes.size() >= spill_buffer_bytes_)
                spill_column(id, c);
}

void BinaryWriter::spill_column(std::size_t stream_id, std::size_t col_ix) {
    auto& col = streams_[stream_id].columns[col_ix];
    if (!col.spill.is_open()) {
        fs::create_directories(dir_);
        col.spill_path = dir_ / (std::string(schemas()[stream_id].stem) + ".c" +
                                 std::to_string(col_ix) + ".spill");
        col.spill.open(col.spill_path,
                       std::ios::binary | std::ios::trunc | std::ios::out);
        if (!col.spill)
            throw std::runtime_error("BinaryWriter: cannot open spill file " +
                                     col.spill_path.string());
    }
    col.crc = crc32(col.bytes.data(), col.bytes.size(), col.crc);
    col.spill.write(reinterpret_cast<const char*>(col.bytes.data()),
                    std::streamsize(col.bytes.size()));
    if (!col.spill)
        throw std::runtime_error("BinaryWriter: spill write failed: " +
                                 col.spill_path.string());
    col.spilled += col.bytes.size();
    col.bytes.clear();
}

void BinaryWriter::write_stream_file(std::size_t stream_id) {
    const auto& schema = schemas()[stream_id];
    auto& stream = streams_[stream_id];
    const auto path = dir_ / (std::string(schema.stem) + ".bin");
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        throw std::runtime_error("BinaryWriter: cannot open " + path.string());

    std::uint64_t written = 0;
    auto emit = [&](const std::vector<std::uint8_t>& bytes) {
        f.write(reinterpret_cast<const char*>(bytes.data()),
                std::streamsize(bytes.size()));
        written += bytes.size();
    };
    auto emit_section = [&](const std::vector<std::uint8_t>& payload) {
        std::vector<std::uint8_t> frame;
        put(frame, std::uint64_t(payload.size()));
        emit(frame);
        emit(payload);
        std::vector<std::uint8_t> tail;
        put(tail, crc32(payload.data(), payload.size()));
        emit(tail);
    };
    // A spilled column splices its temp file in front of the still-
    // buffered tail; the section CRC chains across both, so the bytes
    // are identical to the all-in-memory path.
    auto emit_column = [&](Column& col) {
        if (col.spilled == 0) {
            emit_section(col.bytes);
            return;
        }
        std::vector<std::uint8_t> frame;
        put(frame, std::uint64_t(col.spilled + col.bytes.size()));
        emit(frame);
        col.spill.close();
        std::ifstream in(col.spill_path, std::ios::binary);
        if (!in)
            throw std::runtime_error("BinaryWriter: cannot reopen spill file " +
                                     col.spill_path.string());
        std::vector<char> buf(1 << 20);
        std::uint64_t copied = 0;
        while (in) {
            in.read(buf.data(), std::streamsize(buf.size()));
            const auto got = in.gcount();
            if (got <= 0) break;
            f.write(buf.data(), got);
            written += std::uint64_t(got);
            copied += std::uint64_t(got);
        }
        if (copied != col.spilled)
            throw std::runtime_error("BinaryWriter: spill file truncated: " +
                                     col.spill_path.string());
        emit(col.bytes);
        std::vector<std::uint8_t> tail;
        put(tail, crc32(col.bytes.data(), col.bytes.size(), col.crc));
        emit(tail);
        std::error_code ec;
        fs::remove(col.spill_path, ec);
    };

    emit(make_header(schema, stream.count));
    for (auto& col : stream.columns) emit_column(col);
    if (schema.id == 6) {
        std::vector<std::uint8_t> tab;
        put(tab, std::uint32_t(names_.size()));
        for (const auto& n : names_) {
            put(tab, std::uint32_t(n.size()));
            tab.insert(tab.end(), n.begin(), n.end());
        }
        emit_section(tab);
    }
    if (!f) throw std::runtime_error("BinaryWriter: write failed: " + path.string());
    metrics().files_written.add();
    metrics().bytes_written.add(written);
}

void BinaryWriter::finish() {
    if (finished_) return;
    fs::create_directories(dir_);
    for (std::size_t id = 0; id < streams_.size(); ++id) write_stream_file(id);
    finished_ = true;
}

void write_binary(const TraceSet& ts, const std::filesystem::path& dir) {
    BinaryWriter w(dir);
    w.append(ts);
    w.finish();
}

TraceSet read_binary(const std::filesystem::path& dir) {
    // All seven stream files are required: a capture always writes the
    // full set, so an absent file is a partial/deleted capture, not a
    // quiet workload.
    for (const auto& s : schemas()) {
        const auto p = dir / (std::string(s.stem) + ".bin");
        if (!fs::exists(p)) {
            metrics().missing_files.add();
            throw std::runtime_error("read_binary: missing stream file " +
                                     p.string() + " (partial capture?)");
        }
    }

    TraceSet ts;
    {
        const auto c = load_stream(dir, schemas()[0]);
        ts.storage.resize(c.count);
        for (std::size_t i = 0; i < c.count; ++i) {
            auto& r = ts.storage[i];
            r.time = c.f64(0, i);
            r.request_id = c.get<std::uint64_t>(1, i);
            r.lbn = c.get<std::uint64_t>(2, i);
            r.size_bytes = c.get<std::uint64_t>(3, i);
            r.type = IoType(c.enum8(4, i, 1, "io type"));
            r.latency = c.f64(5, i);
        }
    }
    {
        const auto c = load_stream(dir, schemas()[1]);
        ts.cpu.resize(c.count);
        for (std::size_t i = 0; i < c.count; ++i) {
            auto& r = ts.cpu[i];
            r.time = c.f64(0, i);
            r.request_id = c.get<std::uint64_t>(1, i);
            r.busy_seconds = c.f64(2, i);
            r.utilization = c.f64(3, i);
        }
    }
    {
        const auto c = load_stream(dir, schemas()[2]);
        ts.memory.resize(c.count);
        for (std::size_t i = 0; i < c.count; ++i) {
            auto& r = ts.memory[i];
            r.time = c.f64(0, i);
            r.request_id = c.get<std::uint64_t>(1, i);
            r.bank = c.get<std::uint32_t>(2, i);
            r.size_bytes = c.get<std::uint64_t>(3, i);
            r.type = IoType(c.enum8(4, i, 1, "io type"));
        }
    }
    {
        const auto c = load_stream(dir, schemas()[3]);
        ts.network.resize(c.count);
        for (std::size_t i = 0; i < c.count; ++i) {
            auto& r = ts.network[i];
            r.time = c.f64(0, i);
            r.request_id = c.get<std::uint64_t>(1, i);
            r.size_bytes = c.get<std::uint64_t>(2, i);
            r.direction = NetworkRecord::Direction(c.enum8(3, i, 1, "direction"));
            r.latency = c.f64(4, i);
        }
    }
    {
        const auto c = load_stream(dir, schemas()[4]);
        ts.requests.resize(c.count);
        for (std::size_t i = 0; i < c.count; ++i) {
            auto& r = ts.requests[i];
            r.request_id = c.get<std::uint64_t>(0, i);
            r.type = IoType(c.enum8(1, i, 1, "io type"));
            r.arrival = c.f64(2, i);
            r.completion = c.f64(3, i);
            r.bytes = c.get<std::uint64_t>(4, i);
        }
    }
    {
        const auto c = load_stream(dir, schemas()[5]);
        ts.failures.resize(c.count);
        for (std::size_t i = 0; i < c.count; ++i) {
            auto& r = ts.failures[i];
            r.time = c.f64(0, i);
            r.request_id = c.get<std::uint64_t>(1, i);
            r.server = c.get<std::uint32_t>(2, i);
            r.kind = FailureRecord::Kind(c.enum8(3, i, 5, "failure kind"));
            r.duration = c.f64(4, i);
        }
    }
    {
        auto c = load_stream(dir, schemas()[6]);
        const auto names = load_string_table(c);
        ts.spans.resize(c.count);
        for (std::size_t i = 0; i < c.count; ++i) {
            auto& sp = ts.spans[i];
            sp.trace_id = c.get<std::uint64_t>(0, i);
            sp.span_id = c.get<std::uint64_t>(1, i);
            sp.parent_id = c.get<std::uint64_t>(2, i);
            const auto ix = c.get<std::uint32_t>(3, i);
            if (ix >= names.size())
                bad_file(c.view.path, "record " + std::to_string(i) +
                                          ": name index out of range");
            sp.name = names[ix];
            sp.start = c.f64(4, i);
            sp.end = c.f64(5, i);
        }
    }
    return ts;
}

ChunkedReader::ChunkedReader(std::filesystem::path dir) : dir_(std::move(dir)) {
    files_.resize(schemas().size());
    std::vector<char> buf(1 << 20);
    for (const auto& s : schemas()) {
        auto& sf = files_[s.id];
        sf.path = dir_ / (std::string(s.stem) + ".bin");
        if (!fs::exists(sf.path)) {
            metrics().missing_files.add();
            throw std::runtime_error("ChunkedReader: missing stream file " +
                                     sf.path.string() + " (partial capture?)");
        }
        sf.file.open(sf.path, std::ios::binary);
        if (!sf.file) bad_file(sf.path, "cannot open");

        // Header, validated exactly as read_binary but from a small buffer.
        std::vector<std::uint8_t> h(kHeaderBytes + 4);
        sf.file.read(reinterpret_cast<char*>(h.data()),
                     std::streamsize(h.size()));
        if (std::size_t(sf.file.gcount()) != h.size())
            bad_file(sf.path, "truncated file (header)");
        if (std::memcmp(h.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0)
            bad_file(sf.path, "bad magic (not a kooza.trace/1 file)");
        std::size_t pos = sizeof(kBinaryMagic);
        auto take32 = [&] {
            std::uint32_t v;
            std::memcpy(&v, h.data() + pos, 4);
            pos += 4;
            return v;
        };
        auto take64 = [&] {
            std::uint64_t v;
            std::memcpy(&v, h.data() + pos, 8);
            pos += 8;
            return v;
        };
        std::uint32_t stored_hdr_crc;
        std::memcpy(&stored_hdr_crc, h.data() + kHeaderBytes, 4);
        if (crc32(h.data(), kHeaderBytes) != stored_hdr_crc)
            bad_file(sf.path, "header CRC32 mismatch");
        if (const auto ver = take32(); ver != kBinaryVersion)
            bad_file(sf.path, "unsupported version " + std::to_string(ver));
        if (const auto id = take32(); id != s.id)
            bad_file(sf.path, "stream id mismatch (file renamed?)");
        if (take64() != schema_hash(s.spec))
            bad_file(sf.path, "schema hash mismatch");
        sf.count = take64();

        // Walk the sections once, CRC-checking each payload through the
        // bounded buffer and remembering where it starts.
        std::uint64_t off = kHeaderBytes + 4;
        constexpr std::uint64_t kAnyLen = ~0ull;
        auto check_section = [&](std::uint64_t expected_len, const char* what,
                                 std::vector<std::uint8_t>* capture) {
            std::uint64_t len = 0;
            sf.file.read(reinterpret_cast<char*>(&len), 8);
            if (sf.file.gcount() != 8)
                bad_file(sf.path,
                         std::string("truncated file (") + what + ")");
            if (expected_len != kAnyLen && len != expected_len)
                bad_file(sf.path,
                         std::string(what) + ": unexpected section length");
            off += 8;
            const std::uint64_t payload = off;
            if (capture) capture->reserve(std::size_t(len));
            std::uint32_t crc = 0;
            std::uint64_t left = len;
            while (left > 0) {
                const auto take =
                    std::size_t(std::min<std::uint64_t>(left, buf.size()));
                sf.file.read(buf.data(), std::streamsize(take));
                if (std::size_t(sf.file.gcount()) != take)
                    bad_file(sf.path,
                             std::string("truncated file (") + what + ")");
                crc = crc32(buf.data(), take, crc);
                if (capture)
                    capture->insert(capture->end(), buf.data(),
                                    buf.data() + take);
                left -= take;
            }
            std::uint32_t stored = 0;
            sf.file.read(reinterpret_cast<char*>(&stored), 4);
            if (sf.file.gcount() != 4)
                bad_file(sf.path,
                         std::string("truncated file (") + what + ")");
            if (crc != stored)
                bad_file(sf.path, std::string(what) +
                                      ": CRC32 mismatch (corrupt section)");
            off += len + 4;
            return payload;
        };
        for (std::size_t c = 0; c < s.cols.size(); ++c)
            sf.col_offsets.push_back(check_section(
                sf.count * width(s.cols[c]), "column", nullptr));
        if (s.id == 6) {
            // The string table is bounded by the number of distinct span
            // names, so it is safe to hold in memory.
            std::vector<std::uint8_t> tab;
            check_section(kAnyLen, "string table", &tab);
            std::size_t p = 0;
            auto need = [&](std::size_t n) {
                if (p + n > tab.size())
                    bad_file(sf.path, "string table truncated");
            };
            need(4);
            std::uint32_t n;
            std::memcpy(&n, tab.data(), 4);
            p += 4;
            names_.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) {
                need(4);
                std::uint32_t len;
                std::memcpy(&len, tab.data() + p, 4);
                p += 4;
                need(len);
                names_.emplace_back(
                    reinterpret_cast<const char*>(tab.data() + p), len);
                p += len;
            }
            if (p != tab.size())
                bad_file(sf.path, "string table has trailing bytes");
        }
    }
}

std::uint64_t ChunkedReader::rows(StreamId s) const noexcept {
    return files_[std::size_t(s)].count;
}

std::uint64_t ChunkedReader::total_rows() const noexcept {
    std::uint64_t n = 0;
    for (const auto& sf : files_) n += sf.count;
    return n;
}

void ChunkedReader::read_rows(StreamId s, std::uint64_t begin, std::uint64_t n,
                              TraceSet& out) {
    const auto id = std::size_t(s);
    const auto& schema = schemas()[id];
    auto& sf = files_[id];
    if (begin + n < begin || begin + n > sf.count)
        throw std::out_of_range("ChunkedReader::read_rows: rows [" +
                                std::to_string(begin) + ", " +
                                std::to_string(begin + n) + ") past end of " +
                                sf.path.string());
    if (n == 0) return;

    std::vector<std::vector<std::uint8_t>> cols(schema.cols.size());
    for (std::size_t c = 0; c < schema.cols.size(); ++c) {
        const auto w = width(schema.cols[c]);
        cols[c].resize(std::size_t(n) * w);
        sf.file.clear();
        sf.file.seekg(std::streamoff(sf.col_offsets[c] + begin * w));
        sf.file.read(reinterpret_cast<char*>(cols[c].data()),
                     std::streamsize(cols[c].size()));
        if (std::size_t(sf.file.gcount()) != cols[c].size())
            bad_file(sf.path, "short read");
    }
    auto u64 = [&](std::size_t c, std::size_t i) {
        std::uint64_t v;
        std::memcpy(&v, cols[c].data() + i * 8, 8);
        return v;
    };
    auto u32 = [&](std::size_t c, std::size_t i) {
        std::uint32_t v;
        std::memcpy(&v, cols[c].data() + i * 4, 4);
        return v;
    };
    auto f64 = [&](std::size_t c, std::size_t i) {
        return std::bit_cast<double>(u64(c, i));
    };
    auto enum8 = [&](std::size_t c, std::size_t i, std::uint8_t max,
                     const char* what) {
        const auto v = cols[c][i];
        if (v > max)
            bad_file(sf.path, "record " + std::to_string(begin + i) +
                                  ": invalid " + what + " value " +
                                  std::to_string(v));
        return v;
    };

    switch (StreamId(id)) {
        case StreamId::kStorage:
            for (std::size_t i = 0; i < n; ++i)
                out.storage.push_back({f64(0, i), u64(1, i), u64(2, i),
                                       u64(3, i),
                                       IoType(enum8(4, i, 1, "io type")),
                                       f64(5, i)});
            break;
        case StreamId::kCpu:
            for (std::size_t i = 0; i < n; ++i)
                out.cpu.push_back({f64(0, i), u64(1, i), f64(2, i), f64(3, i)});
            break;
        case StreamId::kMemory:
            for (std::size_t i = 0; i < n; ++i)
                out.memory.push_back({f64(0, i), u64(1, i), u32(2, i),
                                      u64(3, i),
                                      IoType(enum8(4, i, 1, "io type"))});
            break;
        case StreamId::kNetwork:
            for (std::size_t i = 0; i < n; ++i)
                out.network.push_back(
                    {f64(0, i), u64(1, i), u64(2, i),
                     NetworkRecord::Direction(enum8(3, i, 1, "direction")),
                     f64(4, i)});
            break;
        case StreamId::kRequests:
            for (std::size_t i = 0; i < n; ++i)
                out.requests.push_back({u64(0, i),
                                        IoType(enum8(1, i, 1, "io type")),
                                        f64(2, i), f64(3, i), u64(4, i)});
            break;
        case StreamId::kFailures:
            for (std::size_t i = 0; i < n; ++i)
                out.failures.push_back(
                    {f64(0, i), u64(1, i), u32(2, i),
                     FailureRecord::Kind(enum8(3, i, 5, "failure kind")),
                     f64(4, i)});
            break;
        case StreamId::kSpans:
            for (std::size_t i = 0; i < n; ++i) {
                Span sp;
                sp.trace_id = u64(0, i);
                sp.span_id = u64(1, i);
                sp.parent_id = u64(2, i);
                const auto ix = u32(3, i);
                if (ix >= names_.size())
                    bad_file(sf.path, "record " + std::to_string(begin + i) +
                                          ": name index out of range");
                sp.name = names_[ix];
                sp.start = f64(4, i);
                sp.end = f64(5, i);
                out.spans.push_back(std::move(sp));
            }
            break;
    }
    metrics().rows.add(n);
}

}  // namespace kooza::trace
