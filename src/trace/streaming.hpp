// StreamingSink — the datacenter-scale capture path: records flush to
// per-stream kooza.trace/1 files *while the simulation runs*, so peak
// memory is bounded by in-flight work plus one chunk buffer per stream
// instead of the whole capture.
//
// Byte-identity contract: the files StreamingSink produces are identical
// to write_binary(sorted TraceSet) of the same capture. The canonical
// record order is (sort key, server group, per-group emission sequence) —
// exactly what TraceSet::sort_by_time's stable per-stream sort yields over
// the group-concatenated collectors — and StreamingSink emits records in
// that order online:
//   - every record enters a per-stream min-heap keyed (key, group, seq);
//   - emitters open a *hold* at issue time for records that are keyed in
//     the past but not yet appended (sink.hpp's hold protocol);
//   - a record leaves the heap only once its key is strictly below the
//     stream's watermark = min(earliest open hold, simulation now) — at
//     that point no earlier-keyed record can still arrive.
// Drained records accumulate in a chunk buffer that is appended to the
// BinaryWriter every `chunk_records` records (the writer spills column
// payloads to temp files, so it is flat too).
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <queue>
#include <set>
#include <variant>
#include <vector>

#include "trace/binary.hpp"
#include "trace/columns.hpp"
#include "trace/sink.hpp"

namespace kooza::trace {

class StreamingSink final : public SinkProvider {
public:
    struct Options {
        std::filesystem::path dir;            ///< output trace directory
        std::size_t chunk_records = 1 << 16;  ///< records per writer flush
        /// Per-column writer buffer before spilling to a temp file
        /// (BinaryWriter's spill_buffer_bytes).
        std::size_t spill_buffer_bytes = 1 << 20;
    };

    /// `n_groups` sinks: group 0 for cluster-level emitters, 1..n-1 for
    /// per-server device stacks (gfs::Cluster uses 1 + n_chunkservers).
    StreamingSink(Options opts, std::size_t n_groups);
    ~StreamingSink() override;

    Sink& group(std::size_t g) override;
    [[nodiscard]] std::size_t group_count() const override { return shards_.size(); }

    /// Wire the simulation clock; the watermark uses it to release
    /// records on streams with no open holds. gfs::Cluster sets this to
    /// its engine's now().
    void set_clock(std::function<double()> now) { clock_ = std::move(now); }

    /// Drain every heap and finalize the seven .bin files. Throws
    /// std::logic_error if any hold is still open (an emitter leak) and
    /// std::runtime_error on I/O failure. Idempotent.
    void finish();

    /// Records accepted so far (all streams).
    [[nodiscard]] std::uint64_t records_seen() const noexcept { return seen_; }

private:
    friend class StreamingShard;

    using AnyRecord = std::variant<StorageRecord, CpuRecord, MemoryRecord,
                                   NetworkRecord, RequestRecord, FailureRecord,
                                   Span>;

    struct Pending {
        double key = 0.0;
        std::uint32_t group = 0;
        std::uint64_t seq = 0;
        AnyRecord rec;
    };
    struct Later {  // min-heap on (key, group, seq)
        bool operator()(const Pending& a, const Pending& b) const noexcept {
            if (a.key != b.key) return a.key > b.key;
            if (a.group != b.group) return a.group > b.group;
            return a.seq > b.seq;
        }
    };
    struct StreamState {
        std::priority_queue<Pending, std::vector<Pending>, Later> heap;
        std::multiset<double> holds;
        // Released records are column-split immediately (struct-of-arrays,
        // already in wire encoding) so the writer flush is a column splice.
        ColumnChunk chunk;
        std::size_t chunk_count = 0;
    };

    void push(StreamId stream, std::uint32_t group, std::uint64_t seq,
              double key, AnyRecord rec);
    void open(StreamId stream, double key);
    void close(StreamId stream, double key);
    /// Pop every record below the stream's watermark into the chunk
    /// buffer; flush full chunks to the writer. `drain_all` ignores the
    /// watermark (finish()).
    void release(StreamState& st, bool drain_all);

    Options opts_;
    BinaryWriter writer_;
    std::function<double()> clock_;
    std::array<StreamState, kStreamCount> streams_;
    std::vector<std::unique_ptr<Sink>> shards_;
    std::uint64_t seen_ = 0;
    std::uint64_t pending_ = 0;  ///< records currently heap-buffered
    bool finished_ = false;
};

}  // namespace kooza::trace
