// The pluggable trace sink — where simulation layers (hw devices, gfs
// cluster, span tracer, fault injector) deliver capture records.
//
// Two implementations exist:
//   - MemorySink (here): appends into a caller-owned TraceSet, the
//     original materialize-then-write collector.
//   - StreamingSink (streaming.hpp): orders records online and flushes
//     fixed-size chunks straight into per-stream BinaryWriters, so a
//     capture's peak memory stays flat however long the run is.
//
// The hold protocol: device records are *keyed* at issue time but only
// *emitted* at completion, so a streaming sink cannot flush a timestamp
// until every I/O issued at-or-before it has landed. An emitter that
// knows a record with key `k` is coming calls open_hold(stream, k) at
// issue and close_hold(stream, k) after the matching append (or after
// deciding no record will be emitted). MemorySink ignores holds.
#pragma once

#include <cstddef>

#include "trace/traceset.hpp"

namespace kooza::trace {

/// The seven capture streams, numbered identically to the kooza.trace/1
/// binary stream ids (binary.cpp's schema table).
enum class StreamId : std::uint8_t {
    kStorage = 0,
    kCpu = 1,
    kMemory = 2,
    kNetwork = 3,
    kRequests = 4,
    kFailures = 5,
    kSpans = 6,
};

inline constexpr std::size_t kStreamCount = 7;

class Sink {
public:
    Sink() = default;
    Sink(const Sink&) = delete;
    Sink& operator=(const Sink&) = delete;
    virtual ~Sink();

    virtual void append(const StorageRecord& r) = 0;
    virtual void append(const CpuRecord& r) = 0;
    virtual void append(const MemoryRecord& r) = 0;
    virtual void append(const NetworkRecord& r) = 0;
    virtual void append(const RequestRecord& r) = 0;
    virtual void append(const FailureRecord& r) = 0;
    virtual void append(const Span& s) = 0;

    /// Announce that a record keyed at `key` will (or may) be appended to
    /// `stream` later. Must be balanced by close_hold with the same key.
    virtual void open_hold(StreamId stream, double key);
    /// Release a hold opened with open_hold. Call *after* the matching
    /// append, or instead of it when the record turned out not to exist.
    virtual void close_hold(StreamId stream, double key);
};

/// The in-memory collector: records land in a caller-owned TraceSet in
/// emission order (callers sort afterwards, see TraceSet::sort_by_time).
class MemorySink final : public Sink {
public:
    explicit MemorySink(TraceSet& ts) noexcept : ts_(&ts) {}

    void append(const StorageRecord& r) override { ts_->storage.push_back(r); }
    void append(const CpuRecord& r) override { ts_->cpu.push_back(r); }
    void append(const MemoryRecord& r) override { ts_->memory.push_back(r); }
    void append(const NetworkRecord& r) override { ts_->network.push_back(r); }
    void append(const RequestRecord& r) override { ts_->requests.push_back(r); }
    void append(const FailureRecord& r) override { ts_->failures.push_back(r); }
    void append(const Span& s) override { ts_->spans.push_back(s); }

    [[nodiscard]] const TraceSet& traces() const noexcept { return *ts_; }

private:
    TraceSet* ts_;
};

/// A family of sinks sharded by server group, so multi-emitter captures
/// stay deterministic: group 0 collects cluster-level records (clients,
/// master, fault injector, spans), group 1+s collects chunkserver s.
class SinkProvider {
public:
    SinkProvider() = default;
    SinkProvider(const SinkProvider&) = delete;
    SinkProvider& operator=(const SinkProvider&) = delete;
    virtual ~SinkProvider();

    virtual Sink& group(std::size_t g) = 0;
    [[nodiscard]] virtual std::size_t group_count() const = 0;
};

}  // namespace kooza::trace
