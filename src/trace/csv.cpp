#include "trace/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::trace {

namespace {

namespace fs = std::filesystem;

struct CsvMetrics {
    obs::Counter& rows = obs::counter("trace.csv.rows_total");
    obs::Counter& bad_rows = obs::counter("trace.csv.bad_rows_total");
    obs::Counter& missing_files = obs::counter("trace.csv.missing_files_total");
};

CsvMetrics& metrics() {
    static CsvMetrics m;
    return m;
}

std::ofstream open_out(const fs::path& p) {
    std::ofstream f(p);
    if (!f) throw std::runtime_error("write_csv: cannot open " + p.string());
    f.precision(17);
    return f;
}

[[noreturn]] void bad_row(const fs::path& p, std::size_t line, const char* why) {
    metrics().bad_rows.add();
    std::ostringstream os;
    os << "read_csv: " << p.string() << ":" << line << ": " << why;
    throw std::runtime_error(os.str());
}

struct Reader {
    fs::path path;
    std::ifstream file;
    std::size_t line_no = 0;
    bool header_skipped = false;

    explicit Reader(const fs::path& p) : path(p), file(p) {
        // A capture always writes the full stream set, so an absent file
        // is a partial/deleted capture — failing quietly here used to
        // make it masquerade as a workload with an empty stream.
        if (!file) {
            metrics().missing_files.add();
            throw std::runtime_error("read_csv: missing stream file " +
                                     p.string() + " (partial capture?)");
        }
    }

    /// Next data row split into fields; empty optional-equivalent when EOF.
    bool next(std::vector<std::string>& fields) {
        std::string line;
        while (std::getline(file, line)) {
            ++line_no;
            // CRLF files: getline leaves the '\r' on the line.
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (line.empty()) continue;
            // The header is the first *non-empty* line, wherever it sits —
            // keying on line_no == 1 made a leading blank line demote the
            // real header to a data row.
            if (!header_skipped) {
                header_skipped = true;
                continue;
            }
            fields = split_csv_line(line);
            metrics().rows.add();
            return true;
        }
        return false;
    }

    double num(const std::string& s, const char* what) {
        std::size_t pos = 0;
        double v = 0.0;
        try {
            v = std::stod(s, &pos);
        } catch (const std::exception&) {
            bad_row(path, line_no, what);
        }
        // stod happily parses a valid prefix ("1.5GB" -> 1.5, "1,000"
        // split upstream into "1"), silently truncating corrupt data.
        // Require the whole field to be consumed.
        if (pos != s.size()) bad_row(path, line_no, what);
        return v;
    }
    std::uint64_t id(const std::string& s, const char* what) {
        // IDs and sizes are unsigned decimal fields. stoull alone accepted
        // leading whitespace, trailing junk, and even "-1" (wrapping to
        // 2^64-1), so corrupt rows round-tripped as huge valid-looking ids.
        if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
            bad_row(path, line_no, what);
        try {
            return std::stoull(s);
        } catch (const std::exception&) {
            bad_row(path, line_no, what);  // out of range for uint64
        }
    }
};

void expect_fields(Reader& r, const std::vector<std::string>& f, std::size_t n) {
    if (f.size() != n) bad_row(r.path, r.line_no, "wrong field count");
}

}  // namespace

std::vector<std::string> split_csv_line(const std::string& line) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const auto pos = line.find(',', start);
        if (pos == std::string::npos) {
            out.push_back(line.substr(start));
            break;
        }
        out.push_back(line.substr(start, pos - start));
        start = pos + 1;
    }
    // CRLF input: the '\r' rides on the last field and breaks exact-match
    // parsing (e.g. "read\r" fails iotype_from_string).
    if (!out.empty() && !out.back().empty() && out.back().back() == '\r')
        out.back().pop_back();
    return out;
}

void write_csv(const TraceSet& ts, const fs::path& dir) {
    fs::create_directories(dir);
    {
        auto f = open_out(dir / "storage.csv");
        f << "time,request_id,lbn,size_bytes,type,latency\n";
        for (const auto& r : ts.storage)
            f << r.time << ',' << r.request_id << ',' << r.lbn << ',' << r.size_bytes
              << ',' << to_string(r.type) << ',' << r.latency << '\n';
    }
    {
        auto f = open_out(dir / "cpu.csv");
        f << "time,request_id,busy_seconds,utilization\n";
        for (const auto& r : ts.cpu)
            f << r.time << ',' << r.request_id << ',' << r.busy_seconds << ','
              << r.utilization << '\n';
    }
    {
        auto f = open_out(dir / "memory.csv");
        f << "time,request_id,bank,size_bytes,type\n";
        for (const auto& r : ts.memory)
            f << r.time << ',' << r.request_id << ',' << r.bank << ',' << r.size_bytes
              << ',' << to_string(r.type) << '\n';
    }
    {
        auto f = open_out(dir / "network.csv");
        f << "time,request_id,size_bytes,direction,latency\n";
        for (const auto& r : ts.network)
            f << r.time << ',' << r.request_id << ',' << r.size_bytes << ','
              << to_string(r.direction) << ',' << r.latency << '\n';
    }
    {
        auto f = open_out(dir / "requests.csv");
        f << "request_id,type,arrival,completion,bytes\n";
        for (const auto& r : ts.requests)
            f << r.request_id << ',' << to_string(r.type) << ',' << r.arrival << ','
              << r.completion << ',' << r.bytes << '\n';
    }
    {
        auto f = open_out(dir / "failures.csv");
        f << "time,request_id,server,kind,duration\n";
        for (const auto& r : ts.failures)
            f << r.time << ',' << r.request_id << ',' << r.server << ','
              << to_string(r.kind) << ',' << r.duration << '\n';
    }
    {
        auto f = open_out(dir / "spans.csv");
        f << "trace_id,span_id,parent_id,name,start,end\n";
        for (const auto& s : ts.spans) {
            // The format has no quoting, so a ',' / CR / LF in a span name
            // would silently shift every following field on read-back.
            // Reject at the source; kooza.trace/1 (binary.hpp) stores
            // names in a string table and takes arbitrary bytes.
            if (s.name.find_first_of(",\r\n") != std::string::npos)
                throw std::runtime_error(
                    "write_csv: span name contains ',' or a line break "
                    "(unrepresentable in spans.csv, use --format=bin): '" +
                    s.name + "'");
            f << s.trace_id << ',' << s.span_id << ',' << s.parent_id << ','
              << s.name << ',' << s.start << ',' << s.end << '\n';
        }
    }
}

TraceSet read_csv(const fs::path& dir) {
    TraceSet ts;
    {
        Reader r(dir / "storage.csv");
        std::vector<std::string> f;
        while (r.next(f)) {
            expect_fields(r, f, 6);
            StorageRecord rec;
            rec.time = r.num(f[0], "time");
            rec.request_id = r.id(f[1], "request_id");
            rec.lbn = r.id(f[2], "lbn");
            rec.size_bytes = r.id(f[3], "size_bytes");
            rec.type = iotype_from_string(f[4]);
            rec.latency = r.num(f[5], "latency");
            ts.storage.push_back(rec);
        }
    }
    {
        Reader r(dir / "cpu.csv");
        std::vector<std::string> f;
        while (r.next(f)) {
            expect_fields(r, f, 4);
            CpuRecord rec;
            rec.time = r.num(f[0], "time");
            rec.request_id = r.id(f[1], "request_id");
            rec.busy_seconds = r.num(f[2], "busy_seconds");
            rec.utilization = r.num(f[3], "utilization");
            ts.cpu.push_back(rec);
        }
    }
    {
        Reader r(dir / "memory.csv");
        std::vector<std::string> f;
        while (r.next(f)) {
            expect_fields(r, f, 5);
            MemoryRecord rec;
            rec.time = r.num(f[0], "time");
            rec.request_id = r.id(f[1], "request_id");
            rec.bank = std::uint32_t(r.id(f[2], "bank"));
            rec.size_bytes = r.id(f[3], "size_bytes");
            rec.type = iotype_from_string(f[4]);
            ts.memory.push_back(rec);
        }
    }
    {
        Reader r(dir / "network.csv");
        std::vector<std::string> f;
        while (r.next(f)) {
            expect_fields(r, f, 5);
            NetworkRecord rec;
            rec.time = r.num(f[0], "time");
            rec.request_id = r.id(f[1], "request_id");
            rec.size_bytes = r.id(f[2], "size_bytes");
            // Strict enum parse: anything but "rx"/"tx" used to silently
            // map to kTx, so corrupt rows skewed the traffic direction mix.
            try {
                rec.direction = direction_from_string(f[3]);
            } catch (const std::invalid_argument&) {
                bad_row(r.path, r.line_no, "direction");
            }
            rec.latency = r.num(f[4], "latency");
            ts.network.push_back(rec);
        }
    }
    {
        Reader r(dir / "requests.csv");
        std::vector<std::string> f;
        while (r.next(f)) {
            expect_fields(r, f, 5);
            RequestRecord rec;
            rec.request_id = r.id(f[0], "request_id");
            rec.type = iotype_from_string(f[1]);
            rec.arrival = r.num(f[2], "arrival");
            rec.completion = r.num(f[3], "completion");
            rec.bytes = r.id(f[4], "bytes");
            ts.requests.push_back(rec);
        }
    }
    {
        Reader r(dir / "failures.csv");
        std::vector<std::string> f;
        while (r.next(f)) {
            expect_fields(r, f, 5);
            FailureRecord rec;
            rec.time = r.num(f[0], "time");
            rec.request_id = r.id(f[1], "request_id");
            rec.server = std::uint32_t(r.id(f[2], "server"));
            rec.kind = failure_kind_from_string(f[3]);
            rec.duration = r.num(f[4], "duration");
            ts.failures.push_back(rec);
        }
    }
    {
        Reader r(dir / "spans.csv");
        std::vector<std::string> f;
        while (r.next(f)) {
            expect_fields(r, f, 6);
            Span s;
            s.trace_id = r.id(f[0], "trace_id");
            s.span_id = r.id(f[1], "span_id");
            s.parent_id = r.id(f[2], "parent_id");
            s.name = f[3];
            s.start = r.num(f[4], "start");
            s.end = r.num(f[5], "end");
            ts.spans.push_back(s);
        }
    }
    return ts;
}

}  // namespace kooza::trace
